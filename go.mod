module pitchfork

go 1.24
