module pitchfork

go 1.23
