package sched

import "pitchfork/internal/isa"

// PruneHints is the static pre-analysis contract the exploration
// strategy consumes (implemented by internal/taint's Report without
// either package importing the other). ForkFree(pp) must promise that
// no schedule of the analyzed machine can produce a secret-labeled
// observation at pp or at any point forward-reachable from pp in the
// over-approximated control-flow graph — where branch points reach
// both arms (covering wrong-path execution and rollback) and computed
// control flow forces whole-program conservatism.
//
// Under this contract pruneFork collapses speculation forks whose
// whole subtree provably contributes zero findings, so a pruned
// exploration reports findings identical to an unpruned one (state and
// path counts shrink; the violation set does not).
type PruneHints interface {
	ForkFree(pp isa.Addr) bool
}

// pruneFork reports whether the speculation fork at program point pp
// may be collapsed to a single arm. Every arm's entire future must be
// provably violation-free, which needs ForkFree at two kinds of point:
//
//   - the fork point itself: everything fetched from here on — on any
//     guess, in any resolution order — sits in pp's forward closure;
//   - every instruction still in the reorder buffer: an older
//     in-flight instruction observes (executes or retires) inside the
//     fork's speculation window, and on top of its own observation it
//     can REDIRECT fetch — a mispredicted branch rolls back into its
//     other arm, a forwarding hazard restarts at the stale load —
//     into regions that are forward-reachable from the buffered
//     instruction's point but not necessarily from pp. SafePoint
//     alone would miss those futures; ForkFree covers them because
//     the static CFG gives a branch both arms as successors.
//
// Together these make every arm's subtree violation-free, so exploring
// one arm is finding-equivalent to exploring all of them.
func pruneFork(m Machine, h PruneHints, pp isa.Addr) bool {
	if h == nil || !h.ForkFree(pp) {
		return false
	}
	for i := m.BufMin(); i <= m.BufMax(); i++ {
		if t, ok := m.View(i); ok && !h.ForkFree(t.PP) {
			return false
		}
	}
	return true
}
