package sched

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// violationKey reduces a violation to its schedule-independent
// signature, for set comparisons across exploration strategies.
func violationKey(v Violation) string {
	return fmt.Sprintf("%s|%s|%d", v.Kind, v.Obs, v.PC)
}

// sortedSignatures renders each violation as signature+schedule, sorted,
// so serial and parallel results compare as multisets.
func sortedSignatures(res Result, withSchedule bool) []string {
	out := make([]string, len(res.Violations))
	for i, v := range res.Violations {
		out[i] = violationKey(v)
		if withSchedule {
			out[i] += "|" + v.Schedule.String()
		}
	}
	sort.Strings(out)
	return out
}

func mustExplorer(t *testing.T, opts Options) *Explorer {
	t.Helper()
	e, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParallelMatchesSerial(t *testing.T) {
	gadgets := map[string]func() *core.Machine{
		"v1":  func() *core.Machine { return v1Gadget(9) },
		"v11": v11Gadget,
		"v4":  v4Gadget,
	}
	for name, mk := range gadgets {
		for _, fwd := range []bool{false, true} {
			serial := mustExplorer(t, Options{Bound: 20, ForwardHazards: fwd, KeepSchedules: true}).Explore(mk())
			par := mustExplorer(t, Options{Bound: 20, ForwardHazards: fwd, KeepSchedules: true, Workers: 4}).Explore(mk())
			if par.Workers != 4 || serial.Workers != 1 {
				t.Fatalf("%s/fwd=%t: workers not recorded: %d/%d", name, fwd, serial.Workers, par.Workers)
			}
			if serial.States != par.States || serial.Paths != par.Paths {
				t.Fatalf("%s/fwd=%t: serial %d states %d paths, parallel %d states %d paths",
					name, fwd, serial.States, serial.Paths, par.States, par.Paths)
			}
			ss, ps := sortedSignatures(serial, true), sortedSignatures(par, true)
			if len(ss) != len(ps) {
				t.Fatalf("%s/fwd=%t: %d serial vs %d parallel violations", name, fwd, len(ss), len(ps))
			}
			for i := range ss {
				if ss[i] != ps[i] {
					t.Fatalf("%s/fwd=%t: violation sets differ:\n serial   %s\n parallel %s", name, fwd, ss[i], ps[i])
				}
			}
		}
	}
}

// cascadeGadget chains the Figure 1 gadget with n extra conditional
// branches, giving the exploration tree ~2^n paths — enough work to
// put real pressure on work stealing and the atomic budgets.
func cascadeGadget(n int) *core.Machine {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 4)
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	for i := 0; i < n; i++ {
		here := b.Here()
		b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, here+1, here+1)
	}
	b.Region(0x40, mem.Pub(1), mem.Pub(2), mem.Pub(3), mem.Pub(4))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	m := core.New(b.MustBuild())
	m.Regs.Write(ra, mem.Pub(9))
	return m
}

func TestParallelMatchesSerialOnWideTree(t *testing.T) {
	serial := mustExplorer(t, Options{Bound: 20, KeepSchedules: true, MaxStates: 1_000_000}).Explore(cascadeGadget(10))
	par := mustExplorer(t, Options{Bound: 20, KeepSchedules: true, MaxStates: 1_000_000, Workers: 8}).Explore(cascadeGadget(10))
	if serial.Paths < 1000 {
		t.Fatalf("cascade too small to stress the pool: %d paths", serial.Paths)
	}
	if serial.States != par.States || serial.Paths != par.Paths {
		t.Fatalf("serial %d states / %d paths, parallel %d states / %d paths",
			serial.States, serial.Paths, par.States, par.Paths)
	}
	ss, ps := sortedSignatures(serial, true), sortedSignatures(par, true)
	if len(ss) != len(ps) {
		t.Fatalf("violation counts differ: %d vs %d", len(ss), len(ps))
	}
	for i := range ss {
		if ss[i] != ps[i] {
			t.Fatalf("violation sets differ at %d", i)
		}
	}
}

func TestParallelDeterministicOrder(t *testing.T) {
	// Two parallel runs must report violations in the same order even
	// though workers race for subtrees.
	run := func() []string {
		res := mustExplorer(t, Options{Bound: 20, ForwardHazards: true, KeepSchedules: true, Workers: 8}).Explore(v11Gadget())
		out := make([]string, len(res.Violations))
		for i, v := range res.Violations {
			out[i] = violationKey(v) + "|" + v.Schedule.String()
		}
		return out
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("v1.1 gadget must produce violations")
	}
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("trial %d: %d violations, want %d", trial, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d: violation %d reordered:\n got  %s\n want %s", trial, i, again[i], first[i])
			}
		}
	}
}

func TestParallelStopAtFirst(t *testing.T) {
	res := mustExplorer(t, Options{Bound: 20, StopAtFirst: true, Workers: 4}).Explore(v1Gadget(9))
	if len(res.Violations) != 1 {
		t.Fatalf("StopAtFirst must report exactly one violation, got %d", len(res.Violations))
	}
}

func TestParallelTruncation(t *testing.T) {
	res := mustExplorer(t, Options{Bound: 20, ForwardHazards: true, MaxStates: 5, Workers: 4}).Explore(v11Gadget())
	if !res.Truncated {
		t.Fatal("tiny budget must truncate")
	}
	if res.States > 5 {
		t.Fatalf("states %d exceed the budget 5", res.States)
	}
}

func TestParallelInterrupt(t *testing.T) {
	e := mustExplorer(t, Options{Bound: 20, Workers: 4, Interrupt: func() bool { return true }})
	res := e.Explore(v1Gadget(9))
	if !res.Interrupted {
		t.Fatal("interrupt must mark the result interrupted")
	}
	if res.States != 0 {
		t.Fatalf("interrupt before the first state must explore nothing, got %d states", res.States)
	}
}

func TestParallelOnViolationStops(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	e := mustExplorer(t, Options{
		Bound: 20, Workers: 4, KeepSchedules: true,
		OnViolation: func(Violation) bool {
			mu.Lock()
			calls++
			mu.Unlock()
			return false
		},
	})
	res := e.Explore(v1Gadget(9))
	if !res.Interrupted {
		t.Fatal("stopping callback must mark the result interrupted")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("callback never fired")
	}
}

// TestExplorerSharedAcrossGoroutines exercises one Explorer from many
// goroutines concurrently — the reuse the type documents — so the race
// detector can certify there is no per-instance mutable state left.
func TestExplorerSharedAcrossGoroutines(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := mustExplorer(t, Options{Bound: 20, ForwardHazards: true, KeepSchedules: true, Workers: workers})
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := e.Explore(v1Gadget(9))
				if res.SecretFree() {
					errs <- "shared explorer missed the v1 leak"
				}
			}()
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatalf("workers=%d: %s", workers, msg)
		}
	}
}

// TestDedupPrunesReconvergedStates checks the fingerprint table's
// central claim: forwarding-fork arms that reconverge (store address
// resolved and load executed, in either order, without aliasing) are
// pruned, shrinking the explored state count without losing any
// violation signature.
func TestDedupPrunesReconvergedStates(t *testing.T) {
	full := mustExplorer(t, Options{Bound: 20, ForwardHazards: true, KeepSchedules: true}).Explore(v11Gadget())
	dedup := mustExplorer(t, Options{Bound: 20, ForwardHazards: true, KeepSchedules: true, DedupEntries: 1 << 16}).Explore(v11Gadget())
	if dedup.DedupHits == 0 {
		t.Fatal("forwarding forks must reconverge and hit the dedup table")
	}
	if dedup.States >= full.States {
		t.Fatalf("dedup must shrink the exploration: %d states with, %d without", dedup.States, full.States)
	}
	want := map[string]bool{}
	for _, v := range full.Violations {
		want[violationKey(v)] = true
	}
	got := map[string]bool{}
	for _, v := range dedup.Violations {
		got[violationKey(v)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("violation signatures differ: %v vs %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("dedup lost violation %s", k)
		}
	}
}

// TestDedupParallelAgreesOnSignatures checks that parallel exploration
// with dedup — where the pruning decisions race — still finds the same
// violation signatures as the serial dedup run.
func TestDedupParallelAgreesOnSignatures(t *testing.T) {
	serial := mustExplorer(t, Options{Bound: 20, ForwardHazards: true, DedupEntries: 1 << 16}).Explore(v11Gadget())
	par := mustExplorer(t, Options{Bound: 20, ForwardHazards: true, DedupEntries: 1 << 16, Workers: 4}).Explore(v11Gadget())
	ss, ps := sortedSignatures(serial, false), sortedSignatures(par, false)
	dedupStrings := func(in []string) []string {
		var out []string
		for i, s := range in {
			if i == 0 || s != in[i-1] {
				out = append(out, s)
			}
		}
		return out
	}
	ss, ps = dedupStrings(ss), dedupStrings(ps)
	if len(ss) != len(ps) {
		t.Fatalf("signature sets differ in size: %v vs %v", ss, ps)
	}
	for i := range ss {
		if ss[i] != ps[i] {
			t.Fatalf("signature sets differ: %v vs %v", ss, ps)
		}
	}
}

func TestNewExplorerRejectsBadParallelOptions(t *testing.T) {
	if _, err := NewExplorer(Options{Bound: 20, Workers: -1}); err == nil {
		t.Fatal("negative workers must be rejected")
	}
	if _, err := NewExplorer(Options{Bound: 20, DedupEntries: -1}); err == nil {
		t.Fatal("negative dedup entries must be rejected")
	}
}

// TestViolationPCPointsAtLeakingInstruction pins the PC attribution
// fix: the Figure 1 leak is the load at program point 3, not the fetch
// head (4) at detection time.
func TestViolationPCPointsAtLeakingInstruction(t *testing.T) {
	res, err := Explore(v1Gadget(9), 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretFree() {
		t.Fatal("v1 gadget must leak")
	}
	for _, v := range res.Violations {
		if v.PC != 3 {
			t.Fatalf("violation PC = %d, want 3 (the leaking load)", v.PC)
		}
	}
}
