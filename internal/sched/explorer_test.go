package sched

import (
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

const (
	ra = isa.Reg(0)
	rb = isa.Reg(1)
	rc = isa.Reg(2)
)

// v1Gadget is the Figure 1 program: bounds check, then a double load.
func v1Gadget(idx mem.Word) *core.Machine {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 4)
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	b.Region(0x40, mem.Pub(1), mem.Pub(2), mem.Pub(3), mem.Pub(4))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	m := core.New(b.MustBuild())
	m.Regs.Write(ra, mem.Pub(idx))
	return m
}

// v11Gadget is the Figure 6 program: speculative out-of-bounds store,
// benign load pair.
func v11Gadget() *core.Machine {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 6)
	b.Store(isa.R(rb), isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x45))
	b.Load(rc, isa.ImmW(0x48), isa.R(rc))
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(4))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Pub(9), mem.Pub(10), mem.Pub(11), mem.Pub(12))
	m := core.New(b.MustBuild())
	m.Regs.Write(ra, mem.Pub(5)) // out of bounds
	m.Regs.Write(rb, mem.Sec(0x21))
	return m
}

// v4Gadget is the Figure 7 program: a zeroing store whose address
// resolves late, then a double load over the stale secret.
func v4Gadget() *core.Machine {
	b := isa.NewBuilder(1)
	b.Store(isa.ImmW(0), isa.ImmW(3), isa.R(ra))
	b.Load(rc, isa.ImmW(0x43))
	b.Load(rc, isa.ImmW(0x44), isa.R(rc))
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(0x5A))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	m := core.New(b.MustBuild())
	m.Regs.Write(ra, mem.Pub(0x40))
	return m
}

// fencedV1Gadget is the Figure 8 program: Figure 1 with a fence after
// the branch.
func fencedV1Gadget() *core.Machine {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 5)
	b.Fence()
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	b.Region(0x40, mem.Pub(1), mem.Pub(2), mem.Pub(3), mem.Pub(4))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	m := core.New(b.MustBuild())
	m.Regs.Write(ra, mem.Pub(9))
	return m
}

func findVariant(res Result, k VariantKind) bool {
	for _, v := range res.Violations {
		if v.Kind == k {
			return true
		}
	}
	return false
}

func TestExplorerFindsSpectreV1(t *testing.T) {
	res, err := Explore(v1Gadget(9), 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretFree() {
		t.Fatal("explorer must find the Figure 1 leak")
	}
	if !findVariant(res, VariantV1) {
		t.Fatalf("expected a spectre-v1 classification, got %v", res.Violations)
	}
	// The violating schedule must replay to a secret observation.
	v := res.Violations[0]
	if len(v.Schedule) == 0 {
		t.Fatal("schedule not recorded")
	}
	replay := v1Gadget(9)
	trace, err := replay.Run(v.Schedule)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !trace.HasSecret() {
		t.Fatalf("replayed schedule does not leak: %s", trace)
	}
}

func TestExplorerInBoundsIndexStillLeaks(t *testing.T) {
	// Even an in-bounds index leaks nothing: A and B are public, and
	// the in-bounds load chain reads public data only. The mispredicted
	// arm for ra=1 is the *true* arm, which is also the correct arm, so
	// no speculation window opens on secrets.
	res, err := Explore(v1Gadget(1), 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SecretFree() {
		t.Fatalf("in-bounds run must be clean, got %v", res.Violations)
	}
}

func TestExplorerFindsSpectreV11(t *testing.T) {
	for _, fwd := range []bool{false, true} {
		res, err := Explore(v11Gadget(), 20, fwd)
		if err != nil {
			t.Fatal(err)
		}
		if res.SecretFree() {
			t.Fatalf("fwd=%t: explorer must find the Figure 6 leak", fwd)
		}
		if !findVariant(res, VariantV11) {
			t.Fatalf("fwd=%t: expected spectre-v1.1, got %v", fwd, res.Violations)
		}
	}
}

func TestExplorerFindsSpectreV4OnlyWithHazards(t *testing.T) {
	// Without forwarding-hazard detection the v4 window is not
	// explored — matching the paper's two-phase procedure (§4.2.1).
	res, err := Explore(v4Gadget(), 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SecretFree() {
		t.Fatalf("v4 gadget must be clean without hazard detection, got %v", res.Violations)
	}
	res, err = Explore(v4Gadget(), 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretFree() {
		t.Fatal("explorer must find the Figure 7 leak with hazard detection")
	}
	if !findVariant(res, VariantV4) {
		t.Fatalf("expected spectre-v4, got %v", res.Violations)
	}
}

func TestExplorerFenceMitigation(t *testing.T) {
	// Figure 8: the fence closes the v1 window entirely.
	for _, fwd := range []bool{false, true} {
		res, err := Explore(fencedV1Gadget(), 20, fwd)
		if err != nil {
			t.Fatal(err)
		}
		if !res.SecretFree() {
			t.Fatalf("fwd=%t: fenced gadget must be clean, got %v", fwd, res.Violations)
		}
	}
}

func TestExplorerSequentialViolation(t *testing.T) {
	// A program that leaks sequentially: load a secret, use it as an
	// address directly.
	b := isa.NewBuilder(1)
	b.Load(ra, isa.ImmW(0x48))
	b.Load(rb, isa.ImmW(0x44), isa.R(ra))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Data(0x48, mem.Sec(2))
	m := core.New(b.MustBuild())
	res, err := Explore(m, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretFree() {
		t.Fatal("sequential leak must be found")
	}
}

func TestExplorerBoundLimitsSpeculation(t *testing.T) {
	// With bound 1 the buffer holds a single instruction: the branch
	// must resolve before the loads enter, so Figure 1 cannot leak.
	res, err := Explore(v1Gadget(9), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SecretFree() {
		t.Fatalf("bound 1 must serialize execution, got %v", res.Violations)
	}
	// Bound 2 admits the first load but not the second; still no
	// secret-labeled observation (the first read's address is public).
	res, err = Explore(v1Gadget(9), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SecretFree() {
		t.Fatalf("bound 2 must still be clean, got %v", res.Violations)
	}
	// Bound 3 fits branch + both loads: the leak appears.
	res, err = Explore(v1Gadget(9), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretFree() {
		t.Fatal("bound 3 must expose the leak")
	}
}

func TestCountSchedulesGrowsWithBound(t *testing.T) {
	p10, _, _, err := CountSchedules(v1Gadget(9), 2, false, 100000)
	if err != nil {
		t.Fatal(err)
	}
	p20, _, _, err := CountSchedules(v11Gadget(), 20, true, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if p10 < 1 || p20 < 1 {
		t.Fatalf("path counts must be positive: %d, %d", p10, p20)
	}
	// Forward-hazard exploration of the v1.1 gadget must fork more
	// paths than the non-hazard exploration.
	pNoFwd, _, _, err := CountSchedules(v11Gadget(), 20, false, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if p20 <= pNoFwd {
		t.Fatalf("hazard mode must explore more paths: %d vs %d", p20, pNoFwd)
	}
}

func TestExplorerStopAtFirst(t *testing.T) {
	e, err := NewExplorer(Options{Bound: 20, StopAtFirst: true, KeepSchedules: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Explore(v1Gadget(9))
	if len(res.Violations) != 1 {
		t.Fatalf("StopAtFirst must record exactly one violation, got %d", len(res.Violations))
	}
}

func TestExplorerBudgetTruncation(t *testing.T) {
	e, err := NewExplorer(Options{Bound: 20, ForwardHazards: true, MaxStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Explore(v11Gadget())
	if !res.Truncated {
		t.Fatal("tiny budget must truncate")
	}
}

func TestNewExplorerRejectsBadBound(t *testing.T) {
	if _, err := NewExplorer(Options{Bound: 0}); err == nil {
		t.Fatal("bound 0 must be rejected")
	}
}

func TestExplorerDoesNotMutateInput(t *testing.T) {
	m := v1Gadget(9)
	before := m.Clone()
	if _, err := Explore(m, 10, true); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(before) || m.PC != before.PC {
		t.Fatal("Explore mutated the input machine")
	}
}

// TestExplorerHandlesCalls runs a call/ret program through the
// explorer and checks the v4-style return-address attack of the
// paper's FaCT MEE finding (Fig. 10): with forwarding hazards on, the
// return-address load may read the stale return address of an earlier
// call frame.
func TestExplorerHandlesCalls(t *testing.T) {
	// 1: call(10, 2) — f1 returns immediately
	// 2: call(20, 3) — f2 loads a secret into ra, then returns
	// 3: halt
	// f1 at 10: ret
	// f2 at 20: (ra = load([0x48])), 21: ret
	// After returning from f2, ra holds a secret; if the ret's
	// return-address load reads the *stale* slot (f1's return point 2),
	// execution speculatively re-runs from 2... which is benign here.
	// The leak requires a gadget at the stale return point: put one at
	// 2? No — keep this test as a smoke test that call/ret explore
	// cleanly and terminate.
	p := isa.NewProgram(1)
	p.Add(1, isa.Call(10, 2))
	p.Add(2, isa.Call(20, 3))
	p.Add(10, isa.Ret())
	p.Add(20, isa.Load(ra, []isa.Operand{isa.ImmW(0x48)}, 21))
	p.Add(21, isa.Ret())
	p.SetRegion(0x70, make([]mem.Value, 16))
	p.SetData(0x48, mem.Pub(7))
	m := core.New(p)
	m.Regs.Write(mem.RSP, mem.Pub(0x7F))

	res, err := Explore(m, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SecretFree() {
		t.Fatalf("public call/ret program flagged: %v", res.Violations)
	}
	if res.Paths == 0 {
		t.Fatal("no paths completed")
	}
}

func TestExplorerOnViolationStreamsAndStops(t *testing.T) {
	var streamed []Violation
	e, err := NewExplorer(Options{
		Bound:         20,
		KeepSchedules: true,
		OnViolation: func(v Violation) bool {
			streamed = append(streamed, v)
			return false // stop after the first
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Explore(v1Gadget(9))
	if len(streamed) != 1 {
		t.Fatalf("callback must fire exactly once, got %d", len(streamed))
	}
	if len(res.Violations) != 1 {
		t.Fatalf("stopping callback must leave one recorded violation, got %d", len(res.Violations))
	}
	if !res.Interrupted {
		t.Fatal("stopping callback must mark the result interrupted")
	}
	if streamed[0].Kind != res.Violations[0].Kind || streamed[0].PC != res.Violations[0].PC {
		t.Fatal("streamed violation must match the recorded one")
	}
}

func TestExplorerInterruptAborts(t *testing.T) {
	e, err := NewExplorer(Options{Bound: 20, Interrupt: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Explore(v1Gadget(9))
	if !res.Interrupted {
		t.Fatal("interrupt must mark the result interrupted")
	}
	if res.States != 0 {
		t.Fatalf("interrupt before the first state must explore nothing, got %d states", res.States)
	}
}

func TestViolationSpeculationSources(t *testing.T) {
	// Figure 1: the leak's guard is the unresolved bounds check at 1.
	res, err := Explore(v1Gadget(9), 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretFree() {
		t.Fatal("expected the Figure 1 leak")
	}
	for _, v := range res.Violations {
		found := false
		for _, s := range v.Sources {
			if s.Kind == SrcBranch && s.PC == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("violation at pc %d lacks the branch@1 source: %v", v.PC, v.Sources)
		}
	}

	// Figure 7: the guard is the store at 1 with its address pending.
	res, err = Explore(v4Gadget(), 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretFree() {
		t.Fatal("expected the Figure 7 leak")
	}
	found := false
	for _, v := range res.Violations {
		for _, s := range v.Sources {
			if s.Kind == SrcStore && s.PC == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no violation carries the store@1 source")
	}
}

func TestSourceStrings(t *testing.T) {
	if got := (Source{Kind: SrcBranch, PC: 4}).String(); got != "branch@4" {
		t.Fatalf("Source.String() = %q", got)
	}
	if SrcStore.String() != "store" || SrcRet.String() != "return" {
		t.Fatal("source kind names drifted from the wire vocabulary")
	}
}
