// Immutable parent-pointer chains for per-path bookkeeping, and the
// exploration-node pool. A fork used to copy the accumulated schedule
// and observation trace into every child, making fork cost grow with
// path depth; the chains below share the common prefix structurally,
// so extending a path is one node allocation and forking is free. The
// slices the rest of the system consumes (Violation.Schedule,
// Violation.Trace, the parallel merge keys) are materialized only when
// a violation is recorded.
package sched

import (
	"sync"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
)

// schedNode is one directive of a path's schedule; parent points at
// the preceding prefix, shared with every sibling fork.
type schedNode struct {
	parent *schedNode
	d      core.Directive
	depth  int // length of the prefix ending here
}

// push extends the schedule by one directive. A nil receiver is the
// empty schedule.
func (n *schedNode) push(d core.Directive) *schedNode {
	depth := 1
	if n != nil {
		depth = n.depth + 1
	}
	return &schedNode{parent: n, d: d, depth: depth}
}

// materialize renders the chain as a flat schedule, oldest first.
func (n *schedNode) materialize() core.Schedule {
	if n == nil {
		return nil
	}
	out := make(core.Schedule, n.depth)
	for m := n; m != nil; m = m.parent {
		out[m.depth-1] = m.d
	}
	return out
}

// traceNode is one observation of a path's trace, annotated with the
// program point of the instruction that produced it.
type traceNode struct {
	parent *traceNode
	o      core.Observation
	pp     isa.Addr
	depth  int
}

// push extends the trace by one observation. A nil receiver is the
// empty trace.
func (n *traceNode) push(o core.Observation, pp isa.Addr) *traceNode {
	depth := 1
	if n != nil {
		depth = n.depth + 1
	}
	return &traceNode{parent: n, o: o, pp: pp, depth: depth}
}

// materialize renders the trace prefix ending at n, oldest first.
func (n *traceNode) materialize() core.Trace {
	if n == nil {
		return nil
	}
	out := make(core.Trace, n.depth)
	for m := n; m != nil; m = m.parent {
		out[m.depth-1] = m.o
	}
	return out
}

// statePool recycles exploration nodes: a finished path's state is
// returned here and its struct (plus its pendingFwd map, cleared) is
// reused for the next fork, in both the serial and the work-stealing
// drivers. The chains and machines a state pointed at are shared and
// never pooled.
var statePool = sync.Pool{New: func() any { return new(state) }}

// newState returns a blank exploration node from the pool.
func newState() *state {
	return statePool.Get().(*state)
}

// releaseState returns a finished node to the pool. The pendingFwd
// map is kept (cleared) for reuse; every reference the node held is
// dropped so pooling never extends an object's lifetime.
func releaseState(s *state) {
	s.m = nil
	s.sched = nil
	s.trace = nil
	s.secret = nil
	clear(s.pendingFwd)
	statePool.Put(s)
}
