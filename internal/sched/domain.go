// The domain interface of the speculation engine. The §4.1 worst-case
// schedule strategy is one algorithm instantiated over two value
// domains: the concrete reference machine of internal/core, and the
// symbolic machine of internal/pitchfork. Everything the strategy
// needs — fetchability, reorder-buffer shape, speculation-source and
// resolution flags, directive application — is expressed through the
// Machine interface below, so the serial and work-stealing drivers,
// the fingerprint dedup table, the exploration budgets, and the
// deterministic violation merge apply to every domain uniformly.
package sched

import (
	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// TransientView is the domain-independent projection of one
// reorder-buffer entry: exactly the fields the schedule strategy, the
// speculation-source collector, and the variant classifier consult.
// How the entry's values are represented (labeled words, symbolic
// expressions) stays inside the domain.
type TransientView struct {
	// Kind is the transient form, in the concrete semantics' vocabulary
	// (both domains implement Table 1's transient column).
	Kind core.TKind
	// Resolved reports whether the entry needs no further execute steps
	// before it can retire.
	Resolved bool
	// ValKnown and AddrKnown are the store resolution flags (execute
	// i : value / execute i : addr each resolve one half).
	ValKnown  bool
	AddrKnown bool
	// PP is the program point the instruction was fetched at.
	PP isa.Addr
	// FwdSecret marks a resolved load that forwarded secret-labeled
	// data from a buffered store — the classifier's v1.1 signal.
	FwdSecret bool
}

// Successor is one outcome of applying a directive. Deterministic
// steps yield exactly one successor (usually the receiver, mutated in
// place). A domain may fork on a single directive — the symbolic
// domain forks a branch whose condition is input-dependent into every
// feasible world — in which case each successor is an independent
// clone and D disambiguates the arm (compareDirectives orders on it),
// keeping parallel-merge schedule keys unique per completed path.
type Successor struct {
	// M is the machine after the step.
	M Machine
	// D is the directive as recorded in the schedule for this arm.
	D core.Directive
	// Obs are the observations the step produced.
	Obs []core.Observation
}

// Machine abstracts a speculative machine configuration the engine
// drives: a value domain instantiating the paper's directive
// semantics. Implementations are mutable; Clone forks them at
// exploration fork points. All scheduling policy lives in the engine —
// a Machine only applies single directives and reports its shape.
type Machine interface {
	// Clone returns an independent deep copy.
	Clone() Machine
	// PC returns the fetch head.
	PC() isa.Addr
	// Instr returns the instruction at the fetch head, if any; ok ==
	// false means the PC is a halt point.
	Instr() (isa.Instr, bool)
	// RetiredCount returns the number of retired instructions (the
	// MaxRetired budget input).
	RetiredCount() int
	// BufLen, BufMin, and BufMax describe the reorder buffer's
	// contiguous index range; for an empty buffer BufMax < BufMin,
	// with BufMax+1 the next insertion index.
	BufLen() int
	BufMin() int
	BufMax() int
	// View projects the buffer entry at index i.
	View(i int) (TransientView, bool)
	// FenceBefore reports whether an unretired fence sits at an index
	// below i (the execute rules' side condition).
	FenceBefore(i int) bool
	// RSBTop reports top(σ), the return-stack prediction, if present.
	RSBTop() (isa.Addr, bool)
	// PeekJmpi resolves the architectural target of an indirect jump
	// about to be fetched, if its operands (and, symbolically, its
	// target value) are available.
	PeekJmpi(in isa.Instr) (isa.Addr, bool)
	// PeekRet resolves the architectural return target through the
	// in-memory return address, for rets fetched under an empty RSB.
	PeekRet() (isa.Addr, bool)
	// Fingerprint hashes the full configuration (for the symbolic
	// domain: including the path condition) to 64 bits; equal
	// configurations hash equal, so the dedup table can prune
	// re-converged exploration states.
	Fingerprint() uint64
	// Witness returns a satisfying assignment of the domain's symbolic
	// inputs reaching the current state, or nil (always nil for the
	// concrete domain, where the inputs are the given ones).
	Witness() map[string]uint64
	// Step applies one directive. A nil error means it applied, with
	// the successor states returned; an error means the directive
	// stalls in this configuration and the machine is unchanged. The
	// returned slice is only valid until the next Step call on any
	// machine of this lineage — implementations may return an internal
	// scratch buffer so deterministic steps stay allocation-free.
	Step(d core.Directive) ([]Successor, error)
}

// Concrete wraps a core.Machine as the engine's concrete domain. The
// machine is driven in place; callers hand over ownership.
func Concrete(m *core.Machine) Machine { return &concreteMachine{m: m} }

// concreteMachine adapts *core.Machine: every directive is a single
// deterministic successor (the paper's small-step relation), and the
// views project the Transient structs directly. succ is the
// single-successor scratch Step returns, so the hot path performs no
// per-step slice allocation.
type concreteMachine struct {
	m    *core.Machine
	succ [1]Successor
}

func (c *concreteMachine) Clone() Machine { return &concreteMachine{m: c.m.Clone()} }

func (c *concreteMachine) PC() isa.Addr { return c.m.PC }

func (c *concreteMachine) Instr() (isa.Instr, bool) { return c.m.Prog.At(c.m.PC) }

func (c *concreteMachine) RetiredCount() int { return c.m.Retired }

func (c *concreteMachine) BufLen() int { return c.m.Buf.Len() }

func (c *concreteMachine) BufMin() int { return c.m.Buf.Min() }

func (c *concreteMachine) BufMax() int { return c.m.Buf.Max() }

func (c *concreteMachine) View(i int) (TransientView, bool) {
	t, ok := c.m.Buf.Get(i)
	if !ok {
		return TransientView{}, false
	}
	return TransientView{
		Kind:      t.Kind,
		Resolved:  t.Resolved(),
		ValKnown:  t.ValKnown,
		AddrKnown: t.AddrKnown,
		PP:        t.PP,
		FwdSecret: t.Kind == core.TValue && t.FromLoad && t.Dep != core.NoDep && t.Val.IsSecret(),
	}, true
}

func (c *concreteMachine) FenceBefore(i int) bool { return c.m.Buf.FenceBefore(i) }

func (c *concreteMachine) RSBTop() (isa.Addr, bool) { return c.m.RSB.Top() }

func (c *concreteMachine) PeekJmpi(in isa.Instr) (isa.Addr, bool) {
	vals, ok := c.m.Buf.ResolveOperands(c.m.Buf.Max()+1, c.m.Regs, in.Args)
	if !ok {
		return 0, false
	}
	v, err := isa.EvalAddr(c.m.AddrMode, vals)
	if err != nil {
		return 0, false
	}
	return v.W, true
}

func (c *concreteMachine) PeekRet() (isa.Addr, bool) {
	sp, ok := c.m.Buf.ResolveOperands(c.m.Buf.Max()+1, c.m.Regs, []isa.Operand{isa.R(mem.RSP)})
	if !ok {
		return 0, false
	}
	v, err := c.m.Mem.Read(sp[0].W)
	if err != nil {
		return 0, false
	}
	return v.W, true
}

func (c *concreteMachine) Fingerprint() uint64 { return c.m.Fingerprint() }

func (c *concreteMachine) Witness() map[string]uint64 { return nil }

func (c *concreteMachine) Step(d core.Directive) ([]Successor, error) {
	obs, err := c.m.Step(d)
	if err != nil {
		return nil, err
	}
	c.succ[0] = Successor{M: c, D: d, Obs: obs}
	return c.succ[:], nil
}
