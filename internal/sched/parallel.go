// Work-stealing parallel exploration. The worst-case schedule tree is
// embarrassingly parallel below its fork points — subtrees share no
// mutable state — so the driver seeds a frontier breadth-first from the
// root, hands it to per-worker LIFO deques, and lets idle workers steal
// the oldest (largest-subtree) states from their peers. Global budgets
// (MaxStates, StopAtFirst, Interrupt) are enforced with atomics, and
// violations are merged in schedule order so reports stay deterministic
// regardless of which worker found what first.
package sched

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pitchfork/internal/core"
)

// dedupShards is the shard count of the fingerprint table; a power of
// two so the shard index is a mask of the (well-mixed) FNV hash.
const dedupShards = 64

// dedupTable is a bounded concurrent set of machine fingerprints.
type dedupTable struct {
	perShard int
	shards   [dedupShards]struct {
		mu   sync.Mutex
		seen map[uint64]struct{}
	}
}

func newDedupTable(maxEntries int) *dedupTable {
	per := maxEntries / dedupShards
	if per < 1 {
		per = 1
	}
	t := &dedupTable{perShard: per}
	for i := range t.shards {
		t.shards[i].seen = make(map[uint64]struct{})
	}
	return t
}

// seen records fp and reports whether it was already present. A full
// shard stops recording — and therefore stops pruning states that hash
// into it — rather than evicting, keeping the memory bound hard and the
// pruning decision stable within a run.
func (t *dedupTable) seen(fp uint64) bool {
	s := &t.shards[fp&(dedupShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.seen[fp]; ok {
		return true
	}
	if len(s.seen) < t.perShard {
		s.seen[fp] = struct{}{}
	}
	return false
}

// workerDeque is one worker's double-ended work queue. The owner pushes
// and pops at the tail (depth-first, keeping its frontier small like
// the serial explorer); thieves steal from the head, where the states
// closest to the root — the largest units of remaining work — sit.
type workerDeque struct {
	mu    sync.Mutex
	items []*state
}

func (d *workerDeque) push(s *state) {
	d.mu.Lock()
	d.items = append(d.items, s)
	d.mu.Unlock()
}

func (d *workerDeque) pop() *state {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	s := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return s
}

func (d *workerDeque) steal() *state {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	s := d.items[0]
	d.items[0] = nil
	d.items = d.items[1:]
	return s
}

// keyedViolation pairs a violation with its path's schedule prefix, the
// deterministic merge key. The key is kept separately from
// Violation.Schedule so ordering works even when KeepSchedules is off.
type keyedViolation struct {
	key core.Schedule
	v   Violation
}

// scheduleKey materializes the merge key for a violation recorded at
// st: the violation's own schedule when KeepSchedules already paid for
// it, otherwise the state's schedule chain rendered flat.
func scheduleKey(st *state, v *Violation) core.Schedule {
	if v.Schedule != nil {
		return v.Schedule
	}
	return st.sched.materialize()
}

// compareDirectives orders directives by kind, then by their operand
// fields — an arbitrary but total and stable order.
func compareDirectives(a, b core.Directive) int {
	switch {
	case a.Kind != b.Kind:
		return int(a.Kind) - int(b.Kind)
	case a.Taken != b.Taken:
		if a.Taken {
			return 1
		}
		return -1
	case a.Target != b.Target:
		if a.Target < b.Target {
			return -1
		}
		return 1
	case a.I != b.I:
		return a.I - b.I
	case a.From != b.From:
		return a.From - b.From
	case a.Arm != b.Arm:
		return int(a.Arm) - int(b.Arm)
	}
	return 0
}

// compareSchedules orders schedules lexicographically, shorter prefix
// first. Every completed path has a distinct schedule, so this is a
// total order over a run's violations.
func compareSchedules(a, b core.Schedule) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := compareDirectives(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// assemble sorts the collected violations into schedule order and
// finalizes the result. Under StopAtFirst several workers may have
// recorded a violation before the stop flag propagated; the
// schedule-least one is kept so the report matches the option's
// contract.
func assemble(res Result, collected []keyedViolation, opts *Options) Result {
	sort.SliceStable(collected, func(i, j int) bool {
		return compareSchedules(collected[i].key, collected[j].key) < 0
	})
	if opts.StopAtFirst && len(collected) > 1 {
		collected = collected[:1]
	}
	for _, kv := range collected {
		res.Violations = append(res.Violations, kv.v)
	}
	return res
}

// exploreParallel drives the work-stealing pool. The seed phase runs
// breadth-first on the calling goroutine until the frontier is wide
// enough to feed every worker (or the exploration finishes first);
// the parallel phase distributes the frontier round-robin and lets the
// workers run until the tree, a budget, or a stop condition is
// exhausted.
func exploreParallel(opts *Options, dedup *dedupTable, root *state) Result {
	workers := opts.Workers
	res := Result{Workers: workers}
	var collected []keyedViolation
	stopped := false

	// ---- Seed phase -------------------------------------------------
	// Breadth-first until there is one state per worker — or, for
	// narrow trees that fork late, until the seed budget runs out:
	// work-stealing spreads the load once the pool is running, so a
	// partial frontier is enough to start.
	const seedStatesCap = 1024
	frontier := []*state{root}
	seedEmit := func(s *state) { frontier = append(frontier, s) }
	for len(frontier) > 0 && len(frontier) < workers && res.States < seedStatesCap {
		if res.States >= opts.MaxStates {
			res.Truncated = true
			return assemble(res, collected, opts)
		}
		if opts.Interrupt != nil && opts.Interrupt() {
			res.Interrupted = true
			return assemble(res, collected, opts)
		}
		st := frontier[0]
		frontier = frontier[1:]
		res.States++

		done, deduped, viol := advance(opts, dedup, st, seedEmit)
		if viol != nil {
			collected = append(collected, keyedViolation{key: scheduleKey(st, viol), v: *viol})
			if opts.OnViolation != nil && !opts.OnViolation(*viol) {
				stopped = true
			}
		}
		if deduped {
			res.DedupHits++
		}
		if done {
			res.Paths++
			releaseState(st)
			if stopped {
				res.Interrupted = true
				return assemble(res, collected, opts)
			}
			if opts.StopAtFirst && len(collected) > 0 {
				return assemble(res, collected, opts)
			}
		}
	}
	if len(frontier) == 0 {
		return assemble(res, collected, opts)
	}

	// ---- Parallel phase ---------------------------------------------
	deques := make([]*workerDeque, workers)
	for i := range deques {
		deques[i] = &workerDeque{}
	}
	for i, st := range frontier {
		deques[i%workers].items = append(deques[i%workers].items, st)
	}

	var (
		statesN     atomic.Int64 // states explored, seed phase included
		pathsN      atomic.Int64
		dedupN      atomic.Int64
		pending     atomic.Int64 // states queued or mid-processing
		stop        atomic.Bool  // prompt-exit flag for every worker
		truncated   atomic.Bool
		interrupted atomic.Bool
		violMu      sync.Mutex // serializes the OnViolation callback
	)
	statesN.Store(int64(res.States))
	pending.Store(int64(len(frontier)))
	maxStates := int64(opts.MaxStates)
	workerViols := make([][]keyedViolation, workers)

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			self := deques[id]
			// Forks land on the owner's deque as advance produces them;
			// pending counts them before the parent state is retired, so
			// the all-idle exit condition never fires spuriously.
			emit := func(f *state) {
				pending.Add(1)
				self.push(f)
			}
			idle := 0
			for !stop.Load() {
				st := self.pop()
				for off := 1; st == nil && off < workers; off++ {
					st = deques[(id+off)%workers].steal()
				}
				if st == nil {
					if pending.Load() == 0 {
						return
					}
					// Brief spin, then sleep: near the end of a run the
					// losers of the race for the last subtrees should
					// not burn the winners' cores.
					if idle++; idle > 64 {
						time.Sleep(20 * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
				if opts.Interrupt != nil && opts.Interrupt() {
					interrupted.Store(true)
					stop.Store(true)
					pending.Add(-1)
					return
				}
				if n := statesN.Add(1); n > maxStates {
					statesN.Add(-1)
					truncated.Store(true)
					stop.Store(true)
					pending.Add(-1)
					return
				}
				done, deduped, viol := advance(opts, dedup, st, emit)
				if viol != nil {
					// Record, callback, and stop are one atomic decision
					// under violMu: a violation observed after the stop
					// flag is dropped entirely, so the report never
					// contains a finding the OnViolation stream did not
					// deliver, and StopAtFirst fires the callback for
					// exactly the one finding that survives.
					key := scheduleKey(st, viol)
					violMu.Lock()
					if !stop.Load() {
						workerViols[id] = append(workerViols[id], keyedViolation{key: key, v: *viol})
						if opts.OnViolation != nil && !opts.OnViolation(*viol) {
							interrupted.Store(true)
							stop.Store(true)
						}
						if opts.StopAtFirst {
							stop.Store(true)
						}
					}
					violMu.Unlock()
				}
				if deduped {
					dedupN.Add(1)
				}
				if done {
					pathsN.Add(1)
					releaseState(st)
				}
				pending.Add(-1)
			}
		}(id)
	}
	wg.Wait()

	res.States = int(statesN.Load())
	res.Paths += int(pathsN.Load())
	res.DedupHits += int(dedupN.Load())
	res.Truncated = res.Truncated || truncated.Load()
	res.Interrupted = res.Interrupted || interrupted.Load()
	for _, vs := range workerViols {
		collected = append(collected, vs...)
	}
	return assemble(res, collected, opts)
}
