package sched

import (
	"sync"
	"testing"
)

// TestPooledNodesPreserveDeterminism interleaves serial and parallel
// explorations back to back — and concurrently — so the state pool
// recycles nodes from prior runs into new ones. Every run must report
// the exact serial result: pooled-node reuse may never leak one
// exploration's bookkeeping into another (the -race CI sweep runs this
// against the pool's concurrent Get/Put too).
func TestPooledNodesPreserveDeterminism(t *testing.T) {
	mk := func() Options {
		return Options{Bound: 20, ForwardHazards: true, KeepSchedules: true, MaxStates: 1_000_000}
	}
	reference := mustExplorer(t, mk()).Explore(cascadeGadget(6))
	refSigs := sortedSignatures(reference, true)

	// Sequential churn: every exploration drains and refills the pool.
	for round := 0; round < 5; round++ {
		opts := mk()
		if round%2 == 1 {
			opts.Workers = 4
		}
		res := mustExplorer(t, opts).Explore(cascadeGadget(6))
		if res.States != reference.States || res.Paths != reference.Paths {
			t.Fatalf("round %d: %d states / %d paths, want %d / %d",
				round, res.States, res.Paths, reference.States, reference.Paths)
		}
		sigs := sortedSignatures(res, true)
		if len(sigs) != len(refSigs) {
			t.Fatalf("round %d: %d violations, want %d", round, len(sigs), len(refSigs))
		}
		for i := range sigs {
			if sigs[i] != refSigs[i] {
				t.Fatalf("round %d: violation %d differs:\n got  %s\n want %s", round, i, sigs[i], refSigs[i])
			}
		}
	}

	// Concurrent churn: explorations racing on the shared pool must
	// still be mutually independent.
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := mk()
			if g%2 == 1 {
				opts.Workers = 2
			}
			res := mustExplorer(t, opts).Explore(cascadeGadget(6))
			if res.States != reference.States || res.Paths != reference.Paths {
				errs <- "state/path counts drifted under concurrent pool reuse"
				return
			}
			sigs := sortedSignatures(res, true)
			for i := range sigs {
				if sigs[i] != refSigs[i] {
					errs <- "violation multiset drifted under concurrent pool reuse"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
