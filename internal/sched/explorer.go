// Package sched implements Pitchfork's worst-case schedule generation
// (§4.1 of the paper, formalized as the tool schedules DT(n) of
// Def. B.18) as a depth-first exploration over a speculative machine.
//
// The strategy, per the paper:
//
//   - fetch eagerly until the reorder buffer reaches the speculation
//     bound, retiring only as necessary to fetch;
//   - at each conditional branch, fork schedules for both guesses and
//     execute the *oldest* in-flight branch as late as possible,
//     maximizing its misprediction window (younger branches nested in
//     that window resolve eagerly once other work drains, so their
//     observations and rollbacks land inside it);
//   - execute indirect jumps as soon as their targets resolve — the
//     tool follows computed control flow architecturally, which is
//     also what opens the speculative stale-return window (Fig. 10);
//   - with forwarding-hazard detection enabled, defer store address
//     resolution and fork each load over all forwarding outcomes: read
//     (possibly stale) memory now, or first resolve the address of one
//     of the pending stores;
//   - execute everything else eagerly and in program order.
//
// Soundness (Thm. B.20): a secret-labeled observation under any
// schedule implies one under a schedule in this set, so exploring only
// these schedules suffices to detect SCT violations up to the bound.
//
// The engine is parameterized over a value domain (see domain.go): the
// same strategy drives the concrete reference machine of internal/core
// and the symbolic machine of internal/pitchfork. Domains may fork on
// a single directive (a symbolic branch condition splits into its
// feasible worlds); the engine treats every fork point uniformly.
//
// The exploration runs on one goroutine by default; Options.Workers
// switches to a work-stealing pool (see parallel.go), and
// Options.DedupEntries enables fingerprint-based pruning of
// re-converged states — in either domain.
package sched

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
)

// Options configure an exploration.
type Options struct {
	// Bound is the speculation bound: the maximum reorder-buffer size,
	// hence the maximum speculation depth. The paper runs 250 without
	// forwarding-hazard detection and 20 with it.
	Bound int
	// ForwardHazards enables exploration of store-forwarding outcomes
	// (Spectre v4 and the paper's "f" findings). Off, stores resolve
	// addresses eagerly and only v1/v1.1 schedules are generated.
	ForwardHazards bool
	// MaxStates bounds the number of explored states (forked paths ×
	// steps); 0 means DefaultMaxStates.
	MaxStates int
	// MaxRetired bounds retired instructions per path; 0 means
	// DefaultMaxRetired.
	MaxRetired int
	// StopAtFirst stops the exploration at the first violation.
	StopAtFirst bool
	// KeepSchedules records the full directive schedule of each
	// violation (memory-heavy for deep runs; on by default via
	// Explore).
	KeepSchedules bool
	// Workers is the number of exploration goroutines. 0 and 1 run the
	// classic serial depth-first exploration; n > 1 runs the
	// work-stealing parallel explorer of parallel.go, whose violations
	// are reported in deterministic schedule order (not discovery
	// order). Full parallel explorations are fully deterministic;
	// under an early stop (StopAtFirst, Interrupt, a stopping
	// OnViolation, or truncation) which states were reached before the
	// stop propagated is timing-dependent, so the stopping run's
	// States/Paths counts — and, for StopAtFirst, which single
	// violation is reported — may vary between runs.
	Workers int
	// DedupEntries, when positive, bounds a machine-fingerprint table
	// that prunes states whose configuration was already visited —
	// many forwarding-fork arms reconverge, so dedup cuts states
	// independently of parallelism. Pruning trades exactness for
	// speed: path counts shrink, and a 64-bit fingerprint collision
	// could in principle prune a genuinely new state. 0 disables.
	DedupEntries int
	// OnViolation, if non-nil, is invoked synchronously as each
	// violation is recorded, before exploration continues. Returning
	// false stops the exploration early, like StopAtFirst. With
	// Workers > 1 the callback is serialized by the pool but may be
	// invoked from different goroutines.
	OnViolation func(Violation) bool
	// Interrupt, if non-nil, is polled once per explored state.
	// Returning true aborts the exploration; the violations found so
	// far remain in the result and Result.Interrupted is set. With
	// Workers > 1 it must be safe for concurrent calls.
	Interrupt func() bool
	// Prune, if non-nil, supplies static pre-analysis verdicts that let
	// the explorer collapse speculation forks whose entire subtree is
	// provably violation-free (see PruneHints). The reported violation
	// set is identical with and without hints; States and Paths shrink.
	Prune PruneHints
}

// DefaultMaxStates and DefaultMaxRetired are the exploration budgets
// used when Options leaves them zero.
const (
	DefaultMaxStates  = 200_000
	DefaultMaxRetired = 20_000
)

// Violation is one detected SCT violation: a secret-labeled
// observation reachable under a worst-case schedule.
type Violation struct {
	Obs      core.Observation
	Schedule core.Schedule // schedule prefix that produced it (if kept)
	Trace    core.Trace    // observation trace up to and including Obs
	Kind     VariantKind   // heuristic Spectre-variant classification
	PC       isa.Addr      // program point of the instruction that produced Obs
	// Sources are the speculation primitives still unresolved when the
	// leak was detected — the guards the leaking instruction raced
	// ahead of. Fence-repair synthesis uses them to place fences at
	// the speculation source rather than at the leak.
	Sources []Source
	// Model is a witness assignment of the domain's symbolic inputs
	// reaching the leak (nil in the concrete domain).
	Model map[string]uint64
}

// SourceKind discriminates the speculation primitives a leak can hide
// behind.
type SourceKind uint8

const (
	// SrcBranch is an unresolved conditional branch (Spectre v1/v1.1).
	SrcBranch SourceKind = iota
	// SrcStore is a store whose address is still unresolved — the
	// stale-load window of Spectre v4 and the forwarding hazards.
	SrcStore
	// SrcRet is an in-flight return: its target is an RSB (or
	// attacker) prediction until the return-address load commits.
	SrcRet
)

// String names the source kind in the wire vocabulary.
func (k SourceKind) String() string {
	switch k {
	case SrcBranch:
		return "branch"
	case SrcStore:
		return "store"
	case SrcRet:
		return "return"
	}
	return "unknown"
}

// Source is one speculation source of a violation: the kind of guard
// and the program point of the guarding instruction. For the store of
// a call expansion (the return-address push) PC names the call itself.
type Source struct {
	Kind SourceKind
	PC   isa.Addr
}

// String renders the source, e.g. "branch@4".
func (s Source) String() string { return fmt.Sprintf("%s@%d", s.Kind, s.PC) }

// specSources collects the unresolved speculation primitives of the
// machine's reorder buffer, oldest first, deduplicated by (kind, pc).
func specSources(m Machine) []Source {
	// Violations are hot enough for a map allocation here to show up in
	// profiles; the slice stays tiny (bounded by the reorder buffer), so
	// a linear scan dedups cheaper than a map.
	var out []Source
	add := func(s Source) {
		for _, have := range out {
			if have == s {
				return
			}
		}
		out = append(out, s)
	}
	for i := m.BufMin(); i <= m.BufMax(); i++ {
		t, ok := m.View(i)
		if !ok {
			continue
		}
		switch t.Kind {
		case core.TBr:
			add(Source{Kind: SrcBranch, PC: t.PP})
		case core.TStore:
			if !t.AddrKnown {
				add(Source{Kind: SrcStore, PC: t.PP})
			}
		case core.TRet:
			add(Source{Kind: SrcRet, PC: t.PP})
		}
	}
	return out
}

// String renders the violation compactly.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s at pc %d", v.Kind, v.Obs, v.PC)
}

// VariantKind classifies a violation by its microarchitectural cause.
type VariantKind uint8

const (
	// VariantUnknown is reported when no classification rule applies.
	VariantUnknown VariantKind = iota
	// VariantV1 is classic bounds-check bypass: a leak while a
	// conditional branch is still speculatively unresolved.
	VariantV1
	// VariantV11 is Spectre v1.1: the leaked data was forwarded from a
	// speculative store.
	VariantV11
	// VariantV4 is speculative store bypass: a load executed ahead of
	// an unresolved store address and read stale data.
	VariantV4
	// VariantSeq marks a leak that occurs with no speculation in
	// flight: the program is not even sequentially constant-time.
	VariantSeq
)

// String names the variant.
func (k VariantKind) String() string {
	switch k {
	case VariantV1:
		return "spectre-v1"
	case VariantV11:
		return "spectre-v1.1"
	case VariantV4:
		return "spectre-v4"
	case VariantSeq:
		return "sequential-ct-violation"
	default:
		return "unclassified"
	}
}

// Result aggregates an exploration.
type Result struct {
	Violations []Violation
	// States is the number of explored machine states.
	States int
	// Paths is the number of completed exploration paths (halted,
	// budget-exhausted, stopped at a violation, or pruned by dedup).
	Paths int
	// Truncated reports whether the MaxStates budget was hit.
	Truncated bool
	// Interrupted reports whether Options.Interrupt (or an OnViolation
	// callback returning false) cut the exploration short.
	Interrupted bool
	// DedupHits is the number of states pruned because their machine
	// fingerprint was already in the dedup table.
	DedupHits int
	// Workers is the number of exploration goroutines the run used.
	Workers int
}

// SecretFree reports whether no violation was found.
func (r Result) SecretFree() bool { return len(r.Violations) == 0 }

// Explorer walks the worst-case schedules of a machine. An Explorer is
// immutable after construction: all per-exploration state lives in the
// Explore call, so a single Explorer is safe for concurrent and
// interleaved Explore calls.
type Explorer struct {
	opts Options
}

// NewExplorer validates options and returns an explorer.
func NewExplorer(opts Options) (*Explorer, error) {
	if opts.Bound < 1 {
		return nil, fmt.Errorf("sched: speculation bound must be positive, got %d", opts.Bound)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("sched: workers must be non-negative, got %d", opts.Workers)
	}
	if opts.DedupEntries < 0 {
		return nil, fmt.Errorf("sched: dedup entries must be non-negative, got %d", opts.DedupEntries)
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxRetired == 0 {
		opts.MaxRetired = DefaultMaxRetired
	}
	return &Explorer{opts: opts}, nil
}

// state is one node of the exploration tree. The schedule and trace
// are immutable parent-pointer chains (see chain.go): forks share the
// prefix structurally instead of copying it, so cloning a state costs
// O(1) plus the machine's own copy-on-write fork. Nodes are pooled —
// use newState/releaseState, never allocate directly.
type state struct {
	m     Machine
	sched *schedNode
	// trace is the observation chain; each node carries the program
	// point of the instruction that produced the observation — so
	// violations point at the leaking instruction, not the fetch head
	// at detection time.
	trace *traceNode
	// secret is the oldest secret-labeled observation on the trace, or
	// nil — maintained incrementally as observations append, replacing
	// the full-trace FirstSecret scan per explored state.
	secret *traceNode
	// pendingFwd marks load indices whose forwarding fork has already
	// been taken in this state (so re-deciding after a partial store
	// resolution re-forks correctly but not infinitely). Lazily
	// allocated: most states never fork on forwarding.
	pendingFwd map[int]bool
}

func (s *state) clone() *state {
	c := newState()
	c.m = s.m.Clone()
	c.sched, c.trace, c.secret = s.sched, s.trace, s.secret
	if len(s.pendingFwd) > 0 {
		if c.pendingFwd == nil {
			c.pendingFwd = make(map[int]bool, len(s.pendingFwd))
		}
		for k, v := range s.pendingFwd {
			c.pendingFwd[k] = v
		}
	}
	return c
}

// markPendingFwd records that the load at buffer index i has taken its
// forwarding fork, allocating the map on first use.
func (s *state) markPendingFwd(i int) {
	if s.pendingFwd == nil {
		s.pendingFwd = make(map[int]bool, 2)
	}
	s.pendingFwd[i] = true
}

// Explore runs the worst-case schedules from the concrete machine's
// current configuration. The machine itself is not mutated.
func (e *Explorer) Explore(m *core.Machine) Result {
	return e.ExploreMachine(Concrete(m))
}

// ExploreMachine runs the worst-case schedules of any domain machine.
// The machine is cloned up front, so the caller's copy is not mutated.
func (e *Explorer) ExploreMachine(m Machine) Result {
	var dedup *dedupTable
	if e.opts.DedupEntries > 0 {
		dedup = newDedupTable(e.opts.DedupEntries)
	}
	root := newState()
	root.m = m.Clone()
	if e.opts.Workers > 1 {
		return exploreParallel(&e.opts, dedup, root)
	}
	return exploreSerial(&e.opts, dedup, root)
}

// exploreSerial is the classic single-goroutine depth-first driver.
func exploreSerial(opts *Options, dedup *dedupTable, root *state) Result {
	res := Result{Workers: 1}
	stopped := false
	stack := []*state{root}
	// Successors land directly on the stack as advance produces them
	// (same order as before: the last-emitted arm is explored first).
	emit := func(s *state) { stack = append(stack, s) }
	for len(stack) > 0 {
		if res.States >= opts.MaxStates {
			res.Truncated = true
			break
		}
		if opts.Interrupt != nil && opts.Interrupt() {
			res.Interrupted = true
			break
		}
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.States++

		done, deduped, viol := advance(opts, dedup, st, emit)
		if viol != nil {
			res.Violations = append(res.Violations, *viol)
			if opts.OnViolation != nil && !opts.OnViolation(*viol) {
				stopped = true
			}
		}
		if deduped {
			res.DedupHits++
		}
		if done {
			res.Paths++
			releaseState(st)
			if stopped {
				res.Interrupted = true
				break
			}
			if opts.StopAtFirst && len(res.Violations) > 0 {
				break
			}
		}
	}
	for _, s := range stack {
		releaseState(s)
	}
	return res
}

// advance pushes st forward by one strategy decision. It is a pure
// function of the options, the dedup table, and the state — it touches
// no explorer-level mutable state, so serial and parallel drivers share
// it. done=true means the path is finished (with viol set if it ended
// in a violation, deduped set if it was pruned as a revisited
// configuration); otherwise the successor states (one for deterministic
// steps, several at fork points) are delivered through emit, in
// deterministic order, avoiding a per-step slice allocation.
func advance(opts *Options, dedup *dedupTable, st *state, emit func(*state)) (done, deduped bool, viol *Violation) {
	m := st.m

	// Leak check on everything observed so far. The first secret
	// observation is tracked incrementally as the trace grows (see
	// apply), so the check is O(1); the trace prefix up to the leak is
	// materialized only now that a violation is actually recorded.
	if st.secret != nil {
		prefix := st.secret.materialize()
		v := Violation{
			Obs:     st.secret.o,
			Trace:   prefix,
			Kind:    classify(m, prefix, len(prefix)-1),
			PC:      st.secret.pp,
			Sources: specSources(m),
			Model:   m.Witness(),
		}
		if opts.KeepSchedules {
			v.Schedule = st.sched.materialize()
		}
		return true, false, &v
	}
	in, fetchable := m.Instr()
	if (m.BufLen() == 0 && !fetchable) || m.RetiredCount() >= opts.MaxRetired {
		return true, false, nil
	}
	// Dedup check after the leak and termination checks: a pruned
	// state is always secret-free so far, so its subtree's violations
	// are exactly those reachable from the first-visited equivalent
	// configuration.
	if dedup != nil && dedup.seen(m.Fingerprint()) {
		return true, true, nil
	}

	// Fetch phase: eager until the bound.
	if m.BufLen() < opts.Bound && fetchable {
		switch in.Kind {
		case isa.KBr:
			// A statically fork-free branch point can't lead to a
			// violation on either guess (and nothing already buffered can
			// leak), so one arm stands in for both.
			if pruneFork(m, opts.Prune, m.PC()) {
				if apply(opts, st, core.FetchGuess(true), emit) {
					return false, false, nil
				}
				return true, false, nil
			}
			// Fork both guesses; both arms delay branch execution. The
			// fetch either applies in both worlds or stalls in both (the
			// directive checks are guess-independent), so the clone is
			// made only once the first arm has succeeded.
			b := st.clone()
			if !apply(opts, st, core.FetchGuess(true), emit) {
				releaseState(b)
				return true, false, nil
			}
			if !apply(opts, b, core.FetchGuess(false), emit) {
				releaseState(b)
			}
			return false, false, nil
		case isa.KJmpi:
			// The tool follows the architecturally correct target
			// (it does not model indirect-jump speculation, §4).
			if target, ok := m.PeekJmpi(in); ok {
				if apply(opts, st, core.FetchTarget(target), emit) {
					return false, false, nil
				}
				return true, false, nil
			}
			// Target operands pending: fall through to execution.
		case isa.KRet:
			if _, ok := m.RSBTop(); !ok {
				// The tool does not model RSB underflow attacks;
				// predict through the in-memory return address.
				if target, ok := m.PeekRet(); ok {
					if apply(opts, st, core.FetchTarget(target), emit) {
						return false, false, nil
					}
					return true, false, nil
				}
				break // execute pending work first
			}
			if apply(opts, st, core.Fetch(), emit) {
				return false, false, nil
			}
			return true, false, nil
		default:
			if apply(opts, st, core.Fetch(), emit) {
				return false, false, nil
			}
			return true, false, nil
		}
	}

	// Execute phase: oldest actionable instruction first.
	if executePhase(opts, st, emit) {
		return false, false, nil
	}

	// Nothing else is actionable: retire if possible, otherwise force
	// the delayed control flow / store addresses, oldest first.
	i := m.BufMin()
	t, ok := m.View(i)
	if !ok {
		// Empty buffer and nothing fetchable at bound>0: halt was
		// handled above, so this is a wedged path (e.g. jmpi whose
		// operands can never resolve).
		return true, false, nil
	}
	if t.Resolved {
		if apply(opts, st, core.Retire(), emit) {
			return false, false, nil
		}
		// A call/ret marker retires only with its whole expansion
		// resolved: force the first unresolved member.
		for j := i + 1; j <= m.BufMax(); j++ {
			u, ok := m.View(j)
			if !ok || u.Resolved {
				continue
			}
			if forceOne(opts, st, j, u, emit) {
				return false, false, nil
			}
			break
		}
		return true, false, nil
	}
	if forceOne(opts, st, i, t, emit) {
		return false, false, nil
	}
	return true, false, nil
}

// forceOne issues the directive that makes progress on an unresolved
// instruction regardless of the deferral rules — used when nothing can
// proceed otherwise (delayed branches at the head, deferred store
// addresses blocking retirement, call/ret expansion members).
func forceOne(opts *Options, st *state, i int, t TransientView, emit func(*state)) bool {
	switch t.Kind {
	case core.TBr, core.TJmpi, core.TLoad, core.TOp:
		return apply(opts, st, core.Execute(i), emit)
	case core.TStore:
		if !t.ValKnown {
			return apply(opts, st, core.ExecuteValue(i), emit)
		}
		return apply(opts, st, core.ExecuteAddr(i), emit)
	}
	return false
}

// executePhase scans the buffer in ascending order for the first
// eagerly executable instruction, applying the deferral rules for
// branches (always delayed) and store addresses (delayed under
// forwarding-hazard mode). Loads fork over forwarding outcomes.
// Successors are delivered through emit; the return reports whether a
// step was taken.
func executePhase(opts *Options, st *state, emit func(*state)) bool {
	m := st.m
	for i := m.BufMin(); i <= m.BufMax(); i++ {
		t, ok := m.View(i)
		if !ok {
			continue
		}
		if m.FenceBefore(i) {
			break // nothing beyond a pending fence may execute
		}
		switch t.Kind {
		case core.TOp:
			if apply(opts, st, core.Execute(i), emit) {
				return true
			}
		case core.TJmpi:
			// Indirect jumps execute as soon as their target operands
			// resolve: the tool follows computed targets architecturally
			// (no jmpi speculation), and eager resolution is what opens
			// the speculative stale-return window of the Fig. 10 gadget
			// — the transient return must happen *before* the pending
			// store address resolves and flags the hazard.
			if apply(opts, st, core.Execute(i), emit) {
				return true
			}
		case core.TBr:
			continue // branches resolve in the second pass below
		case core.TStore:
			if !t.ValKnown {
				if apply(opts, st, core.ExecuteValue(i), emit) {
					return true
				}
				continue
			}
			if !t.AddrKnown && !opts.ForwardHazards {
				if apply(opts, st, core.ExecuteAddr(i), emit) {
					return true
				}
			}
			continue
		case core.TLoad:
			if loadFork(opts, st, i, emit) {
				return true
			}
		}
	}
	// Second pass: with all non-branch work drained, resolve pending
	// branches young-to-old — the oldest in-flight branch is delayed
	// to the last possible moment (maximizing its misprediction
	// window), while branches nested inside that window resolve
	// eagerly so their own observations and rollbacks land within it.
	oldest := oldestPendingBranch(m)
	for i := m.BufMax(); i > oldest && oldest != 0; i-- {
		t, ok := m.View(i)
		if !ok || t.Kind != core.TBr || m.FenceBefore(i) {
			continue
		}
		if apply(opts, st, core.Execute(i), emit) {
			return true
		}
	}
	return false
}

// loadFork decides how the load at index i resolves. Without
// forwarding hazards, or with no pending store addresses below it, the
// load simply executes. Otherwise the fork of Def. B.18 applies: one
// arm executes the load immediately (reading stale memory or
// forwarding from an already-resolved store), and one arm per pending
// store resolves that store's address first, then re-decides.
func loadFork(opts *Options, st *state, i int, emit func(*state)) bool {
	m := st.m
	var pending []int
	if opts.ForwardHazards && !st.pendingFwd[i] {
		for j := m.BufMin(); j < i; j++ {
			if s, ok := m.View(j); ok && s.Kind == core.TStore && !s.AddrKnown && s.ValKnown {
				pending = append(pending, j)
			}
		}
	}
	if len(pending) == 0 {
		return apply(opts, st, core.Execute(i), emit)
	}
	// A statically fork-free load point can't produce a violation under
	// any forwarding outcome (and nothing buffered can leak), so
	// executing the load now stands in for the whole forwarding fork.
	if t, ok := m.View(i); ok && pruneFork(m, opts.Prune, t.PP) {
		return apply(opts, st, core.Execute(i), emit)
	}
	acted := false
	// Arm 0: execute the load now, skipping the pending stores.
	now := st.clone()
	now.markPendingFwd(i)
	if apply(opts, now, core.Execute(i), emit) {
		acted = true
	} else {
		releaseState(now)
	}
	// One arm per pending store: resolve its address first. The load
	// re-decides on the next visit (and may fork again over the
	// remaining pending stores).
	for _, j := range pending {
		arm := st.clone()
		if apply(opts, arm, core.ExecuteAddr(j), emit) {
			acted = true
		} else {
			releaseState(arm)
		}
	}
	if acted {
		// Every live arm is a clone; the parent node itself was not
		// emitted and the path is not "done", so recycle it here.
		releaseState(st)
	}
	return acted
}

// apply runs d on the state's machine, threading schedule, trace, and
// source program points through to each successor; false means the
// directive stalled (the path cannot continue this way). Deterministic
// steps mutate st in place and emit it; at a domain fork the chains
// are shared structurally — each successor just pushes its own
// arm-disambiguated directive onto the common prefix and is emitted in
// arm order. A rollback invalidates the load-fork bookkeeping, since
// buffer indices are reused by re-fetched instructions.
//
// The schedule chain is extended only when some consumer exists —
// KeepSchedules (violation schedules) or a parallel run (whose
// deterministic merge keys are schedule prefixes); a serial counting
// exploration skips the per-step node entirely.
func apply(opts *Options, st *state, d core.Directive, emit func(*state)) bool {
	pp := sourcePoint(st.m, d)
	succs, err := st.m.Step(d)
	if err != nil || len(succs) == 0 {
		return false
	}
	recordSched := opts.KeepSchedules || opts.Workers > 1
	// Pre-fork bookkeeping: every arm extends these chains (immutable,
	// so sharing them with an already-emitted arm is safe). The
	// pendingFwd map is mutable and stays owned by st — the first arm —
	// which emit may hand to another worker immediately; snapshot it
	// before any arm is published so later arms never read a map a
	// thief might already be mutating.
	baseSched, baseTrace, baseSecret := st.sched, st.trace, st.secret
	var basePF map[int]bool
	if len(succs) > 1 && len(st.pendingFwd) > 0 {
		basePF = make(map[int]bool, len(st.pendingFwd))
		for idx, v := range st.pendingFwd {
			basePF[idx] = v
		}
	}
	for k, sc := range succs {
		ns := st
		if k > 0 {
			ns = newState()
			if len(basePF) > 0 {
				if ns.pendingFwd == nil {
					ns.pendingFwd = make(map[int]bool, len(basePF))
				}
				for idx, v := range basePF {
					ns.pendingFwd[idx] = v
				}
			}
		}
		ns.m = sc.M
		if recordSched {
			ns.sched = baseSched.push(sc.D)
		}
		ns.trace, ns.secret = baseTrace, baseSecret
		for _, o := range sc.Obs {
			ns.trace = ns.trace.push(o, pp)
			if ns.secret == nil && o.Secret() {
				ns.secret = ns.trace
			}
			if o.Kind == core.ORollback {
				// Drop (never clear in place: later arms copy from the
				// shared base map) the load-fork bookkeeping.
				ns.pendingFwd = nil
			}
		}
		emit(ns)
	}
	return true
}

// sourcePoint resolves, before the directive runs, the program point
// of the instruction it acts on — the point any observations the step
// produces are attributed to. Execute-family directives name a buffer
// index; retire acts on the buffer head; fetch directives produce no
// observations, so the fetch head is an adequate fallback.
func sourcePoint(m Machine, d core.Directive) isa.Addr {
	switch d.Kind {
	case core.DExecute, core.DExecValue, core.DExecAddr, core.DExecFwd:
		if t, ok := m.View(d.I); ok {
			return t.PP
		}
	case core.DRetire:
		if t, ok := m.View(m.BufMin()); ok {
			return t.PP
		}
	}
	return m.PC()
}

// classify heuristically attributes a violation to a Spectre variant
// from the machine state at detection time.
func classify(m Machine, trace core.Trace, at int) VariantKind {
	brInFlight := false
	staleWindow := false
	fwdSecret := false
	unresolved := false
	for i := m.BufMin(); i <= m.BufMax(); i++ {
		t, ok := m.View(i)
		if !ok {
			continue
		}
		if !t.Resolved {
			unresolved = true
		}
		switch t.Kind {
		case core.TBr:
			brInFlight = true
		case core.TStore:
			if !t.AddrKnown {
				staleWindow = true
			}
		}
		// A secret load value forwarded from a buffered store marks the
		// v1.1 family.
		if t.FwdSecret {
			fwdSecret = true
		}
	}
	// Forwarded secret ⇒ v1.1 family if speculating on a branch.
	for k := 0; k <= at; k++ {
		if trace[k].Kind == core.OFwd && trace[k].Secret() {
			fwdSecret = true
		}
	}
	switch {
	case brInFlight && fwdSecret:
		return VariantV11
	case brInFlight:
		return VariantV1
	case staleWindow:
		return VariantV4
	case m.BufLen() == 0 || !unresolved:
		return VariantSeq
	default:
		return VariantUnknown
	}
}

// Explore is the package-level convenience entry point with schedule
// recording enabled.
func Explore(m *core.Machine, bound int, forwardHazards bool) (Result, error) {
	e, err := NewExplorer(Options{Bound: bound, ForwardHazards: forwardHazards, KeepSchedules: true})
	if err != nil {
		return Result{}, err
	}
	return e.Explore(m), nil
}

// CountSchedules runs an exploration purely to count completed paths —
// the |DT(n)| growth measurement behind the paper's bound-20-vs-250
// tractability discussion.
func CountSchedules(m *core.Machine, bound int, forwardHazards bool, maxStates int) (paths, states int, truncated bool, err error) {
	e, err := NewExplorer(Options{
		Bound:          bound,
		ForwardHazards: forwardHazards,
		MaxStates:      maxStates,
	})
	if err != nil {
		return 0, 0, false, err
	}
	res := e.Explore(m)
	return res.Paths, res.States, res.Truncated, nil
}

// oldestPendingBranch returns the lowest buffer index holding an
// unresolved conditional branch, or 0 if none.
func oldestPendingBranch(m Machine) int {
	for j := m.BufMin(); j <= m.BufMax(); j++ {
		if t, ok := m.View(j); ok && t.Kind == core.TBr {
			return j
		}
	}
	return 0
}
