// Package sched implements Pitchfork's worst-case schedule generation
// (§4.1 of the paper, formalized as the tool schedules DT(n) of
// Def. B.18) as a depth-first exploration over the speculative machine.
//
// The strategy, per the paper:
//
//   - fetch eagerly until the reorder buffer reaches the speculation
//     bound, retiring only as necessary to fetch;
//   - at each conditional branch, fork schedules for both guesses and
//     execute the *oldest* in-flight branch as late as possible,
//     maximizing its misprediction window (younger branches nested in
//     that window resolve eagerly once other work drains, so their
//     observations and rollbacks land inside it);
//   - execute indirect jumps as soon as their targets resolve — the
//     tool follows computed control flow architecturally, which is
//     also what opens the speculative stale-return window (Fig. 10);
//   - with forwarding-hazard detection enabled, defer store address
//     resolution and fork each load over all forwarding outcomes: read
//     (possibly stale) memory now, or first resolve the address of one
//     of the pending stores;
//   - execute everything else eagerly and in program order.
//
// Soundness (Thm. B.20): a secret-labeled observation under any
// schedule implies one under a schedule in this set, so exploring only
// these schedules suffices to detect SCT violations up to the bound.
//
// The exploration runs on one goroutine by default; Options.Workers
// switches to a work-stealing pool (see parallel.go), and
// Options.DedupEntries enables fingerprint-based pruning of
// re-converged states.
package sched

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Options configure an exploration.
type Options struct {
	// Bound is the speculation bound: the maximum reorder-buffer size,
	// hence the maximum speculation depth. The paper runs 250 without
	// forwarding-hazard detection and 20 with it.
	Bound int
	// ForwardHazards enables exploration of store-forwarding outcomes
	// (Spectre v4 and the paper's "f" findings). Off, stores resolve
	// addresses eagerly and only v1/v1.1 schedules are generated.
	ForwardHazards bool
	// MaxStates bounds the number of explored states (forked paths ×
	// steps); 0 means DefaultMaxStates.
	MaxStates int
	// MaxRetired bounds retired instructions per path; 0 means
	// DefaultMaxRetired.
	MaxRetired int
	// StopAtFirst stops the exploration at the first violation.
	StopAtFirst bool
	// KeepSchedules records the full directive schedule of each
	// violation (memory-heavy for deep runs; on by default via
	// Explore).
	KeepSchedules bool
	// Workers is the number of exploration goroutines. 0 and 1 run the
	// classic serial depth-first exploration; n > 1 runs the
	// work-stealing parallel explorer of parallel.go, whose violations
	// are reported in deterministic schedule order (not discovery
	// order). Full parallel explorations are fully deterministic;
	// under an early stop (StopAtFirst, Interrupt, a stopping
	// OnViolation, or truncation) which states were reached before the
	// stop propagated is timing-dependent, so the stopping run's
	// States/Paths counts — and, for StopAtFirst, which single
	// violation is reported — may vary between runs.
	Workers int
	// DedupEntries, when positive, bounds a machine-fingerprint table
	// that prunes states whose configuration was already visited —
	// many forwarding-fork arms reconverge, so dedup cuts states
	// independently of parallelism. Pruning trades exactness for
	// speed: path counts shrink, and a 64-bit fingerprint collision
	// could in principle prune a genuinely new state. 0 disables.
	DedupEntries int
	// OnViolation, if non-nil, is invoked synchronously as each
	// violation is recorded, before exploration continues. Returning
	// false stops the exploration early, like StopAtFirst. With
	// Workers > 1 the callback is serialized by the pool but may be
	// invoked from different goroutines.
	OnViolation func(Violation) bool
	// Interrupt, if non-nil, is polled once per explored state.
	// Returning true aborts the exploration; the violations found so
	// far remain in the result and Result.Interrupted is set. With
	// Workers > 1 it must be safe for concurrent calls.
	Interrupt func() bool
}

// DefaultMaxStates and DefaultMaxRetired are the exploration budgets
// used when Options leaves them zero.
const (
	DefaultMaxStates  = 200_000
	DefaultMaxRetired = 20_000
)

// Violation is one detected SCT violation: a secret-labeled
// observation reachable under a worst-case schedule.
type Violation struct {
	Obs      core.Observation
	Schedule core.Schedule // schedule prefix that produced it (if kept)
	Trace    core.Trace    // observation trace up to and including Obs
	Kind     VariantKind   // heuristic Spectre-variant classification
	PC       isa.Addr      // program point of the instruction that produced Obs
	// Sources are the speculation primitives still unresolved when the
	// leak was detected — the guards the leaking instruction raced
	// ahead of. Fence-repair synthesis uses them to place fences at
	// the speculation source rather than at the leak.
	Sources []Source
}

// SourceKind discriminates the speculation primitives a leak can hide
// behind.
type SourceKind uint8

const (
	// SrcBranch is an unresolved conditional branch (Spectre v1/v1.1).
	SrcBranch SourceKind = iota
	// SrcStore is a store whose address is still unresolved — the
	// stale-load window of Spectre v4 and the forwarding hazards.
	SrcStore
	// SrcRet is an in-flight return: its target is an RSB (or
	// attacker) prediction until the return-address load commits.
	SrcRet
)

// String names the source kind in the wire vocabulary.
func (k SourceKind) String() string {
	switch k {
	case SrcBranch:
		return "branch"
	case SrcStore:
		return "store"
	case SrcRet:
		return "return"
	}
	return "unknown"
}

// Source is one speculation source of a violation: the kind of guard
// and the program point of the guarding instruction. For the store of
// a call expansion (the return-address push) PC names the call itself.
type Source struct {
	Kind SourceKind
	PC   isa.Addr
}

// String renders the source, e.g. "branch@4".
func (s Source) String() string { return fmt.Sprintf("%s@%d", s.Kind, s.PC) }

// specSources collects the unresolved speculation primitives of the
// machine's reorder buffer, oldest first, deduplicated by (kind, pc).
func specSources(m *core.Machine) []Source {
	var out []Source
	seen := make(map[Source]bool)
	add := func(s Source) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, i := range m.Buf.Indices() {
		t, _ := m.Buf.Get(i)
		switch t.Kind {
		case core.TBr:
			add(Source{Kind: SrcBranch, PC: t.PP})
		case core.TStore:
			if !t.AddrKnown {
				add(Source{Kind: SrcStore, PC: t.PP})
			}
		case core.TRet:
			add(Source{Kind: SrcRet, PC: t.PP})
		}
	}
	return out
}

// String renders the violation compactly.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s at pc %d", v.Kind, v.Obs, v.PC)
}

// VariantKind classifies a violation by its microarchitectural cause.
type VariantKind uint8

const (
	// VariantUnknown is reported when no classification rule applies.
	VariantUnknown VariantKind = iota
	// VariantV1 is classic bounds-check bypass: a leak while a
	// conditional branch is still speculatively unresolved.
	VariantV1
	// VariantV11 is Spectre v1.1: the leaked data was forwarded from a
	// speculative store.
	VariantV11
	// VariantV4 is speculative store bypass: a load executed ahead of
	// an unresolved store address and read stale data.
	VariantV4
	// VariantSeq marks a leak that occurs with no speculation in
	// flight: the program is not even sequentially constant-time.
	VariantSeq
)

// String names the variant.
func (k VariantKind) String() string {
	switch k {
	case VariantV1:
		return "spectre-v1"
	case VariantV11:
		return "spectre-v1.1"
	case VariantV4:
		return "spectre-v4"
	case VariantSeq:
		return "sequential-ct-violation"
	default:
		return "unclassified"
	}
}

// Result aggregates an exploration.
type Result struct {
	Violations []Violation
	// States is the number of explored machine states.
	States int
	// Paths is the number of completed exploration paths (halted,
	// budget-exhausted, stopped at a violation, or pruned by dedup).
	Paths int
	// Truncated reports whether the MaxStates budget was hit.
	Truncated bool
	// Interrupted reports whether Options.Interrupt (or an OnViolation
	// callback returning false) cut the exploration short.
	Interrupted bool
	// DedupHits is the number of states pruned because their machine
	// fingerprint was already in the dedup table.
	DedupHits int
	// Workers is the number of exploration goroutines the run used.
	Workers int
}

// SecretFree reports whether no violation was found.
func (r Result) SecretFree() bool { return len(r.Violations) == 0 }

// Explorer walks the worst-case schedules of a machine. An Explorer is
// immutable after construction: all per-exploration state lives in the
// Explore call, so a single Explorer is safe for concurrent and
// interleaved Explore calls.
type Explorer struct {
	opts Options
}

// NewExplorer validates options and returns an explorer.
func NewExplorer(opts Options) (*Explorer, error) {
	if opts.Bound < 1 {
		return nil, fmt.Errorf("sched: speculation bound must be positive, got %d", opts.Bound)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("sched: workers must be non-negative, got %d", opts.Workers)
	}
	if opts.DedupEntries < 0 {
		return nil, fmt.Errorf("sched: dedup entries must be non-negative, got %d", opts.DedupEntries)
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxRetired == 0 {
		opts.MaxRetired = DefaultMaxRetired
	}
	return &Explorer{opts: opts}, nil
}

// state is one node of the exploration tree.
type state struct {
	m     *core.Machine
	sched core.Schedule
	trace core.Trace
	// tracePP records, per trace entry, the program point of the
	// instruction that produced the observation — so violations point
	// at the leaking instruction, not the fetch head at detection time.
	tracePP []isa.Addr
	// loadChoicesDone marks load indices whose forwarding fork has
	// already been taken in this state (so re-deciding after a partial
	// store resolution re-forks correctly but not infinitely).
	pendingFwd map[int]bool
}

func (s *state) clone() *state {
	c := &state{
		m:          s.m.Clone(),
		sched:      append(core.Schedule(nil), s.sched...),
		trace:      append(core.Trace(nil), s.trace...),
		tracePP:    append([]isa.Addr(nil), s.tracePP...),
		pendingFwd: make(map[int]bool, len(s.pendingFwd)),
	}
	for k, v := range s.pendingFwd {
		c.pendingFwd[k] = v
	}
	return c
}

// Explore runs the worst-case schedules from the machine's current
// configuration. The machine itself is not mutated.
func (e *Explorer) Explore(m *core.Machine) Result {
	var dedup *dedupTable
	if e.opts.DedupEntries > 0 {
		dedup = newDedupTable(e.opts.DedupEntries)
	}
	root := &state{m: m.Clone(), pendingFwd: make(map[int]bool)}
	if e.opts.Workers > 1 {
		return exploreParallel(&e.opts, dedup, root)
	}
	return exploreSerial(&e.opts, dedup, root)
}

// exploreSerial is the classic single-goroutine depth-first driver.
func exploreSerial(opts *Options, dedup *dedupTable, root *state) Result {
	res := Result{Workers: 1}
	stopped := false
	stack := []*state{root}
	for len(stack) > 0 {
		if res.States >= opts.MaxStates {
			res.Truncated = true
			break
		}
		if opts.Interrupt != nil && opts.Interrupt() {
			res.Interrupted = true
			break
		}
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.States++

		done, deduped, viol, forks := advance(opts, dedup, st)
		if viol != nil {
			res.Violations = append(res.Violations, *viol)
			if opts.OnViolation != nil && !opts.OnViolation(*viol) {
				stopped = true
			}
		}
		if deduped {
			res.DedupHits++
		}
		if done {
			res.Paths++
			if stopped {
				res.Interrupted = true
				break
			}
			if opts.StopAtFirst && len(res.Violations) > 0 {
				break
			}
			continue
		}
		stack = append(stack, forks...)
	}
	return res
}

// advance pushes st forward by one strategy decision. It is a pure
// function of the options, the dedup table, and the state — it touches
// no explorer-level mutable state, so serial and parallel drivers share
// it. done=true means the path is finished (with viol set if it ended
// in a violation, deduped set if it was pruned as a revisited
// configuration); otherwise forks holds the successor states (one for
// deterministic steps, several at fork points).
func advance(opts *Options, dedup *dedupTable, st *state) (done, deduped bool, viol *Violation, forks []*state) {
	m := st.m

	// Leak check on everything observed so far.
	if i := st.trace.FirstSecret(); i >= 0 {
		v := Violation{
			Obs:     st.trace[i],
			Trace:   append(core.Trace(nil), st.trace[:i+1]...),
			Kind:    classify(m, st.trace, i),
			PC:      st.tracePP[i],
			Sources: specSources(m),
		}
		if opts.KeepSchedules {
			v.Schedule = append(core.Schedule(nil), st.sched...)
		}
		return true, false, &v, nil
	}
	if m.Halted() || m.Retired >= opts.MaxRetired {
		return true, false, nil, nil
	}
	// Dedup check after the leak and termination checks: a pruned
	// state is always secret-free so far, so its subtree's violations
	// are exactly those reachable from the first-visited equivalent
	// configuration.
	if dedup != nil && dedup.seen(m.Fingerprint()) {
		return true, true, nil, nil
	}

	// Fetch phase: eager until the bound.
	if m.Buf.Len() < opts.Bound {
		if in, ok := m.Prog.At(m.PC); ok {
			switch in.Kind {
			case isa.KBr:
				// Fork both guesses; both arms delay branch execution.
				a, b := st, st.clone()
				if step(a, core.FetchGuess(true)) && step(b, core.FetchGuess(false)) {
					return false, false, nil, []*state{a, b}
				}
				return true, false, nil, nil
			case isa.KJmpi:
				// The tool follows the architecturally correct target
				// (it does not model indirect-jump speculation, §4).
				if target, ok := peekJmpi(m, in); ok {
					if step(st, core.FetchTarget(target)) {
						return false, false, nil, []*state{st}
					}
					return true, false, nil, nil
				}
				// Target operands pending: fall through to execution.
			case isa.KRet:
				if _, ok := m.RSB.Top(); !ok {
					// The tool does not model RSB underflow attacks;
					// predict through the in-memory return address.
					if target, ok := peekRet(m); ok {
						if step(st, core.FetchTarget(target)) {
							return false, false, nil, []*state{st}
						}
						return true, false, nil, nil
					}
					break // execute pending work first
				}
				if step(st, core.Fetch()) {
					return false, false, nil, []*state{st}
				}
				return true, false, nil, nil
			default:
				if step(st, core.Fetch()) {
					return false, false, nil, []*state{st}
				}
				return true, false, nil, nil
			}
		}
	}

	// Execute phase: oldest actionable instruction first.
	if forks, acted := executePhase(opts, st); acted {
		return false, false, nil, forks
	}

	// Nothing else is actionable: retire if possible, otherwise force
	// the delayed control flow / store addresses, oldest first.
	i := m.Buf.Min()
	t, ok := m.Buf.Get(i)
	if !ok {
		// Empty buffer and nothing fetchable at bound>0: halt was
		// handled above, so this is a wedged path (e.g. jmpi whose
		// operands can never resolve).
		return true, false, nil, nil
	}
	if t.Resolved() {
		if step(st, core.Retire()) {
			return false, false, nil, []*state{st}
		}
		// A call/ret marker retires only with its whole expansion
		// resolved: force the first unresolved member.
		for j := i + 1; j <= m.Buf.Max(); j++ {
			u, ok := m.Buf.Get(j)
			if !ok || u.Resolved() {
				continue
			}
			if forceOne(st, j, u) {
				return false, false, nil, []*state{st}
			}
			break
		}
		return true, false, nil, nil
	}
	if forceOne(st, i, t) {
		return false, false, nil, []*state{st}
	}
	return true, false, nil, nil
}

// forceOne issues the directive that makes progress on an unresolved
// instruction regardless of the deferral rules — used when nothing can
// proceed otherwise (delayed branches at the head, deferred store
// addresses blocking retirement, call/ret expansion members).
func forceOne(st *state, i int, t *core.Transient) bool {
	switch t.Kind {
	case core.TBr, core.TJmpi, core.TLoad, core.TOp:
		return step(st, core.Execute(i))
	case core.TStore:
		if !t.ValKnown {
			return step(st, core.ExecuteValue(i))
		}
		return step(st, core.ExecuteAddr(i))
	}
	return false
}

// executePhase scans the buffer in ascending order for the first
// eagerly executable instruction, applying the deferral rules for
// branches (always delayed) and store addresses (delayed under
// forwarding-hazard mode). Loads fork over forwarding outcomes.
func executePhase(opts *Options, st *state) ([]*state, bool) {
	m := st.m
	for _, i := range m.Buf.Indices() {
		t, _ := m.Buf.Get(i)
		if m.Buf.FenceBefore(i) {
			break // nothing beyond a pending fence may execute
		}
		switch t.Kind {
		case core.TOp:
			if step(st, core.Execute(i)) {
				return []*state{st}, true
			}
		case core.TJmpi:
			// Indirect jumps execute as soon as their target operands
			// resolve: the tool follows computed targets architecturally
			// (no jmpi speculation), and eager resolution is what opens
			// the speculative stale-return window of the Fig. 10 gadget
			// — the transient return must happen *before* the pending
			// store address resolves and flags the hazard.
			if step(st, core.Execute(i)) {
				return []*state{st}, true
			}
		case core.TBr:
			continue // branches resolve in the second pass below
		case core.TStore:
			if !t.ValKnown {
				if step(st, core.ExecuteValue(i)) {
					return []*state{st}, true
				}
				continue
			}
			if !t.AddrKnown && !opts.ForwardHazards {
				if step(st, core.ExecuteAddr(i)) {
					return []*state{st}, true
				}
			}
			continue
		case core.TLoad:
			forks, acted := loadFork(opts, st, i)
			if acted {
				return forks, true
			}
		}
	}
	// Second pass: with all non-branch work drained, resolve pending
	// branches young-to-old — the oldest in-flight branch is delayed
	// to the last possible moment (maximizing its misprediction
	// window), while branches nested inside that window resolve
	// eagerly so their own observations and rollbacks land within it.
	oldest := oldestPendingBranch(m)
	for i := m.Buf.Max(); i > oldest && oldest != 0; i-- {
		t, ok := m.Buf.Get(i)
		if !ok || t.Kind != core.TBr || m.Buf.FenceBefore(i) {
			continue
		}
		if step(st, core.Execute(i)) {
			return []*state{st}, true
		}
	}
	return nil, false
}

// loadFork decides how the load at index i resolves. Without
// forwarding hazards, or with no pending store addresses below it, the
// load simply executes. Otherwise the fork of Def. B.18 applies: one
// arm executes the load immediately (reading stale memory or
// forwarding from an already-resolved store), and one arm per pending
// store resolves that store's address first, then re-decides.
func loadFork(opts *Options, st *state, i int) ([]*state, bool) {
	m := st.m
	var pending []int
	if opts.ForwardHazards && !st.pendingFwd[i] {
		for j := m.Buf.Min(); j < i; j++ {
			if s, ok := m.Buf.Get(j); ok && s.Kind == core.TStore && !s.AddrKnown && s.ValKnown {
				pending = append(pending, j)
			}
		}
	}
	if len(pending) == 0 {
		if step(st, core.Execute(i)) {
			return []*state{st}, true
		}
		return nil, false
	}
	var forks []*state
	// Arm 0: execute the load now, skipping the pending stores.
	now := st.clone()
	now.pendingFwd[i] = true
	if step(now, core.Execute(i)) {
		forks = append(forks, now)
	}
	// One arm per pending store: resolve its address first. The load
	// re-decides on the next visit (and may fork again over the
	// remaining pending stores).
	for _, j := range pending {
		arm := st.clone()
		if step(arm, core.ExecuteAddr(j)) {
			forks = append(forks, arm)
		}
	}
	return forks, len(forks) > 0
}

// step applies d to the state, appending schedule, trace, and source
// program points; it reports whether the directive applied. Stalls end
// the path quietly; faults are treated the same (the path cannot
// continue). A rollback invalidates the load-fork bookkeeping, since
// buffer indices are reused by re-fetched instructions.
func step(st *state, d core.Directive) bool {
	pp := sourcePoint(st.m, d)
	obs, err := st.m.Step(d)
	if err != nil {
		return false
	}
	st.sched = append(st.sched, d)
	for _, o := range obs {
		st.trace = append(st.trace, o)
		st.tracePP = append(st.tracePP, pp)
		if o.Kind == core.ORollback {
			st.pendingFwd = make(map[int]bool)
		}
	}
	return true
}

// sourcePoint resolves, before the directive runs, the program point
// of the instruction it acts on — the point any observations the step
// produces are attributed to. Execute-family directives name a buffer
// index; retire acts on the buffer head; fetch directives produce no
// observations, so the fetch head is an adequate fallback.
func sourcePoint(m *core.Machine, d core.Directive) isa.Addr {
	switch d.Kind {
	case core.DExecute, core.DExecValue, core.DExecAddr, core.DExecFwd:
		if t, ok := m.Buf.Get(d.I); ok {
			return t.PP
		}
	case core.DRetire:
		if t, ok := m.Buf.Get(m.Buf.Min()); ok {
			return t.PP
		}
	}
	return m.PC
}

func peekJmpi(m *core.Machine, in isa.Instr) (isa.Addr, bool) {
	vals, ok := m.Buf.ResolveOperands(m.Buf.Max()+1, m.Regs, in.Args)
	if !ok {
		return 0, false
	}
	v, err := isa.EvalAddr(m.AddrMode, vals)
	if err != nil {
		return 0, false
	}
	return v.W, true
}

func peekRet(m *core.Machine) (isa.Addr, bool) {
	sp, ok := m.Buf.ResolveOperands(m.Buf.Max()+1, m.Regs, []isa.Operand{isa.R(mem.RSP)})
	if !ok {
		return 0, false
	}
	v, err := m.Mem.Read(sp[0].W)
	if err != nil {
		return 0, false
	}
	return v.W, true
}

// classify heuristically attributes a violation to a Spectre variant
// from the machine state at detection time.
func classify(m *core.Machine, trace core.Trace, at int) VariantKind {
	brInFlight := false
	staleWindow := false
	for _, i := range m.Buf.Indices() {
		t, _ := m.Buf.Get(i)
		switch t.Kind {
		case core.TBr:
			brInFlight = true
		case core.TStore:
			if !t.AddrKnown {
				staleWindow = true
			}
		}
	}
	// Forwarded secret ⇒ v1.1 family if speculating on a branch.
	fwdSecret := false
	for k := 0; k <= at; k++ {
		if trace[k].Kind == core.OFwd && trace[k].Secret() {
			fwdSecret = true
		}
	}
	// A secret load value forwarded from a buffered store also marks
	// v1.1: detect via a buffered resolved load with a store dep.
	for _, i := range m.Buf.Indices() {
		t, _ := m.Buf.Get(i)
		if t.Kind == core.TValue && t.FromLoad && t.Dep != core.NoDep && t.Val.IsSecret() {
			fwdSecret = true
		}
	}
	switch {
	case brInFlight && fwdSecret:
		return VariantV11
	case brInFlight:
		return VariantV1
	case staleWindow:
		return VariantV4
	case m.Buf.Empty() || allResolved(m):
		return VariantSeq
	default:
		return VariantUnknown
	}
}

func allResolved(m *core.Machine) bool {
	for _, i := range m.Buf.Indices() {
		t, _ := m.Buf.Get(i)
		if !t.Resolved() {
			return false
		}
	}
	return true
}

// Explore is the package-level convenience entry point with schedule
// recording enabled.
func Explore(m *core.Machine, bound int, forwardHazards bool) (Result, error) {
	e, err := NewExplorer(Options{Bound: bound, ForwardHazards: forwardHazards, KeepSchedules: true})
	if err != nil {
		return Result{}, err
	}
	return e.Explore(m), nil
}

// CountSchedules runs an exploration purely to count completed paths —
// the |DT(n)| growth measurement behind the paper's bound-20-vs-250
// tractability discussion.
func CountSchedules(m *core.Machine, bound int, forwardHazards bool, maxStates int) (paths, states int, truncated bool, err error) {
	e, err := NewExplorer(Options{
		Bound:          bound,
		ForwardHazards: forwardHazards,
		MaxStates:      maxStates,
	})
	if err != nil {
		return 0, 0, false, err
	}
	res := e.Explore(m)
	return res.Paths, res.States, res.Truncated, nil
}

// oldestPendingBranch returns the lowest buffer index holding an
// unresolved conditional branch, or 0 if none.
func oldestPendingBranch(m *core.Machine) int {
	for _, j := range m.Buf.Indices() {
		if t, ok := m.Buf.Get(j); ok && t.Kind == core.TBr {
			return j
		}
	}
	return 0
}
