package isa

import (
	"fmt"
	"sort"
)

// This file grows the single-instruction InsertAt rewriting into a
// patch-plan abstraction: a Plan collects per-point patches (blocks of
// inserted instructions and/or a replacement of the point's occupant),
// computes ONE address map for the whole plan, and applies everything
// in a single pass. The address-map semantics deliberately matches the
// composition of ascending InsertAt calls, so a plan of single-fence
// patches produces the byte-identical program and maps the repair
// engine's historical applySites loop did.

// Patch describes the rewrite of one original program point At:
// Insert instructions are placed, in order, BEFORE the point's
// occupant, and Replace (if non-nil) substitutes the occupant itself.
//
// Address fields of Insert and Replace instructions are written in
// ORIGINAL program coordinates and remapped like any other control
// reference when the plan is applied, with one convention: an address
// field of an INSERTED instruction that equals the patch's own At
// means "the next instruction of this block" — the natural
// fall-through that ends at the point's (possibly replaced) occupant.
// Fence(s) at At = s therefore chains exactly like InsertAt's
// Fence(at+1) did.
type Patch struct {
	At      Addr
	Insert  []Instr
	Replace *Instr
}

// Plan is a set of patches, at most one per program point. The zero
// value is an empty plan.
type Plan struct {
	patches []Patch
}

// Add merges a patch into the plan: a patch at a new point is
// inserted in address order; a patch at an existing point appends its
// Insert block after the instructions already there, and its Replace
// (if any) overrides the previous one.
func (pl *Plan) Add(p Patch) {
	i := sort.Search(len(pl.patches), func(i int) bool { return pl.patches[i].At >= p.At })
	if i < len(pl.patches) && pl.patches[i].At == p.At {
		pl.patches[i].Insert = append(pl.patches[i].Insert, p.Insert...)
		if p.Replace != nil {
			pl.patches[i].Replace = p.Replace
		}
		return
	}
	pl.patches = append(pl.patches, Patch{})
	copy(pl.patches[i+1:], pl.patches[i:])
	pl.patches[i] = p
}

// Empty reports whether the plan rewrites nothing.
func (pl *Plan) Empty() bool { return len(pl.patches) == 0 }

// Patches returns the plan's patches in ascending address order. The
// returned slice is the plan's own storage; callers must not mutate it.
func (pl *Plan) Patches() []Patch { return pl.patches }

// InsertCount is the total number of inserted instructions.
func (pl *Plan) InsertCount() int {
	n := 0
	for _, p := range pl.patches {
		n += len(p.Insert)
	}
	return n
}

// AddrMap translates original program points into the address space of
// a plan's rewritten program. It is computed once per plan — lookups
// are O(log sites) binary searches over the precomputed cumulative
// shifts instead of the per-call linear scans the repair engine's
// Result.MapAddr historically recomposed.
type AddrMap struct {
	sites []Addr // ascending insertion sites with at least one inserted instruction
	cum   []Addr // cum[i]: total instructions inserted at sites[0..i]
}

// shiftAtOrBelow returns the cumulative insertion count at sites ≤ a.
func (m AddrMap) shiftAtOrBelow(a Addr) Addr {
	i := sort.Search(len(m.sites), func(i int) bool { return m.sites[i] > a })
	if i == 0 {
		return 0
	}
	return m.cum[i-1]
}

// shiftBelow returns the cumulative insertion count at sites < a.
func (m AddrMap) shiftBelow(a Addr) Addr {
	i := sort.Search(len(m.sites), func(i int) bool { return m.sites[i] >= a })
	if i == 0 {
		return 0
	}
	return m.cum[i-1]
}

// Addr translates an instruction LOCATION: every instruction inserted
// at or below the point shifts it up.
func (m AddrMap) Addr(a Addr) Addr { return a + m.shiftAtOrBelow(a) }

// Target translates a control-flow TARGET: a target equal to a patch
// point keeps pointing at the start of the inserted block — control
// flows through the insertions into the old occupant — so only
// insertions strictly below shift it.
func (m AddrMap) Target(a Addr) Addr { return a + m.shiftBelow(a) }

// Map returns the plan's address map without applying it — the same
// map Apply will attach to its Rewrite. Mitigations that embed
// new-space addresses in inserted OPERANDS (which Apply deliberately
// never remaps) use it to pre-translate those immediates once every
// patch has been added.
func (pl *Plan) Map() AddrMap { return pl.addrMapOf() }

// addrMapOf precomputes the cumulative shifts of the plan's insertions.
func (pl *Plan) addrMapOf() AddrMap {
	var m AddrMap
	var total Addr
	for _, p := range pl.patches {
		if len(p.Insert) == 0 {
			continue
		}
		total += Addr(len(p.Insert))
		m.sites = append(m.sites, p.At)
		m.cum = append(m.cum, total)
	}
	return m
}

// Rewrite is the result of applying a plan: the rewritten program, the
// plan-wide address map, and provenance for every new-space point.
type Rewrite struct {
	// Prog is the rewritten program; the input program is not mutated.
	Prog *Program
	// Map translates original program points into Prog's address space.
	Map AddrMap
	// Orig maps the new-space location of every surviving original
	// instruction (replacements keep their point's identity) back to
	// its original program point. Inserted instructions are absent.
	Orig map[Addr]Addr
	// Inserted lists the new-space points of the plan-inserted
	// instructions, ascending.
	Inserted []Addr
	// interior marks new-space points no remapped original control
	// reference can name: inserted instructions that are not the first
	// of their block, and replaced occupants preceded by an inserted
	// block. Remapped control always enters a patch at its block head,
	// so these points are reachable only by falling through the block.
	interior map[Addr]bool
}

// Interior reports whether new-space point a is interior to a patch —
// a point no remapped original control reference can name (the address
// map's Target image skips every such slot). Behaviour certificates
// use this to recognize jump observations that only plan-authored
// instructions can produce.
func (r *Rewrite) Interior(a Addr) bool { return r.interior[a] }

// Apply rewrites orig under the plan and returns the new program with
// its address map. The input program is never mutated. Computed jmpi
// targets are NOT remapped (their value is only known at run time);
// callers must consult JmpiHazard first and certify behavioural
// preservation separately, exactly as with InsertAt.
func (pl *Plan) Apply(orig *Program) (*Rewrite, error) {
	for i := 1; i < len(pl.patches); i++ {
		if pl.patches[i].At == pl.patches[i-1].At {
			return nil, fmt.Errorf("isa: duplicate patch at %d", pl.patches[i].At)
		}
	}
	m := pl.addrMapOf()
	rw := &Rewrite{
		Prog:     NewProgram(m.Target(orig.Entry)),
		Map:      m,
		Orig:     make(map[Addr]Addr, len(orig.Instrs)),
		interior: make(map[Addr]bool),
	}
	remap := func(in Instr) Instr {
		in.Next = m.Target(in.Next)
		in.True = m.Target(in.True)
		in.False = m.Target(in.False)
		in.Callee = m.Target(in.Callee)
		in.RetPt = m.Target(in.RetPt)
		return in
	}
	// A field of an inserted instruction equal to its own patch point
	// falls through to the next slot of the block; anything else is an
	// original-space reference.
	remapInserted := func(in Instr, at, next Addr) Instr {
		f := func(a Addr) Addr {
			if a == at {
				return next
			}
			return m.Target(a)
		}
		in.Next = f(in.Next)
		in.True = f(in.True)
		in.False = f(in.False)
		in.Callee = f(in.Callee)
		in.RetPt = f(in.RetPt)
		return in
	}
	place := func(at Addr, in Instr) error {
		if _, clash := rw.Prog.Instrs[at]; clash {
			return fmt.Errorf("isa: plan places two instructions at %d", at)
		}
		rw.Prog.Instrs[at] = in
		return nil
	}

	// Surviving originals (replacements keep the point's identity).
	replaced := make(map[Addr]*Instr, len(pl.patches))
	replacedBehindBlock := make(map[Addr]bool, len(pl.patches))
	for _, p := range pl.patches {
		if p.Replace != nil {
			replaced[p.At] = p.Replace
			replacedBehindBlock[p.At] = len(p.Insert) > 0
		}
	}
	for at := range replaced {
		if _, ok := orig.Instrs[at]; !ok {
			return nil, fmt.Errorf("isa: replacement at %d, which has no instruction", at)
		}
	}
	// Caller-authored instructions (inserts, replacements) keep a nil
	// Args nil — the same verbatim placement InsertAt gave — but always
	// get their own backing array so the plan can be reused.
	cloneArgs := func(in *Instr) {
		if in.Args == nil {
			return
		}
		args := make([]Operand, len(in.Args))
		copy(args, in.Args)
		in.Args = args
	}
	for a, in := range orig.Instrs {
		if r := replaced[a]; r != nil {
			in = *r
			cloneArgs(&in)
			if replacedBehindBlock[a] {
				// Control enters the patch at its block head; the
				// replacement is reachable only by falling through.
				rw.interior[m.Addr(a)] = true
			}
		} else {
			// Surviving originals are copied exactly as Clone copies
			// them: a fresh, non-nil backing array.
			args := make([]Operand, len(in.Args))
			copy(args, in.Args)
			in.Args = args
		}
		na := m.Addr(a)
		if err := place(na, remap(in)); err != nil {
			return nil, err
		}
		rw.Orig[na] = a
	}

	// Inserted blocks: the block for site s occupies the slots directly
	// below the (shifted) occupant, starting at Target(s).
	for _, p := range pl.patches {
		start := m.Target(p.At)
		for j, in := range p.Insert {
			na := start + Addr(j)
			cloneArgs(&in)
			if err := place(na, remapInserted(in, p.At, na+1)); err != nil {
				return nil, err
			}
			rw.Inserted = append(rw.Inserted, na)
			if j > 0 {
				rw.interior[na] = true
			}
		}
	}
	sort.Slice(rw.Inserted, func(i, j int) bool { return rw.Inserted[i] < rw.Inserted[j] })

	// Symbols denoting instruction points flow through insertions like
	// any control target; data-address bindings (and halt-point labels,
	// indistinguishable from them) stay put — InsertAt's rule.
	for name, a := range orig.Symbols {
		if _, wasInstr := orig.Instrs[a]; wasInstr {
			rw.Prog.Symbols[name] = m.Target(a)
		} else {
			rw.Prog.Symbols[name] = a
		}
	}
	for a, v := range orig.Data {
		rw.Prog.Data[a] = v
	}
	if err := rw.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("isa: plan produces an invalid program: %w", err)
	}
	return rw, nil
}

// JmpiHazard reports whether applying the plan would silently retarget
// a computed jump of the ORIGINAL program. The rewrite remaps every
// static control-flow reference but cannot touch jmpi operands (the
// target is computed at run time): an immediate target T still reads T
// after the code at T shifted — a hazard for any insertion strictly
// below T (an insertion AT T is fine: the old target flows through the
// block) — and a register-computed target could denote any shifted
// point, so any insertion at all is a hazard. Points the plan REPLACES
// are skipped: the replacement's fields are plan-authored and remapped
// normally, and plan-inserted jmpis (e.g. a return-protection
// dispatch) read run-time values that are already post-rewrite
// addresses.
func (pl *Plan) JmpiHazard(orig *Program) (Addr, bool) {
	if pl.InsertCount() == 0 {
		return 0, false
	}
	m := pl.addrMapOf()
	replaced := make(map[Addr]bool, len(pl.patches))
	for _, p := range pl.patches {
		if p.Replace != nil {
			replaced[p.At] = true
		}
	}
	for _, pc := range orig.Points() {
		if replaced[pc] {
			continue
		}
		in, _ := orig.At(pc)
		if in.Kind != KJmpi {
			continue
		}
		if len(in.Args) == 1 && !in.Args[0].IsReg {
			if t := in.Args[0].Imm.W; m.Target(t) != t {
				return pc, true
			}
			continue
		}
		return pc, true
	}
	return 0, false
}
