package isa

import (
	"testing"
	"testing/quick"

	"pitchfork/internal/mem"
)

func TestOpcodeRoundTrip(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Fatal("bogus opcode resolved")
	}
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		op   Opcode
		args []mem.Value
		want mem.Word
	}{
		{OpAdd, []mem.Value{mem.Pub(1), mem.Pub(2), mem.Pub(3)}, 6},
		{OpSub, []mem.Value{mem.Pub(5), mem.Pub(7)}, ^mem.Word(1)},
		{OpMul, []mem.Value{mem.Pub(3), mem.Pub(4)}, 12},
		{OpDiv, []mem.Value{mem.Pub(9), mem.Pub(2)}, 4},
		{OpDiv, []mem.Value{mem.Pub(9), mem.Pub(0)}, 0},
		{OpMod, []mem.Value{mem.Pub(9), mem.Pub(4)}, 1},
		{OpMod, []mem.Value{mem.Pub(9), mem.Pub(0)}, 0},
		{OpAnd, []mem.Value{mem.Pub(0b1100), mem.Pub(0b1010)}, 0b1000},
		{OpOr, []mem.Value{mem.Pub(0b1100), mem.Pub(0b1010)}, 0b1110},
		{OpXor, []mem.Value{mem.Pub(0b1100), mem.Pub(0b1010)}, 0b0110},
		{OpShl, []mem.Value{mem.Pub(1), mem.Pub(65)}, 2},
		{OpShr, []mem.Value{mem.Pub(8), mem.Pub(2)}, 2},
		{OpSar, []mem.Value{mem.Pub(^mem.Word(0)), mem.Pub(4)}, ^mem.Word(0)},
		{OpNot, []mem.Value{mem.Pub(0)}, ^mem.Word(0)},
		{OpNeg, []mem.Value{mem.Pub(1)}, ^mem.Word(0)},
		{OpMov, []mem.Value{mem.Pub(17)}, 17},
		{OpEq, []mem.Value{mem.Pub(4), mem.Pub(4)}, 1},
		{OpNe, []mem.Value{mem.Pub(4), mem.Pub(4)}, 0},
		{OpLt, []mem.Value{mem.Pub(1), mem.Pub(2)}, 1},
		{OpLe, []mem.Value{mem.Pub(2), mem.Pub(2)}, 1},
		{OpGt, []mem.Value{mem.Pub(3), mem.Pub(2)}, 1},
		{OpGe, []mem.Value{mem.Pub(1), mem.Pub(2)}, 0},
		{OpSlt, []mem.Value{mem.Pub(^mem.Word(0)), mem.Pub(0)}, 1}, // -1 < 0 signed
		{OpSle, []mem.Value{mem.Pub(0), mem.Pub(^mem.Word(0))}, 0},
		{OpSgt, []mem.Value{mem.Pub(0), mem.Pub(^mem.Word(0))}, 1},
		{OpSge, []mem.Value{mem.Pub(^mem.Word(0)), mem.Pub(0)}, 0},
		{OpSelect, []mem.Value{mem.Pub(1), mem.Pub(10), mem.Pub(20)}, 10},
		{OpSelect, []mem.Value{mem.Pub(0), mem.Pub(10), mem.Pub(20)}, 20},
		{OpSucc, []mem.Value{mem.Pub(100)}, 99},
		{OpPred, []mem.Value{mem.Pub(100)}, 101},
	}
	for _, c := range cases {
		got, err := Eval(c.op, c.args)
		if err != nil {
			t.Errorf("%s: %v", c.op, err)
			continue
		}
		if got.W != c.want {
			t.Errorf("%s(%v) = %d, want %d", c.op, c.args, got.W, c.want)
		}
	}
}

func TestEvalLabelPropagation(t *testing.T) {
	got, err := Eval(OpAdd, []mem.Value{mem.Pub(1), mem.Sec(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got.L != mem.Secret {
		t.Fatal("secret operand must taint the result")
	}
	// Select taints through the condition even when branches are public.
	got, err = Eval(OpSelect, []mem.Value{mem.Sec(1), mem.Pub(10), mem.Pub(20)})
	if err != nil {
		t.Fatal(err)
	}
	if got.L != mem.Secret {
		t.Fatal("secret condition must taint select result")
	}
}

func TestEvalArityErrors(t *testing.T) {
	if _, err := Eval(OpSub, []mem.Value{mem.Pub(1)}); err == nil {
		t.Fatal("sub/1 must fail")
	}
	if _, err := Eval(OpAdd, nil); err == nil {
		t.Fatal("add/0 must fail")
	}
	if _, err := Eval(OpSelect, []mem.Value{mem.Pub(1), mem.Pub(2)}); err == nil {
		t.Fatal("select/2 must fail")
	}
}

// Property: Eval's label is always the join of the operand labels.
func TestEvalLabelIsJoin(t *testing.T) {
	f := func(a, b uint64, la, lb bool) bool {
		l1, l2 := mem.Public, mem.Public
		if la {
			l1 = mem.Secret
		}
		if lb {
			l2 = mem.Principal(3)
		}
		v, err := Eval(OpXor, []mem.Value{mem.V(a, l1), mem.V(b, l2)})
		if err != nil {
			return false
		}
		return v.L == l1.Join(l2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalAddrModes(t *testing.T) {
	sum, err := EvalAddr(AddrSum, []mem.Value{mem.Pub(0x40), mem.Pub(2)})
	if err != nil || sum.W != 0x42 {
		t.Fatalf("AddrSum = %v, %v", sum, err)
	}
	bs, err := EvalAddr(AddrBaseScale, []mem.Value{mem.Pub(0x40), mem.Pub(2), mem.Pub(8)})
	if err != nil || bs.W != 0x50 {
		t.Fatalf("AddrBaseScale = %v, %v", bs, err)
	}
	// BaseScale falls back to sum for non-ternary lists.
	bs2, err := EvalAddr(AddrBaseScale, []mem.Value{mem.Pub(0x40), mem.Pub(2)})
	if err != nil || bs2.W != 0x42 {
		t.Fatalf("AddrBaseScale/2 = %v, %v", bs2, err)
	}
	if _, err := EvalAddr(AddrSum, nil); err == nil {
		t.Fatal("empty address list must fail")
	}
	sec, _ := EvalAddr(AddrSum, []mem.Value{mem.Pub(0x40), mem.Sec(1)})
	if sec.L != mem.Secret {
		t.Fatal("address label must join operand labels")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Br(OpGt, []Operand{ImmW(4), R(0)}, 2, 4), "br(gt, [4, ra], 2, 4)"},
		{Load(1, []Operand{ImmW(0x40), R(0)}, 3), "(rb = load([64, ra], 3))"},
		{Store(R(1), []Operand{ImmW(0x40)}, 5), "store(rb, [64], 5)"},
		{Op(2, OpAdd, []Operand{ImmW(1), R(1)}, 6), "(rc = op(add, [1, rb], 6))"},
		{Jmpi([]Operand{ImmW(12), R(1)}), "jmpi([12, rb])"},
		{Call(3, 2), "call(3, 2)"},
		{Ret(), "ret"},
		{Fence(17), "fence 17"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestRegNames(t *testing.T) {
	if RegName(0) != "ra" || RegName(25) != "rz" {
		t.Fatal("letter registers")
	}
	if RegName(mem.RSP) != "rsp" || RegName(mem.RTMP) != "rtmp" {
		t.Fatal("conventional registers")
	}
	if RegName(40) != "r40" {
		t.Fatal("numbered registers")
	}
}

func TestBuilderSequencing(t *testing.T) {
	b := NewBuilder(1)
	p := b.Op(0, OpMov, ImmW(5)).
		Load(1, ImmW(0x40), R(0)).
		Store(R(1), ImmW(0x50)).
		Fence().
		MustBuild()
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	in, ok := p.At(1)
	if !ok || in.Kind != KOp || in.Next != 2 {
		t.Fatalf("instr 1 = %v", in)
	}
	in, _ = p.At(2)
	if in.Kind != KLoad || in.Next != 3 {
		t.Fatalf("instr 2 = %v", in)
	}
	if _, ok := p.At(5); ok {
		t.Fatal("point 5 must be a halt point")
	}
}

func TestBuilderBranchTargets(t *testing.T) {
	b := NewBuilder(1)
	b.Br(OpGt, []Operand{ImmW(4), R(0)}, 2, 4)
	b.Load(1, ImmW(0x40), R(0))
	b.Load(2, ImmW(0x44), R(1))
	p := b.MustBuild()
	in, _ := p.At(1)
	if in.True != 2 || in.False != 4 {
		t.Fatalf("branch targets = %d, %d", in.True, in.False)
	}
}

func TestValidateRejectsBadEntry(t *testing.T) {
	p := NewProgram(1)
	p.Add(2, Ret())
	if err := p.Validate(); err == nil {
		t.Fatal("missing entry must be rejected")
	}
}

func TestValidateRejectsArity(t *testing.T) {
	p := NewProgram(1)
	p.Add(1, Op(0, OpSub, []Operand{ImmW(1)}, 2))
	if err := p.Validate(); err == nil {
		t.Fatal("sub/1 must be rejected")
	}
	p = NewProgram(1)
	p.Add(1, Load(0, nil, 2))
	if err := p.Validate(); err == nil {
		t.Fatal("load with no address operands must be rejected")
	}
	p = NewProgram(1)
	p.Add(1, Instr{Kind: Kind(99)})
	if err := p.Validate(); err == nil {
		t.Fatal("invalid kind must be rejected")
	}
}

func TestProgramDataAndSymbols(t *testing.T) {
	p := NewProgram(1)
	p.SetRegion(0x40, []mem.Value{mem.Pub(1), mem.Sec(2)})
	p.Define("key", 0x41)
	m := p.InitialMemory()
	if v, _ := m.Read(0x41); v != mem.Sec(2) {
		t.Fatalf("data image = %v", v)
	}
	if a, ok := p.Lookup("key"); !ok || a != 0x41 {
		t.Fatal("symbol lookup")
	}
	if _, ok := p.Lookup("nope"); ok {
		t.Fatal("bogus symbol resolved")
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p := NewProgram(1)
	p.Add(1, Op(0, OpAdd, []Operand{ImmW(1), R(2)}, 2))
	p.SetData(9, mem.Pub(3))
	p.Define("x", 9)
	c := p.Clone()
	c.Instrs[1].Args[0] = ImmW(99)
	c.SetData(9, mem.Pub(4))
	c.Define("x", 10)
	if p.Instrs[1].Args[0] != ImmW(1) {
		t.Fatal("clone aliases instruction operands")
	}
	if p.Data[9] != mem.Pub(3) {
		t.Fatal("clone aliases data")
	}
	if p.Symbols["x"] != 9 {
		t.Fatal("clone aliases symbols")
	}
}

func TestPointsSorted(t *testing.T) {
	p := NewProgram(5)
	p.Add(7, Ret())
	p.Add(5, Ret())
	p.Add(6, Ret())
	pts := p.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i-1] >= pts[i] {
			t.Fatalf("Points not sorted: %v", pts)
		}
	}
}

func TestEmptyProgramValidates(t *testing.T) {
	if err := NewProgram(0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAtShiftsAndRemaps(t *testing.T) {
	// 1: br(gt, [4, ra], 2, 5); 2: load; 3: store; 4: call 1 ret 5;
	// insert a fence at 2 (before the load).
	p := NewProgram(1)
	p.Add(1, Br(OpGt, []Operand{ImmW(4), R(0)}, 2, 5))
	p.Add(2, Load(1, []Operand{ImmW(0x40), R(0)}, 3))
	p.Add(3, Store(R(1), []Operand{ImmW(0x41)}, 4))
	p.Add(4, Call(1, 5))
	p.SetData(0x40, mem.Pub(7))
	p.Define("body", 2)
	p.Define("st", 3)
	p.Define("buf", 0x40)
	p.InsertAt(2, Fence(3))

	if in, ok := p.At(2); !ok || in.Kind != KFence || in.Next != 3 {
		t.Fatalf("point 2 should hold the inserted fence, got %v", in)
	}
	br, _ := p.At(1)
	if br.True != 2 || br.False != 6 {
		t.Fatalf("branch targets = (%d, %d), want (2, 6): a target equal to the site flows through the fence", br.True, br.False)
	}
	ld, ok := p.At(3)
	if !ok || ld.Kind != KLoad || ld.Next != 4 {
		t.Fatalf("load should have moved to 3 with Next 4, got %v (ok=%v)", ld, ok)
	}
	st, _ := p.At(4)
	if st.Kind != KStore || st.Next != 5 {
		t.Fatalf("store should have moved to 4 with Next 5, got %v", st)
	}
	call, _ := p.At(5)
	if call.Kind != KCall || call.Callee != 1 || call.RetPt != 6 {
		t.Fatalf("call should have moved to 5 with callee 1, retpt 6, got %v", call)
	}
	if a, _ := p.Lookup("body"); a != 2 {
		t.Fatalf("a symbol at the site should flow through the fence like a target, got %d", a)
	}
	if a, _ := p.Lookup("st"); a != 4 {
		t.Fatalf("a code symbol above the site should follow its instruction, got %d", a)
	}
	if a, _ := p.Lookup("buf"); a != 0x40 {
		t.Fatalf("data symbol must not move, got %#x", a)
	}
	if v, ok := p.Data[0x40]; !ok || v != mem.Pub(7) {
		t.Fatal("data image must be untouched")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
}

func TestInsertAtEntry(t *testing.T) {
	p := NewProgram(1)
	p.Add(1, Ret())
	p.InsertAt(1, Fence(2))
	if p.Entry != 1 {
		t.Fatalf("entry should stay at the inserted instruction, got %d", p.Entry)
	}
	if in, _ := p.At(1); in.Kind != KFence {
		t.Fatal("entry does not hold the fence")
	}
	if in, _ := p.At(2); in.Kind != KRet {
		t.Fatal("old entry instruction did not shift")
	}
}

func TestInsertAtEntryBelowShifts(t *testing.T) {
	p := NewProgram(5)
	p.Add(5, Ret())
	p.InsertAt(3, Fence(4))
	if p.Entry != 6 {
		t.Fatalf("entry above the site must shift, got %d", p.Entry)
	}
	if in, ok := p.At(6); !ok || in.Kind != KRet {
		t.Fatal("instruction did not shift past the site")
	}
}

func TestInsertAtHaltPointStaysHalting(t *testing.T) {
	// Instructions at 1..2, halt at 3, more code at 9. Inserting at the
	// halt point must keep control reaching it halting (after the
	// transparent fence) and must not capture the distant code.
	p := NewProgram(1)
	p.Add(1, Op(0, OpMov, []Operand{ImmW(0)}, 2))
	p.Add(2, Op(0, OpMov, []Operand{ImmW(0)}, 3))
	p.Add(9, Ret())
	p.InsertAt(3, Fence(4))
	if _, ok := p.At(4); ok {
		t.Fatal("halt point after the fence should stay empty")
	}
	if _, ok := p.At(10); !ok {
		t.Fatal("distant instruction should shift from 9 to 10")
	}
}
