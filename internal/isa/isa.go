// Package isa defines the physical instruction set of the abstract
// machine of §3 of the paper: arithmetic operations, conditional
// branches, loads, stores, indirect jumps, calls, returns, and
// speculation fences (Table 1, "Instruction" column), together with
// programs mapping program points to instructions and the abstract
// address-calculation operator addr.
//
// The ISA is deliberately minimal and explicit — the paper's semantics
// is stated over exactly these forms, so implementing them directly
// makes the semantics-level experiments exact reproductions rather than
// binary-lifting approximations.
package isa

import (
	"fmt"
	"strings"

	"pitchfork/internal/mem"
)

// Addr is a program point n or data address a. The paper draws both
// from the same value domain; we alias the machine word.
type Addr = mem.Word

// Reg names a register; aliased from the substrate so users only import
// one package in the common case.
type Reg = mem.Reg

// Operand is a register-or-value rv as used in operand lists r⃗v.
type Operand struct {
	IsReg bool
	Reg   Reg
	Imm   mem.Value
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{IsReg: true, Reg: r} }

// Imm returns an immediate operand carrying the labeled value v.
func Imm(v mem.Value) Operand { return Operand{Imm: v} }

// ImmW returns a public immediate operand for the word w.
func ImmW(w mem.Word) Operand { return Operand{Imm: mem.Pub(w)} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	if o.IsReg {
		return RegName(o.Reg)
	}
	if o.Imm.L.IsPublic() {
		return fmt.Sprintf("%d", int64(o.Imm.W))
	}
	return o.Imm.String()
}

// Kind discriminates the physical instruction forms of Table 1.
type Kind uint8

const (
	KOp    Kind = iota // (r = op(op, r⃗v, n′))
	KBr                // br(op, r⃗v, ntrue, nfalse)
	KLoad              // (r = load(r⃗v, n′))
	KStore             // store(rv, r⃗v, n′)
	KJmpi              // jmpi(r⃗v)
	KCall              // call(nf, nret)
	KRet               // ret
	KFence             // fence n
)

// String returns the mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KOp:
		return "op"
	case KBr:
		return "br"
	case KLoad:
		return "load"
	case KStore:
		return "store"
	case KJmpi:
		return "jmpi"
	case KCall:
		return "call"
	case KRet:
		return "ret"
	case KFence:
		return "fence"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Instr is a physical instruction. Which fields are meaningful depends
// on Kind; the constructor functions below build well-formed values and
// Validate rejects malformed ones.
type Instr struct {
	Kind Kind

	Dst  Reg       // KOp, KLoad: destination register r
	Op   Opcode    // KOp: opcode; KBr: boolean operator
	Args []Operand // KOp operands; KBr condition operands; KLoad/KStore address operands r⃗v; KJmpi target operands
	Src  Operand   // KStore: the stored operand rv

	True  Addr // KBr: ntrue
	False Addr // KBr: nfalse
	Next  Addr // KOp, KLoad, KStore, KFence: n′

	Callee Addr // KCall: nf
	RetPt  Addr // KCall: nret
}

// Op builds (r = op(op, r⃗v, n′)).
func Op(dst Reg, op Opcode, args []Operand, next Addr) Instr {
	return Instr{Kind: KOp, Dst: dst, Op: op, Args: args, Next: next}
}

// Br builds br(op, r⃗v, ntrue, nfalse).
func Br(op Opcode, args []Operand, ntrue, nfalse Addr) Instr {
	return Instr{Kind: KBr, Op: op, Args: args, True: ntrue, False: nfalse}
}

// Load builds (r = load(r⃗v, n′)).
func Load(dst Reg, args []Operand, next Addr) Instr {
	return Instr{Kind: KLoad, Dst: dst, Args: args, Next: next}
}

// Store builds store(rv, r⃗v, n′).
func Store(src Operand, args []Operand, next Addr) Instr {
	return Instr{Kind: KStore, Src: src, Args: args, Next: next}
}

// Jmpi builds jmpi(r⃗v).
func Jmpi(args []Operand) Instr {
	return Instr{Kind: KJmpi, Args: args}
}

// Call builds call(nf, nret).
func Call(callee, ret Addr) Instr {
	return Instr{Kind: KCall, Callee: callee, RetPt: ret}
}

// Ret builds ret.
func Ret() Instr { return Instr{Kind: KRet} }

// Fence builds fence n.
func Fence(next Addr) Instr { return Instr{Kind: KFence, Next: next} }

// Writes reports whether the instruction assigns a register, and which.
func (in Instr) Writes() (Reg, bool) {
	switch in.Kind {
	case KOp, KLoad:
		return in.Dst, true
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Static def/use and control-flow metadata. These accessors describe an
// instruction without executing it — the substrate of whole-program
// analyses (internal/taint) that must over-approximate every transient
// execution.
// ---------------------------------------------------------------------

// UsedRegs appends the registers the instruction reads to dst and
// returns the extended slice. Call and return expansions read the
// stack pointer (the return-address push and pop of Appendix A), so
// KCall and KRet report mem.RSP.
func (in Instr) UsedRegs(dst []Reg) []Reg {
	add := func(os []Operand) {
		for _, o := range os {
			if o.IsReg {
				dst = append(dst, o.Reg)
			}
		}
	}
	switch in.Kind {
	case KOp, KBr, KLoad, KJmpi:
		add(in.Args)
	case KStore:
		add(in.Args)
		if in.Src.IsReg {
			dst = append(dst, in.Src.Reg)
		}
	case KCall, KRet:
		dst = append(dst, mem.RSP)
	}
	return dst
}

// SinkArgs returns the operand list whose joined label an execution of
// the instruction exposes through an externally visible observation —
// the address operands of loads and stores (read/fwd/write
// observations), the condition operands of branches, and the target
// operands of indirect jumps (jump observations). Instructions whose
// observations carry no data-dependent label (ops, fences) return nil.
// Calls and returns expose the stack pointer instead of an operand
// list; see UsedRegs and the taint package's modeling.
func (in Instr) SinkArgs() []Operand {
	switch in.Kind {
	case KBr, KLoad, KStore, KJmpi:
		return in.Args
	}
	return nil
}

// StaticSuccessors appends the statically known successor program
// points of the instruction to dst. ok is false when the successor set
// cannot be determined statically: an indirect jump whose target is
// not a single immediate (the computed address depends on run-time
// register contents and the machine's address mode), or a return
// (whose transient target is an RSB — or stale in-memory — prediction
// that may point anywhere a store could reach, Fig. 10). Conditional
// branches report both arms: the speculative semantics fetches either
// guess regardless of the condition. Calls report both the callee
// entry and the return point, covering the architectural return path.
func (in Instr) StaticSuccessors(dst []Addr) ([]Addr, bool) {
	switch in.Kind {
	case KOp, KLoad, KStore, KFence:
		return append(dst, in.Next), true
	case KBr:
		return append(dst, in.True, in.False), true
	case KCall:
		return append(dst, in.Callee, in.RetPt), true
	case KJmpi:
		if len(in.Args) == 1 && !in.Args[0].IsReg {
			return append(dst, in.Args[0].Imm.W), true
		}
		return dst, false
	case KRet:
		return dst, false
	}
	return dst, true
}

// String renders the instruction in the paper's notation.
func (in Instr) String() string {
	switch in.Kind {
	case KOp:
		return fmt.Sprintf("(%s = op(%s, %s, %d))", RegName(in.Dst), in.Op, operands(in.Args), in.Next)
	case KBr:
		return fmt.Sprintf("br(%s, %s, %d, %d)", in.Op, operands(in.Args), in.True, in.False)
	case KLoad:
		return fmt.Sprintf("(%s = load(%s, %d))", RegName(in.Dst), operands(in.Args), in.Next)
	case KStore:
		return fmt.Sprintf("store(%s, %s, %d)", in.Src, operands(in.Args), in.Next)
	case KJmpi:
		return fmt.Sprintf("jmpi(%s)", operands(in.Args))
	case KCall:
		return fmt.Sprintf("call(%d, %d)", in.Callee, in.RetPt)
	case KRet:
		return "ret"
	case KFence:
		return fmt.Sprintf("fence %d", in.Next)
	}
	return "<invalid>"
}

func operands(args []Operand) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// RegName renders a register in assembly syntax. Registers 0–25 print
// as ra…rz; the two conventional registers of Appendix A print as rsp
// and rtmp; everything else as r<N>.
func RegName(r Reg) string {
	switch {
	case r == mem.RMSK:
		return "rmsk"
	case r == mem.RSP:
		return "rsp"
	case r == mem.RTMP:
		return "rtmp"
	case r < 26:
		return "r" + string(rune('a'+r))
	default:
		return fmt.Sprintf("r%d", uint16(r))
	}
}
