package isa_test

// Property test for the patch-plan rewriting layer: a plan of
// observation-free insertions (fences and scratch-register ops) applied
// to a random program must preserve the sequential observation trace
// modulo the address map — memory addresses and labels byte-identical,
// jump targets translated by Map.Target. Plans the static JmpiHazard
// check flags are exactly the ones the repair engine refuses with
// OutcomeUnsafeRewrite, so they are skipped here (and pinned separately
// in the repair tests).

import (
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// genProgram decodes a small program from fuzz bytes: registers r0-r3,
// a public data region at 64..79, every control reference folded into
// the valid point range (dangling references become halt points, which
// Validate allows).
func genProgram(data []byte) (*isa.Program, []byte, bool) {
	if len(data) < 4 {
		return nil, nil, false
	}
	n := int(data[0]%8) + 2 // 2..9 instructions
	data = data[1:]
	if len(data) < 2*n {
		return nil, nil, false
	}
	b := isa.NewBuilder(1)
	for a := 64; a < 80; a++ {
		b.Data(isa.Addr(a), mem.Pub(mem.Word(a%5)))
	}
	reg := func(x byte) isa.Reg { return isa.Reg(x % 4) }
	point := func(x byte) isa.Addr { return isa.Addr(int(x)%(n+2)) + 1 }
	for i := 0; i < n; i++ {
		k, x := data[2*i], data[2*i+1]
		switch k % 7 {
		case 0:
			b.Op(reg(x), isa.OpAdd, isa.R(reg(x>>2)), isa.ImmW(mem.Word(x%16)))
		case 1:
			// Mask the index so every address stays inside the region.
			b.Op(reg(x), isa.OpAnd, isa.R(reg(x>>2)), isa.ImmW(7)).
				Skip(0)
		case 2:
			b.Load(reg(x), isa.ImmW(64), isa.R(reg(x>>2)))
		case 3:
			b.Store(isa.R(reg(x)), isa.ImmW(72), isa.R(reg(x>>2)))
		case 4:
			b.Br(isa.OpLt, []isa.Operand{isa.R(reg(x)), isa.ImmW(mem.Word(x >> 4))}, point(x), point(x>>3))
		case 5:
			b.Call(point(x))
		case 6:
			b.Ret()
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, nil, false
	}
	return p, data[2*n:], true
}

// genPlan decodes a patch plan of observation-free insertions: fences
// and adds targeting a scratch register the generated program never
// reads.
func genPlan(p *isa.Program, data []byte) isa.Plan {
	const scratch = isa.Reg(12)
	var pl isa.Plan
	max := int(p.Points()[len(p.Points())-1])
	for i := 0; i+1 < len(data) && i < 8; i += 2 {
		at := isa.Addr(int(data[i])%(max+1)) + 1
		var in isa.Instr
		if data[i+1]%2 == 0 {
			in = isa.Fence(at)
		} else {
			in = isa.Op(scratch, isa.OpAdd, []isa.Operand{isa.ImmW(mem.Word(data[i+1]))}, at)
		}
		pl.Add(isa.Patch{At: at, Insert: []isa.Instr{in}})
	}
	return pl
}

func seqTrace(p *isa.Program, budget int) (core.Trace, bool, bool) {
	m := core.New(p)
	m.Regs.Write(isa.Reg(0), mem.Pub(1))
	m.Regs.Write(isa.Reg(1), mem.Pub(3))
	_, tr, err := core.RunSequential(m, budget)
	return tr, m.Halted(), err == nil
}

func FuzzRewrite(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 5, 4, 33, 2, 7, 1, 9})
	f.Add([]byte{5, 4, 18, 2, 1, 3, 6, 5, 2, 6, 0, 0, 4, 1, 8, 2, 3})
	f.Add([]byte{2, 5, 1, 6, 0, 2, 2, 4, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, rest, ok := genProgram(data)
		if !ok {
			t.Skip()
		}
		pl := genPlan(p, rest)
		if _, hazard := pl.JmpiHazard(p); hazard {
			t.Skip() // the repair engine refuses these as OutcomeUnsafeRewrite
		}
		rw, err := pl.Apply(p)
		if err != nil {
			t.Fatalf("hazard-free plan failed to apply: %v", err)
		}
		const budget = 256
		to, haltO, okO := seqTrace(p, budget)
		if !okO || !haltO {
			t.Skip() // faulting or non-terminating original; nothing to compare
		}
		tr, haltR, okR := seqTrace(rw.Prog, budget+pl.InsertCount()*2)
		if !okR || !haltR {
			t.Fatalf("rewritten program no longer halts within the budget the original met")
		}
		if len(to) != len(tr) {
			t.Fatalf("trace length diverged: %d → %d\norig: %v\nrewritten: %v", len(to), len(tr), to, tr)
		}
		for i := range to {
			o, r := to[i], tr[i]
			if o.Kind != r.Kind || o.Addr != r.Addr || o.Label != r.Label {
				t.Fatalf("observation %d diverged: %v → %v", i, o, r)
			}
			if want := rw.Map.Target(o.Target); r.Target != want {
				t.Fatalf("observation %d target %d, want Map.Target(%d) = %d", i, r.Target, o.Target, want)
			}
		}
	})
}
