package isa

import (
	"fmt"

	"pitchfork/internal/mem"
)

// Opcode identifies an arithmetic or boolean operator. The paper keeps
// the operator set abstract ("op specifies opcode"); this set is the
// one the CTL compiler targets and is rich enough for the case studies.
// All operators are total: division and remainder by zero yield zero,
// shifts take their count modulo 64.
type Opcode uint8

const (
	OpAdd    Opcode = iota // v0 + v1 + …
	OpSub                  // v0 - v1
	OpMul                  // v0 * v1
	OpDiv                  // v0 / v1 (unsigned; x/0 = 0)
	OpMod                  // v0 % v1 (unsigned; x%0 = 0)
	OpAnd                  // bitwise and
	OpOr                   // bitwise or
	OpXor                  // bitwise xor
	OpShl                  // v0 << (v1 mod 64)
	OpShr                  // v0 >> (v1 mod 64), logical
	OpSar                  // v0 >> (v1 mod 64), arithmetic
	OpNot                  // bitwise complement of v0
	OpNeg                  // two's complement negation of v0
	OpMov                  // identity on v0
	OpEq                   // v0 == v1
	OpNe                   // v0 != v1
	OpLt                   // v0 < v1, unsigned
	OpLe                   // v0 <= v1, unsigned
	OpGt                   // v0 > v1, unsigned
	OpGe                   // v0 >= v1, unsigned
	OpSlt                  // v0 < v1, signed
	OpSle                  // v0 <= v1, signed
	OpSgt                  // v0 > v1, signed
	OpSge                  // v0 >= v1, signed
	OpSelect               // v0 != 0 ? v1 : v2 (constant-time selection)
	OpSucc                 // successor stack slot: v0 - 1 (stack grows down)
	OpPred                 // predecessor stack slot: v0 + 1
	NumOpcodes
)

var opcodeNames = [NumOpcodes]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpSar: "sar", OpNot: "not", OpNeg: "neg", OpMov: "mov",
	OpEq: "eq", OpNe: "ne",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpSlt: "slt", OpSle: "sle", OpSgt: "sgt", OpSge: "sge",
	OpSelect: "select", OpSucc: "succ", OpPred: "pred",
}

// String returns the mnemonic.
func (op Opcode) String() string {
	if op < NumOpcodes {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpcodeByName resolves an assembler mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	for op, n := range opcodeNames {
		if n == name {
			return Opcode(op), true
		}
	}
	return 0, false
}

// Arity returns the number of operands the opcode consumes, or -1 for
// variadic opcodes (OpAdd accepts 1..n operands and sums them, which is
// what the figures' [40, ra]-style address lists rely on).
func (op Opcode) Arity() int {
	switch op {
	case OpAdd:
		return -1
	case OpNot, OpNeg, OpMov, OpSucc, OpPred:
		return 1
	case OpSelect:
		return 3
	default:
		return 2
	}
}

// IsComparison reports whether the opcode yields a boolean (0/1) word.
func (op Opcode) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpSlt, OpSle, OpSgt, OpSge:
		return true
	}
	return false
}

func b2w(b bool) mem.Word {
	if b {
		return 1
	}
	return 0
}

// Eval implements the evaluation function J·K over labeled values. The
// result label is the join of all operand labels (for OpSelect the
// condition's label taints the result, which is exactly why FaCT-style
// selection is constant-time but not label-lowering).
func Eval(op Opcode, args []mem.Value) (mem.Value, error) {
	if a := op.Arity(); a >= 0 && len(args) != a {
		return mem.Value{}, fmt.Errorf("isa: %s expects %d operands, got %d", op, a, len(args))
	} else if a < 0 && len(args) == 0 {
		return mem.Value{}, fmt.Errorf("isa: %s expects at least 1 operand", op)
	}
	label := mem.Public
	for _, v := range args {
		label = label.Join(v.L)
	}
	var w mem.Word
	switch op {
	case OpAdd:
		for _, v := range args {
			w += v.W
		}
	case OpSub:
		w = args[0].W - args[1].W
	case OpMul:
		w = args[0].W * args[1].W
	case OpDiv:
		if args[1].W != 0 {
			w = args[0].W / args[1].W
		}
	case OpMod:
		if args[1].W != 0 {
			w = args[0].W % args[1].W
		}
	case OpAnd:
		w = args[0].W & args[1].W
	case OpOr:
		w = args[0].W | args[1].W
	case OpXor:
		w = args[0].W ^ args[1].W
	case OpShl:
		w = args[0].W << (args[1].W & 63)
	case OpShr:
		w = args[0].W >> (args[1].W & 63)
	case OpSar:
		w = mem.Word(int64(args[0].W) >> (args[1].W & 63))
	case OpNot:
		w = ^args[0].W
	case OpNeg:
		w = -args[0].W
	case OpMov:
		w = args[0].W
	case OpEq:
		w = b2w(args[0].W == args[1].W)
	case OpNe:
		w = b2w(args[0].W != args[1].W)
	case OpLt:
		w = b2w(args[0].W < args[1].W)
	case OpLe:
		w = b2w(args[0].W <= args[1].W)
	case OpGt:
		w = b2w(args[0].W > args[1].W)
	case OpGe:
		w = b2w(args[0].W >= args[1].W)
	case OpSlt:
		w = b2w(int64(args[0].W) < int64(args[1].W))
	case OpSle:
		w = b2w(int64(args[0].W) <= int64(args[1].W))
	case OpSgt:
		w = b2w(int64(args[0].W) > int64(args[1].W))
	case OpSge:
		w = b2w(int64(args[0].W) >= int64(args[1].W))
	case OpSelect:
		if args[0].W != 0 {
			w = args[1].W
		} else {
			w = args[2].W
		}
	case OpSucc:
		w = args[0].W - 1
	case OpPred:
		w = args[0].W + 1
	default:
		return mem.Value{}, fmt.Errorf("isa: unknown opcode %d", uint8(op))
	}
	return mem.V(w, label), nil
}

// AddrMode selects the instantiation of the abstract address operator
// Jaddr(v⃗)K of §3.4.
type AddrMode uint8

const (
	// AddrSum computes the sum of all operands — the "simple addressing
	// mode" the figures use, where [40, ra] means 40+ra.
	AddrSum AddrMode = iota
	// AddrBaseScale computes v0 + v1*v2 for three operands (x86-style
	// base+index*scale) and falls back to the sum otherwise.
	AddrBaseScale
)

// EvalAddr computes the target address of a load or store under the
// given mode, with the joined label ℓa = ⊔ℓ⃗.
func EvalAddr(mode AddrMode, args []mem.Value) (mem.Value, error) {
	if len(args) == 0 {
		return mem.Value{}, fmt.Errorf("isa: addr of empty operand list")
	}
	label := mem.Public
	for _, v := range args {
		label = label.Join(v.L)
	}
	var w mem.Word
	if mode == AddrBaseScale && len(args) == 3 {
		w = args[0].W + args[1].W*args[2].W
	} else {
		for _, v := range args {
			w += v.W
		}
	}
	return mem.V(w, label), nil
}
