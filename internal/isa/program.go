package isa

import (
	"fmt"
	"sort"

	"pitchfork/internal/mem"
)

// Program is the instruction half of the paper's memory µ: a partial
// map from program points to physical instructions, together with the
// entry point, symbolic names, and the initial data image. Program
// points not in the map are halt points — fetching at them stops the
// machine, which is how programs terminate.
type Program struct {
	Instrs  map[Addr]Instr
	Entry   Addr
	Symbols map[string]Addr // label → program point or data address
	Data    map[Addr]mem.Value
}

// NewProgram returns an empty program with the given entry point.
func NewProgram(entry Addr) *Program {
	return &Program{
		Instrs:  make(map[Addr]Instr),
		Entry:   entry,
		Symbols: make(map[string]Addr),
		Data:    make(map[Addr]mem.Value),
	}
}

// Add places an instruction at program point n, overwriting any
// previous instruction there.
func (p *Program) Add(n Addr, in Instr) *Program {
	p.Instrs[n] = in
	return p
}

// At returns the instruction at n, if any.
func (p *Program) At(n Addr) (Instr, bool) {
	in, ok := p.Instrs[n]
	return in, ok
}

// SetData seeds the initial data image at address a.
func (p *Program) SetData(a Addr, v mem.Value) *Program {
	p.Data[a] = v
	return p
}

// SetRegion seeds consecutive words starting at base.
func (p *Program) SetRegion(base Addr, vs []mem.Value) *Program {
	for i, v := range vs {
		p.Data[base+Addr(i)] = v
	}
	return p
}

// Define binds a symbolic name.
func (p *Program) Define(name string, a Addr) *Program {
	p.Symbols[name] = a
	return p
}

// Lookup resolves a symbolic name.
func (p *Program) Lookup(name string) (Addr, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// InitialMemory builds a fresh labeled memory from the data image.
func (p *Program) InitialMemory() *mem.Memory {
	m := mem.NewMemory()
	for a, v := range p.Data {
		m.Write(a, v)
	}
	return m
}

// Points returns the populated program points in increasing order.
func (p *Program) Points() []Addr {
	out := make([]Addr, 0, len(p.Instrs))
	for n := range p.Instrs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// Validate checks static well-formedness: the entry point exists (or
// the program is empty), every intra-program successor of a
// non-control-flow instruction is either an instruction or a halt
// point that no other instruction jumps over, opcode arities match, and
// branch targets that are meant to be instructions exist. Dangling
// Next/True/False addresses are permitted only if they are halt points
// (absent from the map) — that is always legal; what Validate rejects is
// structural nonsense such as a br with a non-boolean arity mismatch.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return nil
	}
	if _, ok := p.Instrs[p.Entry]; !ok {
		return fmt.Errorf("isa: entry point %d has no instruction", p.Entry)
	}
	for n, in := range p.Instrs {
		switch in.Kind {
		case KOp:
			if a := in.Op.Arity(); a >= 0 && len(in.Args) != a {
				return fmt.Errorf("isa: %d: %s expects %d operands, got %d", n, in.Op, a, len(in.Args))
			}
			if a := in.Op.Arity(); a < 0 && len(in.Args) == 0 {
				return fmt.Errorf("isa: %d: %s expects at least one operand", n, in.Op)
			}
		case KBr:
			if a := in.Op.Arity(); a >= 0 && len(in.Args) != a {
				return fmt.Errorf("isa: %d: br %s expects %d operands, got %d", n, in.Op, a, len(in.Args))
			}
		case KLoad, KStore, KJmpi:
			if len(in.Args) == 0 {
				return fmt.Errorf("isa: %d: %s needs address operands", n, in.Kind)
			}
		case KCall, KRet, KFence:
			// No operand constraints.
		default:
			return fmt.Errorf("isa: %d: invalid kind %d", n, uint8(in.Kind))
		}
	}
	return nil
}

// InsertAt inserts in at program point n, shifting every existing
// instruction at a point ≥ n one point up and remapping the static
// control-flow references of the shifted program: Next/True/False
// fall-through and branch targets, call entry and return points, the
// entry point, and symbol bindings that denote instruction points.
// References strictly greater than n are incremented; references equal
// to n keep referring to n, so control that targeted the shifted
// instruction flows through the inserted one first (the semantics a
// fence patch wants). The inserted instruction's own fields are taken
// verbatim — callers supply post-shift addresses, e.g. Fence(n+1) to
// fall through to the old occupant of n.
//
// Computed targets are NOT remapped: jmpi operands, code addresses
// held in registers or in the data image stay as written, because the
// address they denote is only known at run time. Return addresses are
// unaffected — they are materialized at fetch time from the (remapped)
// RetPt of the call expansion. Callers repairing programs with
// computed control flow must check behavioural preservation
// separately.
func (p *Program) InsertAt(n Addr, in Instr) *Program {
	shift := func(a Addr) Addr {
		if a > n {
			return a + 1
		}
		return a
	}
	moved := make(map[Addr]Instr, len(p.Instrs)+1)
	for a, old := range p.Instrs {
		// Remapping the unused address fields of a kind is harmless:
		// they are zero-valued and never read.
		old.Next = shift(old.Next)
		old.True = shift(old.True)
		old.False = shift(old.False)
		old.Callee = shift(old.Callee)
		old.RetPt = shift(old.RetPt)
		if a >= n {
			moved[a+1] = old
		} else {
			moved[a] = old
		}
	}
	moved[n] = in
	p.Instrs = moved
	p.Entry = shift(p.Entry)
	for name, a := range p.Symbols {
		if a <= n {
			continue // below the insertion point, or flows through it
		}
		// Only symbols that denoted an instruction point move with the
		// code (its new home is a+1); data-address bindings (and
		// halt-point labels, which are indistinguishable from them)
		// stay put.
		if _, wasInstr := moved[a+1]; wasInstr {
			p.Symbols[name] = a + 1
		}
	}
	return p
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	c := NewProgram(p.Entry)
	for n, in := range p.Instrs {
		args := make([]Operand, len(in.Args))
		copy(args, in.Args)
		in.Args = args
		c.Instrs[n] = in
	}
	for k, v := range p.Symbols {
		c.Symbols[k] = v
	}
	for a, v := range p.Data {
		c.Data[a] = v
	}
	return c
}

// Builder provides sequential program construction: instructions are
// appended at consecutive program points starting at the entry, with
// Next fields filled in automatically, matching how the figures number
// their programs 1, 2, 3, ….
type Builder struct {
	prog *Program
	next Addr
}

// NewBuilder starts a builder whose first instruction lands on entry.
func NewBuilder(entry Addr) *Builder {
	return &Builder{prog: NewProgram(entry), next: entry}
}

// Here returns the program point the next appended instruction will
// occupy; useful for computing branch targets.
func (b *Builder) Here() Addr { return b.next }

// Skip reserves count program points (leaving them as halt points
// unless later filled with Place).
func (b *Builder) Skip(count Addr) *Builder {
	b.next += count
	return b
}

// Op appends (dst = op(...)) falling through to the next point.
func (b *Builder) Op(dst Reg, op Opcode, args ...Operand) *Builder {
	b.prog.Add(b.next, Op(dst, op, args, b.next+1))
	b.next++
	return b
}

// Load appends (dst = load(args)) falling through.
func (b *Builder) Load(dst Reg, args ...Operand) *Builder {
	b.prog.Add(b.next, Load(dst, args, b.next+1))
	b.next++
	return b
}

// Store appends store(src, args) falling through.
func (b *Builder) Store(src Operand, args ...Operand) *Builder {
	b.prog.Add(b.next, Store(src, args, b.next+1))
	b.next++
	return b
}

// Br appends br(op, args, ntrue, nfalse).
func (b *Builder) Br(op Opcode, args []Operand, ntrue, nfalse Addr) *Builder {
	b.prog.Add(b.next, Br(op, args, ntrue, nfalse))
	b.next++
	return b
}

// Jmpi appends jmpi(args).
func (b *Builder) Jmpi(args ...Operand) *Builder {
	b.prog.Add(b.next, Jmpi(args))
	b.next++
	return b
}

// Call appends call(callee, here+1).
func (b *Builder) Call(callee Addr) *Builder {
	b.prog.Add(b.next, Call(callee, b.next+1))
	b.next++
	return b
}

// Ret appends ret.
func (b *Builder) Ret() *Builder {
	b.prog.Add(b.next, Ret())
	b.next++
	return b
}

// Fence appends fence falling through.
func (b *Builder) Fence() *Builder {
	b.prog.Add(b.next, Fence(b.next+1))
	b.next++
	return b
}

// Place writes an explicit instruction at an explicit point without
// advancing the cursor.
func (b *Builder) Place(n Addr, in Instr) *Builder {
	b.prog.Add(n, in)
	return b
}

// Data seeds a data word.
func (b *Builder) Data(a Addr, v mem.Value) *Builder {
	b.prog.SetData(a, v)
	return b
}

// Region seeds consecutive data words.
func (b *Builder) Region(base Addr, vs ...mem.Value) *Builder {
	b.prog.SetRegion(base, vs)
	return b
}

// Define binds a symbol.
func (b *Builder) Define(name string, a Addr) *Builder {
	b.prog.Define(name, a)
	return b
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error; for tests and fixtures.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
