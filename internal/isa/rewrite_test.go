package isa

import (
	"reflect"
	"testing"

	"pitchfork/internal/mem"
)

// fencePlan builds the plan equivalent of the repair engine's historic
// applySites loop: one fence inserted before the occupant of each site.
func fencePlan(sites []Addr) Plan {
	var pl Plan
	for _, s := range sites {
		pl.Add(Patch{At: s, Insert: []Instr{Fence(s)}})
	}
	return pl
}

// insertAtChain applies sites with the legacy one-at-a-time InsertAt
// loop, ascending, fence falling through to the shifted occupant.
func insertAtChain(orig *Program, sites []Addr) *Program {
	p := orig.Clone()
	for i, s := range sites {
		at := s + Addr(i)
		p.InsertAt(at, Fence(at+1))
	}
	return p
}

func figureProgram() *Program {
	// A v1-shaped program with a branch, loads, a store, a call and a
	// labeled arm — enough reference kinds to exercise every remap.
	b := NewBuilder(1)
	b.Br(OpLt, []Operand{R(Reg(0)), ImmW(4)}, 2, 5) // 1
	b.Load(Reg(1), ImmW(0x40), R(Reg(0)))           // 2
	b.Load(Reg(2), ImmW(0x44), R(Reg(1)))           // 3
	b.Store(R(Reg(2)), ImmW(0x48))                  // 4
	b.Call(7)                                       // 5
	b.Op(Reg(3), OpAdd, ImmW(1))                    // 6
	b.Ret()                                         // 7
	b.Define("arm", 2)
	b.Define("join", 5)
	b.Define("table", 0x40) // data address: must never move
	b.Data(0x40, mem.Pub(7))
	return b.MustBuild()
}

// TestFencePlanMatchesInsertAt pins the compatibility contract: a plan
// of single-fence patches produces the byte-identical program the
// legacy ascending InsertAt loop did, for every subset of sites the
// repair engine could propose.
func TestFencePlanMatchesInsertAt(t *testing.T) {
	orig := figureProgram()
	siteSets := [][]Addr{
		{2},
		{2, 5},
		{1, 3, 6},
		{2, 3, 4, 5, 6, 7},
		{8}, // one past the last instruction: a store-successor site
	}
	for _, sites := range siteSets {
		pl := fencePlan(sites)
		rw, err := pl.Apply(orig)
		if err != nil {
			t.Fatalf("sites %v: %v", sites, err)
		}
		want := insertAtChain(orig, sites)
		if !reflect.DeepEqual(rw.Prog.Instrs, want.Instrs) {
			t.Errorf("sites %v: instruction maps diverge\nplan: %v\nchain: %v", sites, rw.Prog.Instrs, want.Instrs)
		}
		if rw.Prog.Entry != want.Entry {
			t.Errorf("sites %v: entry %d, want %d", sites, rw.Prog.Entry, want.Entry)
		}
		if !reflect.DeepEqual(rw.Prog.Symbols, want.Symbols) {
			t.Errorf("sites %v: symbols %v, want %v", sites, rw.Prog.Symbols, want.Symbols)
		}
		if !reflect.DeepEqual(rw.Prog.Data, want.Data) {
			t.Errorf("sites %v: data image changed", sites)
		}
		// The map agrees with the historic shift arithmetic.
		for _, a := range orig.Points() {
			shiftLoc, shiftTgt := Addr(0), Addr(0)
			for _, s := range sites {
				if s <= a {
					shiftLoc++
				}
				if s < a {
					shiftTgt++
				}
			}
			if got := rw.Map.Addr(a); got != a+shiftLoc {
				t.Errorf("sites %v: Map.Addr(%d) = %d, want %d", sites, a, got, a+shiftLoc)
			}
			if got := rw.Map.Target(a); got != a+shiftTgt {
				t.Errorf("sites %v: Map.Target(%d) = %d, want %d", sites, a, got, a+shiftTgt)
			}
			if back, ok := rw.Orig[rw.Map.Addr(a)]; !ok || back != a {
				t.Errorf("sites %v: Orig[%d] = %d,%v, want %d", sites, rw.Map.Addr(a), back, ok, a)
			}
		}
	}
}

// TestMultiInsertBlock pins the block layout of a multi-instruction
// patch: insertions occupy consecutive slots before the occupant, the
// own-point convention chains each instruction to the next slot, and
// only non-head slots count as interior.
func TestMultiInsertBlock(t *testing.T) {
	b := NewBuilder(1)
	b.Op(Reg(0), OpAdd, ImmW(1)) // 1
	b.Load(Reg(1), R(Reg(0)))    // 2
	b.Op(Reg(2), OpAdd, ImmW(2)) // 3
	orig := b.MustBuild()

	var pl Plan
	pl.Add(Patch{At: 2, Insert: []Instr{
		Op(Reg(9), OpAdd, []Operand{R(Reg(0))}, 2),          // falls to the and
		Op(Reg(9), OpAnd, []Operand{R(Reg(9)), ImmW(7)}, 2), // falls to the occupant
	}})
	rw, err := pl.Apply(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: 1 → block at 2,3 → occupant at 4 → 5.
	if got := rw.Map.Target(2); got != 2 {
		t.Fatalf("block start = %d, want 2", got)
	}
	if got := rw.Map.Addr(2); got != 4 {
		t.Fatalf("occupant location = %d, want 4", got)
	}
	first, _ := rw.Prog.At(2)
	second, _ := rw.Prog.At(3)
	occupant, _ := rw.Prog.At(4)
	if first.Kind != KOp || first.Next != 3 {
		t.Fatalf("block head = %v, want fall-through to 3", first)
	}
	if second.Next != 4 {
		t.Fatalf("block interior falls to %d, want the occupant at 4", second.Next)
	}
	if occupant.Kind != KLoad || occupant.Next != 5 {
		t.Fatalf("occupant = %v, want the load falling to 5", occupant)
	}
	if !reflect.DeepEqual(rw.Inserted, []Addr{2, 3}) {
		t.Fatalf("Inserted = %v", rw.Inserted)
	}
	if rw.Interior(2) || !rw.Interior(3) {
		t.Fatalf("interior marking wrong: head %v, second %v", rw.Interior(2), rw.Interior(3))
	}
	// The predecessor's fall-through enters the block head.
	prev, _ := rw.Prog.At(1)
	if prev.Next != 2 {
		t.Fatalf("predecessor falls to %d, want the block head 2", prev.Next)
	}
}

// TestReplacePatch: a replacement substitutes the occupant in place,
// with its fields remapped as original-space references.
func TestReplacePatch(t *testing.T) {
	b := NewBuilder(1)
	b.Op(Reg(0), OpAdd, ImmW(1))                    // 1
	b.Br(OpLt, []Operand{R(Reg(0)), ImmW(4)}, 3, 4) // 2
	b.Load(Reg(1), R(Reg(0)))                       // 3
	b.Op(Reg(2), OpAdd, ImmW(2))                    // 4
	orig := b.MustBuild()

	var pl Plan
	repl := Load(Reg(1), []Operand{R(Reg(9))}, 4) // original-space Next
	pl.Add(Patch{At: 3, Insert: []Instr{Op(Reg(9), OpAdd, []Operand{R(Reg(0))}, 3)}, Replace: &repl})
	rw, err := pl.Apply(orig)
	if err != nil {
		t.Fatal(err)
	}
	// 3 gains a one-instruction block, so the replacement sits at 4 and
	// the old 4 at 5.
	got, _ := rw.Prog.At(4)
	if got.Kind != KLoad || !got.Args[0].IsReg || got.Args[0].Reg != Reg(9) || got.Next != 5 {
		t.Fatalf("replacement = %v, want masked load falling to 5", got)
	}
	if back := rw.Orig[4]; back != 3 {
		t.Fatalf("replacement lost its identity: Orig[4] = %d, want 3", back)
	}
	br, _ := rw.Prog.At(2)
	if br.True != 3 || br.False != 5 {
		t.Fatalf("branch arms = %d/%d, want 3/5 (true arm enters the block)", br.True, br.False)
	}

	var bad Plan
	miss := Ret()
	bad.Add(Patch{At: 9, Replace: &miss})
	if _, err := bad.Apply(orig); err == nil {
		t.Fatal("replacement at a halt point must be rejected")
	}
}

// TestPlanAddMerges: patches at one point merge append-wise.
func TestPlanAddMerges(t *testing.T) {
	var pl Plan
	pl.Add(Patch{At: 5, Insert: []Instr{Fence(5)}})
	pl.Add(Patch{At: 2, Insert: []Instr{Fence(2)}})
	pl.Add(Patch{At: 5, Insert: []Instr{Fence(5)}})
	ps := pl.Patches()
	if len(ps) != 2 || ps[0].At != 2 || ps[1].At != 5 || len(ps[1].Insert) != 2 {
		t.Fatalf("merged patches = %+v", ps)
	}
	if pl.InsertCount() != 3 {
		t.Fatalf("InsertCount = %d", pl.InsertCount())
	}
}

// TestPlanJmpiHazard mirrors the repair engine's historic
// computed-jump rules on the plan form.
func TestPlanJmpiHazard(t *testing.T) {
	b := NewBuilder(1)
	b.Op(Reg(0), OpAdd, ImmW(0)) // 1
	b.Op(Reg(0), OpAdd, ImmW(0)) // 2
	b.Jmpi(ImmW(5))              // 3
	b.Op(Reg(0), OpAdd, ImmW(0)) // 4
	b.Op(Reg(0), OpAdd, ImmW(0)) // 5
	p := b.MustBuild()

	empty := Plan{}
	if _, hazard := empty.JmpiHazard(p); hazard {
		t.Error("empty plan cannot shift anything")
	}
	at5 := fencePlan([]Addr{5})
	if _, hazard := at5.JmpiHazard(p); hazard {
		t.Error("insertion at the jump target does not shift it")
	}
	below := fencePlan([]Addr{2})
	if pc, hazard := below.JmpiHazard(p); !hazard || pc != 3 {
		t.Errorf("insertion below the target must be a hazard at the jmpi: got (%d, %v)", pc, hazard)
	}

	b2 := NewBuilder(1)
	b2.Jmpi(R(Reg(0)))            // 1
	b2.Op(Reg(0), OpAdd, ImmW(0)) // 2
	p2 := b2.MustBuild()
	reg := fencePlan([]Addr{2})
	if pc, hazard := reg.JmpiHazard(p2); !hazard || pc != 1 {
		t.Errorf("register-target jmpi must flag any insertion: got (%d, %v)", pc, hazard)
	}
	// A plan that REPLACES the jmpi removes the hazard: the replacement
	// is plan-authored and remapped normally.
	var repl Plan
	nop := Op(Reg(0), OpAdd, []Operand{ImmW(0)}, 2)
	repl.Add(Patch{At: 1, Replace: &nop})
	repl.Add(Patch{At: 2, Insert: []Instr{Fence(2)}})
	if pc, hazard := repl.JmpiHazard(p2); hazard {
		t.Errorf("replaced jmpi still flagged at %d", pc)
	}
}
