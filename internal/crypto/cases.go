// Package crypto contains the four case studies of the paper's Table 2
// — curve25519-donna, libsodium secretbox, OpenSSL ssl3 record
// validation, and OpenSSL MEE-CBC — as CTL sources compiled under both
// the branchy (C) and constant-time (FaCT) backends.
//
// The ports are structural, per the paper's findings (§4.2.2): the
// crypto cores are constant-time in both versions; what differs is the
// ancillary code around them.
//
//   - The C builds carry the glue the paper found vulnerable: the
//     stack-protector failure path of libsodium secretbox walks a
//     linked list past its end (Fig. 9), and the OpenSSL record paths
//     carry bounds-checked dispatch that speculatively overruns into
//     adjacent secrets. All are sequentially constant-time; they leak
//     only speculatively (Spectre v1/v1.1).
//
//   - The FaCT builds have no such glue ("such higher-level code is
//     not present in the corresponding FaCT implementations") but the
//     OpenSSL ones reproduce the Fig. 10 gadget: the compiler reuses
//     the register of a public array index for a secret-derived flag
//     (the paper's %r14), and a speculative stale return (Spectre v4,
//     "forwarding hazard") re-executes the indexing instruction with
//     the secret in that register. The register reuse is applied as an
//     explicit post-compilation coalescing pass, since CTL's naive
//     allocator never reuses registers on its own.
package crypto

import (
	"fmt"

	"pitchfork/internal/ct"
	"pitchfork/internal/isa"
)

// Case identifies a Table 2 case study.
type Case struct {
	Name string
	// srcC and srcFaCT are the two sources (the FaCT source omits the
	// C-only ancillary glue, as in the paper's corpora).
	srcC, srcFaCT string
	// coalesce names two locals of main whose registers the FaCT
	// build's allocator reuses (Fig. 10's %r14 artifact); empty means
	// no reuse.
	coalesceA, coalesceB string
}

// donnaSrc is a reduced fixed-window Montgomery-style ladder: all
// memory indices and loop bounds public, secret bits handled with
// arithmetic masking — the structure of curve25519-donna, which is
// constant-time C. Identical in both builds.
const donnaSrc = `
// curve25519-donna (reduced): constant-time ladder over a toy field.
secret scalar[4] = {165, 90, 60, 195};
public basepoint = 9;
public out;

fn main() {
  var x1 = basepoint;
  var x2 = 1;
  var z2 = 0;
  var i = 0;
  while (i < 4) {
    var k = scalar[i];
    var bit = (k >> 1) & 1;
    var mask = 0 - bit;
    var t = (x2 ^ z2) & mask;
    x2 = x2 ^ t;
    z2 = z2 ^ t;
    x2 = (x2 * x1 + z2 * 19) % 251;
    z2 = (z2 * x1 + x2 + 1) % 251;
    i = i + 1;
  }
  out = x2;
}
`

// secretboxCoreSrc is the shared constant-time core: a toy stream
// cipher with public indices only.
const secretboxCoreSrc = `
public nonce[2] = {7, 13};
public msg[4] = {1, 2, 3, 4};
public ctext[4];

fn stream(i) {
  var a = key[i % 8] + nonce[i % 2];
  var b = a * 33 + i;
  return b ^ (a >> 3);
}

fn encrypt() {
  var i = 0;
  while (i < 4) {
    ctext[i] = msg[i] ^ stream(i);
    i = i + 1;
  }
  return 0;
}
`

// secretboxCSrc adds the stack-protector failure path of Fig. 9: the
// canary check never fails architecturally, but a mispredicted branch
// runs __libc_message's linked-list walk, which overruns the node
// array into the adjacent key and dereferences the secret.
const secretboxCSrc = `
// libsodium secretbox, C build: CT core + stack-protector glue.
public iov[4];
public nodes[10] = {0, 2, 0, 4, 0, 6, 0, 8, 0, 10};
secret key[8] = {161, 162, 163, 164, 165, 166, 167, 168};
public canary = 1234;
` + secretboxCoreSrc + `
fn libc_message() {
  var cnt = 3;
  var p = 0;
  while (cnt > 0) {
    iov[cnt] = nodes[p];
    p = nodes[p + 1];
    cnt = cnt - 1;
  }
  return 0;
}

fn main() {
  var r = encrypt();
  if (canary != 1234) {
    r = libc_message();
  }
}
`

// secretboxFaCTSrc is the core alone — the paper notes the vulnerable
// higher-level code is simply not present in the FaCT implementation.
const secretboxFaCTSrc = `
// libsodium secretbox, FaCT build: CT core only.
secret key[8] = {161, 162, 163, 164, 165, 166, 167, 168};
` + secretboxCoreSrc + `
fn main() {
  var r = encrypt();
}
`

// ssl3CSrc: the record-validation core is constant-time (masked pad
// check), but the C build's record dispatch glue bounds-checks an
// attacker-influenced offset and speculatively overruns into the
// decrypted (secret) record.
const ssl3CSrc = `
// OpenSSL ssl3 record validation, C build.
public lens[4] = {1, 2, 3, 4};
secret rec[8] = {20, 21, 22, 23, 24, 25, 26, 3};
public maxpad = 4;
public lut[64];
public reclen = 8;
public off = 7;
public ok;

fn padcheck() {
  var pad = rec[reclen - 1];
  var over = (pad > maxpad);
  var mask = 0 - over;
  var clamped = (pad & ~mask) | (maxpad & mask);
  return clamped;
}

fn main() {
  var p = padcheck();
  // Dispatch glue: bounds check, then a table access through a
  // length byte. Architecturally off=7 is rejected; speculatively the
  // access reads lens[7] — inside the secret record — and indexes the
  // lookup table with it.
  var t = 0;
  if (off < 4) {
    t = lut[lens[off]];
  }
  ok = t + p - p;
}
`

// ssl3FaCTSrc: constant-time pad check plus the MAC call structure;
// the register of the public table index idx is reused for the
// secret-derived pad flag (coalesced below), reproducing Fig. 10's
// shape inside the record-validate path.
const ssl3FaCTSrc = `
// OpenSSL ssl3 record validation, FaCT build.
secret rec[8] = {20, 21, 22, 23, 24, 25, 26, 3};
public maxpad = 4;
public lut[64];
public reclen = 8;
public ok;

fn mac_update(x) {
  return x * 31 + 7;
}

fn main() {
  var idx = reclen - 1;
  var h1 = mac_update(3);
  var t = lut[idx];
  var pad = rec[reclen - 1];
  var padflag = 1;
  if (pad > maxpad) {
    pad = maxpad;
    padflag = 0;
  }
  var h2 = mac_update(5);
  rec[0] = padflag;
  ok = h1 + h2 + t;
}
`

// meeCSrc: MAC-then-encrypt CBC, C build: CT core plus branchy copy
// glue with a speculative out-of-bounds read.
const meeCSrc = `
// OpenSSL MEE-CBC, C build.
public blocks[4] = {11, 12, 13, 14};
secret ptext[8] = {30, 31, 32, 33, 34, 35, 36, 2};
public maxpad = 4;
public lut[64];
public n = 6;
public out;

fn cbc_mac() {
  var acc = 5;
  var i = 0;
  while (i < 4) {
    acc = (acc * 31 + blocks[i]) % 255;
    i = i + 1;
  }
  return acc;
}

fn main() {
  var mac = cbc_mac();
  var t = 0;
  // Copy glue: the bounds check is speculatively bypassed and
  // blocks[n] reads into the adjacent secret plaintext, whose value
  // then indexes the lookup table.
  if (n < 4) {
    t = lut[blocks[n]];
  }
  out = mac + t;
}
`

// meeFaCTSrc is the Fig. 10 gadget itself: aesni_cbc_encrypt, the
// out[len-1] pad read, the linearized pad>maxpad clamp, and the
// _sha1_update call whose speculative stale return re-executes the
// indexing instruction with the pad flag in the index register.
const meeFaCTSrc = `
// OpenSSL MEE-CBC, FaCT build (Fig. 10 shape).
secret outbuf[8] = {40, 41, 42, 43, 44, 45, 46, 2};
public outlen = 8;
public maxpad = 4;
public lut[64];
public result;

fn aesni_cbc_encrypt(x) {
  return x * 17 + 3;
}

fn sha1_update(x) {
  return x * 13 + 1;
}

fn main() {
  var idx = outlen - 1;
  var e = aesni_cbc_encrypt(2);
  var last = lut[idx];
  var pad = outbuf[outlen - 1];
  var ret = 1;
  if (pad > maxpad) {
    pad = maxpad;
    ret = 0;
  }
  var h = sha1_update(4);
  outbuf[0] = ret;
  result = e + h + last;
}
`

// Cases returns the Table 2 case studies in paper order.
func Cases() []Case {
	return []Case{
		{Name: "curve25519-donna", srcC: donnaSrc, srcFaCT: donnaSrc},
		{Name: "libsodium secretbox", srcC: secretboxCSrc, srcFaCT: secretboxFaCTSrc},
		{Name: "OpenSSL ssl3 record validate", srcC: ssl3CSrc, srcFaCT: ssl3FaCTSrc, coalesceA: "idx", coalesceB: "padflag"},
		{Name: "OpenSSL MEE-CBC", srcC: meeCSrc, srcFaCT: meeFaCTSrc, coalesceA: "idx", coalesceB: "ret"},
	}
}

// Build compiles the case study under the given mode, applying the
// FaCT builds' register-reuse artifact where the case declares one.
func (c Case) Build(mode ct.Mode) (*ct.Compiled, error) {
	src := c.srcC
	if mode == ct.ModeFaCT {
		src = c.srcFaCT
	}
	comp, err := ct.Compile(src, mode)
	if err != nil {
		return nil, fmt.Errorf("crypto: %s (%s): %w", c.Name, mode, err)
	}
	if mode == ct.ModeFaCT && c.coalesceA != "" {
		if err := coalesce(comp, "main", c.coalesceA, c.coalesceB); err != nil {
			return nil, fmt.Errorf("crypto: %s: %w", c.Name, err)
		}
	}
	return comp, nil
}

// coalesce renames the register of variable b in fn to the register of
// variable a, modeling a register allocator assigning two
// non-overlapping live ranges to one physical register — the artifact
// behind the paper's Fig. 10 finding. The caller guarantees (by source
// construction) that the live ranges do not overlap, so architectural
// semantics are preserved; the *speculative* semantics change is the
// point.
func coalesce(c *ct.Compiled, fn, a, b string) error {
	regs := c.LocalReg[fn]
	ra, okA := regs[a]
	rb, okB := regs[b]
	if !okA || !okB {
		return fmt.Errorf("coalesce: no locals %q/%q in %s", a, b, fn)
	}
	rename := func(o *isa.Operand) {
		if o.IsReg && o.Reg == rb {
			o.Reg = ra
		}
	}
	for _, n := range c.Prog.Points() {
		in, _ := c.Prog.At(n)
		if in.Dst == rb && (in.Kind == isa.KOp || in.Kind == isa.KLoad) {
			in.Dst = ra
		}
		rename(&in.Src)
		for i := range in.Args {
			rename(&in.Args[i])
		}
		c.Prog.Add(n, in)
	}
	regs[b] = ra
	return nil
}
