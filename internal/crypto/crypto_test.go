package crypto

import (
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/ct"
	"pitchfork/internal/pitchfork"
)

// TestAllBuildsCompileAndHalt: every case × mode compiles and runs to
// completion sequentially.
func TestAllBuildsCompileAndHalt(t *testing.T) {
	for _, c := range Cases() {
		for _, mode := range []ct.Mode{ct.ModeC, ct.ModeFaCT} {
			comp, err := c.Build(mode)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name, mode, err)
			}
			m := core.New(comp.Prog)
			if _, _, err := core.RunSequential(m, 200000); err != nil {
				t.Fatalf("%s/%s: run: %v", c.Name, mode, err)
			}
			if !m.Halted() {
				t.Fatalf("%s/%s: did not halt (pc=%d)", c.Name, mode, m.PC)
			}
		}
	}
}

// TestAllBuildsSequentiallyConstantTime: the paper chose these case
// studies because they are verified sequentially constant-time; every
// build's canonical sequential trace must be secret-free.
func TestAllBuildsSequentiallyConstantTime(t *testing.T) {
	for _, c := range Cases() {
		for _, mode := range []ct.Mode{ct.ModeC, ct.ModeFaCT} {
			comp, err := c.Build(mode)
			if err != nil {
				t.Fatal(err)
			}
			m := core.New(comp.Prog)
			_, trace, err := core.RunSequential(m, 200000)
			if err != nil {
				t.Fatal(err)
			}
			if trace.HasSecret() {
				t.Fatalf("%s/%s: sequential trace leaks: first secret %s",
					c.Name, mode, trace[trace.FirstSecret()])
			}
		}
	}
}

// TestTable2 reproduces the paper's Table 2 pattern:
//
//	curve25519-donna              –   –
//	libsodium secretbox           ✓   –
//	OpenSSL ssl3 record validate  ✓   f
//	OpenSSL MEE-CBC               ✓   f
func TestTable2(t *testing.T) {
	rows, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]Finding{
		"curve25519-donna":             {Clean, Clean},
		"libsodium secretbox":          {Flagged, Clean},
		"OpenSSL ssl3 record validate": {Flagged, FlaggedFwd},
		"OpenSSL MEE-CBC":              {Flagged, FlaggedFwd},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Case]
		if !ok {
			t.Errorf("unexpected case %q", r.Case)
			continue
		}
		if r.C != w[0] || r.FaCT != w[1] {
			t.Errorf("%s: got C=%s FaCT=%s, want C=%s FaCT=%s",
				r.Case, r.C, r.FaCT, w[0], w[1])
		}
	}
	t.Logf("\n%s", Render(rows))
}

// TestFig9SecretboxGadget pins the secretbox C finding to the Fig. 9
// shape: the violating observation happens while the canary branch is
// still speculatively unresolved (a v1-family leak), and the leaked
// address is secret-tainted.
func TestFig9SecretboxGadget(t *testing.T) {
	c := Cases()[1]
	comp, err := c.Build(ct.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pitchfork.Analyze(core.New(comp.Prog), pitchfork.Options{
		Bound:       pitchfork.BoundNoHazards,
		StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("secretbox C build must be flagged")
	}
	v := rep.Violations[0]
	if !v.Obs.Secret() {
		t.Fatal("violation must carry a secret label")
	}
	if v.Kind.String() != "spectre-v1" && v.Kind.String() != "spectre-v1.1" {
		t.Fatalf("expected a branch-speculation variant, got %s", v.Kind)
	}
}

// TestFig10MEEGadget pins the MEE FaCT finding to the Fig. 10 shape:
// only forwarding-hazard schedules expose it, and it classifies as
// Spectre v4 (stale store window — the speculative return).
func TestFig10MEEGadget(t *testing.T) {
	c := Cases()[3]
	comp, err := c.Build(ct.ModeFaCT)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *core.Machine { return core.New(comp.Prog) }
	p1, err := pitchfork.Analyze(mk(), pitchfork.Options{
		Bound:       pitchfork.BoundNoHazards,
		StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.SecretFree() {
		t.Fatalf("MEE FaCT must be clean without hazard detection, got %s", p1.Summary())
	}
	p2, err := pitchfork.Analyze(mk(), pitchfork.Options{
		Bound:          pitchfork.BoundWithHazards,
		ForwardHazards: true,
		StopAtFirst:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.SecretFree() {
		t.Fatal("MEE FaCT must be flagged with forwarding-hazard detection")
	}
}

// TestCoalescePreservesSequentialResults: the register-reuse artifact
// must not change architectural behaviour — the coalesced and
// uncoalesced FaCT builds compute identical final memories.
func TestCoalescePreservesSequentialResults(t *testing.T) {
	for _, idx := range []int{2, 3} { // ssl3, MEE
		c := Cases()[idx]
		plain, err := ct.Compile(c.srcFaCT, ct.ModeFaCT)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := c.Build(ct.ModeFaCT)
		if err != nil {
			t.Fatal(err)
		}
		m1 := core.New(plain.Prog)
		if _, _, err := core.RunSequential(m1, 200000); err != nil {
			t.Fatal(err)
		}
		m2 := core.New(fused.Prog)
		if _, _, err := core.RunSequential(m2, 200000); err != nil {
			t.Fatal(err)
		}
		if !m1.Mem.Equal(m2.Mem) {
			t.Fatalf("%s: coalescing changed architectural results", c.Name)
		}
	}
}

// TestDonnaComputesDeterministically: the ladder is a real computation
// whose output depends on the secret scalar.
func TestDonnaComputesDeterministically(t *testing.T) {
	comp, err := Cases()[0].Build(ct.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	m := core.New(comp.Prog)
	if _, _, err := core.RunSequential(m, 100000); err != nil {
		t.Fatal(err)
	}
	out, err := m.Mem.Read(comp.GlobalAddr["out"])
	if err != nil {
		t.Fatal(err)
	}
	if !out.L.IsSecret() {
		t.Fatal("ladder output must be secret-labeled")
	}
	m2 := core.New(comp.Prog)
	if _, _, err := core.RunSequential(m2, 100000); err != nil {
		t.Fatal(err)
	}
	out2, _ := m2.Mem.Read(comp.GlobalAddr["out"])
	if out != out2 {
		t.Fatal("nondeterministic ladder")
	}
}
