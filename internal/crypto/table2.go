package crypto

import (
	"fmt"
	"strings"

	"pitchfork/internal/core"
	"pitchfork/internal/ct"
	"pitchfork/internal/pitchfork"
)

// Finding is one cell of Table 2.
type Finding uint8

const (
	// Clean: no SCT violation found at either phase.
	Clean Finding = iota
	// Flagged: violation found without forwarding-hazard detection
	// (the paper's plain checkmark).
	Flagged
	// FlaggedFwd: violation found only with forwarding-hazard
	// detection (the paper's "f").
	FlaggedFwd
)

// String renders the cell in the paper's notation.
func (f Finding) String() string {
	switch f {
	case Flagged:
		return "✓"
	case FlaggedFwd:
		return "f"
	default:
		return "–"
	}
}

// Row is one Table 2 line.
type Row struct {
	Case  string
	C     Finding
	FaCT  Finding
	Notes string
}

// Options tune the Table 2 reproduction. Zero values use the paper's
// §4.2.1 procedure bounds (250 without hazard detection, 20 with).
type Options struct {
	BoundPhase1 int
	BoundPhase2 int
	MaxStates   int
}

func (o Options) withDefaults() Options {
	if o.BoundPhase1 == 0 {
		o.BoundPhase1 = pitchfork.BoundNoHazards
	}
	if o.BoundPhase2 == 0 {
		o.BoundPhase2 = pitchfork.BoundWithHazards
	}
	return o
}

// Analyze runs the paper's two-phase procedure on one build and folds
// the two reports into a Table 2 cell.
func Analyze(c Case, mode ct.Mode, opts Options) (Finding, error) {
	opts = opts.withDefaults()
	comp, err := c.Build(mode)
	if err != nil {
		return Clean, err
	}
	mk := func() *core.Machine { return core.New(comp.Prog) }
	p1, err := pitchfork.Analyze(mk(), pitchfork.Options{
		Bound:       opts.BoundPhase1,
		MaxStates:   opts.MaxStates,
		StopAtFirst: true,
	})
	if err != nil {
		return Clean, err
	}
	if !p1.SecretFree() {
		return Flagged, nil
	}
	p2, err := pitchfork.Analyze(mk(), pitchfork.Options{
		Bound:          opts.BoundPhase2,
		ForwardHazards: true,
		MaxStates:      opts.MaxStates,
		StopAtFirst:    true,
	})
	if err != nil {
		return Clean, err
	}
	if !p2.SecretFree() {
		return FlaggedFwd, nil
	}
	return Clean, nil
}

// Table2 regenerates the full table: every case study under both
// toolchains.
func Table2(opts Options) ([]Row, error) {
	var rows []Row
	for _, c := range Cases() {
		fc, err := Analyze(c, ct.ModeC, opts)
		if err != nil {
			return nil, err
		}
		ff, err := Analyze(c, ct.ModeFaCT, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Case: c.Name, C: fc, FaCT: ff})
	}
	return rows, nil
}

// Render formats the rows like the paper's Table 2.
func Render(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-5s %-5s\n", "Case Study", "C", "FaCT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-5s %-5s\n", r.Case, r.C, r.FaCT)
	}
	return b.String()
}
