package mem

import (
	"testing"
	"testing/quick"
)

// TestMemoryCloneIndependenceDeepChains mutates parent and child on
// both sides of every fork across chains long enough to cross the
// flatten boundary: no write on one side may ever be visible on the
// other, and Len must track the effective domain exactly.
func TestMemoryCloneIndependenceDeepChains(t *testing.T) {
	root := NewMemory()
	for i := 0; i < 32; i++ {
		root.Write(Word(i), Pub(uint64(i)))
	}
	cur := root
	clones := []*Memory{root}
	for g := 0; g < 3*MaxChainDepth; g++ {
		c := cur.Clone()
		// Diverge: the child overwrites one inherited cell and maps a
		// fresh one; the parent overwrites a different inherited cell.
		c.Write(Word(g%32), Sec(uint64(1000+g)))
		c.Write(Word(100+g), Pub(uint64(g)))
		cur.Write(Word((g+7)%32), Pub(uint64(2000+g)))
		clones = append(clones, c)
		cur = c
	}
	// The child's writes never leak into any ancestor.
	for g, c := range clones[:len(clones)-1] {
		if c.Contains(Word(100 + g)) {
			t.Fatalf("generation %d sees a descendant's fresh cell", g)
		}
	}
	// The last clone sees every inherited cell plus its own writes.
	last := clones[len(clones)-1]
	wantLen := 32 + (3 * MaxChainDepth) // inherited domain + one fresh cell per generation
	if last.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", last.Len(), wantLen)
	}
	if v, _ := last.Read(Word(100 + 3*MaxChainDepth - 1)); v != Pub(uint64(3*MaxChainDepth-1)) {
		t.Fatalf("last clone lost its own write: %v", v)
	}
}

// TestMemoryParentWriteInvisibleToChild is the other direction of
// clone independence: writes to the parent after the fork must not
// appear in the child.
func TestMemoryParentWriteInvisibleToChild(t *testing.T) {
	p := NewMemory()
	p.Write(1, Pub(10))
	c := p.Clone()
	p.Write(1, Pub(20))
	p.Write(2, Pub(30))
	if v, _ := c.Read(1); v != Pub(10) {
		t.Fatalf("child sees parent's post-fork overwrite: %v", v)
	}
	if c.Contains(2) {
		t.Fatal("child sees parent's post-fork fresh cell")
	}
}

// TestMemoryHashSumStableAcrossChains checks fingerprint stability:
// however a memory's contents were reached — straight-line writes,
// clone chains with shadowed cells, flattened or not — equal contents
// produce equal HashSums, and incremental maintenance agrees with a
// from-scratch computation.
func TestMemoryHashSumStableAcrossChains(t *testing.T) {
	chained := NewMemory()
	_ = chained.HashSum() // activate incremental maintenance early
	for i := 0; i < 8; i++ {
		chained.Write(Word(i), Pub(uint64(i)))
	}
	for g := 0; g < 2*MaxChainDepth; g++ {
		chained = chained.Clone()
		chained.Write(Word(g%8), Sec(uint64(g)))
		chained.Write(Word(50+g), Pub(uint64(g)))
	}
	// Rebuild the same contents flat, hashing only at the end.
	flat := NewMemory()
	for _, a := range chained.Addresses() {
		v, _ := chained.Read(a)
		flat.Write(a, v)
	}
	if !chained.Equal(flat) {
		t.Fatal("rebuild must be Equal")
	}
	if chained.HashSum() != flat.HashSum() {
		t.Fatalf("HashSum diverged: chained %#x, flat %#x", chained.HashSum(), flat.HashSum())
	}
}

// TestRegisterFileCloneIndependenceDeepChains mirrors the memory test
// for the register file, including HashSum agreement between a COW
// chain and a fresh rebuild.
func TestRegisterFileCloneIndependenceDeepChains(t *testing.T) {
	f := NewRegisterFile()
	_ = f.HashSum()
	for r := Reg(0); r < 8; r++ {
		f.Write(r, Pub(uint64(r)))
	}
	parent := f
	for g := 0; g < 2*MaxChainDepth; g++ {
		c := parent.Clone()
		c.Write(Reg(g%8), Sec(uint64(g)))
		parent.Write(Reg((g+3)%8), Pub(uint64(100+g)))
		if c.Read(Reg((g+3)%8)) == Pub(uint64(100+g)) && (g+3)%8 != g%8 {
			t.Fatalf("generation %d: parent write visible in child", g)
		}
		parent = c
	}
	flat := NewRegisterFile()
	for _, r := range parent.Registers() {
		flat.Write(r, parent.Read(r))
	}
	if !parent.Equal(flat) || parent.HashSum() != flat.HashSum() {
		t.Fatalf("chained register file must Equal its rebuild with the same HashSum")
	}
}

// TestRegisterFileCompareAllocationFree pins the satellite fix: Equal
// and LowEquiv on register files must not allocate, even across clone
// chains (they used to build a per-call union set).
func TestRegisterFileCompareAllocationFree(t *testing.T) {
	a, b := NewRegisterFile(), NewRegisterFile()
	for r := Reg(0); r < 16; r++ {
		a.Write(r, Pub(uint64(r)))
		b.Write(r, Pub(uint64(r)))
	}
	a = a.Clone() // compare across a chain, not just flat maps
	a.Write(3, Pub(3))
	if avg := testing.AllocsPerRun(100, func() {
		if !a.Equal(b) || !a.LowEquiv(b) {
			t.Fatal("files must compare equal")
		}
	}); avg != 0 {
		t.Fatalf("Equal/LowEquiv allocated %.1f objects per run, want 0", avg)
	}
}

// TestMemoryEquivalencePropertiesOnChains re-runs the original
// LowEquiv property on chained memories: reflexivity and symmetry
// must survive the representation change.
func TestMemoryEquivalencePropertiesOnChains(t *testing.T) {
	gen := func(seed uint64) *Memory {
		m := NewMemory()
		x := seed
		for i := 0; i < 24; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			l := Public
			if x&1 == 1 {
				l = Secret
			}
			m.Write(Word(i%12), V(x>>8, l))
			if i%5 == 0 {
				m = m.Clone()
			}
		}
		return m
	}
	f := func(seed uint64) bool {
		m, n := gen(seed), gen(seed^0xbeef)
		return m.LowEquiv(m) && m.Equal(m) && m.LowEquiv(n) == n.LowEquiv(m) && m.Equal(n) == n.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
