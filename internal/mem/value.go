package mem

import "fmt"

// Word is the machine word of the abstract machine. The paper leaves
// the value domain abstract; we fix 64-bit two's-complement words, which
// is wide enough to express the figures' byte-addressed examples and the
// crypto case studies.
type Word = uint64

// Value is a labeled machine word vℓ.
type Value struct {
	W Word
	L Label
}

// V constructs a labeled value.
func V(w Word, l Label) Value { return Value{W: w, L: l} }

// Pub constructs a public value, the common case in the figures where
// the label annotation is omitted.
func Pub(w Word) Value { return Value{W: w, L: Public} }

// Sec constructs a secret value.
func Sec(w Word) Value { return Value{W: w, L: Secret} }

// WithLabel returns the value relabeled to l.
func (v Value) WithLabel(l Label) Value { return Value{W: v.W, L: l} }

// Raise returns the value with its label joined with l; used when a
// computation over v is influenced by data labeled l.
func (v Value) Raise(l Label) Value { return Value{W: v.W, L: v.L.Join(l)} }

// IsSecret reports whether the value's label is above Public.
func (v Value) IsSecret() bool { return v.L.IsSecret() }

// Equal reports label-and-word equality. The memory-hazard rules of
// §3.5 compare forwarded data against memory with exactly this
// equality (v′ℓ′ ≠ vℓ triggers load-execute-addr-mem-hazard).
func (v Value) Equal(u Value) bool { return v == u }

// String renders the value in the paper's style, e.g. "9pub" or "x sec".
func (v Value) String() string {
	return fmt.Sprintf("%d%s", int64(v.W), v.L)
}
