package mem

import (
	"testing"
	"testing/quick"
)

func TestLabelLatticeBasics(t *testing.T) {
	if !Public.IsPublic() || Public.IsSecret() {
		t.Fatal("Public must be bottom")
	}
	if Secret.IsPublic() || !Secret.IsSecret() {
		t.Fatal("Secret must be above bottom")
	}
	if got := Public.Join(Secret); got != Secret {
		t.Fatalf("pub ⊔ sec = %v, want sec", got)
	}
	if !Public.FlowsTo(Secret) {
		t.Fatal("pub ⊑ sec must hold")
	}
	if Secret.FlowsTo(Public) {
		t.Fatal("sec ⊑ pub must not hold")
	}
}

func TestPrincipalDistinct(t *testing.T) {
	a, b := Principal(3), Principal(7)
	if a == b {
		t.Fatal("distinct principals must differ")
	}
	j := a.Join(b)
	if !a.FlowsTo(j) || !b.FlowsTo(j) {
		t.Fatal("join must be an upper bound")
	}
	if j.FlowsTo(a) || j.FlowsTo(b) {
		t.Fatal("join of incomparable labels must be strictly above both")
	}
}

func TestPrincipalPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Principal(64) must panic")
		}
	}()
	Principal(64)
}

func TestLabelString(t *testing.T) {
	cases := map[Label]string{
		Public:                          "pub",
		Secret:                          "sec",
		Principal(1):                    "sec{1}",
		Principal(1).Join(Secret):       "sec{0,1}",
		Principal(5).Join(Principal(9)): "sec{5,9}",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", uint64(l), got, want)
		}
	}
}

// Property: Join is a commutative, associative, idempotent upper bound
// — i.e. Label really is a join semilattice.
func TestLabelSemilatticeProperties(t *testing.T) {
	comm := func(a, b uint64) bool {
		x, y := Label(a), Label(b)
		return x.Join(y) == y.Join(x)
	}
	assoc := func(a, b, c uint64) bool {
		x, y, z := Label(a), Label(b), Label(c)
		return x.Join(y).Join(z) == x.Join(y.Join(z))
	}
	idem := func(a uint64) bool {
		x := Label(a)
		return x.Join(x) == x
	}
	upper := func(a, b uint64) bool {
		x, y := Label(a), Label(b)
		j := x.Join(y)
		return x.FlowsTo(j) && y.FlowsTo(j)
	}
	for name, f := range map[string]any{"comm": comm, "assoc": assoc, "idem": idem, "upper": upper} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestJoinAll(t *testing.T) {
	if JoinAll() != Public {
		t.Fatal("empty join must be bottom")
	}
	if JoinAll(Public, Secret, Principal(2)) != Secret.Join(Principal(2)) {
		t.Fatal("JoinAll must fold Join")
	}
}

func TestValueBasics(t *testing.T) {
	v := Sec(42)
	if !v.IsSecret() || v.W != 42 {
		t.Fatalf("Sec(42) = %v", v)
	}
	if got := Pub(9).String(); got != "9pub" {
		t.Fatalf("String = %q, want 9pub", got)
	}
	if Pub(1).Raise(Secret) != Sec(1) {
		t.Fatal("Raise must join labels")
	}
	if Pub(1).WithLabel(Secret) != Sec(1) {
		t.Fatal("WithLabel must replace the label")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if v, err := m.Read(0x40); err != nil || v != Pub(0) {
		t.Fatalf("unmapped read = %v, %v; want 0pub", v, err)
	}
	m.Write(0x40, Sec(7))
	v, err := m.Read(0x40)
	if err != nil || v != Sec(7) {
		t.Fatalf("read-after-write = %v, %v", v, err)
	}
	if !m.Contains(0x40) || m.Contains(0x41) {
		t.Fatal("Contains wrong")
	}
}

func TestStrictMemoryRejectsWildReads(t *testing.T) {
	m := NewStrictMemory()
	if _, err := m.Read(0x99); err == nil {
		t.Fatal("strict memory must reject unmapped reads")
	}
	m.Write(0x99, Pub(1))
	if _, err := m.Read(0x99); err != nil {
		t.Fatalf("mapped read failed: %v", err)
	}
	if !m.Strict() {
		t.Fatal("Strict() must report true")
	}
}

func TestMemoryCloneIsDeep(t *testing.T) {
	m := NewMemory()
	m.Write(1, Pub(10))
	c := m.Clone()
	c.Write(1, Pub(20))
	if v, _ := m.Read(1); v != Pub(10) {
		t.Fatal("clone must not alias the original")
	}
	if v, _ := c.Read(1); v != Pub(20) {
		t.Fatal("clone write lost")
	}
}

func TestMemoryRegionAndAddresses(t *testing.T) {
	m := NewMemory()
	m.WriteRegion(0x44, []Value{Pub(1), Pub(2), Pub(3)})
	want := []Word{0x44, 0x45, 0x46}
	got := m.Addresses()
	if len(got) != len(want) {
		t.Fatalf("addresses = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addresses = %v, want %v", got, want)
		}
	}
}

func TestMemoryLowEquiv(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Write(1, Pub(5))
	a.Write(2, Sec(10))
	b.Write(1, Pub(5))
	b.Write(2, Sec(99)) // secrets may differ
	if !a.LowEquiv(b) {
		t.Fatal("memories differing only in secrets must be low-equivalent")
	}
	b.Write(1, Pub(6))
	if a.LowEquiv(b) {
		t.Fatal("public disagreement must break low-equivalence")
	}
	b.Write(1, Pub(5))
	b.Write(3, Pub(0))
	if a.LowEquiv(b) {
		t.Fatal("domain mismatch must break low-equivalence")
	}
	// Label mismatch at same word also breaks it.
	c := NewMemory()
	c.Write(1, Pub(5))
	c.Write(2, Pub(10))
	if a.LowEquiv(c) {
		t.Fatal("label mismatch must break low-equivalence")
	}
}

func TestMemoryEqual(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Write(1, Sec(5))
	b.Write(1, Sec(5))
	if !a.Equal(b) {
		t.Fatal("equal memories")
	}
	b.Write(1, Sec(6))
	if a.Equal(b) {
		t.Fatal("differing secrets are not Equal (≈ is exact)")
	}
}

func TestRegisterFile(t *testing.T) {
	f := NewRegisterFile()
	if f.Read(3) != Pub(0) {
		t.Fatal("unmapped register must read as 0pub")
	}
	f.Write(3, Sec(8))
	if f.Read(3) != Sec(8) {
		t.Fatal("read-after-write")
	}
	c := f.Clone()
	c.Write(3, Pub(1))
	if f.Read(3) != Sec(8) {
		t.Fatal("clone aliases")
	}
	regs := f.Registers()
	if len(regs) != 1 || regs[0] != 3 {
		t.Fatalf("Registers = %v", regs)
	}
}

func TestRegisterFileLowEquiv(t *testing.T) {
	a, b := NewRegisterFile(), NewRegisterFile()
	a.Write(1, Sec(1))
	b.Write(1, Sec(2))
	if !a.LowEquiv(b) {
		t.Fatal("secret registers may differ under ≃pub")
	}
	b.Write(2, Pub(1))
	if a.LowEquiv(b) {
		t.Fatal("a public nonzero vs implicit zero must break ≃pub")
	}
	a.Write(2, Pub(1))
	if !a.LowEquiv(b) || !a.Equal(b) == a.LowEquiv(b) && false {
		t.Fatal("restored equivalence")
	}
	if a.Equal(b) {
		t.Fatal("secret words differ, Equal must be false")
	}
	b.Write(1, Sec(1))
	if !a.Equal(b) {
		t.Fatal("Equal after matching secrets")
	}
}

// Property: LowEquiv is reflexive and symmetric on randomly generated
// memories.
func TestLowEquivReflexiveSymmetric(t *testing.T) {
	gen := func(seed uint64) *Memory {
		m := NewMemory()
		x := seed
		for i := 0; i < 16; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			l := Public
			if x&1 == 1 {
				l = Secret
			}
			m.Write(Word(i), V(x>>8, l))
		}
		return m
	}
	f := func(seed uint64) bool {
		m := gen(seed)
		n := gen(seed ^ 0xdeadbeef)
		if !m.LowEquiv(m) {
			return false
		}
		return m.LowEquiv(n) == n.LowEquiv(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
