// Package mem provides the value-level substrate of the speculative
// machine: security labels drawn from a join semilattice, labeled
// machine words, register files, and labeled sparse memories.
//
// The paper (§3, "Values and labels") annotates every value with a label
// from a lattice of security labels with join ⊔ and defines the
// low-equivalence ≃pub over configurations as agreement on public
// values. This package implements that lattice as a set of principals
// encoded in a bitmask, with Public as the bottom element and Secret as
// the canonical non-bottom label used throughout the test suites.
package mem

import (
	"sort"
	"strings"
)

// Label is an element of the security lattice: a finite set of
// principals encoded as a bitmask. The empty set is Public (bottom);
// join is set union. Any label that is not Public is treated as
// sensitive by the speculative constant-time checkers, matching the
// paper's two-point instantiation {pub ⊑ sec} while remaining a genuine
// lattice.
type Label uint64

// Public is the bottom element of the lattice: data the attacker is
// allowed to observe.
const Public Label = 0

// Secret is the canonical high label used by the paper's examples
// (written "sec" in the figures). It is principal #0.
const Secret Label = 1

// Principal returns the label owned by principal i (0 ≤ i < 64).
// Principal(0) == Secret.
func Principal(i uint) Label {
	if i >= 64 {
		panic("mem: principal index out of range")
	}
	return Label(1) << i
}

// Join returns the least upper bound ℓ ⊔ m.
func (l Label) Join(m Label) Label { return l | m }

// Meet returns the greatest lower bound ℓ ⊓ m.
func (l Label) Meet(m Label) Label { return l & m }

// FlowsTo reports whether l ⊑ m in the lattice, i.e. whether data
// labeled l may be stored in a sink labeled m.
func (l Label) FlowsTo(m Label) bool { return l|m == m }

// IsPublic reports whether the label is the bottom element.
func (l Label) IsPublic() bool { return l == Public }

// IsSecret reports whether the label is above bottom; every such label
// is treated as secret by the SCT checkers.
func (l Label) IsSecret() bool { return l != Public }

// String renders Public as "pub", Secret as "sec", and other lattice
// points as a principal set such as "sec{0,3}".
func (l Label) String() string {
	switch l {
	case Public:
		return "pub"
	case Secret:
		return "sec"
	}
	var ids []int
	for i := 0; i < 64; i++ {
		if l&(Label(1)<<i) != 0 {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	b.WriteString("sec{")
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itoa(id))
	}
	b.WriteByte('}')
	return b.String()
}

// JoinAll folds Join over a list of labels, returning Public for the
// empty list. It implements the ⊔ℓ⃗ operation used by the execute rules
// to label calculated addresses and branch conditions.
func JoinAll(labels ...Label) Label {
	out := Public
	for _, l := range labels {
		out |= l
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
