package mem

import (
	"fmt"
	"sort"
)

// HashSeed is an arbitrary non-zero starting state for hash chains
// (the FNV-1a 64-bit offset basis, kept for familiarity); shared with
// the machine fingerprint in internal/core.
const HashSeed uint64 = 14695981039346656037

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer used by the machine-state fingerprinting in internal/core and
// by the incremental cell-hash sums below.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// cellHash hashes one (key, value) cell. Cell hashes are combined with
// an order-independent sum, which lets Write maintain the whole
// container's hash incrementally: subtract the old cell, add the new.
func cellHash(key uint64, v Value) uint64 {
	h := Mix64(HashSeed ^ key)
	h = Mix64(h ^ v.W)
	return Mix64(h ^ uint64(v.L))
}

// ---------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------

// Memory is the labeled data memory µ : V ⇀ V of a configuration: a
// sparse, word-granular map from addresses to labeled values. Reads of
// unmapped addresses return a labeled zero by default (the machine is
// total over data addresses, like a zero-filled address space), unless
// the memory is constructed Strict, in which case they are errors —
// strict mode is what the test suites use to catch wild reads early.
//
// The representation is copy-on-write (see CowMap): Clone is O(1),
// sharing a chain of frozen overlays with the original, and each fork
// pays only for the cells it writes afterwards. This is what makes
// exploration-tree forking O(changed-cells) instead of O(memory-size).
type Memory struct {
	m      CowMap[Word, Value]
	strict bool
	// sum is the order-independent sum of cellHash over all mapped
	// cells — the O(1) memory half of the machine fingerprint. It is
	// computed lazily at the first HashSum call and maintained
	// incrementally by Write from then on (hashed tracks the mode), so
	// runs that never fingerprint pay nothing.
	sum    uint64
	hashed bool
}

// NewMemory returns an empty, non-strict memory.
func NewMemory() *Memory { return &Memory{} }

// NewStrictMemory returns an empty memory whose reads of unmapped
// addresses fail.
func NewStrictMemory() *Memory {
	return &Memory{strict: true}
}

// Strict reports whether unmapped reads are errors.
func (m *Memory) Strict() bool { return m.strict }

// Read returns µ(a). For non-strict memories, unmapped addresses read
// as Pub(0).
func (m *Memory) Read(a Word) (Value, error) {
	if v, ok := m.m.Lookup(a); ok {
		return v, nil
	}
	if m.strict {
		return Value{}, fmt.Errorf("mem: read of unmapped address %#x", a)
	}
	return Pub(0), nil
}

// Write sets µ(a) = v.
func (m *Memory) Write(a Word, v Value) {
	old, existed := m.m.Set(a, v)
	if m.hashed {
		if existed {
			m.sum -= cellHash(a, old)
		}
		m.sum += cellHash(a, v)
	}
}

// HashSum returns the order-independent hash sum over all mapped
// cells. Memories with equal contents have equal sums regardless of
// write order. The first call walks the cells once and switches the
// memory (and, via Clone, its descendants) to incremental maintenance.
func (m *Memory) HashSum() uint64 {
	if !m.hashed {
		m.hashed = true
		m.sum = 0
		m.m.FlatEach(func(a Word, v Value) {
			m.sum += cellHash(a, v)
		})
	}
	return m.sum
}

// Contains reports whether a is mapped.
func (m *Memory) Contains(a Word) bool {
	_, ok := m.m.Lookup(a)
	return ok
}

// Len returns the number of mapped cells.
func (m *Memory) Len() int { return m.m.Len() }

// Clone returns an independent copy in O(1): the original's overlay is
// frozen into the shared chain, and both memories continue with empty
// private overlays. Step rules never mutate a shared layer, so the two
// copies cannot observe one another's subsequent writes.
func (m *Memory) Clone() *Memory {
	return &Memory{m: m.m.Fork(), strict: m.strict, sum: m.sum, hashed: m.hashed}
}

// Addresses returns the mapped addresses in increasing order.
func (m *Memory) Addresses() []Word {
	out := m.m.Keys()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteRegion maps len(vs) consecutive words starting at base.
func (m *Memory) WriteRegion(base Word, vs []Value) {
	for i, v := range vs {
		m.Write(base+Word(i), v)
	}
}

// LowEquiv reports µ ≃pub µ′: the two memories agree on their public
// cells — same mapped domain, same labels everywhere, and equal words
// wherever the label is public. The comparison is allocation-free: it
// walks the receiver's layers and resolves both sides through lookup
// (keys shadowed across layers are simply compared more than once).
func (m *Memory) LowEquiv(o *Memory) bool {
	if m.m.Len() != o.m.Len() {
		return false
	}
	eq := true
	m.m.EachKey(func(a Word) bool {
		v, _ := m.m.Lookup(a)
		w, ok := o.m.Lookup(a)
		if !ok || v.L != w.L || (v.L.IsPublic() && v.W != w.W) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Equal reports exact equality of the two memories (domain, words,
// labels). It implements the memory half of the ≈ equivalence used by
// the sequential-consistency theorems.
func (m *Memory) Equal(o *Memory) bool {
	if m.m.Len() != o.m.Len() {
		return false
	}
	eq := true
	m.m.EachKey(func(a Word) bool {
		v, _ := m.m.Lookup(a)
		if w, ok := o.m.Lookup(a); !ok || w != v {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// ---------------------------------------------------------------------
// Register file
// ---------------------------------------------------------------------

// RegisterFile is the register map ρ : R ⇀ V. Register names are
// small integers; the assembler maps symbolic names (ra, rb, …, rsp,
// rtmp) onto them. Like Memory, the representation is copy-on-write:
// Clone is O(1) and forks pay only for the registers they write.
type RegisterFile struct {
	m CowMap[Reg, Value]
	// sum and hashed mirror Memory: the lazily activated, then
	// incrementally maintained, order-independent hash of all mapped
	// registers.
	sum    uint64
	hashed bool
}

// Reg names a register.
type Reg uint16

// Conventional registers used by the call/return expansion of
// Appendix A and by the repair engine's hardening passes. RSP is the
// stack pointer; RTMP is the scratch register the ret expansion loads
// the return address into (repair-inserted code also uses it for
// transient address computations — its architectural value is never
// committed by the expansion, so the convention is compatible); RMSK
// is the speculation-predicate register the SLH-style mask pass
// maintains: all-ones on architectural paths, zero on mis-speculated
// ones. Source programs must not use RMSK — the mask pass refuses
// programs that do.
const (
	RMSK Reg = 0xFFFD
	RSP  Reg = 0xFFFE
	RTMP Reg = 0xFFFF
)

// NewRegisterFile returns an empty register file.
func NewRegisterFile() *RegisterFile {
	return &RegisterFile{}
}

// Read returns ρ(r); unmapped registers read as Pub(0), mirroring a
// zeroed register file at power-on.
func (f *RegisterFile) Read(r Reg) Value {
	if v, ok := f.m.Lookup(r); ok {
		return v
	}
	return Pub(0)
}

// Write sets ρ(r) = v.
func (f *RegisterFile) Write(r Reg, v Value) {
	old, existed := f.m.Set(r, v)
	if f.hashed {
		if existed {
			f.sum -= cellHash(uint64(r), old)
		}
		f.sum += cellHash(uint64(r), v)
	}
}

// HashSum returns the order-independent hash sum over all mapped
// registers; like Memory.HashSum, the first call activates incremental
// maintenance.
func (f *RegisterFile) HashSum() uint64 {
	if !f.hashed {
		f.hashed = true
		f.sum = 0
		f.m.FlatEach(func(r Reg, v Value) {
			f.sum += cellHash(uint64(r), v)
		})
	}
	return f.sum
}

// Clone returns an independent copy of the register file in O(1),
// sharing frozen overlay layers with the original.
func (f *RegisterFile) Clone() *RegisterFile {
	return &RegisterFile{m: f.m.Fork(), sum: f.sum, hashed: f.hashed}
}

// Registers returns the mapped registers in increasing order.
func (f *RegisterFile) Registers() []Reg {
	out := f.m.Keys()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LowEquiv reports ρ ≃pub ρ′ over the union of both domains (an
// unmapped register is Pub(0), so it participates as a public zero).
// The comparison is a two-pass, allocation-free walk: every register
// mapped on either side is resolved through Read on both.
func (f *RegisterFile) LowEquiv(o *RegisterFile) bool {
	return f.lowEquivHalf(o) && o.lowEquivHalf(f)
}

func (f *RegisterFile) lowEquivHalf(o *RegisterFile) bool {
	eq := true
	f.m.EachKey(func(r Reg) bool {
		v, w := f.Read(r), o.Read(r)
		if v.L != w.L || (v.L.IsPublic() && v.W != w.W) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Equal reports exact equality over the union of both domains, as an
// allocation-free two-pass walk.
func (f *RegisterFile) Equal(o *RegisterFile) bool {
	return f.equalHalf(o) && o.equalHalf(f)
}

func (f *RegisterFile) equalHalf(o *RegisterFile) bool {
	eq := true
	f.m.EachKey(func(r Reg) bool {
		if f.Read(r) != o.Read(r) {
			eq = false
			return false
		}
		return true
	})
	return eq
}
