package mem

// MaxChainDepth bounds the overlay chain length of a CowMap. Fork
// flattens a chain that reaches this depth before sharing it, so
// lookups stay O(1) amortized while the flatten cost is spread over
// many forks.
const MaxChainDepth = 8

// layer is one frozen overlay of a copy-on-write chain. Once a layer
// is created it is never written again, so clones on both sides of a
// fork may read it concurrently without coordination.
type layer[K comparable, V any] struct {
	parent *layer[K, V]
	cells  map[K]V
}

// CowMap is a copy-on-write map: a mutable private overlay on a chain
// of frozen ancestor layers. Fork is O(1) — it freezes the private
// overlay into the shared chain and hands out an empty one — so
// cloning cost is proportional to the data written since the last
// fork, not to the map size. It backs the concrete Memory and
// RegisterFile here and the symbolic containers in internal/symx.
type CowMap[K comparable, V any] struct {
	parent *layer[K, V]
	cells  map[K]V // private overlay; lazily allocated
	depth  int     // number of frozen ancestor layers
	count  int     // effective number of mapped keys
}

// Lookup returns the effective binding of k: the private overlay
// first, then the frozen layers young-to-old.
func (c *CowMap[K, V]) Lookup(k K) (V, bool) {
	if v, ok := c.cells[k]; ok {
		return v, true
	}
	for l := c.parent; l != nil; l = l.parent {
		if v, ok := l.cells[k]; ok {
			return v, true
		}
	}
	var zero V
	return zero, false
}

// Set binds k in the private overlay and returns the previous
// effective binding, for incremental hash maintenance.
func (c *CowMap[K, V]) Set(k K, v V) (old V, existed bool) {
	old, existed = c.Lookup(k)
	if !existed {
		c.count++
	}
	if c.cells == nil {
		c.cells = make(map[K]V, 8)
	}
	c.cells[k] = v
	return old, existed
}

// Len returns the effective number of mapped keys.
func (c *CowMap[K, V]) Len() int { return c.count }

// Fork freezes the private overlay into the shared chain and returns
// an independent head over the same chain. Both the receiver and the
// returned map continue with empty private overlays; neither can
// observe the other's subsequent writes.
func (c *CowMap[K, V]) Fork() CowMap[K, V] {
	if c.depth >= MaxChainDepth {
		c.Flatten()
	}
	if len(c.cells) > 0 {
		c.parent = &layer[K, V]{parent: c.parent, cells: c.cells}
		c.cells = nil
		c.depth++
	}
	return CowMap[K, V]{parent: c.parent, depth: c.depth, count: c.count}
}

// Flatten materializes the effective contents into a single private
// overlay and drops the chain.
func (c *CowMap[K, V]) Flatten() {
	if c.parent == nil {
		return
	}
	flat := make(map[K]V, c.count)
	for k, v := range c.cells {
		flat[k] = v
	}
	for l := c.parent; l != nil; l = l.parent {
		for k, v := range l.cells {
			if _, ok := flat[k]; !ok {
				flat[k] = v
			}
		}
	}
	c.cells, c.parent, c.depth = flat, nil, 0
}

// FlatEach flattens the chain and visits every effective binding
// exactly once. Intended for one-time whole-container folds (hash-sum
// activation); after the call the map has no ancestor layers.
func (c *CowMap[K, V]) FlatEach(fn func(K, V)) {
	c.Flatten()
	for k, v := range c.cells {
		fn(k, v)
	}
}

// EachKey visits every key of every layer, private overlay first. A
// key written in several layers is visited once per layer; callers
// must tolerate duplicates (and resolve values through Lookup).
// Returning false from fn stops the walk. The walk allocates nothing.
func (c *CowMap[K, V]) EachKey(fn func(K) bool) {
	for k := range c.cells {
		if !fn(k) {
			return
		}
	}
	for l := c.parent; l != nil; l = l.parent {
		for k := range l.cells {
			if !fn(k) {
				return
			}
		}
	}
}

// Keys returns the effective key set, deduplicated.
func (c *CowMap[K, V]) Keys() []K {
	out := make([]K, 0, c.count)
	if c.parent == nil {
		for k := range c.cells {
			out = append(out, k)
		}
		return out
	}
	seen := make(map[K]struct{}, c.count)
	c.EachKey(func(k K) bool {
		seen[k] = struct{}{}
		return true
	})
	for k := range seen {
		out = append(out, k)
	}
	return out
}
