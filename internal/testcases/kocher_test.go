package testcases

import (
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/pitchfork"
)

// TestKocherV1All: every Kocher case is flagged by the concrete
// detector at the paper's phase-1 settings.
func TestKocherV1All(t *testing.T) {
	for _, c := range Kocher() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := pitchfork.Analyze(m, pitchfork.Options{
				Bound:       pitchfork.BoundNoHazards,
				StopAtFirst: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.SecretFree() {
				t.Fatalf("%s must be flagged", c.Name)
			}
		})
	}
}

// TestKocherSequentialExpectations: the corpus metadata matches the
// machine — cases marked SequentialLeak produce secret observations in
// their canonical sequential trace, the rest do not.
func TestKocherSequentialExpectations(t *testing.T) {
	for _, c := range Kocher() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			_, trace, err := core.RunSequential(m, 100000)
			if err != nil {
				t.Fatal(err)
			}
			if got := trace.HasSecret(); got != c.SequentialLeak {
				t.Fatalf("%s: sequential leak = %t, metadata says %t (trace %s)",
					c.Name, got, c.SequentialLeak, trace)
			}
		})
	}
}

// TestSpeculativeOnlyV1: the paper's new suite leaks under speculation
// but never sequentially.
func TestSpeculativeOnlyV1(t *testing.T) {
	for _, c := range SpecOnlyV1() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			_, trace, err := core.RunSequential(m.Clone(), 100000)
			if err != nil {
				t.Fatal(err)
			}
			if trace.HasSecret() {
				t.Fatalf("%s must be sequentially clean: %s", c.Name, trace)
			}
			rep, err := pitchfork.Analyze(m, pitchfork.Options{
				Bound:       pitchfork.BoundNoHazards,
				StopAtFirst: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.SecretFree() {
				t.Fatalf("%s must be flagged speculatively", c.Name)
			}
		})
	}
}

// TestV11Suite: store-variant cases, run per the §4.2.1 procedure —
// forwarding-hazard members only appear in phase 2 at bound 20.
func TestV11Suite(t *testing.T) {
	for _, c := range V11() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			p1, err := pitchfork.Analyze(m.Clone(), pitchfork.Options{
				Bound:       pitchfork.BoundNoHazards,
				StopAtFirst: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if c.NeedsFwdHazards {
				if !p1.SecretFree() {
					t.Fatalf("%s should be clean without hazard detection", c.Name)
				}
				p2, err := pitchfork.Analyze(m, pitchfork.Options{
					Bound:          pitchfork.BoundWithHazards,
					ForwardHazards: true,
					StopAtFirst:    true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if p2.SecretFree() {
					t.Fatalf("%s must be flagged with hazard detection", c.Name)
				}
				return
			}
			if p1.SecretFree() {
				t.Fatalf("%s must be flagged in phase 1", c.Name)
			}
		})
	}
}

// TestKocherSymbolic: a sample of cases under the symbolic detector
// with x unconstrained — the witness model must pick an out-of-bounds
// index.
func TestKocherSymbolic(t *testing.T) {
	sample := []int{0, 5, 6, 11} // kocher01, 06, 07, 12
	all := Kocher()
	for _, i := range sample {
		c := all[i]
		t.Run(c.Name, func(t *testing.T) {
			sm, err := c.BuildSym()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{
				Bound:       30,
				StopAtFirst: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.SecretFree() {
				t.Fatalf("%s must be flagged symbolically", c.Name)
			}
		})
	}
}

// TestCorpusSizes documents the corpus shape the paper describes.
func TestCorpusSizes(t *testing.T) {
	if got := len(Kocher()); got != 15 {
		t.Fatalf("Kocher corpus = %d cases, want 15", got)
	}
	if got := len(SpecOnlyV1()); got < 5 {
		t.Fatalf("speculative-only suite = %d cases, want ≥5", got)
	}
	if got := len(V11()); got < 4 {
		t.Fatalf("v1.1 suite = %d cases, want ≥4", got)
	}
}
