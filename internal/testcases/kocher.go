// Package testcases contains the detector's test corpora (§4.2): the
// fifteen well-known Kocher Spectre v1 victim functions ported to CTL,
// the paper's new suite of variants that violate SCT only under
// speculation (the original Kocher cases often leak sequentially too),
// and its Spectre v1.1 store-variant suite.
//
// Every case declares the attacker-controlled input as the global x
// and the secret as an array adjacent to the public one, so both the
// concrete detector (with the given out-of-bounds x) and the symbolic
// detector (with x unconstrained) can analyze it.
package testcases

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/ct"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/symx"
)

// Case is one corpus entry.
type Case struct {
	Name string
	// Src is the CTL source; compiled with ModeC (the corpora model C
	// code).
	Src string
	// SequentialLeak marks cases that violate constant-time even
	// sequentially (true for several of the original Kocher cases).
	SequentialLeak bool
	// NeedsFwdHazards marks cases only detectable with
	// forwarding-hazard schedules (the v4-style members of the v1.1
	// suite).
	NeedsFwdHazards bool
}

// header declares the common memory geography: a1 is the
// bounds-checked public array, secret spans the adjacent cells, a2 is
// the transmission table, x the attacker's index (out of bounds
// architecturally), and temp the sink.
const header = `
public size = 4;
public a1[4] = {1, 2, 3, 4};
secret key[8] = {160, 161, 162, 163, 164, 165, 166, 167};
public a2[64];
public x = 5;
public temp;
`

// Kocher returns the fifteen classic victim functions. Each preserves
// the mechanism of the corresponding case in Kocher's list — what
// varies is how the bounds check, the index arithmetic, and the
// transmission are expressed.
func Kocher() []Case {
	mk := func(n int, body string, seqLeak bool) Case {
		return Case{
			Name:           fmt.Sprintf("kocher%02d", n),
			Src:            header + "fn main() {\n" + body + "\n}",
			SequentialLeak: seqLeak,
		}
	}
	return []Case{
		// 01: the baseline bounds-check bypass.
		mk(1, `
  if (x < size) {
    temp = temp & a2[a1[x] * 2];
  }`, false),
		// 02: the check is hoisted into a containing condition.
		mk(2, `
  if (x < size) {
    if (a1[x] > 0) {
      temp = temp & a2[a1[x] * 2];
    }
  }`, false),
		// 03: the access sits in a loop running x times.
		mk(3, `
  var i = 0;
  while (i < 2) {
    if (x < size) {
      temp = temp & a2[a1[x] * 2];
    }
    i = i + 1;
  }`, false),
		// 04: a masking "mitigation" with the wrong mask — the index
		// still overruns into the adjacent key, so it leaks even
		// sequentially.
		mk(4, `
  temp = temp & a2[a1[x & 7] * 2];`, true),
		// 05: check against a bound read from memory.
		mk(5, `
  if (x < a2[0] + size) {
    temp = temp & a2[a1[x] * 2];
  }`, false),
		// 06: comparison inverted, leak on the else arm.
		mk(6, `
  if (x >= size) {
    temp = temp + 1;
  } else {
    temp = temp & a2[a1[x] * 2];
  }`, false),
		// 07: a separate "is it safe" flag computed first.
		mk(7, `
  var ok = x < size;
  if (ok) {
    temp = temp & a2[a1[x] * 2];
  }`, false),
		// 08: the C ternary (x < size ? x : 0) compiled, as compilers
		// do, to a branch — the selected index is safe architecturally
		// but not speculatively.
		mk(8, `
  var i = 0;
  if (x < size) {
    i = x;
  }
  temp = temp & a2[a1[i] * 2];`, false),
		// 09: check with a redundant second comparison.
		mk(9, `
  if ((x < size) && (x >= 0)) {
    temp = temp & a2[a1[x] * 2];
  }`, false),
		// 10: leak via comparison rather than load address.
		mk(10, `
  if (x < size) {
    if (a1[x] == 200) {
      temp = temp + a2[0];
    }
  }`, false),
		// 11: transmission through a helper function.
		mk(11, `
  if (x < size) {
    temp = temp & leak(a1[x]);
  }`, false),
		// 12: index arithmetic mixes two attacker values.
		mk(12, `
  var y = x + 1;
  if (y < size) {
    temp = temp & a2[a1[y] * 2];
  }`, false),
		// 13: the check compares against a constant larger than the
		// array (an outright bug: leaks sequentially).
		mk(13, `
  if (x < 8) {
    temp = temp & a2[a1[x] * 2];
  }`, true),
		// 14: leak through a store address rather than a load.
		mk(14, `
  if (x < size) {
    a2[a1[x] * 2] = temp;
  }`, false),
		// 15: attacker-controlled pointer-style double indirection.
		mk(15, `
  if (x < size) {
    temp = temp & a2[a1[a1[x] % 8] * 2];
  }`, false),
	}
}

// leakHelper is appended to sources that call leak().
const leakHelper = `
fn leak(v) {
  return a2[v * 2];
}`

// SpecOnlyV1 is the paper's new v1 suite: cases constructed so that no
// sequential execution leaks (the out-of-bounds path is architecturally
// dead) — only speculation exposes them.
func SpecOnlyV1() []Case {
	mk := func(n int, body string) Case {
		return Case{
			Name: fmt.Sprintf("specv1_%02d", n),
			Src:  header + "fn main() {\n" + body + "\n}",
		}
	}
	return []Case{
		mk(1, `
  if (x < size) {
    temp = temp & a2[a1[x] * 2];
  }`),
		mk(2, `
  var i = 0;
  while (i < size) {
    temp = temp & a2[a1[i] * 2];
    i = i + 1;
  }`),
		mk(3, `
  if (x * 2 < size) {
    temp = temp & a2[a1[x * 2] * 2];
  }`),
		mk(4, `
  if (x < size) {
    if (x > 0) {
      temp = temp & a2[a1[x] * 2];
    }
  }`),
		mk(5, `
  if (x < size) {
    var v = a1[x];
    var w = v * 2 + 1;
    temp = temp & a2[w];
  }`),
		mk(6, `
  if (x < size) {
    temp = leak(a1[x]);
  }`),
	}
}

// V11 is the paper's Spectre v1.1 suite: speculative stores forward
// secrets (or stale secrets) to later loads.
func V11() []Case {
	v11Header := `
public size = 4;
public a1[4] = {1, 2, 3, 4};
public pubA[4] = {5, 6, 7, 8};
secret key[8] = {160, 161, 162, 163, 164, 165, 166, 167};
public a2[64];
public x = 5;
public temp;
secret skey = 77;
`
	mkBody := func(n int, body string, fwd bool) Case {
		return Case{
			Name:            fmt.Sprintf("v11_%02d", n),
			Src:             v11Header + "fn main() {\n" + body + "\n}",
			NeedsFwdHazards: fwd,
		}
	}
	return []Case{
		// Speculative out-of-bounds write of a secret into the public
		// array that follows a1, then a benign load pair (Figure 6's
		// shape: the store at a1[5] lands on pubA[1]).
		mkBody(1, `
  if (x < size) {
    a1[x] = skey;
  }
  temp = a2[pubA[1]];
  temp = a2[temp];`, false),
		// Same forward, with the transmission through a local.
		mkBody(2, `
  if (x < size) {
    a1[x] = skey;
  }
  var v = pubA[1];
  temp = a2[v * 2];`, false),
		// Spectre v4 member: the zeroing store's address resolves
		// late; the load reads the stale secret underneath (Figure 7's
		// shape).
		mkBody(3, `
  key[x - 5] = 0;
  var v = key[0];
  temp = a2[v * 2];`, true),
		// v4 through a helper-function boundary.
		mkBody(4, `
  scrub(x - 5);
  var v = key[0];
  temp = a2[v * 2];`, true),
	}
}

// Source returns the case's CTL source with the helper functions its
// body references appended — the self-contained unit to feed a
// compiler (Build and BuildSym use it internally).
func (c Case) Source() string { return withHelpers(c.Src) }

func withHelpers(src string) string {
	out := src
	if contains(src, "leak(") {
		out += leakHelper
	}
	if contains(src, "scrub(") {
		out += `
fn scrub(i) {
  key[i] = 0;
}`
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Build compiles the case (ModeC) and returns a fresh machine.
func (c Case) Build() (*core.Machine, error) {
	comp, err := ct.Compile(withHelpers(c.Src), ct.ModeC)
	if err != nil {
		return nil, fmt.Errorf("testcases: %s: %w", c.Name, err)
	}
	return core.New(comp.Prog), nil
}

// BuildSym compiles the case and binds x to an unconstrained symbolic
// public input for the symbolic detector.
func (c Case) BuildSym() (*pitchfork.SymMachine, error) {
	comp, err := ct.Compile(withHelpers(c.Src), ct.ModeC)
	if err != nil {
		return nil, fmt.Errorf("testcases: %s: %w", c.Name, err)
	}
	sm := pitchfork.NewSym(comp.Prog)
	xAddr, ok := comp.GlobalAddr["x"]
	if !ok {
		return nil, fmt.Errorf("testcases: %s: no global x", c.Name)
	}
	sm.SetMem(xAddr, symx.NewVar("x", mem.Public))
	return sm, nil
}

// For the v1.1 v4-style members, the stale-store window needs the
// store architecturally in-bounds; x-4 with x=5 hits a1[1]. All other
// cases use x=5 as the out-of-bounds attacker pick.
