package attacks

import (
	"strings"
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/sched"
)

// TestGalleryLeakExpectations: every figure's schedule runs cleanly
// and leaks (or not) exactly as the paper shows.
func TestGalleryLeakExpectations(t *testing.T) {
	for _, a := range Gallery() {
		a := a
		t.Run(a.ID, func(t *testing.T) {
			recs, err := a.Run()
			if err != nil {
				t.Fatalf("%s: %v", a.ID, err)
			}
			var trace core.Trace
			for _, r := range recs {
				trace = append(trace, r.Obs...)
			}
			if got := trace.HasSecret(); got != a.WantSecretLeak {
				t.Fatalf("%s: secret leak = %t, want %t (trace %s)", a.ID, got, a.WantSecretLeak, trace)
			}
		})
	}
}

// TestGalleryDetectedByExplorer: the leaky figures are found by the
// worst-case explorer without being given the schedule; the mitigated
// ones stay clean.
func TestGalleryDetectedByExplorer(t *testing.T) {
	for _, a := range Gallery() {
		a := a
		if a.ID == "fig2" || a.ID == "fig11" {
			// Outside the tool's schedule set (§4: "Pitchfork only
			// exercises a subset of our semantics; it does not detect
			// SCT violations based on alias prediction, indirect
			// jumps, or return stack buffers").
			continue
		}
		t.Run(a.ID, func(t *testing.T) {
			res, err := sched.Explore(a.New(), 20, true)
			if err != nil {
				t.Fatal(err)
			}
			if got := !res.SecretFree(); got != a.WantSecretLeak {
				t.Fatalf("%s: explorer found leak = %t, want %t", a.ID, got, a.WantSecretLeak)
			}
		})
	}
}

// TestFig2OutsideToolSubset documents the subset boundary: the
// aliasing-predictor attack needs the execute:fwd directive, which the
// schedule generator never issues.
func TestFig2OutsideToolSubset(t *testing.T) {
	res, err := sched.Explore(Figure2().New(), 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SecretFree() {
		t.Fatal("the explorer must not issue aliasing predictions")
	}
}

func TestRender(t *testing.T) {
	out, err := Figure1().Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig1", "fetch: true", "execute 2", "read", "rollback"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestGalleryReproducible: running an attack twice yields identical
// traces (determinism at the gallery level).
func TestGalleryReproducible(t *testing.T) {
	for _, a := range Gallery() {
		r1, err := a.Render()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a.Render()
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("%s: nondeterministic rendering", a.ID)
		}
	}
}
