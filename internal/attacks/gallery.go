// Package attacks reconstructs every worked figure of the paper as an
// executable artifact: a program, an attacker schedule, and the
// leakage the paper's tables show. The gallery drives the examples,
// the specasm-style rendering, and the per-figure benchmarks.
package attacks

import (
	"fmt"
	"strings"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Register names used across the figures.
const (
	RA = isa.Reg(0)
	RB = isa.Reg(1)
	RC = isa.Reg(2)
	RD = isa.Reg(3)
)

// Attack is one figure: a machine factory, the attacker schedule of
// the figure, and metadata.
type Attack struct {
	ID      string // e.g. "fig1"
	Title   string
	Variant string // Spectre variant or mechanism
	// New builds the initial machine (program + registers).
	New func() *core.Machine
	// Schedule is the figure's directive sequence.
	Schedule core.Schedule
	// WantSecretLeak is whether the schedule leaks a secret.
	WantSecretLeak bool
}

// Run executes the attack schedule on a fresh machine and returns the
// per-step records.
func (a Attack) Run() ([]core.StepRecord, error) {
	m := a.New()
	return m.RunRecorded(a.Schedule)
}

// Render produces the paper-style directive/leakage table.
func (a Attack) Render() (string, error) {
	recs, err := a.Run()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", a.ID, a.Title, a.Variant)
	fmt.Fprintf(&b, "  %-24s %s\n", "Directive", "Leakage")
	for _, r := range recs {
		obs := make([]string, len(r.Obs))
		for i, o := range r.Obs {
			obs[i] = o.String()
		}
		fmt.Fprintf(&b, "  %-24s %s\n", r.Directive, strings.Join(obs, ", "))
	}
	return b.String(), nil
}

// Gallery returns all figures in paper order.
func Gallery() []Attack {
	return []Attack{
		Figure1(), Figure2(), Figure4(), Figure5(), Figure6(), Figure7(),
		Figure8(), Figure11(), Figure12(), Figure13(),
	}
}

// Figure4 demonstrates correct and incorrect branch prediction (the
// incorrect half; the correct half is exercised by the core tests).
func Figure4() Attack {
	return Attack{
		ID: "fig4", Title: "branch misprediction rolls the buffer back", Variant: "rollback demo",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Op(RD, isa.OpMov, isa.ImmW(0))
			b.Op(RD, isa.OpMov, isa.ImmW(0))
			b.Op(RB, isa.OpMov, isa.ImmW(4))
			b.Br(isa.OpLt, []isa.Operand{isa.ImmW(2), isa.R(RA)}, 9, 12)
			b.Skip(4)
			b.Place(9, isa.Op(RC, isa.OpAdd, []isa.Operand{isa.ImmW(1), isa.R(RB)}, 10))
			b.Place(12, isa.Op(RD, isa.OpMul, []isa.Operand{isa.R(6), isa.R(7)}, 13))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(3))
			return m
		},
		Schedule: core.Schedule{
			core.Fetch(), core.Execute(1), core.Retire(),
			core.Fetch(), core.Execute(2), core.Retire(),
			core.Fetch(), core.Execute(3),
			core.FetchGuess(false), // guess 12 — incorrect (2 < 3)
			core.Fetch(),
			core.Execute(4), // rollback, jump 9
		},
		WantSecretLeak: false,
	}
}

// Figure12 is the ret2spec RSB-underflow attack of Appendix A: after
// a matched call/ret pair, an unmatched ret's speculative target is
// attacker-chosen.
func Figure12() Attack {
	return Attack{
		ID: "fig12", Title: "RSB underflow hands the return target to the attacker", Variant: "ret2spec",
		New: func() *core.Machine {
			p := isa.NewProgram(1)
			p.Add(1, isa.Call(3, 2))
			p.Add(2, isa.Ret())
			p.Add(3, isa.Ret())
			p.Add(0x99, isa.Load(RD, []isa.Operand{isa.ImmW(0x48)}, 0x9A))
			p.SetRegion(0x78, []mem.Value{mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0)})
			p.SetData(0x48, mem.Sec(0xC1))
			m := core.New(p)
			m.Regs.Write(mem.RSP, mem.Pub(0x7C))
			return m
		},
		Schedule: core.Schedule{
			core.Fetch(),           // call(3, 2): push 2
			core.Fetch(),           // ret at 3: predicted to 2, pop
			core.FetchTarget(0x99), // ret at 2: RSB empty — attacker steers
			core.Fetch(),           // the gadget at the attacker's target
			core.Execute(12),       // transient gadget: loads the secret
		},
		WantSecretLeak: false, // the planted gadget reads a secret *value*; its address stays public
	}
}

// Figure1 is the Spectre v1 running example of §2.
func Figure1() Attack {
	return Attack{
		ID: "fig1", Title: "bounds-check bypass leaks Key[1]", Variant: "Spectre v1",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(RA)}, 2, 4)
			b.Load(RB, isa.ImmW(0x40), isa.R(RA))
			b.Load(RC, isa.ImmW(0x44), isa.R(RB))
			b.Region(0x40, mem.Pub(10), mem.Pub(11), mem.Pub(12), mem.Pub(13))
			b.Region(0x44, mem.Pub(20), mem.Pub(21), mem.Pub(22), mem.Pub(23))
			b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(9))
			return m
		},
		Schedule: core.Schedule{
			core.FetchGuess(true), core.Fetch(), core.Fetch(),
			core.Execute(2), core.Execute(3), core.Execute(1),
		},
		WantSecretLeak: true,
	}
}

// Figure2 is the hypothetical aliasing-predictor attack of §3.5.
func Figure2() Attack {
	return Attack{
		ID: "fig2", Title: "aliasing predictor forwards an unresolved store", Variant: "hypothetical (§3.5)",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Op(RD, isa.OpMov, isa.ImmW(0))
			b.Store(isa.R(RB), isa.R(RA), isa.ImmW(0x40))
			for i := 0; i < 4; i++ {
				b.Op(RD, isa.OpMov, isa.ImmW(0))
			}
			b.Load(RC, isa.ImmW(0x45))
			b.Load(RC, isa.ImmW(0x48), isa.R(RC))
			b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(4))
			b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
			b.Region(0x48, mem.Pub(9), mem.Pub(10), mem.Pub(11), mem.Pub(12))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(2))
			m.Regs.Write(RB, mem.Sec(0x33))
			return m
		},
		Schedule: core.Schedule{
			core.Fetch(), core.Execute(1), core.Retire(),
			core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(),
			core.ExecuteValue(2),
			core.ExecuteFwd(7, 2),
			core.Execute(8),
			core.ExecuteAddr(2),
			core.Execute(7),
		},
		WantSecretLeak: true,
	}
}

// Figure5 is the store-hazard rollback example of §3.4.
func Figure5() Attack {
	return Attack{
		ID: "fig5", Title: "late store address causes forwarding hazard", Variant: "store hazard",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Op(RD, isa.OpMov, isa.ImmW(0))
			b.Store(isa.ImmW(12), isa.ImmW(0x43))
			b.Store(isa.ImmW(20), isa.ImmW(3), isa.R(RA))
			b.Load(RC, isa.ImmW(0x43))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(0x40))
			return m
		},
		Schedule: core.Schedule{
			core.Fetch(), core.Execute(1), core.Retire(),
			core.Fetch(), core.ExecuteAddr(2), core.Fetch(), core.Fetch(),
			core.Execute(4),
			core.ExecuteAddr(3),
		},
		WantSecretLeak: false,
	}
}

// Figure6 is the Spectre v1.1 store-to-load forwarding attack.
func Figure6() Attack {
	return Attack{
		ID: "fig6", Title: "speculative store forwards a secret", Variant: "Spectre v1.1",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(RA)}, 2, 9)
			b.Store(isa.R(RB), isa.ImmW(0x40), isa.R(RA))
			for i := 0; i < 4; i++ {
				b.Op(RD, isa.OpMov, isa.ImmW(0))
			}
			b.Load(RC, isa.ImmW(0x45))
			b.Load(RC, isa.ImmW(0x48), isa.R(RC))
			b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(4))
			b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
			b.Region(0x48, mem.Pub(9), mem.Pub(10), mem.Pub(11), mem.Pub(12))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(5))
			m.Regs.Write(RB, mem.Sec(0x21))
			return m
		},
		Schedule: core.Schedule{
			core.FetchGuess(true),
			core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(),
			core.ExecuteAddr(2), core.ExecuteValue(2),
			core.Execute(7), core.Execute(8),
		},
		WantSecretLeak: true,
	}
}

// Figure7 is the Spectre v4 stale-load attack.
func Figure7() Attack {
	return Attack{
		ID: "fig7", Title: "store address resolves too late; stale secret loads", Variant: "Spectre v4",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Op(RD, isa.OpMov, isa.ImmW(0))
			b.Store(isa.ImmW(0), isa.ImmW(3), isa.R(RA))
			b.Load(RC, isa.ImmW(0x43))
			b.Load(RC, isa.ImmW(0x44), isa.R(RC))
			b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(0x5A))
			b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(0x40))
			return m
		},
		Schedule: core.Schedule{
			core.Fetch(), core.Execute(1), core.Retire(),
			core.Fetch(), core.Fetch(), core.Fetch(),
			core.Execute(3), core.Execute(4),
			core.ExecuteAddr(2),
		},
		WantSecretLeak: true,
	}
}

// Figure8 is the fence mitigation for Figure 1.
func Figure8() Attack {
	return Attack{
		ID: "fig8", Title: "fence blocks the v1 loads until the branch resolves", Variant: "mitigation",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(RA)}, 2, 5)
			b.Fence()
			b.Load(RB, isa.ImmW(0x40), isa.R(RA))
			b.Load(RC, isa.ImmW(0x44), isa.R(RB))
			b.Region(0x40, mem.Pub(10), mem.Pub(11), mem.Pub(12), mem.Pub(13))
			b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(9))
			return m
		},
		Schedule: core.Schedule{
			core.FetchGuess(true), core.Fetch(), core.Fetch(), core.Fetch(),
			core.Execute(1), // loads cannot run: the fence guards them
		},
		WantSecretLeak: false,
	}
}

// Figure11 is the Spectre v2 indirect-jump attack of Appendix A.
func Figure11() Attack {
	return Attack{
		ID: "fig11", Title: "mistrained indirect branch lands past the fence", Variant: "Spectre v2",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Load(RC, isa.ImmW(0x48), isa.R(RA))
			b.Fence()
			b.Jmpi(isa.ImmW(12), isa.R(RB))
			b.Skip(12)
			b.Place(16, isa.Fence(17))
			b.Place(17, isa.Load(RD, []isa.Operand{isa.ImmW(0x44), isa.R(RC)}, 18))
			b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
			b.Region(0x48, mem.Sec(0xB0), mem.Sec(0xB1), mem.Sec(0xB2), mem.Sec(0xB3))
			m := core.New(b.MustBuild())
			m.Regs.Write(RA, mem.Pub(1))
			m.Regs.Write(RB, mem.Pub(8))
			return m
		},
		Schedule: core.Schedule{
			core.Fetch(), core.Fetch(), core.Execute(1),
			core.FetchTarget(17), core.Fetch(),
			core.Retire(), core.Retire(),
			core.Execute(4), core.Execute(3),
		},
		WantSecretLeak: true,
	}
}

// Figure13 is the retpoline construction defeating Spectre v2.
func Figure13() Attack {
	return Attack{
		ID: "fig13", Title: "retpoline: speculation parks on a fence self-loop", Variant: "mitigation",
		New: func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Op(RD, isa.OpMov, isa.ImmW(0))
			b.Op(RD, isa.OpMov, isa.ImmW(0))
			b.Call(5)
			b.Place(4, isa.Fence(4))
			b.Skip(1)
			b.Op(RD, isa.OpAdd, isa.ImmW(12), isa.R(RB))
			b.Store(isa.R(RD), isa.R(mem.RSP))
			b.Ret()
			b.Region(0x78, mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0))
			m := core.New(b.MustBuild())
			m.Regs.Write(RB, mem.Pub(8))
			m.Regs.Write(mem.RSP, mem.Pub(0x7C))
			return m
		},
		Schedule: core.Schedule{
			core.Fetch(), core.Execute(1), core.Retire(),
			core.Fetch(), core.Execute(2), core.Retire(),
			core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(), core.Fetch(),
			core.Execute(4), core.Execute(6),
			core.ExecuteValue(7), core.ExecuteAddr(7),
			core.Execute(9), core.Execute(10), core.Execute(11),
		},
		WantSecretLeak: false,
	}
}
