package repair

import (
	"testing"

	"pitchfork/internal/attacks"
	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
)

// optionsFor builds engine options that verify with the concrete
// detector at the hazard-aware bound, seeding the machine's registers
// from regs.
func optionsFor(regs map[isa.Reg]mem.Value) Options {
	mk := func(p *isa.Program) *core.Machine {
		m := core.New(p)
		for r, v := range regs {
			m.Regs.Write(r, v)
		}
		return m
	}
	return Options{
		Verify: func(p *isa.Program) (pitchfork.Report, error) {
			// Fingerprint dedup keeps the state count of multi-instruction
			// rewrites (retpolines, masks) inside the default budget;
			// findings are identical with and without it.
			return pitchfork.Analyze(mk(p), pitchfork.Options{Bound: 20, ForwardHazards: true, DedupEntries: 1 << 20})
		},
		Machine: mk,
	}
}

// fromAttack extracts the program and register seeds of a gallery
// figure so the engine can rebuild machines for rewritten programs.
func fromAttack(a attacks.Attack) (*isa.Program, map[isa.Reg]mem.Value) {
	m := a.New()
	regs := make(map[isa.Reg]mem.Value)
	for _, r := range m.Regs.Registers() {
		regs[r] = m.Regs.Read(r)
	}
	return m.Prog, regs
}

func mustRepair(t *testing.T, a attacks.Attack) *Result {
	t.Helper()
	prog, regs := fromAttack(a)
	res, err := Repair(prog, optionsFor(regs))
	if err != nil {
		t.Fatalf("Repair(%s): %v", a.ID, err)
	}
	return res
}

// TestRepairFigure1 repairs the Spectre v1 running example and expects
// the engine to synthesize exactly the Figure 8 patch: one fence at
// the head of the mispredicted arm.
func TestRepairFigure1(t *testing.T) {
	res := mustRepair(t, attacks.Figure1())
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("outcome = %s, want repaired", res.Outcome)
	}
	if !res.After.SecretFree() {
		t.Fatalf("repaired program still flagged: %s", res.After.Summary())
	}
	if len(res.Sites) != 1 || res.Sites[0] != 2 {
		t.Fatalf("sites = %v, want the Figure 8 fence before point 2", res.Sites)
	}
	in, ok := res.Prog.At(res.Fences[0])
	if !ok || in.Kind != isa.KFence {
		t.Fatalf("no fence at reported point %d", res.Fences[0])
	}
	if res.Before.SecretFree() {
		t.Fatal("baseline report should carry the violation")
	}
}

// TestRepairFigure7 repairs the Spectre v4 stale-load gadget: the
// guarding source is the late store, so the fence lands right after
// it.
func TestRepairFigure7(t *testing.T) {
	res := mustRepair(t, attacks.Figure7())
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("outcome = %s, want repaired", res.Outcome)
	}
	if len(res.Sites) != 1 || res.Sites[0] != 3 {
		t.Fatalf("sites = %v, want a single fence between the store (2) and the load (3)", res.Sites)
	}
	// The source mapping must have identified the store, not fallen
	// back to fencing the leak.
	if v := res.Before.Violations[0]; len(v.Sources) == 0 {
		t.Fatal("baseline violation carries no speculation sources")
	}
}

// TestRepairFigure6 repairs the Spectre v1.1 speculative
// store-forwarding gadget (guard: the bounds-check branch).
func TestRepairFigure6(t *testing.T) {
	res := mustRepair(t, attacks.Figure6())
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("outcome = %s, want repaired", res.Outcome)
	}
	if !res.After.SecretFree() {
		t.Fatalf("repaired program still flagged: %s", res.After.Summary())
	}
}

// TestRepairCleanProgram leaves an already-safe program untouched.
func TestRepairCleanProgram(t *testing.T) {
	res := mustRepair(t, attacks.Figure8())
	if res.Outcome != OutcomeClean {
		t.Fatalf("outcome = %s, want clean", res.Outcome)
	}
	if len(res.Sites) != 0 || res.Iterations != 0 {
		t.Fatalf("clean program grew sites %v over %d iterations", res.Sites, res.Iterations)
	}
}

// TestRepairSequentialLeak refuses to "repair" a program that leaks
// with no speculation at all: fences only constrain scheduling.
func TestRepairSequentialLeak(t *testing.T) {
	ra, rb := isa.Reg(0), isa.Reg(1)
	b := isa.NewBuilder(1)
	b.Load(rb, isa.ImmW(0x40), isa.R(ra)) // address depends on the secret in ra
	prog := b.MustBuild()
	res, err := Repair(prog, optionsFor(map[isa.Reg]mem.Value{ra: mem.Sec(2)}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeSequentialLeak {
		t.Fatalf("outcome = %s, want sequential-leak", res.Outcome)
	}
	if res.Prog.Len() != prog.Len() {
		t.Fatal("unrepairable program was rewritten")
	}
}

// TestMinimizedSetIs1Minimal checks the greedy-deletion guarantee on a
// program with two independent bounds-check-bypass gadgets in
// sequence: one fence per mispredicted arm is necessary and
// sufficient, the off-arm fences the source rule also proposed are
// deleted, and removing either survivor reintroduces a violation.
func TestMinimizedSetIs1Minimal(t *testing.T) {
	ra, rb, rc := isa.Reg(0), isa.Reg(1), isa.Reg(2)
	bounds := []isa.Operand{isa.ImmW(4), isa.R(ra)}
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, bounds, 2, 4) // 1: first bounds check, arch. not taken
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	b.Br(isa.OpGt, bounds, 5, 7) // 4: second, independent bounds check
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	b.Region(0x40, mem.Pub(10), mem.Pub(11), mem.Pub(12), mem.Pub(13))
	b.Region(0x44, mem.Pub(20), mem.Pub(21), mem.Pub(22), mem.Pub(23))
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	prog := b.MustBuild()
	opts := optionsFor(map[isa.Reg]mem.Value{ra: mem.Pub(9)}) // out of bounds
	res, err := Repair(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("outcome = %s, want repaired", res.Outcome)
	}
	if len(res.Sites) != 2 || res.Sites[0] != 2 || res.Sites[1] != 5 {
		t.Fatalf("minimized sites = %v, want one fence per leaking arm [2 5]", res.Sites)
	}
	if res.PreMinimizeFences <= len(res.Sites) {
		t.Fatalf("minimization removed nothing: %d → %d", res.PreMinimizeFences, len(res.Sites))
	}
	assert1Minimal(t, prog, res, opts)
}

// assert1Minimal verifies that removing any single fence from the
// minimized set reintroduces a violation.
func assert1Minimal(t *testing.T, orig *isa.Program, res *Result, opts Options) {
	t.Helper()
	if len(res.Sites) == 0 {
		t.Fatal("repaired with an empty fence set")
	}
	for _, s := range res.Sites {
		trial := without(res.Sites, s)
		rp, _ := applySites(orig, trial)
		rep, err := opts.Verify(rp)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SecretFree() {
			t.Errorf("fence set %v is not minimal: removing site %d stays clean", res.Sites, s)
		}
	}
}

// TestRepairBehaviourCertificate: the repaired program's sequential
// trace must match the original's modulo the fence shift. Figure 1's
// repair exercises the jump-target remapping (the branch's false arm
// moves).
func TestRepairBehaviourCertificate(t *testing.T) {
	prog, regs := fromAttack(attacks.Figure1())
	opts := optionsFor(regs)
	res, err := Repair(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := runAttributed(func() *core.Machine { return opts.Machine(prog) }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := behaviourPreserved(base, res, opts); err != nil {
		t.Fatalf("behaviour certificate failed: %v", err)
	}
	// Sabotage the baseline: a mismatching jump target must be caught.
	for i := range base.obs {
		if base.obs[i].o.Kind == core.OJump {
			base.obs[i].o.Target += 7
		}
	}
	if err := behaviourPreserved(base, res, opts); err == nil {
		t.Fatal("certificate accepted a divergent baseline")
	}
}

// TestMapAddrTargetSemantics pins the two address maps: instruction
// locations shift past sites at or below them; control targets flow
// through a fence placed exactly at the target.
func TestMapAddrTargetSemantics(t *testing.T) {
	res := &Result{Sites: []isa.Addr{2, 5}}
	cases := []struct {
		in, addr, target isa.Addr
	}{
		{1, 1, 1},
		{2, 3, 2}, // site itself: instruction moved, target flows through
		{3, 4, 4},
		{5, 7, 6},
		{9, 11, 11},
	}
	for _, c := range cases {
		if got := res.MapAddr(c.in); got != c.addr {
			t.Errorf("MapAddr(%d) = %d, want %d", c.in, got, c.addr)
		}
		if got := res.MapTarget(c.in); got != c.target {
			t.Errorf("MapTarget(%d) = %d, want %d", c.in, got, c.target)
		}
	}
}
