package repair

import (
	"testing"

	"pitchfork/internal/attacks"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// maskableGadget builds a Spectre v1 bounds-check-bypass whose branch
// arms are maskable: each arm has the branch as its sole static
// predecessor (unlike Figure 1, whose false arm is also the fallthrough
// of the leak chain). Architecturally ra is out of bounds, so the
// branch is not taken and neither load runs.
//
//	1: br (4 > ra) → 2, 5
//	2: rb = load [0x40 + ra]   // bypassed bounds check
//	3: rc = load [0x44 + rb]   // the cache transmitter
//	4: rd = 0                  // → 6 (halt)
//	5: rd = 1                  // → 6 (halt)
func maskableGadget() (*isa.Program, map[isa.Reg]mem.Value) {
	ra, rb, rc, rd := isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3)
	p := isa.NewProgram(1)
	p.Add(1, isa.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 5))
	p.Add(2, isa.Load(rb, []isa.Operand{isa.ImmW(0x40), isa.R(ra)}, 3))
	p.Add(3, isa.Load(rc, []isa.Operand{isa.ImmW(0x44), isa.R(rb)}, 4))
	p.Add(4, isa.Op(rd, isa.OpMov, []isa.Operand{isa.ImmW(0)}, 6))
	p.Add(5, isa.Op(rd, isa.OpMov, []isa.Operand{isa.ImmW(1)}, 6))
	p.SetRegion(0x40, []mem.Value{mem.Pub(10), mem.Pub(11), mem.Pub(12), mem.Pub(13)})
	p.SetRegion(0x44, []mem.Value{mem.Pub(20), mem.Pub(21), mem.Pub(22), mem.Pub(23)})
	p.SetRegion(0x48, []mem.Value{mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3)})
	return p, map[isa.Reg]mem.Value{ra: mem.Pub(9)} // out of bounds
}

// TestRepairMaskStrategy hardens the maskable gadget with the SLH-style
// predicate instead of a fence: the repaired program still speculates
// down the wrong arm, but the masked loads read address zero there.
func TestRepairMaskStrategy(t *testing.T) {
	prog, regs := maskableGadget()
	opts := optionsFor(regs)
	opts.Strategy = StrategyMask
	res, err := Repair(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("outcome = %s, want repaired", res.Outcome)
	}
	if res.Strategy != StrategyMask {
		t.Fatalf("strategy = %q, want mask", res.Strategy)
	}
	if !res.After.SecretFree() {
		t.Fatalf("masked program still flagged: %s", res.After.Summary())
	}
	if len(res.Sites) != 1 || res.Sites[0] != 1 {
		t.Fatalf("sites = %v, want the bounds check [1]", res.Sites)
	}
	// The predicate register must actually appear: entry init plus two
	// arm updates select on rmsk.
	selects := 0
	for _, pc := range res.Prog.Points() {
		if in, _ := res.Prog.At(pc); in.Kind == isa.KOp && in.Op == isa.OpSelect {
			selects++
		}
	}
	if selects != 2 {
		t.Fatalf("rewritten program has %d predicate selects, want one per arm", selects)
	}
	// Masking is on the sequential path, so it must cost more than the
	// baseline — the price the portfolio weighs against a fence.
	if res.SeqInstrs <= res.SeqInstrsBefore {
		t.Fatalf("sequential cost %d not above baseline %d", res.SeqInstrs, res.SeqInstrsBefore)
	}
	// 1-minimality for the mask: a plan without the predicate site masks
	// every load with a never-updated all-ones rmsk and stays leaky.
	plan, err := maskMitigation{}.Plan(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := plan.Apply(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := opts.Verify(rw.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("mask without its predicate site still verifies clean; site [1] is not load-bearing")
	}
}

// retSwapGadget builds a return-address overwrite: call@1 pushes the
// address of a leak gadget as f's return point, f calls g, and g
// repairs the stack slot — so architecturally f returns past the
// gadget, but the RSB still holds the stale gadget entry and the ret
// mis-speculates into it.
//
//	 1: call f (ret → 2)        // stale RSB entry: the gadget
//	 2: rb = load [0x48 + ra]   // gadget: secret read…
//	 3: rc = load [0x44 + rb]   // …and transmit, then → 11 (halt)
//	 4: f: call g (ret → 5)
//	 5: rd = 0
//	 6: ret                     // RSB top is the stale gadget address
//	 8: g: rd = load [rsp]      // own return point (f's continuation)…
//	 9: store rd → [rsp + 1]    // …overwrites the gadget slot
//	10: ret
//
// Stack: rsp starts at 0x7C, pushes grow downward through 0x7B, 0x7A.
// The second time point 6 runs the RSB is empty and [rsp] reads the
// seeded zero, so the program halts at the (empty) point 0.
func retSwapGadget() (*isa.Program, map[isa.Reg]mem.Value) {
	ra, rb, rc, rd := isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3)
	p := isa.NewProgram(1)
	p.Add(1, isa.Call(4, 2))
	p.Add(2, isa.Load(rb, []isa.Operand{isa.ImmW(0x48), isa.R(ra)}, 3))
	p.Add(3, isa.Load(rc, []isa.Operand{isa.ImmW(0x44), isa.R(rb)}, 11))
	p.Add(4, isa.Call(8, 5))
	p.Add(5, isa.Op(rd, isa.OpMov, []isa.Operand{isa.ImmW(0)}, 6))
	p.Add(6, isa.Ret())
	p.Add(8, isa.Load(rd, []isa.Operand{isa.R(mem.RSP)}, 9))
	p.Add(9, isa.Store(isa.R(rd), []isa.Operand{isa.R(mem.RSP), isa.ImmW(1)}, 10))
	p.Add(10, isa.Ret())
	p.SetRegion(0x44, []mem.Value{mem.Pub(20), mem.Pub(21), mem.Pub(22), mem.Pub(23)})
	p.SetRegion(0x48, []mem.Value{mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3)})
	p.SetRegion(0x7A, []mem.Value{mem.Pub(0), mem.Pub(0), mem.Pub(0)})
	return p, map[isa.Reg]mem.Value{ra: mem.Pub(1), mem.RSP: mem.Pub(0x7C)}
}

// TestRepairRetStrategy turns the flagged ret into a retpoline and
// expects the stale-RSB path to the gadget to be gone: the trampoline's
// inner ret always predicts its own freshly pushed fence.
func TestRepairRetStrategy(t *testing.T) {
	prog, regs := retSwapGadget()
	opts := optionsFor(regs)
	opts.Strategy = StrategyRet
	res, err := Repair(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("outcome = %s, want repaired", res.Outcome)
	}
	if res.Strategy != StrategyRet {
		t.Fatalf("strategy = %q, want ret", res.Strategy)
	}
	if !res.After.SecretFree() {
		t.Fatalf("retpolined program still flagged: %s", res.After.Summary())
	}
	// Minimization keeps one trampoline, and it is g's ret (10), not the
	// mis-speculating ret itself: either singleton certifies (a
	// trampoline at 10 keeps the stale gadget entry off every later RSB
	// top just as well as rewriting 6 directly), but site 6 sits inside
	// the 5→6 loop the sequential run executes twice, so the cost-
	// ordered minimizer drops it first and the cheaper set survives.
	if len(res.Sites) != 1 || res.Sites[0] != 10 {
		t.Fatalf("sites = %v, want the cheaper singleton [10]", res.Sites)
	}
	// The committed ret itself is gone — its point now fetches the
	// trampoline.
	if in, ok := res.Prog.At(res.MapTarget(10)); !ok || in.Kind == isa.KRet {
		t.Fatalf("point %d still holds a raw ret", res.MapTarget(10))
	}
	// The trampoline runs on the architectural path: cost goes up.
	if res.SeqInstrs <= res.SeqInstrsBefore {
		t.Fatalf("sequential cost %d not above baseline %d", res.SeqInstrs, res.SeqInstrsBefore)
	}
	if res.Before.SecretFree() {
		t.Fatal("baseline report should carry the stale-RSB violation")
	}
}

// TestRepairPortfolioPicksCheapest runs the full portfolio on the
// maskable gadget: both the fence and the mask secure it, but the fence
// sits on the mis-speculated arm — off the sequential path — while the
// mask pays its predicate updates on every run. Auto must pick the
// fence and report all three attempts.
func TestRepairPortfolioPicksCheapest(t *testing.T) {
	prog, regs := maskableGadget()
	opts := optionsFor(regs)
	opts.Strategy = StrategyAuto
	res, err := Repair(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("outcome = %s, want repaired", res.Outcome)
	}
	if len(res.PerStrategy) != 3 {
		t.Fatalf("portfolio ran %d strategies, want 3", len(res.PerStrategy))
	}
	byName := make(map[string]*Result, 3)
	for _, a := range res.PerStrategy {
		byName[a.Strategy] = a
	}
	fence, mask, ret := byName[StrategyFence], byName[StrategyMask], byName[StrategyRet]
	if fence == nil || mask == nil || ret == nil {
		t.Fatalf("missing attempts: %v", res.PerStrategy)
	}
	if fence.Outcome != OutcomeRepaired || mask.Outcome != OutcomeRepaired {
		t.Fatalf("fence=%s mask=%s, want both repaired", fence.Outcome, mask.Outcome)
	}
	if ret.Outcome == OutcomeRepaired {
		t.Fatal("ret strategy secured a branch gadget; it must only guard rets")
	}
	if res.Strategy != StrategyFence {
		t.Fatalf("chose %q, want the fence (cheapest certified)", res.Strategy)
	}
	if res.SeqInstrs > mask.SeqInstrs {
		t.Fatalf("chosen cost %d above the mask's %d", res.SeqInstrs, mask.SeqInstrs)
	}
	// The fence lands on the mis-speculated arm, so the repaired
	// sequential schedule is exactly the baseline's.
	if res.SeqInstrs != res.SeqInstrsBefore {
		t.Fatalf("fence repair changed sequential cost: %d → %d", res.SeqInstrsBefore, res.SeqInstrs)
	}
}

// TestRepairPortfolioFenceOnly checks auto on Figure 1, where the other
// strategies bow out (arms share flow into the leak chain, no rets):
// the portfolio degrades to exactly the fence-only result.
func TestRepairPortfolioFenceOnly(t *testing.T) {
	prog, regs := fromAttack(attacks.Figure1())
	opts := optionsFor(regs)
	opts.Strategy = StrategyAuto
	res, err := Repair(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRepaired || res.Strategy != StrategyFence {
		t.Fatalf("outcome = %s via %q, want repaired via fence", res.Outcome, res.Strategy)
	}
	if len(res.Sites) != 1 || res.Sites[0] != 2 {
		t.Fatalf("sites = %v, want the Figure 8 fence [2]", res.Sites)
	}
	if len(res.PerStrategy) != 3 {
		t.Fatalf("portfolio ran %d strategies, want 3", len(res.PerStrategy))
	}
	for _, a := range res.PerStrategy[1:] {
		if a.Outcome == OutcomeRepaired {
			t.Fatalf("strategy %q unexpectedly repaired Figure 1", a.Strategy)
		}
	}
}
