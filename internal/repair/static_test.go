package repair

import (
	"reflect"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

func TestComputedJumpHazard(t *testing.T) {
	// 1: op, 2: op, 3: jmpi 5 (single immediate), 4: op, 5: op
	b := isa.NewBuilder(1)
	b.Op(isa.Reg(0), isa.OpAdd, isa.ImmW(0))
	b.Op(isa.Reg(0), isa.OpAdd, isa.ImmW(0))
	b.Jmpi(isa.ImmW(5))
	b.Op(isa.Reg(0), isa.OpAdd, isa.ImmW(0))
	b.Op(isa.Reg(0), isa.OpAdd, isa.ImmW(0))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if _, hazard := computedJumpHazard(p, nil); hazard {
		t.Error("empty site set cannot shift anything")
	}
	// A fence at or above the target leaves the target's address alone.
	if _, hazard := computedJumpHazard(p, []isa.Addr{5}); hazard {
		t.Error("site at the jump target does not shift it")
	}
	if _, hazard := computedJumpHazard(p, []isa.Addr{6}); hazard {
		t.Error("site above the jump target does not shift it")
	}
	// A fence below the target shifts it: the immediate now names the
	// wrong instruction.
	pc, hazard := computedJumpHazard(p, []isa.Addr{2})
	if !hazard || pc != 3 {
		t.Errorf("site below the target must be a hazard at the jmpi: got (%d, %v)", pc, hazard)
	}

	// A register-target jmpi is unanalyzable: any insertion is a hazard.
	b2 := isa.NewBuilder(1)
	b2.Jmpi(isa.R(isa.Reg(0)))
	b2.Op(isa.Reg(0), isa.OpAdd, isa.ImmW(0))
	p2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pc, hazard := computedJumpHazard(p2, []isa.Addr{2}); !hazard || pc != 1 {
		t.Errorf("register-target jmpi must flag any site: got (%d, %v)", pc, hazard)
	}
	if _, hazard := computedJumpHazard(p2, nil); hazard {
		t.Error("register-target jmpi with no sites is still not a hazard")
	}
}

// TestRepairRefusesComputedJumpRewrite runs the full engine on a v1
// gadget that sits below a computed jump's immediate target: the
// synthesized fence would shift the target, so the engine must refuse
// the rewrite rather than emit a program with silently retargeted
// control flow.
func TestRepairRefusesComputedJumpRewrite(t *testing.T) {
	// 1: br (r0 < 1) → 2 / 4   bounds check; r0 = 1 is out of bounds
	// 2: load r1 = [100 + r0]  transiently reads the secret at 101
	// 3: load r2 = [200 + r1]  leaks it through the address
	// 4: jmpi 6                computed jump over the landing pad
	// 5: op                    (dead)
	// 6: op                    join point
	b := isa.NewBuilder(1)
	b.Data(100, mem.Pub(0))
	b.Data(101, mem.Sec(7))
	b.Data(200, mem.Pub(0))
	b.Br(isa.OpLt, []isa.Operand{isa.R(isa.Reg(0)), isa.ImmW(1)}, 2, 4)
	b.Load(isa.Reg(1), isa.ImmW(100), isa.R(isa.Reg(0)))
	b.Load(isa.Reg(2), isa.ImmW(200), isa.R(isa.Reg(1)))
	b.Jmpi(isa.ImmW(6))
	b.Op(isa.Reg(3), isa.OpAdd, isa.ImmW(0))
	b.Op(isa.Reg(3), isa.OpAdd, isa.ImmW(0))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	res, err := Repair(p, optionsFor(map[isa.Reg]mem.Value{isa.Reg(0): mem.Pub(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.SecretFree() {
		t.Fatal("baseline must carry the v1 violation for the test to mean anything")
	}
	if res.Outcome != OutcomeUnsafeRewrite {
		t.Fatalf("outcome = %s, want unsafe-rewrite", res.Outcome)
	}
	if res.UnsafeJump != 4 {
		t.Errorf("UnsafeJump = %d, want the jmpi at 4", res.UnsafeJump)
	}
	if res.Prog != p {
		t.Error("a refused rewrite must hand back the original program")
	}
	if res.Outcome.Secured() {
		t.Error("unsafe-rewrite must not read as secured")
	}
}

type fakeHints map[isa.Addr]bool

func (f fakeHints) ForkFree(pp isa.Addr) bool { return f[pp] }

func TestRankSites(t *testing.T) {
	// Fork-free (statically boring) sites sink to the back; each class
	// stays in ascending address order.
	sites := []isa.Addr{9, 4, 7, 2, 5}
	h := fakeHints{4: true, 5: true} // 4 and 5 are provably pointless
	rankSites(sites, h)
	want := []isa.Addr{2, 7, 9, 4, 5}
	if !reflect.DeepEqual(sites, want) {
		t.Fatalf("ranked order = %v, want %v", sites, want)
	}
}
