package repair

import (
	"fmt"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/sched"
)

// maskMitigation is speculative load hardening in the paper's machine:
// instead of stalling speculation, it makes mis-speculated loads
// harmless by masking their addresses with a speculation predicate.
//
// Register convention (documented for program authors): the pass owns
// two scratch registers. mem.RMSK holds the speculation predicate —
// initialized to all-ones at the program entry and updated at every
// protected branch arm with
//
//	rtmp = op(brOp, brArgs)            // recompute the branch condition
//	rmsk = select(rtmp, rmsk, 0)       // true arm (false arm swaps the cases)
//
// so on an architectural path rmsk stays all-ones while on a
// mis-speculated arm it becomes zero as soon as the select resolves.
// mem.RTMP carries the per-site transients (the recomputed condition
// and the masked address); every read of rtmp is adjacent to its
// write, so the in-order fetch of the reorder buffer renames it
// correctly even with other speculation in flight. Each maskable load
// is rewritten to
//
//	rtmp = add(addrArgs)               // the AddrSum address
//	rtmp = and(rtmp, rmsk)             // zero on mis-speculated paths
//	dst  = load([rtmp])
//
// The operand chain (load needs rtmp, and needs rmsk, select needs the
// recomputed condition) forces the masked address to resolve after the
// predicate, so no attacker schedule can slip the load in before the
// mask: a wrong-path load reads address 0 — unmapped, hence the
// label-lowering Pub(0) — and downstream leak addresses computed from
// it stay public. The pass refuses programs that use rmsk or read
// rtmp, and only masks loads with at most two address operands (their
// address is the operand sum under every machine address mode; x86-
// style base+index*scale loads are left to other strategies).
//
// A branch is protectable only when each arm is entered from that
// branch alone (sole static predecessor, not the program entry, arms
// distinct): the predicate update is correct exactly when reaching the
// arm implies the branch was just taken. Everything else — whether the
// masking actually removes the leak — is settled by the engine's
// explorer re-verification and behaviour certificate.
type maskMitigation struct{}

func (maskMitigation) Name() string { return StrategyMask }

func (maskMitigation) CandidateSites(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) []isa.Addr {
	var sites []isa.Addr
	for _, s := range v.Sources {
		if s.Kind != sched.SrcBranch {
			continue // masking guards branch speculation only
		}
		opc, ok := inv[s.PC]
		if !ok {
			continue
		}
		if in, ok := orig.At(opc); ok && in.Kind == isa.KBr && maskableArms(orig, in) {
			sites = append(sites, opc)
		}
	}
	return sites
}

func (maskMitigation) FallbackSite(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) (isa.Addr, bool) {
	return 0, false // no escalation: a mask protects sources, not sinks
}

func (maskMitigation) Plan(orig *isa.Program, sites []isa.Addr) (*isa.Plan, error) {
	if readsReg(orig, mem.RMSK) || writesReg(orig, mem.RMSK) {
		return nil, fmt.Errorf("repair: mask: program uses the predicate register %s", isa.RegName(mem.RMSK))
	}
	if readsReg(orig, mem.RTMP) {
		return nil, fmt.Errorf("repair: mask: program reads the scratch register %s", isa.RegName(mem.RTMP))
	}
	var pl isa.Plan
	// Entry: rmsk = not(0) — all-ones before any branch resolves.
	pl.Add(isa.Patch{At: orig.Entry, Insert: []isa.Instr{
		isa.Op(mem.RMSK, isa.OpNot, []isa.Operand{isa.ImmW(0)}, orig.Entry),
	}})
	for _, b := range sites {
		in, ok := orig.At(b)
		if !ok || in.Kind != isa.KBr {
			continue
		}
		cond := func() []isa.Operand {
			args := make([]isa.Operand, len(in.Args))
			copy(args, in.Args)
			return args
		}
		pl.Add(isa.Patch{At: in.True, Insert: []isa.Instr{
			isa.Op(mem.RTMP, in.Op, cond(), in.True),
			isa.Op(mem.RMSK, isa.OpSelect, []isa.Operand{isa.R(mem.RTMP), isa.R(mem.RMSK), isa.ImmW(0)}, in.True),
		}})
		pl.Add(isa.Patch{At: in.False, Insert: []isa.Instr{
			isa.Op(mem.RTMP, in.Op, cond(), in.False),
			isa.Op(mem.RMSK, isa.OpSelect, []isa.Operand{isa.R(mem.RTMP), isa.ImmW(0), isa.R(mem.RMSK)}, in.False),
		}})
	}
	// Mask every computed-address load. Architecturally and(addr,
	// all-ones) is the identity, so unflagged paths are unaffected; the
	// load patches merge AFTER any predicate update at the same point,
	// keeping the update-then-mask order within a shared patch.
	for _, pc := range orig.Points() {
		in, _ := orig.At(pc)
		if in.Kind != isa.KLoad || len(in.Args) > 2 || !hasRegOperand(in.Args) {
			continue
		}
		addr := make([]isa.Operand, len(in.Args))
		copy(addr, in.Args)
		repl := isa.Load(in.Dst, []isa.Operand{isa.R(mem.RTMP)}, in.Next)
		pl.Add(isa.Patch{At: pc, Insert: []isa.Instr{
			isa.Op(mem.RTMP, isa.OpAdd, addr, pc),
			isa.Op(mem.RTMP, isa.OpAnd, []isa.Operand{isa.R(mem.RTMP), isa.R(mem.RMSK)}, pc),
		}, Replace: &repl})
	}
	return &pl, nil
}

func hasRegOperand(args []isa.Operand) bool {
	for _, a := range args {
		if a.IsReg {
			return true
		}
	}
	return false
}

// maskableArms reports whether the predicate updates can be placed on
// both arms of br: arms distinct, neither the entry, and each entered
// from this branch alone under the static flow over-approximation
// (returns dispatch to any call return point or data word naming an
// instruction; a register-computed jmpi makes the flow unknowable and
// disqualifies everything).
func maskableArms(p *isa.Program, br isa.Instr) bool {
	if br.True == br.False || br.True == p.Entry || br.False == p.Entry {
		return false
	}
	preds, ok := staticPreds(p)
	if !ok {
		return false
	}
	return preds[br.True] == 1 && preds[br.False] == 1
}

// staticPreds counts static control-flow predecessors per program
// point. ok is false when the flow cannot be over-approximated (a
// register-computed jmpi).
func staticPreds(p *isa.Program) (map[isa.Addr]int, bool) {
	counts := make(map[isa.Addr]int, len(p.Instrs))
	var buf [4]isa.Addr
	var rets []isa.Addr // computed lazily: shared by every KRet
	for _, pc := range p.Points() {
		in, _ := p.At(pc)
		succs, ok := in.StaticSuccessors(buf[:0])
		if !ok {
			if in.Kind != isa.KRet {
				return nil, false
			}
			if rets == nil {
				rets = returnTargets(p)
			}
			for _, t := range rets {
				counts[t]++
			}
			continue
		}
		for _, t := range succs {
			counts[t]++
		}
	}
	return counts, true
}
