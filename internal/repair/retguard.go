package repair

import (
	"fmt"
	"sort"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/sched"
)

// retMitigation protects return speculation with the paper's Figure 13
// construction: a ret's transient target is an RSB prediction that can
// be stale — pushed for a different return — so instead of trusting it
// the pass rewrites every flagged ret into a retpoline that parks
// mis-speculation on a fence:
//
//	r:  rtmp = load [rsp]      // pop the architectural return target…
//	    rsp  = pred(rsp)       // …exactly as the ret expansion would
//	    fence                  // serialize: rtmp settles before any return
//	    call STORE, ret→FENCE  // push FENCE onto the RSB and the stack
//	    …
//	FENCE: fence               // ← the only point ret speculation reaches
//	       (falls through to a halt slot)
//	STORE: store rtmp → [rsp]  // overwrite the pushed FENCE with the target
//	       ret                 // RSB predicts FENCE; resolves to the target
//
// Two mechanisms compose. First, the trampoline's inner ret always
// finds the call's own RSB entry on top — each trampoline pushes
// before it pops, so stale entries left by the original program are
// never the prediction — and that entry names the fence: the
// speculative window fetches the fence and parks, with nowhere to go
// and nothing younger executable. Second, the serializing fence keeps
// the inner ret from resolving against a stale stack read: the return
// target it redirects to is the retired-memory value, after every
// older store has settled. A plain fence before a ret gives only the
// second guarantee — the ret itself still fetches from a stale RSB
// top, and the fetched gadget executes under the unresolved return —
// which is why flagged rets get a trampoline rather than a fence. One
// trampoline tail (fence + store/ret) is shared by every rewritten
// ret; it is placed past the program's last point, leaving one empty
// slot so programs that halt by falling off the end keep halting
// there.
//
// The pass claims mem.RTMP architecturally (the ret expansion only
// ever writes it transiently), so it refuses programs that read rtmp.
// The trampoline adds stack traffic the original ret did not have —
// the behaviour certificate admits it because every added observation
// is public and attributed to plan-authored instructions.
type retMitigation struct{}

func (retMitigation) Name() string { return StrategyRet }

func (retMitigation) CandidateSites(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) []isa.Addr {
	var sites []isa.Addr
	for _, s := range v.Sources {
		if s.Kind != sched.SrcRet {
			continue
		}
		opc, ok := inv[s.PC]
		if !ok {
			continue
		}
		if in, ok := orig.At(opc); ok && in.Kind == isa.KRet {
			sites = append(sites, opc)
		}
	}
	return sites
}

func (retMitigation) FallbackSite(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) (isa.Addr, bool) {
	return 0, false // a retpoline guards rets; other sources need other strategies
}

func (retMitigation) Plan(orig *isa.Program, sites []isa.Addr) (*isa.Plan, error) {
	if readsReg(orig, mem.RTMP) {
		return nil, fmt.Errorf("repair: ret: program reads the scratch register %s", isa.RegName(mem.RTMP))
	}
	points := orig.Points()
	// fencePt's block head becomes the retpoline fence; the +2 leaves
	// the fall-off-the-end halt slot (last point + 1) unpatched.
	fencePt := points[len(points)-1] + 2
	storePt := fencePt + 1
	var pl isa.Plan
	n := 0
	for _, r := range sites {
		in, ok := orig.At(r)
		if !ok || in.Kind != isa.KRet {
			continue
		}
		n++
		repl := isa.Call(storePt, fencePt)
		pl.Add(isa.Patch{At: r, Insert: []isa.Instr{
			isa.Load(mem.RTMP, []isa.Operand{isa.R(mem.RSP)}, r),
			isa.Op(mem.RSP, isa.OpPred, []isa.Operand{isa.R(mem.RSP)}, r),
			isa.Fence(r),
		}, Replace: &repl})
	}
	if n == 0 {
		return nil, fmt.Errorf("repair: ret: no ret instruction at any committed site")
	}
	// Shared trampoline tail. The fence's Next names its own patch
	// point, i.e. the block's next slot — which is the patch's empty
	// occupant gap, a halt point: parked speculation has nowhere to go.
	pl.Add(isa.Patch{At: fencePt, Insert: []isa.Instr{
		isa.Fence(fencePt),
	}})
	pl.Add(isa.Patch{At: storePt, Insert: []isa.Instr{
		isa.Store(isa.R(mem.RTMP), []isa.Operand{isa.R(mem.RSP)}, storePt),
		isa.Ret(),
	}})
	return &pl, nil
}

// returnTargets enumerates the statically evident return points of a
// program, ascending and deduplicated: the return point of every call
// (the only addresses the call expansion ever pushes) and every
// data-image word that names an instruction point (a return address a
// store could place in the return slot). The mask pass's flow
// over-approximation dispatches rets over this set.
func returnTargets(p *isa.Program) []isa.Addr {
	seen := make(map[isa.Addr]bool)
	var out []isa.Addr
	add := func(a isa.Addr) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, pc := range p.Points() {
		if in, _ := p.At(pc); in.Kind == isa.KCall {
			add(in.RetPt)
		}
	}
	for _, v := range p.Data {
		if _, ok := p.At(isa.Addr(v.W)); ok {
			add(isa.Addr(v.W))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
