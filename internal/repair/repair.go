// Package repair implements counterexample-guided fence-repair
// synthesis: the mitigation workflow the paper's conclusion sketches.
// Given a program the detector flags, the engine maps each violation
// back to its guarding speculation source (an unresolved conditional
// branch, a store with a pending address, or an in-flight return),
// inserts §3.6 fence instructions at the source via isa.Program's
// InsertAt rewriting, re-verifies, and iterates until the program is
// speculative-constant-time at the analyzed bound. The resulting fence
// set is then minimized by greedy deletion under re-verification, and
// the repair is certified behaviour-preserving by replaying the
// canonical sequential schedule of both programs and comparing their
// observation traces modulo the address shift.
//
// Placement rules, per source kind:
//
//   - branch: a fence at the head of each arm (the Figure 8 patch) —
//     speculatively fetched leak instructions cannot execute until the
//     fence retires, which requires the branch to have resolved;
//   - store:  a fence immediately after the store — later loads cannot
//     execute until the store's address resolves and the store
//     retires, closing the Spectre v4 stale-load window;
//   - return: a fence immediately before the ret — the expansion's
//     predicted indirect jump cannot execute until every older store
//     (in particular one overwriting the return slot) has retired;
//   - fallback: a fence immediately before the leaking instruction,
//     used when no source rule yields a new site (e.g. a leak whose
//     guard retired before detection).
//
// Sequential constant-time violations are detected up front and
// reported as unrepairable: a fence constrains scheduling only, so no
// fence set can fix a program that leaks architecturally.
package repair

import (
	"fmt"
	"sort"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/sched"
)

// Options configure a repair run.
type Options struct {
	// Verify analyzes a candidate program and returns the detector
	// report. Required. The engine treats a report as a proof of
	// secret-freedom only when it is neither truncated nor interrupted.
	Verify func(*isa.Program) (pitchfork.Report, error)
	// Machine builds a concrete machine in a candidate program's
	// initial configuration. Optional; when set it enables the
	// sequential-leak precheck and the behaviour-preservation
	// certificate.
	Machine func(*isa.Program) *core.Machine
	// MaxIters bounds the counterexample-guided iterations (0 =
	// DefaultMaxIters).
	MaxIters int
	// NoMinimize skips the greedy fence-set minimization pass.
	NoMinimize bool
	// MaxSeqInstrs bounds the sequential replays of the precheck and
	// the behaviour certificate (0 = sched.DefaultMaxRetired).
	MaxSeqInstrs int
	// Hints, if non-nil, supplies static suspiciousness verdicts (an
	// internal/taint Report satisfies the interface) that rank
	// candidate fence sites: each round tries only the most suspicious
	// untried site per violation instead of every source placement at
	// once, so minimization starts from a smaller, better-aimed set.
	Hints Hints
}

// Hints is the static pre-analysis contract the site ranking consumes;
// it mirrors sched.PruneHints so one taint report serves both.
type Hints interface {
	// ForkFree reports that no secret-labeled observation is possible
	// at pp or at any point forward-reachable from it — a fence at such
	// a point cannot cut off any leak.
	ForkFree(pp isa.Addr) bool
}

// DefaultMaxIters is the iteration budget when Options leaves it zero.
// Each iteration adds at least one fence site, so the budget also
// bounds the fence count before minimization.
const DefaultMaxIters = 32

// Outcome classifies a repair run.
type Outcome uint8

const (
	// OutcomeFailed: the engine could not reach a verdict — a
	// verification error, an inconclusive (truncated/interrupted)
	// clean report, or a failed behaviour certificate. It is the zero
	// value on purpose: a Result returned alongside an error never
	// accidentally reads as certified.
	OutcomeFailed Outcome = iota
	// OutcomeClean: the program verified secret-free as given; no
	// fences were needed.
	OutcomeClean
	// OutcomeRepaired: fences were inserted and the program re-verified
	// secret-free.
	OutcomeRepaired
	// OutcomeSequentialLeak: the program leaks with no speculation in
	// flight; fences cannot repair it.
	OutcomeSequentialLeak
	// OutcomeExhausted: the iteration budget ran out, or no placement
	// rule produced a new fence site, before verification came back
	// clean.
	OutcomeExhausted
	// OutcomeUnsafeRewrite: the fence set would shift the target of a
	// computed jump, which isa.Program.InsertAt cannot remap — applying
	// it would silently change the program's architectural behaviour,
	// so the engine refuses the rewrite instead.
	OutcomeUnsafeRewrite
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeFailed:
		return "failed"
	case OutcomeClean:
		return "clean"
	case OutcomeRepaired:
		return "repaired"
	case OutcomeSequentialLeak:
		return "sequential-leak"
	case OutcomeExhausted:
		return "exhausted"
	case OutcomeUnsafeRewrite:
		return "unsafe-rewrite"
	}
	return "unknown"
}

// Secured reports whether the outcome certifies a secret-free program
// (either as given or after repair).
func (o Outcome) Secured() bool { return o == OutcomeClean || o == OutcomeRepaired }

// Result is the outcome of a repair run.
type Result struct {
	// Prog is the repaired program — the input program itself when no
	// fences were needed or none could help.
	Prog *isa.Program
	// Outcome classifies the run.
	Outcome Outcome
	// Sites are the fence insertion sites in the ORIGINAL program's
	// address space, sorted: a fence precedes the original occupant of
	// each site.
	Sites []isa.Addr
	// Fences are the fence program points in the REPAIRED program's
	// address space, sorted.
	Fences []isa.Addr
	// Before is the detector report of the unrepaired program; After
	// the report of the final program (equal to Before when no rewrite
	// happened).
	Before, After pitchfork.Report
	// Iterations counts verification-guided insertion rounds (0 when
	// the program was already clean).
	Iterations int
	// PreMinimizeFences is the fence count before minimization (equal
	// to len(Sites) when minimization is disabled or removed nothing).
	PreMinimizeFences int
	// UnsafeJump is the program point of the computed jump whose target
	// the refused fence set would have shifted (OutcomeUnsafeRewrite
	// only).
	UnsafeJump isa.Addr
}

// MapAddr translates an original program point to its location in the
// repaired program (the instruction-location map: each site at or
// below the point shifts it by one).
func (r *Result) MapAddr(a isa.Addr) isa.Addr {
	out := a
	for _, s := range r.Sites {
		if s <= a {
			out++
		}
	}
	return out
}

// MapTarget translates an original control-flow target: targets equal
// to a fence site keep pointing at the site — they flow through the
// fence — so only strictly smaller sites shift them.
func (r *Result) MapTarget(a isa.Addr) isa.Addr {
	out := a
	for _, s := range r.Sites {
		if s < a {
			out++
		}
	}
	return out
}

// Repair runs the counterexample-guided synthesis loop on prog. The
// input program is never mutated. A non-nil error means the engine
// could not reach a verdict (verification failed, was interrupted, or
// exhausted its state budget while looking clean); the partial Result
// accompanies it.
func Repair(prog *isa.Program, opts Options) (*Result, error) {
	if prog == nil {
		return nil, fmt.Errorf("repair: nil program")
	}
	if opts.Verify == nil {
		return nil, fmt.Errorf("repair: Options.Verify is required")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = DefaultMaxIters
	}
	if opts.MaxSeqInstrs <= 0 {
		opts.MaxSeqInstrs = sched.DefaultMaxRetired
	}

	before, err := opts.Verify(prog)
	if err != nil {
		return nil, fmt.Errorf("repair: baseline verification: %w", err)
	}
	res := &Result{Prog: prog, Before: before, After: before}
	if clean, err := certifiedClean(before); clean {
		res.Outcome = OutcomeClean
		return res, nil
	} else if err != nil {
		return res, fmt.Errorf("repair: baseline verification inconclusive: %w", err)
	}

	// A fence constrains the schedule; it cannot mask a leak the
	// canonical sequential execution already produces. The replay and
	// its halt status double as the baseline of the final behaviour
	// certificate, so the original is only re-executed once.
	var base *seqBaseline
	if opts.Machine != nil {
		mo := opts.Machine(prog)
		if _, trace, err := core.RunSequential(mo, opts.MaxSeqInstrs); err == nil {
			base = &seqBaseline{trace: trace, halted: mo.Halted()}
			if trace.FirstSecret() >= 0 {
				res.Outcome = OutcomeSequentialLeak
				return res, nil
			}
		}
	}

	siteSet := make(map[isa.Addr]bool)
	cur := before
	inv := identityMap(prog) // repaired-space point → original-space point
	secured := false
	for iter := 1; iter <= opts.MaxIters; iter++ {
		progress := false
		pending := make(map[isa.Addr]bool) // sites first proposed this round
		for _, v := range cur.Violations {
			cands := candidateSites(prog, v, inv)
			if opts.Hints != nil {
				rankSites(cands, opts.Hints)
			}
			saturated := true // every source fence tried in an earlier round
			for _, s := range cands {
				if !siteSet[s] {
					siteSet[s] = true
					pending[s] = true
					progress, saturated = true, false
					if opts.Hints != nil {
						// Ranked mode: commit only the most suspicious
						// untried site this round; the rest stay in
						// reserve for later rounds if the leak persists.
						break
					}
				} else if pending[s] {
					saturated = false // proposed this round, not yet verified
				}
			}
			if saturated {
				// Source placement was already tried and the leak
				// persists: escalate to a fence directly before the
				// leaking instruction.
				if opc, ok := inv[v.PC]; ok && !siteSet[opc] {
					siteSet[opc] = true
					progress = true
				}
			}
		}
		if !progress {
			res.Outcome = OutcomeExhausted
			res.Prog = prog // per the Result contract: no effective repair, no rewrite
			return res, nil
		}
		res.Iterations = iter
		res.Sites = sortedSites(siteSet)
		if pp, hazard := computedJumpHazard(prog, res.Sites); hazard {
			res.Outcome = OutcomeUnsafeRewrite
			res.Prog = prog // refuse the rewrite: it would break the jump at pp
			res.UnsafeJump = pp
			return res, nil
		}
		var rp *isa.Program
		rp, inv = applySites(prog, res.Sites)
		rep, err := opts.Verify(rp)
		if err != nil {
			return res, fmt.Errorf("repair: verification (iteration %d): %w", iter, err)
		}
		res.Prog, res.After, cur = rp, rep, rep
		if clean, err := certifiedClean(rep); clean {
			secured = true
			break
		} else if err != nil {
			return res, fmt.Errorf("repair: verification inconclusive (iteration %d): %w", iter, err)
		}
	}
	if !secured {
		res.Outcome = OutcomeExhausted
		res.Prog = prog // the tried fences were ineffective; return the input
		return res, nil
	}
	res.Outcome = OutcomeRepaired
	res.PreMinimizeFences = len(res.Sites)

	if !opts.NoMinimize && len(res.Sites) > 1 {
		if err := minimize(prog, res, opts); err != nil {
			res.Outcome = OutcomeFailed
			return res, err
		}
	}
	res.Fences = fencePoints(res)

	if base != nil {
		if err := behaviourPreserved(base, res, opts); err != nil {
			res.Outcome = OutcomeFailed
			return res, fmt.Errorf("repair: %w", err)
		}
	}
	return res, nil
}

// seqBaseline is the original program's bounded sequential replay:
// the precheck input and the behaviour-certificate reference.
type seqBaseline struct {
	trace  core.Trace
	halted bool
}

// certifiedClean reports whether rep proves secret-freedom. A clean
// report that was truncated or interrupted proves nothing; that case
// returns an error so callers fail loudly instead of shipping an
// uncertified patch. A flagged report is always usable — its
// counterexamples are sound regardless of truncation.
func certifiedClean(rep pitchfork.Report) (bool, error) {
	if !rep.SecretFree() {
		return false, nil
	}
	if rep.Interrupted {
		return false, fmt.Errorf("analysis interrupted")
	}
	if rep.Truncated {
		return false, fmt.Errorf("state budget exhausted before full coverage; raise MaxStates")
	}
	return true, nil
}

// candidateSites derives original-space fence sites for one
// violation's speculation sources. Source program points arrive in
// repaired space and are translated through inv; a source whose point
// has no original counterpart (it should not happen — fences are never
// sources) is skipped.
func candidateSites(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) []isa.Addr {
	var sites []isa.Addr
	for _, s := range v.Sources {
		opc, ok := inv[s.PC]
		if !ok {
			continue
		}
		in, ok := orig.At(opc)
		if !ok {
			continue
		}
		switch s.Kind {
		case sched.SrcBranch:
			if in.Kind == isa.KBr {
				sites = append(sites, in.True, in.False)
			}
		case sched.SrcStore:
			switch in.Kind {
			case isa.KStore:
				sites = append(sites, in.Next)
			case isa.KCall:
				// The return-address push of a call expansion: fencing
				// the callee entry holds the body until it retires.
				sites = append(sites, in.Callee)
			}
		case sched.SrcRet:
			if in.Kind == isa.KRet {
				sites = append(sites, opc)
			}
		}
	}
	return sites
}

// rankSites orders candidate fence sites most-suspicious first: sites
// from which a suspicious point is still forward-reachable (!ForkFree)
// can actually cut a leak off, so they are tried before provably
// fork-free ones; ties break on ascending address so ranked runs stay
// deterministic.
func rankSites(sites []isa.Addr, h Hints) {
	sort.SliceStable(sites, func(i, j int) bool {
		si, sj := !h.ForkFree(sites[i]), !h.ForkFree(sites[j])
		if si != sj {
			return si
		}
		return sites[i] < sites[j]
	})
}

// computedJumpHazard reports whether inserting fences at sites would
// silently retarget a computed jump. InsertAt remaps every static
// control-flow reference but cannot touch jmpi operands (the target is
// computed at run time): an immediate target T still reads T after the
// code at T shifted to T+1 — a hazard for any site strictly below T
// (a site AT T is fine: the old target flows through the fence) — and
// a register-computed target could denote any shifted point, so any
// insertion at all is a hazard.
func computedJumpHazard(p *isa.Program, sites []isa.Addr) (isa.Addr, bool) {
	if len(sites) == 0 {
		return 0, false
	}
	for _, pc := range p.Points() {
		in, _ := p.At(pc)
		if in.Kind != isa.KJmpi {
			continue
		}
		if len(in.Args) == 1 && !in.Args[0].IsReg {
			t := in.Args[0].Imm.W
			for _, s := range sites {
				if s < t {
					return pc, true
				}
			}
			continue
		}
		return pc, true
	}
	return 0, false
}

// applySites inserts a fence before the original occupant of every
// site, ascending, and returns the rewritten program plus the inverse
// instruction-location map (repaired point → original point).
func applySites(orig *isa.Program, sites []isa.Addr) (*isa.Program, map[isa.Addr]isa.Addr) {
	p := orig.Clone()
	for i, s := range sites {
		at := s + isa.Addr(i) // earlier (smaller) sites shifted this one up
		p.InsertAt(at, isa.Fence(at+1))
	}
	inv := make(map[isa.Addr]isa.Addr, len(orig.Instrs))
	for a := range orig.Instrs {
		shifted := a
		for _, s := range sites {
			if s <= a {
				shifted++
			}
		}
		inv[shifted] = a
	}
	return p, inv
}

func identityMap(p *isa.Program) map[isa.Addr]isa.Addr {
	inv := make(map[isa.Addr]isa.Addr, len(p.Instrs))
	for a := range p.Instrs {
		inv[a] = a
	}
	return inv
}

func sortedSites(set map[isa.Addr]bool) []isa.Addr {
	out := make([]isa.Addr, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// minimize greedily deletes redundant fences: for each site in
// ascending order, re-verify without it and drop it if the program
// stays certified clean. Fences only restrict the attacker's
// schedules, so leakage is monotone in fence removal — the surviving
// set is 1-minimal: removing any single remaining fence reintroduces
// a violation.
func minimize(orig *isa.Program, res *Result, opts Options) error {
	sites := append([]isa.Addr(nil), res.Sites...)
	for _, s := range res.Sites {
		trial := without(sites, s)
		rp, _ := applySites(orig, trial)
		rep, err := opts.Verify(rp)
		if err != nil {
			return fmt.Errorf("repair: minimization verification: %w", err)
		}
		clean, certErr := certifiedClean(rep)
		if certErr != nil {
			return fmt.Errorf("repair: minimization inconclusive: %w", certErr)
		}
		if clean {
			sites = trial
			res.Prog, res.After = rp, rep
		}
	}
	res.Sites = sites
	return nil
}

func without(sites []isa.Addr, drop isa.Addr) []isa.Addr {
	out := make([]isa.Addr, 0, len(sites))
	for _, s := range sites {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}

// fencePoints lists the repaired-space program points of the inserted
// fences: site i lands at Sites[i] + i after the ascending insertion.
func fencePoints(res *Result) []isa.Addr {
	out := make([]isa.Addr, len(res.Sites))
	for i, s := range res.Sites {
		out[i] = s + isa.Addr(i)
	}
	return out
}

// behaviourPreserved replays the canonical sequential schedule of the
// original and the repaired program and compares their observation
// traces: same events in the same order with the same labels, with
// jump targets compared through the address shift (fences themselves
// emit no observations). This catches the one unsoundness InsertAt
// documents — computed control flow that the static remap could not
// follow.
func behaviourPreserved(base *seqBaseline, res *Result, opts Options) error {
	if opts.MaxSeqInstrs <= 0 {
		opts.MaxSeqInstrs = sched.DefaultMaxRetired
	}
	to := base.trace
	// Fences retire too, so the repaired replay needs a wider budget —
	// and a fence inside a loop retires once per iteration, so no
	// static widening covers every program. Instead, both runs are
	// budget-bounded and compared on their common observation prefix;
	// lengths must agree exactly only when both replays actually
	// halted (a fence emits no observations, so a preserved program
	// yields the identical trace).
	mr := opts.Machine(res.Prog)
	_, tr, errR := core.RunSequential(mr, 2*opts.MaxSeqInstrs)
	if errR != nil {
		return fmt.Errorf("behaviour check: repaired program faults sequentially: %v", errR)
	}
	if base.halted && mr.Halted() && len(to) != len(tr) {
		return fmt.Errorf("behaviour check: sequential trace length changed: %d → %d", len(to), len(tr))
	}
	if mr.Halted() && !base.halted && len(tr) < len(to) {
		return fmt.Errorf("behaviour check: repaired program halts early: %d observations, original produced %d", len(tr), len(to))
	}
	n := len(to)
	if len(tr) < n {
		n = len(tr)
	}
	for i := 0; i < n; i++ {
		a, b := to[i], tr[i]
		if a.Kind != b.Kind || a.Secret() != b.Secret() {
			return fmt.Errorf("behaviour check: sequential observation %d changed: %s → %s", i, a, b)
		}
		if a.Kind == core.OJump {
			if want := res.MapTarget(a.Target); b.Target != want {
				return fmt.Errorf("behaviour check: jump target %d remapped to %d, executed %d", a.Target, want, b.Target)
			}
		} else if a.Addr != b.Addr {
			return fmt.Errorf("behaviour check: data address changed at observation %d: %#x → %#x", i, a.Addr, b.Addr)
		}
	}
	return nil
}
