// Package repair implements counterexample-guided repair synthesis:
// the mitigation workflow the paper's conclusion sketches, generalized
// from fence-only insertion into a portfolio of hardening strategies.
// Given a program the detector flags, the engine maps each violation
// back to its guarding speculation sources, asks a mitigation strategy
// for patch sites, realizes the committed sites as an isa patch plan,
// re-verifies, and iterates until the program is speculative-constant-
// time at the analyzed bound. The resulting patch set is minimized by
// greedy deletion under re-verification — ordered by the sequential
// cost model, so the cheapest surviving program wins — and the repair
// is certified behaviour-preserving by replaying the canonical
// sequential schedule of both programs and comparing observation
// traces modulo the plan's address map.
//
// Strategies (Options.Strategy):
//
//   - "fence" (default): the paper's §3.6 fence before each site —
//     branch arms, store successors, callee entries, rets, and the
//     pre-leak fallback;
//   - "mask": SLH-style speculative load hardening — a speculation
//     predicate register maintained at protected branch arms masks
//     computed load addresses on mis-speculated paths (see mask.go for
//     the scratch-register convention);
//   - "ret": return protection — flagged rets are rewritten into the
//     paper's Figure 13 retpoline, which parks RSB mis-speculation on
//     a fence so a stale return prediction cannot reach a leaking
//     load (see retguard.go for the construction);
//   - "auto": run the whole portfolio and pick the cheapest certified
//     patch by estimated sequential cost.
//
// Every candidate patch, whatever the strategy, is re-verified by the
// explorer and certified behaviour-preserved; a strategy that cannot
// realize or certify a patch reports OutcomeExhausted and (in auto
// mode) the portfolio falls back to the others. Sequential
// constant-time violations are detected up front and reported as
// unrepairable: no scheduling or masking mitigation can fix a program
// that leaks architecturally.
package repair

import (
	"fmt"
	"sort"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/sched"
)

// Options configure a repair run.
type Options struct {
	// Verify analyzes a candidate program and returns the detector
	// report. Required. The engine treats a report as a proof of
	// secret-freedom only when it is neither truncated nor interrupted.
	Verify func(*isa.Program) (pitchfork.Report, error)
	// Machine builds a concrete machine in a candidate program's
	// initial configuration. Optional; when set it enables the
	// sequential-leak precheck, the behaviour-preservation certificate,
	// and the sequential cost model.
	Machine func(*isa.Program) *core.Machine
	// MaxIters bounds the counterexample-guided iterations (0 =
	// DefaultMaxIters).
	MaxIters int
	// NoMinimize skips the greedy patch-set minimization pass.
	NoMinimize bool
	// MaxSeqInstrs bounds the sequential replays of the precheck, the
	// behaviour certificate and the cost model (0 =
	// sched.DefaultMaxRetired).
	MaxSeqInstrs int
	// Hints, if non-nil, supplies static suspiciousness verdicts (an
	// internal/taint Report satisfies the interface) that rank
	// candidate patch sites: each round tries only the most suspicious
	// untried site per violation instead of every source placement at
	// once, so minimization starts from a smaller, better-aimed set.
	Hints Hints
	// Strategy selects the mitigation: StrategyFence (also the empty
	// string), StrategyMask, StrategyRet, or StrategyAuto for the
	// cheapest-certified portfolio.
	Strategy string
}

// Hints is the static pre-analysis contract the site ranking consumes;
// it mirrors sched.PruneHints so one taint report serves both.
type Hints interface {
	// ForkFree reports that no secret-labeled observation is possible
	// at pp or at any point forward-reachable from it — a fence at such
	// a point cannot cut off any leak.
	ForkFree(pp isa.Addr) bool
}

// DefaultMaxIters is the iteration budget when Options leaves it zero.
// Each iteration adds at least one patch site, so the budget also
// bounds the site count before minimization.
const DefaultMaxIters = 32

// Outcome classifies a repair run.
type Outcome uint8

const (
	// OutcomeFailed: the engine could not reach a verdict — a
	// verification error, an inconclusive (truncated/interrupted)
	// clean report, or a failed behaviour certificate. It is the zero
	// value on purpose: a Result returned alongside an error never
	// accidentally reads as certified.
	OutcomeFailed Outcome = iota
	// OutcomeClean: the program verified secret-free as given; no
	// patches were needed.
	OutcomeClean
	// OutcomeRepaired: the program was rewritten and re-verified
	// secret-free.
	OutcomeRepaired
	// OutcomeSequentialLeak: the program leaks with no speculation in
	// flight; no mitigation can repair it.
	OutcomeSequentialLeak
	// OutcomeExhausted: the iteration budget ran out, no placement rule
	// produced a new patch site, or the strategy could not realize a
	// plan for this program, before verification came back clean.
	OutcomeExhausted
	// OutcomeUnsafeRewrite: the patch plan would shift the target of a
	// computed jump, which the rewriting layer cannot remap — applying
	// it would silently change the program's architectural behaviour,
	// so the engine refuses the rewrite instead.
	OutcomeUnsafeRewrite
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeFailed:
		return "failed"
	case OutcomeClean:
		return "clean"
	case OutcomeRepaired:
		return "repaired"
	case OutcomeSequentialLeak:
		return "sequential-leak"
	case OutcomeExhausted:
		return "exhausted"
	case OutcomeUnsafeRewrite:
		return "unsafe-rewrite"
	}
	return "unknown"
}

// Secured reports whether the outcome certifies a secret-free program
// (either as given or after repair).
func (o Outcome) Secured() bool { return o == OutcomeClean || o == OutcomeRepaired }

// Result is the outcome of a repair run.
type Result struct {
	// Prog is the repaired program — the input program itself when no
	// patches were needed or none could help.
	Prog *isa.Program
	// Outcome classifies the run.
	Outcome Outcome
	// Strategy names the mitigation that produced this result; empty
	// when the program was clean as given.
	Strategy string
	// Sites are the committed patch sites in the ORIGINAL program's
	// address space, sorted. Their meaning is strategy-relative: fence
	// insertion points for "fence", protected branches for "mask",
	// rewritten rets for "ret".
	Sites []isa.Addr
	// Fences are the program points of the inserted instructions in the
	// REPAIRED program's address space, sorted. (The name predates the
	// portfolio: for the fence strategy these are exactly the fences;
	// for the others they are the strategy's inserted instructions.)
	Fences []isa.Addr
	// Inserted is the number of inserted instructions in the final
	// patch (replacements keep the instruction count unchanged, so
	// repaired length = original length + Inserted).
	Inserted int
	// Before is the detector report of the unrepaired program; After
	// the report of the final program (equal to Before when no rewrite
	// happened).
	Before, After pitchfork.Report
	// Iterations counts verification-guided insertion rounds (0 when
	// the program was already clean).
	Iterations int
	// PreMinimizeFences is the inserted-instruction count before
	// minimization (equal to Inserted when minimization is disabled or
	// removed nothing).
	PreMinimizeFences int
	// UnsafeJump is the program point of the computed jump whose target
	// the refused patch plan would have shifted (OutcomeUnsafeRewrite
	// only).
	UnsafeJump isa.Addr
	// SeqInstrsBefore and SeqInstrs are the sequential cost model's
	// estimates — instructions retired by the bounded sequential
	// replay — for the original and the repaired program (0 when
	// Options.Machine is unset).
	SeqInstrsBefore, SeqInstrs int
	// PerStrategy holds every strategy's attempt in portfolio order
	// when the run used StrategyAuto (nil otherwise); the Result itself
	// is the chosen attempt.
	PerStrategy []*Result

	// rw is the final patch plan's rewrite, carrying the precomputed
	// address map and the inserted-point provenance. nil when no
	// rewrite was applied (clean, refused, exhausted) or on hand-built
	// Results, where the address maps fall back to the historical
	// fence-shaped shift arithmetic over Sites.
	rw *isa.Rewrite
	// plan is the final patch plan itself; the behaviour certificate
	// reads its replacement points. nil exactly when rw is.
	plan *isa.Plan
}

// replacedPoints returns the original program points whose occupant the
// final plan replaced (nil for insertion-only plans).
func (r *Result) replacedPoints() map[isa.Addr]bool {
	if r.plan == nil {
		return nil
	}
	var set map[isa.Addr]bool
	for _, p := range r.plan.Patches() {
		if p.Replace != nil {
			if set == nil {
				set = make(map[isa.Addr]bool)
			}
			set[p.At] = true
		}
	}
	return set
}

// MapAddr translates an original program point to its location in the
// repaired program (the instruction-location map). With a rewrite
// attached this is one precomputed binary search; the fallback
// recomputes the fence-shaped shift from Sites.
func (r *Result) MapAddr(a isa.Addr) isa.Addr {
	if r.rw != nil {
		return r.rw.Map.Addr(a)
	}
	out := a
	for _, s := range r.Sites {
		if s <= a {
			out++
		}
	}
	return out
}

// MapTarget translates an original control-flow target: targets equal
// to a patch site keep pointing at the start of the inserted block —
// they flow through it — so only strictly smaller sites shift them.
func (r *Result) MapTarget(a isa.Addr) isa.Addr {
	if r.rw != nil {
		return r.rw.Map.Target(a)
	}
	out := a
	for _, s := range r.Sites {
		if s < a {
			out++
		}
	}
	return out
}

// Repair runs the counterexample-guided synthesis loop on prog. The
// input program is never mutated. A non-nil error means the engine
// could not reach a verdict (verification failed, was interrupted, or
// exhausted its state budget while looking clean); the partial Result
// accompanies it.
func Repair(prog *isa.Program, opts Options) (*Result, error) {
	if prog == nil {
		return nil, fmt.Errorf("repair: nil program")
	}
	if opts.Verify == nil {
		return nil, fmt.Errorf("repair: Options.Verify is required")
	}
	strategies, err := strategiesFor(opts.Strategy)
	if err != nil {
		return nil, err
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = DefaultMaxIters
	}
	if opts.MaxSeqInstrs <= 0 {
		opts.MaxSeqInstrs = sched.DefaultMaxRetired
	}

	before, err := opts.Verify(prog)
	if err != nil {
		return nil, fmt.Errorf("repair: baseline verification: %w", err)
	}
	res := &Result{Prog: prog, Before: before, After: before}
	if clean, err := certifiedClean(before); clean {
		res.Outcome = OutcomeClean
		return res, nil
	} else if err != nil {
		return res, fmt.Errorf("repair: baseline verification inconclusive: %w", err)
	}

	// No mitigation can mask a leak the canonical sequential execution
	// already produces. The replay, its halt status and its retired
	// count double as the baseline of the behaviour certificate and the
	// cost model.
	var base *seqBaseline
	if opts.Machine != nil {
		if b, err := runAttributed(func() *core.Machine { return opts.Machine(prog) }, opts.MaxSeqInstrs); err == nil {
			base = b
			for _, o := range b.obs {
				if o.o.Secret() {
					res.Outcome = OutcomeSequentialLeak
					res.Strategy = strategies[0].Name()
					return res, nil
				}
			}
		}
	}

	if len(strategies) == 1 {
		return runStrategy(prog, strategies[0], before, base, opts)
	}
	return portfolio(prog, strategies, before, base, opts)
}

// runStrategy drives the counterexample-guided loop for one
// mitigation: propose sites per violation, realize them as a patch
// plan, re-verify, iterate; then minimize, and certify behaviour.
func runStrategy(prog *isa.Program, mit Mitigation, before pitchfork.Report, base *seqBaseline, opts Options) (*Result, error) {
	res := &Result{Prog: prog, Before: before, After: before, Strategy: mit.Name()}
	siteSet := make(map[isa.Addr]bool)
	cur := before
	inv := identityMap(prog) // repaired-space point → original-space point
	secured := false
	for iter := 1; iter <= opts.MaxIters; iter++ {
		progress := false
		pending := make(map[isa.Addr]bool) // sites first proposed this round
		for _, v := range cur.Violations {
			cands := mit.CandidateSites(prog, v, inv)
			if opts.Hints != nil {
				rankSites(cands, opts.Hints)
			}
			saturated := true // every source placement tried in an earlier round
			for _, s := range cands {
				if !siteSet[s] {
					siteSet[s] = true
					pending[s] = true
					progress, saturated = true, false
					if opts.Hints != nil {
						// Ranked mode: commit only the most suspicious
						// untried site this round; the rest stay in
						// reserve for later rounds if the leak persists.
						break
					}
				} else if pending[s] {
					saturated = false // proposed this round, not yet verified
				}
			}
			if saturated {
				if s, ok := mit.FallbackSite(prog, v, inv); ok && !siteSet[s] {
					siteSet[s] = true
					progress = true
				}
			}
		}
		if !progress {
			res.Outcome = OutcomeExhausted
			res.Prog = prog // per the Result contract: no effective repair, no rewrite
			res.rw, res.plan = nil, nil
			return res, nil
		}
		res.Iterations = iter
		res.Sites = sortedSites(siteSet)
		plan, perr := mit.Plan(prog, res.Sites)
		if perr != nil {
			// The strategy cannot rewrite this program at all (e.g. a
			// violated register convention, no dispatch targets).
			res.Outcome = OutcomeExhausted
			res.Prog, res.rw, res.plan = prog, nil, nil
			return res, nil
		}
		if pp, hazard := plan.JmpiHazard(prog); hazard {
			res.Outcome = OutcomeUnsafeRewrite
			res.Prog = prog // refuse the rewrite: it would break the jump at pp
			res.rw, res.plan = nil, nil
			res.UnsafeJump = pp
			return res, nil
		}
		rw, err := plan.Apply(prog)
		if err != nil {
			return res, fmt.Errorf("repair: %s plan rejected: %w", mit.Name(), err)
		}
		inv = rw.Orig
		rep, err := opts.Verify(rw.Prog)
		if err != nil {
			return res, fmt.Errorf("repair: verification (iteration %d): %w", iter, err)
		}
		res.Prog, res.rw, res.plan, res.After, cur = rw.Prog, rw, plan, rep, rep
		if clean, err := certifiedClean(rep); clean {
			secured = true
			break
		} else if err != nil {
			return res, fmt.Errorf("repair: verification inconclusive (iteration %d): %w", iter, err)
		}
	}
	if !secured {
		res.Outcome = OutcomeExhausted
		res.Prog = prog // the tried patches were ineffective; return the input
		res.rw, res.plan = nil, nil
		return res, nil
	}
	res.Outcome = OutcomeRepaired
	res.PreMinimizeFences = len(res.rw.Inserted)

	if !opts.NoMinimize && len(res.Sites) > 1 {
		if err := minimize(prog, mit, res, opts); err != nil {
			res.Outcome = OutcomeFailed
			return res, err
		}
	}
	res.Fences = append([]isa.Addr(nil), res.rw.Inserted...)
	res.Inserted = len(res.Fences)

	if base != nil {
		if err := behaviourPreserved(base, res, opts); err != nil {
			res.Outcome = OutcomeFailed
			return res, fmt.Errorf("repair: %w", err)
		}
		res.SeqInstrsBefore = base.retired
		res.SeqInstrs = seqCost(res.Prog, opts)
	}
	return res, nil
}

// portfolio runs every strategy and picks the cheapest certified
// attempt: least estimated sequential cost, then fewest instructions,
// then portfolio order. When nothing certifies, the first (fence)
// attempt's result and error are returned so auto mode degrades to the
// historical behaviour; either way every attempt is attached as
// PerStrategy.
func portfolio(prog *isa.Program, mits []Mitigation, before pitchfork.Report, base *seqBaseline, opts Options) (*Result, error) {
	attempts := make([]*Result, len(mits))
	errs := make([]error, len(mits))
	for i, m := range mits {
		attempts[i], errs[i] = runStrategy(prog, m, before, base, opts)
	}
	var best *Result
	for i, a := range attempts {
		if errs[i] != nil || !a.Outcome.Secured() {
			continue
		}
		if best == nil || cheaperThan(a, best) {
			best = a
		}
	}
	if best == nil {
		attempts[0].PerStrategy = attempts
		return attempts[0], errs[0]
	}
	best.PerStrategy = attempts
	return best, nil
}

// cheaperThan orders certified attempts by the cost model; strict
// comparisons keep the earlier (portfolio-order) attempt on ties.
func cheaperThan(a, b *Result) bool {
	if a.SeqInstrs != b.SeqInstrs {
		return a.SeqInstrs < b.SeqInstrs
	}
	return a.Prog.Len() < b.Prog.Len()
}

// seqObs is one observation of a sequential replay attributed to the
// program point of the instruction that produced it. RunSequential
// retires each instruction before the next fetch, so every observation
// between one fetch directive and the next belongs to the fetched
// instruction.
type seqObs struct {
	o  core.Observation
	pp isa.Addr
}

// seqBaseline is the original program's bounded sequential replay:
// the precheck input, the behaviour-certificate reference, and the
// cost model's "before" estimate.
type seqBaseline struct {
	obs     []seqObs
	halted  bool
	haltPC  isa.Addr
	retired int
}

// runAttributed plays the canonical sequential schedule of a fresh
// machine and attributes every observation to the program point it was
// fetched from: the schedule is discovered with RunSequential, then
// replayed step by step on a second fresh machine, reading the fetch
// PC before each fetch directive. Replay is deterministic, so both
// runs see identical behaviour.
func runAttributed(mk func() *core.Machine, budget int) (*seqBaseline, error) {
	schedule, _, err := core.RunSequential(mk(), budget)
	if err != nil {
		return nil, err
	}
	m := mk()
	b := &seqBaseline{retired: retiredCount(schedule)}
	var cur isa.Addr
	for _, d := range schedule {
		switch d.Kind {
		case core.DFetch, core.DFetchGuess, core.DFetchTarget:
			cur = m.PC
		}
		obs, err := m.Step(d)
		if err != nil {
			return nil, err
		}
		for _, o := range obs {
			b.obs = append(b.obs, seqObs{o: o, pp: cur})
		}
	}
	b.halted, b.haltPC = m.Halted(), m.PC
	return b, nil
}

// certifiedClean reports whether rep proves secret-freedom. A clean
// report that was truncated or interrupted proves nothing; that case
// returns an error so callers fail loudly instead of shipping an
// uncertified patch. A flagged report is always usable — its
// counterexamples are sound regardless of truncation.
func certifiedClean(rep pitchfork.Report) (bool, error) {
	if !rep.SecretFree() {
		return false, nil
	}
	if rep.Interrupted {
		return false, fmt.Errorf("analysis interrupted")
	}
	if rep.Truncated {
		return false, fmt.Errorf("state budget exhausted before full coverage; raise MaxStates")
	}
	return true, nil
}

// rankSites orders candidate patch sites most-suspicious first: sites
// from which a suspicious point is still forward-reachable (!ForkFree)
// can actually cut a leak off, so they are tried before provably
// fork-free ones; ties break on ascending address so ranked runs stay
// deterministic.
func rankSites(sites []isa.Addr, h Hints) {
	sort.SliceStable(sites, func(i, j int) bool {
		si, sj := !h.ForkFree(sites[i]), !h.ForkFree(sites[j])
		if si != sj {
			return si
		}
		return sites[i] < sites[j]
	})
}

// computedJumpHazard reports whether inserting fences at sites would
// silently retarget a computed jump — the historical entry point, now
// a thin wrapper over the fence plan's static hazard check.
func computedJumpHazard(p *isa.Program, sites []isa.Addr) (isa.Addr, bool) {
	plan, _ := fenceMitigation{}.Plan(p, sites)
	return plan.JmpiHazard(p)
}

// applySites inserts a fence before the original occupant of every
// site and returns the rewritten program plus the inverse
// instruction-location map (repaired point → original point) — the
// historical fence-only rewrite, expressed as a patch plan.
func applySites(orig *isa.Program, sites []isa.Addr) (*isa.Program, map[isa.Addr]isa.Addr) {
	plan, _ := fenceMitigation{}.Plan(orig, sites)
	rw, err := plan.Apply(orig)
	if err != nil {
		// Unreachable for fence plans over a valid program (insertion
		// never invalidates and sites are deduplicated); fail loudly
		// rather than hand back a half-rewritten program.
		panic(fmt.Sprintf("repair: fence plan failed to apply: %v", err))
	}
	return rw.Prog, rw.Orig
}

func identityMap(p *isa.Program) map[isa.Addr]isa.Addr {
	inv := make(map[isa.Addr]isa.Addr, len(p.Instrs))
	for a := range p.Instrs {
		inv[a] = a
	}
	return inv
}

func sortedSites(set map[isa.Addr]bool) []isa.Addr {
	out := make([]isa.Addr, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// minimize greedily deletes redundant patch sites: for each site — in
// the cost model's preferred order — re-verify without it and drop it
// if the program stays certified clean. Patches only restrict the
// attacker (fences constrain schedules, masks zero mis-speculated
// addresses, dispatches shrink the reachable target set), so leakage
// is monotone in site removal — the surviving set is 1-minimal:
// removing any single remaining site reintroduces a violation.
func minimize(orig *isa.Program, mit Mitigation, res *Result, opts Options) error {
	sites := append([]isa.Addr(nil), res.Sites...)
	for _, s := range minimizeOrder(orig, mit, res.Sites, opts) {
		trial := without(sites, s)
		plan, err := mit.Plan(orig, trial)
		if err != nil {
			continue
		}
		rw, err := plan.Apply(orig)
		if err != nil {
			continue
		}
		rep, err := opts.Verify(rw.Prog)
		if err != nil {
			return fmt.Errorf("repair: minimization verification: %w", err)
		}
		clean, certErr := certifiedClean(rep)
		if certErr != nil {
			return fmt.Errorf("repair: minimization inconclusive: %w", certErr)
		}
		if clean {
			sites = trial
			res.Prog, res.After, res.rw, res.plan = rw.Prog, rep, rw, plan
		}
	}
	res.Sites = sites
	return nil
}

func without(sites []isa.Addr, drop isa.Addr) []isa.Addr {
	out := make([]isa.Addr, 0, len(sites))
	for _, s := range sites {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}

// behaviourPreserved replays the canonical sequential schedule of the
// repaired program and compares it against the original's baseline:
// observations of instructions inherited from the original must match
// in order, kind, label, and address — jump targets through the plan's
// address map — while plan-authored instructions (inserted, and the
// occupants of replaced points on both sides) may only contribute
// PUBLIC observations. Rollback events are excluded on both sides:
// sequentially they only mark an RSB misprediction recovering to the
// architectural target, which is exactly the prediction behaviour a
// return mitigation is entitled to change (always-public, no payload,
// and the very next jump observation pins the recovered target). A fence plan authors nothing observable, so its
// comparison degenerates to the exact historical trace equality; a
// mask's replaced loads read the same addresses they replaced; a
// retpoline's added stack traffic is public by construction and
// anything it gets wrong — a misdirected return, a clobbered slot —
// desynchronizes the very next inherited observation or the final halt
// point. This catches the one unsoundness the rewriting layer
// documents (computed control flow the static remap could not follow)
// as well as any mitigation that changed what the program
// architecturally does.
func behaviourPreserved(base *seqBaseline, res *Result, opts Options) error {
	if opts.MaxSeqInstrs <= 0 {
		opts.MaxSeqInstrs = sched.DefaultMaxRetired
	}
	// Inserted instructions retire too, so the repaired replay needs a
	// wider budget — and a patch inside a loop retires once per
	// iteration, so no static widening covers every program. Instead,
	// both runs are budget-bounded and compared on their common
	// observation prefix; lengths must agree exactly only when both
	// replays actually halted.
	rew, err := runAttributed(func() *core.Machine { return opts.Machine(res.Prog) }, 2*opts.MaxSeqInstrs)
	if err != nil {
		return fmt.Errorf("behaviour check: repaired program faults sequentially: %v", err)
	}
	replacedOrig := res.replacedPoints()
	planPoint := func(pp isa.Addr) bool { return false }
	if res.rw != nil {
		inserted := make(map[isa.Addr]bool, len(res.rw.Inserted))
		for _, a := range res.rw.Inserted {
			inserted[a] = true
		}
		for p := range replacedOrig {
			inserted[res.rw.Map.Addr(p)] = true
		}
		planPoint = func(pp isa.Addr) bool { return inserted[pp] }
	}
	to := make([]seqObs, 0, len(base.obs))
	for _, o := range base.obs {
		if replacedOrig[o.pp] || o.o.Kind == core.ORollback {
			continue // replaced occupant: its stand-in is filtered on the other side
		}
		to = append(to, o)
	}
	tr := make([]seqObs, 0, len(rew.obs))
	for _, o := range rew.obs {
		if o.o.Kind == core.ORollback {
			continue
		}
		if planPoint(o.pp) {
			if o.o.Secret() {
				return fmt.Errorf("behaviour check: patch instruction at %d makes a secret observation: %s", o.pp, o.o)
			}
			continue
		}
		tr = append(tr, o)
	}
	if base.halted && rew.halted && len(to) != len(tr) {
		return fmt.Errorf("behaviour check: sequential trace length changed: %d → %d", len(to), len(tr))
	}
	if rew.halted && !base.halted && len(tr) < len(to) {
		return fmt.Errorf("behaviour check: repaired program halts early: %d observations, original produced %d", len(tr), len(to))
	}
	if base.halted && rew.halted {
		if want := res.MapTarget(base.haltPC); rew.haltPC != want {
			return fmt.Errorf("behaviour check: halt point %d remapped to %d, reached %d", base.haltPC, want, rew.haltPC)
		}
	}
	n := len(to)
	if len(tr) < n {
		n = len(tr)
	}
	for i := 0; i < n; i++ {
		a, b := to[i].o, tr[i].o
		if a.Kind != b.Kind || a.Secret() != b.Secret() {
			return fmt.Errorf("behaviour check: sequential observation %d changed: %s → %s", i, a, b)
		}
		if a.Kind == core.OJump {
			if want := res.MapTarget(a.Target); b.Target != want {
				return fmt.Errorf("behaviour check: jump target %d remapped to %d, executed %d", a.Target, want, b.Target)
			}
		} else if a.Addr != b.Addr {
			return fmt.Errorf("behaviour check: data address changed at observation %d: %#x → %#x", i, a.Addr, b.Addr)
		}
	}
	return nil
}
