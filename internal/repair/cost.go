package repair

import (
	"sort"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
)

// The sequential cost model. A mitigation's real price is not how many
// instructions it adds to the text but how many it adds to the
// canonical sequential execution: a fence outside the hot path is free
// at run time, a mask recomputed inside a loop is paid every
// iteration. Cost is therefore the number of instructions the bounded
// sequential replay retires — exactly the directives a sequential
// processor issues — and falls back to static program length when no
// Machine is configured.

// costUnbounded ranks programs whose replay faults or never halts
// below every measurable candidate.
const costUnbounded = int(^uint(0) >> 1)

// seqCost estimates the sequential-schedule cost of a program: retired
// instructions of the bounded sequential replay (the behaviour
// certificate's budget), or p.Len() when opts has no Machine.
func seqCost(p *isa.Program, opts Options) int {
	if opts.Machine == nil {
		return p.Len()
	}
	m := opts.Machine(p)
	schedule, _, err := core.RunSequential(m, 2*opts.MaxSeqInstrs)
	if err != nil {
		return costUnbounded
	}
	// When the budget ran out before halting the count is a lower
	// bound, still comparable across candidates replayed under one
	// budget.
	return retiredCount(schedule)
}

// retiredCount counts the retire directives of a schedule — the
// sequential instruction count (every fetch retires exactly once).
func retiredCount(s core.Schedule) int {
	n := 0
	for _, d := range s {
		if d.Kind == core.DRetire {
			n++
		}
	}
	return n
}

// minimizeOrder decides which patch sites the greedy minimizer tries
// to drop first: ascending estimated sequential cost of the program
// WITHOUT the site — the drop that buys the cheapest program is
// attempted before the others, so the surviving 1-minimal set is
// biased toward low sequential overhead rather than low addresses.
// Without a Machine every trial costs the same (static length differs
// by a constant per site for a fixed strategy), and the order reduces
// to ascending addresses — the historical behaviour.
func minimizeOrder(orig *isa.Program, mit Mitigation, sites []isa.Addr, opts Options) []isa.Addr {
	order := append([]isa.Addr(nil), sites...)
	if opts.Machine == nil || len(sites) < 2 {
		return order
	}
	cost := make(map[isa.Addr]int, len(sites))
	for _, s := range sites {
		cost[s] = costUnbounded
		plan, err := mit.Plan(orig, without(sites, s))
		if err != nil {
			continue
		}
		rw, err := plan.Apply(orig)
		if err != nil {
			continue
		}
		cost[s] = seqCost(rw.Prog, opts)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if cost[order[i]] != cost[order[j]] {
			return cost[order[i]] < cost[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}
