package repair

import (
	"fmt"

	"pitchfork/internal/isa"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/sched"
)

// Mitigation is one hardening pass the repair engine can drive: it
// proposes patch sites for a violation's speculation sources and
// realizes a committed site set as an isa patch plan. The engine owns
// everything else — the counterexample-guided loop, minimization, the
// explorer re-verification of every candidate, and the sequential
// behaviour certificate — so a mitigation only encodes WHERE to patch
// and WHAT to insert, never whether the patch worked.
type Mitigation interface {
	// Name is the strategy's wire name ("fence", "mask", "ret").
	Name() string
	// CandidateSites derives original-space patch sites for one
	// violation's speculation sources. Source program points arrive in
	// repaired space and are translated through inv. Sources the
	// mitigation cannot protect yield no sites.
	CandidateSites(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) []isa.Addr
	// FallbackSite is the escalation site when every candidate for a
	// still-leaking violation has been tried in earlier rounds; ok is
	// false when the mitigation has no escalation rule.
	FallbackSite(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) (isa.Addr, bool)
	// Plan realizes the mitigation at the given original-space sites.
	// An error means the strategy cannot rewrite this program at all
	// (e.g. a register convention the program violates); the engine
	// reports the attempt as exhausted rather than failed.
	Plan(orig *isa.Program, sites []isa.Addr) (*isa.Plan, error)
}

// strategiesFor resolves an Options.Strategy value. The empty string
// keeps the historical fence-only behaviour; "auto" returns the whole
// portfolio in preference order.
func strategiesFor(name string) ([]Mitigation, error) {
	switch name {
	case "", StrategyFence:
		return []Mitigation{fenceMitigation{}}, nil
	case StrategyMask:
		return []Mitigation{maskMitigation{}}, nil
	case StrategyRet:
		return []Mitigation{retMitigation{}}, nil
	case StrategyAuto:
		return []Mitigation{fenceMitigation{}, maskMitigation{}, retMitigation{}}, nil
	}
	return nil, fmt.Errorf("repair: unknown strategy %q (want auto, fence, mask or ret)", name)
}

// Strategy names accepted by Options.Strategy.
const (
	StrategyAuto  = "auto"
	StrategyFence = "fence"
	StrategyMask  = "mask"
	StrategyRet   = "ret"
)

// fenceMitigation is the paper's §3.6 mitigation: a fence before the
// occupant of each site. Placement rules per source kind are the
// package-documented ones (branch → both arm heads, store → successor,
// call push → callee entry, ret → the ret itself, fallback → directly
// before the leaking instruction).
type fenceMitigation struct{}

func (fenceMitigation) Name() string { return StrategyFence }

func (fenceMitigation) CandidateSites(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) []isa.Addr {
	var sites []isa.Addr
	for _, s := range v.Sources {
		opc, ok := inv[s.PC]
		if !ok {
			continue
		}
		in, ok := orig.At(opc)
		if !ok {
			continue
		}
		switch s.Kind {
		case sched.SrcBranch:
			if in.Kind == isa.KBr {
				sites = append(sites, in.True, in.False)
			}
		case sched.SrcStore:
			switch in.Kind {
			case isa.KStore:
				sites = append(sites, in.Next)
			case isa.KCall:
				// The return-address push of a call expansion: fencing
				// the callee entry holds the body until it retires.
				sites = append(sites, in.Callee)
			}
		case sched.SrcRet:
			if in.Kind == isa.KRet {
				sites = append(sites, opc)
			}
		}
	}
	return sites
}

func (fenceMitigation) FallbackSite(orig *isa.Program, v pitchfork.Violation, inv map[isa.Addr]isa.Addr) (isa.Addr, bool) {
	// Source placement was already tried and the leak persists:
	// escalate to a fence directly before the leaking instruction.
	opc, ok := inv[v.PC]
	return opc, ok
}

func (fenceMitigation) Plan(orig *isa.Program, sites []isa.Addr) (*isa.Plan, error) {
	var pl isa.Plan
	for _, s := range sites {
		pl.Add(isa.Patch{At: s, Insert: []isa.Instr{isa.Fence(s)}})
	}
	return &pl, nil
}

// readsReg reports whether any instruction of p reads r. Repair-
// inserted code claims scratch registers; a program that already reads
// them would observe the clobber, so such strategies refuse it.
func readsReg(p *isa.Program, r isa.Reg) bool {
	var scratch [8]isa.Reg
	for _, pc := range p.Points() {
		in, _ := p.At(pc)
		for _, u := range in.UsedRegs(scratch[:0]) {
			if u == r {
				return true
			}
		}
	}
	return false
}

// writesReg reports whether any instruction of p assigns r.
func writesReg(p *isa.Program, r isa.Reg) bool {
	for _, pc := range p.Points() {
		in, _ := p.At(pc)
		if dst, ok := in.Writes(); ok && dst == r {
			return true
		}
	}
	return false
}
