package repair

import (
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/testcases"
)

// corpusOptions verifies CTL-compiled cases (no register seeds — all
// inputs live in the data image) at the hazard-aware bound.
// Fingerprint dedup keeps the loop cases tractable: many
// forwarding-fork arms reconverge, and pruning them preserves the
// violation set, so a deduped clean run is still a certificate.
func corpusOptions() Options {
	return Options{
		Verify: func(p *isa.Program) (pitchfork.Report, error) {
			return pitchfork.Analyze(core.New(p), pitchfork.Options{
				Bound: 20, ForwardHazards: true, DedupEntries: 1 << 20,
			})
		},
		Machine: func(p *isa.Program) *core.Machine { return core.New(p) },
	}
}

// repairCorpus repairs every case of a suite and checks the contract:
// flagged speculative cases come back re-verified secret-free with a
// 1-minimal fence set; sequential leakers are reported unrepairable.
// At least one case per suite must actually exercise the repair path,
// so a suite going quiet (nothing flagged, nothing repaired) fails.
func repairCorpus(t *testing.T, cases []testcases.Case) {
	t.Helper()
	repaired := 0
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := corpusOptions()
			res, err := Repair(m.Prog, opts)
			if err != nil {
				t.Fatalf("Repair: %v", err)
			}
			switch {
			case c.SequentialLeak:
				if res.Outcome != OutcomeSequentialLeak {
					t.Fatalf("outcome = %s, want sequential-leak (case leaks architecturally)", res.Outcome)
				}
				return
			case res.Outcome == OutcomeClean:
				// Not flagged at this bound/config; nothing to repair.
				return
			}
			if res.Outcome != OutcomeRepaired {
				t.Fatalf("outcome = %s, want repaired (before: %s)", res.Outcome, res.Before.Summary())
			}
			repaired++
			if !res.After.SecretFree() {
				t.Fatalf("repaired program still flagged: %s", res.After.Summary())
			}
			if len(res.Sites) == 0 {
				t.Fatal("repaired with an empty fence set")
			}
			for _, f := range res.Fences {
				if in, ok := res.Prog.At(f); !ok || in.Kind != isa.KFence {
					t.Fatalf("reported fence point %d does not hold a fence", f)
				}
			}
			assert1Minimal(t, m.Prog, res, opts)
		})
	}
	if repaired*2 < len(cases) {
		t.Errorf("only %d/%d cases repaired; the repair path has gone quiet", repaired, len(cases))
	}
}

func TestRepairKocherSuite(t *testing.T)     { repairCorpus(t, testcases.Kocher()) }
func TestRepairSpecOnlyV1Suite(t *testing.T) { repairCorpus(t, testcases.SpecOnlyV1()) }
func TestRepairV11Suite(t *testing.T)        { repairCorpus(t, testcases.V11()) }
