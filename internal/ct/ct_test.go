package ct

import (
	"strings"
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
)

// runMain compiles and sequentially executes a CTL program, returning
// the machine for inspection.
func runMain(t *testing.T, src string, mode Mode) (*Compiled, *core.Machine) {
	t.Helper()
	c, err := Compile(src, mode)
	if err != nil {
		t.Fatalf("compile(%s): %v", mode, err)
	}
	m := core.New(c.Prog)
	if _, _, err := core.RunSequential(m, 100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatalf("program did not halt (pc=%d)", m.PC)
	}
	return c, m
}

func global(t *testing.T, c *Compiled, m *core.Machine, name string, idx uint64) mem.Value {
	t.Helper()
	a, ok := c.GlobalAddr[name]
	if !ok {
		t.Fatalf("no global %q", name)
	}
	v, err := m.Mem.Read(a + idx)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompileArithmetic(t *testing.T) {
	src := `
public out;
fn main() {
  var x = 6;
  var y = 7;
  out = x * y + 1 - 3;
}`
	for _, mode := range []Mode{ModeC, ModeFaCT} {
		c, m := runMain(t, src, mode)
		if got := global(t, c, m, "out", 0); got.W != 40 {
			t.Fatalf("%s: out = %v, want 40", mode, got)
		}
	}
}

func TestCompileOperators(t *testing.T) {
	src := `
public out[12];
fn main() {
  out[0] = 13 / 4;
  out[1] = 13 % 4;
  out[2] = 6 & 3;
  out[3] = 6 | 3;
  out[4] = 6 ^ 3;
  out[5] = 1 << 4;
  out[6] = 32 >> 2;
  out[7] = (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5);
  out[8] = (3 == 3) + (3 != 3);
  out[9] = !0 + !7;
  out[10] = (1 && 2) + (0 && 2) + (0 || 3) + (0 || 0);
  out[11] = ~0 - -1;
}`
	want := []uint64{3, 1, 2, 7, 5, 16, 8, 3, 1, 1, 2, 0}
	c, m := runMain(t, src, ModeC)
	for i, w := range want {
		if got := global(t, c, m, "out", uint64(i)); got.W != mem.Word(w) {
			t.Errorf("out[%d] = %d, want %d", i, got.W, w)
		}
	}
}

func TestCompileWhileLoop(t *testing.T) {
	src := `
public out;
fn main() {
  var i = 0;
  var sum = 0;
  while (i < 10) {
    sum = sum + i;
    i = i + 1;
  }
  out = sum;
}`
	c, m := runMain(t, src, ModeC)
	if got := global(t, c, m, "out", 0); got.W != 45 {
		t.Fatalf("out = %v, want 45", got)
	}
}

func TestCompileArraysAndGlobals(t *testing.T) {
	src := `
public a[4] = {10, 20, 30, 40};
public out;
fn main() {
  var i = 0;
  var sum = 0;
  while (i < 4) {
    sum = sum + a[i];
    i = i + 1;
  }
  a[0] = sum;
  out = a[0];
}`
	c, m := runMain(t, src, ModeC)
	if got := global(t, c, m, "out", 0); got.W != 100 {
		t.Fatalf("out = %v, want 100", got)
	}
}

func TestCompileFunctionsAndCalls(t *testing.T) {
	src := `
public out;
fn add3(a, b, c) {
  return a + b + c;
}
fn twice(x) {
  return add3(x, x, 0);
}
fn main() {
  out = twice(21) + add3(1, 2, 3) - 6;
}`
	for _, mode := range []Mode{ModeC, ModeFaCT} {
		c, m := runMain(t, src, mode)
		if got := global(t, c, m, "out", 0); got.W != 42 {
			t.Fatalf("%s: out = %v, want 42", mode, got)
		}
	}
}

func TestCompileIfElse(t *testing.T) {
	src := `
public out[2];
fn pick(v) {
  if (v > 5) {
    return 100;
  } else {
    return 200;
  }
}
fn main() {
  out[0] = pick(9);
  out[1] = pick(1);
}`
	c, m := runMain(t, src, ModeC)
	if global(t, c, m, "out", 0).W != 100 || global(t, c, m, "out", 1).W != 200 {
		t.Fatal("if/else results wrong")
	}
}

func TestSecretLabelsPropagateToData(t *testing.T) {
	src := `
secret key = 7;
public out;
fn main() {
  out = key + 1;
}`
	c, m := runMain(t, src, ModeC)
	got := global(t, c, m, "out", 0)
	if got.W != 8 {
		t.Fatalf("out = %v", got)
	}
	if !got.L.IsSecret() {
		t.Fatal("secret data must stay labeled through arithmetic")
	}
}

// TestFaCTLinearizesSecretBranch is the heart of the C-vs-FaCT
// distinction: the same secret-condition source compiles to a real
// branch under ModeC and to straight-line selects under ModeFaCT, with
// identical sequential semantics.
func TestFaCTLinearizesSecretBranch(t *testing.T) {
	src := `
secret s = 1;
public out[2];
fn main() {
  var x = 10;
  if (s == 1) {
    x = 20;
    out[1] = 5;
  } else {
    x = 30;
  }
  out[0] = x;
}`
	cC, mC := runMain(t, src, ModeC)
	cF, mF := runMain(t, src, ModeFaCT)
	if global(t, cC, mC, "out", 0).W != 20 || global(t, cF, mF, "out", 0).W != 20 {
		t.Fatal("both modes must compute 20")
	}
	if global(t, cC, mC, "out", 1).W != 5 || global(t, cF, mF, "out", 1).W != 5 {
		t.Fatal("both modes must store 5")
	}

	// ModeC must contain a branch on secret data; ModeFaCT must not
	// branch at all on this program except... it must contain selects.
	hasBr := func(c *Compiled) bool {
		for _, n := range c.Prog.Points() {
			in, _ := c.Prog.At(n)
			if in.Kind == 1 { // isa.KBr
				return true
			}
		}
		return false
	}
	if !hasBr(cC) {
		t.Fatal("ModeC must emit a branch")
	}
	if hasBr(cF) {
		t.Fatal("ModeFaCT must linearize the secret branch")
	}

	// And the observable difference: the sequential trace of ModeC
	// carries a secret-labeled jump; ModeFaCT's trace is clean.
	mC2 := core.New(cC.Prog)
	_, trC, err := core.RunSequential(mC2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !trC.HasSecret() {
		t.Fatal("ModeC sequential trace must leak the secret branch")
	}
	mF2 := core.New(cF.Prog)
	_, trF, err := core.RunSequential(mF2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if trF.HasSecret() {
		t.Fatalf("ModeFaCT sequential trace must be clean, got %s", trF)
	}
}

func TestFaCTNestedSecretIf(t *testing.T) {
	src := `
secret s = 3;
public out;
fn main() {
  var x = 0;
  if (s > 1) {
    if (s > 2) {
      x = 7;
    } else {
      x = 8;
    }
  }
  out = x;
}`
	for _, mode := range []Mode{ModeC, ModeFaCT} {
		c, m := runMain(t, src, mode)
		if got := global(t, c, m, "out", 0); got.W != 7 {
			t.Fatalf("%s: out = %v, want 7", mode, got)
		}
	}
}

func TestFaCTRejectsSecretLoop(t *testing.T) {
	src := `
secret s = 3;
fn main() {
  while (s > 0) {
    s = s - 1;
  }
}`
	if _, err := Compile(src, ModeFaCT); err == nil || !strings.Contains(err.Error(), "secret loop") {
		t.Fatalf("want secret-loop rejection, got %v", err)
	}
	if _, err := Compile(src, ModeC); err != nil {
		t.Fatalf("ModeC must accept it: %v", err)
	}
}

func TestFaCTRejectsSecretIndex(t *testing.T) {
	src := `
secret s = 3;
public a[4];
public out;
fn main() {
  out = a[s];
}`
	if _, err := Compile(src, ModeFaCT); err == nil || !strings.Contains(err.Error(), "secret array index") {
		t.Fatalf("want secret-index rejection, got %v", err)
	}
	src2 := `
secret s = 3;
public a[4];
fn main() {
  a[s] = 1;
}`
	if _, err := Compile(src2, ModeFaCT); err == nil {
		t.Fatal("want secret store-index rejection")
	}
}

func TestFaCTRejectsEffectsUnderSecretBranch(t *testing.T) {
	for _, body := range []string{
		"if (s > 0) { return 1; }",
		"if (s > 0) { f(); }",
		"if (s > 0) { while (1) { s = 0; } }",
	} {
		src := "secret s = 1;\nfn f() { return 0; }\nfn main() {\n" + body + "\n}"
		if _, err := Compile(src, ModeFaCT); err == nil {
			t.Errorf("want rejection for %q", body)
		}
		if _, err := Compile(src, ModeC); err != nil {
			t.Errorf("ModeC must accept %q: %v", body, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"fn main() {",            // unterminated block
		"fn main() { var = 1; }", // missing name
		"public 3;",              // bad global
		"fn main() { x = ; }",    // missing expression
		"fn main() { @ }",        // bad rune
		"fn main() { a[1; }",     // missing bracket
		"public a[0];",           // zero-size array
		"public a[2] = {1,2,3};", // too many initializers
		"fn main() { if (1) }",   // missing block
	}
	for _, src := range cases {
		if _, err := Compile(src, ModeC); err == nil {
			t.Errorf("want parse error for %q", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"fn f() { return 0; }":                      "no main",
		"fn main(x) { }":                            "main must take no parameters",
		"fn main() { x = 1; }":                      "undeclared variable",
		"fn main() { var x = y; }":                  "undeclared variable",
		"fn main() { var x = f(1); }":               "undeclared function",
		"fn f(a) { return a; } fn main() { f(); }":  "expects 1 arguments",
		"public a[2]; fn main() { a = 1; }":         "cannot assign whole array",
		"public x; fn main() { x[0] = 1; }":         "is not an array",
		"public x; fn main() { var y = x[0]; }":     "is not an array",
		"public x; public x; fn main() { }":         "duplicate global",
		"fn f() {} fn f() {} fn main() { }":         "duplicate function",
		"public f; fn f() {} fn main() { }":         "collides with global",
		"public a[2]; fn main() { var y = a + 1; }": "is an array",
	}
	for src, wantSub := range cases {
		_, err := Compile(src, ModeC)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("source %q: want error containing %q, got %v", src, wantSub, err)
		}
	}
}

func TestLabelFixpointThroughCalls(t *testing.T) {
	// The secret flows through g into f's return and into out.
	src := `
secret k = 5;
public out;
fn g() { return k; }
fn f() { return g() + 1; }
fn main() { out = f(); }`
	c, m := runMain(t, src, ModeC)
	got := global(t, c, m, "out", 0)
	if got.W != 6 || !got.L.IsSecret() {
		t.Fatalf("out = %v, want secret 6", got)
	}
}

// TestKocherGadgetEndToEnd compiles the classic bounds-check-bypass
// pattern from CTL source and confirms the detector flags the C build.
func TestKocherGadgetEndToEnd(t *testing.T) {
	src := `
public a[4] = {1, 2, 3, 4};
secret key[4] = {160, 161, 162, 163};
public b[16];
public x = 5;
public out;
fn main() {
  if (x < 4) {
    out = b[a[x] * 2];
  }
}`
	c, err := Compile(src, ModeC)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pitchfork.Analyze(core.New(c.Prog), pitchfork.Options{Bound: 20, StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("compiled Spectre v1 gadget must be flagged")
	}
}

func TestCompiledProgramIsSCTWithFence(t *testing.T) {
	src := `
public a[4] = {1, 2, 3, 4};
secret key[4] = {160, 161, 162, 163};
public b[16];
public x = 5;
public out;
fn main() {
  if (x < 4) {
    fence;
    out = b[a[x] * 2];
  }
}`
	c, err := Compile(src, ModeC)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pitchfork.Analyze(core.New(c.Prog), pitchfork.Options{Bound: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SecretFree() {
		t.Fatalf("fenced gadget must be clean: %s", rep.Summary())
	}
}

func TestRecursionUnsupportedButCallChainsWork(t *testing.T) {
	// Deep (non-recursive) call chains exercise the stack machinery.
	src := `
public out;
fn f1() { return 1; }
fn f2() { return f1() + 1; }
fn f3() { return f2() + 1; }
fn f4() { return f3() + 1; }
fn main() { out = f4(); }`
	c, m := runMain(t, src, ModeC)
	if got := global(t, c, m, "out", 0); got.W != 4 {
		t.Fatalf("out = %v, want 4", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeC.String() != "c" || ModeFaCT.String() != "fact" {
		t.Fatal("mode names")
	}
}

func TestHexAndCommentLexing(t *testing.T) {
	src := `
// leading comment
public out;
fn main() {
  out = 0x10 + 2; // trailing comment
}`
	c, m := runMain(t, src, ModeC)
	if got := global(t, c, m, "out", 0); got.W != 18 {
		t.Fatalf("out = %v, want 18", got)
	}
}
