package ct

import "pitchfork/internal/mem"

// Program is a parsed CTL compilation unit: global declarations and
// function definitions. Execution starts at the function named main.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a module-level scalar or array with a secrecy
// label, e.g. `secret key[4];` or `public len = 5;`.
type GlobalDecl struct {
	Name  string
	Label mem.Label
	IsArr bool
	Size  uint64   // array length (1 for scalars)
	Init  []uint64 // optional initializer words
	Line  int
}

// FuncDecl defines a function. Parameters carry labels; the return
// label is inferred as the join of returned expressions.
type FuncDecl struct {
	Name   string
	Params []Param
	Body   []Stmt
	Line   int
}

// Param is a function parameter.
type Param struct {
	Name  string
	Label mem.Label
}

// Stmt is a CTL statement.
type Stmt interface{ stmtNode() }

// VarStmt declares a local: `var x = e;`.
type VarStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt assigns a scalar: `x = e;`.
type AssignStmt struct {
	Name string
	Val  Expr
	Line int
}

// StoreStmt assigns an array element: `a[i] = e;`.
type StoreStmt struct {
	Arr  string
	Idx  Expr
	Val  Expr
	Line int
}

// IfStmt is `if (c) {…} else {…}` (else optional).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is `while (c) {…}`.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ReturnStmt is `return e;` (expression optional).
type ReturnStmt struct {
	Val  Expr
	Line int
}

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

// FenceStmt is the `fence;` intrinsic: a speculation barrier.
type FenceStmt struct{ Line int }

func (*VarStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*StoreStmt) stmtNode()  {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*FenceStmt) stmtNode()  {}

// Expr is a CTL expression.
type Expr interface{ exprNode() }

// NumExpr is an integer literal.
type NumExpr struct {
	Val  uint64
	Line int
}

// IdentExpr references a scalar variable or parameter.
type IdentExpr struct {
	Name string
	Line int
}

// IndexExpr reads an array element: `a[i]`.
type IndexExpr struct {
	Arr  string
	Idx  Expr
	Line int
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string
	X, Y Expr
	Line int
}

// UnExpr is a unary operation: `-x`, `~x`, `!x`.
type UnExpr struct {
	Op   string
	X    Expr
	Line int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*NumExpr) exprNode()   {}
func (*IdentExpr) exprNode() {}
func (*IndexExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*CallExpr) exprNode()  {}
