// Package ct implements CTL, a small C-like language with secrecy
// type qualifiers, and its compiler to the speculative machine's ISA.
//
// CTL stands in for the two toolchains of the paper's evaluation
// (§4.2): the same source compiles under two backends —
//
//   - ModeC compiles control flow to real branches, like the C
//     implementations of the case studies (clang output);
//   - ModeFaCT compiles secret-condition control flow to straight-line
//     constant-time selects, reproducing the transformation the FaCT
//     compiler applies (Fig. 10's "transforms the branch … into
//     straight-line constant-time code").
//
// This is what lets Table 2's C-vs-FaCT columns be regenerated from a
// single source per case study.
package ct

import (
	"fmt"
	"unicode"
)

// tokKind discriminates lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct   // operators and punctuation
	tokKeyword // fn, var, if, else, while, return, secret, public, fence
)

var keywords = map[string]bool{
	"fn": true, "var": true, "if": true, "else": true, "while": true,
	"return": true, "secret": true, "public": true, "fence": true,
}

type token struct {
	kind tokKind
	text string
	num  uint64
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes CTL source.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// Error is a positioned compile error.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("ct: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextRune() rune {
	r := l.peekRune()
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// twoCharPunct lists the multi-rune operators, longest match first.
var twoCharPunct = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func (l *lexer) lex() ([]token, error) {
	var toks []token
	for {
		for {
			r := l.peekRune()
			if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
				l.nextRune()
				continue
			}
			// Line comments.
			if r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
				for l.peekRune() != '\n' && l.peekRune() != 0 {
					l.nextRune()
				}
				continue
			}
			break
		}
		line, col := l.line, l.col
		r := l.peekRune()
		switch {
		case r == 0:
			toks = append(toks, token{kind: tokEOF, line: line, col: col})
			return toks, nil
		case unicode.IsLetter(r) || r == '_':
			var text []rune
			for unicode.IsLetter(l.peekRune()) || unicode.IsDigit(l.peekRune()) || l.peekRune() == '_' {
				text = append(text, l.nextRune())
			}
			kind := tokIdent
			if keywords[string(text)] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: string(text), line: line, col: col})
		case unicode.IsDigit(r):
			var text []rune
			for unicode.IsDigit(l.peekRune()) || isHexish(l.peekRune()) {
				text = append(text, l.nextRune())
			}
			var n uint64
			var err error
			n, err = parseNumber(string(text))
			if err != nil {
				return nil, l.errf(line, col, "bad number %q", string(text))
			}
			toks = append(toks, token{kind: tokNumber, text: string(text), num: n, line: line, col: col})
		default:
			matched := false
			for _, p := range twoCharPunct {
				if l.pos+1 < len(l.src) && string(l.src[l.pos:l.pos+2]) == p {
					l.nextRune()
					l.nextRune()
					toks = append(toks, token{kind: tokPunct, text: p, line: line, col: col})
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch r {
			case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=', '(', ')', '{', '}', '[', ']', ',', ';':
				l.nextRune()
				toks = append(toks, token{kind: tokPunct, text: string(r), line: line, col: col})
			default:
				return nil, l.errf(line, col, "unexpected character %q", string(r))
			}
		}
	}
}

func isHexish(r rune) bool {
	return (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F') || r == 'x' || r == 'X'
}

func parseNumber(s string) (uint64, error) {
	var n uint64
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		for _, c := range s[2:] {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return 0, fmt.Errorf("bad hex digit %q", c)
			}
			n = n*16 + d
		}
		return n, nil
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		n = n*10 + uint64(c-'0')
	}
	return n, nil
}
