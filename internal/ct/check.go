package ct

import (
	"fmt"

	"pitchfork/internal/mem"
)

// labels is the result of the flow-insensitive label analysis: the
// static secrecy label of every global, local (per function), and
// function return value. Labels are computed as a fixpoint of joins,
// which is what the FaCT backend consults to decide which control flow
// must be linearized.
type labels struct {
	global map[string]mem.Label
	local  map[string]map[string]mem.Label // func → var → label
	ret    map[string]mem.Label
	funcs  map[string]*FuncDecl
	arrays map[string]*GlobalDecl
}

// analyze resolves names and computes the label fixpoint.
func analyze(p *Program) (*labels, error) {
	lb := &labels{
		global: make(map[string]mem.Label),
		local:  make(map[string]map[string]mem.Label),
		ret:    make(map[string]mem.Label),
		funcs:  make(map[string]*FuncDecl),
		arrays: make(map[string]*GlobalDecl),
	}
	for _, g := range p.Globals {
		if _, dup := lb.global[g.Name]; dup {
			return nil, &Error{Line: g.Line, Msg: "duplicate global " + g.Name}
		}
		lb.global[g.Name] = g.Label
		lb.arrays[g.Name] = g
	}
	for _, f := range p.Funcs {
		if _, dup := lb.funcs[f.Name]; dup {
			return nil, &Error{Line: f.Line, Msg: "duplicate function " + f.Name}
		}
		if _, clash := lb.global[f.Name]; clash {
			return nil, &Error{Line: f.Line, Msg: "function name collides with global: " + f.Name}
		}
		lb.funcs[f.Name] = f
		lb.local[f.Name] = make(map[string]mem.Label)
		for _, prm := range f.Params {
			lb.local[f.Name][prm.Name] = prm.Label
		}
		lb.ret[f.Name] = mem.Public
	}
	main, ok := lb.funcs["main"]
	if !ok {
		return nil, &Error{Msg: "no main function"}
	}
	if len(main.Params) != 0 {
		return nil, &Error{Line: main.Line, Msg: "main must take no parameters"}
	}
	// Name resolution + label fixpoint. The lattice is finite and
	// joins are monotone, so iteration to a cap is a fixpoint check.
	for iter := 0; ; iter++ {
		if iter > 64 {
			return nil, &Error{Msg: "label analysis did not converge"}
		}
		changed := false
		for _, f := range p.Funcs {
			c, err := lb.scanFunc(f)
			if err != nil {
				return nil, err
			}
			changed = changed || c
		}
		if !changed {
			return lb, nil
		}
	}
}

func (lb *labels) scanFunc(f *FuncDecl) (bool, error) {
	sc := &scanner{lb: lb, fn: f}
	if err := sc.stmts(f.Body); err != nil {
		return false, err
	}
	return sc.changed, nil
}

type scanner struct {
	lb      *labels
	fn      *FuncDecl
	changed bool
}

func (s *scanner) raiseLocal(name string, l mem.Label) {
	cur := s.lb.local[s.fn.Name][name]
	if cur.Join(l) != cur {
		s.lb.local[s.fn.Name][name] = cur.Join(l)
		s.changed = true
	}
}

func (s *scanner) stmts(body []Stmt) error {
	for _, st := range body {
		if err := s.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *scanner) stmt(st Stmt) error {
	switch n := st.(type) {
	case *VarStmt:
		l, err := s.expr(n.Init)
		if err != nil {
			return err
		}
		if _, exists := s.lb.local[s.fn.Name][n.Name]; !exists {
			s.lb.local[s.fn.Name][n.Name] = mem.Public
			s.changed = true
		}
		s.raiseLocal(n.Name, l)
	case *AssignStmt:
		l, err := s.expr(n.Val)
		if err != nil {
			return err
		}
		if _, isLocal := s.lb.local[s.fn.Name][n.Name]; isLocal {
			s.raiseLocal(n.Name, l)
			return nil
		}
		if g, isGlobal := s.lb.arrays[n.Name]; isGlobal {
			if g.IsArr {
				return &Error{Line: n.Line, Msg: "cannot assign whole array " + n.Name}
			}
			return nil
		}
		return &Error{Line: n.Line, Msg: "undeclared variable " + n.Name}
	case *StoreStmt:
		g, ok := s.lb.arrays[n.Arr]
		if !ok || !g.IsArr {
			return &Error{Line: n.Line, Msg: n.Arr + " is not an array"}
		}
		if _, err := s.expr(n.Idx); err != nil {
			return err
		}
		if _, err := s.expr(n.Val); err != nil {
			return err
		}
	case *IfStmt:
		if _, err := s.expr(n.Cond); err != nil {
			return err
		}
		if err := s.stmts(n.Then); err != nil {
			return err
		}
		return s.stmts(n.Else)
	case *WhileStmt:
		if _, err := s.expr(n.Cond); err != nil {
			return err
		}
		return s.stmts(n.Body)
	case *ReturnStmt:
		if n.Val == nil {
			return nil
		}
		l, err := s.expr(n.Val)
		if err != nil {
			return err
		}
		cur := s.lb.ret[s.fn.Name]
		if cur.Join(l) != cur {
			s.lb.ret[s.fn.Name] = cur.Join(l)
			s.changed = true
		}
	case *ExprStmt:
		_, err := s.expr(n.X)
		return err
	case *FenceStmt:
	default:
		return &Error{Msg: fmt.Sprintf("unknown statement %T", st)}
	}
	return nil
}

func (s *scanner) expr(e Expr) (mem.Label, error) {
	switch n := e.(type) {
	case *NumExpr:
		return mem.Public, nil
	case *IdentExpr:
		if l, ok := s.lb.local[s.fn.Name][n.Name]; ok {
			return l, nil
		}
		if g, ok := s.lb.arrays[n.Name]; ok {
			if g.IsArr {
				return mem.Public, &Error{Line: n.Line, Msg: n.Name + " is an array; index it"}
			}
			return g.Label, nil
		}
		return mem.Public, &Error{Line: n.Line, Msg: "undeclared variable " + n.Name}
	case *IndexExpr:
		g, ok := s.lb.arrays[n.Arr]
		if !ok || !g.IsArr {
			return mem.Public, &Error{Line: n.Line, Msg: n.Arr + " is not an array"}
		}
		il, err := s.expr(n.Idx)
		if err != nil {
			return mem.Public, err
		}
		return g.Label.Join(il), nil
	case *BinExpr:
		xl, err := s.expr(n.X)
		if err != nil {
			return mem.Public, err
		}
		yl, err := s.expr(n.Y)
		if err != nil {
			return mem.Public, err
		}
		return xl.Join(yl), nil
	case *UnExpr:
		return s.expr(n.X)
	case *CallExpr:
		f, ok := s.lb.funcs[n.Name]
		if !ok {
			return mem.Public, &Error{Line: n.Line, Msg: "undeclared function " + n.Name}
		}
		if len(n.Args) != len(f.Params) {
			return mem.Public, &Error{Line: n.Line, Msg: fmt.Sprintf("%s expects %d arguments, got %d", n.Name, len(f.Params), len(n.Args))}
		}
		for _, a := range n.Args {
			if _, err := s.expr(a); err != nil {
				return mem.Public, err
			}
		}
		return s.lb.ret[n.Name], nil
	}
	return mem.Public, &Error{Msg: fmt.Sprintf("unknown expression %T", e)}
}
