package ct

import (
	"pitchfork/internal/mem"
)

// Parse lexes and parses a CTL compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(text string) bool {
	t := p.peek()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	if !p.at(text) {
		t := p.peek()
		return t, &Error{Line: t.line, Col: t.col, Msg: "expected " + text + ", found " + t.String()}
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return t, &Error{Line: t.line, Col: t.col, Msg: "expected identifier, found " + t.String()}
	}
	return p.next(), nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.peek().kind != tokEOF {
		switch {
		case p.at("secret") || p.at("public"):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.at("fn"):
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			t := p.peek()
			return nil, &Error{Line: t.line, Col: t.col, Msg: "expected declaration, found " + t.String()}
		}
	}
	return prog, nil
}

func (p *parser) parseGlobal() (*GlobalDecl, error) {
	qual := p.next() // secret | public
	label := mem.Public
	if qual.text == "secret" {
		label = mem.Secret
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.text, Label: label, Size: 1, Line: qual.line}
	if p.accept("[") {
		sz := p.peek()
		if sz.kind != tokNumber {
			return nil, &Error{Line: sz.line, Col: sz.col, Msg: "expected array size"}
		}
		p.next()
		if sz.num == 0 {
			return nil, &Error{Line: sz.line, Col: sz.col, Msg: "array size must be positive"}
		}
		g.IsArr = true
		g.Size = sz.num
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if p.accept("{") {
			for {
				v := p.peek()
				if v.kind != tokNumber {
					return nil, &Error{Line: v.line, Col: v.col, Msg: "expected initializer number"}
				}
				p.next()
				g.Init = append(g.Init, v.num)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect("}"); err != nil {
				return nil, err
			}
		} else {
			v := p.peek()
			if v.kind != tokNumber {
				return nil, &Error{Line: v.line, Col: v.col, Msg: "expected initializer number"}
			}
			p.next()
			g.Init = []uint64{v.num}
		}
	}
	if uint64(len(g.Init)) > g.Size {
		return nil, &Error{Line: g.Line, Msg: "too many initializers for " + g.Name}
	}
	_, err = p.expect(";")
	return g, err
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	fnTok := p.next() // fn
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.text, Line: fnTok.line}
	for !p.at(")") {
		label := mem.Public
		if p.accept("secret") {
			label = mem.Secret
		} else {
			p.accept("public")
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, Param{Name: pn.text, Label: label})
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at("}") {
		if p.peek().kind == tokEOF {
			t := p.peek()
			return nil, &Error{Line: t.line, Col: t.col, Msg: "unterminated block"}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case p.at("var"):
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.text, Init: init, Line: t.line}, nil

	case p.at("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept("else") {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.line}, nil

	case p.at("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil

	case p.at("return"):
		p.next()
		var val Expr
		if !p.at(";") {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: val, Line: t.line}, nil

	case p.at("fence"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &FenceStmt{Line: t.line}, nil
	}

	// Assignment, array store, or expression statement.
	if t.kind == tokIdent {
		name := p.next()
		switch {
		case p.accept("="):
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.text, Val: val, Line: t.line}, nil
		case p.at("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			if _, err := p.expect("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			return &StoreStmt{Arr: name.text, Idx: idx, Val: val, Line: t.line}, nil
		case p.at("("):
			// Call statement: rewind to parse as an expression.
			p.pos--
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			return &ExprStmt{X: x, Line: t.line}, nil
		}
		return nil, &Error{Line: t.line, Col: t.col, Msg: "expected statement after identifier " + name.text}
	}
	return nil, &Error{Line: t.line, Col: t.col, Msg: "expected statement, found " + t.String()}
}

// Binary operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.at(op) {
				t := p.next()
				y, err := p.parseBin(level + 1)
				if err != nil {
					return nil, err
				}
				x = &BinExpr{Op: op, X: x, Y: y, Line: t.line}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if p.at("-") || p.at("~") || p.at("!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &NumExpr{Val: t.num, Line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		switch {
		case p.at("("):
			p.next()
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.at(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		case p.at("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Arr: t.text, Idx: idx, Line: t.line}, nil
		}
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	case p.at("("):
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(")")
		return x, err
	}
	return nil, &Error{Line: t.line, Col: t.col, Msg: "expected expression, found " + t.String()}
}
