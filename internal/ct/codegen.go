package ct

import (
	"fmt"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Mode selects the backend.
type Mode uint8

const (
	// ModeC compiles all control flow to branches, like the C
	// implementations of the paper's case studies.
	ModeC Mode = iota
	// ModeFaCT linearizes secret-condition branches into constant-time
	// selects and rejects secret-dependent loops and memory indices,
	// reproducing the FaCT compiler's transformation.
	ModeFaCT
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeFaCT {
		return "fact"
	}
	return "c"
}

// Memory layout constants: globals from GlobalBase, the call stack
// descending from StackTop.
const (
	GlobalBase isa.Addr = 0x1000
	StackTop   isa.Addr = 0x8FFF
	stackWords          = 256
)

// Compiled is a compilation result.
type Compiled struct {
	Prog       *isa.Program
	Mode       Mode
	GlobalAddr map[string]isa.Addr
	FuncEntry  map[string]isa.Addr
	RetReg     map[string]isa.Reg
	// LocalReg maps function → variable/parameter → register; exposed
	// so post-compilation passes (register coalescing, binary-level
	// analyses) can locate variables in the generated code.
	LocalReg map[string]map[string]isa.Reg
}

// Compile parses, checks, and compiles a CTL source under the mode.
func Compile(src string, mode Mode) (*Compiled, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	lb, err := analyze(ast)
	if err != nil {
		return nil, err
	}
	cg := &codegen{
		ast:     ast,
		lb:      lb,
		mode:    mode,
		regs:    make(map[string]map[string]isa.Reg),
		retRegs: make(map[string]isa.Reg),
		gaddr:   make(map[string]isa.Addr),
		entries: make(map[string]isa.Addr),
		nextReg: 10,
	}
	return cg.run()
}

// codegen holds backend state. Register allocation is global and
// never reuses registers across variables, which rules out recursion
// (functions have a single activation's worth of registers); the
// in-memory call stack still carries return addresses, so the
// speculative return machinery behaves exactly like the paper's.
type codegen struct {
	ast     *Program
	lb      *labels
	mode    Mode
	instrs  []isa.Instr // instruction at program point i+1
	regs    map[string]map[string]isa.Reg
	retRegs map[string]isa.Reg
	gaddr   map[string]isa.Addr
	entries map[string]isa.Addr
	nextReg isa.Reg
	curFn   *FuncDecl
	// callPatches maps instruction indices to callee names, fixed up
	// once every function has an entry point.
	callPatches map[int]string
}

func (cg *codegen) freshReg() isa.Reg {
	r := cg.nextReg
	cg.nextReg++
	if cg.nextReg >= 0xFF00 {
		panic("ct: register space exhausted")
	}
	return r
}

func (cg *codegen) here() isa.Addr { return isa.Addr(len(cg.instrs) + 1) }

func (cg *codegen) emit(in isa.Instr) int {
	cg.instrs = append(cg.instrs, in)
	return len(cg.instrs) - 1
}

// run drives compilation: layout globals, emit the entry stub, then
// every function, then patch calls and branch placeholders.
func (cg *codegen) run() (*Compiled, error) {
	cg.callPatches = make(map[int]string)

	// Global layout.
	addr := GlobalBase
	for _, g := range cg.ast.Globals {
		cg.gaddr[g.Name] = addr
		addr += isa.Addr(g.Size)
	}

	// Entry stub: initialize the stack pointer, call main, halt.
	// Program point 0 never holds an instruction, so returning there
	// halts the machine.
	cg.emit(isa.Op(mem.RSP, isa.OpMov, []isa.Operand{isa.ImmW(mem.Word(StackTop))}, 2))
	callIdx := cg.emit(isa.Call(0, 0)) // callee patched below
	cg.callPatches[callIdx] = "main"

	// Preallocate parameter and return registers so calls to
	// later-declared functions resolve.
	for _, f := range cg.ast.Funcs {
		cg.regs[f.Name] = make(map[string]isa.Reg)
		for _, p := range f.Params {
			cg.regs[f.Name][p.Name] = cg.freshReg()
		}
		cg.retRegs[f.Name] = cg.freshReg()
	}

	// Functions.
	for _, f := range cg.ast.Funcs {
		cg.curFn = f
		cg.entries[f.Name] = cg.here()
		if err := cg.stmts(f.Body, nil); err != nil {
			return nil, err
		}
		cg.emit(isa.Ret())
	}

	// Patch call targets.
	for idx, name := range cg.callPatches {
		entry, ok := cg.entries[name]
		if !ok {
			return nil, &Error{Msg: "undefined function " + name}
		}
		cg.instrs[idx].Callee = entry
	}

	// Assemble the program.
	prog := isa.NewProgram(1)
	for i, in := range cg.instrs {
		prog.Add(isa.Addr(i+1), in)
	}
	for _, g := range cg.ast.Globals {
		base := cg.gaddr[g.Name]
		for i := uint64(0); i < g.Size; i++ {
			w := mem.Word(0)
			if i < uint64(len(g.Init)) {
				w = g.Init[i]
			}
			prog.SetData(base+isa.Addr(i), mem.V(w, g.Label))
		}
		prog.Define(g.Name, base)
	}
	for i := isa.Addr(0); i < stackWords; i++ {
		prog.SetData(StackTop-i, mem.Pub(0))
	}
	for name, entry := range cg.entries {
		prog.Define(name, entry)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("ct: internal: generated invalid program: %w", err)
	}
	return &Compiled{
		Prog:       prog,
		Mode:       cg.mode,
		GlobalAddr: cg.gaddr,
		FuncEntry:  cg.entries,
		RetReg:     cg.retRegs,
		LocalReg:   cg.regs,
	}, nil
}

// secretMask is the linearization context inside ModeFaCT secret
// branches: assignments become selects guarded by cond.
type secretMask struct {
	cond isa.Operand // nonzero ⇔ the guarded branch is taken
}

func (cg *codegen) stmts(body []Stmt, mask *secretMask) error {
	for _, st := range body {
		if err := cg.stmt(st, mask); err != nil {
			return err
		}
	}
	return nil
}

func (cg *codegen) stmt(st Stmt, mask *secretMask) error {
	switch n := st.(type) {
	case *VarStmt:
		val, err := cg.expr(n.Init)
		if err != nil {
			return err
		}
		r, exists := cg.regs[cg.curFn.Name][n.Name]
		if !exists {
			r = cg.freshReg()
			cg.regs[cg.curFn.Name][n.Name] = r
		}
		// Declarations under a secret mask execute unconditionally:
		// the variable is dead outside the (textual) branch, and every
		// observable effect of its uses is select-guarded downstream.
		cg.emit(isa.Op(r, isa.OpMov, []isa.Operand{val}, cg.here()+1))
		return nil

	case *AssignStmt:
		val, err := cg.expr(n.Val)
		if err != nil {
			return err
		}
		if r, isLocal := cg.regs[cg.curFn.Name][n.Name]; isLocal {
			if mask != nil {
				cg.emit(isa.Op(r, isa.OpSelect, []isa.Operand{mask.cond, val, isa.R(r)}, cg.here()+1))
			} else {
				cg.emit(isa.Op(r, isa.OpMov, []isa.Operand{val}, cg.here()+1))
			}
			return nil
		}
		a := cg.gaddr[n.Name]
		if mask != nil {
			cur := cg.freshReg()
			cg.emit(isa.Load(cur, []isa.Operand{isa.ImmW(mem.Word(a))}, cg.here()+1))
			sel := cg.freshReg()
			cg.emit(isa.Op(sel, isa.OpSelect, []isa.Operand{mask.cond, val, isa.R(cur)}, cg.here()+1))
			val = isa.R(sel)
		}
		cg.emit(isa.Store(val, []isa.Operand{isa.ImmW(mem.Word(a))}, cg.here()+1))
		return nil

	case *StoreStmt:
		if cg.mode == ModeFaCT {
			if l, _ := cg.exprLabel(n.Idx); l.IsSecret() {
				return &Error{Line: n.Line, Msg: "fact mode: secret array index in store to " + n.Arr}
			}
		}
		idx, err := cg.expr(n.Idx)
		if err != nil {
			return err
		}
		val, err := cg.expr(n.Val)
		if err != nil {
			return err
		}
		base := isa.ImmW(mem.Word(cg.gaddr[n.Arr]))
		if mask != nil {
			// Constant-time read-modify-write: the same cell is
			// accessed whichever way the secret goes.
			cur := cg.freshReg()
			cg.emit(isa.Load(cur, []isa.Operand{base, idx}, cg.here()+1))
			sel := cg.freshReg()
			cg.emit(isa.Op(sel, isa.OpSelect, []isa.Operand{mask.cond, val, isa.R(cur)}, cg.here()+1))
			val = isa.R(sel)
		}
		cg.emit(isa.Store(val, []isa.Operand{base, idx}, cg.here()+1))
		return nil

	case *IfStmt:
		condLabel, _ := cg.exprLabel(n.Cond)
		if cg.mode == ModeFaCT && (condLabel.IsSecret() || mask != nil) {
			return cg.linearizeIf(n, mask)
		}
		return cg.branchIf(n, mask)

	case *WhileStmt:
		if cg.mode == ModeFaCT {
			if l, _ := cg.exprLabel(n.Cond); l.IsSecret() {
				return &Error{Line: n.Line, Msg: "fact mode: secret loop condition"}
			}
			if mask != nil {
				return &Error{Line: n.Line, Msg: "fact mode: loop under secret branch"}
			}
		}
		head := cg.here()
		cond, err := cg.expr(n.Cond)
		if err != nil {
			return err
		}
		brIdx := cg.emit(isa.Br(isa.OpNe, []isa.Operand{cond, isa.ImmW(0)}, 0, 0))
		cg.instrs[brIdx].True = cg.here()
		if err := cg.stmts(n.Body, mask); err != nil {
			return err
		}
		// Unconditional back edge.
		cg.emit(isa.Br(isa.OpEq, []isa.Operand{isa.ImmW(0), isa.ImmW(0)}, head, head))
		cg.instrs[brIdx].False = cg.here()
		return nil

	case *ReturnStmt:
		if cg.mode == ModeFaCT && mask != nil {
			return &Error{Line: n.Line, Msg: "fact mode: return under secret branch"}
		}
		if n.Val != nil {
			val, err := cg.expr(n.Val)
			if err != nil {
				return err
			}
			cg.emit(isa.Op(cg.retRegs[cg.curFn.Name], isa.OpMov, []isa.Operand{val}, cg.here()+1))
		}
		cg.emit(isa.Ret())
		return nil

	case *ExprStmt:
		if cg.mode == ModeFaCT && mask != nil {
			return &Error{Line: n.Line, Msg: "fact mode: call under secret branch"}
		}
		_, err := cg.expr(n.X)
		return err

	case *FenceStmt:
		cg.emit(isa.Fence(cg.here() + 1))
		return nil
	}
	return &Error{Msg: fmt.Sprintf("unknown statement %T", st)}
}

// branchIf compiles an if with real branches (ModeC always; ModeFaCT
// for public conditions).
func (cg *codegen) branchIf(n *IfStmt, mask *secretMask) error {
	cond, err := cg.expr(n.Cond)
	if err != nil {
		return err
	}
	brIdx := cg.emit(isa.Br(isa.OpNe, []isa.Operand{cond, isa.ImmW(0)}, 0, 0))
	cg.instrs[brIdx].True = cg.here()
	if err := cg.stmts(n.Then, mask); err != nil {
		return err
	}
	if len(n.Else) == 0 {
		cg.instrs[brIdx].False = cg.here()
		return nil
	}
	// Jump over the else arm.
	skipIdx := cg.emit(isa.Br(isa.OpEq, []isa.Operand{isa.ImmW(0), isa.ImmW(0)}, 0, 0))
	cg.instrs[brIdx].False = cg.here()
	if err := cg.stmts(n.Else, mask); err != nil {
		return err
	}
	cg.instrs[skipIdx].True = cg.here()
	cg.instrs[skipIdx].False = cg.here()
	return nil
}

// linearizeIf compiles a secret-condition if into straight-line code:
// both arms execute, assignments are select-guarded — the FaCT
// transformation of Fig. 10.
func (cg *codegen) linearizeIf(n *IfStmt, outer *secretMask) error {
	cond, err := cg.expr(n.Cond)
	if err != nil {
		return err
	}
	// Normalize to 0/1 and conjoin with any outer mask.
	c := cg.freshReg()
	cg.emit(isa.Op(c, isa.OpNe, []isa.Operand{cond, isa.ImmW(0)}, cg.here()+1))
	if outer != nil {
		cg.emit(isa.Op(c, isa.OpAnd, []isa.Operand{isa.R(c), outer.cond}, cg.here()+1))
	}
	if err := cg.stmts(n.Then, &secretMask{cond: isa.R(c)}); err != nil {
		return err
	}
	if len(n.Else) == 0 {
		return nil
	}
	nc := cg.freshReg()
	cg.emit(isa.Op(nc, isa.OpEq, []isa.Operand{isa.R(c), isa.ImmW(0)}, cg.here()+1))
	if outer != nil {
		cg.emit(isa.Op(nc, isa.OpAnd, []isa.Operand{isa.R(nc), outer.cond}, cg.here()+1))
	}
	return cg.stmts(n.Else, &secretMask{cond: isa.R(nc)})
}

var binOps = map[string]isa.Opcode{
	"+": isa.OpAdd, "-": isa.OpSub, "*": isa.OpMul, "/": isa.OpDiv, "%": isa.OpMod,
	"&": isa.OpAnd, "|": isa.OpOr, "^": isa.OpXor, "<<": isa.OpShl, ">>": isa.OpShr,
	"<": isa.OpLt, "<=": isa.OpLe, ">": isa.OpGt, ">=": isa.OpGe,
	"==": isa.OpEq, "!=": isa.OpNe,
}

// expr emits code for an expression, returning the operand holding its
// value (a register or an immediate).
func (cg *codegen) expr(e Expr) (isa.Operand, error) {
	switch n := e.(type) {
	case *NumExpr:
		return isa.ImmW(n.Val), nil

	case *IdentExpr:
		if r, ok := cg.regs[cg.curFn.Name][n.Name]; ok {
			return isa.R(r), nil
		}
		a := cg.gaddr[n.Name]
		r := cg.freshReg()
		cg.emit(isa.Load(r, []isa.Operand{isa.ImmW(mem.Word(a))}, cg.here()+1))
		return isa.R(r), nil

	case *IndexExpr:
		if cg.mode == ModeFaCT {
			if l, _ := cg.exprLabel(n.Idx); l.IsSecret() {
				return isa.Operand{}, &Error{Line: n.Line, Msg: "fact mode: secret array index into " + n.Arr}
			}
		}
		idx, err := cg.expr(n.Idx)
		if err != nil {
			return isa.Operand{}, err
		}
		r := cg.freshReg()
		cg.emit(isa.Load(r, []isa.Operand{isa.ImmW(mem.Word(cg.gaddr[n.Arr])), idx}, cg.here()+1))
		return isa.R(r), nil

	case *BinExpr:
		switch n.Op {
		case "&&", "||":
			// Non-short-circuit boolean operators: both sides always
			// evaluate (CTL has no side-effecting expressions except
			// calls, which are statements in practice).
			x, err := cg.expr(n.X)
			if err != nil {
				return isa.Operand{}, err
			}
			y, err := cg.expr(n.Y)
			if err != nil {
				return isa.Operand{}, err
			}
			bx, by := cg.freshReg(), cg.freshReg()
			cg.emit(isa.Op(bx, isa.OpNe, []isa.Operand{x, isa.ImmW(0)}, cg.here()+1))
			cg.emit(isa.Op(by, isa.OpNe, []isa.Operand{y, isa.ImmW(0)}, cg.here()+1))
			r := cg.freshReg()
			op := isa.OpAnd
			if n.Op == "||" {
				op = isa.OpOr
			}
			cg.emit(isa.Op(r, op, []isa.Operand{isa.R(bx), isa.R(by)}, cg.here()+1))
			return isa.R(r), nil
		}
		op, ok := binOps[n.Op]
		if !ok {
			return isa.Operand{}, &Error{Line: n.Line, Msg: "unknown operator " + n.Op}
		}
		x, err := cg.expr(n.X)
		if err != nil {
			return isa.Operand{}, err
		}
		y, err := cg.expr(n.Y)
		if err != nil {
			return isa.Operand{}, err
		}
		r := cg.freshReg()
		cg.emit(isa.Op(r, op, []isa.Operand{x, y}, cg.here()+1))
		return isa.R(r), nil

	case *UnExpr:
		x, err := cg.expr(n.X)
		if err != nil {
			return isa.Operand{}, err
		}
		r := cg.freshReg()
		switch n.Op {
		case "-":
			cg.emit(isa.Op(r, isa.OpNeg, []isa.Operand{x}, cg.here()+1))
		case "~":
			cg.emit(isa.Op(r, isa.OpNot, []isa.Operand{x}, cg.here()+1))
		case "!":
			cg.emit(isa.Op(r, isa.OpEq, []isa.Operand{x, isa.ImmW(0)}, cg.here()+1))
		default:
			return isa.Operand{}, &Error{Line: n.Line, Msg: "unknown unary operator " + n.Op}
		}
		return isa.R(r), nil

	case *CallExpr:
		f := cg.lb.funcs[n.Name]
		// Evaluate arguments, then move them into the callee's
		// parameter registers.
		ops := make([]isa.Operand, len(n.Args))
		for i, a := range n.Args {
			o, err := cg.expr(a)
			if err != nil {
				return isa.Operand{}, err
			}
			ops[i] = o
		}
		for i, prm := range f.Params {
			cg.emit(isa.Op(cg.regs[n.Name][prm.Name], isa.OpMov, []isa.Operand{ops[i]}, cg.here()+1))
		}
		callIdx := cg.emit(isa.Call(0, cg.here()+1))
		cg.callPatches[callIdx] = n.Name
		// Copy the return value out immediately (the callee's return
		// register is clobbered by its next activation).
		r := cg.freshReg()
		cg.emit(isa.Op(r, isa.OpMov, []isa.Operand{isa.R(cg.retRegs[n.Name])}, cg.here()+1))
		return isa.R(r), nil
	}
	return isa.Operand{}, &Error{Msg: fmt.Sprintf("unknown expression %T", e)}
}

// exprLabel re-runs the analysis query for an expression in the
// current function (the fixpoint has already converged).
func (cg *codegen) exprLabel(e Expr) (mem.Label, error) {
	sc := &scanner{lb: cg.lb, fn: cg.curFn}
	return sc.expr(e)
}
