package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"pitchfork/internal/testcases"
	"pitchfork/spectre"
)

// corpusCase is one replayable submission: CTL corpora go over the
// wire as source text, gallery figures as the builder wire form — the
// two program forms the service accepts.
type corpusCase struct {
	name string
	prog *spectre.Program
	body []byte
}

func corpus(t *testing.T) []corpusCase {
	t.Helper()
	var out []corpusCase
	addSource := func(name, src string) {
		prog, err := spectre.CompileCTL(src, spectre.ModeC)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body, err := json.Marshal(AnalyzeRequest{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, corpusCase{name: name, prog: prog, body: body})
	}
	for _, c := range testcases.Kocher() {
		addSource(c.Name, c.Source())
	}
	for _, c := range testcases.SpecOnlyV1() {
		addSource(c.Name, c.Source())
	}
	for _, c := range testcases.V11() {
		addSource(c.Name, c.Source())
	}
	for _, f := range spectre.Gallery() {
		prog := f.Program()
		wire, err := json.Marshal(prog)
		if err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
		body, err := json.Marshal(AnalyzeRequest{Program: wire})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, corpusCase{name: f.ID, prog: prog, body: body})
	}
	return out
}

// normalizeReport strips the serving layer's provenance stamps so the
// wire report can be compared byte-for-byte against the library path.
func normalizeReport(t *testing.T, rep *spectre.Report) []byte {
	t.Helper()
	rep.SchemaVersion = ""
	rep.CacheHit = false
	rep.Coalesced = false
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCorpusReplayAcceptance is the PR's acceptance gate: replay the
// full corpora (Kocher + spec-only v1 + v1.1 + the paper gallery)
// against a live server twice at concurrency 8. Every verdict — both
// passes — must be byte-identical to the library path modulo the
// provenance stamps, and the second pass must be ≥95% cache hits.
func TestCorpusReplayAcceptance(t *testing.T) {
	cases := corpus(t)

	// The library path: the verdicts the service must reproduce
	// byte-for-byte. Default configuration (the same one the service
	// resolves for requests carrying no config).
	an, err := spectre.New()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte, len(cases))
	for _, c := range cases {
		rep, err := an.Run(context.Background(), c.prog)
		if err != nil {
			t.Fatalf("%s: library run: %v", c.name, err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		want[c.name] = raw
	}

	s := newTestServer(t, Config{Workers: 4, QueueDepth: 256, MemEntries: 1024, CacheDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for pass := 1; pass <= 2; pass++ {
		var hits atomic.Int64
		sem := make(chan struct{}, 8)
		var wg sync.WaitGroup
		for _, c := range cases {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				resp, raw := postAnalyze(t, ts.URL, c.body)
				if resp.StatusCode != 200 {
					t.Errorf("pass %d %s: status %d: %s", pass, c.name, resp.StatusCode, raw)
					return
				}
				env := decodeAnalyze(t, raw)
				if env.Report == nil {
					t.Errorf("pass %d %s: no report", pass, c.name)
					return
				}
				if env.Fingerprint != c.prog.Fingerprint() {
					t.Errorf("pass %d %s: fingerprint drifted", pass, c.name)
				}
				if env.Report.SchemaVersion != spectre.ReportSchemaVersion {
					t.Errorf("pass %d %s: schemaVersion %q, want %q",
						pass, c.name, env.Report.SchemaVersion, spectre.ReportSchemaVersion)
				}
				if env.Report.CacheHit || env.Report.Coalesced {
					hits.Add(1)
				}
				if got := normalizeReport(t, env.Report); !bytes.Equal(got, want[c.name]) {
					t.Errorf("pass %d %s: service verdict diverged from the library path\n got %s\nwant %s",
						pass, c.name, got, want[c.name])
				}
			}()
		}
		wg.Wait()
		if pass == 2 {
			rate := float64(hits.Load()) / float64(len(cases))
			if rate < 0.95 {
				t.Errorf("second-pass cache hit rate %.2f (%d/%d), want ≥ 0.95",
					rate, hits.Load(), len(cases))
			}
		}
	}

	stats := s.Stats()
	if stats.Analyses > int64(len(cases)) {
		t.Errorf("ran %d analyses for %d distinct programs over two passes", stats.Analyses, len(cases))
	}
	if stats.DiskErrors != 0 {
		t.Errorf("%d persistent-tier failures", stats.DiskErrors)
	}
}
