// Package serve is the analysis-as-a-service layer behind cmd/spectred:
// a verdict cache keyed by (program fingerprint, canonical options
// key), request coalescing for in-flight duplicates, a bounded worker
// pool with queue backpressure, and the versioned HTTP API that serves
// the spectre façade to CI-shaped traffic.
//
// The cache observation is Serberus's: Spectre checking as a pipeline
// stage sees highly repetitive traffic — the same program at the same
// configuration, submitted on every CI run — so verdicts keyed by
// content hash make the common case O(1). The two cache tiers split
// the latency/durability trade: an in-memory LRU answers the steady
// state, an on-disk tier survives restarts (a redeployed daemon starts
// warm). Coalescing covers the remaining repetitive case the cache
// cannot: N identical submissions in flight at once share one
// analysis.
package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Tier identifies where a cache read was answered.
type Tier int

const (
	// TierNone is a miss.
	TierNone Tier = iota
	// TierMem is an in-memory LRU hit.
	TierMem
	// TierDisk is a persistent-tier hit (promoted to memory on read).
	TierDisk
)

// Cache is the two-tier verdict cache. Keys are filename-safe strings
// (the server derives them from hex digests); values are opaque
// response bytes. The memory tier is a bounded LRU; the disk tier —
// enabled by a non-empty directory — holds every entry ever stored,
// written atomically, and is what makes verdicts survive a daemon
// restart. All methods are safe for concurrent use.
//
// The disk tier is best-effort: a failed write or unreadable file
// degrades to a miss (the analysis simply reruns) rather than failing
// the request; failures are counted for /statsz.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	cap     int
	dir     string

	diskErrs int64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache holding at most memEntries values in memory
// (minimum 1). A non-empty dir enables the persistent tier; the
// directory is created if needed.
func NewCache(memEntries int, dir string) (*Cache, error) {
	if memEntries < 1 {
		memEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &Cache{
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		cap:     memEntries,
		dir:     dir,
	}, nil
}

// Get returns the cached value for key and the tier that answered. A
// disk-tier hit is promoted into the memory tier.
func (c *Cache) Get(key string) ([]byte, Tier) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, TierMem
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, TierNone
	}
	val, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.mu.Lock()
			c.diskErrs++
			c.mu.Unlock()
		}
		return nil, TierNone
	}
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
	return val, TierDisk
}

// Put stores the value in both tiers.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	// Atomic publication: never let a reader (or a restarted daemon)
	// observe a torn entry.
	tmp := c.diskPath(key) + ".tmp"
	err := os.WriteFile(tmp, val, 0o644)
	if err == nil {
		err = os.Rename(tmp, c.diskPath(key))
	}
	if err != nil {
		os.Remove(tmp)
		c.mu.Lock()
		c.diskErrs++
		c.mu.Unlock()
	}
}

func (c *Cache) insertLocked(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Keys returns every key present in either tier — how the server
// rebuilds its fingerprint index after a restart.
func (c *Cache) Keys() []string {
	seen := make(map[string]bool)
	var out []string
	c.mu.Lock()
	for k := range c.entries {
		seen[k] = true
		out = append(out, k)
	}
	c.mu.Unlock()
	if c.dir != "" {
		if names, err := os.ReadDir(c.dir); err == nil {
			for _, n := range names {
				key, ok := strings.CutSuffix(n.Name(), ".json")
				if !ok || seen[key] {
					continue
				}
				out = append(out, key)
			}
		}
	}
	return out
}

// MemLen returns the number of memory-tier entries.
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// DiskErrors returns the count of persistent-tier failures absorbed so
// far.
func (c *Cache) DiskErrors() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskErrs
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}
