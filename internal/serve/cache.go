// Package serve is the analysis-as-a-service layer behind cmd/spectred:
// a verdict cache keyed by (program fingerprint, canonical options
// key), request coalescing for in-flight duplicates, a bounded worker
// pool with queue backpressure, and the versioned HTTP API that serves
// the spectre façade to CI-shaped traffic.
//
// The cache observation is Serberus's: Spectre checking as a pipeline
// stage sees highly repetitive traffic — the same program at the same
// configuration, submitted on every CI run — so verdicts keyed by
// content hash make the common case O(1). The two cache tiers split
// the latency/durability trade: an in-memory LRU answers the steady
// state, an on-disk tier survives restarts (a redeployed daemon starts
// warm). Coalescing covers the remaining repetitive case the cache
// cannot: N identical submissions in flight at once share one
// analysis.
//
// The layer is built to lose availability to nothing: every failure
// class has a downgrade, not an error. A corrupt or truncated disk
// entry (every entry is sha256-framed and verified on read) is
// quarantined and treated as a miss; a disk I/O failure degrades to
// miss-and-analyze; repeated disk failures disable the persistent tier
// entirely (the daemon reports "degraded" but keeps serving from
// memory + analysis); a panicking analysis is recovered at the worker
// boundary and surfaced as a structured 500 without taking the daemon
// or any other request down. The disk tier is bounded by a byte budget
// with LRU eviction, so it can run unattended indefinitely.
package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Tier identifies where a cache read was answered.
type Tier int

const (
	// TierNone is a miss.
	TierNone Tier = iota
	// TierMem is an in-memory LRU hit.
	TierMem
	// TierDisk is a persistent-tier hit (promoted to memory on read).
	TierDisk
)

// diskMagic versions the on-disk entry framing. Every persisted entry
// is "diskMagic <sha256-hex> <payload-len>\n<payload>"; anything that
// fails to parse or verify is quarantined, never served.
const diskMagic = "spectrecache1"

// quarantineSuffix is appended to the file name of a corrupt entry.
// Quarantined files no longer end in the entry suffix, so Keys() and
// the startup scan skip them; they are kept (not deleted) so an
// operator can inspect what went wrong.
const quarantineSuffix = ".quarantined"

// diskFailureLimit is how many consecutive disk I/O failures disable
// the persistent tier for the rest of the process. Corruption does not
// count (a quarantined entry is handled, not failing); only read/write
// errors do, and any success resets the streak — so the tier dies only
// when the disk is persistently unhealthy, at which point continuing
// to hammer it buys nothing and the daemon honestly reports degraded.
const diskFailureLimit = 8

// Cache is the two-tier verdict cache. Keys are filename-safe strings
// (the server derives them from hex digests); values are opaque
// response bytes. The memory tier is a bounded LRU; the disk tier —
// enabled by a non-empty directory — persists entries with a sha256
// checksum frame, verified on every read, under an optional byte
// budget enforced by LRU eviction. All methods are safe for concurrent
// use.
//
// The disk tier is best-effort by construction: a failed write, an
// unreadable file, or a corrupt entry degrades to a miss (the analysis
// simply reruns) rather than failing the request. Corrupt entries are
// quarantined (renamed aside) so they are never served and never
// retried; I/O failures are counted, and diskFailureLimit consecutive
// ones disable the tier for the life of the process.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	cap     int
	dir     string

	// flt is the installed fault plan (nil in production). The cache
	// carries it so disk read/write and lookup hooks fire inside the
	// code paths they fault.
	flt *faults

	// Disk-tier index: an LRU over persisted entries with their framed
	// sizes, what the byte-budget GC evicts from. Guarded by dmu; file
	// I/O happens outside the lock, so a reader can race an eviction —
	// that window resolves to either a served (correct) value or a
	// miss, never a wrong value, and the test suite pins it.
	dmu     sync.Mutex
	dindex  map[string]*list.Element
	dlru    *list.List // front = most recently used
	dbytes  int64
	dbudget int64

	tmpSeq atomic.Uint64

	disabled   atomic.Bool
	consecFail atomic.Int64

	diskErrs    atomic.Int64
	quarantined atomic.Int64
	gcEvictions atomic.Int64
}

type cacheEntry struct {
	key string
	val []byte
}

type diskEntry struct {
	key  string
	size int64
}

// CacheStats snapshots the cache's health counters for /statsz.
type CacheStats struct {
	// DiskErrors counts persistent-tier I/O failures absorbed so far
	// (degraded to misses).
	DiskErrors int64
	// Quarantined counts corrupt or truncated entries renamed aside.
	Quarantined int64
	// GCEvictions counts entries removed by the byte-budget GC.
	GCEvictions int64
	// DiskBytes is the current persistent-tier footprint (framed bytes).
	DiskBytes int64
	// DiskDegraded reports whether repeated failures disabled the
	// persistent tier for the rest of the process.
	DiskDegraded bool
}

// NewCache builds a cache holding at most memEntries values in memory
// (minimum 1). A non-empty dir enables the persistent tier; the
// directory is created if needed, existing entries are scanned (sized,
// ordered by modification time) so the byte budget holds from startup,
// and diskBudget > 0 bounds the tier's total framed bytes with LRU
// eviction (0 means unbounded).
func NewCache(memEntries int, dir string, diskBudget int64) (*Cache, error) {
	if memEntries < 1 {
		memEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	c := &Cache{
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		cap:     memEntries,
		dir:     dir,
		dindex:  make(map[string]*list.Element),
		dlru:    list.New(),
		dbudget: diskBudget,
	}
	if dir != "" {
		c.scanDisk()
		c.gc()
	}
	return c, nil
}

// scanDisk rebuilds the disk-tier index from the directory: size every
// entry, order by modification time so the LRU starts with a sensible
// recency order (checksums are verified lazily, on first read). Files
// that aren't entries — quarantined, temporary, foreign — are ignored.
func (c *Cache) scanDisk() {
	names, err := os.ReadDir(c.dir)
	if err != nil {
		c.diskFailure()
		return
	}
	type scanned struct {
		key   string
		size  int64
		mtime int64
	}
	var found []scanned
	for _, n := range names {
		key, ok := strings.CutSuffix(n.Name(), ".json")
		if !ok {
			continue
		}
		info, err := n.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	c.dmu.Lock()
	defer c.dmu.Unlock()
	for _, f := range found { // ascending mtime: newest ends up at the front
		c.dindex[f.key] = c.dlru.PushFront(&diskEntry{key: f.key, size: f.size})
		c.dbytes += f.size
	}
}

// Get returns the cached value for key and the tier that answered. A
// disk-tier hit is checksum-verified and promoted into the memory
// tier; a corrupt entry is quarantined and answered as a miss.
func (c *Cache) Get(key string) ([]byte, Tier) {
	if c.flt.fire(siteCacheLookup) {
		return nil, TierNone
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, TierMem
	}
	c.mu.Unlock()
	if c.dir == "" || c.disabled.Load() {
		return nil, TierNone
	}
	path := c.diskPath(key)
	var data []byte
	var err error
	if c.flt.fire(siteDiskRead) {
		err = errInjectedIO
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		if os.IsNotExist(err) {
			// Evicted or never written: an ordinary miss, and any stale
			// index entry goes with it.
			c.dropDiskIndex(key)
		} else {
			c.diskFailure()
		}
		return nil, TierNone
	}
	val, ok := unframe(data)
	if !ok {
		c.quarantine(key, path)
		return nil, TierNone
	}
	c.diskOK()
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
	c.touchDisk(key, int64(len(data)))
	return val, TierDisk
}

// Put stores the value in both tiers and runs the byte-budget GC.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
	if c.dir == "" || c.disabled.Load() {
		return
	}
	data := frame(val)
	var err error
	if c.flt.fire(siteDiskWrite) {
		err = errInjectedIO
	} else {
		// Atomic publication through a unique temp name: never let a
		// reader (or a restarted daemon) observe a torn entry, and never
		// let two concurrent writers of the same key tear each other's
		// temp file.
		tmp := fmt.Sprintf("%s.tmp%d", c.diskPath(key), c.tmpSeq.Add(1))
		err = os.WriteFile(tmp, data, 0o644)
		if err == nil {
			err = os.Rename(tmp, c.diskPath(key))
		} else {
			os.Remove(tmp)
		}
	}
	if err != nil {
		c.diskFailure()
		return
	}
	c.diskOK()
	c.touchDisk(key, int64(len(data)))
	c.gc()
}

func (c *Cache) insertLocked(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// touchDisk records (or refreshes) a disk-tier index entry at the LRU
// front with its current framed size.
func (c *Cache) touchDisk(key string, size int64) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if el, ok := c.dindex[key]; ok {
		de := el.Value.(*diskEntry)
		c.dbytes += size - de.size
		de.size = size
		c.dlru.MoveToFront(el)
		return
	}
	c.dindex[key] = c.dlru.PushFront(&diskEntry{key: key, size: size})
	c.dbytes += size
}

// dropDiskIndex forgets a disk-tier entry (evicted, quarantined, or
// externally removed) without touching the file.
func (c *Cache) dropDiskIndex(key string) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if el, ok := c.dindex[key]; ok {
		c.dbytes -= el.Value.(*diskEntry).size
		c.dlru.Remove(el)
		delete(c.dindex, key)
	}
}

// gc evicts least-recently-used disk entries until the tier fits the
// byte budget. Victims are chosen under the index lock but removed
// outside it; a concurrent reader of a victim either finishes its read
// (serving a still-correct value) or sees not-exist (a miss).
func (c *Cache) gc() {
	if c.dbudget <= 0 {
		return
	}
	var victims []string
	c.dmu.Lock()
	for c.dbytes > c.dbudget && c.dlru.Len() > 0 {
		oldest := c.dlru.Back()
		de := oldest.Value.(*diskEntry)
		c.dlru.Remove(oldest)
		delete(c.dindex, de.key)
		c.dbytes -= de.size
		victims = append(victims, de.key)
	}
	c.dmu.Unlock()
	for _, key := range victims {
		os.Remove(c.diskPath(key))
		c.gcEvictions.Add(1)
	}
}

// quarantine renames a corrupt entry aside — it must never be served
// and never be retried, but an operator may want the bytes.
func (c *Cache) quarantine(key, path string) {
	c.quarantined.Add(1)
	os.Rename(path, path+quarantineSuffix) //nolint:errcheck // best-effort: a failed rename degrades to a reread next time
	c.dropDiskIndex(key)
}

// diskFailure counts one persistent-tier I/O failure; diskFailureLimit
// consecutive ones disable the tier for the rest of the process.
func (c *Cache) diskFailure() {
	c.diskErrs.Add(1)
	if c.consecFail.Add(1) >= diskFailureLimit {
		c.disabled.Store(true)
	}
}

// diskOK resets the consecutive-failure streak.
func (c *Cache) diskOK() {
	c.consecFail.Store(0)
}

// Keys returns every key present in either tier — how the server
// rebuilds its fingerprint index after a restart. Quarantined files no
// longer carry the entry suffix and are excluded.
func (c *Cache) Keys() []string {
	seen := make(map[string]bool)
	var out []string
	c.mu.Lock()
	for k := range c.entries {
		seen[k] = true
		out = append(out, k)
	}
	c.mu.Unlock()
	if c.dir != "" {
		if names, err := os.ReadDir(c.dir); err == nil {
			for _, n := range names {
				key, ok := strings.CutSuffix(n.Name(), ".json")
				if !ok || seen[key] {
					continue
				}
				out = append(out, key)
			}
		}
	}
	return out
}

// MemLen returns the number of memory-tier entries.
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats snapshots the cache's health counters.
func (c *Cache) Stats() CacheStats {
	c.dmu.Lock()
	dbytes := c.dbytes
	c.dmu.Unlock()
	return CacheStats{
		DiskErrors:   c.diskErrs.Load(),
		Quarantined:  c.quarantined.Load(),
		GCEvictions:  c.gcEvictions.Load(),
		DiskBytes:    dbytes,
		DiskDegraded: c.disabled.Load(),
	}
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// frame wraps a payload in the checksummed on-disk format.
func frame(val []byte) []byte {
	sum := sha256.Sum256(val)
	hdr := fmt.Sprintf("%s %x %d\n", diskMagic, sum, len(val))
	out := make([]byte, 0, len(hdr)+len(val))
	out = append(out, hdr...)
	return append(out, val...)
}

// unframe validates a framed entry and returns its payload. Any
// deviation — missing or malformed header, length mismatch (a
// truncated or padded file), checksum mismatch (bit rot, a torn or
// hand-edited file) — reports !ok.
func unframe(data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != diskMagic {
		return nil, false
	}
	wantSum, err := hex.DecodeString(fields[1])
	if err != nil || len(wantSum) != sha256.Size {
		return nil, false
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, false
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], wantSum) {
		return nil, false
	}
	return payload, true
}
