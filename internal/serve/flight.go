package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent work with equal keys: the first
// caller starts fn in its own goroutine, later callers with the same
// key share that one result. This is what turns N simultaneous
// identical submissions — the burst a CI fan-out produces before the
// cache has the verdict — into exactly one analysis.
//
// Cancellation is refcounted: the flight runs under its own context
// that stays live while any waiter remains, and is cancelled only when
// the last waiter's request context ends. One impatient client among N
// must not kill the analysis the other N-1 are waiting on; N impatient
// clients must not leave it running for nobody.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
	// wg tracks every flight-runner goroutine, so a draining server can
	// wait for them instead of leaking work past shutdown. Runners never
	// block indefinitely: their pool job either runs to completion
	// during pool drain or is refused admission, so wait() terminates.
	wg sync.WaitGroup
}

type flight struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	cancel  context.CancelFunc
}

// Do returns fn's result for key, running fn at most once per burst of
// concurrent callers. coalesced reports whether this caller joined a
// flight another caller started. If ctx ends before the flight
// completes, Do returns ctx.Err() immediately — and if this was the
// flight's last waiter, the flight context is cancelled so fn can stop.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (val []byte, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f, joined := g.m[key]
	if joined {
		f.waiters++
		g.mu.Unlock()
	} else {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		g.m[key] = f
		g.mu.Unlock()
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			val, err := fn(fctx)
			g.mu.Lock()
			if g.m[key] == f {
				delete(g.m, key)
			}
			f.val, f.err = val, err
			close(f.done)
			g.mu.Unlock()
			cancel()
		}()
	}

	select {
	case <-f.done:
		return f.val, joined, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		if last && g.m[key] == f {
			// Unmap the doomed flight so a fresh request starts a fresh
			// analysis instead of inheriting a cancelled one.
			delete(g.m, key)
		}
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, joined, ctx.Err()
	}
}

// wait blocks until every flight-runner goroutine has finished — the
// flight half of a graceful drain. Call after the pool has drained so
// no runner is still parked waiting for a worker.
func (g *flightGroup) wait() { g.wg.Wait() }
