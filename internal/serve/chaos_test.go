package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pitchfork/spectre"
)

// ---------------------------------------------------------------------
// Fault registry
// ---------------------------------------------------------------------

func TestFaultSpecParsing(t *testing.T) {
	if f, err := parseFaults(""); f != nil || err != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", f, err)
	}
	f, err := parseFaults("seed=7,engine=0.25,diskread=1,pooladmit=0.0")
	if err != nil {
		t.Fatal(err)
	}
	if f.seed != 7 {
		t.Errorf("seed = %d, want 7", f.seed)
	}
	if got := f.sites[siteEngine].rate; got != 0.25 {
		t.Errorf("engine rate = %v, want 0.25", got)
	}
	if f.fire(sitePoolAdmit) {
		t.Error("rate-0 site fired")
	}
	if f.fire(siteDiskWrite) {
		t.Error("unconfigured site fired")
	}
	if !f.fire(siteDiskRead) {
		t.Error("rate-1 site did not fire")
	}
	for _, bad := range []string{"engine", "engine=2", "engine=-0.1", "engine=x", "bogus=0.5", "seed=abc", "seed=-1"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	// nil plan: every hook is a silent no-op.
	var none *faults
	if none.fire(siteEngine) || none.injectedCount() != 0 {
		t.Error("nil plan fired")
	}
	none.disable() // must not panic
}

// TestFaultDeterminism: the whole point of the seedable registry —
// identical specs replay identical fault patterns, different seeds
// diverge.
func TestFaultDeterminism(t *testing.T) {
	sequence := func(spec string) []bool {
		t.Helper()
		f, err := parseFaults(spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 1000)
		for i := range out {
			out[i] = f.fire(siteEngine)
		}
		return out
	}
	a := sequence("seed=1,engine=0.3")
	b := sequence("seed=1,engine=0.3")
	c := sequence("seed=2,engine=0.3")
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("rate 0.3 fired %d/%d times", fires, len(a))
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault patterns")
	}
}

// ---------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------

// TestPanicIsolation is the tentpole's isolation contract: a panicking
// analysis yields a structured 500 with the stable engine_panic code to
// every coalesced waiter, the poisoned flight unmaps so identical
// retries run fresh, and the daemon — workers included — survives.
func TestPanicIsolation(t *testing.T) {
	const n = 8
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	release := make(chan struct{})
	first := make(chan struct{}, 1)
	s.runAnalysis = func(ctx context.Context, _ *spectre.Analyzer, _ *spectre.Program) (*spectre.Report, error) {
		select {
		case first <- struct{}{}:
			<-release
			panic("kaboom: synthetic engine bug")
		default:
			return stubReport(), nil
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := analyzeBody(t, tinySource(1))
	prog, err := spectre.CompileCTL(tinySource(1), spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	key := analyzeKey(prog.Fingerprint(), spectre.DefaultConfig().CacheKey())

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postAnalyze(t, ts.URL, body)
			results <- result{resp.StatusCode, raw}
		}()
	}
	// Hold the panic until every request is provably waiting on the one
	// flight, so the failure must fan out to all of them.
	waitFor(t, "all requests to join the flight", func() bool {
		return s.flights.waitersOf(key) == n
	})
	close(release)
	wg.Wait()
	close(results)

	for res := range results {
		if res.status != http.StatusInternalServerError {
			t.Fatalf("waiter got status %d, want 500; body %s", res.status, res.body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(res.body, &e); err != nil {
			t.Fatalf("error body %s: %v", res.body, err)
		}
		if e.Code != spectre.ErrCodeEnginePanic {
			t.Errorf("error code %q, want %q", e.Code, spectre.ErrCodeEnginePanic)
		}
		if !strings.Contains(e.Error, "panicked") {
			t.Errorf("error message %q does not mention the panic", e.Error)
		}
	}
	if got := s.Stats().Panics; got != 1 {
		t.Errorf("panics counter = %d, want 1 (one analysis, n waiters)", got)
	}

	// The poisoned flight must be unmapped: an identical retry starts a
	// fresh analysis and succeeds.
	resp, raw := postAnalyze(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after panic: status %d, body %s — poisoned flight wedged the key", resp.StatusCode, raw)
	}
	env := decodeAnalyze(t, raw)
	if env.Report.CacheHit || env.Report.Coalesced {
		t.Error("retry after panic was served a cached/coalesced failure")
	}

	// Both workers survived: two concurrent fresh analyses complete.
	var wg2 sync.WaitGroup
	for i := 2; i < 4; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if resp, _ := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(i))); resp.StatusCode != http.StatusOK {
				t.Errorf("post-panic request: status %d", resp.StatusCode)
			}
		}()
	}
	wg2.Wait()
}

// ---------------------------------------------------------------------
// Chaos replay
// ---------------------------------------------------------------------

// chaosPost retries one submission until it succeeds or the budget is
// exhausted — the in-process analogue of specload -retry.
func chaosPost(t *testing.T, url string, body []byte) ([]byte, error) {
	t.Helper()
	var last string
	for attempt := 0; attempt < 25; attempt++ {
		resp, raw := postAnalyze(t, url, body)
		if resp.StatusCode == http.StatusOK {
			return raw, nil
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode < 500 {
			return nil, fmt.Errorf("non-retryable status %d: %s", resp.StatusCode, raw)
		}
		last = fmt.Sprintf("status %d: %s", resp.StatusCode, raw)
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("retry budget exhausted; last: %s", last)
}

// TestChaosReplayConvergence is the chaos acceptance gate, in-process:
// replay the full corpus against a server with faults injected at all
// five sites — panics, disk I/O errors, lost cache lookups, refused
// admissions — plus real on-disk corruption introduced mid-run. The
// daemon must never crash, never serve a verdict that differs from the
// library path, keep the disk tier under budget, and converge to a
// clean, healthy service once the storm stops.
func TestChaosReplayConvergence(t *testing.T) {
	cases := corpus(t)

	an, err := spectre.New()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte, len(cases))
	for _, c := range cases {
		rep, err := an.Run(context.Background(), c.prog)
		if err != nil {
			t.Fatalf("%s: library run: %v", c.name, err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		want[c.name] = raw
	}

	flt, err := parseFaults("seed=11,engine=0.08,diskread=0.12,diskwrite=0.12,cachelookup=0.15,pooladmit=0.06")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const budget = int64(48 << 10)
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 64, MemEntries: 8, CacheDir: dir, DiskBytes: budget})
	s.setFaults(flt)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	replay := func(pass string, retry bool) {
		sem := make(chan struct{}, 8)
		var wg sync.WaitGroup
		for _, c := range cases {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				var raw []byte
				var err error
				if retry {
					raw, err = chaosPost(t, ts.URL, c.body)
				} else {
					resp, body := postAnalyze(t, ts.URL, c.body)
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					}
					raw = body
				}
				if err != nil {
					t.Errorf("%s pass %s: %v", pass, c.name, err)
					return
				}
				env := decodeAnalyze(t, raw)
				if got := normalizeReport(t, env.Report); !bytes.Equal(got, want[c.name]) {
					t.Errorf("%s pass %s: WRONG VERDICT under chaos\n got %s\nwant %s", pass, c.name, got, want[c.name])
				}
			}()
		}
		wg.Wait()
	}

	replay("storm-1", true)

	// Mid-storm, corrupt real cache files on disk: truncate some,
	// bit-flip others. Later passes must quarantine-or-miss, never
	// serve them.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mangled := 0
	for _, n := range names {
		if !strings.HasSuffix(n.Name(), ".json") || mangled >= 6 {
			continue
		}
		path := filepath.Join(dir, n.Name())
		data, err := os.ReadFile(path)
		if err != nil || len(data) < 8 {
			continue
		}
		if mangled%2 == 0 {
			data = data[:len(data)/2] // truncate
		} else {
			data[len(data)-1] ^= 0xFF // bit rot
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mangled++
	}
	if mangled == 0 {
		t.Fatal("chaos run persisted nothing to corrupt — the storm missed the disk tier")
	}

	replay("storm-2", true)
	replay("storm-3", true)

	if got := s.Stats().InjectedFaults; got == 0 {
		t.Error("chaos run injected zero faults — the storm was a no-op")
	}

	// Storm over: the service must converge to clean first-attempt
	// service. (The disk tier may or may not have degraded under the
	// storm; either way requests succeed.)
	flt.disable()
	replay("converged", false)

	stats := s.Stats()
	if stats.DiskBytes > budget {
		t.Errorf("disk tier ended at %d bytes, over the %d budget", stats.DiskBytes, budget)
	}
	if got := diskUsage(t, dir); got > budget {
		t.Errorf("actual disk usage %d exceeds budget %d", got, budget)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-storm /healthz = %d, want 200", resp.StatusCode)
	}
}

// ---------------------------------------------------------------------
// Drain / goroutine leaks
// ---------------------------------------------------------------------

// TestDrainGoroutineLeak is the satellite audit of the SIGTERM drain
// path: after serving a concurrent burst — including clients that hang
// up mid-flight and requests refused at admission — Shutdown-then-Drain
// must return the process to its pre-server goroutine count. Pool
// workers, flight runners, and in-flight disk writes all have owners
// that the drain waits for; this pins that no one regresses into a
// fire-and-forget goroutine.
func TestDrainGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := New(Config{Workers: 4, QueueDepth: 16, MemEntries: 4, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s.runAnalysis = func(ctx context.Context, _ *spectre.Analyzer, _ *spectre.Program) (*spectre.Report, error) {
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubReport(), nil
	}
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%5 == 0 {
				// An impatient client: joins a flight, hangs up mid-wait.
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					ts.URL+"/v1/analyze", bytes.NewReader(analyzeBody(t, tinySource(i%12))))
				if err != nil {
					t.Error(err)
					return
				}
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
				return
			}
			resp, _ := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(i%12)))
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	// The SIGTERM sequence: stop connections, then drain the service.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	s.Drain()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 { // tolerate runtime/test-harness jitter
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across drain: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Drained means drained: new work is refused, not queued.
	if s.pool.trySubmit(func() {}) {
		t.Error("drained pool accepted new work")
	}
}
