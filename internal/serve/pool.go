package serve

import "sync"

// pool is the bounded worker pool every analysis runs on: a fixed
// number of workers draining a fixed-depth queue. Admission is
// non-blocking — trySubmit either enqueues or reports the queue full —
// which is what gives the HTTP layer honest backpressure (429) instead
// of unbounded goroutines and latency collapse under overload.
type pool struct {
	mu     sync.Mutex
	jobs   chan func()
	closed bool
	wg     sync.WaitGroup

	// onPanic, when set, observes a panic that escaped a job. Jobs are
	// expected to recover for themselves (the server's execution wrapper
	// does); this is the backstop that keeps a worker goroutine alive —
	// a panicking job must cost one request, never 1/workers of the
	// daemon's capacity forever.
	onPanic func(any)
}

func newPool(workers, depth int) *pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &pool{jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				p.runProtected(fn)
			}
		}()
	}
	return p
}

// runProtected runs one job, containing any panic it leaks so the
// worker survives.
func (p *pool) runProtected(fn func()) {
	defer func() {
		if r := recover(); r != nil && p.onPanic != nil {
			p.onPanic(r)
		}
	}()
	fn()
}

// trySubmit enqueues fn if queue capacity remains, and reports whether
// it did. It never blocks. After drain it always reports false.
func (p *pool) trySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- fn:
		return true
	default:
		return false
	}
}

// drain stops admission, then waits for every queued and running job
// to finish — the graceful-shutdown half of SIGTERM handling.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// queueDepth returns the number of jobs waiting (not yet picked up).
func (p *pool) queueDepth() int {
	return len(p.jobs)
}
