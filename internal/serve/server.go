package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pitchfork/spectre"
)

// Config sizes the service. Zero values pick the documented defaults.
type Config struct {
	// Workers is the number of analyses that may execute at once
	// (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker; a full queue turns into HTTP 429 (default 64).
	QueueDepth int
	// MemEntries caps the in-memory cache tier (default 1024).
	MemEntries int
	// CacheDir enables the persistent cache tier; empty disables it.
	CacheDir string
	// Timeout is the per-request analysis budget, measured from the
	// moment a worker picks the job up (default 60s; <0 disables).
	Timeout time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// DiskBytes bounds the persistent cache tier's total bytes; above
	// it, least-recently-used entries are evicted. 0 means unbounded.
	DiskBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MemEntries <= 0 {
		c.MemEntries = 1024
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// AnalyzeRequest is the body of POST /v1/analyze and POST /v1/repair.
// Exactly one of Source (CTL text, compiled with Mode) or Program (the
// builder wire form, spectre.Program's JSON encoding) must be set.
// Config, when present, is a partial spectre.Config document overlaid
// on DefaultConfig. SchemaVersion, when present, must name a schema
// revision the server speaks.
type AnalyzeRequest struct {
	SchemaVersion   string          `json:"schemaVersion,omitempty"`
	Source          string          `json:"source,omitempty"`
	Mode            string          `json:"mode,omitempty"`
	SymbolicGlobals []string        `json:"symbolicGlobals,omitempty"`
	Program         json.RawMessage `json:"program,omitempty"`
	Config          json.RawMessage `json:"config,omitempty"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze and of
// GET /v1/report/{fingerprint}. The cached form stores the report with
// provenance unset; CacheHit/Coalesced are stamped per response.
type AnalyzeResponse struct {
	Fingerprint string          `json:"fingerprint"`
	CacheKey    string          `json:"cacheKey"`
	Report      *spectre.Report `json:"report"`
}

// RepairResponse is the body of a successful POST /v1/repair.
// Provenance lives on the envelope: a repair verdict is one result,
// not two reports, so CacheHit/Coalesced qualify the whole response.
type RepairResponse struct {
	Fingerprint string                `json:"fingerprint"`
	CacheKey    string                `json:"cacheKey"`
	CacheHit    bool                  `json:"cacheHit,omitempty"`
	Coalesced   bool                  `json:"coalesced,omitempty"`
	Result      *spectre.RepairResult `json:"result"`
	// RepairedProgram is the repaired program in builder wire form when
	// the repair rewrote the program; absent otherwise.
	RepairedProgram *spectre.Program `json:"repairedProgram,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. Code is one of
// the stable spectre.ErrCode* identifiers — the machine-readable half
// clients dispatch on; Error is the human-readable message, free to be
// reworded.
type ErrorResponse struct {
	Code  string `json:"code,omitempty"`
	Error string `json:"error"`
}

// HealthResponse is the body of GET /healthz. The endpoint always
// answers 200 while the daemon can serve at all: "degraded" means a
// subsystem (today: the persistent cache tier) has been disabled after
// repeated failures but requests still succeed — a liveness probe must
// not kill a daemon that is down one cache tier.
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "degraded"
	// DiskTier is "disabled" when repeated persistent-tier failures
	// have degraded the daemon to memory-only caching.
	DiskTier string `json:"diskTier,omitempty"`
}

// StatsResponse is the body of GET /statsz.
type StatsResponse struct {
	UptimeSeconds   float64 `json:"uptimeSeconds"`
	Requests        int64   `json:"requests"`
	AnalyzeRequests int64   `json:"analyzeRequests"`
	RepairRequests  int64   `json:"repairRequests"`
	MemHits         int64   `json:"memHits"`
	DiskHits        int64   `json:"diskHits"`
	Coalesced       int64   `json:"coalesced"`
	Analyses        int64   `json:"analyses"`
	Rejected        int64   `json:"rejected"`
	Errors          int64   `json:"errors"`
	CacheHitRate    float64 `json:"cacheHitRate"`
	InFlight        int64   `json:"inFlight"`
	QueueDepth      int     `json:"queueDepth"`
	QueueCapacity   int     `json:"queueCapacity"`
	Workers         int     `json:"workers"`
	MemEntries      int     `json:"memEntries"`
	DiskErrors      int64   `json:"diskErrors"`
	// Fault-tolerance counters: recovered analysis panics, corrupt
	// disk entries quarantined, byte-budget GC evictions, the current
	// persistent-tier footprint, whether that tier has been disabled
	// after repeated failures, and (under chaos testing only) how many
	// faults the injection registry has fired.
	Panics         int64 `json:"panics"`
	Quarantined    int64 `json:"quarantined"`
	GCEvictions    int64 `json:"gcEvictions"`
	DiskBytes      int64 `json:"diskBytes"`
	DiskDegraded   bool  `json:"diskDegraded,omitempty"`
	InjectedFaults int64 `json:"injectedFaults,omitempty"`
}

// errQueueFull is the admission failure trySubmit surfaces; the HTTP
// layer renders it as 429 + Retry-After.
var errQueueFull = errors.New("serve: analysis queue full")

// Server is the analysis service: five HTTP endpoints over the
// two-tier verdict cache, the coalescing flight group, and the bounded
// worker pool.
type Server struct {
	cfg     Config
	cache   *Cache
	flights flightGroup
	pool    *pool
	mux     *http.ServeMux
	started time.Time

	// byFP maps a program fingerprint to the most recently stored
	// analyze cache key for it — the index behind GET /v1/report.
	fpMu sync.Mutex
	byFP map[string]string

	requests    atomic.Int64
	analyzeReqs atomic.Int64
	repairReqs  atomic.Int64
	memHits     atomic.Int64
	diskHits    atomic.Int64
	coalesced   atomic.Int64
	analyses    atomic.Int64
	rejected    atomic.Int64
	errCount    atomic.Int64
	inFlight    atomic.Int64
	panics      atomic.Int64

	// flt is the installed fault-injection plan; nil in production.
	flt *faults

	// runAnalysis and runRepair are the engine entry points. They exist
	// as fields so service tests can substitute instrumented or blocking
	// engines; production always uses the spectre methods.
	runAnalysis func(ctx context.Context, an *spectre.Analyzer, p *spectre.Program) (*spectre.Report, error)
	runRepair   func(ctx context.Context, an *spectre.Analyzer, p *spectre.Program) (*spectre.RepairResult, error)
}

// New builds a Server, creating the cache directory if configured and
// rebuilding the fingerprint index from any persisted entries so
// GET /v1/report works across restarts.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	// Fault injection is opt-in through the environment only (chaos
	// testing); an unset variable yields a nil plan and zero overhead.
	flt, err := faultsFromEnv()
	if err != nil {
		return nil, err
	}
	cache, err := NewCache(cfg.MemEntries, cfg.CacheDir, cfg.DiskBytes)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		started: time.Now(),
		byFP:    make(map[string]string),
		runAnalysis: func(ctx context.Context, an *spectre.Analyzer, p *spectre.Program) (*spectre.Report, error) {
			return an.Run(ctx, p)
		},
		runRepair: func(ctx context.Context, an *spectre.Analyzer, p *spectre.Program) (*spectre.RepairResult, error) {
			return an.Repair(ctx, p)
		},
	}
	s.setFaults(flt)
	s.pool.onPanic = func(any) { s.panics.Add(1) }
	for _, key := range cache.Keys() {
		if fp, ok := analyzeKeyFingerprint(key); ok {
			s.byFP[fp] = key
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("GET /v1/report/{fingerprint}", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// setFaults installs a fault plan on the server and its cache. Only
// called before the server takes traffic (from New, or from a test
// before it starts posting).
func (s *Server) setFaults(f *faults) {
	s.flt = f
	s.cache.flt = f
}

// Drain stops admitting work and waits for every queued and running
// analysis to finish, then for every flight-runner goroutine to exit.
// Call it after http.Server.Shutdown has stopped new connections;
// subsequent submissions are rejected with 429. After Drain returns,
// the server holds no goroutines: pool workers have exited, flight
// runners have completed (their jobs either ran during the drain or
// were refused admission and returned immediately), and disk writes —
// which happen synchronously inside jobs — have all landed.
func (s *Server) Drain() {
	s.pool.drain()
	s.flights.wait()
}

// analyzeKey and repairKey build the cache/flight keys. Both halves
// are fixed-width lowercase hex (stability-pinned in the spectre
// package), so the key is filename-safe and doubles as the disk-tier
// file name.
func analyzeKey(fp, ck string) string { return "analyze-" + fp + "-" + ck }
func repairKey(fp, ck string) string  { return "repair-" + fp + "-" + ck }

func analyzeKeyFingerprint(key string) (string, bool) {
	rest, ok := strings.CutPrefix(key, "analyze-")
	if !ok {
		return "", false
	}
	fp, _, ok := strings.Cut(rest, "-")
	return fp, ok
}

// ---------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// decodeRequest parses the request body and resolves it into a program
// and an analyzer. All failures are the client's: malformed JSON, an
// unknown schema version, a program that doesn't validate, a config
// that doesn't.
func (s *Server) decodeRequest(r *http.Request) (*spectre.Program, *spectre.Analyzer, error) {
	var req AnalyzeRequest
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, nil, badRequest("invalid request body: %v", err)
	}
	if req.SchemaVersion != "" && req.SchemaVersion != spectre.ReportSchemaVersion {
		return nil, nil, badRequest("unsupported schema version %q (this server speaks %q)",
			req.SchemaVersion, spectre.ReportSchemaVersion)
	}

	var prog *spectre.Program
	switch {
	case req.Source != "" && len(req.Program) > 0:
		return nil, nil, badRequest("request sets both source and program; send exactly one")
	case req.Source != "":
		mode := spectre.ModeC
		if req.Mode != "" {
			var err error
			if mode, err = spectre.ParseSourceMode(req.Mode); err != nil {
				return nil, nil, badRequest("%v", err)
			}
		}
		p, err := spectre.CompileCTL(req.Source, mode)
		if err != nil {
			return nil, nil, badRequest("compile: %v", err)
		}
		prog = p
	case len(req.Program) > 0:
		var p spectre.Program
		if err := json.Unmarshal(req.Program, &p); err != nil {
			return nil, nil, badRequest("program wire form: %v", err)
		}
		prog = &p
	default:
		return nil, nil, badRequest("request must set source or program")
	}
	for _, g := range req.SymbolicGlobals {
		if !prog.SymbolicGlobal(g, g) {
			return nil, nil, badRequest("unknown symbolic global %q", g)
		}
	}

	cfg := spectre.DefaultConfig()
	if len(req.Config) > 0 {
		if err := json.Unmarshal(req.Config, &cfg); err != nil {
			return nil, nil, badRequest("config: %v", err)
		}
	}
	an, err := spectre.NewFromConfig(cfg)
	if err != nil {
		return nil, nil, badRequest("%v", err)
	}
	return prog, an, nil
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.analyzeReqs.Add(1)
	prog, an, err := s.decodeRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, spectre.ErrCodeBadRequest, err)
		return
	}
	fp := prog.Fingerprint()
	ck := an.Config().CacheKey()
	key := analyzeKey(fp, ck)

	if raw, tier := s.cache.Get(key); tier != TierNone {
		s.recordHit(tier)
		s.indexFingerprint(fp, key)
		s.writeAnalyze(w, raw, true, false)
		return
	}

	raw, coalesced, err := s.flights.Do(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		return s.runJob(ctx, func(runCtx context.Context) ([]byte, error) {
			rep, err := s.runAnalysis(runCtx, an, prog)
			if err != nil {
				return nil, err
			}
			rep.SchemaVersion = spectre.ReportSchemaVersion
			out, err := json.Marshal(AnalyzeResponse{Fingerprint: fp, CacheKey: ck, Report: rep})
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, out)
			s.indexFingerprint(fp, key)
			return out, nil
		})
	})
	if coalesced {
		s.coalesced.Add(1)
	}
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	s.writeAnalyze(w, raw, false, coalesced)
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.repairReqs.Add(1)
	prog, an, err := s.decodeRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, spectre.ErrCodeBadRequest, err)
		return
	}
	fp := prog.Fingerprint()
	ck := an.Config().CacheKey()
	key := repairKey(fp, ck)

	if raw, tier := s.cache.Get(key); tier != TierNone {
		s.recordHit(tier)
		s.writeRepair(w, raw, true, false)
		return
	}

	raw, coalesced, err := s.flights.Do(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		return s.runJob(ctx, func(runCtx context.Context) ([]byte, error) {
			res, err := s.runRepair(runCtx, an, prog)
			if err != nil {
				return nil, err
			}
			if res.Before != nil {
				res.Before.SchemaVersion = spectre.ReportSchemaVersion
			}
			if res.After != nil {
				res.After.SchemaVersion = spectre.ReportSchemaVersion
			}
			env := RepairResponse{Fingerprint: fp, CacheKey: ck, Result: res}
			if res.Outcome == spectre.RepairRepaired {
				env.RepairedProgram = res.Program
			}
			out, err := json.Marshal(env)
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, out)
			return out, nil
		})
	})
	if coalesced {
		s.coalesced.Add(1)
	}
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	s.writeRepair(w, raw, false, coalesced)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	fp := r.PathValue("fingerprint")
	s.fpMu.Lock()
	key, ok := s.byFP[fp]
	s.fpMu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, spectre.ErrCodeNotFound, fmt.Errorf("no cached report for fingerprint %s", fp))
		return
	}
	raw, tier := s.cache.Get(key)
	if tier == TierNone {
		s.writeError(w, http.StatusNotFound, spectre.ErrCodeNotFound, fmt.Errorf("report for fingerprint %s evicted", fp))
		return
	}
	s.recordHit(tier)
	s.writeAnalyze(w, raw, true, false)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Status: "ok"}
	if s.cache.Stats().DiskDegraded {
		resp.Status = "degraded"
		resp.DiskTier = "disabled"
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the service counters.
func (s *Server) Stats() StatsResponse {
	hits := s.memHits.Load() + s.diskHits.Load()
	verdictReqs := s.analyzeReqs.Load() + s.repairReqs.Load()
	rate := 0.0
	if verdictReqs > 0 {
		rate = float64(hits) / float64(verdictReqs)
	}
	cs := s.cache.Stats()
	return StatsResponse{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Requests:        s.requests.Load(),
		AnalyzeRequests: s.analyzeReqs.Load(),
		RepairRequests:  s.repairReqs.Load(),
		MemHits:         s.memHits.Load(),
		DiskHits:        s.diskHits.Load(),
		Coalesced:       s.coalesced.Load(),
		Analyses:        s.analyses.Load(),
		Rejected:        s.rejected.Load(),
		Errors:          s.errCount.Load(),
		CacheHitRate:    rate,
		InFlight:        s.inFlight.Load(),
		QueueDepth:      s.pool.queueDepth(),
		QueueCapacity:   s.cfg.QueueDepth,
		Workers:         s.cfg.Workers,
		MemEntries:      s.cache.MemLen(),
		DiskErrors:      cs.DiskErrors,
		Panics:          s.panics.Load(),
		Quarantined:     cs.Quarantined,
		GCEvictions:     cs.GCEvictions,
		DiskBytes:       cs.DiskBytes,
		DiskDegraded:    cs.DiskDegraded,
		InjectedFaults:  s.flt.injectedCount(),
	}
}

// ---------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------

type jobResult struct {
	raw []byte
	err error
}

// panicError wraps a recovered analysis panic so it can flow through
// the flight group to every waiter as an ordinary error and be mapped
// to a structured 500 with a stable code.
type panicError struct{ val any }

func (e *panicError) Error() string {
	return fmt.Sprintf("analysis panicked: %v", e.val)
}

// runJob admits work onto the bounded pool and waits for it. ctx is
// the flight context: it stays live while any request is waiting on
// this job and is cancelled when the last one leaves, which is how a
// dropped client connection propagates into the analysis. The
// per-request budget starts when a worker picks the job up, so queue
// wait doesn't eat analysis time.
func (s *Server) runJob(ctx context.Context, run func(context.Context) ([]byte, error)) ([]byte, error) {
	if s.flt.fire(sitePoolAdmit) {
		s.rejected.Add(1)
		return nil, errQueueFull
	}
	res := make(chan jobResult, 1)
	admitted := s.pool.trySubmit(func() {
		res <- s.executeJob(ctx, run)
	})
	if !admitted {
		s.rejected.Add(1)
		return nil, errQueueFull
	}
	jr := <-res
	return jr.raw, jr.err
}

// executeJob runs one admitted job under the per-request budget inside
// the panic-isolation boundary: a panicking analysis is recovered
// here, counted, and converted into a panicError. Because executeJob
// always returns (never re-panics), the result send in runJob's
// closure always happens — waiters cannot hang on a crashed job — and
// because the error propagates through the flight group like any
// other, every coalesced waiter sees the failure and the flight
// unmaps, so a poisoned flight cannot wedge future identical requests.
func (s *Server) executeJob(ctx context.Context, run func(context.Context) ([]byte, error)) (jr jobResult) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.panics.Add(1)
		s.errCount.Add(1)
		if r != any(errInjectedPanic) {
			log.Printf("serve: recovered analysis panic: %v\n%s", r, debug.Stack())
		}
		jr = jobResult{err: &panicError{val: r}}
	}()
	if err := ctx.Err(); err != nil {
		return jobResult{err: err}
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if s.cfg.Timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
	}
	defer cancel()
	if s.flt.fire(siteEngine) {
		panic(errInjectedPanic)
	}
	raw, err := run(runCtx)
	switch {
	case err == nil:
		s.analyses.Add(1)
	case errors.Is(err, context.Canceled):
		// Abandoned flight — every waiter left. Not a service error.
	default:
		s.errCount.Add(1)
	}
	return jobResult{raw: raw, err: err}
}

// ---------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------

func (s *Server) recordHit(tier Tier) {
	switch tier {
	case TierMem:
		s.memHits.Add(1)
	case TierDisk:
		s.diskHits.Add(1)
	}
}

func (s *Server) indexFingerprint(fp, key string) {
	s.fpMu.Lock()
	s.byFP[fp] = key
	s.fpMu.Unlock()
}

// writeAnalyze sends a cached analyze envelope, stamping the report's
// cache provenance for this response. The cached bytes always have
// both flags unset, so the fast path — a fresh analysis — writes them
// through untouched.
func (s *Server) writeAnalyze(w http.ResponseWriter, raw []byte, cacheHit, coalesced bool) {
	if !cacheHit && !coalesced {
		s.writeRaw(w, raw)
		return
	}
	var env AnalyzeResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		s.writeError(w, http.StatusInternalServerError, spectre.ErrCodeInternal, fmt.Errorf("corrupt cache entry: %w", err))
		return
	}
	if env.Report != nil {
		env.Report.CacheHit = cacheHit
		env.Report.Coalesced = coalesced
	}
	s.writeJSON(w, http.StatusOK, env)
}

func (s *Server) writeRepair(w http.ResponseWriter, raw []byte, cacheHit, coalesced bool) {
	if !cacheHit && !coalesced {
		s.writeRaw(w, raw)
		return
	}
	var env RepairResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		s.writeError(w, http.StatusInternalServerError, spectre.ErrCodeInternal, fmt.Errorf("corrupt cache entry: %w", err))
		return
	}
	env.CacheHit = cacheHit
	env.Coalesced = coalesced
	s.writeJSON(w, http.StatusOK, env)
}

func (s *Server) writeRaw(w http.ResponseWriter, raw []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeJobError maps an analysis failure onto HTTP semantics: a full
// queue is backpressure (429 + Retry-After), an exhausted budget is a
// gateway timeout, a recovered panic is a structured 500 with the
// stable engine_panic code, a request whose client already left gets
// nothing.
func (s *Server) writeJobError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *panicError
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, spectre.ErrCodeQueueFull, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout, spectre.ErrCodeTimeout,
			fmt.Errorf("analysis exceeded the %s budget", s.cfg.Timeout))
	case errors.As(err, &pe):
		s.writeError(w, http.StatusInternalServerError, spectre.ErrCodeEnginePanic, err)
	case r.Context().Err() != nil:
		// The client disconnected; the connection is dead.
	default:
		s.writeError(w, http.StatusInternalServerError, spectre.ErrCodeInternal, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code string, err error) {
	s.writeJSON(w, status, ErrorResponse{Code: code, Error: err.Error()})
}
