package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pitchfork/spectre"
)

// tinySource returns a distinct, trivially analyzable CTL program per
// seed — distinct initial data means a distinct fingerprint.
func tinySource(seed int) string {
	return fmt.Sprintf(`
public x = %d;
public temp;
fn main() {
  temp = x + 1;
}`, seed)
}

func stubReport() *spectre.Report {
	return &spectre.Report{
		Mode:       spectre.ModeConcrete,
		Bound:      spectre.DefaultBound,
		SecretFree: true,
		Findings:   []spectre.Finding{},
		States:     1,
		Paths:      1,
		Workers:    1,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s
}

func analyzeBody(t *testing.T, source string) []byte {
	t.Helper()
	raw, err := json.Marshal(AnalyzeRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func postAnalyze(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func decodeAnalyze(t *testing.T, raw []byte) AnalyzeResponse {
	t.Helper()
	var env AnalyzeResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("decode analyze response: %v\nbody: %s", err, raw)
	}
	return env
}

// waitersOf reports how many callers are parked on the flight for key.
func (g *flightGroup) waitersOf(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f := g.m[key]; f != nil {
		return f.waiters
	}
	return 0
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescing is the ISSUE's coalescing acceptance check, run under
// -race by CI: N concurrent identical submissions must run exactly one
// analysis, and every caller must get the identical report.
func TestCoalescing(t *testing.T) {
	const n = 16
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	var calls atomic.Int64
	release := make(chan struct{})
	s.runAnalysis = func(ctx context.Context, _ *spectre.Analyzer, _ *spectre.Program) (*spectre.Report, error) {
		calls.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubReport(), nil
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := analyzeBody(t, tinySource(1))
	prog, err := spectre.CompileCTL(tinySource(1), spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	key := analyzeKey(prog.Fingerprint(), spectre.DefaultConfig().CacheKey())

	type result struct {
		status int
		env    AnalyzeResponse
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postAnalyze(t, ts.URL, body)
			results <- result{resp.StatusCode, decodeAnalyze(t, raw)}
		}()
	}

	// Hold the analysis until every request has joined the flight, so
	// all n are provably concurrent.
	waitFor(t, "all requests to join the flight", func() bool {
		return s.flights.waitersOf(key) == n
	})
	close(release)
	wg.Wait()
	close(results)

	var coalesced, originals int
	var wantReport []byte
	for res := range results {
		if res.status != http.StatusOK {
			t.Fatalf("status %d", res.status)
		}
		if res.env.Report.CacheHit {
			t.Error("in-flight sharing must be reported as coalesced, not cacheHit")
		}
		if res.env.Report.Coalesced {
			coalesced++
		} else {
			originals++
		}
		res.env.Report.Coalesced = false
		norm, _ := json.Marshal(res.env.Report)
		if wantReport == nil {
			wantReport = norm
		} else if !bytes.Equal(norm, wantReport) {
			t.Errorf("coalesced report diverged:\n got %s\nwant %s", norm, wantReport)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("ran %d analyses for %d identical concurrent submissions, want exactly 1", got, n)
	}
	if originals != 1 || coalesced != n-1 {
		t.Errorf("provenance split %d original / %d coalesced, want 1 / %d", originals, coalesced, n-1)
	}
	if got := s.Stats().Coalesced; got != n-1 {
		t.Errorf("stats count %d coalesced, want %d", got, n-1)
	}

	// A subsequent identical request is a pure cache hit.
	_, raw := postAnalyze(t, ts.URL, body)
	env := decodeAnalyze(t, raw)
	if !env.Report.CacheHit || env.Report.Coalesced {
		t.Errorf("follow-up request: cacheHit=%t coalesced=%t, want pure cache hit",
			env.Report.CacheHit, env.Report.Coalesced)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("cache hit reran the analysis (%d calls)", got)
	}
}

// TestBackpressure: with one worker busy and the one queue slot taken,
// the next submission must be refused with 429 + Retry-After, and the
// queued work must still complete once the worker frees up.
func TestBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.runAnalysis = func(ctx context.Context, _ *spectre.Analyzer, _ *spectre.Program) (*spectre.Report, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubReport(), nil
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	statuses := make(chan int, 2)
	post := func(seed int) {
		resp, _ := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(seed)))
		statuses <- resp.StatusCode
	}

	go post(1)
	<-started // the worker is now occupied
	go post(2)
	waitFor(t, "second job to queue", func() bool { return s.pool.queueDepth() == 1 })

	resp, raw := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(3)))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429; body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("stats count %d rejected, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-statuses; code != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", code)
		}
	}
}

// TestCancelPropagation: when the client's connection goes away, the
// context handed to the analysis engine must be cancelled — the
// half-open analysis must not keep burning a worker.
func TestCancelPropagation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	started := make(chan struct{})
	cancelled := make(chan struct{})
	s.runAnalysis = func(ctx context.Context, _ *spectre.Analyzer, _ *spectre.Program) (*spectre.Report, error) {
		close(started)
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/analyze", bytes.NewReader(analyzeBody(t, tinySource(1))))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	<-started
	cancel()
	select {
	case <-cancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("client disconnect did not cancel the analysis context")
	}
	<-done
}

// TestCacheTiers drives the Cache directly: LRU eviction order,
// disk-tier promotion, and the Keys union.
func TestCacheTiers(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("c", []byte("C")) // evicts a from memory
	if c.MemLen() != 2 {
		t.Fatalf("mem tier holds %d entries, want 2", c.MemLen())
	}
	if _, tier := c.Get("b"); tier != TierMem {
		t.Errorf("b answered from tier %d, want mem", tier)
	}
	val, tier := c.Get("a")
	if tier != TierDisk || string(val) != "A" {
		t.Errorf("evicted entry came back (%q, tier %d), want (A, disk)", val, tier)
	}
	if _, tier := c.Get("a"); tier != TierMem {
		t.Error("disk hit was not promoted to the memory tier")
	}
	if keys := c.Keys(); len(keys) != 3 {
		t.Errorf("Keys() = %v, want 3 entries", keys)
	}
	if _, tier := c.Get("nope"); tier != TierNone {
		t.Error("phantom hit")
	}

	// A memory-only cache loses evicted entries entirely.
	m, _ := NewCache(1, "", 0)
	m.Put("x", []byte("X"))
	m.Put("y", []byte("Y"))
	if _, tier := m.Get("x"); tier != TierNone {
		t.Error("memory-only cache resurrected an evicted entry")
	}
}

// TestEvictionAndRestart is the persistence acceptance check: entries
// evicted from the memory tier come back from disk, and a fresh Server
// over the same cache directory — a daemon restart — serves persisted
// verdicts without rerunning any analysis.
func TestEvictionAndRestart(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MemEntries: 2, CacheDir: dir})
	var calls atomic.Int64
	s.runAnalysis = func(context.Context, *spectre.Analyzer, *spectre.Program) (*spectre.Report, error) {
		calls.Add(1)
		return stubReport(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fps := make([]string, 3)
	for i := range fps {
		resp, raw := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", i, resp.StatusCode, raw)
		}
		fps[i] = decodeAnalyze(t, raw).Fingerprint
	}
	if calls.Load() != 3 {
		t.Fatalf("ran %d analyses, want 3", calls.Load())
	}

	// Program 0 was evicted from memory (capacity 2) — the repeat must
	// be a disk hit, not a rerun.
	_, raw := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(0)))
	if env := decodeAnalyze(t, raw); !env.Report.CacheHit {
		t.Error("evicted verdict was not answered from the disk tier")
	}
	if got := s.Stats().DiskHits; got != 1 {
		t.Errorf("stats count %d disk hits, want 1", got)
	}
	if calls.Load() != 3 {
		t.Errorf("disk hit reran the analysis (%d calls)", calls.Load())
	}

	// Restart: a new server over the same directory must serve all
	// three verdicts — via POST and via the fingerprint index — with
	// zero analyses.
	s2 := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MemEntries: 2, CacheDir: dir})
	s2.runAnalysis = func(context.Context, *spectre.Analyzer, *spectre.Program) (*spectre.Report, error) {
		t.Error("restarted server reran an analysis instead of reading the disk tier")
		return stubReport(), nil
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	for i, fp := range fps {
		_, raw := postAnalyze(t, ts2.URL, analyzeBody(t, tinySource(i)))
		if env := decodeAnalyze(t, raw); !env.Report.CacheHit {
			t.Errorf("seed %d: POST after restart missed the persistent tier", i)
		}
		resp, err := http.Get(ts2.URL + "/v1/report/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /v1/report/%s after restart: status %d: %s", fp, resp.StatusCode, body)
		}
	}
	if resp, err := http.Get(ts2.URL + "/v1/report/" + "0000"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown fingerprint: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestBadRequests pins the 400 surface: malformed body, neither/both
// program forms, bad config, bad schema version, unknown global.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	valid := tinySource(1)
	for name, body := range map[string]string{
		"malformed":      `{"source": `,
		"empty":          `{}`,
		"both forms":     fmt.Sprintf(`{"source": %q, "program": {"version":1}}`, valid),
		"bad source":     `{"source": "fn fn fn"}`,
		"bad mode":       fmt.Sprintf(`{"source": %q, "mode": "fortran"}`, valid),
		"bad config":     fmt.Sprintf(`{"source": %q, "config": {"bound": 0}}`, valid),
		"bad schema":     fmt.Sprintf(`{"source": %q, "schemaVersion": "99"}`, valid),
		"unknown global": fmt.Sprintf(`{"source": %q, "symbolicGlobals": ["nope"]}`, valid),
		"bad wire":       `{"program": {"version": 99}}`,
	} {
		resp, raw := postAnalyze(t, ts.URL, []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", name, resp.StatusCode, raw)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s", name, raw)
		}
		if e.Code != spectre.ErrCodeBadRequest {
			t.Errorf("%s: error code %q, want %q", name, e.Code, spectre.ErrCodeBadRequest)
		}
	}
}
