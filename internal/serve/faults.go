package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Fault injection: a small registry of deliberately failable points
// threaded through the serving stack, so the chaos suite (and the CI
// chaos job) can prove the daemon degrades instead of crashing. Every
// hook is a no-op unless a fault plan is installed, and the only ways
// to install one are unexported: tests call parseFaults directly, the
// daemon opts in through the SPECTRED_FAULTS environment variable.
// There is no flag and no API — production traffic cannot switch this
// on by accident.
//
// The plan is deterministic and seedable: each site keeps its own call
// sequence number, and whether call n at site s fires is a pure
// function of (seed, s, n) via a splitmix64 hash. Replaying the same
// call sequence against the same spec reproduces the same fault
// pattern, which is what makes chaos failures debuggable.
const faultsEnv = "SPECTRED_FAULTS"

// faultSite names one instrumented failure point.
type faultSite string

const (
	// siteDiskRead fails a persistent-tier read with an I/O error.
	siteDiskRead faultSite = "diskread"
	// siteDiskWrite fails a persistent-tier write with an I/O error.
	siteDiskWrite faultSite = "diskwrite"
	// siteCacheLookup makes a whole cache lookup miss (both tiers
	// unavailable), forcing a fresh analysis.
	siteCacheLookup faultSite = "cachelookup"
	// sitePoolAdmit refuses pool admission as if the queue were full,
	// exercising the 429/Retry-After backpressure path.
	sitePoolAdmit faultSite = "pooladmit"
	// siteEngine panics inside an admitted analysis, exercising the
	// panic-isolation boundary.
	siteEngine faultSite = "engine"
)

// errInjectedIO is the error injected disk faults surface; it flows
// through the same degrade-to-miss handling as a real I/O failure.
var errInjectedIO = errors.New("serve: injected disk fault")

// errInjectedPanic is the value injected engine faults panic with. The
// recovery path recognizes it and skips the stack-trace log line real
// panics get, so chaos runs don't bury real failures in noise.
var errInjectedPanic = errors.New("serve: injected engine panic")

type siteState struct {
	rate float64
	salt uint64
	seq  atomic.Uint64
}

// faults is an installed fault plan. The zero of *faults (nil) is the
// production state: every hook answers "don't fire" with no atomics
// touched beyond a nil check.
type faults struct {
	seed     uint64
	sites    map[faultSite]*siteState
	injected atomic.Int64
	off      atomic.Bool
}

// faultsFromEnv builds the plan from SPECTRED_FAULTS, returning nil
// when the variable is unset.
func faultsFromEnv() (*faults, error) {
	return parseFaults(os.Getenv(faultsEnv))
}

// parseFaults parses a fault spec of the form
//
//	seed=7,engine=0.05,diskread=0.10,diskwrite=0.10,cachelookup=0.10,pooladmit=0.05
//
// where each site maps to a per-call fire probability in [0,1]. An
// empty spec returns (nil, nil); an unknown site or malformed rate is
// an error so CI typos surface at startup instead of silently running
// a fault-free "chaos" job.
func parseFaults(spec string) (*faults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	known := map[faultSite]bool{
		siteDiskRead: true, siteDiskWrite: true, siteCacheLookup: true,
		sitePoolAdmit: true, siteEngine: true,
	}
	f := &faults{sites: make(map[faultSite]*siteState)}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("serve: fault spec: %q is not key=value", kv)
		}
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: fault spec: seed %q: %v", val, err)
			}
			f.seed = seed
			continue
		}
		site := faultSite(key)
		if !known[site] {
			return nil, fmt.Errorf("serve: fault spec: unknown site %q (known: diskread, diskwrite, cachelookup, pooladmit, engine)", key)
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("serve: fault spec: rate %q for %s must be a float in [0,1]", val, key)
		}
		h := fnv.New64a()
		h.Write([]byte(key)) //nolint:errcheck // never fails
		f.sites[site] = &siteState{rate: rate, salt: h.Sum64()}
	}
	return f, nil
}

// fire reports whether the fault at site should trigger for this call,
// advancing the site's deterministic sequence. Safe on a nil receiver.
func (f *faults) fire(site faultSite) bool {
	if f == nil || f.off.Load() {
		return false
	}
	s := f.sites[site]
	if s == nil || s.rate <= 0 {
		return false
	}
	n := s.seq.Add(1)
	h := splitmix64(f.seed ^ s.salt ^ n)
	if float64(h>>11)/(1<<53) >= s.rate {
		return false
	}
	f.injected.Add(1)
	return true
}

// disable turns every hook off in place — how the chaos suite ends the
// storm and asserts convergence back to a healthy service without
// racing a plan swap against in-flight requests.
func (f *faults) disable() {
	if f != nil {
		f.off.Store(true)
	}
}

// injectedCount returns how many faults have fired so far.
func (f *faults) injectedCount() int64 {
	if f == nil {
		return 0
	}
	return f.injected.Load()
}

// splitmix64 is the finalizer of the splitmix64 PRNG — a cheap,
// high-quality 64-bit mixer, the same construction the symbolic
// solver's probe phase uses for reproducible randomness.
func splitmix64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
