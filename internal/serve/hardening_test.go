package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pitchfork/spectre"
)

// diskUsage sums the sizes of live (non-quarantined) disk entries.
func diskUsage(t *testing.T, dir string) int64 {
	t.Helper()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range names {
		if !strings.HasSuffix(n.Name(), ".json") {
			continue
		}
		info, err := n.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestFrameRoundTrip pins the on-disk entry format: what frame writes,
// unframe accepts, byte-for-byte.
func TestFrameRoundTrip(t *testing.T) {
	for _, val := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("verdict"), 100)} {
		got, ok := unframe(frame(val))
		if !ok {
			t.Fatalf("frame(%d bytes) did not verify", len(val))
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("round trip corrupted payload: got %q want %q", got, val)
		}
	}
}

// TestDiskCorruptionQuarantine is the corruption half of the tentpole:
// every way an entry can be wrong on disk — truncated, bit-flipped,
// tampered header, garbage, empty — must be detected by the checksum
// frame, answered as a miss, renamed aside, and excluded from Keys().
// Never served, never retried, never fatal.
func TestDiskCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("good", []byte("GOOD"))
	c.Put("filler", []byte("F")) // evicts "good" from the 1-entry memory tier
	if v, tier := c.Get("good"); tier != TierDisk || string(v) != "GOOD" {
		t.Fatalf("sanity: framed disk read = (%q, %d), want (GOOD, disk)", v, tier)
	}

	payload := []byte(`{"report":"payload"}`)
	good := frame(payload)
	nl := bytes.IndexByte(good, '\n')
	flipped := bytes.Clone(good)
	flipped[nl+3] ^= 0x40 // corrupt a payload byte under an intact header
	tampered := bytes.Clone(good)
	tampered[2] ^= 0x01 // corrupt the header/magic itself

	corrupt := map[string][]byte{
		"truncated": good[:len(good)-3],
		"bitflip":   flipped,
		"tampered":  tampered,
		"garbage":   []byte("not a cache entry at all"),
		"empty":     {},
	}
	for key, data := range corrupt {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for key := range corrupt {
		if v, tier := c.Get(key); tier != TierNone {
			t.Errorf("%s: corrupt entry was served (%q, tier %d)", key, v, tier)
		}
		if _, err := os.Stat(filepath.Join(dir, key+".json"+quarantineSuffix)); err != nil {
			t.Errorf("%s: not quarantined: %v", key, err)
		}
		if _, err := os.Stat(filepath.Join(dir, key+".json")); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt file still in place", key)
		}
	}
	if got := c.Stats().Quarantined; got != int64(len(corrupt)) {
		t.Errorf("quarantined counter = %d, want %d", got, len(corrupt))
	}
	for _, key := range c.Keys() {
		if _, bad := corrupt[key]; bad {
			t.Errorf("Keys() still lists quarantined entry %q", key)
		}
	}

	// A quarantined key heals on the next Put: fresh bytes, served again.
	c.Put("bitflip", []byte("HEALED"))
	c.Put("filler2", []byte("F")) // push it out of the memory tier
	if v, tier := c.Get("bitflip"); tier != TierDisk || string(v) != "HEALED" {
		t.Errorf("re-put after quarantine = (%q, %d), want (HEALED, disk)", v, tier)
	}
}

// TestDiskGCBudget: the disk tier must stay under its byte budget by
// evicting least-recently-used entries, and eviction is removal —
// never quarantine, never an error.
func TestDiskGCBudget(t *testing.T) {
	dir := t.TempDir()
	const budget = int64(4096)
	c, err := NewCache(1, dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 400)
	for i := 0; i < 30; i++ {
		c.Put(fmt.Sprintf("k%02d", i), val)
	}
	stats := c.Stats()
	if stats.DiskBytes > budget {
		t.Errorf("accounted disk bytes %d exceed budget %d", stats.DiskBytes, budget)
	}
	if got := diskUsage(t, dir); got > budget {
		t.Errorf("actual disk usage %d exceeds budget %d", got, budget)
	}
	if stats.GCEvictions == 0 {
		t.Error("30 oversized puts ran zero GC evictions")
	}
	if stats.Quarantined != 0 || stats.DiskErrors != 0 {
		t.Errorf("GC misreported as corruption/failure: %+v", stats)
	}
	// Recency order: the newest entry survived, the oldest did not.
	if _, err := os.Stat(filepath.Join(dir, "k29.json")); err != nil {
		t.Errorf("most recent entry evicted: %v", err)
	}
	if _, tier := c.Get("k00"); tier != TierNone {
		t.Error("oldest entry survived a budget 7x smaller than the write volume")
	}
}

// TestDiskGCStartupScan: a restarted daemon inherits a full directory;
// the startup scan must size it, order it by modification time, and
// bring it under the (possibly newly lowered) budget immediately.
func TestDiskGCStartupScan(t *testing.T) {
	dir := t.TempDir()
	unbounded, err := NewCache(1, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 400)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		unbounded.Put(key, val)
		// Deterministic recency: k0 oldest … k9 newest, beyond mtime
		// granularity.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, key+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	const budget = int64(1500) // fits 3 framed entries of ~483 bytes
	c, err := NewCache(1, dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().DiskBytes; got > budget {
		t.Errorf("startup scan left %d bytes over budget %d", got, budget)
	}
	if got := diskUsage(t, dir); got > budget {
		t.Errorf("actual disk usage %d exceeds budget %d after startup GC", got, budget)
	}
	if _, tier := c.Get("k9"); tier != TierDisk {
		t.Error("newest entry did not survive the startup GC")
	}
	if _, tier := c.Get("k0"); tier != TierNone {
		t.Error("oldest entry survived the startup GC")
	}
}

// TestDiskGCConcurrentAccess runs GC against concurrent read, write,
// and promote traffic under -race, covering the eviction-while-being-
// read window: a reader racing an eviction must see either the correct
// bytes or a miss — never corrupt data, never a quarantine.
func TestDiskGCConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	const budget = int64(8 << 10)
	c, err := NewCache(1, dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	const hot = "hotkey"
	hotVal := bytes.Repeat([]byte("H"), 600)
	churnVal := bytes.Repeat([]byte("c"), 600)
	c.Put(hot, hotVal)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churn writer: a stream of puts that keeps the GC evicting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Put(fmt.Sprintf("churn-%02d", i%40), churnVal)
		}
	}()
	// Hot re-putter: re-publishes the hot key so readers keep finding
	// it even as the GC takes it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Put(hot, hotVal)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	// Readers: hammer the hot key through the eviction window. The
	// 1-entry memory tier means almost every read goes to disk.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, tier := c.Get(hot)
				if tier != TierNone && !bytes.Equal(v, hotVal) {
					t.Errorf("read returned wrong bytes during eviction window (%d bytes)", len(v))
					return
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	stats := c.Stats()
	if stats.Quarantined != 0 {
		t.Errorf("concurrent GC quarantined %d entries — evictions must never present as corruption", stats.Quarantined)
	}
	if stats.GCEvictions == 0 {
		t.Error("churn never triggered the GC")
	}
	if stats.DiskBytes > budget {
		t.Errorf("accounted disk bytes %d ended over budget %d", stats.DiskBytes, budget)
	}
}

// TestDiskDegradedAfterRepeatedFailures: a persistently failing disk
// must cost the persistent tier, not availability. After
// diskFailureLimit consecutive I/O failures the tier is disabled,
// /healthz reports degraded (still 200), and requests keep succeeding
// memory-only.
func TestDiskDegradedAfterRepeatedFailures(t *testing.T) {
	flt, err := parseFaults("seed=3,diskwrite=1")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MemEntries: 4, CacheDir: t.TempDir()})
	s.setFaults(flt)
	s.runAnalysis = func(context.Context, *spectre.Analyzer, *spectre.Program) (*spectre.Report, error) {
		return stubReport(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < diskFailureLimit+2; i++ {
		resp, raw := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed with %d during disk failures: %s — disk trouble must never fail requests", i, resp.StatusCode, raw)
		}
	}
	stats := s.Stats()
	if !stats.DiskDegraded {
		t.Errorf("%d consecutive disk failures did not degrade the disk tier", diskFailureLimit+2)
	}
	if stats.DiskErrors < diskFailureLimit {
		t.Errorf("diskErrors = %d, want ≥ %d", stats.DiskErrors, diskFailureLimit)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("degraded /healthz returned %d, want 200 — degraded is not dead", resp.StatusCode)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.DiskTier != "disabled" {
		t.Errorf("healthz = %+v, want status=degraded diskTier=disabled", health)
	}

	// Still serving after degradation.
	if resp, _ := postAnalyze(t, ts.URL, analyzeBody(t, tinySource(0))); resp.StatusCode != http.StatusOK {
		t.Errorf("request after degradation: status %d, want 200", resp.StatusCode)
	}
}

// TestHealthzOK pins the healthy body shape.
func TestHealthzOK(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.DiskTier != "" {
		t.Errorf("healthy /healthz = %d %+v, want 200 {status: ok}", resp.StatusCode, health)
	}
}
