package core

import (
	"fmt"
	"strings"

	"pitchfork/internal/isa"
)

// RSBPolicy selects what top(σ) yields when the return stack buffer is
// empty. Appendix A documents three behaviours seen in real processors
// plus the default presentation where the attacker supplies the guess.
type RSBPolicy uint8

const (
	// RSBAttackerChoice is the paper's default: when top(σ) = ⊥ the
	// schedule must supply the speculative return target via fetch: n′.
	RSBAttackerChoice RSBPolicy = iota
	// RSBRefuse models AMD processors, which refuse to speculate on an
	// empty RSB: fetching a ret then stalls (the directive is invalid).
	RSBRefuse
	// RSBCircular models "most Intel processors", which treat the RSB
	// as a circular buffer: top(σ) always produces a value (the stale
	// slot contents), never ⊥.
	RSBCircular
)

// String names the policy.
func (p RSBPolicy) String() string {
	switch p {
	case RSBAttackerChoice:
		return "attacker-choice"
	case RSBRefuse:
		return "refuse"
	case RSBCircular:
		return "circular"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// rsbCircularSize is the ring capacity under RSBCircular; 16 entries is
// the size of the RSB on most of the Intel parts the ret2spec paper
// measured.
const rsbCircularSize = 16

type rsbEntry struct {
	idx    int // reorder-buffer index the entry was journaled at
	isPush bool
	target isa.Addr // push payload
}

// RSB is the return stack buffer σ: a journal of push/pop commands
// keyed by reorder-buffer indices. Keeping the journal (rather than a
// materialized stack) makes rollback exact: misspeculation at buffer
// index i simply discards entries journaled at indices ≥ i, which is
// how the paper says σ is "rolled back on misspeculation or memory
// hazards".
//
// The journal is copy-on-write: Clone is O(1) and shares the entry
// slice; appends re-own it lazily, and rollback is a pure reslice
// (safe on a shared array), so forks pay only for entries journaled
// after the fork.
type RSB struct {
	policy  RSBPolicy
	entries []rsbEntry
	// shared marks the backing array as possibly aliased by a clone;
	// the next append copies it first.
	shared bool
}

// NewRSB returns an empty RSB with the given policy.
func NewRSB(policy RSBPolicy) *RSB { return &RSB{policy: policy} }

// Policy returns the empty-RSB behaviour.
func (s *RSB) Policy() RSBPolicy { return s.policy }

// own re-owns the backing array before an append when it may be
// shared with a clone.
func (s *RSB) own() {
	if !s.shared {
		return
	}
	entries := make([]rsbEntry, len(s.entries), len(s.entries)+4)
	copy(entries, s.entries)
	s.entries = entries
	s.shared = false
}

// Push journals σ[i ↦ push n].
func (s *RSB) Push(idx int, target isa.Addr) {
	s.own()
	s.entries = append(s.entries, rsbEntry{idx: idx, isPush: true, target: target})
}

// Pop journals σ[i ↦ pop].
func (s *RSB) Pop(idx int) {
	s.own()
	s.entries = append(s.entries, rsbEntry{idx: idx})
}

// Rollback discards entries journaled at buffer indices ≥ i. Entries
// are journaled in fetch order and every rollback discards a suffix
// before indices are reused, so the journal is always sorted by idx
// and the discard is a reslice of the tail — O(discarded) and safe on
// a shared backing array.
func (s *RSB) Rollback(i int) {
	n := len(s.entries)
	for n > 0 && s.entries[n-1].idx >= i {
		n--
	}
	s.entries = s.entries[:n]
}

// Top evaluates top(σ) = st(MAX(st)) where st = JσK: the journal is
// replayed in index order, pushes appending and pops removing the top.
// Under RSBCircular the replay runs over a ring, so ok is always true;
// otherwise ok reports whether the resulting stack is non-empty (⊥).
func (s *RSB) Top() (isa.Addr, bool) {
	if s.policy == RSBCircular {
		var ring [rsbCircularSize]isa.Addr
		sp := 0
		for _, e := range s.entries {
			if e.isPush {
				sp++
				ring[((sp%rsbCircularSize)+rsbCircularSize)%rsbCircularSize] = e.target
			} else {
				sp--
			}
		}
		return ring[((sp%rsbCircularSize)+rsbCircularSize)%rsbCircularSize], true
	}
	// Backward scan, allocation-free: the replayed top is the youngest
	// push not cancelled by a later pop. Pops that underflow an empty
	// stack in the forward replay have no matching earlier push, so
	// they cannot cancel one here either — the two replays agree.
	depth := 0
	for k := len(s.entries) - 1; k >= 0; k-- {
		e := s.entries[k]
		if !e.isPush {
			depth++
			continue
		}
		if depth == 0 {
			return e.target, true
		}
		depth--
	}
	return 0, false
}

// Depth returns the replayed stack depth (may go negative under
// underflow before clamping; clamped at zero like the replay).
func (s *RSB) Depth() int {
	d := 0
	for _, e := range s.entries {
		if e.isPush {
			d++
		} else if d > 0 {
			d--
		}
	}
	return d
}

// Clone returns an independent copy in O(1): the journal's backing
// array is shared and marked copy-on-write on both sides, so the next
// append on either side re-owns it first.
func (s *RSB) Clone() *RSB {
	s.shared = true
	return &RSB{policy: s.policy, entries: s.entries, shared: true}
}

// String renders the journal, e.g. "[1↦push 4][8↦pop]".
func (s *RSB) String() string {
	if len(s.entries) == 0 {
		return "∅"
	}
	var b strings.Builder
	for _, e := range s.entries {
		if e.isPush {
			fmt.Fprintf(&b, "[%d↦push %d]", e.idx, e.target)
		} else {
			fmt.Fprintf(&b, "[%d↦pop]", e.idx)
		}
	}
	return b.String()
}
