package core

import (
	"fmt"
	"strings"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Buffer is the reorder buffer buf : N ⇀ TransInstr. Its domain is
// always a contiguous range of indices [Min, Max] (the paper's rules
// "add and remove indices in a way that ensures that buf's domain will
// always be contiguous"), so it is represented as a slice plus a base.
// Indices grow monotonically across the run; the first fetched
// instruction lands at index 1, matching MAX(∅) = 0.
type Buffer struct {
	base  int // index of items[0]; Min when non-empty
	items []*Transient
}

// NewBuffer returns an empty reorder buffer whose first insertion gets
// index 1.
func NewBuffer() *Buffer { return &Buffer{base: 1} }

// Len returns the number of buffered transient instructions.
func (b *Buffer) Len() int { return len(b.items) }

// Empty reports whether the buffer holds no instructions.
func (b *Buffer) Empty() bool { return len(b.items) == 0 }

// Min returns MIN(buf). For an empty buffer it returns the next index
// to be allocated; on the initial buffer that is 1, consistent with
// the paper's MIN(∅) = 0 + the first fetch landing at MAX(∅)+1 = 1.
// Keeping the base (rather than resetting to 0) preserves the
// invariant that Append always inserts at Max()+1 even after the
// buffer drains mid-run.
func (b *Buffer) Min() int { return b.base }

// Max returns MAX(buf); for an empty buffer it returns base-1 so that
// Max()+1 is always the next insertion index (0 on the initial empty
// buffer, matching MAX(∅) = 0).
func (b *Buffer) Max() int {
	if len(b.items) == 0 {
		return b.base - 1
	}
	return b.base + len(b.items) - 1
}

// Contains reports whether index i is in the buffer's domain.
func (b *Buffer) Contains(i int) bool {
	return i >= b.base && i < b.base+len(b.items)
}

// Get returns buf(i).
func (b *Buffer) Get(i int) (*Transient, bool) {
	if !b.Contains(i) {
		return nil, false
	}
	return b.items[i-b.base], true
}

// Append inserts at MAX(buf)+1 and returns the new index.
func (b *Buffer) Append(t *Transient) int {
	b.items = append(b.items, t)
	return b.base + len(b.items) - 1
}

// Set replaces buf(i); it panics if i is outside the domain, since the
// step rules only rewrite live entries.
func (b *Buffer) Set(i int, t *Transient) {
	if !b.Contains(i) {
		panic(fmt.Sprintf("core: Buffer.Set(%d) outside [%d,%d]", i, b.Min(), b.Max()))
	}
	b.items[i-b.base] = t
}

// TruncateFrom implements buf[j : j < i]: it removes every entry at
// index ≥ i.
func (b *Buffer) TruncateFrom(i int) {
	if i <= b.base {
		b.items = b.items[:0]
		return
	}
	if i > b.base+len(b.items) {
		return
	}
	b.items = b.items[:i-b.base]
}

// PopMin removes and returns buf(MIN(buf)).
func (b *Buffer) PopMin() (*Transient, bool) {
	if len(b.items) == 0 {
		return nil, false
	}
	t := b.items[0]
	b.items = b.items[1:]
	b.base++
	return t, true
}

// PopMinN removes the k lowest-indexed entries; used by call-retire and
// ret-retire, which retire their whole expansion at once.
func (b *Buffer) PopMinN(k int) {
	if k > len(b.items) {
		panic("core: PopMinN beyond buffer")
	}
	b.items = b.items[k:]
	b.base += k
}

// FenceBefore reports whether any index j < i holds a fence — the
// highlighted side condition ∀j < i : buf(j) ≠ fence on every execute
// rule.
func (b *Buffer) FenceBefore(i int) bool {
	for j := b.Min(); j < i && j <= b.Max(); j++ {
		if t, ok := b.Get(j); ok && t.Kind == TFence {
			return true
		}
	}
	return false
}

// Indices returns the live indices in increasing order.
func (b *Buffer) Indices() []int {
	out := make([]int, len(b.items))
	for i := range b.items {
		out[i] = b.base + i
	}
	return out
}

// Clone returns a deep copy (transients are copied, operand slices
// shared — operands are immutable after construction).
func (b *Buffer) Clone() *Buffer {
	c := &Buffer{base: b.base, items: make([]*Transient, len(b.items))}
	for i, t := range b.items {
		cp := *t
		c.items[i] = &cp
	}
	return c
}

// String renders the buffer one entry per line, figure-style.
func (b *Buffer) String() string {
	if b.Empty() {
		return "∅"
	}
	var sb strings.Builder
	for j := b.Min(); j <= b.Max(); j++ {
		t, _ := b.Get(j)
		fmt.Fprintf(&sb, "%d ↦ %s\n", j, t)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ResolveReg implements the register resolve function (buf +i ρ)(r) of
// Fig. 3, extended per §3.5 to read through partially resolved loads:
//
//   - the latest assignment to r at an index j < i that is resolved
//     yields its value;
//   - a latest assignment that is unresolved yields ⊥ (ok == false);
//   - no assignment at all defers to ρ(r).
func (b *Buffer) ResolveReg(i int, regs *mem.RegisterFile, r isa.Reg) (mem.Value, bool) {
	hi := b.Max()
	if i-1 < hi {
		hi = i - 1
	}
	for j := hi; j >= b.Min() && j >= 1; j-- {
		t, ok := b.Get(j)
		if !ok || !t.AssignsReg(r) {
			continue
		}
		switch t.Kind {
		case TValue:
			return t.Val, true
		case TLoad:
			if t.PredFwd {
				return t.PredVal, true // §3.5 extension
			}
			return mem.Value{}, false // pending assignment: ⊥
		case TOp:
			return mem.Value{}, false // pending assignment: ⊥
		}
	}
	return regs.Read(r), true
}

// ResolveOperand lifts ResolveReg to a register-or-value operand:
// (buf +i ρ)(vℓ) = vℓ for immediates.
func (b *Buffer) ResolveOperand(i int, regs *mem.RegisterFile, o isa.Operand) (mem.Value, bool) {
	if !o.IsReg {
		return o.Imm, true
	}
	return b.ResolveReg(i, regs, o.Reg)
}

// ResolveOperands is the pointwise lifting to operand lists; it fails
// if any operand is ⊥.
func (b *Buffer) ResolveOperands(i int, regs *mem.RegisterFile, os []isa.Operand) ([]mem.Value, bool) {
	out := make([]mem.Value, len(os))
	for k, o := range os {
		v, ok := b.ResolveOperand(i, regs, o)
		if !ok {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}
