package core

import (
	"fmt"
	"strings"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Buffer is the reorder buffer buf : N ⇀ TransInstr. Its domain is
// always a contiguous range of indices [Min, Max] (the paper's rules
// "add and remove indices in a way that ensures that buf's domain will
// always be contiguous"), so it is represented as a slice plus a base.
// Indices grow monotonically across the run; the first fetched
// instruction lands at index 1, matching MAX(∅) = 0.
//
// The representation is copy-on-write: Clone is O(1) and shares the
// backing slice (and the transients it points to) with the original.
// Mutating operations re-own the slice lazily, and in-place transient
// mutation goes through Edit, which copies an entry that may still be
// shared with a clone. Reslicing operations (PopMin, TruncateFrom)
// never touch the shared array, so they stay O(1) even when shared.
type Buffer struct {
	base  int // index of items[0]; Min when non-empty
	items []*Transient
	// shared marks the backing array as possibly aliased by a clone;
	// the next array write copies it first.
	shared bool
	// privateFrom is the lowest index whose transient is known to be
	// owned exclusively by this buffer (everything at or above it was
	// appended after the last Clone). Edit mutates those in place and
	// copies older, possibly shared entries.
	privateFrom int
	// arena bump-allocates transients in chunks, so the fetch and
	// execute rules do not pay one heap allocation per instruction.
	// Cells are never reused; a clone starts a fresh arena (the parent
	// keeps the tail of the current chunk, so the two never write the
	// same cell).
	arena []Transient
}

// transientArenaChunk caps the arena's chunk size. Chunks start small
// and double up to the cap: a freshly forked buffer that only places
// one or two transients before forking again pays no more than the
// old per-transient allocation, while long straight-line runs
// amortize to a chunk per 32 instructions.
const transientArenaChunk = 32

// alloc returns a fresh arena cell.
func (b *Buffer) alloc() *Transient {
	if len(b.arena) == cap(b.arena) {
		n := cap(b.arena) * 2
		if n == 0 {
			n = 2
		}
		if n > transientArenaChunk {
			n = transientArenaChunk
		}
		b.arena = make([]Transient, 0, n)
	}
	b.arena = append(b.arena, Transient{})
	return &b.arena[len(b.arena)-1]
}

// NewBuffer returns an empty reorder buffer whose first insertion gets
// index 1.
func NewBuffer() *Buffer { return &Buffer{base: 1, privateFrom: 1} }

// own re-owns the backing array before a write when it may be shared
// with a clone. Only the pointer slice is copied; the transients stay
// shared and are protected by Edit's entry-level copy-on-write.
func (b *Buffer) own() {
	if !b.shared {
		return
	}
	items := make([]*Transient, len(b.items), len(b.items)+8)
	copy(items, b.items)
	b.items = items
	b.shared = false
}

// Len returns the number of buffered transient instructions.
func (b *Buffer) Len() int { return len(b.items) }

// Empty reports whether the buffer holds no instructions.
func (b *Buffer) Empty() bool { return len(b.items) == 0 }

// Min returns MIN(buf). For an empty buffer it returns the next index
// to be allocated; on the initial buffer that is 1, consistent with
// the paper's MIN(∅) = 0 + the first fetch landing at MAX(∅)+1 = 1.
// Keeping the base (rather than resetting to 0) preserves the
// invariant that Append always inserts at Max()+1 even after the
// buffer drains mid-run.
func (b *Buffer) Min() int { return b.base }

// Max returns MAX(buf); for an empty buffer it returns base-1 so that
// Max()+1 is always the next insertion index (0 on the initial empty
// buffer, matching MAX(∅) = 0).
func (b *Buffer) Max() int {
	if len(b.items) == 0 {
		return b.base - 1
	}
	return b.base + len(b.items) - 1
}

// Contains reports whether index i is in the buffer's domain.
func (b *Buffer) Contains(i int) bool {
	return i >= b.base && i < b.base+len(b.items)
}

// Get returns buf(i).
func (b *Buffer) Get(i int) (*Transient, bool) {
	if !b.Contains(i) {
		return nil, false
	}
	return b.items[i-b.base], true
}

// Append inserts at MAX(buf)+1 and returns the new index.
func (b *Buffer) Append(t *Transient) int {
	b.own()
	b.items = append(b.items, t)
	return b.base + len(b.items) - 1
}

// AppendT is Append for a transient passed by value: the entry is
// placed in the buffer's arena, so the caller's composite literal
// stays off the heap.
func (b *Buffer) AppendT(t Transient) int {
	nt := b.alloc()
	*nt = t
	return b.Append(nt)
}

// Set replaces buf(i); it panics if i is outside the domain, since the
// step rules only rewrite live entries.
func (b *Buffer) Set(i int, t *Transient) {
	if !b.Contains(i) {
		panic(fmt.Sprintf("core: Buffer.Set(%d) outside [%d,%d]", i, b.Min(), b.Max()))
	}
	b.own()
	b.items[i-b.base] = t
}

// SetT is Set for a transient passed by value, placed in the arena
// like AppendT.
func (b *Buffer) SetT(i int, t Transient) {
	nt := b.alloc()
	*nt = t
	b.Set(i, nt)
}

// Edit returns buf(i) for in-place mutation. An entry that may still
// be shared with a clone is copied (into the arena) and re-installed
// first, so the returned transient is exclusively owned by this
// buffer. Step rules that partially resolve an entry (store
// value/address, predicted forwards) must mutate through Edit rather
// than Get.
func (b *Buffer) Edit(i int) (*Transient, bool) {
	if !b.Contains(i) {
		return nil, false
	}
	b.own()
	if i >= b.privateFrom {
		return b.items[i-b.base], true
	}
	cp := b.alloc()
	*cp = *b.items[i-b.base]
	b.items[i-b.base] = cp
	return cp, true
}

// TruncateFrom implements buf[j : j < i]: it removes every entry at
// index ≥ i.
func (b *Buffer) TruncateFrom(i int) {
	if i <= b.base {
		b.items = b.items[:0]
		return
	}
	if i > b.base+len(b.items) {
		return
	}
	b.items = b.items[:i-b.base]
}

// PopMin removes and returns buf(MIN(buf)).
func (b *Buffer) PopMin() (*Transient, bool) {
	if len(b.items) == 0 {
		return nil, false
	}
	t := b.items[0]
	b.items = b.items[1:]
	b.base++
	return t, true
}

// PopMinN removes the k lowest-indexed entries; used by call-retire and
// ret-retire, which retire their whole expansion at once.
func (b *Buffer) PopMinN(k int) {
	if k > len(b.items) {
		panic("core: PopMinN beyond buffer")
	}
	b.items = b.items[k:]
	b.base += k
}

// FenceBefore reports whether any index j < i holds a fence — the
// highlighted side condition ∀j < i : buf(j) ≠ fence on every execute
// rule.
func (b *Buffer) FenceBefore(i int) bool {
	for j := b.Min(); j < i && j <= b.Max(); j++ {
		if t, ok := b.Get(j); ok && t.Kind == TFence {
			return true
		}
	}
	return false
}

// Indices returns the live indices in increasing order.
func (b *Buffer) Indices() []int {
	out := make([]int, len(b.items))
	for i := range b.items {
		out[i] = b.base + i
	}
	return out
}

// Clone returns an independent copy in O(1). The backing array and
// the transients are shared; both buffers mark them copy-on-write, so
// neither can observe the other's subsequent mutations.
func (b *Buffer) Clone() *Buffer {
	b.shared = true
	b.privateFrom = b.base + len(b.items)
	return &Buffer{base: b.base, items: b.items, shared: true, privateFrom: b.privateFrom}
}

// String renders the buffer one entry per line, figure-style.
func (b *Buffer) String() string {
	if b.Empty() {
		return "∅"
	}
	var sb strings.Builder
	for j := b.Min(); j <= b.Max(); j++ {
		t, _ := b.Get(j)
		fmt.Fprintf(&sb, "%d ↦ %s\n", j, t)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ResolveReg implements the register resolve function (buf +i ρ)(r) of
// Fig. 3, extended per §3.5 to read through partially resolved loads:
//
//   - the latest assignment to r at an index j < i that is resolved
//     yields its value;
//   - a latest assignment that is unresolved yields ⊥ (ok == false);
//   - no assignment at all defers to ρ(r).
func (b *Buffer) ResolveReg(i int, regs *mem.RegisterFile, r isa.Reg) (mem.Value, bool) {
	hi := b.Max()
	if i-1 < hi {
		hi = i - 1
	}
	for j := hi; j >= b.Min() && j >= 1; j-- {
		t, ok := b.Get(j)
		if !ok || !t.AssignsReg(r) {
			continue
		}
		switch t.Kind {
		case TValue:
			return t.Val, true
		case TLoad:
			if t.PredFwd {
				return t.PredVal, true // §3.5 extension
			}
			return mem.Value{}, false // pending assignment: ⊥
		case TOp:
			return mem.Value{}, false // pending assignment: ⊥
		}
	}
	return regs.Read(r), true
}

// ResolveOperand lifts ResolveReg to a register-or-value operand:
// (buf +i ρ)(vℓ) = vℓ for immediates.
func (b *Buffer) ResolveOperand(i int, regs *mem.RegisterFile, o isa.Operand) (mem.Value, bool) {
	if !o.IsReg {
		return o.Imm, true
	}
	return b.ResolveReg(i, regs, o.Reg)
}

// ResolveOperands is the pointwise lifting to operand lists; it fails
// if any operand is ⊥.
func (b *Buffer) ResolveOperands(i int, regs *mem.RegisterFile, os []isa.Operand) ([]mem.Value, bool) {
	return b.ResolveOperandsInto(nil, i, regs, os)
}

// ResolveOperandsInto is ResolveOperands with a caller-supplied
// destination, reused when its capacity suffices; the step rules pass
// a per-machine scratch so per-step operand resolution allocates
// nothing. The result aliases dst and is only valid until its next
// reuse.
func (b *Buffer) ResolveOperandsInto(dst []mem.Value, i int, regs *mem.RegisterFile, os []isa.Operand) ([]mem.Value, bool) {
	if cap(dst) < len(os) {
		dst = make([]mem.Value, len(os))
	}
	dst = dst[:len(os)]
	for k, o := range os {
		v, ok := b.ResolveOperand(i, regs, o)
		if !ok {
			return nil, false
		}
		dst[k] = v
	}
	return dst, true
}
