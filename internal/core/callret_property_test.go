package core

import (
	"math/rand"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// callProgram generates a program with a random call structure: main
// calls up to three leaf functions (no recursion), each doing a few
// register/memory operations, with an occasional conditional branch
// skipping a call. This targets the Appendix A rules — call/ret
// expansion, RSB prediction, return-address stores — under the
// adversarial random scheduler.
func callProgram(rng *rand.Rand) *isa.Program {
	p := isa.NewProgram(1)
	const dataBase = 0x200
	// Leaf functions at 100, 200, 300: two ops + optional store + ret.
	leaves := []isa.Addr{100, 200, 300}
	for li, entry := range leaves {
		pt := entry
		reg := isa.Reg(4 + li)
		p.Add(pt, isa.Op(reg, isa.OpAdd, []isa.Operand{isa.R(reg), isa.ImmW(mem.Word(li + 1))}, pt+1))
		pt++
		if rng.Intn(2) == 0 {
			p.Add(pt, isa.Store(isa.R(reg), []isa.Operand{isa.ImmW(dataBase + mem.Word(li))}, pt+1))
			pt++
		}
		if rng.Intn(2) == 0 {
			p.Add(pt, isa.Load(reg, []isa.Operand{isa.ImmW(dataBase + mem.Word(rng.Intn(3)))}, pt+1))
			pt++
		}
		p.Add(pt, isa.Ret())
	}
	// Main: sequence of calls with interleaved ops and a forward
	// branch that may skip one call.
	pt := isa.Addr(1)
	p.Add(pt, isa.Op(ra, isa.OpMov, []isa.Operand{isa.ImmW(mem.Word(rng.Intn(8)))}, pt+1))
	pt++
	nCalls := 1 + rng.Intn(3)
	for c := 0; c < nCalls; c++ {
		callee := leaves[rng.Intn(len(leaves))]
		if rng.Intn(3) == 0 {
			// Branch over the call: br(lt, [ra, k], skip, call).
			p.Add(pt, isa.Br(isa.OpLt, []isa.Operand{isa.R(ra), isa.ImmW(mem.Word(rng.Intn(8)))}, pt+2, pt+1))
			pt++
		}
		p.Add(pt, isa.Call(callee, pt+1))
		pt++
		p.Add(pt, isa.Op(rb, isa.OpXor, []isa.Operand{isa.R(rb), isa.R(isa.Reg(4 + rng.Intn(3)))}, pt+1))
		pt++
	}
	for i := 0; i < 4; i++ {
		l := mem.Public
		if rng.Intn(3) == 0 {
			l = mem.Secret
		}
		p.SetData(dataBase+isa.Addr(i), mem.V(mem.Word(rng.Intn(100)), l))
	}
	p.SetRegion(0x3F0, make([]mem.Value, 16)) // call stack
	return p
}

// TestSequentialEquivalenceWithCalls is Theorem 3.2/B.7 restricted to
// call/ret-heavy programs: out-of-order executions under adversarial
// random schedules — including speculative returns, RSB rollbacks,
// and return-address forwarding — commit the same state as the
// canonical sequential execution.
func TestSequentialEquivalenceWithCalls(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := newRng(int64(9000 + trial))
		prog := callProgram(rng)
		m := New(prog)
		m.Regs.Write(mem.RSP, mem.Pub(0x3FF))
		init := m.Clone()

		randomSchedule(m, rng, 600)
		n := m.Retired

		seqM := init.Clone()
		if _, _, err := RunSequential(seqM, n); err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		if !m.ApproxEqual(seqM) {
			t.Fatalf("trial %d: call-structured OoO (N=%d) diverges from sequential", trial, n)
		}
	}
}

// TestLabelStabilityWithCalls is Theorem B.9 over the same family.
func TestLabelStabilityWithCalls(t *testing.T) {
	checked := 0
	for trial := 0; trial < 300 && checked < 80; trial++ {
		rng := newRng(int64(10000 + trial))
		prog := callProgram(rng)
		mk := func() *Machine {
			m := New(prog)
			m.Regs.Write(mem.RSP, mem.Pub(0x3FF))
			return m
		}
		spec := mk()
		sched := randomSchedule(spec, rng, 600)
		replay := mk()
		trace, err := replay.Run(sched)
		if err != nil {
			t.Fatalf("trial %d: replay: %v", trial, err)
		}
		if trace.HasSecret() {
			continue
		}
		checked++
		seqM := mk()
		_, seqTrace, err := RunSequential(seqM, 10000)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		if seqTrace.HasSecret() {
			t.Fatalf("trial %d: label stability violated: %s", trial, seqTrace)
		}
	}
	if checked < 20 {
		t.Fatalf("too few qualifying executions: %d", checked)
	}
}
