package core

import (
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// TestBufferCloneIndependence drives the copy-on-write reorder buffer
// through every mutating operation on both sides of a fork and checks
// the sibling never observes the change.
func TestBufferCloneIndependence(t *testing.T) {
	b := NewBuffer()
	b.Append(&Transient{Kind: TStore, Src: isa.R(1), Args: []isa.Operand{isa.ImmW(0x40)}})
	b.Append(&Transient{Kind: TLoad, Dst: 2, Args: []isa.Operand{isa.ImmW(0x41)}})
	b.Append(&Transient{Kind: TFence})

	c := b.Clone()

	// Entry-level mutation through Edit must not alias the sibling.
	et, ok := c.Edit(1)
	if !ok {
		t.Fatal("Edit(1) failed")
	}
	et.ValKnown = true
	et.SVal = mem.Sec(9)
	if bt, _ := b.Get(1); bt.ValKnown {
		t.Fatal("Edit on the clone mutated the original's entry")
	}

	// Array-level mutation: Set and Append on the original must not
	// show up in the clone.
	b.SetT(2, Transient{Kind: TValue, Dst: 2, Val: mem.Pub(5)})
	b.AppendT(Transient{Kind: TFence})
	if ct, _ := c.Get(2); ct.Kind != TLoad {
		t.Fatal("Set on the original leaked into the clone")
	}
	if c.Max() != 3 {
		t.Fatalf("clone Max = %d, want 3", c.Max())
	}

	// Reslicing ops on one side leave the other intact.
	c.TruncateFrom(2)
	if b.Max() != 4 {
		t.Fatalf("original Max = %d after clone truncate, want 4", b.Max())
	}
	if _, ok := b.Get(2); !ok {
		t.Fatal("original lost index 2 after clone truncate")
	}
	c.AppendT(Transient{Kind: TJump, Target: 7})
	if bt, _ := b.Get(2); bt.Kind != TValue {
		t.Fatal("clone append-after-truncate overwrote the original's entry")
	}
}

// TestBufferEditOwnsAfterPop checks the privateFrom watermark across
// PopMin: entries retained from before a clone stay copy-on-write even
// as the window slides.
func TestBufferEditOwnsAfterPop(t *testing.T) {
	b := NewBuffer()
	for i := 0; i < 4; i++ {
		b.AppendT(Transient{Kind: TStore, Src: isa.R(isa.Reg(i)), Args: []isa.Operand{isa.ImmW(mem.Word(i))}})
	}
	c := b.Clone()
	b.PopMin()
	et, _ := b.Edit(2)
	et.ValKnown = true
	if ct, _ := c.Get(2); ct.ValKnown {
		t.Fatal("post-pop Edit aliased the clone")
	}
}

// TestRSBCloneIndependence covers the shared-tail journal: appends and
// rollbacks on either side of a fork stay invisible to the other.
func TestRSBCloneIndependence(t *testing.T) {
	s := NewRSB(RSBAttackerChoice)
	s.Push(1, 4)
	s.Push(2, 5)
	c := s.Clone()

	s.Pop(3)
	if top, _ := c.Top(); top != 5 {
		t.Fatalf("clone top = %d after original's pop, want 5", top)
	}
	c.Push(3, 9)
	if top, _ := s.Top(); top != 4 {
		t.Fatalf("original top = %d after clone's push, want 4", top)
	}
	// Rollback on the clone (a reslice) must not disturb the original.
	c.Rollback(2)
	if top, _ := c.Top(); top != 4 {
		t.Fatalf("clone top after rollback = %d, want 4", top)
	}
	if s.Depth() != 1 { // push 4, push 5, pop
		t.Fatalf("original depth = %d, want 1", s.Depth())
	}
	// Append-after-rollback lands in an owned array, not the shared one.
	c.Push(2, 8)
	if top, _ := s.Top(); top != 4 {
		t.Fatalf("original top = %d after clone's post-rollback push, want 4", top)
	}
}

// TestFingerprintStableAcrossCOWChains replays one schedule on a
// machine that is re-cloned at every step and on a machine stepped
// directly: the two must fingerprint identically at every step, so the
// dedup table sees the same signatures whether or not states passed
// through clone chains (and arenas, scratch buffers, and watermarks
// never leak into the hash).
func TestFingerprintStableAcrossCOWChains(t *testing.T) {
	schedule := Schedule{
		FetchGuess(true), Fetch(), Fetch(), Execute(2),
		ExecuteValue(3), ExecuteAddr(3), Execute(1), Retire(),
	}
	direct := fingerprintMachine()
	chained := fingerprintMachine()
	for i, d := range schedule {
		if _, err := direct.Step(d); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		chained = chained.Clone() // fork before every step, like the explorer
		if _, err := chained.Step(d); err != nil {
			t.Fatalf("chained step %d: %v", i, err)
		}
		if got, want := chained.Fingerprint(), direct.Fingerprint(); got != want {
			t.Fatalf("step %d: chained fingerprint %#x != direct %#x", i, got, want)
		}
	}
	// And the abandoned ancestors still fingerprint like a fresh replay
	// of their own prefix (no retroactive corruption).
	replay := fingerprintMachine()
	if replay.Fingerprint() != fingerprintMachine().Fingerprint() {
		t.Fatal("fresh machines must agree")
	}
}

// TestMachineCloneSemanticsPreserved replays a full schedule on a
// cloned machine and its original: stepping the clone must leave the
// original's configuration byte-for-byte intact (ApproxEqual + PC +
// buffer rendering), the property the exploration tree depends on.
func TestMachineCloneSemanticsPreserved(t *testing.T) {
	m := fingerprintMachine()
	if _, err := m.Step(FetchGuess(true)); err != nil {
		t.Fatal(err)
	}
	before := m.Fingerprint()
	c := m.Clone()
	for _, d := range []Directive{Fetch(), Fetch(), Execute(2), ExecuteValue(3), ExecuteAddr(3)} {
		if _, err := c.Step(d); err != nil {
			t.Fatal(err)
		}
	}
	if m.Fingerprint() != before {
		t.Fatal("stepping a clone changed the original's fingerprint")
	}
}
