package core

import (
	"errors"
	"fmt"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// ErrStall is wrapped by step errors that mean "this directive is not
// applicable in this configuration" — the schedule is not well-formed
// at this point. Distinguishing stalls from machine faults lets
// schedule generators probe directives safely.
var ErrStall = errors.New("directive not applicable")

// StepError reports why a directive could not step.
type StepError struct {
	Directive Directive
	Reason    string
	Fault     bool // true for machine faults (e.g. wild strict-memory read)
}

// Error implements error.
func (e *StepError) Error() string {
	kind := "stall"
	if e.Fault {
		kind = "fault"
	}
	return fmt.Sprintf("core: %s on %q: %s", kind, e.Directive, e.Reason)
}

// Unwrap lets errors.Is(err, ErrStall) identify non-fault step errors.
func (e *StepError) Unwrap() error {
	if e.Fault {
		return nil
	}
	return ErrStall
}

func stall(d Directive, format string, args ...any) error {
	return &StepError{Directive: d, Reason: fmt.Sprintf(format, args...)}
}

func fault(d Directive, format string, args ...any) error {
	return &StepError{Directive: d, Reason: fmt.Sprintf(format, args...), Fault: true}
}

// Machine is a configuration C = (ρ, µ, n, buf) — extended with the
// return stack buffer σ of Appendix A — together with the static
// program and the machine parameters (address mode, RSB policy).
// Step mutates the machine in place; Clone forks it for exploration.
type Machine struct {
	Prog      *isa.Program
	AddrMode  isa.AddrMode
	RSBPolicy RSBPolicy

	Regs *mem.RegisterFile // ρ
	Mem  *mem.Memory       // µ (data half)
	PC   isa.Addr          // n
	Buf  *Buffer           // buf
	RSB  *RSB              // σ

	Retired int // N: retired-instruction count (retire directives)

	// opScratch backs per-step operand resolution (see
	// Buffer.ResolveOperandsInto) and obsScratch the per-step
	// observation lists Step returns; neither is part of the
	// configuration.
	opScratch  [4]mem.Value
	obsScratch [2]Observation
}

// obs1 and obs2 return the step's observations in the machine's
// scratch buffer — valid until the next Step call (Run and the
// exploration engine consume them immediately; RunRecorded copies).
func (m *Machine) obs1(a Observation) []Observation {
	m.obsScratch[0] = a
	return m.obsScratch[:1]
}

func (m *Machine) obs2(a, b Observation) []Observation {
	m.obsScratch[0], m.obsScratch[1] = a, b
	return m.obsScratch[:2]
}

// Option configures a Machine at construction.
type Option func(*Machine)

// WithAddrMode selects the Jaddr(·)K instantiation.
func WithAddrMode(mode isa.AddrMode) Option {
	return func(m *Machine) { m.AddrMode = mode }
}

// WithRSBPolicy selects the empty-RSB behaviour.
func WithRSBPolicy(p RSBPolicy) Option {
	return func(m *Machine) {
		m.RSBPolicy = p
		m.RSB = NewRSB(p)
	}
}

// WithStrictMemory makes reads of unmapped data addresses machine
// faults instead of zeroes.
func WithStrictMemory() Option {
	return func(m *Machine) {
		strict := mem.NewStrictMemory()
		for _, a := range m.Mem.Addresses() {
			v, _ := m.Mem.Read(a)
			strict.Write(a, v)
		}
		m.Mem = strict
	}
}

// New builds a machine in the initial configuration of prog: empty
// buffer, empty RSB, PC at the entry point, memory seeded from the
// program's data image.
func New(prog *isa.Program, opts ...Option) *Machine {
	m := &Machine{
		Prog: prog,
		Regs: mem.NewRegisterFile(),
		Mem:  prog.InitialMemory(),
		PC:   prog.Entry,
		Buf:  NewBuffer(),
		RSB:  NewRSB(RSBAttackerChoice),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Clone forks the machine; the program is shared (it is immutable
// during execution).
func (m *Machine) Clone() *Machine {
	return &Machine{
		Prog:      m.Prog,
		AddrMode:  m.AddrMode,
		RSBPolicy: m.RSBPolicy,
		Regs:      m.Regs.Clone(),
		Mem:       m.Mem.Clone(),
		PC:        m.PC,
		Buf:       m.Buf.Clone(),
		RSB:       m.RSB.Clone(),
		Retired:   m.Retired,
	}
}

// Halted reports whether execution is complete: nothing in flight and
// nothing to fetch (the PC is a halt point).
func (m *Machine) Halted() bool {
	if !m.Buf.Empty() {
		return false
	}
	_, ok := m.Prog.At(m.PC)
	return !ok
}

// Terminal reports |buf| = 0, the paper's initial/terminal condition
// (Def. B.2).
func (m *Machine) Terminal() bool { return m.Buf.Empty() }

// LowEquiv reports C ≃pub C′: agreement on public register and memory
// values. It is meaningful for initial/terminal configurations, where
// the speculative state is empty.
func (m *Machine) LowEquiv(o *Machine) bool {
	return m.PC == o.PC && m.Regs.LowEquiv(o.Regs) && m.Mem.LowEquiv(o.Mem)
}

// ApproxEqual reports C ≈ C′: equal memories and register files, with
// speculative state (buffer, RSB, PC) disregarded — the equivalence of
// Theorem 3.2.
func (m *Machine) ApproxEqual(o *Machine) bool {
	return m.Regs.Equal(o.Regs) && m.Mem.Equal(o.Mem)
}

// Equal reports full configuration equality (used for terminal
// configurations, where it strengthens ≈ per Corollary B.8).
func (m *Machine) Equal(o *Machine) bool {
	if !m.ApproxEqual(o) || m.PC != o.PC {
		return false
	}
	if m.Buf.Len() != o.Buf.Len() {
		return false
	}
	for _, i := range m.Buf.Indices() {
		a, _ := m.Buf.Get(i)
		b, ok := o.Buf.Get(i)
		if !ok || a.String() != b.String() {
			return false
		}
	}
	return true
}

// Step executes one small step C ↪→ᵈ C′, returning the observations o
// the step produces. A nil error means the directive applied; a
// returned error wrapping ErrStall means the schedule is not
// well-formed here and the machine is unchanged. The returned slice is
// backed by a per-machine scratch buffer and is only valid until the
// next Step call on this machine; consume or copy it first (Run
// appends the values, RunRecorded copies).
func (m *Machine) Step(d Directive) ([]Observation, error) {
	switch d.Kind {
	case DFetch, DFetchGuess, DFetchTarget:
		return m.stepFetch(d)
	case DExecute:
		return m.stepExecute(d)
	case DExecValue:
		return m.stepExecuteValue(d)
	case DExecAddr:
		return m.stepExecuteAddr(d)
	case DExecFwd:
		return m.stepExecuteFwd(d)
	case DRetire:
		return m.stepRetire(d)
	}
	return nil, stall(d, "unknown directive kind")
}

// Run steps through the schedule, concatenating observations. On a
// step error it stops and returns the trace so far alongside the
// error.
func (m *Machine) Run(ds Schedule) (Trace, error) {
	var trace Trace
	for _, d := range ds {
		obs, err := m.Step(d)
		trace = append(trace, obs...)
		if err != nil {
			return trace, err
		}
	}
	return trace, nil
}

// StepRecord pairs a directive with its observations, for
// figure-style rendering of executions.
type StepRecord struct {
	Directive Directive
	Obs       []Observation
}

// RunRecorded is Run with per-step observation records. The records
// copy each step's observations out of the machine's scratch buffer.
func (m *Machine) RunRecorded(ds Schedule) ([]StepRecord, error) {
	recs := make([]StepRecord, 0, len(ds))
	for _, d := range ds {
		obs, err := m.Step(d)
		recs = append(recs, StepRecord{Directive: d, Obs: append([]Observation(nil), obs...)})
		if err != nil {
			return recs, err
		}
	}
	return recs, nil
}

// ---------------------------------------------------------------------
// Fetch stage
// ---------------------------------------------------------------------

func (m *Machine) stepFetch(d Directive) ([]Observation, error) {
	in, ok := m.Prog.At(m.PC)
	if !ok {
		return nil, stall(d, "nothing to fetch at halt point %d", m.PC)
	}
	switch in.Kind {
	case isa.KOp, isa.KLoad, isa.KStore, isa.KFence:
		// simple-fetch
		if d.Kind != DFetch {
			return nil, stall(d, "%s requires a plain fetch", in.Kind)
		}
		t := transientValue(in)
		t.PP = m.PC
		m.Buf.AppendT(t)
		m.PC = in.Next
		return nil, nil

	case isa.KBr:
		// cond-fetch: the directive's guess selects the speculative arm
		// and is recorded as n0 in the transient branch.
		if d.Kind != DFetchGuess {
			return nil, stall(d, "br requires fetch: true/false")
		}
		guess := in.False
		if d.Taken {
			guess = in.True
		}
		m.Buf.AppendT(Transient{
			Kind: TBr, Op: in.Op, Args: in.Args,
			Guess: guess, True: in.True, False: in.False,
			PP: m.PC,
		})
		m.PC = guess
		return nil, nil

	case isa.KJmpi:
		// jmpi-fetch: the attacker supplies the predicted target n′.
		if d.Kind != DFetchTarget {
			return nil, stall(d, "jmpi requires fetch: n")
		}
		m.Buf.AppendT(Transient{Kind: TJmpi, Args: in.Args, Guess: d.Target, PP: m.PC})
		m.PC = d.Target
		return nil, nil

	case isa.KCall:
		// call-direct-fetch: unpack into call marker, stack-pointer
		// bump, and return-address store; push the return point onto σ.
		if d.Kind != DFetch {
			return nil, stall(d, "call requires a plain fetch")
		}
		i := m.Buf.AppendT(Transient{Kind: TCall, PP: m.PC})
		m.Buf.AppendT(Transient{Kind: TOp, Dst: mem.RSP, Op: isa.OpSucc, Args: []isa.Operand{isa.R(mem.RSP)}, PP: m.PC})
		m.Buf.AppendT(Transient{
			Kind: TStore, Src: isa.Imm(mem.Pub(in.RetPt)),
			ValKnown: true, SVal: mem.Pub(in.RetPt),
			Args: []isa.Operand{isa.R(mem.RSP)},
			PP:   m.PC,
		})
		m.RSB.Push(i, in.RetPt)
		m.PC = in.Callee
		return nil, nil

	case isa.KRet:
		// ret-fetch-rsb / ret-fetch-rsb-empty: unpack into ret marker,
		// return-address load, stack-pointer pop, and indirect jump
		// predicted to top(σ) — or to the attacker's choice when σ is
		// empty (policy-dependent).
		target, haveTop := m.RSB.Top()
		switch {
		case haveTop:
			if d.Kind != DFetch {
				return nil, stall(d, "ret with non-empty RSB requires a plain fetch")
			}
		case m.RSBPolicy == RSBRefuse:
			return nil, stall(d, "ret with empty RSB: processor refuses to speculate")
		default: // RSBAttackerChoice with empty RSB
			if d.Kind != DFetchTarget {
				return nil, stall(d, "ret with empty RSB requires fetch: n")
			}
			target = d.Target
		}
		retPt := m.PC
		i := m.Buf.AppendT(Transient{Kind: TRet, PP: retPt})
		m.Buf.AppendT(Transient{Kind: TLoad, Dst: mem.RTMP, Args: []isa.Operand{isa.R(mem.RSP)}, PP: retPt})
		m.Buf.AppendT(Transient{Kind: TOp, Dst: mem.RSP, Op: isa.OpPred, Args: []isa.Operand{isa.R(mem.RSP)}, PP: retPt})
		m.Buf.AppendT(Transient{Kind: TJmpi, Args: []isa.Operand{isa.R(mem.RTMP)}, Guess: target, PP: retPt})
		m.RSB.Pop(i)
		m.PC = target
		return nil, nil
	}
	return nil, stall(d, "unfetchable instruction kind %v", in.Kind)
}

// ---------------------------------------------------------------------
// Execute stage
// ---------------------------------------------------------------------

func (m *Machine) stepExecute(d Directive) ([]Observation, error) {
	t, ok := m.Buf.Get(d.I)
	if !ok {
		return nil, stall(d, "index %d not in buffer [%d,%d]", d.I, m.Buf.Min(), m.Buf.Max())
	}
	if m.Buf.FenceBefore(d.I) {
		return nil, stall(d, "fence pending before index %d", d.I)
	}
	switch t.Kind {
	case TOp:
		return m.execOp(d, t)
	case TBr:
		return m.execBranch(d, t)
	case TJmpi:
		return m.execJmpi(d, t)
	case TLoad:
		if t.PredFwd {
			return m.execPredictedLoad(d, t)
		}
		return m.execLoad(d, t)
	}
	return nil, stall(d, "index %d (%s) has no execute rule", d.I, t)
}

func (m *Machine) execOp(d Directive, t *Transient) ([]Observation, error) {
	vals, ok := m.Buf.ResolveOperandsInto(m.opScratch[:0], d.I, m.Regs, t.Args)
	if !ok {
		return nil, stall(d, "operands of %s unresolved", t)
	}
	v, err := isa.Eval(t.Op, vals)
	if err != nil {
		return nil, fault(d, "eval: %v", err)
	}
	m.Buf.SetT(d.I, Transient{Kind: TValue, Dst: t.Dst, Val: v})
	return nil, nil
}

func (m *Machine) execBranch(d Directive, t *Transient) ([]Observation, error) {
	vals, ok := m.Buf.ResolveOperandsInto(m.opScratch[:0], d.I, m.Regs, t.Args)
	if !ok {
		return nil, stall(d, "branch condition unresolved")
	}
	cond, err := isa.Eval(t.Op, vals)
	if err != nil {
		return nil, fault(d, "eval: %v", err)
	}
	actual := t.False
	if cond.W != 0 {
		actual = t.True
	}
	if actual == t.Guess {
		// cond-execute-correct
		m.Buf.SetT(d.I, Transient{Kind: TJump, Target: actual})
		return m.obs1(JumpObs(actual, cond.L)), nil
	}
	// cond-execute-incorrect: discard everything from i on, reinstall
	// the resolved jump at i, redirect the PC, roll back σ.
	m.Buf.TruncateFrom(d.I)
	m.RSB.Rollback(d.I)
	m.Buf.AppendT(Transient{Kind: TJump, Target: actual})
	m.PC = actual
	return m.obs2(RollbackObs(), JumpObs(actual, cond.L)), nil
}

func (m *Machine) execJmpi(d Directive, t *Transient) ([]Observation, error) {
	vals, ok := m.Buf.ResolveOperandsInto(m.opScratch[:0], d.I, m.Regs, t.Args)
	if !ok {
		return nil, stall(d, "jump target operands unresolved")
	}
	target, err := isa.EvalAddr(m.AddrMode, vals)
	if err != nil {
		return nil, fault(d, "addr: %v", err)
	}
	if target.W == t.Guess {
		// jmpi-execute-correct
		m.Buf.SetT(d.I, Transient{Kind: TJump, Target: target.W})
		return m.obs1(JumpObs(target.W, target.L)), nil
	}
	// jmpi-execute-incorrect
	m.Buf.TruncateFrom(d.I)
	m.RSB.Rollback(d.I)
	m.Buf.AppendT(Transient{Kind: TJump, Target: target.W})
	m.PC = target.W
	return m.obs2(RollbackObs(), JumpObs(target.W, target.L)), nil
}

func (m *Machine) execLoad(d Directive, t *Transient) ([]Observation, error) {
	vals, ok := m.Buf.ResolveOperandsInto(m.opScratch[:0], d.I, m.Regs, t.Args)
	if !ok {
		return nil, stall(d, "load address operands unresolved")
	}
	addr, err := isa.EvalAddr(m.AddrMode, vals)
	if err != nil {
		return nil, fault(d, "addr: %v", err)
	}
	// Most recent prior store with a resolved matching address, if any.
	// Stores with unresolved addresses are skipped — which is exactly
	// what makes Spectre v4 expressible.
	for j := d.I - 1; j >= m.Buf.Min() && j >= 1; j-- {
		st, ok := m.Buf.Get(j)
		if !ok || !st.IsResolvedStoreTo(addr.W) {
			continue
		}
		if !st.ValKnown {
			// load-execute-forward needs the store's data; no rule
			// applies until the value resolves.
			return nil, stall(d, "matching store at %d has unresolved data", j)
		}
		// load-execute-forward
		m.Buf.SetT(d.I, Transient{
			Kind: TValue, Dst: t.Dst, Val: st.SVal,
			FromLoad: true, Dep: j, DataAddr: addr.W, PP: t.PP,
		})
		return m.obs1(FwdObs(addr.W, addr.L)), nil
	}
	// load-execute-nodep
	v, err := m.Mem.Read(addr.W)
	if err != nil {
		return nil, fault(d, "%v", err)
	}
	m.Buf.SetT(d.I, Transient{
		Kind: TValue, Dst: t.Dst, Val: v,
		FromLoad: true, Dep: NoDep, DataAddr: addr.W, PP: t.PP,
	})
	return m.obs1(ReadObs(addr.W, addr.L)), nil
}

// execPredictedLoad resolves a partially resolved load
// (r = load(r⃗v, (vℓ, j)))n — the §3.5 aliasing-prediction extension.
func (m *Machine) execPredictedLoad(d Directive, t *Transient) ([]Observation, error) {
	vals, ok := m.Buf.ResolveOperandsInto(m.opScratch[:0], d.I, m.Regs, t.Args)
	if !ok {
		return nil, stall(d, "load address operands unresolved")
	}
	addr, err := isa.EvalAddr(m.AddrMode, vals)
	if err != nil {
		return nil, fault(d, "addr: %v", err)
	}
	j := t.PredFrom
	if st, inBuf := m.Buf.Get(j); inBuf {
		// Originating store still in the reorder buffer.
		mismatch := st.AddrKnown && st.SAddr.W != addr.W
		intervening := false
		for k := j + 1; k < d.I; k++ {
			if s2, ok := m.Buf.Get(k); ok && s2.IsResolvedStoreTo(addr.W) {
				intervening = true
				break
			}
		}
		if !mismatch && !intervening {
			// load-execute-addr-ok
			m.Buf.SetT(d.I, Transient{
				Kind: TValue, Dst: t.Dst, Val: st.SVal,
				FromLoad: true, Dep: j, DataAddr: addr.W, PP: t.PP,
			})
			return m.obs1(FwdObs(addr.W, addr.L)), nil
		}
		// load-execute-addr-hazard: discard the load and everything
		// after it; restart at the load's own program point.
		m.Buf.TruncateFrom(d.I)
		m.RSB.Rollback(d.I)
		m.PC = t.PP
		return m.obs2(RollbackObs(), FwdObs(addr.W, addr.L)), nil
	}
	// Originating store already retired: validate against memory,
	// provided no other buffered store resolves to this address.
	for k := m.Buf.Min(); k < d.I; k++ {
		if s2, ok := m.Buf.Get(k); ok && s2.IsResolvedStoreTo(addr.W) {
			return nil, stall(d, "prior store at %d to %#x must resolve first", k, addr.W)
		}
	}
	v, err := m.Mem.Read(addr.W)
	if err != nil {
		return nil, fault(d, "%v", err)
	}
	if v.Equal(t.PredVal) {
		// load-execute-addr-mem-match
		m.Buf.SetT(d.I, Transient{
			Kind: TValue, Dst: t.Dst, Val: v,
			FromLoad: true, Dep: NoDep, DataAddr: addr.W, PP: t.PP,
		})
		return m.obs1(ReadObs(addr.W, addr.L)), nil
	}
	// load-execute-addr-mem-hazard
	m.Buf.TruncateFrom(d.I)
	m.RSB.Rollback(d.I)
	m.PC = t.PP
	return m.obs2(RollbackObs(), ReadObs(addr.W, addr.L)), nil
}

func (m *Machine) stepExecuteValue(d Directive) ([]Observation, error) {
	t, ok := m.Buf.Get(d.I)
	if !ok || t.Kind != TStore {
		return nil, stall(d, "execute:value needs a store at %d", d.I)
	}
	if m.Buf.FenceBefore(d.I) {
		return nil, stall(d, "fence pending before index %d", d.I)
	}
	if t.ValKnown {
		return nil, stall(d, "store value already resolved")
	}
	v, ok := m.Buf.ResolveOperand(d.I, m.Regs, t.Src)
	if !ok {
		return nil, stall(d, "store data operand unresolved")
	}
	// store-execute-value
	t, _ = m.Buf.Edit(d.I)
	t.ValKnown = true
	t.SVal = v
	return nil, nil
}

func (m *Machine) stepExecuteAddr(d Directive) ([]Observation, error) {
	t, ok := m.Buf.Get(d.I)
	if !ok || t.Kind != TStore {
		return nil, stall(d, "execute:addr needs a store at %d", d.I)
	}
	if m.Buf.FenceBefore(d.I) {
		return nil, stall(d, "fence pending before index %d", d.I)
	}
	if t.AddrKnown {
		return nil, stall(d, "store address already resolved")
	}
	vals, ok := m.Buf.ResolveOperandsInto(m.opScratch[:0], d.I, m.Regs, t.Args)
	if !ok {
		return nil, stall(d, "store address operands unresolved")
	}
	addr, err := isa.EvalAddr(m.AddrMode, vals)
	if err != nil {
		return nil, fault(d, "addr: %v", err)
	}
	// Forwarding-correctness check over all later resolved loads
	// (r = vℓ{jk, ak}): a hazard is the earliest k > i with
	// (ak = a ∧ jk < i) ∨ (jk = i ∧ ak ≠ a), where ⊥ < n for all n.
	hazardAt := 0
	var hazardLoad *Transient
	for k := d.I + 1; k <= m.Buf.Max(); k++ {
		lv, ok := m.Buf.Get(k)
		if !ok || lv.Kind != TValue || !lv.FromLoad {
			continue
		}
		staleRead := lv.DataAddr == addr.W && lv.Dep < d.I
		wrongFwd := lv.Dep == d.I && lv.DataAddr != addr.W
		if staleRead || wrongFwd {
			hazardAt = k
			hazardLoad = lv
			break
		}
	}
	if hazardLoad == nil {
		// store-execute-addr-ok
		t, _ = m.Buf.Edit(d.I)
		t.AddrKnown = true
		t.SAddr = addr
		return m.obs1(FwdObs(addr.W, addr.L)), nil
	}
	// store-execute-addr-hazard: restart at the stale load's program
	// point, discarding it and everything younger.
	restart := hazardLoad.PP
	m.Buf.TruncateFrom(hazardAt)
	m.RSB.Rollback(hazardAt)
	t, _ = m.Buf.Edit(d.I)
	t.AddrKnown = true
	t.SAddr = addr
	m.PC = restart
	return m.obs2(RollbackObs(), FwdObs(addr.W, addr.L)), nil
}

func (m *Machine) stepExecuteFwd(d Directive) ([]Observation, error) {
	t, ok := m.Buf.Get(d.I)
	if !ok || t.Kind != TLoad {
		return nil, stall(d, "execute:fwd needs an unresolved load at %d", d.I)
	}
	if t.PredFwd {
		return nil, stall(d, "load already carries a predicted forward")
	}
	if m.Buf.FenceBefore(d.I) {
		return nil, stall(d, "fence pending before index %d", d.I)
	}
	if d.From >= d.I {
		return nil, stall(d, "forwarding store %d must be older than load %d", d.From, d.I)
	}
	st, ok := m.Buf.Get(d.From)
	if !ok || st.Kind != TStore || !st.ValKnown {
		return nil, stall(d, "index %d is not a value-resolved store", d.From)
	}
	// load-execute-forwarded-guessed
	t, _ = m.Buf.Edit(d.I)
	t.PredFwd = true
	t.PredVal = st.SVal
	t.PredFrom = d.From
	return nil, nil
}

// ---------------------------------------------------------------------
// Retire stage
// ---------------------------------------------------------------------

func (m *Machine) stepRetire(d Directive) ([]Observation, error) {
	i := m.Buf.Min()
	t, ok := m.Buf.Get(i)
	if !ok {
		return nil, stall(d, "empty reorder buffer")
	}
	switch t.Kind {
	case TValue:
		// value-retire (covers resolved ops and resolved loads)
		m.Regs.Write(t.Dst, t.Val)
		m.Buf.PopMin()
		m.Retired++
		return nil, nil

	case TJump:
		// jump-retire
		m.Buf.PopMin()
		m.Retired++
		return nil, nil

	case TStore:
		// store-retire
		if !t.ValKnown || !t.AddrKnown {
			return nil, stall(d, "store not fully resolved: %s", t)
		}
		m.Mem.Write(t.SAddr.W, t.SVal)
		m.Buf.PopMin()
		m.Retired++
		return m.obs1(WriteObs(t.SAddr.W, t.SAddr.L)), nil

	case TFence:
		// fence-retire
		m.Buf.PopMin()
		m.Retired++
		return nil, nil

	case TCall:
		// call-retire: the whole expansion retires at once.
		rsp, ok1 := m.Buf.Get(i + 1)
		st, ok2 := m.Buf.Get(i + 2)
		if !ok1 || !ok2 || rsp.Kind != TValue || st.Kind != TStore || !st.ValKnown || !st.AddrKnown {
			return nil, stall(d, "call expansion not fully resolved")
		}
		m.Regs.Write(mem.RSP, rsp.Val)
		m.Mem.Write(st.SAddr.W, st.SVal)
		m.Buf.PopMinN(3)
		m.Retired++
		return m.obs1(WriteObs(st.SAddr.W, st.SAddr.L)), nil

	case TRet:
		// ret-retire: commits the popped stack pointer; rtmp is
		// scratch and is deliberately not committed (Appendix A).
		tmp, ok1 := m.Buf.Get(i + 1)
		rsp, ok2 := m.Buf.Get(i + 2)
		jmp, ok3 := m.Buf.Get(i + 3)
		if !ok1 || !ok2 || !ok3 ||
			tmp.Kind != TValue || rsp.Kind != TValue || jmp.Kind != TJump {
			return nil, stall(d, "ret expansion not fully resolved")
		}
		m.Regs.Write(mem.RSP, rsp.Val)
		m.Buf.PopMinN(4)
		m.Retired++
		return nil, nil
	}
	return nil, stall(d, "index %d (%s) has no retire rule", i, t)
}
