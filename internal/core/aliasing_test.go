package core

import (
	"errors"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// aliasProgram: a store whose value matches memory, a store whose
// value does not, and a load to forward into.
//
//	1: store(7, [0x50])      (same value as µ(0x50))
//	2: (ra = load([0x50]))
//	3: (rb = load([0x51]))
func aliasProgram(storeVal mem.Word) *isa.Program {
	b := isa.NewBuilder(1)
	b.Store(isa.ImmW(storeVal), isa.ImmW(0x50))
	b.Load(ra, isa.ImmW(0x50))
	b.Load(rb, isa.ImmW(0x51))
	b.Data(0x50, mem.Pub(7))
	b.Data(0x51, mem.Pub(9))
	return b.MustBuild()
}

// TestPredictedLoadMemMatch exercises load-execute-addr-mem-match: the
// originating store retires before the partially resolved load
// resolves; the forwarded value agrees with memory, so the load
// completes as if read from memory (⊥ dependency, read observation).
func TestPredictedLoadMemMatch(t *testing.T) {
	m := New(aliasProgram(7))
	mustStep(t, m, Fetch()) // 1: store (value pre-resolved)
	mustStep(t, m, Fetch()) // 2: load
	// Predict forwarding from the store, then retire the store.
	mustStep(t, m, ExecuteFwd(2, 1))
	obs := mustStep(t, m, ExecuteAddr(1))
	wantTrace(t, obs, FwdObs(0x50, mem.Public))
	obs = mustStep(t, m, Retire())
	wantTrace(t, obs, WriteObs(0x50, mem.Public))
	if m.Buf.Contains(1) {
		t.Fatal("store must have retired")
	}
	// Resolve the load: store gone, memory agrees (7 == 7).
	obs = mustStep(t, m, Execute(2))
	wantTrace(t, obs, ReadObs(0x50, mem.Public))
	wantBufEntry(t, m, 2, "(ra = 7pub{⊥, 0x50})")
}

// TestPredictedLoadMemHazard exercises load-execute-addr-mem-hazard:
// the retired store wrote a different value than the one speculatively
// forwarded (the forward came from an older draft of the program
// state), so the load rolls back to its own program point.
func TestPredictedLoadMemHazard(t *testing.T) {
	m := New(aliasProgram(8)) // store writes 8 over the 7 in memory
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, ExecuteFwd(2, 1))
	mustStep(t, m, ExecuteAddr(1))
	mustStep(t, m, Retire()) // µ(0x50) = 8, store leaves the buffer
	// Make the memory check fail: a younger store to 0x50 cannot
	// retire past the load, so model the divergence directly — the
	// configuration where µ no longer matches the forwarded value is
	// what the rule's precondition (v′ℓ′ ≠ vℓ) quantifies over.
	m.Mem.Write(0x50, mem.Pub(99))
	obs := mustStep(t, m, Execute(2))
	wantTrace(t, obs, RollbackObs(), ReadObs(0x50, mem.Public))
	if m.PC != 2 {
		t.Fatalf("PC = %d, want the load's program point 2", m.PC)
	}
	wantNoBufEntry(t, m, 2)
}

// TestPredictedLoadBlockedByPriorStore: with the originating store
// retired but a *different* prior store resolved to the same address
// still in the buffer, neither §3.5 memory rule applies — the
// directive stalls until that store is handled.
func TestPredictedLoadBlockedByPriorStore(t *testing.T) {
	//	1: store(7, [0x50])   — originating store, will retire
	//	2: store(5, [0x50])   — intervening store, stays buffered
	//	3: (ra = load([0x50]))
	b := isa.NewBuilder(1)
	b.Store(isa.ImmW(7), isa.ImmW(0x50))
	b.Store(isa.ImmW(5), isa.ImmW(0x50))
	b.Load(ra, isa.ImmW(0x50))
	b.Data(0x50, mem.Pub(7))
	m := New(b.MustBuild())
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, ExecuteFwd(3, 1))
	mustStep(t, m, ExecuteAddr(1))
	mustStep(t, m, Retire()) // originating store retired
	mustStep(t, m, ExecuteAddr(2))
	if _, err := m.Step(Execute(3)); !errors.Is(err, ErrStall) {
		t.Fatalf("want stall on intervening resolved store, got %v", err)
	}
}

// TestPredictedLoadIntervenigStoreHazard: originating store still
// buffered, but a *newer* store between it and the load resolves to
// the load's address — load-execute-addr-hazard fires.
func TestPredictedLoadInterveningStoreHazard(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Store(isa.ImmW(7), isa.ImmW(0x50))
	b.Store(isa.ImmW(5), isa.ImmW(0x50))
	b.Load(ra, isa.ImmW(0x50))
	b.Data(0x50, mem.Pub(7))
	m := New(b.MustBuild())
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, ExecuteFwd(3, 1))  // predict from the OLDER store
	mustStep(t, m, ExecuteAddr(2))    // the newer store resolves to 0x50
	obs := mustStep(t, m, Execute(3)) // misprediction: hazard
	wantTrace(t, obs, RollbackObs(), FwdObs(0x50, mem.Public))
	if m.PC != 3 {
		t.Fatalf("PC = %d, want restart at 3", m.PC)
	}
}

// TestPredictedLoadCorrectForward: the §3.5 happy path where the
// originating store is still buffered and its address matches.
func TestPredictedLoadCorrectForward(t *testing.T) {
	m := New(aliasProgram(8))
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, ExecuteFwd(2, 1))
	// The store's address resolves to the matching address.
	mustStep(t, m, ExecuteAddr(1))
	obs := mustStep(t, m, Execute(2))
	wantTrace(t, obs, FwdObs(0x50, mem.Public))
	wantBufEntry(t, m, 2, "(ra = 8pub{1, 0x50})")
}

// TestPredictedLoadUnresolvedStoreAddrOk: per load-execute-addr-ok,
// the load may fully resolve even while the originating store's
// address is still unknown; the store's own gray-condition check
// validates it later.
func TestPredictedLoadUnresolvedStoreAddrOk(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Store(isa.ImmW(8), isa.R(rc)) // address unresolved until rc known
	b.Load(ra, isa.ImmW(0x50))
	b.Data(0x50, mem.Pub(7))
	m := New(b.MustBuild())
	m.Regs.Write(rc, mem.Pub(0x50))
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, ExecuteFwd(2, 1))
	obs := mustStep(t, m, Execute(2)) // resolves against the prediction
	wantTrace(t, obs, FwdObs(0x50, mem.Public))
	wantBufEntry(t, m, 2, "(ra = 8pub{1, 0x50})")
	// Now the store resolves to the same address: the gray condition
	// (jk = i ⇒ ak = a) holds, no hazard.
	obs = mustStep(t, m, ExecuteAddr(1))
	wantTrace(t, obs, FwdObs(0x50, mem.Public))
	// Counter-case: had the store resolved elsewhere, the store-side
	// check would roll the load back — covered by Figure 2's replay.
}

// TestExecuteFwdValidation: the directive's side conditions.
func TestExecuteFwdValidation(t *testing.T) {
	m := New(aliasProgram(8))
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	if _, err := m.Step(ExecuteFwd(2, 2)); !errors.Is(err, ErrStall) {
		t.Fatal("forwarding from self must stall")
	}
	if _, err := m.Step(ExecuteFwd(2, 5)); !errors.Is(err, ErrStall) {
		t.Fatal("forwarding from a future index must stall")
	}
	if _, err := m.Step(ExecuteFwd(1, 1)); !errors.Is(err, ErrStall) {
		t.Fatal("execute:fwd on a store must stall")
	}
	mustStep(t, m, ExecuteFwd(2, 1))
	if _, err := m.Step(ExecuteFwd(2, 1)); !errors.Is(err, ErrStall) {
		t.Fatal("double prediction must stall")
	}
}

// TestAddrModeBaseScale: the machine under the x86-style address mode
// computes v0 + v1*v2 for ternary operand lists.
func TestAddrModeBaseScale(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Load(ra, isa.ImmW(0x40), isa.R(rb), isa.ImmW(8))
	b.Data(0x50, mem.Sec(3))
	m := New(b.MustBuild(), WithAddrMode(isa.AddrBaseScale))
	m.Regs.Write(rb, mem.Pub(2))
	mustStep(t, m, Fetch())
	obs := mustStep(t, m, Execute(1)) // 0x40 + 2*8 = 0x50
	wantTrace(t, obs, ReadObs(0x50, mem.Public))
	mustStep(t, m, Retire())
	if got := m.Regs.Read(ra); got != mem.Sec(3) {
		t.Fatalf("ra = %v", got)
	}
}

// TestRSBCircularUnderflowRet: under the circular policy a bare ret
// fetches without attacker input, predicting from stale ring contents.
func TestRSBCircularUnderflowRet(t *testing.T) {
	p := isa.NewProgram(1)
	p.Add(1, isa.Call(10, 2))
	p.Add(10, isa.Ret())
	p.Add(2, isa.Ret()) // unmatched: underflows the RSB
	p.SetRegion(0x78, make([]mem.Value, 8))
	m := New(p, WithRSBPolicy(RSBCircular))
	m.Regs.Write(mem.RSP, mem.Pub(0x7C))
	mustStep(t, m, Fetch()) // call
	mustStep(t, m, Fetch()) // ret at 10 → predicted 2 (matched)
	if m.PC != 2 {
		t.Fatalf("PC = %d, want 2", m.PC)
	}
	// The unmatched ret must not stall: the ring supplies a stale
	// value (here slot 0 = 0), so a plain fetch succeeds.
	mustStep(t, m, Fetch())
	if m.PC != 0 {
		t.Fatalf("PC = %d, want ring value 0", m.PC)
	}
}
