package core

import (
	"fmt"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// OKind discriminates attacker observations. The semantics exposes
// memory effects and control flow directly; caches, port contention,
// and the like are functions of this trace, so they need no separate
// modeling (§3.1).
type OKind uint8

const (
	ORead     OKind = iota // read aℓa — load serviced from memory
	OFwd                   // fwd aℓa — store-to-load forward / store address resolution
	OWrite                 // write aℓa — store retired to memory
	OJump                  // jump nℓ — resolved control flow
	ORollback              // rollback — misspeculation or hazard detected
)

// Observation is a single externally visible event. Read/Fwd/Write
// carry the labeled data address; Jump carries the labeled target
// program point; Rollback carries nothing.
type Observation struct {
	Kind   OKind
	Addr   mem.Word  // ORead, OFwd, OWrite
	Target isa.Addr  // OJump
	Label  mem.Label // ℓa or ℓ; Public for ORollback
}

// ReadObs constructs read aℓa.
func ReadObs(a mem.Word, l mem.Label) Observation {
	return Observation{Kind: ORead, Addr: a, Label: l}
}

// FwdObs constructs fwd aℓa.
func FwdObs(a mem.Word, l mem.Label) Observation {
	return Observation{Kind: OFwd, Addr: a, Label: l}
}

// WriteObs constructs write aℓa.
func WriteObs(a mem.Word, l mem.Label) Observation {
	return Observation{Kind: OWrite, Addr: a, Label: l}
}

// JumpObs constructs jump nℓ.
func JumpObs(n isa.Addr, l mem.Label) Observation {
	return Observation{Kind: OJump, Target: n, Label: l}
}

// RollbackObs constructs rollback.
func RollbackObs() Observation { return Observation{Kind: ORollback} }

// Secret reports whether the observation's label is above Public —
// i.e. whether this event, if it occurs, leaks secret-influenced data
// to the attacker. Theorem B.9/B.10 phrase security in terms of
// traces free of such labels.
func (o Observation) Secret() bool { return o.Label.IsSecret() }

// String renders the observation in the paper's syntax.
func (o Observation) String() string {
	switch o.Kind {
	case ORead:
		return fmt.Sprintf("read %d%s", o.Addr, o.Label)
	case OFwd:
		return fmt.Sprintf("fwd %d%s", o.Addr, o.Label)
	case OWrite:
		return fmt.Sprintf("write %d%s", o.Addr, o.Label)
	case OJump:
		return fmt.Sprintf("jump %d%s", o.Target, o.Label)
	case ORollback:
		return "rollback"
	}
	return fmt.Sprintf("obs(%d)", uint8(o.Kind))
}

// Trace is an observation sequence O.
type Trace []Observation

// Equal reports O = O′, the trace equality of Def. 3.1.
func (t Trace) Equal(u Trace) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// HasSecret reports whether any observation carries a non-public
// label.
func (t Trace) HasSecret() bool {
	for _, o := range t {
		if o.Secret() {
			return true
		}
	}
	return false
}

// FirstSecret returns the index of the first secret-labeled
// observation, or -1.
func (t Trace) FirstSecret() int {
	for i, o := range t {
		if o.Secret() {
			return i
		}
	}
	return -1
}

// String renders the trace as "o1; o2; …".
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, o := range t {
		parts[i] = o.String()
	}
	return join(parts, "; ")
}
