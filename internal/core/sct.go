package core

import (
	"fmt"
	"math/rand"

	"pitchfork/internal/mem"
)

// mRSP avoids importing mem at every call site in sequential.go.
func mRSP() mem.Reg { return mem.RSP }

// SCTResult reports the outcome of one speculative constant-time
// comparison (Def. 3.1) between two low-equivalent configurations run
// under the same schedule.
type SCTResult struct {
	Violation bool
	Reason    string
	TraceA    Trace
	TraceB    Trace
}

// CompareTraces checks one instance of Def. 3.1: it runs clones of the
// two machines under the same schedule D and reports a violation if
// the schedule is well-formed for one but not the other, the
// observation traces differ, or the final configurations are not
// low-equivalent. The callers' machines are not mutated.
func CompareTraces(a, b *Machine, d Schedule) SCTResult {
	if !a.LowEquiv(b) {
		return SCTResult{Violation: true, Reason: "initial configurations are not low-equivalent"}
	}
	ma, mb := a.Clone(), b.Clone()
	ta, errA := ma.Run(d)
	tb, errB := mb.Run(d)
	res := SCTResult{TraceA: ta, TraceB: tb}
	if (errA == nil) != (errB == nil) {
		res.Violation = true
		res.Reason = fmt.Sprintf("schedule well-formedness diverges: %v vs %v", errA, errB)
		return res
	}
	if !ta.Equal(tb) {
		res.Violation = true
		res.Reason = diffTraces(ta, tb)
		return res
	}
	if errA == nil && !ma.LowEquiv(mb) {
		res.Violation = true
		res.Reason = "final configurations are not low-equivalent"
		return res
	}
	return res
}

func diffTraces(a, b Trace) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("traces diverge at observation %d: %s vs %s", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("trace lengths diverge: %d vs %d", len(a), len(b))
}

// VarySecrets returns a low-equivalent variant of m: every
// secret-labeled register and memory word is replaced with a value
// drawn from rng, leaving public data untouched. The result satisfies
// m ≃pub VarySecrets(m, rng) by construction and serves as the
// universally quantified C′ of Def. 3.1 in randomized checking.
func VarySecrets(m *Machine, rng *rand.Rand) *Machine {
	c := m.Clone()
	for _, r := range c.Regs.Registers() {
		v := c.Regs.Read(r)
		if v.IsSecret() {
			c.Regs.Write(r, mem.V(mem.Word(rng.Uint64()), v.L))
		}
	}
	for _, a := range c.Mem.Addresses() {
		v, _ := c.Mem.Read(a)
		if v.IsSecret() {
			c.Mem.Write(a, mem.V(mem.Word(rng.Uint64()), v.L))
		}
	}
	return c
}

// CheckSCT randomly instantiates Def. 3.1: it draws trials secret
// variations of m and compares traces under d. The first violation is
// returned; a nil pointer means no violation was found (which, being a
// randomized check, under-approximates — use the taint-based checkers
// for soundness).
func CheckSCT(m *Machine, d Schedule, trials int, rng *rand.Rand) *SCTResult {
	for t := 0; t < trials; t++ {
		variant := VarySecrets(m, rng)
		res := CompareTraces(m, variant, d)
		if res.Violation {
			return &res
		}
	}
	return nil
}

// SecretFree runs a clone of m under d and reports whether the trace
// is free of secret-labeled observations. By Theorem B.9 (label
// stability), a secret-free speculative trace implies a secret-free
// sequential trace; conversely a secret-labeled observation under some
// schedule is exactly what the Pitchfork detector flags as an SCT
// violation.
func SecretFree(m *Machine, d Schedule) (bool, Trace, error) {
	c := m.Clone()
	trace, err := c.Run(d)
	if err != nil {
		return false, trace, err
	}
	return !trace.HasSecret(), trace, nil
}
