// Package core implements the paper's contribution: the operational
// semantics of an abstract three-stage (fetch / execute / retire)
// machine with out-of-order and speculative execution (§3), the
// attacker directive / observation model, and the speculative
// constant-time (SCT) security definition (Def. 3.1).
//
// Microarchitectural predictors are not modeled; their choices are the
// attacker's, delivered as directives (fetch: true, execute i : fwd j,
// …). Externally visible effects — memory reads/writes, forwards,
// control flow, rollbacks — are emitted as observations. Security is a
// property of observation traces over low-equivalent configurations.
package core

import (
	"fmt"
	"strings"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// NoDep marks a resolved load whose value came from memory rather than
// from a forwarding store: the paper's ⊥ annotation in (r = vℓ{⊥,a}).
// The hazard rules compare dependencies with "⊥ < n for any index n",
// which the negative sentinel gives us for free.
const NoDep = -1

// TKind discriminates transient instruction forms (Table 1, "Transient
// form(s)" column).
type TKind uint8

const (
	TOp    TKind = iota // (r = op(op, r⃗v)) — unresolved operation
	TValue              // (r = vℓ) or (r = vℓ{j,a})n — resolved value / resolved load
	TBr                 // br(op, r⃗v, n0, (ntrue, nfalse)) — unresolved conditional
	TJump               // jump n0 — resolved conditional / indirect jump
	TLoad               // (r = load(r⃗v))n or (r = load(r⃗v, (vℓ, j)))n
	TStore              // store(rv, r⃗v) with independently resolvable value and address
	TJmpi               // jmpi(r⃗v, n0) — unresolved indirect jump
	TCall               // call — marker for the call expansion
	TRet                // ret — marker for the ret expansion
	TFence              // fence
)

// Transient is a transient instruction: the unit the reorder buffer
// holds. A single struct covers every form; Kind plus the resolution
// flags determine which fields are meaningful.
type Transient struct {
	Kind TKind

	Dst  isa.Reg       // TOp, TValue, TLoad: destination register r
	Op   isa.Opcode    // TOp, TBr: operator
	Args []isa.Operand // TOp/TBr operands; TLoad/TStore/TJmpi address operands r⃗v

	// TValue fields. A plain resolved value has FromLoad == false. A
	// resolved load carries the paper's {dep, addr} annotation and the
	// program point of its physical load.
	Val      mem.Value
	FromLoad bool
	Dep      int      // forwarding store's buffer index, or NoDep (⊥)
	DataAddr mem.Word // annotated address a

	// PP is the program point the instruction was fetched at; the
	// explorer uses it to attribute observations to their source
	// instruction. For TValue it survives only on resolved loads (the
	// paper's n annotation); other resolved forms drop it.
	PP isa.Addr

	// TBr / TJmpi speculation state.
	Guess isa.Addr // n0, the speculatively followed program point
	True  isa.Addr // TBr: ntrue
	False isa.Addr // TBr: nfalse

	Target isa.Addr // TJump: resolved target

	// TStore resolution state: value and address resolve independently
	// (execute i : value, execute i : addr), in either order.
	Src       isa.Operand // unresolved data operand rv
	ValKnown  bool
	SVal      mem.Value // resolved data vℓ
	AddrKnown bool
	SAddr     mem.Value // resolved address aℓa (word + joined label)

	// TLoad aliasing-prediction state (§3.5): a partially resolved load
	// (r = load(r⃗v, (vℓ, j)))n speculatively carries the value of the
	// store at index PredFrom before the addresses are known.
	PredFwd  bool
	PredVal  mem.Value
	PredFrom int
}

// AssignsReg reports whether the transient instruction targets register
// r — the candidates the register resolve function (Fig. 3) scans for.
func (t *Transient) AssignsReg(r isa.Reg) bool {
	switch t.Kind {
	case TOp, TValue, TLoad:
		return t.Dst == r
	}
	return false
}

// Resolved reports whether the instruction needs no further execute
// steps before it can retire.
func (t *Transient) Resolved() bool {
	switch t.Kind {
	case TValue, TJump, TFence, TCall, TRet:
		return true
	case TStore:
		return t.ValKnown && t.AddrKnown
	default:
		return false
	}
}

// IsResolvedStoreTo reports whether the instruction is a store whose
// address has resolved to a — the buf(j) = store(_, a) pattern of the
// load rules.
func (t *Transient) IsResolvedStoreTo(a mem.Word) bool {
	return t.Kind == TStore && t.AddrKnown && t.SAddr.W == a
}

// String renders the transient instruction in the paper's notation,
// e.g. "(rb = load([64, ra]))", "store(12, 67pub)", "jump 9".
func (t *Transient) String() string {
	switch t.Kind {
	case TOp:
		return fmt.Sprintf("(%s = op(%s, %s))", isa.RegName(t.Dst), t.Op, opList(t.Args))
	case TValue:
		if t.FromLoad {
			dep := "⊥"
			if t.Dep != NoDep {
				dep = fmt.Sprintf("%d", t.Dep)
			}
			return fmt.Sprintf("(%s = %s{%s, %#x})", isa.RegName(t.Dst), t.Val, dep, t.DataAddr)
		}
		return fmt.Sprintf("(%s = %s)", isa.RegName(t.Dst), t.Val)
	case TBr:
		return fmt.Sprintf("br(%s, %s, %d, (%d, %d))", t.Op, opList(t.Args), t.Guess, t.True, t.False)
	case TJump:
		return fmt.Sprintf("jump %d", t.Target)
	case TLoad:
		if t.PredFwd {
			return fmt.Sprintf("(%s = load(%s, (%s, %d)))", isa.RegName(t.Dst), opList(t.Args), t.PredVal, t.PredFrom)
		}
		return fmt.Sprintf("(%s = load(%s))", isa.RegName(t.Dst), opList(t.Args))
	case TStore:
		src := t.Src.String()
		if t.ValKnown {
			src = t.SVal.String()
		}
		if t.AddrKnown {
			return fmt.Sprintf("store(%s, %s)", src, t.SAddr)
		}
		return fmt.Sprintf("store(%s, %s)", src, opList(t.Args))
	case TJmpi:
		return fmt.Sprintf("jmpi(%s, %d)", opList(t.Args), t.Guess)
	case TCall:
		return "call"
	case TRet:
		return "ret"
	case TFence:
		return "fence"
	}
	return "<invalid transient>"
}

func opList(args []isa.Operand) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// transientOf translates a physical instruction to its unresolved
// transient form (the transient(·) function of simple-fetch). Stores
// whose data operand is an immediate arrive with the value pre-resolved
// — the paper notes "either step may be skipped if data or address are
// already in immediate form". Operand slices are shared with the
// static program: operands are immutable after assembly and transients
// never rewrite Args, so no copy is needed (branch and jmpi fetches
// already share them).
func transientValue(in isa.Instr) Transient {
	switch in.Kind {
	case isa.KOp:
		return Transient{Kind: TOp, Dst: in.Dst, Op: in.Op, Args: in.Args}
	case isa.KLoad:
		return Transient{Kind: TLoad, Dst: in.Dst, Args: in.Args}
	case isa.KStore:
		t := Transient{Kind: TStore, Src: in.Src, Args: in.Args}
		if !in.Src.IsReg {
			t.ValKnown = true
			t.SVal = in.Src.Imm
		}
		return t
	case isa.KFence:
		return Transient{Kind: TFence}
	}
	panic(fmt.Sprintf("core: transientOf(%v): not a simple-fetch instruction", in.Kind))
}
