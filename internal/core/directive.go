package core

import (
	"fmt"

	"pitchfork/internal/isa"
)

// DKind discriminates attacker directives.
type DKind uint8

const (
	DFetch       DKind = iota // fetch
	DFetchGuess               // fetch: true / fetch: false (conditional branches)
	DFetchTarget              // fetch: n′ (indirect jumps; rets with empty RSB)
	DExecute                  // execute i
	DExecValue                // execute i : value (stores)
	DExecAddr                 // execute i : addr (stores)
	DExecFwd                  // execute i : fwd j (aliasing prediction, §3.5)
	DRetire                   // retire
)

// Directive is a single attacker-supplied scheduling command. The
// attacker resolves all scheduling and prediction non-determinism, so a
// directive sequence ("schedule") fully determines an execution
// (Lemma B.1).
type Directive struct {
	Kind   DKind
	Taken  bool     // DFetchGuess: the guessed branch outcome
	Target isa.Addr // DFetchTarget: the guessed program point
	I      int      // DExecute*: the reorder-buffer index to execute
	From   int      // DExecFwd: the store index j to forward from
	// Arm disambiguates domain-level forks on one execute directive —
	// a symbolic branch condition resolving into both feasible worlds.
	// 0 = no fork; ArmTaken / ArmNotTaken name the world. Concrete
	// executions never set it.
	Arm uint8
}

// Arm values for Directive.Arm.
const (
	ArmTaken    uint8 = 1
	ArmNotTaken uint8 = 2
)

// Fetch returns the plain fetch directive.
func Fetch() Directive { return Directive{Kind: DFetch} }

// FetchGuess returns fetch: true or fetch: false.
func FetchGuess(taken bool) Directive { return Directive{Kind: DFetchGuess, Taken: taken} }

// FetchTarget returns fetch: n.
func FetchTarget(n isa.Addr) Directive { return Directive{Kind: DFetchTarget, Target: n} }

// Execute returns execute i.
func Execute(i int) Directive { return Directive{Kind: DExecute, I: i} }

// ExecuteValue returns execute i : value.
func ExecuteValue(i int) Directive { return Directive{Kind: DExecValue, I: i} }

// ExecuteAddr returns execute i : addr.
func ExecuteAddr(i int) Directive { return Directive{Kind: DExecAddr, I: i} }

// ExecuteFwd returns execute i : fwd j.
func ExecuteFwd(i, j int) Directive { return Directive{Kind: DExecFwd, I: i, From: j} }

// Retire returns the retire directive.
func Retire() Directive { return Directive{Kind: DRetire} }

// IsFetch reports whether the directive is any of the fetch forms.
func (d Directive) IsFetch() bool {
	return d.Kind == DFetch || d.Kind == DFetchGuess || d.Kind == DFetchTarget
}

// IsExecute reports whether the directive is any of the execute forms.
func (d Directive) IsExecute() bool {
	switch d.Kind {
	case DExecute, DExecValue, DExecAddr, DExecFwd:
		return true
	}
	return false
}

// String renders the directive in the paper's syntax.
func (d Directive) String() string {
	switch d.Kind {
	case DFetch:
		return "fetch"
	case DFetchGuess:
		return fmt.Sprintf("fetch: %t", d.Taken)
	case DFetchTarget:
		return fmt.Sprintf("fetch: %d", d.Target)
	case DExecute:
		switch d.Arm {
		case ArmTaken:
			return fmt.Sprintf("execute %d : taken", d.I)
		case ArmNotTaken:
			return fmt.Sprintf("execute %d : not-taken", d.I)
		}
		return fmt.Sprintf("execute %d", d.I)
	case DExecValue:
		return fmt.Sprintf("execute %d : value", d.I)
	case DExecAddr:
		return fmt.Sprintf("execute %d : addr", d.I)
	case DExecFwd:
		return fmt.Sprintf("execute %d : fwd %d", d.I, d.From)
	case DRetire:
		return "retire"
	}
	return fmt.Sprintf("directive(%d)", uint8(d.Kind))
}

// Schedule is a directive sequence D. Its retire count is the paper's
// N (the number of retired instructions in a big step).
type Schedule []Directive

// Retires counts retire directives: N = #{d ∈ D | d = retire}.
func (s Schedule) Retires() int {
	n := 0
	for _, d := range s {
		if d.Kind == DRetire {
			n++
		}
	}
	return n
}

// String renders the schedule as "d1; d2; …".
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = d.String()
	}
	return join(parts, "; ")
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
