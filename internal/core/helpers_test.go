package core

import (
	"math/rand"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Register names used by the figures.
const (
	ra = isa.Reg(0)
	rb = isa.Reg(1)
	rc = isa.Reg(2)
	rd = isa.Reg(3)
	rg = isa.Reg(6)
	rh = isa.Reg(7)
	rx = isa.Reg(23)
)

func mustStep(t *testing.T, m *Machine, d Directive) []Observation {
	t.Helper()
	obs, err := m.Step(d)
	if err != nil {
		t.Fatalf("step %q: %v", d, err)
	}
	return obs
}

func mustRun(t *testing.T, m *Machine, ds ...Directive) Trace {
	t.Helper()
	tr, err := m.Run(ds)
	if err != nil {
		t.Fatalf("run: %v (trace so far: %s)", err, tr)
	}
	return tr
}

func wantTrace(t *testing.T, got Trace, want ...Observation) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("trace mismatch:\n got: %s\nwant: %s", got, Trace(want))
	}
}

func wantBufEntry(t *testing.T, m *Machine, i int, want string) {
	t.Helper()
	tr, ok := m.Buf.Get(i)
	if !ok {
		t.Fatalf("buffer index %d missing (domain [%d,%d])", i, m.Buf.Min(), m.Buf.Max())
	}
	if tr.String() != want {
		t.Fatalf("buf(%d) = %s, want %s", i, tr, want)
	}
}

func wantNoBufEntry(t *testing.T, m *Machine, i int) {
	t.Helper()
	if _, ok := m.Buf.Get(i); ok {
		t.Fatalf("buffer index %d should have been rolled back", i)
	}
}

// drain consumes buffer indices by executing and retiring simple ops;
// used to line test buffers up with the figures' index numbering.
func drain(t *testing.T, m *Machine, count int) {
	t.Helper()
	for k := 0; k < count; k++ {
		i := m.Buf.Max() + 1
		mustStep(t, m, Fetch())
		mustStep(t, m, Execute(i))
		mustStep(t, m, Retire())
	}
}

// nops prefixes a builder with count trivial register moves, so the
// interesting instructions land on the same buffer indices the figures
// use after the prefix is drained.
func nops(b *isa.Builder, count int) *isa.Builder {
	for k := 0; k < count; k++ {
		b.Op(rx, isa.OpMov, isa.ImmW(0))
	}
	return b
}

// fig1Program is the running example of §2 Figure 1: a bounds check
// protecting array A, with the secret Key adjacent in memory.
//
//	Memory: 0x40..0x43 array A (pub), 0x44..0x47 array B (pub),
//	        0x48..0x4B Key (sec)
//	1: br(>, (4, ra), 2, 4)
//	2: (rb = load([0x40, ra], 3))
//	3: (rc = load([0x44, rb], 4))
//	4: halt
func fig1Program() *isa.Program {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 4)
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	b.Region(0x40, mem.Pub(10), mem.Pub(11), mem.Pub(12), mem.Pub(13)) // array A
	b.Region(0x44, mem.Pub(20), mem.Pub(21), mem.Pub(22), mem.Pub(23)) // array B
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	return b.MustBuild()
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
