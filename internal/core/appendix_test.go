package core

import (
	"errors"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// fig11Program reconstructs Figure 11 (Spectre v2): an indirect jump
// whose predictor the adversary has mistrained to land past a fence,
// on a gadget that leaks the loaded secret.
func fig11Program() *isa.Program {
	b := isa.NewBuilder(1)
	b.Load(rc, isa.ImmW(0x48), isa.R(ra)) // 1: (rc = load([48, ra], 2))
	b.Fence()                             // 2: fence 3
	b.Jmpi(isa.ImmW(12), isa.R(rb))       // 3: jmpi([12, rb])
	b.Skip(12)
	b.Place(16, isa.Fence(17))
	b.Place(17, isa.Load(rd, []isa.Operand{isa.ImmW(0x44), isa.R(rc)}, 18))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Sec(0xB0), mem.Sec(0xB1), mem.Sec(0xB2), mem.Sec(0xB3))
	return b.MustBuild()
}

// TestFigure11SpectreV2 replays Figure 11. The fence at 16 guards the
// gadget's architectural entry, but the mistrained predictor jumps
// straight to 17, so the fence never enters the pipeline.
func TestFigure11SpectreV2(t *testing.T) {
	m := New(fig11Program())
	m.Regs.Write(ra, mem.Pub(1))
	m.Regs.Write(rb, mem.Pub(8))

	mustStep(t, m, Fetch()) // 1: load
	mustStep(t, m, Fetch()) // 2: fence

	obs := mustStep(t, m, Execute(1))
	wantTrace(t, obs, ReadObs(0x49, mem.Public))
	wantBufEntry(t, m, 1, "(rc = 177sec{⊥, 0x49})")

	// The adversary steers the jmpi prediction to 17 — one past the
	// protective fence at 16.
	mustStep(t, m, FetchTarget(17))
	wantBufEntry(t, m, 3, "jmpi([12, rb], 17)")
	mustStep(t, m, Fetch()) // 4: (rd = load([44, rc]))

	mustStep(t, m, Retire()) // 1
	mustStep(t, m, Retire()) // 2 (fence)

	// The gadget leaks the secret through the load address.
	obs = mustStep(t, m, Execute(4))
	wantTrace(t, obs, ReadObs(0x44+0xB1, mem.Secret))

	// Resolving the jmpi reveals the mistraining: actual target is
	// 12+8 = 20, not 17.
	obs = mustStep(t, m, Execute(3))
	wantTrace(t, obs, RollbackObs(), JumpObs(20, mem.Public))
	if m.PC != 20 {
		t.Fatalf("PC = %d, want 20", m.PC)
	}
	wantNoBufEntry(t, m, 4)
}

// TestJmpiCorrectPrediction covers jmpi-execute-correct.
func TestJmpiCorrectPrediction(t *testing.T) {
	m := New(fig11Program())
	m.Regs.Write(ra, mem.Pub(1))
	m.Regs.Write(rb, mem.Pub(8))
	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	mustStep(t, m, FetchTarget(20)) // correct: 12+8
	mustStep(t, m, Execute(1))
	mustStep(t, m, Retire()) // load
	mustStep(t, m, Retire()) // fence — must retire before the jmpi may execute
	obs := mustStep(t, m, Execute(3))
	wantTrace(t, obs, JumpObs(20, mem.Public))
	wantBufEntry(t, m, 3, "jump 20")
	if m.PC != 20 {
		t.Fatalf("PC = %d, want 20", m.PC)
	}
}

// fig12Program reconstructs Figure 12 (ret2spec): one call paired with
// two rets, underflowing the RSB.
//
//	1: call(3, 2)   2: ret   3: ret
func fig12Program() *isa.Program {
	p := isa.NewProgram(1)
	p.Add(1, isa.Call(3, 2))
	p.Add(2, isa.Ret())
	p.Add(3, isa.Ret())
	// A call stack for the expansions to store into.
	p.SetRegion(0x78, []mem.Value{mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0)})
	return p
}

// TestFigure12Ret2spec replays Figure 12: after the matched call/ret
// pair the RSB is empty, and the second ret's speculative target is
// attacker-chosen.
func TestFigure12Ret2spec(t *testing.T) {
	m := New(fig12Program())
	m.Regs.Write(mem.RSP, mem.Pub(0x7C))

	// fetch call(3, 2): expansion at 1..3, push 2, PC → 3.
	mustStep(t, m, Fetch())
	wantBufEntry(t, m, 1, "call")
	wantBufEntry(t, m, 2, "(rsp = op(succ, [rsp]))")
	wantBufEntry(t, m, 3, "store(2pub, [rsp])")
	if top, ok := m.RSB.Top(); !ok || top != 2 {
		t.Fatalf("RSB top = %d, %t; want 2", top, ok)
	}
	if m.PC != 3 {
		t.Fatalf("PC = %d, want callee 3", m.PC)
	}

	// fetch ret at 3: predicted to top(σ) = 2; expansion at 4..7.
	mustStep(t, m, Fetch())
	wantBufEntry(t, m, 4, "ret")
	wantBufEntry(t, m, 5, "(rtmp = load([rsp]))")
	wantBufEntry(t, m, 6, "(rsp = op(pred, [rsp]))")
	wantBufEntry(t, m, 7, "jmpi([rtmp], 2)")
	if m.PC != 2 {
		t.Fatalf("PC = %d, want predicted return 2", m.PC)
	}

	// The RSB is now empty: push then pop.
	if _, ok := m.RSB.Top(); ok {
		t.Fatal("RSB must be empty after matched call/ret")
	}

	// fetch ret at 2 with empty RSB: a plain fetch stalls…
	if _, err := m.Step(Fetch()); !errors.Is(err, ErrStall) {
		t.Fatalf("plain fetch of ret on empty RSB must stall, got %v", err)
	}
	// …and the attacker supplies an arbitrary speculative target.
	mustStep(t, m, FetchTarget(0x99))
	wantBufEntry(t, m, 8, "ret")
	wantBufEntry(t, m, 11, "jmpi([rtmp], 153)")
	if m.PC != 0x99 {
		t.Fatalf("PC = %d, want attacker-chosen 0x99", m.PC)
	}
}

// TestRSBRefusePolicy models AMD parts: the machine refuses to fetch a
// ret when the RSB is empty.
func TestRSBRefusePolicy(t *testing.T) {
	p := isa.NewProgram(1)
	p.Add(1, isa.Ret())
	m := New(p, WithRSBPolicy(RSBRefuse))
	m.Regs.Write(mem.RSP, mem.Pub(0x7C))
	if _, err := m.Step(Fetch()); !errors.Is(err, ErrStall) {
		t.Fatalf("refuse policy must stall, got %v", err)
	}
	if _, err := m.Step(FetchTarget(5)); !errors.Is(err, ErrStall) {
		t.Fatalf("refuse policy must reject attacker targets too, got %v", err)
	}
}

// TestRSBCircularPolicy models "most Intel processors": top(σ) always
// produces a value, so an underflowing ret predicts from stale ring
// contents rather than stalling.
func TestRSBCircularPolicy(t *testing.T) {
	p := isa.NewProgram(1)
	p.Add(1, isa.Ret())
	m := New(p, WithRSBPolicy(RSBCircular))
	m.Regs.Write(mem.RSP, mem.Pub(0x7C))
	m.Mem.Write(0x7C, mem.Pub(9))
	mustStep(t, m, Fetch()) // no stall: ring yields its (zero) slot
	if m.PC != 0 {
		t.Fatalf("PC = %d, want stale ring value 0", m.PC)
	}
}

// TestRSBCircularWraparound pushes past the ring capacity and checks
// the oldest entries are overwritten.
func TestRSBCircularWraparound(t *testing.T) {
	s := NewRSB(RSBCircular)
	for i := 0; i < rsbCircularSize+2; i++ {
		s.Push(i, isa.Addr(100+i))
	}
	// Pop everything pushed: the last pops see overwritten slots.
	for i := 0; i < rsbCircularSize+2; i++ {
		if _, ok := s.Top(); !ok {
			t.Fatal("circular RSB must never report empty")
		}
		s.Pop(rsbCircularSize + 2 + i)
	}
	if _, ok := s.Top(); !ok {
		t.Fatal("circular RSB must never report empty, even underflowed")
	}
}

// fig13Program reconstructs Figure 13: the retpoline construction that
// replaces the indirect jump of Figure 11.
//
//	3: call(5, 4)
//	4: fence 4              (speculation trap: fence looping to itself)
//	5: (rd = op(add, [12, rb], 6))
//	6: store(rd, [rsp], 7)  (overwrite the return address)
//	7: ret
func fig13Program() *isa.Program {
	b := isa.NewBuilder(1)
	nops(b, 2) // points 1, 2 → drained buffer indices 1, 2
	b.Call(5)  // 3: call(5, 4)
	b.Place(4, isa.Fence(4))
	b.Skip(1)
	b.Op(rd, isa.OpAdd, isa.ImmW(12), isa.R(rb)) // 5
	b.Store(isa.R(rd), isa.R(mem.RSP))           // 6
	b.Ret()                                      // 7
	b.Region(0x78, mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0))
	return b.MustBuild()
}

// TestFigure13Retpoline replays Figure 13: speculative execution is
// parked on the fence self-loop; when the ret's indirect jump finally
// resolves, control transfers to the computed target with no
// opportunity for attacker-controlled prediction.
func TestFigure13Retpoline(t *testing.T) {
	m := New(fig13Program())
	m.Regs.Write(rb, mem.Pub(8))
	m.Regs.Write(mem.RSP, mem.Pub(0x7C))
	drain(t, m, 2)

	mustStep(t, m, Fetch()) // call: indices 3..5, push 4, PC → 5
	wantBufEntry(t, m, 3, "call")
	wantBufEntry(t, m, 4, "(rsp = op(succ, [rsp]))")
	wantBufEntry(t, m, 5, "store(4pub, [rsp])")
	mustStep(t, m, Fetch()) // 6: rd = op(add, [12, rb])
	mustStep(t, m, Fetch()) // 7: store(rd, [rsp])
	mustStep(t, m, Fetch()) // ret: indices 8..11, predicted to top(σ)=4
	wantBufEntry(t, m, 8, "ret")
	wantBufEntry(t, m, 11, "jmpi([rtmp], 4)")
	if m.PC != 4 {
		t.Fatalf("PC = %d, want RSB-predicted 4", m.PC)
	}
	mustStep(t, m, Fetch()) // 12: the fence trap
	wantBufEntry(t, m, 12, "fence")
	// Speculation is stuck: the next fetch is the same fence again.
	if m.PC != 4 {
		t.Fatalf("PC = %d, fence must loop to itself", m.PC)
	}

	// Resolve the call expansion and the retpoline body.
	mustStep(t, m, Execute(4)) // rsp = 0x7B
	wantBufEntry(t, m, 4, "(rsp = 123pub)")
	mustStep(t, m, Execute(6)) // rd = 20
	wantBufEntry(t, m, 6, "(rd = 20pub)")
	mustStep(t, m, ExecuteValue(7))
	obs := mustStep(t, m, ExecuteAddr(7))
	wantTrace(t, obs, FwdObs(0x7B, mem.Public))
	wantBufEntry(t, m, 7, "store(20pub, 123pub)")

	// The ret's return-address load forwards the overwritten slot.
	obs = mustStep(t, m, Execute(9))
	wantTrace(t, obs, FwdObs(0x7B, mem.Public))
	wantBufEntry(t, m, 9, "(rtmp = 20pub{7, 0x7b})")
	mustStep(t, m, Execute(10)) // rsp = pred(0x7B) = 0x7C

	// The indirect jump resolves to 20 ≠ 4: rollback, then execution
	// proceeds at the true target. The attacker never chose a target.
	obs = mustStep(t, m, Execute(11))
	wantTrace(t, obs, RollbackObs(), JumpObs(20, mem.Public))
	wantNoBufEntry(t, m, 12)
	wantBufEntry(t, m, 11, "jump 20")
	if m.PC != 20 {
		t.Fatalf("PC = %d, want 20", m.PC)
	}

	// Everything retires cleanly; rsp is restored.
	mustStep(t, m, ExecuteAddr(5)) // call's return-address store
	mustStep(t, m, Retire())       // call expansion (3..5)
	mustStep(t, m, Retire())       // rd
	mustStep(t, m, Retire())       // store
	mustStep(t, m, Retire())       // ret expansion (8..11)
	if got := m.Regs.Read(mem.RSP); got != mem.Pub(0x7C) {
		t.Fatalf("rsp = %v, want restored 0x7C", got)
	}
	if got := m.Regs.Read(rd); got != mem.Pub(20) {
		t.Fatalf("rd = %v, want 20", got)
	}
}

// TestCallRetSequential runs a simple call/return pair under the
// canonical sequential schedule and checks the stack discipline.
func TestCallRetSequential(t *testing.T) {
	//	1: call(10, 2)
	//	2: (ra = op(mov, [7], 3))     — executed after returning
	//	10: (rb = op(mov, [42], 11))
	//	11: ret
	b := isa.NewBuilder(1)
	b.Call(10)
	b.Op(ra, isa.OpMov, isa.ImmW(7))
	b.Place(10, isa.Op(rb, isa.OpMov, []isa.Operand{isa.ImmW(42)}, 11))
	b.Place(11, isa.Ret())
	b.Region(0x78, mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0), mem.Pub(0))
	p := b.MustBuild()

	m := New(p)
	m.Regs.Write(mem.RSP, mem.Pub(0x7C))
	_, trace, err := RunSequential(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatalf("machine not halted at PC %d", m.PC)
	}
	if got := m.Regs.Read(ra); got != mem.Pub(7) {
		t.Fatalf("ra = %v, want 7", got)
	}
	if got := m.Regs.Read(rb); got != mem.Pub(42) {
		t.Fatalf("rb = %v, want 42", got)
	}
	if got := m.Regs.Read(mem.RSP); got != mem.Pub(0x7C) {
		t.Fatalf("rsp = %v, want balanced 0x7C", got)
	}
	// The call wrote the return address to the stack.
	found := false
	for _, o := range trace {
		if o.Kind == OWrite && o.Addr == 0x7B {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a write to the stack slot 0x7B in %s", trace)
	}
}

// TestNestedCallsSequential exercises a two-deep call chain.
func TestNestedCallsSequential(t *testing.T) {
	//	1: call(10, 2)    2: halt
	//	10: call(20, 11)  11: ret
	//	20: (ra = op(mov, [5], 21))  21: ret
	p := isa.NewProgram(1)
	p.Add(1, isa.Call(10, 2))
	p.Add(10, isa.Call(20, 11))
	p.Add(11, isa.Ret())
	p.Add(20, isa.Op(ra, isa.OpMov, []isa.Operand{isa.ImmW(5)}, 21))
	p.Add(21, isa.Ret())
	p.SetRegion(0x70, make([]mem.Value, 16))

	m := New(p)
	m.Regs.Write(mem.RSP, mem.Pub(0x7F))
	_, _, err := RunSequential(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.PC != 2 || !m.Halted() {
		t.Fatalf("PC = %d (halted=%t), want halt at 2", m.PC, m.Halted())
	}
	if got := m.Regs.Read(ra); got != mem.Pub(5) {
		t.Fatalf("ra = %v, want 5", got)
	}
	if got := m.Regs.Read(mem.RSP); got != mem.Pub(0x7F) {
		t.Fatalf("rsp = %v, want balanced 0x7F", got)
	}
}
