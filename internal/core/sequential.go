package core

import (
	"fmt"

	"pitchfork/internal/isa"
)

// RunSequential executes the machine's canonical sequential schedule
// (Def. B.3/B.4): every fetched instruction is executed and retired
// before the next fetch, with branch and return-target guesses chosen
// correctly so no speculation occurs. It returns the schedule it
// played and the observation trace. Execution stops at a halt point or
// after maxInstrs retires, whichever comes first — the budget is how
// Theorem B.7's "sequential execution of exactly N instructions" is
// expressed, so hitting it is not an error; callers that require
// termination should check Halted afterwards.
//
// This is the ⇓seq of Theorem 3.2: the specification an out-of-order
// execution must agree with.
func RunSequential(m *Machine, maxInstrs int) (Schedule, Trace, error) {
	var sched Schedule
	var trace Trace
	step := func(d Directive) error {
		obs, err := m.Step(d)
		sched = append(sched, d)
		trace = append(trace, obs...)
		return err
	}
	for n := 0; n < maxInstrs; n++ {
		in, ok := m.Prog.At(m.PC)
		if !ok {
			return sched, trace, nil // halt point
		}
		var err error
		switch in.Kind {
		case isa.KOp, isa.KLoad:
			err = seq(step, Fetch(), Execute(m.Buf.Max()+1), Retire())
		case isa.KFence:
			err = seq(step, Fetch(), Retire())
		case isa.KStore:
			i := m.Buf.Max() + 1
			if in.Src.IsReg {
				err = seq(step, Fetch(), ExecuteValue(i), ExecuteAddr(i), Retire())
			} else {
				// Immediate data is pre-resolved at fetch.
				err = seq(step, Fetch(), ExecuteAddr(i), Retire())
			}
		case isa.KBr:
			taken, evalErr := m.peekBranch(in)
			if evalErr != nil {
				return sched, trace, evalErr
			}
			err = seq(step, FetchGuess(taken), Execute(m.Buf.Max()+1), Retire())
		case isa.KJmpi:
			target, evalErr := m.peekJmpi(in)
			if evalErr != nil {
				return sched, trace, evalErr
			}
			err = seq(step, FetchTarget(target), Execute(m.Buf.Max()+1), Retire())
		case isa.KCall:
			i := m.Buf.Max() + 1
			err = seq(step, Fetch(), Execute(i+1), ExecuteAddr(i+2), Retire())
		case isa.KRet:
			i := m.Buf.Max() + 1
			fetchD := Fetch()
			if _, haveTop := m.RSB.Top(); !haveTop {
				if m.RSBPolicy == RSBRefuse {
					return sched, trace, fmt.Errorf("core: sequential ret at %d with empty RSB under refuse policy", m.PC)
				}
				target, peekErr := m.peekReturnTarget()
				if peekErr != nil {
					return sched, trace, peekErr
				}
				fetchD = FetchTarget(target)
			}
			err = seq(step, fetchD, Execute(i+1), Execute(i+2), Execute(i+3), Retire())
		default:
			return sched, trace, fmt.Errorf("core: sequential: unknown instruction kind %v at %d", in.Kind, m.PC)
		}
		if err != nil {
			return sched, trace, err
		}
	}
	return sched, trace, nil
}

func seq(step func(Directive) error, ds ...Directive) error {
	for _, d := range ds {
		if err := step(d); err != nil {
			return err
		}
	}
	return nil
}

// peekBranch evaluates a branch condition against the committed state;
// only valid when the reorder buffer is empty, which sequential
// execution guarantees at fetch time.
func (m *Machine) peekBranch(in isa.Instr) (bool, error) {
	vals, ok := m.Buf.ResolveOperands(m.Buf.Max()+1, m.Regs, in.Args)
	if !ok {
		return false, fmt.Errorf("core: sequential branch at %d has unresolved operands", m.PC)
	}
	v, err := isa.Eval(in.Op, vals)
	if err != nil {
		return false, err
	}
	return v.W != 0, nil
}

// peekJmpi evaluates an indirect-jump target against committed state.
func (m *Machine) peekJmpi(in isa.Instr) (isa.Addr, error) {
	vals, ok := m.Buf.ResolveOperands(m.Buf.Max()+1, m.Regs, in.Args)
	if !ok {
		return 0, fmt.Errorf("core: sequential jmpi at %d has unresolved operands", m.PC)
	}
	v, err := isa.EvalAddr(m.AddrMode, vals)
	if err != nil {
		return 0, err
	}
	return v.W, nil
}

// peekReturnTarget reads the return address at the top of the
// in-memory call stack, which is where a sequential ret will land.
func (m *Machine) peekReturnTarget() (isa.Addr, error) {
	sp := m.Regs.Read(mRSP())
	v, err := m.Mem.Read(sp.W)
	if err != nil {
		return 0, err
	}
	return v.W, nil
}
