package core

import (
	"errors"
	"strings"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

func TestBufferContiguity(t *testing.T) {
	b := NewBuffer()
	if b.Min() != 1 || b.Max() != 0 {
		t.Fatalf("initial Min/Max = %d/%d, want 1/0", b.Min(), b.Max())
	}
	i1 := b.Append(&Transient{Kind: TFence})
	i2 := b.Append(&Transient{Kind: TFence})
	if i1 != 1 || i2 != 2 {
		t.Fatalf("append indices = %d, %d", i1, i2)
	}
	b.PopMin()
	if b.Min() != 2 || b.Max() != 2 {
		t.Fatalf("Min/Max after pop = %d/%d", b.Min(), b.Max())
	}
	i3 := b.Append(&Transient{Kind: TFence})
	if i3 != 3 {
		t.Fatalf("append after pop = %d, want 3", i3)
	}
	b.TruncateFrom(3)
	if b.Max() != 2 {
		t.Fatalf("Max after truncate = %d", b.Max())
	}
	if i4 := b.Append(&Transient{Kind: TFence}); i4 != 3 {
		t.Fatalf("reappend = %d, want 3 (contiguous domain)", i4)
	}
	// Popping everything keeps the base monotonic.
	b.PopMinN(2)
	if !b.Empty() || b.Max() != 3 {
		t.Fatalf("after drain: empty=%t Max=%d", b.Empty(), b.Max())
	}
	if i5 := b.Append(&Transient{Kind: TFence}); i5 != 4 {
		t.Fatalf("append after drain = %d, want 4", i5)
	}
}

func TestBufferSetPanicsOutsideDomain(t *testing.T) {
	b := NewBuffer()
	defer func() {
		if recover() == nil {
			t.Fatal("Set outside domain must panic")
		}
	}()
	b.Set(1, &Transient{Kind: TFence})
}

func TestBufferPopMinNPanicsBeyond(t *testing.T) {
	b := NewBuffer()
	b.Append(&Transient{Kind: TFence})
	defer func() {
		if recover() == nil {
			t.Fatal("PopMinN beyond length must panic")
		}
	}()
	b.PopMinN(2)
}

func TestBufferString(t *testing.T) {
	b := NewBuffer()
	if b.String() != "∅" {
		t.Fatalf("empty buffer = %q", b.String())
	}
	b.Append(&Transient{Kind: TFence})
	if !strings.Contains(b.String(), "1 ↦ fence") {
		t.Fatalf("buffer string = %q", b.String())
	}
}

func TestRegisterResolveLatestWins(t *testing.T) {
	b := NewBuffer()
	regs := mem.NewRegisterFile()
	regs.Write(ra, mem.Pub(1))
	b.Append(&Transient{Kind: TValue, Dst: ra, Val: mem.Pub(2)})                              // 1
	b.Append(&Transient{Kind: TValue, Dst: ra, Val: mem.Pub(3)})                              // 2
	b.Append(&Transient{Kind: TOp, Dst: ra, Op: isa.OpMov, Args: []isa.Operand{isa.ImmW(4)}}) // 3

	// Below the first assignment: the register file's value.
	if v, ok := b.ResolveReg(1, regs, ra); !ok || v != mem.Pub(1) {
		t.Fatalf("(buf +1 ρ)(ra) = %v, %t", v, ok)
	}
	// Between the two resolved assignments: the earlier one.
	if v, ok := b.ResolveReg(2, regs, ra); !ok || v != mem.Pub(2) {
		t.Fatalf("(buf +2 ρ)(ra) = %v, %t", v, ok)
	}
	if v, ok := b.ResolveReg(3, regs, ra); !ok || v != mem.Pub(3) {
		t.Fatalf("(buf +3 ρ)(ra) = %v, %t", v, ok)
	}
	// Above the unresolved op: ⊥.
	if _, ok := b.ResolveReg(4, regs, ra); ok {
		t.Fatal("latest assignment unresolved ⇒ ⊥")
	}
	// Unrelated register: falls through to ρ.
	if v, ok := b.ResolveReg(4, regs, rb); !ok || v != mem.Pub(0) {
		t.Fatalf("(buf +4 ρ)(rb) = %v, %t", v, ok)
	}
}

func TestRegisterResolveThroughPredictedLoad(t *testing.T) {
	b := NewBuffer()
	regs := mem.NewRegisterFile()
	b.Append(&Transient{Kind: TLoad, Dst: ra, Args: []isa.Operand{isa.ImmW(0x10)}}) // unresolved: ⊥
	if _, ok := b.ResolveReg(2, regs, ra); ok {
		t.Fatal("unresolved load ⇒ ⊥")
	}
	ld, _ := b.Get(1)
	ld.PredFwd = true
	ld.PredVal = mem.Sec(9)
	ld.PredFrom = 0
	if v, ok := b.ResolveReg(2, regs, ra); !ok || v != mem.Sec(9) {
		t.Fatalf("partially resolved load must supply its value, got %v, %t", v, ok)
	}
}

func TestResolveOperandImmediate(t *testing.T) {
	b := NewBuffer()
	regs := mem.NewRegisterFile()
	v, ok := b.ResolveOperand(1, regs, isa.Imm(mem.Sec(5)))
	if !ok || v != mem.Sec(5) {
		t.Fatalf("immediate resolve = %v, %t", v, ok)
	}
}

func TestStallErrorsAreStalls(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9))

	cases := []Directive{
		Fetch(),          // br needs a guess
		FetchTarget(2),   // br is not a jmpi
		Execute(5),       // not in buffer
		ExecuteValue(1),  // no store there (empty buffer)
		ExecuteAddr(1),   // ditto
		ExecuteFwd(1, 0), // ditto
		Retire(),         // empty buffer
	}
	for _, d := range cases {
		_, err := m.Step(d)
		if !errors.Is(err, ErrStall) {
			t.Errorf("%q: want stall, got %v", d, err)
		}
	}
	if m.Buf.Len() != 0 || m.PC != 1 {
		t.Fatal("failed directives must not change the configuration")
	}
}

func TestExecuteTwiceStalls(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(1))
	mustStep(t, m, FetchGuess(true))
	mustStep(t, m, Fetch())
	mustStep(t, m, Execute(2))
	if _, err := m.Step(Execute(2)); !errors.Is(err, ErrStall) {
		t.Fatalf("re-executing a resolved value must stall, got %v", err)
	}
}

func TestLoadStallsOnUnresolvedMatchingStore(t *testing.T) {
	// store with register data to 0x50, then load from 0x50: the load
	// can neither forward (no value) nor read memory (a resolved
	// matching store exists).
	b := isa.NewBuilder(1)
	b.Store(isa.R(ra), isa.ImmW(0x50))
	b.Load(rb, isa.ImmW(0x50))
	p := b.MustBuild()
	m := New(p)
	m.Regs.Write(ra, mem.Pub(7))
	mustStep(t, m, Fetch())
	mustStep(t, m, ExecuteAddr(1))
	mustStep(t, m, Fetch())
	if _, err := m.Step(Execute(2)); !errors.Is(err, ErrStall) {
		t.Fatalf("load must stall on value-unresolved matching store, got %v", err)
	}
	mustStep(t, m, ExecuteValue(1))
	obs := mustStep(t, m, Execute(2))
	wantTrace(t, obs, FwdObs(0x50, mem.Public))
}

func TestStoreValueThenAddrEitherOrder(t *testing.T) {
	build := func() *Machine {
		b := isa.NewBuilder(1)
		b.Store(isa.R(ra), isa.ImmW(0x50), isa.R(rb))
		m := New(b.MustBuild())
		m.Regs.Write(ra, mem.Sec(3))
		m.Regs.Write(rb, mem.Pub(2))
		mustStepNoT(m, Fetch())
		return m
	}
	m1 := build()
	if _, err := m1.Step(ExecuteValue(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Step(ExecuteAddr(1)); err != nil {
		t.Fatal(err)
	}
	m2 := build()
	if _, err := m2.Step(ExecuteAddr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Step(ExecuteValue(1)); err != nil {
		t.Fatal(err)
	}
	t1, _ := m1.Buf.Get(1)
	t2, _ := m2.Buf.Get(1)
	if t1.String() != t2.String() {
		t.Fatalf("order-dependent store resolution: %s vs %s", t1, t2)
	}
	if !t1.Resolved() {
		t.Fatal("store should be fully resolved")
	}
}

func mustStepNoT(m *Machine, d Directive) {
	if _, err := m.Step(d); err != nil {
		panic(err)
	}
}

func TestStrictMemoryFault(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Load(ra, isa.ImmW(0x9999))
	m := New(b.MustBuild(), WithStrictMemory())
	mustStep(t, m, Fetch())
	_, err := m.Step(Execute(1))
	if err == nil || errors.Is(err, ErrStall) {
		t.Fatalf("wild read must be a fault, got %v", err)
	}
	var se *StepError
	if !errors.As(err, &se) || !se.Fault {
		t.Fatalf("want StepError fault, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9))
	mustStep(t, m, FetchGuess(true))
	c := m.Clone()
	mustStep(t, c, Fetch())
	mustStep(t, c, Execute(2))
	if m.Buf.Len() != 1 {
		t.Fatal("clone mutated the original buffer")
	}
	if v := m.Regs.Read(rb); v != mem.Pub(0) {
		t.Fatal("clone mutated the original registers")
	}
}

func TestHaltedAndTerminal(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9))
	if m.Halted() {
		t.Fatal("fresh machine at entry is not halted")
	}
	if !m.Terminal() {
		t.Fatal("fresh machine has an empty buffer")
	}
	_, _, err := RunSequential(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted() || m.PC != 4 {
		t.Fatalf("halted=%t PC=%d, want halt at 4", m.Halted(), m.PC)
	}
}

func TestRetireCountsN(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(1)) // in bounds: branch true is correct
	sched, _, err := RunSequential(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := Schedule(sched).Retires(); got != m.Retired {
		t.Fatalf("schedule retires %d, machine retired %d", got, m.Retired)
	}
	if m.Retired != 3 {
		t.Fatalf("retired = %d, want 3 (br + 2 loads)", m.Retired)
	}
}

func TestDirectiveStrings(t *testing.T) {
	cases := map[string]Directive{
		"fetch":             Fetch(),
		"fetch: true":       FetchGuess(true),
		"fetch: false":      FetchGuess(false),
		"fetch: 17":         FetchTarget(17),
		"execute 2":         Execute(2),
		"execute 2 : value": ExecuteValue(2),
		"execute 2 : addr":  ExecuteAddr(2),
		"execute 7 : fwd 2": ExecuteFwd(7, 2),
		"retire":            Retire(),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	s := Schedule{Fetch(), Retire()}
	if s.String() != "fetch; retire" {
		t.Fatalf("schedule string = %q", s.String())
	}
}

func TestObservationStrings(t *testing.T) {
	cases := map[string]Observation{
		"read 73pub":  ReadObs(73, mem.Public),
		"fwd 69pub":   FwdObs(69, mem.Public),
		"write 66sec": WriteObs(66, mem.Secret),
		"jump 9pub":   JumpObs(9, mem.Public),
		"rollback":    RollbackObs(),
	}
	for want, o := range cases {
		if got := o.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	tr := Trace{ReadObs(73, mem.Public), RollbackObs()}
	if tr.String() != "read 73pub; rollback" {
		t.Fatalf("trace string = %q", tr.String())
	}
	if tr.HasSecret() || tr.FirstSecret() != -1 {
		t.Fatal("public trace misreported")
	}
	tr = append(tr, ReadObs(1, mem.Secret))
	if !tr.HasSecret() || tr.FirstSecret() != 2 {
		t.Fatal("secret trace misreported")
	}
}

func TestRSBJournal(t *testing.T) {
	s := NewRSB(RSBAttackerChoice)
	if _, ok := s.Top(); ok {
		t.Fatal("empty RSB must report ⊥")
	}
	s.Push(1, 4)
	s.Push(2, 5)
	if top, _ := s.Top(); top != 5 {
		t.Fatalf("top = %d, want 5", top)
	}
	s.Pop(3)
	if top, _ := s.Top(); top != 4 {
		t.Fatalf("top = %d, want 4", top)
	}
	// Roll back the pop and the second push: top is 4's push again.
	s.Rollback(2)
	if top, _ := s.Top(); top != 4 {
		t.Fatalf("top after rollback = %d, want 4", top)
	}
	if s.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", s.Depth())
	}
	if got := s.String(); got != "[1↦push 4]" {
		t.Fatalf("String = %q", got)
	}
	c := s.Clone()
	c.Pop(9)
	if top, ok := s.Top(); !ok || top != 4 {
		t.Fatal("clone aliases journal")
	}
}

// TestPaperExampleRSBEval mirrors the worked example in Appendix A:
// σ = ∅[1↦push 4][2↦push 5][3↦pop] has top(σ) = 4.
func TestPaperExampleRSBEval(t *testing.T) {
	s := NewRSB(RSBAttackerChoice)
	s.Push(1, 4)
	s.Push(2, 5)
	s.Pop(3)
	top, ok := s.Top()
	if !ok || top != 4 {
		t.Fatalf("top(σ) = %d, %t; want 4", top, ok)
	}
}

func TestTransientStrings(t *testing.T) {
	cases := []struct {
		tr   Transient
		want string
	}{
		{Transient{Kind: TOp, Dst: rc, Op: isa.OpAdd, Args: []isa.Operand{isa.ImmW(1), isa.R(rb)}}, "(rc = op(add, [1, rb]))"},
		{Transient{Kind: TValue, Dst: rb, Val: mem.Pub(4)}, "(rb = 4pub)"},
		{Transient{Kind: TValue, Dst: rb, Val: mem.Sec(7), FromLoad: true, Dep: NoDep, DataAddr: 0x43}, "(rb = 7sec{⊥, 0x43})"},
		{Transient{Kind: TJump, Target: 9}, "jump 9"},
		{Transient{Kind: TFence}, "fence"},
		{Transient{Kind: TCall}, "call"},
		{Transient{Kind: TRet}, "ret"},
	}
	for _, c := range cases {
		if got := c.tr.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestMachineEquality(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9))
	c := m.Clone()
	if !m.Equal(c) || !m.ApproxEqual(c) || !m.LowEquiv(c) {
		t.Fatal("clone must be equal")
	}
	c.Regs.Write(rb, mem.Sec(1))
	if m.Equal(c) {
		t.Fatal("register divergence must break Equal")
	}
	if !m.LowEquiv(c) == false {
		// rb secret in c but public-zero in m: labels differ ⇒ not low-equivalent.
		t.Fatal("label divergence must break LowEquiv")
	}
}

func TestRunRecorded(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9))
	recs, err := m.RunRecorded(Schedule{FetchGuess(true), Fetch(), Fetch(), Execute(2), Execute(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	if len(recs[3].Obs) != 1 || recs[3].Obs[0].Kind != ORead {
		t.Fatalf("record 3 = %+v", recs[3])
	}
}
