package core

import (
	"errors"
	"math/rand"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// randomProgram generates a terminating program: n instructions at
// points 1..n, with branches and indirect jumps only targeting
// strictly later points (so all control flow is forward). Data lives
// at 0x100.. with a mix of public and secret cells.
func randomProgram(rng *rand.Rand, n int) *isa.Program {
	p := isa.NewProgram(1)
	const dataBase = 0x100
	const dataLen = 16
	regs := []isa.Reg{ra, rb, rc, rd}
	randReg := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	randAddrArgs := func() []isa.Operand {
		// base + small register-dependent offset, kept in range by
		// masking through data in registers seeded below.
		if rng.Intn(2) == 0 {
			return []isa.Operand{isa.ImmW(dataBase + mem.Word(rng.Intn(dataLen)))}
		}
		return []isa.Operand{isa.ImmW(dataBase), isa.R(isa.Reg(8 + rng.Intn(2)))} // rj/ri hold small indices
	}
	for i := 1; i <= n; i++ {
		pt := isa.Addr(i)
		next := isa.Addr(i + 1)
		switch rng.Intn(7) {
		case 0, 1:
			ops := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd, isa.OpMul}
			op := ops[rng.Intn(len(ops))]
			p.Add(pt, isa.Op(randReg(), op, []isa.Operand{isa.R(randReg()), isa.ImmW(mem.Word(rng.Intn(64)))}, next))
		case 2:
			p.Add(pt, isa.Load(randReg(), randAddrArgs(), next))
		case 3:
			p.Add(pt, isa.Store(isa.R(randReg()), randAddrArgs(), next))
		case 4:
			if i+2 <= n+1 {
				tgt := isa.Addr(i + 1 + rng.Intn(n+1-i))
				p.Add(pt, isa.Br(isa.OpLt, []isa.Operand{isa.R(randReg()), isa.ImmW(mem.Word(rng.Intn(64)))}, tgt, next))
			} else {
				p.Add(pt, isa.Op(randReg(), isa.OpMov, []isa.Operand{isa.ImmW(1)}, next))
			}
		case 5:
			p.Add(pt, isa.Fence(next))
		default:
			p.Add(pt, isa.Op(randReg(), isa.OpMov, []isa.Operand{isa.ImmW(mem.Word(rng.Intn(8)))}, next))
		}
	}
	for i := 0; i < dataLen; i++ {
		l := mem.Public
		if rng.Intn(3) == 0 {
			l = mem.Secret
		}
		p.SetData(dataBase+isa.Addr(i), mem.V(mem.Word(rng.Intn(250)), l))
	}
	return p
}

func seedMachine(m *Machine, rng *rand.Rand) {
	m.Regs.Write(ra, mem.Pub(mem.Word(rng.Intn(16))))
	m.Regs.Write(rb, mem.Pub(mem.Word(rng.Intn(16))))
	m.Regs.Write(rc, mem.Sec(mem.Word(rng.Intn(16))))
	m.Regs.Write(rd, mem.Pub(mem.Word(rng.Intn(16))))
	m.Regs.Write(isa.Reg(8), mem.Pub(mem.Word(rng.Intn(8))))
	m.Regs.Write(isa.Reg(9), mem.Pub(mem.Word(rng.Intn(8))))
}

// randomSchedule drives m with randomly chosen applicable directives
// (an adversarial scheduler), returning the schedule that was played.
// It biases toward making progress so executions terminate.
func randomSchedule(m *Machine, rng *rand.Rand, maxSteps int) Schedule {
	var sched Schedule
	for step := 0; step < maxSteps; step++ {
		if m.Halted() {
			return sched
		}
		var candidates []Directive
		if in, ok := m.Prog.At(m.PC); ok && m.Buf.Len() < 12 {
			switch in.Kind {
			case isa.KBr:
				candidates = append(candidates, FetchGuess(rng.Intn(2) == 0))
			case isa.KJmpi, isa.KRet:
				candidates = append(candidates, Fetch(), FetchTarget(isa.Addr(1+rng.Intn(12))))
			default:
				candidates = append(candidates, Fetch())
			}
		}
		for _, i := range m.Buf.Indices() {
			t, _ := m.Buf.Get(i)
			switch t.Kind {
			case TOp, TBr, TJmpi, TLoad:
				candidates = append(candidates, Execute(i))
			case TStore:
				if !t.ValKnown {
					candidates = append(candidates, ExecuteValue(i))
				}
				if !t.AddrKnown {
					candidates = append(candidates, ExecuteAddr(i))
				}
			}
		}
		candidates = append(candidates, Retire())
		// Try candidates in random order until one applies.
		rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		applied := false
		for _, d := range candidates {
			if _, err := m.Step(d); err == nil {
				sched = append(sched, d)
				applied = true
				break
			} else if !errors.Is(err, ErrStall) {
				// Machine fault (e.g. wild read on a non-strict memory
				// cannot happen; just stop).
				return sched
			}
		}
		if !applied {
			return sched // wedged: nothing applicable (should not happen)
		}
	}
	return sched
}

// TestSequentialEquivalenceProperty is Theorem 3.2 / B.7: an
// out-of-order execution that retires N instructions leaves committed
// state ≈-equivalent to the canonical sequential execution of N
// instructions.
func TestSequentialEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := newRng(int64(trial))
		prog := randomProgram(rng, 4+rng.Intn(12))
		m := New(prog)
		seedMachine(m, rng)
		init := m.Clone()

		randomSchedule(m, rng, 400)
		n := m.Retired

		seqM := init.Clone()
		if _, _, err := RunSequential(seqM, n); err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		if !m.ApproxEqual(seqM) {
			t.Fatalf("trial %d: OoO execution (N=%d) diverges from sequential\nprogram points: %v\nOoO regs vs seq regs differ", trial, n, prog.Points())
		}
	}
}

// TestTerminalEquality strengthens the check for complete executions:
// if the random schedule drives the machine to a halt with an empty
// buffer, the final configuration must equal the full sequential one
// (Corollary B.8).
func TestTerminalEquality(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := newRng(int64(1000 + trial))
		prog := randomProgram(rng, 4+rng.Intn(10))
		m := New(prog)
		seedMachine(m, rng)
		init := m.Clone()

		randomSchedule(m, rng, 600)
		if !m.Halted() {
			continue
		}
		seqM := init.Clone()
		if _, _, err := RunSequential(seqM, 10000); err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		if !m.ApproxEqual(seqM) || m.PC != seqM.PC {
			t.Fatalf("trial %d: terminal configurations differ (PC %d vs %d)", trial, m.PC, seqM.PC)
		}
	}
}

// TestLabelStabilityProperty is Theorem B.9 / Corollary B.10: if a
// speculative trace carries no secret labels, the sequential trace of
// the same configuration carries none either.
func TestLabelStabilityProperty(t *testing.T) {
	checked := 0
	for trial := 0; trial < 400 && checked < 150; trial++ {
		rng := newRng(int64(2000 + trial))
		prog := randomProgram(rng, 4+rng.Intn(10))
		m := New(prog)
		seedMachine(m, rng)
		init := m.Clone()

		specM := m.Clone()
		var specTrace Trace
		sched := randomSchedule(specM, rng, 400)
		replay := init.Clone()
		specTrace, err := replay.Run(sched)
		if err != nil {
			t.Fatalf("trial %d: replay: %v", trial, err)
		}
		if specTrace.HasSecret() {
			continue // antecedent does not hold
		}
		checked++
		seqM := init.Clone()
		_, seqTrace, err := RunSequential(seqM, 10000)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		if seqTrace.HasSecret() {
			t.Fatalf("trial %d: speculative trace secret-free but sequential trace leaks: %s", trial, seqTrace)
		}
	}
	if checked < 20 {
		t.Fatalf("too few secret-free speculative traces to be meaningful: %d", checked)
	}
}

// TestDeterminismProperty is Lemma B.1: a configuration and a
// directive determine the successor configuration and observation.
func TestDeterminismProperty(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := newRng(int64(3000 + trial))
		prog := randomProgram(rng, 6)
		m := New(prog)
		seedMachine(m, rng)
		// Walk a random execution; at each step apply the chosen
		// directive to two clones and compare everything.
		probe := m.Clone()
		sched := randomSchedule(probe, rng, 100)
		cur := m.Clone()
		for _, d := range sched {
			c1, c2 := cur.Clone(), cur.Clone()
			o1, e1 := c1.Step(d)
			o2, e2 := c2.Step(d)
			if (e1 == nil) != (e2 == nil) || !Trace(o1).Equal(Trace(o2)) {
				t.Fatalf("trial %d: nondeterministic step %q", trial, d)
			}
			if !c1.Equal(c2) || c1.PC != c2.PC || c1.RSB.String() != c2.RSB.String() {
				t.Fatalf("trial %d: step %q produced diverging configurations", trial, d)
			}
			cur = c1
		}
	}
}

// TestWellFormedScheduleReplay: a schedule recorded from one run must
// replay identically from the same initial configuration.
func TestWellFormedScheduleReplay(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := newRng(int64(4000 + trial))
		prog := randomProgram(rng, 8)
		m := New(prog)
		seedMachine(m, rng)
		init := m.Clone()

		run1 := m.Clone()
		sched := randomSchedule(run1, rng, 300)

		replay1 := init.Clone()
		t1, err1 := replay1.Run(sched)
		replay2 := init.Clone()
		t2, err2 := replay2.Run(sched)
		if (err1 == nil) != (err2 == nil) || !t1.Equal(t2) {
			t.Fatalf("trial %d: replays disagree", trial)
		}
		if !replay1.ApproxEqual(replay2) {
			t.Fatalf("trial %d: replayed states disagree", trial)
		}
	}
}

// TestSCTRandomHarness: sequentially-constant-time straight-line
// programs with no speculation-reachable secrets never violate SCT
// under random schedules; Figure 1's gadget does under its attack
// schedule. This exercises the Def. 3.1 checker itself.
func TestSCTRandomHarness(t *testing.T) {
	// A program whose every observation is public: copies between
	// public cells only.
	b := isa.NewBuilder(1)
	b.Load(ra, isa.ImmW(0x100))
	b.Op(rb, isa.OpAdd, isa.R(ra), isa.ImmW(1))
	b.Store(isa.R(rb), isa.ImmW(0x101))
	b.Data(0x100, mem.Pub(7))
	b.Data(0x101, mem.Pub(0))
	b.Data(0x102, mem.Sec(99)) // a secret exists but is never touched
	prog := b.MustBuild()

	m := New(prog)
	for trial := 0; trial < 50; trial++ {
		rng := newRng(int64(5000 + trial))
		probe := m.Clone()
		sched := randomSchedule(probe, rng, 100)
		if res := CheckSCT(m, sched, 8, rng); res != nil {
			t.Fatalf("trial %d: public-only program flagged: %s\nschedule: %s", trial, res.Reason, sched)
		}
	}
}

// TestVarySecretsPreservesLowEquiv: the C′ generator really produces
// low-equivalent configurations.
func TestVarySecretsPreservesLowEquiv(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := newRng(int64(6000 + trial))
		prog := randomProgram(rng, 6)
		m := New(prog)
		seedMachine(m, rng)
		v := VarySecrets(m, rng)
		if !m.LowEquiv(v) {
			t.Fatalf("trial %d: VarySecrets broke low-equivalence", trial)
		}
	}
}
