package core

import "pitchfork/internal/mem"

// hasher absorbs a word sequence: h ← Mix64(h ⊕ w), seeded from
// mem.HashSeed. Order-sensitive; the fingerprint absorbs whole words
// rather than hashing byte-at-a-time, since exploration states are
// fingerprinted on the hot path and a machine holds hundreds of words.
type hasher struct{ h uint64 }

func newHasher() hasher { return hasher{h: mem.HashSeed} }

func (f *hasher) word(w uint64) { f.h = mem.Mix64(f.h ^ w) }

func (f *hasher) bool(b bool) {
	if b {
		f.word(1)
	} else {
		f.word(0)
	}
}

func (f *hasher) value(v mem.Value) {
	f.word(v.W)
	f.word(uint64(v.L))
}

// Fingerprint hashes the machine's dynamic configuration — PC, retired
// count, register file, data memory, reorder-buffer contents, and the
// RSB journal — to 64 bits. Machines with equal configurations produce
// equal fingerprints, so the schedule explorer can use the fingerprint
// to prune re-converged exploration states (distinct configurations may
// collide with probability ~2^-64; callers trading exactness for speed
// accept that). The static program and the machine parameters are not
// hashed: they are constant across one exploration.
func (m *Machine) Fingerprint() uint64 {
	f := newHasher()
	f.word(uint64(m.PC))
	f.word(uint64(m.Retired))
	// Register file and memory maintain incremental order-independent
	// hash sums (updated on every Write), so their contribution is
	// O(1) here — crucial, since the dedup table fingerprints every
	// explored state.
	f.word(m.Regs.HashSum())
	f.word(m.Mem.HashSum())
	f.word(uint64(m.Buf.Min()))
	for _, i := range m.Buf.Indices() {
		t, _ := m.Buf.Get(i)
		t.hashInto(&f)
	}
	m.RSB.hashInto(&f)
	return f.h
}

// hashInto feeds every semantically meaningful transient field to the
// hasher. Fields that are inert for the current Kind still hash (they
// are zero-valued there), which keeps the function branch-free and
// future-proof against new resolution flags.
func (t *Transient) hashInto(f *hasher) {
	f.word(uint64(t.Kind))
	f.word(uint64(t.Dst))
	f.word(uint64(t.Op))
	f.word(uint64(len(t.Args)))
	for _, a := range t.Args {
		f.bool(a.IsReg)
		f.word(uint64(a.Reg))
		f.value(a.Imm)
	}
	f.value(t.Val)
	f.bool(t.FromLoad)
	f.word(uint64(t.Dep))
	f.word(t.DataAddr)
	f.word(uint64(t.PP))
	f.word(uint64(t.Guess))
	f.word(uint64(t.True))
	f.word(uint64(t.False))
	f.word(uint64(t.Target))
	f.bool(t.Src.IsReg)
	f.word(uint64(t.Src.Reg))
	f.value(t.Src.Imm)
	f.bool(t.ValKnown)
	f.value(t.SVal)
	f.bool(t.AddrKnown)
	f.value(t.SAddr)
	f.bool(t.PredFwd)
	f.value(t.PredVal)
	f.word(uint64(t.PredFrom))
}

// Hash folds the RSB journal (policy included) to 64 bits — exported
// so non-core domains of the exploration engine can fingerprint the
// RSB they embed.
func (s *RSB) Hash() uint64 {
	f := newHasher()
	s.hashInto(&f)
	return f.h
}

func (s *RSB) hashInto(f *hasher) {
	f.word(uint64(s.policy))
	for _, e := range s.entries {
		f.word(uint64(e.idx))
		f.bool(e.isPush)
		f.word(uint64(e.target))
	}
}
