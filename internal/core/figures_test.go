package core

import (
	"errors"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// TestFigure1SpectreV1 replays Figure 1: the bounds check is
// speculatively ignored and a byte of the secret Key leaks through the
// address of the second load.
func TestFigure1SpectreV1(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9)) // out of bounds: 4 > 9 is false

	// fetch: true — speculatively follow the "in bounds" arm.
	obs := mustStep(t, m, FetchGuess(true))
	if len(obs) != 0 {
		t.Fatalf("fetch leaked %v", obs)
	}
	wantBufEntry(t, m, 1, "br(gt, [4, ra], 2, (2, 4))")

	mustStep(t, m, Fetch())
	mustStep(t, m, Fetch())
	wantBufEntry(t, m, 2, "(rb = load([64, ra]))")
	wantBufEntry(t, m, 3, "(rc = load([68, rb]))")

	// execute 2: reads Key[1] at 0x40+9 = 0x49; the address is public.
	obs = mustStep(t, m, Execute(2))
	wantTrace(t, obs, ReadObs(0x49, mem.Public))
	ld, _ := m.Buf.Get(2)
	if ld.Kind != TValue || ld.Val != mem.Sec(0xA1) {
		t.Fatalf("buf(2) = %s, want resolved Key[1]", ld)
	}

	// execute 3: the secret now taints the address — the leak.
	obs = mustStep(t, m, Execute(3))
	wantTrace(t, obs, ReadObs(0x44+0xA1, mem.Secret))

	// The branch eventually resolves and rolls the misprediction back,
	// but the secret has already escaped.
	obs = mustStep(t, m, Execute(1))
	wantTrace(t, obs, RollbackObs(), JumpObs(4, mem.Public))
	wantNoBufEntry(t, m, 2)
	wantBufEntry(t, m, 1, "jump 4")
	if m.PC != 4 {
		t.Fatalf("PC = %d, want 4", m.PC)
	}
}

// TestFigure1SequentiallyConstantTime confirms the same program is
// constant-time under its canonical sequential schedule: the paper's
// point is precisely that sequential CT is not enough.
func TestFigure1SequentiallyConstantTime(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9))
	_, trace, err := RunSequential(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if trace.HasSecret() {
		t.Fatalf("sequential trace leaks: %s", trace)
	}
}

// TestFigure1SCTViolation checks the Def. 3.1 formulation directly:
// two configurations differing only in the secret Key produce
// different observation traces under the attack schedule.
func TestFigure1SCTViolation(t *testing.T) {
	m := New(fig1Program())
	m.Regs.Write(ra, mem.Pub(9))
	attack := Schedule{FetchGuess(true), Fetch(), Fetch(), Execute(2), Execute(3)}

	res := CheckSCT(m, attack, 32, newRng(1))
	if res == nil {
		t.Fatal("attack schedule must violate SCT")
	}
	if len(res.TraceA) == 0 || len(res.TraceB) == 0 {
		t.Fatalf("expected non-empty diverging traces, got %q vs %q", res.TraceA, res.TraceB)
	}

	// And under the sequential schedule there is no violation.
	seq, _, err := RunSequential(m.Clone(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res := CheckSCT(m, seq, 32, newRng(2)); res != nil {
		t.Fatalf("sequential schedule must satisfy SCT: %s", res.Reason)
	}
}

// fig2Program reconstructs Figure 2 (hypothetical aliasing-predictor
// attack). Buffer indices match the figure: the store lands at index 2
// and the two loads at 7 and 8.
func fig2Program() *isa.Program {
	b := isa.NewBuilder(1)
	nops(b, 1)                                                     // point 1 → buffer index 1 (drained)
	b.Store(isa.R(rb), isa.R(ra), isa.ImmW(0x40))                  // 2: store(rb, [40, ra])
	nops(b, 4)                                                     // 3..6
	b.Load(rc, isa.ImmW(0x45))                                     // 7: (rc = load([45]))
	b.Load(rc, isa.ImmW(0x48), isa.R(rc))                          // 8: (rc = load([48, rc]))
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(4)) // secretKey
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8)) // pubArrA
	b.Region(0x48, mem.Pub(9), mem.Pub(10), mem.Pub(11), mem.Pub(12))
	return b.MustBuild()
}

// TestFigure2AliasingPredictor replays the §3.5 attack: a load is
// speculatively forwarded a value from a store whose address is not
// yet known; the forwarded secret taints a second load's address.
func TestFigure2AliasingPredictor(t *testing.T) {
	const x = 0x33 // the secret in rb
	m := New(fig2Program())
	m.Regs.Write(ra, mem.Pub(2))
	m.Regs.Write(rb, mem.Sec(x))

	drain(t, m, 1)
	for k := 0; k < 7; k++ { // fetch indices 2..8
		mustStep(t, m, Fetch())
	}

	// execute 2 : value — the store's data resolves to the secret.
	mustStep(t, m, ExecuteValue(2))
	wantBufEntry(t, m, 2, "store(51sec, [ra, 64])")

	// execute 7 : fwd 2 — the aliasing predictor forwards it to the
	// load at 7 although neither address is known.
	obs := mustStep(t, m, ExecuteFwd(7, 2))
	if len(obs) != 0 {
		t.Fatalf("prediction itself must be silent, got %v", obs)
	}
	wantBufEntry(t, m, 7, "(rc = load([69], (51sec, 2)))")

	// execute 8 — the forwarded secret taints the next load's address.
	obs = mustStep(t, m, Execute(8))
	wantTrace(t, obs, ReadObs(0x48+x, mem.Secret))

	// execute 2 : addr — the store resolves to 0x42; no hazard yet
	// (the load at 7 is still only partially resolved).
	obs = mustStep(t, m, ExecuteAddr(2))
	wantTrace(t, obs, FwdObs(0x42, mem.Public))

	// execute 7 — the misprediction surfaces: store went to 0x42, the
	// load reads 0x45. Everything from 7 on rolls back.
	obs = mustStep(t, m, Execute(7))
	wantTrace(t, obs, RollbackObs(), FwdObs(0x45, mem.Public))
	wantNoBufEntry(t, m, 7)
	wantNoBufEntry(t, m, 8)
	if m.PC != 7 {
		t.Fatalf("PC = %d, want restart at the load's program point 7", m.PC)
	}
}

// TestFigure4BranchPrediction replays both halves of Figure 4.
func TestFigure4BranchPrediction(t *testing.T) {
	build := func() *isa.Builder {
		b := isa.NewBuilder(1)
		nops(b, 2) // consume buffer indices 1, 2
		b.Op(rb, isa.OpMov, isa.ImmW(4))
		b.Br(isa.OpLt, []isa.Operand{isa.ImmW(2), isa.R(ra)}, 9, 12)
		b.Skip(4) // 5..8 unused
		b.Place(9, isa.Op(rc, isa.OpAdd, []isa.Operand{isa.ImmW(1), isa.R(rb)}, 10))
		b.Place(12, isa.Op(rd, isa.OpMul, []isa.Operand{isa.R(rg), isa.R(rh)}, 13))
		return b
	}

	t.Run("predicted correctly", func(t *testing.T) {
		m := New(build().MustBuild())
		m.Regs.Write(ra, mem.Pub(3))
		drain(t, m, 2)
		mustStep(t, m, Fetch())          // 3: rb = 4
		mustStep(t, m, Execute(3))       // resolve it, as in the figure
		mustStep(t, m, FetchGuess(true)) // 4: guess 9 (correct: 2 < 3)
		mustStep(t, m, Fetch())          // 5: rc = op(+, (1, rb)) from point 9
		wantBufEntry(t, m, 3, "(rb = 4pub)")
		wantBufEntry(t, m, 4, "br(lt, [2, ra], 9, (9, 12))")
		wantBufEntry(t, m, 5, "(rc = op(add, [1, rb]))")

		obs := mustStep(t, m, Execute(4))
		wantTrace(t, obs, JumpObs(9, mem.Public))
		wantBufEntry(t, m, 4, "jump 9")
		wantBufEntry(t, m, 5, "(rc = op(add, [1, rb]))") // survives
	})

	t.Run("predicted incorrectly", func(t *testing.T) {
		m := New(build().MustBuild())
		m.Regs.Write(ra, mem.Pub(3))
		drain(t, m, 2)
		mustStep(t, m, Fetch())
		mustStep(t, m, Execute(3))
		mustStep(t, m, FetchGuess(false)) // 4: guess 12 (incorrect)
		mustStep(t, m, Fetch())           // 5: rd = op(*, (rg, rh)) from point 12
		wantBufEntry(t, m, 5, "(rd = op(mul, [rg, rh]))")

		obs := mustStep(t, m, Execute(4))
		wantTrace(t, obs, RollbackObs(), JumpObs(9, mem.Public))
		wantBufEntry(t, m, 4, "jump 9")
		wantNoBufEntry(t, m, 5)
		if m.PC != 9 {
			t.Fatalf("PC = %d, want 9", m.PC)
		}
	})
}

// fig5Program reconstructs Figure 5: two stores, the second with a
// late-resolving address, and a load that forwards from the wrong one.
func fig5Program() *isa.Program {
	b := isa.NewBuilder(1)
	nops(b, 1)
	b.Store(isa.ImmW(12), isa.ImmW(0x43))         // 2: store(12, [43])
	b.Store(isa.ImmW(20), isa.ImmW(3), isa.R(ra)) // 3: store(20, [3, ra])
	b.Load(rc, isa.ImmW(0x43))                    // 4: (rc = load([43]))
	return b.MustBuild()
}

// TestFigure5StoreHazard replays Figure 5's store-address hazard.
func TestFigure5StoreHazard(t *testing.T) {
	m := New(fig5Program())
	m.Regs.Write(ra, mem.Pub(0x40))
	drain(t, m, 1)
	mustStep(t, m, Fetch()) // 2 (value pre-resolved: immediate 12)
	obs := mustStep(t, m, ExecuteAddr(2))
	wantTrace(t, obs, FwdObs(0x43, mem.Public))
	mustStep(t, m, Fetch()) // 3 (value pre-resolved: immediate 20)
	mustStep(t, m, Fetch()) // 4
	wantBufEntry(t, m, 2, "store(12pub, 67pub)")
	wantBufEntry(t, m, 3, "store(20pub, [3, ra])")
	wantBufEntry(t, m, 4, "(rc = load([67]))")

	// execute 4: forwards 12 from the (stale) store at 2.
	obs = mustStep(t, m, Execute(4))
	wantTrace(t, obs, FwdObs(0x43, mem.Public))
	wantBufEntry(t, m, 4, "(rc = 12pub{2, 0x43})")

	// execute 3 : addr resolves to the same address — hazard: the load
	// at 4 forwarded from an older store. Roll back to the load.
	obs = mustStep(t, m, ExecuteAddr(3))
	wantTrace(t, obs, RollbackObs(), FwdObs(0x43, mem.Public))
	wantNoBufEntry(t, m, 4)
	wantBufEntry(t, m, 3, "store(20pub, 67pub)")
	if m.PC != 4 {
		t.Fatalf("PC = %d, want the load's program point 4", m.PC)
	}

	// Re-executing the load now forwards from the correct store. The
	// re-fetched load reoccupies index 4 (the domain stays contiguous).
	mustStep(t, m, Fetch())
	obs = mustStep(t, m, Execute(4))
	wantTrace(t, obs, FwdObs(0x43, mem.Public))
	wantBufEntry(t, m, 4, "(rc = 20pub{3, 0x43})")
}

// fig6Program reconstructs Figure 6 (Spectre v1.1): a speculative
// out-of-bounds store forwards a secret to a benign load.
func fig6Program() *isa.Program {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 9) // 1
	b.Store(isa.R(rb), isa.ImmW(0x40), isa.R(ra))               // 2: store(rb, [40, ra])
	nops(b, 4)                                                  // 3..6
	b.Load(rc, isa.ImmW(0x45))                                  // 7
	b.Load(rc, isa.ImmW(0x48), isa.R(rc))                       // 8
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(4))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Pub(9), mem.Pub(10), mem.Pub(11), mem.Pub(12))
	return b.MustBuild()
}

// TestFigure6SpectreV11 replays Figure 6.
func TestFigure6SpectreV11(t *testing.T) {
	const x = 0x21
	m := New(fig6Program())
	m.Regs.Write(ra, mem.Pub(5)) // out of bounds: 4 > 5 is false
	m.Regs.Write(rb, mem.Sec(x))

	mustStep(t, m, FetchGuess(true)) // mispredict the bounds check
	for k := 0; k < 7; k++ {
		mustStep(t, m, Fetch()) // 2..8
	}
	wantBufEntry(t, m, 1, "br(gt, [4, ra], 2, (2, 9))")
	wantBufEntry(t, m, 2, "store(rb, [64, ra])")

	obs := mustStep(t, m, ExecuteAddr(2))
	wantTrace(t, obs, FwdObs(0x45, mem.Public)) // 0x40+5: inside pubArrA
	mustStep(t, m, ExecuteValue(2))
	wantBufEntry(t, m, 2, "store(33sec, 69pub)")

	// execute 7: the benign load aliases with the speculative store
	// and receives the secret.
	obs = mustStep(t, m, Execute(7))
	wantTrace(t, obs, FwdObs(0x45, mem.Public))
	wantBufEntry(t, m, 7, "(rc = 33sec{2, 0x45})")

	// execute 8: secret-tainted address — the leak.
	obs = mustStep(t, m, Execute(8))
	wantTrace(t, obs, ReadObs(0x48+x, mem.Secret))
}

// fig7Program reconstructs Figure 7 (Spectre v4): the store's address
// resolves too late and the load reads the stale secret underneath.
func fig7Program() *isa.Program {
	b := isa.NewBuilder(1)
	nops(b, 1)
	b.Store(isa.ImmW(0), isa.ImmW(3), isa.R(ra)) // 2: store(0, [3, ra])
	b.Load(rc, isa.ImmW(0x43))                   // 3: (rc = load([43]))
	b.Load(rc, isa.ImmW(0x44), isa.R(rc))        // 4: (rc = load([44, rc]))
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(0x5A))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	return b.MustBuild()
}

// TestFigure7SpectreV4 replays Figure 7.
func TestFigure7SpectreV4(t *testing.T) {
	m := New(fig7Program())
	m.Regs.Write(ra, mem.Pub(0x40))
	drain(t, m, 1)
	mustStep(t, m, Fetch()) // 2
	mustStep(t, m, Fetch()) // 3
	mustStep(t, m, Fetch()) // 4

	// execute 3: the store's address is unresolved, so the load runs
	// ahead and reads the stale secret from memory.
	obs := mustStep(t, m, Execute(3))
	wantTrace(t, obs, ReadObs(0x43, mem.Public))
	wantBufEntry(t, m, 3, "(rc = 90sec{⊥, 0x43})")

	// execute 4: secret-dependent address — the leak.
	obs = mustStep(t, m, Execute(4))
	wantTrace(t, obs, ReadObs(0x44+0x5A, mem.Secret))

	// execute 2 : addr: resolves to 0x43, detects that the load at 3
	// read stale data, rolls back 3 and 4.
	obs = mustStep(t, m, ExecuteAddr(2))
	wantTrace(t, obs, RollbackObs(), FwdObs(0x43, mem.Public))
	wantNoBufEntry(t, m, 3)
	wantNoBufEntry(t, m, 4)
	wantBufEntry(t, m, 2, "store(0pub, 67pub)")
	if m.PC != 3 {
		t.Fatalf("PC = %d, want 3", m.PC)
	}
}

// fig8Program is Figure 1 with a fence inserted after the branch.
func fig8Program() *isa.Program {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 5) // 1
	b.Fence()                                                   // 2
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))                       // 3
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))                       // 4
	b.Region(0x40, mem.Pub(10), mem.Pub(11), mem.Pub(12), mem.Pub(13))
	b.Region(0x44, mem.Pub(20), mem.Pub(21), mem.Pub(22), mem.Pub(23))
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	return b.MustBuild()
}

// TestFigure8FenceBlocksV1 replays Figure 8: the fence stalls both
// loads until the branch resolves, so nothing leaks.
func TestFigure8FenceBlocksV1(t *testing.T) {
	m := New(fig8Program())
	m.Regs.Write(ra, mem.Pub(9))

	mustStep(t, m, FetchGuess(true))
	mustStep(t, m, Fetch()) // 2: fence
	mustStep(t, m, Fetch()) // 3: load
	mustStep(t, m, Fetch()) // 4: load

	// The loads cannot execute past the fence.
	if _, err := m.Step(Execute(3)); !errors.Is(err, ErrStall) {
		t.Fatalf("execute 3 past a fence must stall, got %v", err)
	}
	if _, err := m.Step(Execute(4)); !errors.Is(err, ErrStall) {
		t.Fatalf("execute 4 past a fence must stall, got %v", err)
	}

	// Resolving the branch exposes the misprediction; the fence and
	// loads are rolled back and nothing secret was ever observed.
	obs := mustStep(t, m, Execute(1))
	wantTrace(t, obs, RollbackObs(), JumpObs(5, mem.Public))
	wantBufEntry(t, m, 1, "jump 5")
	wantNoBufEntry(t, m, 2)
	wantNoBufEntry(t, m, 3)
	wantNoBufEntry(t, m, 4)
	if m.PC != 5 {
		t.Fatalf("PC = %d, want 5", m.PC)
	}
}

// TestFenceExecutesNothing confirms a fence has no execute rule.
func TestFenceExecutesNothing(t *testing.T) {
	m := New(fig8Program())
	m.Regs.Write(ra, mem.Pub(1))
	mustStep(t, m, FetchGuess(true))
	mustStep(t, m, Fetch()) // fence at index 2
	if _, err := m.Step(Execute(2)); !errors.Is(err, ErrStall) {
		t.Fatalf("fences have no execute rule, got %v", err)
	}
	// It retires only once it reaches the buffer head.
	if _, err := m.Step(Retire()); !errors.Is(err, ErrStall) {
		t.Fatalf("branch at head is unresolved; retire must stall, got %v", err)
	}
	mustStep(t, m, Execute(1))
	mustStep(t, m, Retire()) // jump
	mustStep(t, m, Retire()) // fence
	if m.Retired != 2 {
		t.Fatalf("retired = %d, want 2", m.Retired)
	}
}
