package core

import (
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

func fingerprintMachine() *Machine {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(0)}, 2, 4)
	b.Load(1, isa.ImmW(0x40), isa.R(0))
	b.Store(isa.R(1), isa.ImmW(0x44))
	b.Region(0x40, mem.Pub(1), mem.Pub(2), mem.Pub(3), mem.Pub(4))
	b.Region(0x44, mem.Sec(7))
	m := New(b.MustBuild())
	m.Regs.Write(0, mem.Pub(2))
	return m
}

func TestFingerprintStableAcrossClones(t *testing.T) {
	m := fingerprintMachine()
	if m.Fingerprint() != m.Fingerprint() {
		t.Fatal("fingerprint must be deterministic")
	}
	if got := m.Clone().Fingerprint(); got != m.Fingerprint() {
		t.Fatal("a clone must fingerprint identically")
	}
	// Equal configurations reached by equal steps hash equally.
	a, b := fingerprintMachine(), fingerprintMachine()
	for _, d := range []Directive{FetchGuess(true), Fetch(), Execute(2)} {
		if _, err := a.Step(d); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Step(d); err != nil {
			t.Fatal(err)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal configurations must fingerprint equally")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fingerprintMachine().Fingerprint()

	m := fingerprintMachine()
	m.PC = 9
	if m.Fingerprint() == base {
		t.Fatal("PC must perturb the fingerprint")
	}

	m = fingerprintMachine()
	m.Regs.Write(0, mem.Pub(3))
	if m.Fingerprint() == base {
		t.Fatal("register contents must perturb the fingerprint")
	}

	m = fingerprintMachine()
	m.Mem.Write(0x41, mem.Pub(99))
	if m.Fingerprint() == base {
		t.Fatal("memory contents must perturb the fingerprint")
	}

	m = fingerprintMachine()
	m.Mem.Write(0x41, mem.Sec(2)) // same word, different label
	if m.Fingerprint() == base {
		t.Fatal("labels must perturb the fingerprint")
	}

	m = fingerprintMachine()
	m.Retired = 5
	if m.Fingerprint() == base {
		t.Fatal("retired count must perturb the fingerprint")
	}

	m = fingerprintMachine()
	if _, err := m.Step(FetchGuess(true)); err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() == base {
		t.Fatal("buffer contents must perturb the fingerprint")
	}
	withBranch := m.Fingerprint()
	n := fingerprintMachine()
	if _, err := n.Step(FetchGuess(false)); err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() == withBranch {
		t.Fatal("the speculative guess must perturb the fingerprint")
	}

	m = fingerprintMachine()
	m.RSB.Push(1, 7)
	if m.Fingerprint() == base {
		t.Fatal("RSB journal must perturb the fingerprint")
	}
}
