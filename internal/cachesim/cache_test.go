package cachesim

import (
	"testing"

	"pitchfork/internal/attacks"
	"pitchfork/internal/core"
	"pitchfork/internal/mem"
)

func TestCacheBasics(t *testing.T) {
	c, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hit(0x40) {
		t.Fatal("cold cache must miss")
	}
	c.Touch(0x40)
	if !c.Hit(0x40) {
		t.Fatal("touched line must hit")
	}
	c.Flush(0x40)
	if c.Hit(0x40) {
		t.Fatal("flushed line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := New(1, 2, 1) // single set, two ways
	c.Touch(0)
	c.Touch(1)
	c.Touch(2) // evicts 0 (LRU)
	if c.Hit(0) {
		t.Fatal("LRU line must be evicted")
	}
	if !c.Hit(1) || !c.Hit(2) {
		t.Fatal("MRU lines must stay")
	}
	// Re-touching 1 makes 2 the LRU.
	c.Touch(1)
	c.Touch(3)
	if c.Hit(2) {
		t.Fatal("2 must be evicted after 1 was re-touched")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Fatal("zero sets must be rejected")
	}
	if _, err := New(1, 0, 1); err == nil {
		t.Fatal("zero ways must be rejected")
	}
	if _, err := New(1, 1, 0); err == nil {
		t.Fatal("zero line size must be rejected")
	}
}

func TestLineGranularity(t *testing.T) {
	c, _ := New(8, 2, 4)
	c.Touch(0x41)
	if !c.Hit(0x42) || !c.Hit(0x40) {
		t.Fatal("same-line addresses must hit")
	}
	if c.Hit(0x44) {
		t.Fatal("next line must miss")
	}
}

func TestReplayTouchesReadsAndWrites(t *testing.T) {
	c, _ := New(16, 4, 1)
	c.Replay(core.Trace{
		core.ReadObs(0x10, mem.Public),
		core.WriteObs(0x20, mem.Public),
		core.FwdObs(0x30, mem.Public), // bypasses the cache
		core.JumpObs(5, mem.Public),
		core.RollbackObs(),
	})
	if !c.Hit(0x10) || !c.Hit(0x20) {
		t.Fatal("reads and writes must touch")
	}
	if c.Hit(0x30) {
		t.Fatal("forwards must not touch")
	}
}

// TestFlushReloadRecoversFigure1Secret is the end-to-end demo: run the
// Figure 1 attack, feed the observation trace through the cache, and
// recover Key[1] with flush+reload — exactly the attacker the paper's
// §2 describes.
func TestFlushReloadRecoversFigure1Secret(t *testing.T) {
	a := attacks.Figure1()
	recs, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	var trace core.Trace
	for _, r := range recs {
		trace = append(trace, r.Obs...)
	}
	cache, _ := New(64, 4, 1)
	fr := FlushReload{Cache: cache, ProbeBase: 0x44, Stride: 1, Slots: 256}
	hot := fr.Recover(trace)
	// Two hot slots: slot 5 is the victim's known in-bounds read of
	// array A at 0x49 (discounted by the attacker); slot 0xA1 is the
	// probe hit that reveals Key[1].
	found := false
	for _, s := range hot {
		if s == 0xA1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot slots %v must include Key[1] = 0xA1", hot)
	}
	if len(hot) != 2 {
		t.Fatalf("hot slots = %v, want the A-read plus the leak", hot)
	}
}

// TestFlushReloadFailsOnFencedVictim: the Figure 8 victim leaks
// nothing, so the probe comes back cold (modulo the in-bounds slot).
func TestFlushReloadFailsOnFencedVictim(t *testing.T) {
	a := attacks.Figure8()
	recs, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	var trace core.Trace
	for _, r := range recs {
		trace = append(trace, r.Obs...)
	}
	cache, _ := New(64, 4, 1)
	fr := FlushReload{Cache: cache, ProbeBase: 0x44, Stride: 1, Slots: 256}
	if hot := fr.Recover(trace); len(hot) != 0 {
		t.Fatalf("fenced victim must leak nothing, recovered %v", hot)
	}
}
