// Package cachesim is an extension beyond the paper's model: a small
// set-associative cache driven by the semantics' observation traces,
// plus a flush+reload attacker that recovers secrets from them.
//
// The paper deliberately does not model caches (§3.1): any replacement
// policy is a function of the observation sequence, so observations
// subsume cache state. This package demonstrates that claim
// constructively — feeding a trace into a concrete cache model and
// recovering the leaked byte end-to-end, the way the Figure 1 attacker
// would with a timing probe.
package cachesim

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/mem"
)

// Cache is a set-associative cache with LRU replacement, tracking line
// presence only (the timing channel needs nothing else).
type Cache struct {
	sets      int
	ways      int
	lineWords mem.Word
	lines     [][]mem.Word // per set, MRU first; values are line tags
}

// New builds a cache. sets and ways must be positive; lineWords is the
// words-per-line granularity (1 models word-granular probing).
func New(sets, ways int, lineWords mem.Word) (*Cache, error) {
	if sets < 1 || ways < 1 || lineWords < 1 {
		return nil, fmt.Errorf("cachesim: invalid geometry %d×%d×%d", sets, ways, lineWords)
	}
	c := &Cache{sets: sets, ways: ways, lineWords: lineWords}
	c.lines = make([][]mem.Word, sets)
	return c, nil
}

func (c *Cache) locate(a mem.Word) (set int, tag mem.Word) {
	line := a / c.lineWords
	return int(line % mem.Word(c.sets)), line
}

// Touch accesses address a, inserting its line MRU-first.
func (c *Cache) Touch(a mem.Word) {
	set, tag := c.locate(a)
	ls := c.lines[set]
	for i, t := range ls {
		if t == tag {
			copy(ls[1:i+1], ls[:i])
			ls[0] = tag
			return
		}
	}
	if len(ls) < c.ways {
		ls = append(ls, 0)
	}
	copy(ls[1:], ls)
	ls[0] = tag
	c.lines[set] = ls
}

// Flush evicts the line holding a.
func (c *Cache) Flush(a mem.Word) {
	set, tag := c.locate(a)
	ls := c.lines[set]
	for i, t := range ls {
		if t == tag {
			c.lines[set] = append(ls[:i], ls[i+1:]...)
			return
		}
	}
}

// FlushAll empties the cache.
func (c *Cache) FlushAll() {
	for i := range c.lines {
		c.lines[i] = nil
	}
}

// Hit reports whether a's line is resident.
func (c *Cache) Hit(a mem.Word) bool {
	set, tag := c.locate(a)
	for _, t := range c.lines[set] {
		if t == tag {
			return true
		}
	}
	return false
}

// Replay drives the cache with the memory events of a trace: reads and
// writes touch their address; forwards bypass the cache (that is what
// the fwd observation means).
func (c *Cache) Replay(trace core.Trace) {
	for _, o := range trace {
		switch o.Kind {
		case core.ORead, core.OWrite:
			c.Touch(o.Addr)
		}
	}
}

// FlushReload is the classic probe: flush the probe array, run the
// victim (the trace), and reload each slot — the hot slot's index is
// the leaked value.
//
// probeBase is the start of the attacker-visible probe array (array B
// in Figure 1), stride the spacing between slots, and slots the number
// of candidate secret values.
type FlushReload struct {
	Cache     *Cache
	ProbeBase mem.Word
	Stride    mem.Word
	Slots     int
}

// Recover replays the victim trace and returns every hot probe slot
// in increasing order. The attacker interprets the hot set: accesses
// the victim makes architecturally (e.g. Figure 1's in-bounds array-A
// read) are known and discounted; the remaining hot slot is the
// leaked secret. An empty result means the victim touched no probe
// slot.
func (fr FlushReload) Recover(trace core.Trace) []int {
	fr.Cache.FlushAll()
	fr.Cache.Replay(trace)
	var hot []int
	for s := 0; s < fr.Slots; s++ {
		if fr.Cache.Hit(fr.ProbeBase + mem.Word(s)*fr.Stride) {
			hot = append(hot, s)
		}
	}
	return hot
}
