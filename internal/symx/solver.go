package symx

import (
	"math/rand"
	"sort"

	"pitchfork/internal/mem"
)

// Constraint asserts that an expression is truthy (nonzero) or falsy
// (zero).
type Constraint struct {
	E      Expr
	Truthy bool
}

// Holds evaluates the constraint under env.
func (c Constraint) Holds(env Env) bool {
	v := c.E.Eval(env)
	return (v.W != 0) == c.Truthy
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Truthy {
		return c.E.String() + " ≠ 0"
	}
	return c.E.String() + " = 0"
}

// PathCondition is a conjunction of constraints accumulated along an
// execution path. It is an immutable parent-pointer chain: With shares
// the whole prefix with the receiver, so extending the condition at a
// branch fork costs one node instead of a copy of the conjunction —
// symbolic exploration forks at every input-dependent branch, and the
// per-fork slice copies were the dominant constraint-bookkeeping cost.
// The zero value is the empty (trivially true) condition.
type PathCondition struct{ n *pcNode }

// pcNode is one conjunct; fp caches the Fingerprint fold of the chain
// up to and including this constraint, so fingerprints stay O(1) and
// bit-identical to the historical oldest-first slice fold. vars caches
// the sorted free-variable set of the whole chain, maintained
// incrementally by With and shared with the parent whenever the new
// conjunct introduces no fresh variables (the common case: a branch
// re-tests variables the chain already constrains).
type pcNode struct {
	parent *pcNode
	c      Constraint
	fp     uint64
	depth  int
	vars   []string
}

// PCond builds a path condition from constraints, oldest first.
func PCond(cs ...Constraint) PathCondition {
	var p PathCondition
	for _, c := range cs {
		p = p.With(c)
	}
	return p
}

// With returns the path condition extended by one constraint (the
// receiver is not mutated; prefixes stay shared across forks).
func (p PathCondition) With(c Constraint) PathCondition {
	h := mem.Mix64(p.Fingerprint() ^ Fingerprint(c.E))
	if c.Truthy {
		h = mem.Mix64(h ^ 1)
	} else {
		h = mem.Mix64(h ^ 2)
	}
	var pvars []string
	if p.n != nil {
		pvars = p.n.vars
	}
	return PathCondition{n: &pcNode{parent: p.n, c: c, fp: h, depth: p.Len() + 1, vars: unionVars(pvars, c.E)}}
}

// unionVars returns have ∪ vars(e), sorted — have itself when e adds
// nothing, so extending a condition usually allocates only its node.
func unionVars(have []string, e Expr) []string {
	fresh := missingVars(e, have, nil)
	if len(fresh) == 0 {
		return have
	}
	out := make([]string, 0, len(have)+len(fresh))
	out = append(out, have...)
	out = append(out, fresh...)
	sort.Strings(out)
	return out
}

// missingVars appends to dst the free variables of e that are absent
// from the sorted set have (allocating nothing when there are none).
func missingVars(e Expr, have []string, dst []string) []string {
	switch x := e.(type) {
	case Var:
		if !containsSorted(have, x.Name) {
			for _, s := range dst {
				if s == x.Name {
					return dst
				}
			}
			dst = append(dst, x.Name)
		}
	case Op:
		for _, a := range x.Args {
			dst = missingVars(a, have, dst)
		}
	}
	return dst
}

func containsSorted(have []string, s string) bool {
	i := sort.SearchStrings(have, s)
	return i < len(have) && have[i] == s
}

// Len reports the number of conjuncts.
func (p PathCondition) Len() int {
	if p.n == nil {
		return 0
	}
	return p.n.depth
}

// Holds evaluates the conjunction under env.
func (p PathCondition) Holds(env Env) bool {
	for n := p.n; n != nil; n = n.parent {
		if !n.c.Holds(env) {
			return false
		}
	}
	return true
}

// Fingerprint folds the conjunction to 64 bits, structurally and
// order-sensitively — one hash serving both the solver's per-query
// seeding and the symbolic exploration domain's configuration
// fingerprints, so the two can never drift apart. The fold is cached
// per node, making this O(1).
func (p PathCondition) Fingerprint() uint64 {
	if p.n == nil {
		return mem.HashSeed
	}
	return p.n.fp
}

// Vars returns the free variables of the conjunction, sorted. The
// slice is cached on the chain and shared with conditions extending
// this one — callers must not mutate it.
func (p PathCondition) Vars() []string {
	if p.n == nil {
		return nil
	}
	return p.n.vars
}

// parent returns the condition without its newest conjunct.
func (p PathCondition) parent() PathCondition {
	if p.n == nil {
		return PathCondition{}
	}
	return PathCondition{n: p.n.parent}
}

// conjuncts returns the chain oldest-first.
func (p PathCondition) conjuncts() []Constraint {
	out := make([]Constraint, p.Len())
	for n, i := p.n, len(out)-1; n != nil; n, i = n.parent, i-1 {
		out[i] = n.c
	}
	return out
}

// Solver searches for satisfying assignments of path conditions. The
// search runs in layers: an interval + known-bits propagation pre-pass
// over the conjunction (seeded incrementally from the parent
// condition's fixpoint) that settles definite UNSAT and narrows the
// candidate space; deterministic candidates (all-zeros, a seed grid
// for small queries, a coordinate sweep otherwise) filtered through
// the domains; extension of the parent condition's cached model by the
// one new conjunct; and finally bounded random probing with an
// incremental evaluator that re-checks only the conjuncts whose
// variables changed per candidate. Sound for SAT answers (a returned
// model always satisfies the constraints) and for propagation UNSAT
// (empty domains are a proof); a probe-budget miss is "unknown".
//
// Results are memoized in a bounded cache keyed by the path
// condition's fingerprint, and every layer is a pure function of
// (solver seed, query): answers are independent of call order and
// cache state, which is what lets one Solver be shared across the
// exploration engine's worker goroutines while keeping parallel
// symbolic runs bit-identical to serial ones. Returned models are
// shared with the cache — callers must not mutate them.
type Solver struct {
	seed int64
	// Tries bounds random probes per query.
	Tries int
	// Seeds are the per-variable candidate words tried exhaustively
	// for queries with few variables.
	Seeds []mem.Word

	cache    *modelCache
	counters solverCounters
}

// NewSolver returns a solver with a deterministic seed.
func NewSolver(seed int64) *Solver {
	return &Solver{
		seed:  seed,
		Tries: 4096,
		Seeds: []mem.Word{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 63, 64, 100, 127, 128, 200, 255, 256, 1 << 12, 1 << 16, ^mem.Word(0), ^mem.Word(0) - 1, 1 << 63},
		cache: newModelCache(),
	}
}

// rngFor derives the query-local generator for the random-probing
// phase from the solver seed and a structural fingerprint of the
// query (a direct tree walk — no string rendering on the hot path).
func (s *Solver) rngFor(p PathCondition) *rand.Rand {
	return rand.New(rand.NewSource(s.seed ^ int64(p.Fingerprint())))
}

// Fingerprint folds an expression tree to 64 bits, structurally and
// label-inclusive: structurally equal expressions hash equal. The
// solver's query seeding and the symbolic domain's configuration
// fingerprints (exploration dedup) both build on it.
func Fingerprint(e Expr) uint64 {
	switch x := e.(type) {
	case Const:
		h := mem.Mix64(mem.HashSeed ^ 1)
		h = mem.Mix64(h ^ x.V.W)
		return mem.Mix64(h ^ uint64(x.V.L))
	case Var:
		h := mem.Mix64(mem.HashSeed ^ 2)
		for i := 0; i < len(x.Name); i++ {
			h = mem.Mix64(h ^ uint64(x.Name[i]))
		}
		return mem.Mix64(h ^ uint64(x.L))
	case Op:
		h := mem.Mix64(mem.HashSeed ^ 3)
		h = mem.Mix64(h ^ uint64(x.Code))
		for _, a := range x.Args {
			h = mem.Mix64(h ^ Fingerprint(a))
		}
		return h
	}
	return mem.Mix64(mem.HashSeed ^ 4)
}

// Solve searches for a model of p. ok=false means no model was found
// within the budget (which may be UNSAT or just hard). The returned
// model is shared with the solver's cache; callers must not mutate it.
func (s *Solver) Solve(p PathCondition) (Env, bool) {
	e := s.query(p)
	return e.env, e.ok
}

// SolveWith searches for a model of p that additionally pins e to the
// word want — the primitive behind targeted address concretization.
func (s *Solver) SolveWith(p PathCondition, e Expr, want mem.Word) (Env, bool) {
	pinned := p.With(Constraint{E: Apply(eqOp(), e, C(mem.Pub(want))), Truthy: true})
	return s.Solve(pinned)
}

// Feasible reports whether a model of p was found within budget.
func (s *Solver) Feasible(p PathCondition) bool {
	return s.query(p).ok
}

// query answers a solve through the memo cache. Entries are verified
// against their query before use (SAT hits must still satisfy p, in
// case of a fingerprint collision); on a miss the chain is solved
// recursively, parent first, so a result never depends on what happens
// to be cached.
func (s *Solver) query(p PathCondition) *solveEntry {
	s.counters.queries.Add(1)
	if p.n == nil {
		return emptyEntry
	}
	if e, ok := s.cache.get(p.n.fp); ok {
		if !e.ok || p.Holds(e.env) {
			s.counters.cacheHits.Add(1)
			return e
		}
	}
	e := s.solveFresh(p)
	s.cache.put(p.n.fp, e)
	return e
}

// solveFresh runs the layered search for a condition not in the cache.
func (s *Solver) solveFresh(p PathCondition) *solveEntry {
	vars := p.Vars()
	par := p.parent()
	var pe *solveEntry
	if par.n != nil {
		pe = s.query(par)
		if pe.unsat {
			// A superset of an unsatisfiable conjunction is unsatisfiable.
			s.counters.definiteUnsats.Add(1)
			return &solveEntry{unsat: true}
		}
	}
	vidx := make(map[string]int, len(vars))
	for i, v := range vars {
		vidx[v] = i
	}
	cons := p.conjuncts()

	// Layer 1: interval/known-bits propagation, seeded from the
	// parent's fixpoint (⊤ for fresh variables).
	doms := make([]vdom, len(vars))
	for i := range doms {
		doms[i] = fullDom
	}
	fromParent := false
	if pe != nil && pe.doms != nil {
		pvars := par.Vars()
		for i, j := 0, 0; i < len(pvars); i++ {
			for vars[j] != pvars[i] {
				j++
			}
			doms[j] = pe.doms[i]
		}
		fromParent = true
	}
	if !propagate(cons, vidx, doms, fromParent) {
		s.counters.definiteUnsats.Add(1)
		return &solveEntry{doms: doms, unsat: true}
	}
	for i := range doms {
		if !doms[i].isFull() {
			s.counters.propPruned.Add(1)
			break
		}
	}

	if len(vars) == 0 {
		if p.Holds(Env{}) {
			return &solveEntry{doms: doms, env: Env{}, ok: true}
		}
		return &solveEntry{doms: doms}
	}

	// Layer 2: deterministic candidates through the incremental
	// evaluator, filtered by the domains. The filter only skips
	// candidates that provably cannot be models, so the first hit is
	// the same one the historical from-scratch search found.
	ec := newEvalCtx(vars, cons, vidx)
	if ec.hopeless() {
		return &solveEntry{doms: doms}
	}
	if ec.bad == 0 && allZeros(doms) {
		return &solveEntry{doms: doms, env: ec.env, ok: true}
	}
	if len(vars) <= 2 {
		if ok := s.grid(ec, doms); ok {
			return &solveEntry{doms: doms, env: ec.env, ok: true}
		}
	} else if ok := s.coordinate(ec, doms); ok {
		return &solveEntry{doms: doms, env: ec.env, ok: true}
	}

	// Layer 3: extend the parent's model by the one new conjunct. Only
	// reachable when the deterministic candidates all failed — which,
	// when the parent itself fell through to probing, they necessarily
	// did (the child re-tries a superset of the parent's failed
	// candidates), so this can only replace a probe-phase answer.
	if pe != nil && pe.ok {
		if env, ok := s.extend(p, pe, par, vars, doms, vidx); ok {
			s.counters.extendHits.Add(1)
			return &solveEntry{doms: doms, env: env, ok: true}
		}
	}

	// Layer 4: random probing with the query-derived generator. The
	// generator consumes draws exactly like the historical search —
	// every variable is drawn each iteration, and domain filtering
	// happens after the draws — so the surviving first model is
	// bit-identical to what from-scratch probing found.
	rng := s.rngFor(p)
	cand := make([]mem.Word, len(vars))
	iters := uint64(0)
	defer func() { s.counters.probeIters.Add(iters) }()
	for t := 0; t < s.Tries; t++ {
		iters++
		inDom := true
		for i := range vars {
			var w mem.Word
			switch rng.Intn(3) {
			case 0:
				w = s.Seeds[rng.Intn(len(s.Seeds))]
			case 1:
				w = mem.Word(rng.Intn(512))
			default:
				w = mem.Word(rng.Uint64())
			}
			cand[i] = w
			if !doms[i].contains(w) {
				inDom = false
			}
		}
		if !inDom {
			continue
		}
		for i, w := range cand {
			ec.set(i, w)
		}
		if ec.bad == 0 {
			return &solveEntry{doms: doms, env: ec.env, ok: true}
		}
	}
	return &solveEntry{doms: doms}
}

func allZeros(doms []vdom) bool {
	for _, d := range doms {
		if !d.contains(0) {
			return false
		}
	}
	return true
}

// candList filters the seed words through a domain, appending a forced
// singleton (a propagation-solved equality) if the seeds miss it.
func (s *Solver) candList(d vdom, dst []mem.Word) []mem.Word {
	for _, w := range s.Seeds {
		if d.contains(w) {
			dst = append(dst, w)
		}
	}
	if w, ok := d.singleton(); ok && (len(dst) == 0 || dst[len(dst)-1] != w) {
		dst = append(dst, w)
	}
	return dst
}

// grid exhaustively tries seed-word combinations for 1–2 variable
// queries, in the historical enumeration order.
func (s *Solver) grid(ec *evalCtx, doms []vdom) bool {
	var b0, b1 [40]mem.Word
	c0 := s.candList(doms[0], b0[:0])
	if len(ec.vars) == 1 {
		for _, w := range c0 {
			ec.set(0, w)
			if ec.bad == 0 {
				return true
			}
		}
		return false
	}
	c1 := s.candList(doms[1], b1[:0])
	for _, w0 := range c0 {
		ec.set(0, w0)
		for _, w1 := range c1 {
			ec.set(1, w1)
			if ec.bad == 0 {
				return true
			}
		}
	}
	return false
}

// coordinate sweeps each variable over the seed words with the others
// pinned at zero, in the historical order.
func (s *Solver) coordinate(ec *evalCtx, doms []vdom) bool {
	nonzero := 0 // variables whose domain excludes 0
	for _, d := range doms {
		if !d.contains(0) {
			nonzero++
		}
	}
	for i := range ec.vars {
		rest := nonzero
		if !doms[i].contains(0) {
			rest--
		}
		if rest > 0 {
			continue // some other variable can't sit at zero
		}
		for _, w := range s.Seeds {
			if !doms[i].contains(w) {
				continue
			}
			ec.set(i, w)
			if ec.bad == 0 {
				return true
			}
		}
		ec.set(i, 0)
	}
	return false
}

// extend tries to reuse the parent condition's model: when the new
// conjunct adds no variables, the parent model either satisfies it or
// doesn't; when it adds one or two, they are gridded over the seed
// words against the new conjunct alone (older conjuncts cannot
// mention them).
func (s *Solver) extend(p PathCondition, pe *solveEntry, par PathCondition, vars []string, doms []vdom, vidx map[string]int) (Env, bool) {
	c := p.n.c
	pvars := par.Vars()
	if len(vars) == len(pvars) {
		if c.Holds(pe.env) {
			return pe.env, true
		}
		return nil, false
	}
	fresh := missingVars(c.E, pvars, nil)
	if len(fresh) > 2 {
		return nil, false
	}
	env := make(Env, len(vars))
	for k, w := range pe.env {
		env[k] = w
	}
	for _, v := range fresh {
		env[v] = 0
	}
	var b0, b1 [40]mem.Word
	c0 := s.candList(doms[vidx[fresh[0]]], b0[:0])
	if len(fresh) == 1 {
		for _, w := range c0 {
			env[fresh[0]] = w
			if c.Holds(env) {
				return env, true
			}
		}
		return nil, false
	}
	c1 := s.candList(doms[vidx[fresh[1]]], b1[:0])
	for _, w0 := range c0 {
		env[fresh[0]] = w0
		for _, w1 := range c1 {
			env[fresh[1]] = w1
			if c.Holds(env) {
				return env, true
			}
		}
	}
	return nil, false
}
