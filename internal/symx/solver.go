package symx

import (
	"math/rand"

	"pitchfork/internal/mem"
)

// Constraint asserts that an expression is truthy (nonzero) or falsy
// (zero).
type Constraint struct {
	E      Expr
	Truthy bool
}

// Holds evaluates the constraint under env.
func (c Constraint) Holds(env Env) bool {
	v := c.E.Eval(env)
	return (v.W != 0) == c.Truthy
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Truthy {
		return c.E.String() + " ≠ 0"
	}
	return c.E.String() + " = 0"
}

// PathCondition is a conjunction of constraints accumulated along an
// execution path. It is an immutable parent-pointer chain: With shares
// the whole prefix with the receiver, so extending the condition at a
// branch fork costs one node instead of a copy of the conjunction —
// symbolic exploration forks at every input-dependent branch, and the
// per-fork slice copies were the dominant constraint-bookkeeping cost.
// The zero value is the empty (trivially true) condition.
type PathCondition struct{ n *pcNode }

// pcNode is one conjunct; fp caches the Fingerprint fold of the chain
// up to and including this constraint, so fingerprints stay O(1) and
// bit-identical to the historical oldest-first slice fold.
type pcNode struct {
	parent *pcNode
	c      Constraint
	fp     uint64
	depth  int
}

// PCond builds a path condition from constraints, oldest first.
func PCond(cs ...Constraint) PathCondition {
	var p PathCondition
	for _, c := range cs {
		p = p.With(c)
	}
	return p
}

// With returns the path condition extended by one constraint (the
// receiver is not mutated; prefixes stay shared across forks).
func (p PathCondition) With(c Constraint) PathCondition {
	h := mem.Mix64(p.Fingerprint() ^ Fingerprint(c.E))
	if c.Truthy {
		h = mem.Mix64(h ^ 1)
	} else {
		h = mem.Mix64(h ^ 2)
	}
	return PathCondition{n: &pcNode{parent: p.n, c: c, fp: h, depth: p.Len() + 1}}
}

// Len reports the number of conjuncts.
func (p PathCondition) Len() int {
	if p.n == nil {
		return 0
	}
	return p.n.depth
}

// Holds evaluates the conjunction under env.
func (p PathCondition) Holds(env Env) bool {
	for n := p.n; n != nil; n = n.parent {
		if !n.c.Holds(env) {
			return false
		}
	}
	return true
}

// Fingerprint folds the conjunction to 64 bits, structurally and
// order-sensitively — one hash serving both the solver's per-query
// seeding and the symbolic exploration domain's configuration
// fingerprints, so the two can never drift apart. The fold is cached
// per node, making this O(1).
func (p PathCondition) Fingerprint() uint64 {
	if p.n == nil {
		return mem.HashSeed
	}
	return p.n.fp
}

// Vars returns the free variables of the conjunction, sorted.
func (p PathCondition) Vars() []string {
	set := make(map[string]bool)
	for n := p.n; n != nil; n = n.parent {
		n.c.E.vars(set)
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Solver searches for satisfying assignments of path conditions. It is
// a bounded heuristic: seeded candidate values, random probing, and
// coordinate descent. Sound for SAT answers (a returned model always
// satisfies the constraints); UNSAT answers are "unknown" and reported
// as such.
//
// A Solver holds no per-query mutable state: the random-probing phase
// derives its generator from the solver seed and a fingerprint of the
// query, so answers are a pure function of (seed, query) — independent
// of call order. That makes one Solver safe to share across the
// exploration engine's worker goroutines and keeps parallel symbolic
// runs bit-identical to serial ones.
type Solver struct {
	seed int64
	// Tries bounds random probes per query.
	Tries int
	// Seeds are the per-variable candidate words tried exhaustively
	// for queries with few variables.
	Seeds []mem.Word
}

// NewSolver returns a solver with a deterministic seed.
func NewSolver(seed int64) *Solver {
	return &Solver{
		seed:  seed,
		Tries: 4096,
		Seeds: []mem.Word{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 63, 64, 100, 127, 128, 200, 255, 256, 1 << 12, 1 << 16, ^mem.Word(0), ^mem.Word(0) - 1, 1 << 63},
	}
}

// rngFor derives the query-local generator for the random-probing
// phase from the solver seed and a structural fingerprint of the
// query (a direct tree walk — no string rendering on the hot path).
func (s *Solver) rngFor(p PathCondition) *rand.Rand {
	return rand.New(rand.NewSource(s.seed ^ int64(p.Fingerprint())))
}

// Fingerprint folds an expression tree to 64 bits, structurally and
// label-inclusive: structurally equal expressions hash equal. The
// solver's query seeding and the symbolic domain's configuration
// fingerprints (exploration dedup) both build on it.
func Fingerprint(e Expr) uint64 {
	switch x := e.(type) {
	case Const:
		h := mem.Mix64(mem.HashSeed ^ 1)
		h = mem.Mix64(h ^ x.V.W)
		return mem.Mix64(h ^ uint64(x.V.L))
	case Var:
		h := mem.Mix64(mem.HashSeed ^ 2)
		for i := 0; i < len(x.Name); i++ {
			h = mem.Mix64(h ^ uint64(x.Name[i]))
		}
		return mem.Mix64(h ^ uint64(x.L))
	case Op:
		h := mem.Mix64(mem.HashSeed ^ 3)
		h = mem.Mix64(h ^ uint64(x.Code))
		for _, a := range x.Args {
			h = mem.Mix64(h ^ Fingerprint(a))
		}
		return h
	}
	return mem.Mix64(mem.HashSeed ^ 4)
}

// Solve searches for a model of p. ok=false means no model was found
// within the budget (which may be UNSAT or just hard).
func (s *Solver) Solve(p PathCondition) (Env, bool) {
	vars := p.Vars()
	if len(vars) == 0 {
		if p.Holds(Env{}) {
			return Env{}, true
		}
		return nil, false
	}
	env := make(Env, len(vars))
	for _, v := range vars {
		env[v] = 0
	}
	if p.Holds(env) {
		return env, true
	}
	// Exhaustive seed grid for small queries.
	if len(vars) <= 2 {
		if m, ok := s.grid(p, vars, env, 0); ok {
			return m, true
		}
	} else {
		// Coordinate pass: fix others at 0, sweep each var over seeds.
		for _, v := range vars {
			for _, w := range s.Seeds {
				env[v] = w
				if p.Holds(env) {
					return env, true
				}
			}
			env[v] = 0
		}
	}
	// Random probing, with a query-derived generator (see rngFor).
	rng := s.rngFor(p)
	for t := 0; t < s.Tries; t++ {
		for _, v := range vars {
			switch rng.Intn(3) {
			case 0:
				env[v] = s.Seeds[rng.Intn(len(s.Seeds))]
			case 1:
				env[v] = mem.Word(rng.Intn(512))
			default:
				env[v] = mem.Word(rng.Uint64())
			}
		}
		if p.Holds(env) {
			return env, true
		}
	}
	return nil, false
}

func (s *Solver) grid(p PathCondition, vars []string, env Env, i int) (Env, bool) {
	if i == len(vars) {
		if p.Holds(env) {
			m := make(Env, len(env))
			for k, v := range env {
				m[k] = v
			}
			return m, true
		}
		return nil, false
	}
	for _, w := range s.Seeds {
		env[vars[i]] = w
		if m, ok := s.grid(p, vars, env, i+1); ok {
			return m, true
		}
	}
	env[vars[i]] = 0
	return nil, false
}

// SolveWith searches for a model of p that additionally pins e to the
// word want — the primitive behind targeted address concretization.
func (s *Solver) SolveWith(p PathCondition, e Expr, want mem.Word) (Env, bool) {
	pinned := p.With(Constraint{E: Apply(eqOp(), e, C(mem.Pub(want))), Truthy: true})
	return s.Solve(pinned)
}

// Feasible reports whether a model of p was found within budget.
func (s *Solver) Feasible(p PathCondition) bool {
	_, ok := s.Solve(p)
	return ok
}
