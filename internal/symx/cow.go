package symx

import "pitchfork/internal/mem"

// The symbolic containers (Memory, RegFile) reuse internal/mem's
// generic copy-on-write overlay chain (mem.CowMap) with expression
// values, so the chain logic — lookup precedence, fork freezing,
// depth-bounded flattening — has exactly one implementation.

// chainCellHash is the shared per-cell hash of the incremental,
// order-independent container sums: Mix64(Mix64(seed ^ key) ^
// Fingerprint(expr)) — kept bit-identical to the full-walk formula the
// symbolic configuration fingerprint used before the containers went
// copy-on-write.
func chainCellHash(key uint64, e Expr) uint64 {
	return mem.Mix64(mem.Mix64(mem.HashSeed^key) ^ Fingerprint(e))
}
