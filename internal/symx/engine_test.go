package symx

import (
	"fmt"
	"math/rand"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Deterministic random path conditions for the property suite.

func genExpr(rng *rand.Rand, vars []Var, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return CW(mem.Word(rng.Intn(300)))
	}
	ops := []isa.Opcode{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar,
		isa.OpNot, isa.OpNeg,
		isa.OpEq, isa.OpNe, isa.OpLt, isa.OpLe, isa.OpGt, isa.OpGe,
		isa.OpSlt, isa.OpSge, isa.OpSelect, isa.OpSucc, isa.OpPred,
	}
	op := ops[rng.Intn(len(ops))]
	n := op.Arity()
	if n < 0 {
		n = 1 + rng.Intn(3)
	}
	args := make([]Expr, n)
	for i := range args {
		args[i] = genExpr(rng, vars, depth-1)
	}
	return Apply(op, args...)
}

func genCond(rng *rand.Rand, vars []Var) PathCondition {
	var p PathCondition
	for n := 1 + rng.Intn(4); n > 0; n-- {
		p = p.With(Constraint{E: genExpr(rng, vars, 1+rng.Intn(3)), Truthy: rng.Intn(2) == 0})
	}
	return p
}

// bruteGridModel searches the solver's seed grid exhaustively with
// plain Holds evaluation — an independent reference for what the
// historical search could reach deterministically.
func bruteGridModel(s *Solver, p PathCondition) (Env, bool) {
	vars := p.Vars()
	env := make(Env, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return p.Holds(env)
		}
		for _, w := range s.Seeds {
			env[vars[i]] = w
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return env, true
	}
	return nil, false
}

// Property: any model the engine returns satisfies the condition.
func TestEngineModelsSatisfy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []Var{NewVar("x", mem.Public), NewVar("y", mem.Public), NewVar("z", mem.Secret)}
	s := NewSolver(7)
	for i := 0; i < 400; i++ {
		p := genCond(rng, vars[:1+rng.Intn(3)])
		if env, ok := s.Solve(p); ok && !p.Holds(env) {
			t.Fatalf("case %d: returned model %v does not satisfy %v", i, env, p.conjuncts())
		}
	}
}

// Property: interval/known-bits propagation never excludes a real
// model — in particular it never declares UNSAT on a condition the
// seed grid can satisfy, and the engine still finds a model there
// (the domains are filters, not oracles).
func TestEnginePropagationRetainsModels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vars := []Var{NewVar("x", mem.Public), NewVar("y", mem.Public)}
	s := NewSolver(7)
	for i := 0; i < 250; i++ {
		p := genCond(rng, vars[:1+rng.Intn(2)])
		m, satisfiable := bruteGridModel(s, p)
		pv := p.Vars()
		vidx := make(map[string]int, len(pv))
		for j, v := range pv {
			vidx[v] = j
		}
		doms := make([]vdom, len(pv))
		for j := range doms {
			doms[j] = fullDom
		}
		live := propagate(p.conjuncts(), vidx, doms, false)
		if !satisfiable {
			continue
		}
		if !live {
			t.Fatalf("case %d: propagation declared UNSAT but %v satisfies %v", i, m, p.conjuncts())
		}
		for j, v := range pv {
			if !doms[j].contains(m[v]) {
				t.Fatalf("case %d: domain %+v of %s excludes model value %d", i, doms[j], v, m[v])
			}
		}
		if _, ok := s.Solve(p); !ok {
			t.Fatalf("case %d: grid-satisfiable condition reported unsolved", i)
		}
	}
}

// Property: solving a chain child-by-child (warm parent entries at
// every step) agrees exactly with solving the full chain from scratch
// in a fresh solver.
func TestEngineIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	vars := []Var{NewVar("x", mem.Public), NewVar("y", mem.Public), NewVar("z", mem.Secret)}
	for i := 0; i < 150; i++ {
		p := genCond(rng, vars[:1+rng.Intn(3)])
		warm := NewSolver(5)
		var chain []PathCondition
		for n := p.n; n != nil; n = n.parent {
			chain = append(chain, PathCondition{n: n})
		}
		for j := len(chain) - 1; j >= 0; j-- { // oldest prefix first
			warm.Solve(chain[j])
		}
		wEnv, wOK := warm.Solve(p)
		cold := NewSolver(5)
		cEnv, cOK := cold.Solve(p)
		if wOK != cOK || fmt.Sprint(wEnv) != fmt.Sprint(cEnv) {
			t.Fatalf("case %d: incremental (%v,%v) != from-scratch (%v,%v) for %v",
				i, wEnv, wOK, cEnv, cOK, p.conjuncts())
		}
	}
}

// Property: answers are a pure function of (seed, query) — identical
// across repeated calls, interleaved unrelated queries, and solver
// instances with different cache states.
func TestEngineDeterministicAcrossCacheStates(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	vars := []Var{NewVar("x", mem.Public), NewVar("y", mem.Public)}
	conds := make([]PathCondition, 40)
	for i := range conds {
		conds[i] = genCond(rng, vars[:1+rng.Intn(2)])
	}
	a, b := NewSolver(9), NewSolver(9)
	type res struct {
		env string
		ok  bool
	}
	got := make([]res, len(conds))
	for i, p := range conds { // forward, cold cache
		env, ok := a.Solve(p)
		got[i] = res{fmt.Sprint(env), ok}
	}
	for i := len(conds) - 1; i >= 0; i-- { // reverse on another solver
		env, ok := b.Solve(conds[i])
		if r := (res{fmt.Sprint(env), ok}); r != got[i] {
			t.Fatalf("cond %d: call order changed the answer: %v vs %v", i, r, got[i])
		}
	}
	for i, p := range conds { // repeat = cache hits, same answers
		env, ok := a.Solve(p)
		if r := (res{fmt.Sprint(env), ok}); r != got[i] {
			t.Fatalf("cond %d: cache state changed the answer: %v vs %v", i, r, got[i])
		}
	}
}

// Fuzz the abstract domain directly: for random expressions and
// random variable domains containing a chosen assignment, the
// abstract evaluation must contain the concrete result.
func TestEngineDomainSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	vars := []Var{NewVar("x", mem.Public), NewVar("y", mem.Public)}
	vidx := map[string]int{"x": 0, "y": 1}
	for i := 0; i < 2000; i++ {
		env := Env{}
		doms := make([]vdom, len(vars))
		for j, v := range vars {
			w := mem.Word(rng.Uint64() >> uint(rng.Intn(64)))
			env[v.Name] = w
			d := fullDom
			switch rng.Intn(3) {
			case 0: // interval around w
				lo := w - mem.Word(rng.Intn(100))
				hi := w + mem.Word(rng.Intn(100))
				if lo <= w && w <= hi {
					d = ivl(lo, hi)
				}
			case 1: // some of w's bits known
				mask := mem.Word(rng.Uint64())
				d = vdom{lo: 0, hi: ^mem.Word(0), known: mask, bit: w & mask}.norm()
			}
			doms[j] = d
		}
		e := genExpr(rng, vars, 3)
		got := aeval(e, vidx, doms)
		if w := e.Eval(env).W; !got.contains(w) {
			t.Fatalf("case %d: aeval %+v excludes concrete value %d of %v under %v", i, got, w, e, env)
		}
	}
}

// Definite-UNSAT answers must be real proofs on the shapes the
// exploration emits: contradictory equalities, out-of-range pins, and
// bit-mask conflicts.
func TestEngineDefiniteUnsat(t *testing.T) {
	x := NewVar("x", mem.Public)
	s := NewSolver(1)
	cases := []PathCondition{
		PCond(
			Constraint{E: Apply(isa.OpEq, x, CW(7)), Truthy: true},
			Constraint{E: Apply(isa.OpEq, x, CW(8)), Truthy: true},
		),
		PCond(
			Constraint{E: Apply(isa.OpLt, x, CW(4)), Truthy: true},
			Constraint{E: Apply(isa.OpEq, Apply(isa.OpAdd, x, CW(0x40)), CW(0x48)), Truthy: true},
		),
		PCond(
			Constraint{E: Apply(isa.OpAnd, x, CW(1)), Truthy: false},
			Constraint{E: Apply(isa.OpAnd, x, CW(1)), Truthy: true},
		),
		PCond(
			Constraint{E: Apply(isa.OpGe, x, CW(16)), Truthy: true},
			Constraint{E: Apply(isa.OpLt, x, CW(16)), Truthy: true},
		),
	}
	for i, p := range cases {
		e := s.query(p)
		if !e.unsat {
			t.Errorf("case %d: expected a propagation UNSAT proof", i)
		}
		if e.ok || s.Feasible(p) {
			t.Errorf("case %d: unsatisfiable condition reported feasible", i)
		}
	}
	if s.Stats().DefiniteUnsats == 0 {
		t.Error("definite-UNSAT counter did not move")
	}
}

// The pinned-equality fast path: a SolveWith against a reachable
// target must solve through propagation's singleton domain without
// touching the probe loop.
func TestEnginePinnedEqualitySkipsProbing(t *testing.T) {
	x := NewVar("x", mem.Public)
	s := NewSolver(1)
	addr := Apply(isa.OpAdd, CW(0x40), x)
	env, ok := s.SolveWith(PathCondition{}, addr, 0x49)
	if !ok || env["x"] != 9 {
		t.Fatalf("SolveWith = %v, %v; want x=9", env, ok)
	}
	if st := s.Stats(); st.ProbeIters != 0 {
		t.Fatalf("pinned equality burned %d probe iterations; want 0", st.ProbeIters)
	}
}

// Vars is O(1) on the chain: the sorted set is cached per node.
func TestPathConditionVarsAllocFree(t *testing.T) {
	x, y := NewVar("x", mem.Public), NewVar("y", mem.Public)
	p := PCond(
		Constraint{E: Apply(isa.OpLt, y, CW(100)), Truthy: true},
		Constraint{E: Apply(isa.OpGt, x, CW(2)), Truthy: true},
		Constraint{E: Apply(isa.OpEq, x, y), Truthy: false},
	)
	if got := p.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Vars = %v, want [x y]", got)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if len(p.Vars()) != 2 {
			t.Fatal("vars lost")
		}
	})
	if allocs != 0 {
		t.Fatalf("Vars allocates %.1f per call; want 0 (chain cache regression)", allocs)
	}
}

// Unmapped memory reads return the canonical zero expression without
// boxing a fresh interface value per call.
func TestMemoryReadUnmappedAllocFree(t *testing.T) {
	m := NewMemory()
	allocs := testing.AllocsPerRun(200, func() {
		if e := m.Read(0x1234); e != Zero {
			t.Fatal("unmapped read must be the canonical zero")
		}
	})
	if allocs != 0 {
		t.Fatalf("unmapped Read allocates %.1f per call; want 0", allocs)
	}
}

// The memo cache serves repeated queries and verified models.
func TestEngineCacheHits(t *testing.T) {
	x := NewVar("x", mem.Public)
	s := NewSolver(3)
	p := PCond(Constraint{E: Apply(isa.OpGt, x, CW(4)), Truthy: true})
	e1, ok1 := s.Solve(p)
	e2, ok2 := s.Solve(p)
	if !ok1 || !ok2 || fmt.Sprint(e1) != fmt.Sprint(e2) {
		t.Fatalf("repeat solve drifted: (%v,%v) vs (%v,%v)", e1, ok1, e2, ok2)
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no cache hit on repeated query: %+v", st)
	}
	if st.Queries < 2 {
		t.Fatalf("query counter did not move: %+v", st)
	}
}
