package symx

import (
	"testing"
	"testing/quick"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

func TestConstBasics(t *testing.T) {
	c := C(mem.Sec(7))
	if c.Label() != mem.Secret {
		t.Fatal("label")
	}
	if v, ok := c.Concrete(); !ok || v != mem.Sec(7) {
		t.Fatal("concrete")
	}
	if c.Eval(Env{}) != mem.Sec(7) {
		t.Fatal("eval")
	}
	if c.String() != "7sec" {
		t.Fatalf("string = %q", c.String())
	}
}

func TestVarBasics(t *testing.T) {
	x := NewVar("x", mem.Public)
	if _, ok := x.Concrete(); ok {
		t.Fatal("variables are not concrete")
	}
	if x.Eval(Env{"x": 9}) != mem.Pub(9) {
		t.Fatal("eval")
	}
	k := NewVar("k", mem.Secret)
	if k.Label() != mem.Secret || k.String() != "k!sec" {
		t.Fatalf("secret var: %s", k)
	}
	if Vars(Apply(isa.OpAdd, x, k))[0] != "k" {
		t.Fatal("vars must be sorted")
	}
}

func TestApplyConstantFolding(t *testing.T) {
	e := Apply(isa.OpAdd, CW(2), CW(3))
	if v, ok := e.Concrete(); !ok || v.W != 5 {
		t.Fatalf("fold = %v", e)
	}
	// Folding joins labels.
	e = Apply(isa.OpMul, C(mem.Sec(2)), CW(3))
	if v, ok := e.Concrete(); !ok || v != mem.Sec(6) {
		t.Fatalf("fold label = %v", e)
	}
}

func TestApplyAddIdentities(t *testing.T) {
	x := NewVar("x", mem.Public)
	// x + 0 = x
	if e := Apply(isa.OpAdd, x, CW(0)); e != Expr(x) {
		t.Fatalf("x+0 = %v", e)
	}
	// constants merge
	e := Apply(isa.OpAdd, CW(1), x, CW(2))
	o, ok := e.(Op)
	if !ok || len(o.Args) != 2 {
		t.Fatalf("1+x+2 = %v", e)
	}
	if e.Eval(Env{"x": 10}).W != 13 {
		t.Fatal("eval after merge")
	}
}

func TestApplyCancellationKeepsLabel(t *testing.T) {
	k := NewVar("k", mem.Secret)
	e := Apply(isa.OpXor, k, k)
	v, ok := e.Concrete()
	if !ok || v.W != 0 {
		t.Fatalf("k^k = %v", e)
	}
	if !v.L.IsSecret() {
		t.Fatal("cancellation must not launder the label")
	}
}

func TestApplyMulIdentities(t *testing.T) {
	x := NewVar("x", mem.Public)
	if e := Apply(isa.OpMul, CW(1), x); e != Expr(x) {
		t.Fatalf("1*x = %v", e)
	}
	if e := Apply(isa.OpMul, x, CW(0)); mustConcrete(t, e).W != 0 {
		t.Fatalf("x*0 = %v", e)
	}
	if e := Apply(isa.OpMov, x); e != Expr(x) {
		t.Fatalf("mov x = %v", e)
	}
}

func mustConcrete(t *testing.T, e Expr) mem.Value {
	t.Helper()
	v, ok := e.Concrete()
	if !ok {
		t.Fatalf("not concrete: %v", e)
	}
	return v
}

// Property: Apply agrees with direct evaluation under random
// assignments for a sample of opcodes.
func TestApplyAgreesWithEval(t *testing.T) {
	x, y := NewVar("x", mem.Public), NewVar("y", mem.Secret)
	ops := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpXor, isa.OpAnd, isa.OpOr, isa.OpLt, isa.OpEq, isa.OpShr}
	f := func(a, b uint64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		e := Apply(op, x, y)
		env := Env{"x": a, "y": b}
		direct, err := isa.Eval(op, []mem.Value{mem.Pub(a), mem.Sec(b)})
		if err != nil {
			return false
		}
		return e.Eval(env) == direct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpLabelJoin(t *testing.T) {
	x := NewVar("x", mem.Public)
	k := NewVar("k", mem.Secret)
	if Apply(isa.OpAdd, x, k).Label() != mem.Secret {
		t.Fatal("op label must join")
	}
	if Apply(isa.OpSelect, k, CW(1), CW(2)).Label() != mem.Secret {
		t.Fatal("select condition must taint")
	}
}

func TestConstraintAndPathCondition(t *testing.T) {
	x := NewVar("x", mem.Public)
	cTrue := Constraint{E: Apply(isa.OpLt, x, CW(10)), Truthy: true}
	cFalse := Constraint{E: Apply(isa.OpEq, x, CW(3)), Truthy: false}
	pc := PathCondition{}.With(cTrue).With(cFalse)
	if !pc.Holds(Env{"x": 5}) {
		t.Fatal("x=5 satisfies x<10 ∧ x≠3")
	}
	if pc.Holds(Env{"x": 3}) || pc.Holds(Env{"x": 12}) {
		t.Fatal("x=3 and x=12 must fail")
	}
	if got := pc.Vars(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("vars = %v", got)
	}
	if cTrue.String() == "" || cFalse.String() == "" {
		t.Fatal("constraint strings")
	}
	// With must not mutate the prefix.
	base := PathCondition{}.With(cTrue)
	_ = base.With(cFalse)
	if base.Len() != 1 {
		t.Fatal("With mutated the receiver")
	}
}

// TestPathConditionFingerprintFold pins the chain's cached fingerprint
// to the historical oldest-first slice fold: solver witnesses are a
// pure function of (seed, fingerprint), so the fold may never drift.
func TestPathConditionFingerprintFold(t *testing.T) {
	x := NewVar("x", mem.Public)
	cs := []Constraint{
		{E: Apply(isa.OpLt, x, CW(10)), Truthy: true},
		{E: Apply(isa.OpEq, x, CW(3)), Truthy: false},
		{E: Apply(isa.OpGt, x, CW(1)), Truthy: true},
	}
	p := PCond(cs...)
	want := mem.HashSeed
	for _, c := range cs {
		want = mem.Mix64(want ^ Fingerprint(c.E))
		if c.Truthy {
			want = mem.Mix64(want ^ 1)
		} else {
			want = mem.Mix64(want ^ 2)
		}
	}
	if got := p.Fingerprint(); got != want {
		t.Fatalf("chain fingerprint %#x, slice fold %#x", got, want)
	}
	if PCond().Fingerprint() != mem.HashSeed {
		t.Fatal("empty condition must fingerprint to the seed")
	}
}

// TestPathConditionWithAllocs pins the per-fork constraint cost: With
// allocates exactly the one chain node, never a copy of the prefix.
func TestPathConditionWithAllocs(t *testing.T) {
	x := NewVar("x", mem.Public)
	base := PCond(
		Constraint{E: Apply(isa.OpLt, x, CW(100)), Truthy: true},
		Constraint{E: Apply(isa.OpGt, x, CW(2)), Truthy: true},
		Constraint{E: Apply(isa.OpEq, x, CW(50)), Truthy: false},
	)
	c := Constraint{E: Apply(isa.OpEq, x, CW(7)), Truthy: true}
	allocs := testing.AllocsPerRun(200, func() {
		sink = base.With(c)
	})
	if allocs > 1 {
		t.Fatalf("With allocates %v objects per call, want 1", allocs)
	}
}

var sink PathCondition

func TestSolverSimple(t *testing.T) {
	s := NewSolver(1)
	x := NewVar("x", mem.Public)
	// x > 4 ∧ x < 8
	pc := PCond(
		Constraint{E: Apply(isa.OpGt, x, CW(4)), Truthy: true},
		Constraint{E: Apply(isa.OpLt, x, CW(8)), Truthy: true},
	)
	env, ok := s.Solve(pc)
	if !ok {
		t.Fatal("satisfiable system not solved")
	}
	if !(env["x"] > 4 && env["x"] < 8) {
		t.Fatalf("bogus model %v", env)
	}
}

func TestSolverEmptyAndTrivial(t *testing.T) {
	s := NewSolver(2)
	if env, ok := s.Solve(PathCondition{}); !ok || len(env) != 0 {
		t.Fatal("empty condition is satisfiable by the empty model")
	}
	pc := PCond(Constraint{E: CW(0), Truthy: true})
	if _, ok := s.Solve(pc); ok {
		t.Fatal("0 ≠ 0 must not be satisfiable")
	}
}

func TestSolverTwoVariables(t *testing.T) {
	s := NewSolver(3)
	x, y := NewVar("x", mem.Public), NewVar("y", mem.Public)
	// x + y == 255 ∧ x == 255 (forces y == 0)
	pc := PCond(
		Constraint{E: Apply(isa.OpEq, Apply(isa.OpAdd, x, y), CW(255)), Truthy: true},
		Constraint{E: Apply(isa.OpEq, x, CW(255)), Truthy: true},
	)
	env, ok := s.Solve(pc)
	if !ok {
		t.Fatal("not solved")
	}
	if env["x"] != 255 || env["x"]+env["y"] != 255 {
		t.Fatalf("model %v", env)
	}
}

func TestSolveWithPinsExpression(t *testing.T) {
	s := NewSolver(4)
	x := NewVar("x", mem.Public)
	addr := Apply(isa.OpAdd, CW(0x40), x)
	env, ok := s.SolveWith(PathCondition{}, addr, 0x49)
	if !ok {
		t.Fatal("pin not solved")
	}
	if addr.Eval(env).W != 0x49 {
		t.Fatalf("model %v does not pin the address", env)
	}
}

func TestFeasible(t *testing.T) {
	s := NewSolver(5)
	x := NewVar("x", mem.Public)
	sat := PCond(Constraint{E: Apply(isa.OpEq, x, CW(7)), Truthy: true})
	unsat := PCond(
		Constraint{E: Apply(isa.OpEq, x, CW(7)), Truthy: true},
		Constraint{E: Apply(isa.OpEq, x, CW(8)), Truthy: true},
	)
	if !s.Feasible(sat) {
		t.Fatal("sat reported infeasible")
	}
	if s.Feasible(unsat) {
		t.Fatal("unsat reported feasible")
	}
}

func TestSymbolicMemory(t *testing.T) {
	m := NewMemory()
	if e := m.Read(0x40); mustConcrete(t, e).W != 0 {
		t.Fatal("unmapped reads as zero")
	}
	m.Write(0x40, C(mem.Sec(9)))
	m.Write(0x41, CW(1))
	if !m.Contains(0x40) || m.Contains(0x99) {
		t.Fatal("contains")
	}
	sec := m.SecretAddresses()
	if len(sec) != 1 || sec[0] != 0x40 {
		t.Fatalf("secret addresses = %v", sec)
	}
	c := m.Clone()
	c.Write(0x40, CW(0))
	if m.Read(0x40).Label() != mem.Secret {
		t.Fatal("clone aliases")
	}
	if m.String() == "" {
		t.Fatal("string")
	}
}

func TestConcretizerPrefersSecretCells(t *testing.T) {
	s := NewSolver(6)
	c := NewConcretizer(s)
	m := NewMemory()
	// Public array at 0x40..0x43, secrets at 0x48..0x4B.
	for i := mem.Word(0); i < 4; i++ {
		m.Write(0x40+i, CW(i))
		m.Write(0x48+i, C(mem.Sec(0xA0+i)))
	}
	x := NewVar("x", mem.Public)
	addr := Apply(isa.OpAdd, CW(0x40), x)
	a, ok := c.Concretize(addr, PathCondition{}, m)
	if !ok {
		t.Fatal("concretization failed")
	}
	if a < 0x48 || a > 0x4B {
		t.Fatalf("leak-hunting concretizer must land on a secret cell, got %#x", a)
	}
	// Under a bounds constraint x < 4 the secret cells are
	// unreachable; concretization must still succeed, in bounds.
	pc := PCond(Constraint{E: Apply(isa.OpLt, x, CW(4)), Truthy: true})
	a, ok = c.Concretize(addr, pc, m)
	if !ok {
		t.Fatal("bounded concretization failed")
	}
	if a < 0x40 || a > 0x43 {
		t.Fatalf("bounded address must stay in bounds, got %#x", a)
	}
}

func TestConcretizeConcreteAddrShortCircuit(t *testing.T) {
	s := NewSolver(7)
	c := NewConcretizer(s)
	a, ok := c.Concretize(CW(0x123), PathCondition{}, NewMemory())
	if !ok || a != 0x123 {
		t.Fatalf("concrete address = %#x, %t", a, ok)
	}
}

func TestConcretizeInfeasiblePath(t *testing.T) {
	s := NewSolver(8)
	c := NewConcretizer(s)
	x := NewVar("x", mem.Public)
	pc := PCond(
		Constraint{E: Apply(isa.OpEq, x, CW(1)), Truthy: true},
		Constraint{E: Apply(isa.OpEq, x, CW(2)), Truthy: true},
	)
	if _, ok := c.Concretize(x, pc, NewMemory()); ok {
		t.Fatal("infeasible path must fail concretization")
	}
}
