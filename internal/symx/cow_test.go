package symx

import (
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// TestSymMemoryCloneIndependence forks the symbolic memory across
// chains deeper than the flatten threshold and checks writes never
// cross a fork in either direction.
func TestSymMemoryCloneIndependence(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 8; i++ {
		m.Write(mem.Word(i), CW(uint64(i)))
	}
	x := NewVar("x", mem.Secret)
	cur := m
	for g := 0; g < 3*mem.MaxChainDepth; g++ {
		c := cur.Clone()
		before := Fingerprint(cur.Read(mem.Word(g % 8)))
		c.Write(mem.Word(g%8), x)
		cur.Write(mem.Word(100+g), CW(uint64(g)))
		if c.Contains(mem.Word(100 + g)) {
			t.Fatalf("generation %d: parent's post-fork write visible in child", g)
		}
		if Fingerprint(cur.Read(mem.Word(g%8))) != before {
			t.Fatalf("generation %d: child's write visible in parent", g)
		}
		cur = c
	}
	if len(cur.SecretAddresses()) != 8 {
		t.Fatalf("SecretAddresses = %v, want all 8 rewritten cells", cur.SecretAddresses())
	}
}

// TestSymMemoryHashSumIncrementalMatchesFresh checks the incremental
// HashSum maintained through clone chains equals a from-scratch
// rebuild — the fingerprint-stability requirement for the dedup table.
func TestSymMemoryHashSumIncrementalMatchesFresh(t *testing.T) {
	m := NewMemory()
	_ = m.HashSum() // activate incremental maintenance before any write
	x := NewVar("x", mem.Public)
	for i := 0; i < 6; i++ {
		m.Write(mem.Word(i), Apply(eqOp(), x, CW(uint64(i))))
	}
	for g := 0; g < 2*mem.MaxChainDepth; g++ {
		m = m.Clone()
		m.Write(mem.Word(g%6), CW(uint64(g)))
	}
	fresh := NewMemory()
	for _, a := range m.Addresses() {
		fresh.Write(a, m.Read(a))
	}
	if m.HashSum() != fresh.HashSum() {
		t.Fatalf("incremental HashSum %#x != fresh %#x", m.HashSum(), fresh.HashSum())
	}
}

// TestRegFileCloneIndependenceAndHash mirrors the memory tests for the
// symbolic register file.
func TestRegFileCloneIndependenceAndHash(t *testing.T) {
	f := NewRegFile()
	_ = f.HashSum()
	x := NewVar("x", mem.Secret)
	for r := 0; r < 6; r++ {
		f.Write(isa.Reg(r), CW(uint64(r)))
	}
	parent := f
	for g := 0; g < 2*mem.MaxChainDepth; g++ {
		c := parent.Clone()
		c.Write(isa.Reg(g%6), x)
		parent.Write(isa.Reg((g+1)%6), CW(uint64(100+g)))
		if e, ok := c.Read(isa.Reg((g + 1) % 6)); ok {
			if cv, conc := e.Concrete(); conc && cv.W == uint64(100+g) && (g+1)%6 != g%6 {
				t.Fatalf("generation %d: parent write visible in child", g)
			}
		}
		parent = c
	}
	fresh := NewRegFile()
	for r := 0; r < 6; r++ {
		e, _ := parent.Read(isa.Reg(r))
		fresh.Write(isa.Reg(r), e)
	}
	if parent.Len() != 6 {
		t.Fatalf("Len = %d, want 6", parent.Len())
	}
	if parent.HashSum() != fresh.HashSum() {
		t.Fatalf("incremental HashSum %#x != fresh %#x", parent.HashSum(), fresh.HashSum())
	}
}

// TestOpEvalAllocationFree pins the solver hot path: evaluating an
// expression tree under a model must not allocate (Op.Eval used to
// build a value slice per node per probe).
func TestOpEvalAllocationFree(t *testing.T) {
	x := NewVar("x", mem.Public)
	e := Apply(eqOp(), Apply(eqOp(), x, CW(4)), CW(0))
	env := Env{"x": 7}
	if avg := testing.AllocsPerRun(100, func() {
		_ = e.Eval(env)
	}); avg != 0 {
		t.Fatalf("Op.Eval allocated %.1f objects per run, want 0", avg)
	}
}
