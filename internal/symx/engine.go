package symx

// The incremental constraint engine behind Solver: an abstract
// interval + known-bits domain with sound per-opcode transfer
// functions, fixpoint propagation over a conjunction (seeded from the
// parent condition's fixpoint, so child conditions pay for one new
// conjunct), an incremental candidate evaluator that re-checks only
// the conjuncts whose variables changed, and a bounded fingerprint-
// keyed result cache shared across exploration workers.
//
// Everything here is deliberately filter-shaped: the domains
// over-approximate the model set, so they are only ever used to (a)
// return definite UNSAT when a variable's domain is empty and (b) skip
// evaluating candidates that provably cannot be models. A candidate
// the old from-scratch search would have accepted is never skipped,
// which is what keeps witnesses, concretized addresses, and
// exploration counters bit-identical to the historical search.

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// ---------------------------------------------------------------------
// Abstract domain: unsigned interval × known bits.
// ---------------------------------------------------------------------

// vdom abstracts a set of 64-bit words as the intersection of an
// unsigned interval [lo,hi] and a bit pattern (bit i is constrained
// iff known has it set, and then must equal the corresponding bit of
// bit). The domain is sound by construction: every operation keeps the
// abstract set a superset of the concrete one, so an empty vdom is a
// proof of unsatisfiability — never a heuristic guess.
type vdom struct {
	lo, hi     mem.Word
	known, bit mem.Word
}

var (
	fullDom  = vdom{lo: 0, hi: ^mem.Word(0)}
	emptyDom = vdom{lo: ^mem.Word(0), hi: 0}
	// boolDom abstracts a comparison result: {0, 1}.
	boolDom = vdom{lo: 0, hi: 1, known: ^mem.Word(1), bit: 0}
)

func domConst(w mem.Word) vdom {
	return vdom{lo: w, hi: w, known: ^mem.Word(0), bit: w}
}

func ivl(lo, hi mem.Word) vdom { return vdom{lo: lo, hi: hi} }

func (d vdom) empty() bool { return d.lo > d.hi }

func (d vdom) isFull() bool { return d == fullDom }

func (d vdom) singleton() (mem.Word, bool) { return d.lo, d.lo == d.hi }

// definitelyNonzero reports that no word in the domain is zero.
func (d vdom) definitelyNonzero() bool { return d.lo > 0 || d.bit != 0 }

func (d vdom) contains(w mem.Word) bool {
	return w >= d.lo && w <= d.hi && w&d.known == d.bit
}

// norm reconciles the interval and bit halves: the pattern bounds the
// interval, the shared leading bits of the interval become known, and
// a direct disagreement collapses to the empty domain.
func (d vdom) norm() vdom {
	d.bit &= d.known
	if d.lo < d.bit {
		d.lo = d.bit
	}
	if top := d.bit | ^d.known; d.hi > top {
		d.hi = top
	}
	if d.lo > d.hi {
		return emptyDom
	}
	if n := bits.Len64(uint64(d.lo ^ d.hi)); n < 64 {
		pm := ^mem.Word(0) << uint(n)
		pv := d.lo & pm
		if (pv^d.bit)&pm&d.known != 0 {
			return emptyDom
		}
		d.known |= pm
		d.bit = (d.bit &^ pm) | pv
	}
	if d.lo == d.hi {
		d.known, d.bit = ^mem.Word(0), d.lo
	}
	return d
}

// meetInterval intersects with [lo,hi].
func (d vdom) meetInterval(lo, hi mem.Word) vdom {
	if lo > d.lo {
		d.lo = lo
	}
	if hi < d.hi {
		d.hi = hi
	}
	return d.norm()
}

// meetBits intersects with the pattern (mask, val).
func (d vdom) meetBits(mask, val mem.Word) vdom {
	if (d.bit^val)&d.known&mask != 0 {
		return emptyDom
	}
	d.known |= mask
	d.bit = (d.bit &^ mask) | (val & mask)
	return d.norm()
}

// join is the lattice join (set union, over-approximated).
func domJoin(a, b vdom) vdom {
	if a.empty() {
		return b
	}
	if b.empty() {
		return a
	}
	out := vdom{lo: a.lo, hi: a.hi}
	if b.lo < out.lo {
		out.lo = b.lo
	}
	if b.hi > out.hi {
		out.hi = b.hi
	}
	out.known = a.known & b.known &^ (a.bit ^ b.bit)
	out.bit = a.bit & out.known
	return out.norm()
}

// lowMask returns a word with the n lowest bits set.
func lowMask(n int) mem.Word {
	if n >= 64 {
		return ^mem.Word(0)
	}
	return (mem.Word(1) << uint(n)) - 1
}

// trailingKnown counts how many low bits are known in both operands.
func trailingKnown(a, b vdom) int {
	m := a.known & b.known
	return bits.TrailingZeros64(uint64(^m))
}

func domAdd(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	d := fullDom
	cl := a.lo > ^mem.Word(0)-b.lo
	ch := a.hi > ^mem.Word(0)-b.hi
	if cl == ch { // the sum wraps for all extremes or for none
		d = ivl(a.lo+b.lo, a.hi+b.hi)
	}
	// Low bits of a sum depend only on low bits of the operands, so
	// they survive even a wrapping interval.
	if tz := trailingKnown(a, b); tz > 0 {
		m := lowMask(tz)
		d = d.meetBits(m, (a.bit+b.bit)&m)
	}
	return d.norm()
}

func domSub(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	d := fullDom
	if a.lo >= b.hi || a.hi < b.lo { // no borrow anywhere, or borrow everywhere
		d = ivl(a.lo-b.hi, a.hi-b.lo)
	}
	if tz := trailingKnown(a, b); tz > 0 {
		m := lowMask(tz)
		d = d.meetBits(m, (a.bit-b.bit)&m)
	}
	return d.norm()
}

func domNeg(a vdom) vdom {
	if a.empty() {
		return emptyDom
	}
	if w, ok := a.singleton(); ok {
		return domConst(-w)
	}
	if a.lo > 0 {
		return ivl(-a.hi, -a.lo)
	}
	return fullDom
}

func domNot(a vdom) vdom {
	if a.empty() {
		return emptyDom
	}
	return vdom{lo: ^a.hi, hi: ^a.lo, known: a.known, bit: ^a.bit & a.known}.norm()
}

func domAnd(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	known1 := a.known & a.bit & b.known & b.bit
	known0 := (a.known &^ a.bit) | (b.known &^ b.bit)
	hi := a.hi
	if b.hi < hi {
		hi = b.hi
	}
	return vdom{lo: 0, hi: hi, known: known0 | known1, bit: known1}.norm()
}

func domOr(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	known1 := (a.known & a.bit) | (b.known & b.bit)
	known0 := a.known &^ a.bit & b.known &^ b.bit
	lo := a.lo
	if b.lo > lo {
		lo = b.lo
	}
	hi := lowMask(bits.Len64(uint64(a.hi | b.hi)))
	return vdom{lo: lo, hi: hi, known: known0 | known1, bit: known1}.norm()
}

func domXor(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	known := a.known & b.known
	return vdom{lo: 0, hi: ^mem.Word(0), known: known, bit: (a.bit ^ b.bit) & known}.norm()
}

func domMul(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	if hi, _ := bits.Mul64(uint64(a.hi), uint64(b.hi)); hi == 0 {
		return ivl(a.lo*b.lo, a.hi*b.hi)
	}
	return fullDom
}

func domDiv(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	if b.lo > 0 {
		return ivl(a.lo/b.hi, a.hi/b.lo)
	}
	return ivl(0, a.hi) // x/0 = 0, and x/y ≤ x otherwise
}

func domMod(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	hi := a.hi
	if b.hi > 0 && b.hi-1 < hi {
		hi = b.hi - 1
	}
	if b.hi == 0 {
		hi = 0 // x%0 = 0
	}
	return ivl(0, hi)
}

func domShl(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	s, ok := b.singleton()
	if !ok {
		return fullDom
	}
	k := int(s & 63)
	d := vdom{lo: 0, hi: ^mem.Word(0), known: a.known<<uint(k) | lowMask(k), bit: a.bit << uint(k)}
	if bits.Len64(uint64(a.hi))+k <= 64 {
		d.lo, d.hi = a.lo<<uint(k), a.hi<<uint(k)
	}
	return d.norm()
}

func domShr(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	s, ok := b.singleton()
	if !ok {
		return fullDom
	}
	k := int(s & 63)
	var highKnown mem.Word
	if k > 0 {
		highKnown = ^(^mem.Word(0) >> uint(k)) // top k bits are zero
	}
	return vdom{lo: a.lo >> uint(k), hi: a.hi >> uint(k),
		known: a.known>>uint(k) | highKnown, bit: a.bit >> uint(k)}.norm()
}

func domSar(a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	s, ok := b.singleton()
	if !ok {
		return fullDom
	}
	if a.hi < 1<<63 { // sign bit provably clear: logical shift
		return domShr(a, b)
	}
	_ = s
	return fullDom
}

// domCmpU decides an unsigned comparison (or Eq/Ne) when the operand
// domains allow, returning {0}, {1}, or {0,1}.
func domCmpU(code isa.Opcode, a, b vdom) vdom {
	if a.empty() || b.empty() {
		return emptyDom
	}
	disjoint := a.hi < b.lo || b.hi < a.lo || (a.bit^b.bit)&a.known&b.known != 0
	as, aok := a.singleton()
	bs, bok := b.singleton()
	same := aok && bok && as == bs
	switch code {
	case isa.OpEq:
		if disjoint {
			return domConst(0)
		}
		if same {
			return domConst(1)
		}
	case isa.OpNe:
		if disjoint {
			return domConst(1)
		}
		if same {
			return domConst(0)
		}
	case isa.OpLt:
		if a.hi < b.lo {
			return domConst(1)
		}
		if a.lo >= b.hi {
			return domConst(0)
		}
	case isa.OpLe:
		if a.hi <= b.lo {
			return domConst(1)
		}
		if a.lo > b.hi {
			return domConst(0)
		}
	case isa.OpGt:
		if a.lo > b.hi {
			return domConst(1)
		}
		if a.hi <= b.lo {
			return domConst(0)
		}
	case isa.OpGe:
		if a.lo >= b.hi {
			return domConst(1)
		}
		if a.hi < b.lo {
			return domConst(0)
		}
	}
	return boolDom
}

// aeval abstractly evaluates an expression over the variable domains.
func aeval(e Expr, vidx map[string]int, doms []vdom) vdom {
	switch x := e.(type) {
	case Const:
		return domConst(x.V.W)
	case Var:
		if i, ok := vidx[x.Name]; ok {
			return doms[i]
		}
		return fullDom
	case Op:
		return aevalOp(x, vidx, doms)
	}
	return fullDom
}

func aevalOp(o Op, vidx map[string]int, doms []vdom) vdom {
	// Arity is validated defensively; Apply-built trees always conform.
	bin := func(f func(a, b vdom) vdom) vdom {
		if len(o.Args) != 2 {
			return fullDom
		}
		return f(aeval(o.Args[0], vidx, doms), aeval(o.Args[1], vidx, doms))
	}
	un := func(f func(a vdom) vdom) vdom {
		if len(o.Args) != 1 {
			return fullDom
		}
		return f(aeval(o.Args[0], vidx, doms))
	}
	switch o.Code {
	case isa.OpAdd:
		if len(o.Args) == 0 {
			return fullDom
		}
		d := aeval(o.Args[0], vidx, doms)
		for _, a := range o.Args[1:] {
			d = domAdd(d, aeval(a, vidx, doms))
		}
		return d
	case isa.OpSub:
		return bin(domSub)
	case isa.OpMul:
		return bin(domMul)
	case isa.OpDiv:
		return bin(domDiv)
	case isa.OpMod:
		return bin(domMod)
	case isa.OpAnd:
		return bin(domAnd)
	case isa.OpOr:
		return bin(domOr)
	case isa.OpXor:
		return bin(domXor)
	case isa.OpShl:
		return bin(domShl)
	case isa.OpShr:
		return bin(domShr)
	case isa.OpSar:
		return bin(domSar)
	case isa.OpNot:
		return un(domNot)
	case isa.OpNeg:
		return un(domNeg)
	case isa.OpMov:
		return un(func(a vdom) vdom { return a })
	case isa.OpEq, isa.OpNe, isa.OpLt, isa.OpLe, isa.OpGt, isa.OpGe:
		if len(o.Args) != 2 {
			return fullDom
		}
		return domCmpU(o.Code, aeval(o.Args[0], vidx, doms), aeval(o.Args[1], vidx, doms))
	case isa.OpSlt, isa.OpSle, isa.OpSgt, isa.OpSge:
		return boolDom
	case isa.OpSelect:
		if len(o.Args) != 3 {
			return fullDom
		}
		c := aeval(o.Args[0], vidx, doms)
		if c.empty() {
			return emptyDom
		}
		if c.definitelyNonzero() {
			return aeval(o.Args[1], vidx, doms)
		}
		if w, ok := c.singleton(); ok && w == 0 {
			return aeval(o.Args[2], vidx, doms)
		}
		return domJoin(aeval(o.Args[1], vidx, doms), aeval(o.Args[2], vidx, doms))
	case isa.OpSucc: // v0 - 1 (stack grows down)
		return un(func(a vdom) vdom { return domSub(a, domConst(1)) })
	case isa.OpPred: // v0 + 1
		return un(func(a vdom) vdom { return domAdd(a, domConst(1)) })
	}
	return fullDom
}

// ---------------------------------------------------------------------
// Constraint refinement and fixpoint propagation.
// ---------------------------------------------------------------------

// linVar matches e ≡ x + off for a single variable x (covering the
// bare variable, Apply-normalized additions, and x - const), which is
// the shape path conditions overwhelmingly take: concretization pins
// eq(add(x, base), addr) and branches test cmp(x, bound).
func linVar(e Expr) (name string, off mem.Word, ok bool) {
	switch x := e.(type) {
	case Var:
		return x.Name, 0, true
	case Op:
		switch x.Code {
		case isa.OpAdd:
			for _, a := range x.Args {
				if v, isC := a.Concrete(); isC {
					off += v.W
					continue
				}
				if vv, isV := a.(Var); isV && name == "" {
					name = vv.Name
					continue
				}
				return "", 0, false
			}
			if name != "" {
				return name, off, true
			}
		case isa.OpSub:
			if len(x.Args) == 2 {
				if vv, isV := x.Args[0].(Var); isV {
					if c, isC := x.Args[1].Concrete(); isC {
						return vv.Name, -c.W, true
					}
				}
			}
		}
	}
	return "", 0, false
}

// negRel returns the complement relation (¬(a < b) ⇔ a ≥ b, …).
func negRel(code isa.Opcode) isa.Opcode {
	switch code {
	case isa.OpEq:
		return isa.OpNe
	case isa.OpNe:
		return isa.OpEq
	case isa.OpLt:
		return isa.OpGe
	case isa.OpLe:
		return isa.OpGt
	case isa.OpGt:
		return isa.OpLe
	case isa.OpGe:
		return isa.OpLt
	case isa.OpSlt:
		return isa.OpSge
	case isa.OpSle:
		return isa.OpSgt
	case isa.OpSgt:
		return isa.OpSle
	case isa.OpSge:
		return isa.OpSlt
	}
	return code
}

// flipRel mirrors a relation across its operands (a < b ⇔ b > a).
func flipRel(code isa.Opcode) isa.Opcode {
	switch code {
	case isa.OpLt:
		return isa.OpGt
	case isa.OpLe:
		return isa.OpGe
	case isa.OpGt:
		return isa.OpLt
	case isa.OpGe:
		return isa.OpLe
	}
	return code // Eq, Ne are symmetric
}

// refineSide narrows the domain of a variable appearing linearly on
// one side of "e REL other". Returns false on a proven-empty domain.
func refineSide(e Expr, rel isa.Opcode, other vdom, vidx map[string]int, doms []vdom) bool {
	name, off, ok := linVar(e)
	if !ok {
		return true
	}
	i, ok := vidx[name]
	if !ok {
		return true
	}
	var tlo, thi mem.Word // bounds on t = x + off
	switch rel {
	case isa.OpEq:
		tlo, thi = other.lo, other.hi
	case isa.OpNe:
		if s, single := other.singleton(); single {
			v := s - off
			d := doms[i]
			if w, one := d.singleton(); one && w == v {
				return false
			}
			if d.lo == v {
				d.lo++
			} else if d.hi == v {
				d.hi--
			} else {
				return true
			}
			d = d.norm()
			if d.empty() {
				return false
			}
			doms[i] = d
		}
		return true
	case isa.OpLt:
		if other.hi == 0 {
			return false // t < 0 is unsatisfiable
		}
		tlo, thi = 0, other.hi-1
	case isa.OpLe:
		tlo, thi = 0, other.hi
	case isa.OpGt:
		if other.lo == ^mem.Word(0) {
			return false // t > max is unsatisfiable
		}
		tlo, thi = other.lo+1, ^mem.Word(0)
	case isa.OpGe:
		tlo, thi = other.lo, ^mem.Word(0)
	default:
		return true
	}
	xlo, xhi := tlo-off, thi-off
	if xlo > xhi {
		return true // the shifted interval wraps; skip (sound)
	}
	d := doms[i].meetInterval(xlo, xhi)
	if d.empty() {
		return false
	}
	doms[i] = d
	return true
}

// refineAndMask handles bit-test conjuncts: and(x, m) = 0 pins the
// masked bits of x to zero; and(x, m) ≠ 0 with a single-bit mask pins
// that bit to one.
func refineAndMask(o Op, truthy bool, vidx map[string]int, doms []vdom) bool {
	var v Var
	var m mem.Word
	if c, ok := o.Args[1].Concrete(); ok {
		vv, isV := o.Args[0].(Var)
		if !isV {
			return true
		}
		v, m = vv, c.W
	} else if c, ok := o.Args[0].Concrete(); ok {
		vv, isV := o.Args[1].(Var)
		if !isV {
			return true
		}
		v, m = vv, c.W
	} else {
		return true
	}
	i, ok := vidx[v.Name]
	if !ok {
		return true
	}
	var d vdom
	switch {
	case !truthy:
		d = doms[i].meetBits(m, 0)
	case m != 0 && m&(m-1) == 0:
		d = doms[i].meetBits(m, m)
	default:
		return true
	}
	if d.empty() {
		return false
	}
	doms[i] = d
	return true
}

// refineConstraint narrows the variable domains under one conjunct.
// Returns false only when the domains prove the conjunct has no model
// — a definite UNSAT, by soundness of the domain operations.
func refineConstraint(c Constraint, vidx map[string]int, doms []vdom) bool {
	d := aeval(c.E, vidx, doms)
	if d.empty() {
		return false
	}
	if c.Truthy {
		if w, ok := d.singleton(); ok && w == 0 {
			return false
		}
	} else if d.definitelyNonzero() {
		return false
	}
	switch e := c.E.(type) {
	case Var:
		i, ok := vidx[e.Name]
		if !ok {
			return true
		}
		var nd vdom
		if c.Truthy {
			nd = doms[i]
			if nd.lo == 0 {
				nd.lo = 1
				nd = nd.norm()
			}
		} else {
			nd = doms[i].meetInterval(0, 0)
		}
		if nd.empty() {
			return false
		}
		doms[i] = nd
	case Op:
		return refineOp(e, c.Truthy, vidx, doms)
	}
	return true
}

func refineOp(o Op, truthy bool, vidx map[string]int, doms []vdom) bool {
	if o.Code == isa.OpAnd && len(o.Args) == 2 {
		return refineAndMask(o, truthy, vidx, doms)
	}
	rel := o.Code
	if !rel.IsComparison() || len(o.Args) != 2 {
		return true
	}
	if !truthy {
		rel = negRel(rel)
	}
	switch rel {
	case isa.OpSlt, isa.OpSle, isa.OpSgt, isa.OpSge:
		return true // signed refinement not modeled
	}
	da := aeval(o.Args[0], vidx, doms)
	db := aeval(o.Args[1], vidx, doms)
	if da.empty() || db.empty() {
		return false
	}
	if res := domCmpU(rel, da, db); res == domConst(0) {
		return false
	}
	if !refineSide(o.Args[0], rel, db, vidx, doms) {
		return false
	}
	return refineSide(o.Args[1], flipRel(rel), da, vidx, doms)
}

// propRounds bounds the fixpoint iteration; domains only ever shrink,
// so stopping early is sound (just less precise).
const propRounds = 8

// propagate refines doms to a (bounded) fixpoint of the conjunction.
// When fromParent is set, doms arrived as the parent condition's
// fixpoint extended with ⊤ for fresh variables: one pass over the new
// final conjunct suffices if it narrows nothing — the incremental
// push of push/pop solving. Returns false only on definite UNSAT.
func propagate(cons []Constraint, vidx map[string]int, doms []vdom, fromParent bool) bool {
	snap := make([]vdom, 0, len(doms))
	unchanged := func() bool {
		for i := range doms {
			if doms[i] != snap[i] {
				return false
			}
		}
		return true
	}
	if fromParent && len(cons) > 1 {
		snap = append(snap, doms...)
		if !refineConstraint(cons[len(cons)-1], vidx, doms) {
			return false
		}
		if unchanged() {
			return true
		}
	}
	for round := 0; round < propRounds; round++ {
		snap = append(snap[:0], doms...)
		for _, c := range cons {
			if !refineConstraint(c, vidx, doms) {
				return false
			}
		}
		if unchanged() {
			break
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Incremental candidate evaluation.
// ---------------------------------------------------------------------

// varMaskOf hashes an expression's variable footprint into 64 bits
// (index mod 64). Collisions only cause extra re-evaluations, never
// missed ones, because evalCtx.set hashes indices the same way.
func varMaskOf(e Expr, vidx map[string]int) uint64 {
	switch x := e.(type) {
	case Var:
		if i, ok := vidx[x.Name]; ok {
			return 1 << uint(i&63)
		}
		return 0
	case Op:
		var m uint64
		for _, a := range x.Args {
			m |= varMaskOf(a, vidx)
		}
		return m
	}
	return 0
}

// evalCtx is the incremental evaluator behind one solve: it holds the
// working assignment and per-conjunct satisfaction flags, and on each
// variable update re-evaluates only the conjuncts whose variable
// footprint intersects the change — candidate probing no longer
// re-walks the whole chain per candidate.
type evalCtx struct {
	vars []string
	cons []Constraint
	mask []uint64
	sat  []bool
	bad  int // falsified conjuncts under env
	env  Env
}

func newEvalCtx(vars []string, cons []Constraint, vidx map[string]int) *evalCtx {
	ec := &evalCtx{
		vars: vars,
		cons: cons,
		mask: make([]uint64, len(cons)),
		sat:  make([]bool, len(cons)),
		env:  make(Env, len(vars)),
	}
	for _, v := range vars {
		ec.env[v] = 0
	}
	for k, c := range cons {
		ec.mask[k] = varMaskOf(c.E, vidx)
		ec.sat[k] = c.Holds(ec.env)
		if !ec.sat[k] {
			ec.bad++
		}
	}
	return ec
}

func (ec *evalCtx) set(i int, w mem.Word) {
	name := ec.vars[i]
	if ec.env[name] == w {
		return
	}
	ec.env[name] = w
	bit := uint64(1) << uint(i&63)
	for k, m := range ec.mask {
		if m&bit == 0 {
			continue
		}
		now := ec.cons[k].Holds(ec.env)
		if now != ec.sat[k] {
			ec.sat[k] = now
			if now {
				ec.bad--
			} else {
				ec.bad++
			}
		}
	}
}

// hopeless reports a variable-free conjunct that is false: no
// assignment can ever flip it.
func (ec *evalCtx) hopeless() bool {
	for k := range ec.cons {
		if ec.mask[k] == 0 && !ec.sat[k] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------

// solveEntry is one memoized solve result. Entries are immutable after
// publication; env maps are shared (callers must not mutate models).
type solveEntry struct {
	doms  []vdom // variable domains at the propagation fixpoint
	env   Env    // model, when ok
	ok    bool   // a model was found
	unsat bool   // propagation proved the conjunction empty (definite)
}

var emptyEntry = &solveEntry{env: Env{}, ok: true}

const (
	cacheShards  = 16
	cacheEntries = 1 << 13 // per solver, across shards
)

// modelCache memoizes solve results by path-condition fingerprint.
// Sharded mutexes keep exploration workers out of each other's way;
// FIFO eviction bounds memory. Solve results are a pure function of
// (solver seed, query), so concurrent duplicate computation is
// harmless — both workers publish identical entries.
type modelCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu   sync.Mutex
	m    map[uint64]*solveEntry
	fifo []uint64
	head int
}

func newModelCache() *modelCache {
	c := &modelCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*solveEntry)
	}
	return c
}

func (c *modelCache) get(fp uint64) (*solveEntry, bool) {
	sh := &c.shards[fp&(cacheShards-1)]
	sh.mu.Lock()
	e, ok := sh.m[fp]
	sh.mu.Unlock()
	return e, ok
}

func (c *modelCache) put(fp uint64, e *solveEntry) {
	sh := &c.shards[fp&(cacheShards-1)]
	sh.mu.Lock()
	if _, exists := sh.m[fp]; !exists {
		if len(sh.fifo)-sh.head >= cacheEntries/cacheShards {
			delete(sh.m, sh.fifo[sh.head])
			sh.head++
			if sh.head > cacheEntries/cacheShards {
				sh.fifo = append(sh.fifo[:0], sh.fifo[sh.head:]...)
				sh.head = 0
			}
		}
		sh.fifo = append(sh.fifo, fp)
	}
	sh.m[fp] = e
	sh.mu.Unlock()
}

// ---------------------------------------------------------------------
// Counters.
// ---------------------------------------------------------------------

// solverCounters are the engine's per-analysis diagnostics. They are
// atomics because exploration workers share one solver; under parallel
// runs the split between cache hits and fresh solves depends on
// interleaving (results never do), so the counters are observability,
// not part of the deterministic result surface.
type solverCounters struct {
	queries        atomic.Uint64
	cacheHits      atomic.Uint64
	definiteUnsats atomic.Uint64
	propPruned     atomic.Uint64
	extendHits     atomic.Uint64
	probeIters     atomic.Uint64
}

// SolverStats is a snapshot of the constraint engine's counters for
// one analysis: queries answered, answers served from the
// fingerprint-keyed cache, queries settled UNSAT by domain
// propagation alone, queries whose probe space was narrowed by
// propagation, models obtained by extending the parent condition's
// model, and total random-probe iterations spent.
type SolverStats struct {
	Queries        uint64
	CacheHits      uint64
	DefiniteUnsats uint64
	PropPruned     uint64
	ExtendHits     uint64
	ProbeIters     uint64
}

// Stats snapshots the solver's counters.
func (s *Solver) Stats() SolverStats {
	return SolverStats{
		Queries:        s.counters.queries.Load(),
		CacheHits:      s.counters.cacheHits.Load(),
		DefiniteUnsats: s.counters.definiteUnsats.Load(),
		PropPruned:     s.counters.propPruned.Load(),
		ExtendHits:     s.counters.extendHits.Load(),
		ProbeIters:     s.counters.probeIters.Load(),
	}
}
