// Package symx is a small symbolic-execution substrate: labeled
// bitvector expressions over 64-bit words, a structural simplifier, an
// incremental bitvector constraint engine, and a symbolic memory with
// angr-style address concretization.
//
// It stands in for the angr engine the paper's Pitchfork prototype is
// built on (§4.2). The properties Pitchfork actually relies on are (a)
// secrecy labels that propagate through computation, (b) path
// constraints from resolved branches, and (c) concretization of
// symbolic memory addresses ("angr concretizes addresses for memory
// operations instead of keeping them symbolic"). All three are
// reproduced here.
//
// The solver (engine.go) layers sound reasoning in front of the
// original bounded heuristic search, exploiting the structure the
// explorer gives it — path conditions grow by one conjunct per branch
// along a parent-pointer chain, and the same conditions recur across
// forks and workers:
//
//   - an interval × known-bits abstract domain with per-opcode
//     transfer functions propagates constraints to a fixpoint,
//     deciding pinned variables outright and proving many queries
//     UNSAT with no search at all (an empty domain is a proof);
//   - a per-conjunct incremental evaluator re-checks only the
//     conjuncts whose variables changed between candidate models;
//   - results are memoized per fingerprint in a sharded model cache
//     shared across forks and workers, and child queries extend the
//     parent's cached model push/pop-style instead of solving from
//     scratch.
//
// Every layer is filtering-only over a sound over-approximation, so
// witnesses are bit-identical to the plain search whenever it would
// have succeeded, and the engine stays a pure function of (seed,
// query) — parallel runs remain deterministic. What a real SMT backend
// would still add is completeness on dense multi-variable arithmetic
// (e.g. nonlinear mixes of wide-range variables), where the probe
// fallback remains bounded-best-effort; see DESIGN.md.
package symx

import (
	"fmt"
	"sort"
	"strings"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Expr is a labeled symbolic word. Implementations are immutable.
type Expr interface {
	// Label returns the secrecy label: the join over all leaves.
	Label() mem.Label
	// Concrete reports whether the expression denotes a single word,
	// and which.
	Concrete() (mem.Value, bool)
	// Eval evaluates under a total assignment of variables to words.
	Eval(env Env) mem.Value
	// Vars appends the free variable names to dst, deduplicated by the
	// caller if needed.
	vars(set map[string]bool)
	fmt.Stringer
}

// Env assigns words to variable names.
type Env map[string]mem.Word

// Const is a concrete labeled word.
type Const struct{ V mem.Value }

// C wraps a labeled value as an expression.
func C(v mem.Value) Const { return Const{V: v} }

// CW wraps a public word.
func CW(w mem.Word) Const { return Const{V: mem.Pub(w)} }

// Zero is the canonical public-zero expression. Hot paths that default
// to zero (unmapped memory reads, unset register resolves) return it
// instead of boxing a fresh Const into the interface per call.
var Zero Expr = Const{}

// Label implements Expr.
func (c Const) Label() mem.Label { return c.V.L }

// Concrete implements Expr.
func (c Const) Concrete() (mem.Value, bool) { return c.V, true }

// Eval implements Expr.
func (c Const) Eval(Env) mem.Value { return c.V }

func (c Const) vars(map[string]bool) {}

// String implements fmt.Stringer.
func (c Const) String() string { return c.V.String() }

// Var is a symbolic input: attacker-controlled public data (e.g. the
// Kocher cases' index x) or a secret (key bytes, plaintext).
type Var struct {
	Name string
	L    mem.Label
}

// V constructs a variable.
func NewVar(name string, l mem.Label) Var { return Var{Name: name, L: l} }

// Label implements Expr.
func (v Var) Label() mem.Label { return v.L }

// Concrete implements Expr.
func (v Var) Concrete() (mem.Value, bool) { return mem.Value{}, false }

// Eval implements Expr.
func (v Var) Eval(env Env) mem.Value { return mem.V(env[v.Name], v.L) }

func (v Var) vars(set map[string]bool) { set[v.Name] = true }

// String implements fmt.Stringer.
func (v Var) String() string {
	if v.L.IsSecret() {
		return v.Name + "!" + v.L.String()
	}
	return v.Name
}

// Op applies an ISA opcode to symbolic operands; the same evaluation
// function J·K as the concrete machine, lifted.
type Op struct {
	Code isa.Opcode
	Args []Expr
}

// Label implements Expr.
func (o Op) Label() mem.Label {
	l := mem.Public
	for _, a := range o.Args {
		l = l.Join(a.Label())
	}
	return l
}

// opArgBuf sizes the stack buffer Eval and Concrete use for operand
// values: opcodes are at most ternary, so evaluation of a node never
// allocates. (Solver probing evaluates whole constraint trees once per
// candidate model — this is the symbolic hot path.)
const opArgBuf = 4

// Concrete implements Expr.
func (o Op) Concrete() (mem.Value, bool) {
	var buf [opArgBuf]mem.Value
	vals := buf[:0]
	if len(o.Args) > opArgBuf {
		vals = make([]mem.Value, 0, len(o.Args))
	}
	for _, a := range o.Args {
		v, ok := a.Concrete()
		if !ok {
			return mem.Value{}, false
		}
		vals = append(vals, v)
	}
	v, err := isa.Eval(o.Code, vals)
	if err != nil {
		return mem.Value{}, false
	}
	return v, true
}

// Eval implements Expr.
func (o Op) Eval(env Env) mem.Value {
	var buf [opArgBuf]mem.Value
	vals := buf[:0]
	if len(o.Args) > opArgBuf {
		vals = make([]mem.Value, 0, len(o.Args))
	}
	for _, a := range o.Args {
		vals = append(vals, a.Eval(env))
	}
	v, err := isa.Eval(o.Code, vals)
	if err != nil {
		// Arity errors cannot occur on expressions built via Apply.
		return mem.Value{}
	}
	return v
}

func (o Op) vars(set map[string]bool) {
	for _, a := range o.Args {
		a.vars(set)
	}
}

// String implements fmt.Stringer.
func (o Op) String() string {
	parts := make([]string, len(o.Args))
	for i, a := range o.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", o.Code, strings.Join(parts, ", "))
}

// Vars returns the sorted free variables of e.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	e.vars(set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Apply builds Op(code, args) and simplifies: constant folding plus a
// few algebraic identities that keep address expressions small.
func Apply(code isa.Opcode, args ...Expr) Expr {
	o := Op{Code: code, Args: args}
	if v, ok := o.Concrete(); ok {
		return Const{V: v}
	}
	switch code {
	case isa.OpAdd:
		// Fold concrete addends together; drop zeros.
		var sum mem.Word
		label := mem.Public
		rest := make([]Expr, 0, len(args))
		for _, a := range args {
			if v, ok := a.Concrete(); ok {
				sum += v.W
				label = label.Join(v.L)
				continue
			}
			rest = append(rest, a)
		}
		if len(rest) == 0 {
			return Const{V: mem.V(sum, label)}
		}
		if sum != 0 || label != mem.Public {
			rest = append(rest, Const{V: mem.V(sum, label)})
		}
		if len(rest) == 1 {
			return rest[0]
		}
		return Op{Code: isa.OpAdd, Args: rest}
	case isa.OpXor, isa.OpSub:
		if eq, ok := structurallyEqual(args[0], args[1]); ok && eq {
			// x ^ x = 0 and x - x = 0, but the label must still join
			// both sides (the *fact* that they cancel is data).
			return Const{V: mem.V(0, args[0].Label().Join(args[1].Label()))}
		}
	case isa.OpMul:
		if v, ok := args[0].Concrete(); ok && v.W == 1 && v.L.IsPublic() {
			return args[1]
		}
		if v, ok := args[1].Concrete(); ok && v.W == 1 && v.L.IsPublic() {
			return args[0]
		}
		if v, ok := args[0].Concrete(); ok && v.W == 0 {
			return Const{V: mem.V(0, v.L.Join(args[1].Label()))}
		}
		if v, ok := args[1].Concrete(); ok && v.W == 0 {
			return Const{V: mem.V(0, v.L.Join(args[0].Label()))}
		}
	case isa.OpMov:
		return args[0]
	}
	return o
}

// structurallyEqual reports syntactic equality (sound but incomplete).
func structurallyEqual(a, b Expr) (bool, bool) {
	switch x := a.(type) {
	case Const:
		y, ok := b.(Const)
		return ok && x.V == y.V, true
	case Var:
		y, ok := b.(Var)
		return ok && x == y, true
	case Op:
		y, ok := b.(Op)
		if !ok || x.Code != y.Code || len(x.Args) != len(y.Args) {
			return false, true
		}
		for i := range x.Args {
			eq, _ := structurallyEqual(x.Args[i], y.Args[i])
			if !eq {
				return false, true
			}
		}
		return true, true
	}
	return false, false
}
