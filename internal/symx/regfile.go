package symx

import (
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// RegFile is a symbolic register file ρ : R ⇀ Expr with the same
// copy-on-write representation as Memory: Clone is O(1), forks pay
// only for the registers they write, and an order-independent hash sum
// over the mapped registers is maintained incrementally once
// fingerprinting starts. Unmapped registers are simply absent (ok ==
// false); the symbolic machine supplies its own public-zero default.
type RegFile struct {
	m      mem.CowMap[isa.Reg, Expr]
	sum    uint64
	hashed bool
}

// NewRegFile returns an empty symbolic register file.
func NewRegFile() *RegFile { return &RegFile{} }

// Read returns ρ(r), if mapped.
func (f *RegFile) Read(r isa.Reg) (Expr, bool) {
	return f.m.Lookup(r)
}

// Write sets ρ(r) = e.
func (f *RegFile) Write(r isa.Reg, e Expr) {
	old, existed := f.m.Set(r, e)
	if f.hashed {
		if existed {
			f.sum -= chainCellHash(uint64(r), old)
		}
		f.sum += chainCellHash(uint64(r), e)
	}
}

// Clone returns an independent copy in O(1).
func (f *RegFile) Clone() *RegFile {
	return &RegFile{m: f.m.Fork(), sum: f.sum, hashed: f.hashed}
}

// Len returns the number of mapped registers.
func (f *RegFile) Len() int { return f.m.Len() }

// HashSum folds the register file into an order-independent 64-bit
// sum over structural expression fingerprints; the first call
// activates incremental maintenance, like Memory.HashSum.
func (f *RegFile) HashSum() uint64 {
	if !f.hashed {
		f.hashed = true
		f.sum = 0
		f.m.FlatEach(func(r isa.Reg, e Expr) {
			f.sum += chainCellHash(uint64(r), e)
		})
	}
	return f.sum
}
