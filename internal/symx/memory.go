package symx

import (
	"fmt"
	"sort"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

func eqOp() isa.Opcode { return isa.OpEq }

// Memory is a symbolic data memory: a word-granular map from concrete
// addresses to symbolic expressions. Addresses are always concrete —
// symbolic addresses are concretized before access, mirroring angr's
// behaviour as described in §4.2 of the paper ("angr concretizes
// addresses for memory operations instead of keeping them symbolic").
type Memory struct {
	cells map[mem.Word]Expr
}

// NewMemory returns an empty symbolic memory.
func NewMemory() *Memory { return &Memory{cells: make(map[mem.Word]Expr)} }

// Read returns the expression at a; unmapped cells read as public 0.
func (m *Memory) Read(a mem.Word) Expr {
	if e, ok := m.cells[a]; ok {
		return e
	}
	return CW(0)
}

// Write sets the cell at a.
func (m *Memory) Write(a mem.Word, e Expr) { m.cells[a] = e }

// Contains reports whether a is mapped.
func (m *Memory) Contains(a mem.Word) bool {
	_, ok := m.cells[a]
	return ok
}

// Clone returns a copy (expressions are immutable and shared).
func (m *Memory) Clone() *Memory {
	c := &Memory{cells: make(map[mem.Word]Expr, len(m.cells))}
	for a, e := range m.cells {
		c.cells[a] = e
	}
	return c
}

// HashSum folds the memory into an order-independent 64-bit sum using
// the caller's expression hash — the symbolic configuration
// fingerprint behind the exploration engine's dedup table.
func (m *Memory) HashSum(exprHash func(Expr) uint64) uint64 {
	var sum uint64
	for a, e := range m.cells {
		sum += mem.Mix64(mem.Mix64(mem.HashSeed^a) ^ exprHash(e))
	}
	return sum
}

// Addresses returns the mapped addresses in increasing order.
func (m *Memory) Addresses() []mem.Word {
	out := make([]mem.Word, 0, len(m.cells))
	for a := range m.cells {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SecretAddresses returns the mapped addresses whose contents carry a
// secret label, in increasing order; the concretizer targets these.
func (m *Memory) SecretAddresses() []mem.Word {
	out := make([]mem.Word, 0)
	for a, e := range m.cells {
		if e.Label().IsSecret() {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Concretizer pins symbolic addresses to concrete words, in the style
// of angr's concretization strategies. The policy is leak-hunting: if
// the address expression can reach a secret-bearing cell under the
// path condition, pick that cell; otherwise take any model. This is
// what makes unconstrained attacker inputs (the Kocher cases' x) find
// their out-of-bounds values.
type Concretizer struct {
	Solver *Solver
	// MaxTargets bounds how many secret cells are tried per query.
	MaxTargets int
}

// NewConcretizer returns a concretizer over the given solver.
func NewConcretizer(s *Solver) *Concretizer {
	return &Concretizer{Solver: s, MaxTargets: 64}
}

// Concretize picks a concrete address for e under pc. The boolean
// reports success; failure means even plain satisfiability of pc with
// any address value was not established within budget.
func (c *Concretizer) Concretize(e Expr, pc PathCondition, m *Memory) (mem.Word, bool) {
	if v, ok := e.Concrete(); ok {
		return v.W, true
	}
	// Leak-hunting pass: try to land on a secret cell.
	targets := m.SecretAddresses()
	if len(targets) > c.MaxTargets {
		targets = targets[:c.MaxTargets]
	}
	for _, a := range targets {
		if _, ok := c.Solver.SolveWith(pc, e, a); ok {
			return a, true
		}
	}
	// Otherwise: any model.
	if env, ok := c.Solver.Solve(pc); ok {
		return e.Eval(env).W, true
	}
	return 0, false
}

// String renders the memory for debugging.
func (m *Memory) String() string {
	s := ""
	for _, a := range m.Addresses() {
		s += fmt.Sprintf("%#x ↦ %s\n", a, m.cells[a])
	}
	return s
}
