package symx

import (
	"fmt"
	"sort"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

func eqOp() isa.Opcode { return isa.OpEq }

// Memory is a symbolic data memory: a word-granular map from concrete
// addresses to symbolic expressions. Addresses are always concrete —
// symbolic addresses are concretized before access, mirroring angr's
// behaviour as described in §4.2 of the paper ("angr concretizes
// addresses for memory operations instead of keeping them symbolic").
//
// Like the concrete mem.Memory, the representation is copy-on-write:
// Clone is O(1) and each fork pays only for the cells it writes, which
// is what keeps symbolic exploration forks (path-condition splits,
// store concretizations) cheap.
type Memory struct {
	m mem.CowMap[mem.Word, Expr]
	// sum is the order-independent sum of chainCellHash over all
	// mapped cells — the memory half of the symbolic configuration
	// fingerprint, activated lazily by the first HashSum call and
	// maintained incrementally by Write from then on.
	sum    uint64
	hashed bool
}

// NewMemory returns an empty symbolic memory.
func NewMemory() *Memory { return &Memory{} }

// Read returns the expression at a; unmapped cells read as public 0.
func (m *Memory) Read(a mem.Word) Expr {
	if e, ok := m.m.Lookup(a); ok {
		return e
	}
	return Zero
}

// Write sets the cell at a.
func (m *Memory) Write(a mem.Word, e Expr) {
	old, existed := m.m.Set(a, e)
	if m.hashed {
		if existed {
			m.sum -= chainCellHash(a, old)
		}
		m.sum += chainCellHash(a, e)
	}
}

// Contains reports whether a is mapped.
func (m *Memory) Contains(a mem.Word) bool {
	_, ok := m.m.Lookup(a)
	return ok
}

// Clone returns an independent copy in O(1): the private overlay is
// frozen into the shared chain (expressions are immutable and shared
// throughout).
func (m *Memory) Clone() *Memory {
	return &Memory{m: m.m.Fork(), sum: m.sum, hashed: m.hashed}
}

// HashSum folds the memory into an order-independent 64-bit sum over
// structural expression fingerprints — the symbolic configuration
// fingerprint behind the exploration engine's dedup table. The first
// call walks the cells once; afterwards Write maintains the sum
// incrementally, so fingerprinting a state no longer re-hashes every
// cell's expression tree.
func (m *Memory) HashSum() uint64 {
	if !m.hashed {
		m.hashed = true
		m.sum = 0
		m.m.FlatEach(func(a mem.Word, e Expr) {
			m.sum += chainCellHash(a, e)
		})
	}
	return m.sum
}

// Addresses returns the mapped addresses in increasing order.
func (m *Memory) Addresses() []mem.Word {
	out := m.m.Keys()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SecretAddresses returns the mapped addresses whose contents carry a
// secret label, in increasing order; the concretizer targets these.
func (m *Memory) SecretAddresses() []mem.Word {
	var out []mem.Word
	for _, a := range m.m.Keys() {
		if e, ok := m.m.Lookup(a); ok && e.Label().IsSecret() {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Concretizer pins symbolic addresses to concrete words, in the style
// of angr's concretization strategies. The policy is leak-hunting: if
// the address expression can reach a secret-bearing cell under the
// path condition, pick that cell; otherwise take any model. This is
// what makes unconstrained attacker inputs (the Kocher cases' x) find
// their out-of-bounds values.
type Concretizer struct {
	Solver *Solver
	// MaxTargets bounds how many secret cells are tried per query.
	MaxTargets int
}

// NewConcretizer returns a concretizer over the given solver.
func NewConcretizer(s *Solver) *Concretizer {
	return &Concretizer{Solver: s, MaxTargets: 64}
}

// Concretize picks a concrete address for e under pc. The boolean
// reports success; failure means even plain satisfiability of pc with
// any address value was not established within budget.
func (c *Concretizer) Concretize(e Expr, pc PathCondition, m *Memory) (mem.Word, bool) {
	if v, ok := e.Concrete(); ok {
		return v.W, true
	}
	// Leak-hunting pass: try to land on a secret cell.
	targets := m.SecretAddresses()
	if len(targets) > c.MaxTargets {
		targets = targets[:c.MaxTargets]
	}
	for _, a := range targets {
		if _, ok := c.Solver.SolveWith(pc, e, a); ok {
			return a, true
		}
	}
	// Otherwise: any model.
	if env, ok := c.Solver.Solve(pc); ok {
		return e.Eval(env).W, true
	}
	return 0, false
}

// String renders the memory for debugging.
func (m *Memory) String() string {
	s := ""
	for _, a := range m.Addresses() {
		e, _ := m.m.Lookup(a)
		s += fmt.Sprintf("%#x ↦ %s\n", a, e)
	}
	return s
}
