package taint

import (
	"math/rand"
	"reflect"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

const (
	ra = isa.Reg(0)
	rb = isa.Reg(1)
	rc = isa.Reg(2)
)

func analyze(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// A load whose address is computed from secret data is the canonical
// suspicious point; a load of secret data through a public address is
// not — reading a secret is fine, exposing it through an address is the
// leak.
func TestVerdictSecretAddressVsSecretData(t *testing.T) {
	// 1: ra = load [100]     (secret cell: ra becomes secret)
	// 2: rb = load [200, ra] (secret-derived address: suspicious)
	b := isa.NewBuilder(1)
	b.Data(100, mem.Sec(7))
	b.Load(ra, isa.ImmW(100))
	b.Load(rb, isa.ImmW(200), isa.R(ra))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, Config{Prog: p})
	if rep.Safe() {
		t.Fatal("secret-indexed load reported safe")
	}
	if !rep.SafePoint(1) {
		t.Errorf("point 1 (public-address load of secret data) should be safe")
	}
	if rep.SafePoint(2) {
		t.Errorf("point 2 (secret-derived address) should be suspicious")
	}
	if rep.ForkFree(1) {
		t.Errorf("point 1 forward-reaches the suspicious point 2")
	}
	if !rep.ForkFree(2+1) || rep.Points != 2 {
		// No instruction beyond 2; nothing suspicious is reachable from
		// a halt point.
		t.Errorf("halt point should be fork-free (points=%d)", rep.Points)
	}
}

// Wrong-path execution: taint must flow through the arm the
// architectural execution would never take.
func TestVerdictWrongPathFlow(t *testing.T) {
	// 1: br (ra < 2) → 2 (in-bounds) / 4 (skip)
	// 2: rb = load [100, ra]   (reads the secret cell when ra is out of bounds transiently)
	// 3: rc = load [200, rb]   (leaks rb through the address)
	// 4: halt
	b := isa.NewBuilder(1)
	b.Data(100, mem.Pub(1))
	b.Data(101, mem.Sec(9))
	b.Br(isa.OpLt, []isa.Operand{isa.R(ra), isa.ImmW(1)}, 2, 4)
	b.Load(rb, isa.ImmW(100), isa.R(ra))
	b.Load(rc, isa.ImmW(200), isa.R(rb))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, Config{Prog: p})
	if rep.SafePoint(3) {
		t.Errorf("point 3 leaks the transiently loaded secret; must be suspicious")
	}
	if rep.Safe() {
		// consistency: Safe ⟺ no suspicious point
		t.Logf("suspicious: %v", rep.SuspiciousPoints())
	} else if len(rep.SuspiciousPoints()) == 0 {
		t.Errorf("not Safe but no suspicious points listed")
	}
}

// Store bypass: a secret stored AFTER (in program order) a load from
// the same cell must still taint the load — a speculative schedule can
// forward it or let the load read stale/planted data.
func TestVerdictStoreBypassOrderIndependence(t *testing.T) {
	// 1: rb = load [100]       (program-order-first load)
	// 2: rc = load [200, rb]   (address derived from the load)
	// 3: store ra → [100]      (ra secret, store after the loads)
	b := isa.NewBuilder(1)
	b.Load(rb, isa.ImmW(100))
	b.Load(rc, isa.ImmW(200), isa.R(rb))
	b.Store(isa.R(ra), isa.ImmW(100))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, Config{Prog: p, Regs: map[isa.Reg]mem.Label{ra: mem.Secret}})
	if rep.SafePoint(2) {
		t.Errorf("point 2 must be suspicious: the forwarded/stale store value is secret")
	}
}

// A program with no secrets anywhere is certified safe, including its
// branches and stores.
func TestVerdictAllPublicIsSafe(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Data(100, mem.Pub(3))
	b.Br(isa.OpLt, []isa.Operand{isa.R(ra), isa.ImmW(4)}, 2, 4)
	b.Load(rb, isa.ImmW(100), isa.R(ra))
	b.Store(isa.R(rb), isa.ImmW(100))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, Config{Prog: p})
	if !rep.Safe() {
		t.Fatalf("all-public program flagged: suspicious %v", rep.SuspiciousPoints())
	}
	for _, pp := range []isa.Addr{1, 2, 3} {
		if !rep.ForkFree(pp) {
			t.Errorf("point %d not fork-free in a safe program", pp)
		}
	}
}

// A return makes the static successor set unknowable: the analysis
// must fall back to whole-program conservatism.
func TestComputedFlowConservatism(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Op(ra, isa.OpMov, isa.ImmW(0))
	b.Ret()
	b.Load(rb, isa.ImmW(200), isa.R(rc)) // "unreachable" architecturally
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, Config{Prog: p, Regs: map[isa.Reg]mem.Label{rc: mem.Secret}})
	if !rep.ComputedFlow {
		t.Fatal("ret should set ComputedFlow")
	}
	if rep.Reachable != rep.Points {
		t.Errorf("computed flow must make every point reachable: %d of %d", rep.Reachable, rep.Points)
	}
	if rep.SafePoint(3) {
		t.Errorf("secret-indexed load must stay suspicious under computed flow")
	}
	if rep.ForkFree(1) {
		t.Errorf("no point is fork-free while any point is suspicious under computed flow")
	}
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

// randProgram builds a random but well-formed program of n sequential
// points over 3 registers, with occasional backward/forward branches.
// All control flow stays within [1, n+1] (n+1 is the halt point).
func randProgram(rng *rand.Rand, n int) *isa.Program {
	b := isa.NewBuilder(1)
	for a := isa.Addr(1); a <= isa.Addr(n); a++ {
		b.Data(50+a, mem.Pub(uint64(rng.Intn(8))))
	}
	operand := func() isa.Operand {
		if rng.Intn(2) == 0 {
			return isa.R(isa.Reg(rng.Intn(3)))
		}
		return isa.ImmW(uint64(50 + rng.Intn(n)))
	}
	for i := 0; i < n; i++ {
		dst := isa.Reg(rng.Intn(3))
		switch rng.Intn(5) {
		case 0:
			b.Op(dst, isa.OpAdd, operand(), operand())
		case 1:
			b.Load(dst, operand())
		case 2:
			b.Store(operand(), operand())
		case 3:
			t1 := isa.Addr(1 + rng.Intn(n+1))
			t2 := isa.Addr(1 + rng.Intn(n+1))
			b.Br(isa.OpLt, []isa.Operand{operand(), operand()}, t1, t2)
		case 4:
			b.Fence()
		}
	}
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// TestMonotonicity: joining MORE secrets into the seed labeling never
// yields a LESS secret result — sink labels rise pointwise, the
// suspicious set only grows, and Safe can only flip towards false.
func TestMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(20200615))
	for trial := 0; trial < 200; trial++ {
		p := randProgram(rng, 3+rng.Intn(12))

		weak := Config{Prog: p, Regs: map[isa.Reg]mem.Label{}, Mem: map[isa.Addr]mem.Label{}}
		for r := 0; r < 3; r++ {
			if rng.Intn(3) == 0 {
				weak.Regs[isa.Reg(r)] = mem.Secret
			}
		}
		if rng.Intn(2) == 0 {
			weak.Mem[isa.Addr(50+rng.Intn(8))] = mem.Secret
		}

		// strong = weak ⊔ extra secrets (a strictly-higher or equal seed).
		strong := Config{Prog: p, Regs: map[isa.Reg]mem.Label{}, Mem: map[isa.Addr]mem.Label{}}
		for r, l := range weak.Regs {
			strong.Regs[r] = l
		}
		for a, l := range weak.Mem {
			strong.Mem[a] = l
		}
		strong.Regs[isa.Reg(rng.Intn(3))] = mem.Secret
		strong.Mem[isa.Addr(50+rng.Intn(8))] = mem.Secret

		wr := analyze(t, weak)
		sr := analyze(t, strong)

		for _, pp := range p.Points() {
			if !wr.SinkLabel(pp).FlowsTo(sr.SinkLabel(pp)) {
				t.Fatalf("trial %d: sink label not monotone at %d: weak %v, strong %v\n%v",
					trial, pp, wr.SinkLabel(pp), sr.SinkLabel(pp), p.Instrs)
			}
			if !wr.SafePoint(pp) && sr.SafePoint(pp) {
				t.Fatalf("trial %d: point %d suspicious under weak seed but safe under strong\n%v", trial, pp, p.Instrs)
			}
			if !sr.ForkFree(pp) && wr.ForkFree(pp) {
				continue // fine: strong may lose fork-freedom
			}
			if sr.ForkFree(pp) && !wr.ForkFree(pp) {
				t.Fatalf("trial %d: point %d fork-free under strong seed but not weak\n%v", trial, pp, p.Instrs)
			}
		}
		if sr.Safe() && !wr.Safe() {
			t.Fatalf("trial %d: strong seed safe but weak flagged\n%v", trial, p.Instrs)
		}
	}
}

// TestDeterminism: analyzing the same configuration twice yields the
// identical report, map iteration order notwithstanding.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		p := randProgram(rng, 4+rng.Intn(10))
		cfg := Config{Prog: p, Regs: map[isa.Reg]mem.Label{ra: mem.Secret}}
		r1 := analyze(t, cfg)
		r2 := analyze(t, cfg)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("trial %d: same configuration, different reports\n%v", trial, p.Instrs)
		}
	}
}

// TestReorderingIndependentBlocks: two data- and control-independent
// blocks analyzed in either program order yield the same verdicts point
// for point (through the block permutation).
func TestReorderingIndependentBlocks(t *testing.T) {
	// Block A (3 points): secret-indexed load chain over ra/rb, cells 100/101.
	// Block B (2 points): public store+load over rc, cell 300.
	blockA := func(b *isa.Builder) {
		b.Load(ra, isa.ImmW(100))            // secret cell
		b.Load(rb, isa.ImmW(200), isa.R(ra)) // suspicious
		b.Store(isa.R(rb), isa.ImmW(101))    // public address, secret-derived data
	}
	blockB := func(b *isa.Builder) {
		b.Store(isa.ImmW(5), isa.ImmW(300))
		b.Load(rc, isa.ImmW(300))
	}
	data := func(b *isa.Builder) {
		b.Data(100, mem.Sec(1))
		b.Data(300, mem.Pub(2))
	}

	ab := isa.NewBuilder(1)
	data(ab)
	blockA(ab)
	blockB(ab)
	pAB, err := ab.Build()
	if err != nil {
		t.Fatal(err)
	}
	ba := isa.NewBuilder(1)
	data(ba)
	blockB(ba)
	blockA(ba)
	pBA, err := ba.Build()
	if err != nil {
		t.Fatal(err)
	}

	rAB := analyze(t, Config{Prog: pAB})
	rBA := analyze(t, Config{Prog: pBA})

	// Permutation: A occupies 1-3 in AB and 3-5 in BA; B occupies 4-5
	// in AB and 1-2 in BA.
	perm := map[isa.Addr]isa.Addr{1: 3, 2: 4, 3: 5, 4: 1, 5: 2}
	for from, to := range perm {
		if rAB.SafePoint(from) != rBA.SafePoint(to) {
			t.Errorf("verdict differs across reordering: AB@%d safe=%v, BA@%d safe=%v",
				from, rAB.SafePoint(from), to, rBA.SafePoint(to))
		}
		if rAB.SinkLabel(from) != rBA.SinkLabel(to) {
			t.Errorf("sink label differs across reordering: AB@%d %v, BA@%d %v",
				from, rAB.SinkLabel(from), to, rBA.SinkLabel(to))
		}
	}
	if rAB.Safe() != rBA.Safe() {
		t.Errorf("whole-program verdict differs across reordering")
	}
}
