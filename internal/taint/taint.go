// Package taint implements the static speculative-taint pre-analysis:
// a flow-sensitive abstract interpreter over isa.Program that decides,
// per program point and in O(|program|) fixpoint iterations, whether a
// transiently secret-tainted value can reach an observation sink — a
// memory address, a branch condition, or a jump target, the only label
// carriers of the paper's observation syntax (§3). Points where that
// is impossible are provably safe: no schedule of the speculative
// semantics, up to any bound, can make the explorer flag them.
//
// The analysis over-approximates every transient execution the
// exploration engine can drive:
//
//   - wrong-path execution (PHT guesses): both arms of every branch
//     are control-flow successors, so taint propagates through code
//     the architectural execution would skip;
//   - store bypass and forwarding (STL): the memory abstraction is
//     accumulate-only — a cell's label joins every value any reachable
//     store could ever write to it, never strong-updating, so stale
//     and forwarded values are covered regardless of schedule;
//   - computed control flow (jmpi, RSB/stale returns): a program
//     containing an indirect jump without a single immediate target,
//     or any return, conservatively makes every instruction point
//     speculatively reachable, since a transient return may predict
//     through any value a store planted (Fig. 10).
//
// Addresses are tracked by label only, not by value: a load or store
// whose address operands are not a single immediate reads from (or
// writes to) the unknown-address summary, which soundly aliases all of
// memory. The result is deliberately conservative — the verdicts feed
// three consumers that each only need one-sided guarantees: the
// standalone certificate (spectre.WithStaticPass) certifies Safe
// programs without building an explorer, the pruning hints let
// internal/sched skip forking at speculation points whose entire
// future is safe, and internal/repair ranks candidate fence sites by
// suspiciousness.
package taint

import (
	"fmt"
	"sort"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
)

// Config seeds an analysis: the program plus the same secret labeling
// the explorer's initial configuration carries. Registers and memory
// cells absent from the maps are Public; memory labels join over the
// program's data image, so callers only list bindings the image does
// not already carry (symbolic secrets, seeded registers).
type Config struct {
	Prog *isa.Program
	Regs map[isa.Reg]mem.Label
	Mem  map[isa.Addr]mem.Label
}

// Report is the analysis result: per-point speculative reachability,
// sink labels, and verdicts, plus the forward-reachability closure the
// pruning hints serve from. Reports are immutable after Analyze and
// safe for concurrent readers.
type Report struct {
	// Points is the number of instruction points analyzed; Reachable
	// the number of speculatively reachable ones.
	Points    int
	Reachable int
	// ComputedFlow reports whether the program contains control flow
	// whose successors are not statically known (computed jmpi targets
	// or returns), forcing whole-program reachability and
	// forward-reach conservatism.
	ComputedFlow bool

	reachable  map[isa.Addr]bool
	sink       map[isa.Addr]mem.Label
	suspicious map[isa.Addr]bool
	// suspectReach holds the points from which some suspicious point is
	// forward-reachable (including the point itself). Under
	// ComputedFlow it is nil and anySuspicious decides.
	suspectReach  map[isa.Addr]bool
	anySuspicious bool
}

// Safe reports whether every reachable point is provably safe — the
// whole program carries the static certificate.
func (r *Report) Safe() bool { return !r.anySuspicious }

// SafePoint reports whether the point is provably safe: either not
// speculatively reachable at all, or reachable with a statically
// public sink label — no transient execution can produce a
// secret-labeled observation there.
func (r *Report) SafePoint(pp isa.Addr) bool { return !r.suspicious[pp] }

// SinkLabel returns the point's static sink label: the join of every
// label a transient execution could expose through the point's
// observations. Unreachable points are Public.
func (r *Report) SinkLabel(pp isa.Addr) mem.Label { return r.sink[pp] }

// ReachablePoint reports whether any speculative execution can reach
// the point.
func (r *Report) ReachablePoint(pp isa.Addr) bool { return r.reachable[pp] }

// ForkFree reports whether no suspicious point is forward-reachable
// from pp (pp itself included): the entire execution future unlocked
// at pp is provably safe. This is the speculation-fork pruning
// condition internal/sched consumes — a fork whose every arm lies in a
// fork-free region cannot contribute a finding.
func (r *Report) ForkFree(pp isa.Addr) bool {
	if r.ComputedFlow {
		return !r.anySuspicious
	}
	return !r.suspectReach[pp]
}

// SuspiciousPoints returns the suspicious program points in increasing
// order.
func (r *Report) SuspiciousPoints() []isa.Addr {
	out := make([]isa.Addr, 0, len(r.suspicious))
	for pp := range r.suspicious {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// regState maps registers to labels; absent registers are Public.
// States are small (programs use a handful of registers), so joins
// copy eagerly.
type regState map[isa.Reg]mem.Label

func (s regState) get(r isa.Reg) mem.Label { return s[r] }

func (s regState) clone() regState {
	c := make(regState, len(s))
	for r, l := range s {
		c[r] = l
	}
	return c
}

// joinInto joins o into s and reports whether s changed.
func (s regState) joinInto(o regState) bool {
	changed := false
	for r, l := range o {
		if j := s[r].Join(l); j != s[r] {
			s[r] = j
			changed = true
		}
	}
	return changed
}

// memState is the accumulate-only memory abstraction: per-cell labels
// for statically known addresses plus one summary label for everything
// written through a statically unknown address. Reads join the unknown
// summary in, since an unknown-address store may alias any cell.
type memState struct {
	known   map[isa.Addr]mem.Label
	unknown mem.Label
	all     mem.Label // join of every known cell and the unknown summary
}

func (ms *memState) read(a isa.Addr) mem.Label { return ms.known[a].Join(ms.unknown) }

func (ms *memState) writeKnown(a isa.Addr, l mem.Label) bool {
	j := ms.known[a].Join(l)
	if j == ms.known[a] {
		return false
	}
	ms.known[a] = j
	ms.all = ms.all.Join(j)
	return true
}

func (ms *memState) writeUnknown(l mem.Label) bool {
	j := ms.unknown.Join(l)
	if j == ms.unknown {
		return false
	}
	ms.unknown = j
	ms.all = ms.all.Join(j)
	return true
}

// Analyze runs the abstract interpretation and returns the report.
func Analyze(cfg Config) (*Report, error) {
	if cfg.Prog == nil {
		return nil, fmt.Errorf("taint: nil program")
	}
	p := cfg.Prog
	points := p.Points()
	rep := &Report{
		Points:     len(points),
		reachable:  make(map[isa.Addr]bool, len(points)),
		sink:       make(map[isa.Addr]mem.Label, len(points)),
		suspicious: make(map[isa.Addr]bool),
	}
	if len(points) == 0 {
		return rep, nil
	}

	// Static control flow. An instruction with statically unknown
	// successors poisons the whole CFG: every point becomes reachable
	// and forward-reaches every other.
	succs := make(map[isa.Addr][]isa.Addr, len(points))
	for _, pp := range points {
		in := p.Instrs[pp]
		ss, ok := in.StaticSuccessors(nil)
		if !ok {
			rep.ComputedFlow = true
		}
		// Keep only successors that are instruction points; the rest
		// are halt points with no effects to propagate to.
		kept := ss[:0]
		for _, s := range ss {
			if _, isInstr := p.Instrs[s]; isInstr {
				kept = append(kept, s)
			}
		}
		succs[pp] = kept
	}

	// Speculative reachability.
	if rep.ComputedFlow {
		for _, pp := range points {
			rep.reachable[pp] = true
		}
	} else {
		work := []isa.Addr{p.Entry}
		for len(work) > 0 {
			pp := work[len(work)-1]
			work = work[:len(work)-1]
			if rep.reachable[pp] {
				continue
			}
			if _, ok := p.Instrs[pp]; !ok {
				continue
			}
			rep.reachable[pp] = true
			work = append(work, succs[pp]...)
		}
	}
	rep.Reachable = len(rep.reachable)

	// Initial memory labels: the data image joined with the caller's
	// extra bindings.
	ms := &memState{known: make(map[isa.Addr]mem.Label, len(p.Data)+len(cfg.Mem))}
	for a, v := range p.Data {
		ms.writeKnown(a, v.L)
	}
	for a, l := range cfg.Mem {
		ms.writeKnown(a, l)
	}

	entrySeed := make(regState, len(cfg.Regs))
	for r, l := range cfg.Regs {
		if l != mem.Public {
			entrySeed[r] = l
		}
	}

	// Register fixpoint under the current memory summary, re-run until
	// the memory abstraction itself stabilizes: stores accumulate into
	// memory while loads read from it, and the flow-insensitive memory
	// must reflect every reachable store regardless of program order
	// (a speculative load may forward from a store that is later in
	// program order but earlier in the schedule). Both lattices are
	// finite and the transfer functions monotone, so this terminates.
	var in map[isa.Addr]regState
	for {
		in = runRegFixpoint(p, rep, succs, points, entrySeed, ms)
		changed := false
		for _, pp := range points {
			if !rep.reachable[pp] {
				continue
			}
			if applyMemEffects(p.Instrs[pp], in[pp], ms) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Verdicts: a reachable point is suspicious iff its sink label —
	// the join of every label its observations can expose — is secret.
	for _, pp := range points {
		if !rep.reachable[pp] {
			continue
		}
		l := sinkLabel(p.Instrs[pp], in[pp], ms)
		rep.sink[pp] = l
		if l.IsSecret() {
			rep.suspicious[pp] = true
			rep.anySuspicious = true
		}
	}

	// Forward-reach closure of the suspicious set: backward BFS over
	// the CFG edges. Under ComputedFlow every point reaches every
	// other, so ForkFree degenerates to "no suspicious point at all".
	if !rep.ComputedFlow {
		preds := make(map[isa.Addr][]isa.Addr, len(points))
		for _, pp := range points {
			for _, s := range succs[pp] {
				preds[s] = append(preds[s], pp)
			}
		}
		rep.suspectReach = make(map[isa.Addr]bool, len(rep.suspicious))
		work := make([]isa.Addr, 0, len(rep.suspicious))
		for pp := range rep.suspicious {
			rep.suspectReach[pp] = true
			work = append(work, pp)
		}
		for len(work) > 0 {
			pp := work[len(work)-1]
			work = work[:len(work)-1]
			for _, q := range preds[pp] {
				if !rep.suspectReach[q] {
					rep.suspectReach[q] = true
					work = append(work, q)
				}
			}
		}
	}
	return rep, nil
}

// runRegFixpoint computes the register in-states of every reachable
// point under the (fixed) memory summary ms, by worklist iteration in
// ascending point order for determinism.
func runRegFixpoint(p *isa.Program, rep *Report, succs map[isa.Addr][]isa.Addr, points []isa.Addr, entrySeed regState, ms *memState) map[isa.Addr]regState {
	in := make(map[isa.Addr]regState, rep.Reachable)
	dirty := make(map[isa.Addr]bool, rep.Reachable)
	if rep.ComputedFlow {
		// Every reachable point may be entered with any predecessor's
		// out-state; seeding every point dirty with the entry seed and
		// letting edges join handles the statically known edges, while
		// the computed edges are covered below by joining every
		// out-state into every point.
		for pp := range rep.reachable {
			in[pp] = entrySeed.clone()
			dirty[pp] = true
		}
	} else {
		in[p.Entry] = entrySeed.clone()
		dirty[p.Entry] = true
	}

	queue := make([]isa.Addr, 0, len(dirty))
	for pp := range dirty {
		queue = append(queue, pp)
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })

	for len(queue) > 0 {
		pp := queue[0]
		queue = queue[1:]
		if !dirty[pp] {
			continue
		}
		dirty[pp] = false
		out := transfer(p.Instrs[pp], in[pp], ms)
		targets := succs[pp]
		if rep.ComputedFlow {
			// A computed edge may lead anywhere: propagate this
			// out-state into every instruction point. The join is
			// monotone, so precision is lost but termination and
			// soundness hold.
			targets = points
		}
		for _, s := range targets {
			if !rep.reachable[s] {
				continue
			}
			dst, ok := in[s]
			if !ok {
				in[s] = out.clone()
				dirty[s] = true
				queue = append(queue, s)
				continue
			}
			if dst.joinInto(out) && !dirty[s] {
				dirty[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}

// operandLabel is the static label of one operand under the register
// in-state.
func operandLabel(o isa.Operand, rs regState, _ *memState) mem.Label {
	if o.IsReg {
		return rs.get(o.Reg)
	}
	return o.Imm.L
}

func argsLabel(os []isa.Operand, rs regState, ms *memState) mem.Label {
	l := mem.Public
	for _, o := range os {
		l = l.Join(operandLabel(o, rs, ms))
	}
	return l
}

// staticAddr resolves an address operand list statically: known iff it
// is a single immediate (label tracking carries no values, and the
// machine's address mode is not visible here).
func staticAddr(os []isa.Operand) (isa.Addr, bool) {
	if len(os) == 1 && !os[0].IsReg {
		return os[0].Imm.W, true
	}
	return 0, false
}

// transfer applies the instruction's register effects to a copy of the
// in-state.
func transfer(in isa.Instr, rs regState, ms *memState) regState {
	out := rs.clone()
	switch in.Kind {
	case isa.KOp:
		// Eval joins every operand label into the result, including a
		// select's condition.
		out[in.Dst] = argsLabel(in.Args, rs, ms)
	case isa.KLoad:
		if a, ok := staticAddr(in.Args); ok {
			out[in.Dst] = ms.read(a)
		} else {
			// Unknown address: the load may read any cell, stale or
			// forwarded — the join of all of memory.
			out[in.Dst] = ms.all
		}
	case isa.KCall:
		// The expansion pushes the (public) return address through
		// RTMP and moves RSP by a public constant: RSP's label is
		// preserved, RTMP becomes public.
		out[mem.RTMP] = mem.Public
	case isa.KRet:
		// The expansion pops through RTMP: transiently the popped
		// value may be anything a store planted in the return slot.
		out[mem.RTMP] = ms.all
	}
	return out
}

// applyMemEffects accumulates the instruction's store effects into the
// memory abstraction, reporting whether it changed. Calls push the
// public return address through RSP — an unknown address whose label
// is RSP's.
func applyMemEffects(in isa.Instr, rs regState, ms *memState) bool {
	switch in.Kind {
	case isa.KStore:
		val := operandLabel(in.Src, rs, ms)
		if a, ok := staticAddr(in.Args); ok {
			return ms.writeKnown(a, val)
		}
		return ms.writeUnknown(val)
	case isa.KCall:
		// Return-address push: public value at an RSP-derived
		// (unknown) address.
		return ms.writeUnknown(mem.Public)
	}
	return false
}

// sinkLabel joins every label the instruction's observations can
// expose: addresses for loads and stores, conditions for branches,
// targets for indirect jumps, and the stack/return machinery for
// calls and returns (the expansion's push, pop, and predicted jump).
func sinkLabel(in isa.Instr, rs regState, ms *memState) mem.Label {
	switch in.Kind {
	case isa.KBr, isa.KJmpi, isa.KLoad, isa.KStore:
		return argsLabel(in.SinkArgs(), rs, ms)
	case isa.KCall:
		// write observation at the RSP-derived push address.
		return rs.get(mem.RSP)
	case isa.KRet:
		// read observation at the RSP-derived pop address, plus a jump
		// observation labeled by the popped value — transiently any
		// value a store planted (the stale-return window).
		return rs.get(mem.RSP).Join(ms.all)
	}
	return mem.Public
}
