// Package pitchfork is the paper's detector (§4): it checks programs
// for speculative constant-time (SCT) violations by executing them
// under worst-case attacker schedules and flagging observations whose
// labels are secret.
//
// Both modes run on one domain-parameterized speculation engine — the
// DT(n) schedule strategy, work-stealing pool, fingerprint dedup,
// budgets, and deterministic violation merge of internal/sched —
// instantiated over two value domains:
//
//   - Concrete mode (Analyze): the program runs on the reference
//     machine of internal/core with concrete, labeled inputs. Sound
//     and exact for the given inputs.
//
//   - Symbolic mode (AnalyzeSymbolic): public inputs may be
//     unconstrained symbolic variables (the attacker-controlled index
//     of the Kocher cases); the symbolic domain of symbolic.go tracks
//     path conditions, forks at input-dependent branches, and
//     concretizes addresses with a leak-hunting policy, mirroring how
//     the original tool drives the angr engine. Like the original,
//     symbolic mode exercises a subset of the semantics:
//     conditional-branch speculation and store-forwarding variants
//     (Spectre v1, v1.1, v4), with indirect jumps and returns
//     followed architecturally.
package pitchfork

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/sched"
	"pitchfork/internal/symx"
)

// Options configure an analysis.
type Options struct {
	// Bound is the speculation bound. The paper's evaluation uses 250
	// without forwarding-hazard detection and 20 with it (§4.2.1).
	Bound int
	// ForwardHazards enables Spectre v4 style schedules.
	ForwardHazards bool
	// MaxStates and MaxRetired bound the exploration (0 = defaults).
	MaxStates  int
	MaxRetired int
	// StopAtFirst stops at the first violation.
	StopAtFirst bool
	// Workers is the number of exploration goroutines in either mode
	// (0 or 1 = serial; n > 1 = work-stealing pool with violations
	// reported in deterministic schedule order). Both the concrete and
	// the symbolic domain run on the same engine and pool.
	Workers int
	// DedupEntries, when positive, bounds a machine-fingerprint table
	// that prunes re-converged exploration states in either mode
	// (0 = off); symbolic fingerprints include the path condition. See
	// sched.Options.DedupEntries for the trade-offs.
	DedupEntries int
	// SolverSeed seeds the symbolic solver (symbolic mode only).
	SolverSeed int64
	// OnViolation, if non-nil, is invoked synchronously as each
	// violation is found, before exploration continues. Returning false
	// stops the analysis early; everything found so far stays in the
	// report. This is the streaming hook the public spectre package
	// builds on.
	OnViolation func(Violation) bool
	// Interrupt, if non-nil, is polled once per explored state.
	// Returning true aborts the analysis promptly with the partial
	// report and Report.Interrupted set — how context cancellation
	// reaches the explorers.
	Interrupt func() bool
	// Prune, if non-nil, supplies static pre-analysis verdicts (an
	// internal/taint Report) that let the engine collapse speculation
	// forks whose whole subtree is provably violation-free. Findings are
	// identical with and without hints; only States/Paths shrink.
	Prune sched.PruneHints
}

// The two bounds of the paper's evaluation procedure (§4.2.1).
const (
	// BoundNoHazards is the speculation bound used without
	// forwarding-hazard detection.
	BoundNoHazards = 250
	// BoundWithHazards is the reduced bound that keeps hazard-aware
	// analysis tractable.
	BoundWithHazards = 20
)

// Violation is a detected SCT violation.
type Violation struct {
	Obs      core.Observation
	Kind     sched.VariantKind
	Schedule core.Schedule // attacker directive schedule (both modes)
	Trace    core.Trace
	Model    map[string]uint64 // symbolic mode: a witness assignment
	PC       uint64
	// Sources are the speculation primitives (branches, unresolved
	// store addresses, in-flight returns) still pending when the leak
	// was detected — the fence-repair synthesis anchors.
	Sources []sched.Source
}

// String renders the violation.
func (v Violation) String() string {
	s := fmt.Sprintf("%s: %s", v.Kind, v.Obs)
	if len(v.Model) > 0 {
		s += fmt.Sprintf(" (witness %v)", v.Model)
	}
	return s
}

// Report aggregates an analysis run.
type Report struct {
	Violations []Violation
	States     int
	Paths      int
	Truncated  bool
	// Interrupted reports whether Options.Interrupt (or an OnViolation
	// callback returning false) cut the analysis short.
	Interrupted bool
	Mode        string
	// Workers is the number of exploration goroutines the run used.
	Workers int
	// DedupHits counts states pruned by fingerprint deduplication.
	DedupHits int
	// Solver carries the constraint engine's per-analysis counters in
	// symbolic mode; nil in concrete mode. Under parallel runs the
	// cache-hit/fresh-solve split depends on worker interleaving (the
	// results never do), so these are diagnostics, not part of the
	// deterministic result surface.
	Solver *symx.SolverStats
}

// SecretFree reports whether the program was found SCT-clean at the
// analyzed bound.
func (r Report) SecretFree() bool { return len(r.Violations) == 0 }

// Summary renders a one-line result.
func (r Report) Summary() string {
	if r.SecretFree() {
		return fmt.Sprintf("clean (%s mode, %d states, %d paths)", r.Mode, r.States, r.Paths)
	}
	return fmt.Sprintf("%d violation(s) (%s mode, %d states, %d paths); first: %s",
		len(r.Violations), r.Mode, r.States, r.Paths, r.Violations[0])
}

// violationOf lifts an engine violation into the detector's type.
func violationOf(v sched.Violation) Violation {
	return Violation{
		Obs:      v.Obs,
		Kind:     v.Kind,
		Schedule: v.Schedule,
		Trace:    v.Trace,
		Model:    v.Model,
		PC:       uint64(v.PC),
		Sources:  v.Sources,
	}
}

// Analyze runs the concrete-mode detector on a machine configuration.
func Analyze(m *core.Machine, opts Options) (Report, error) {
	sopts := sched.Options{
		Bound:          opts.Bound,
		ForwardHazards: opts.ForwardHazards,
		MaxStates:      opts.MaxStates,
		MaxRetired:     opts.MaxRetired,
		StopAtFirst:    opts.StopAtFirst,
		Workers:        opts.Workers,
		DedupEntries:   opts.DedupEntries,
		KeepSchedules:  true,
		Interrupt:      opts.Interrupt,
		Prune:          opts.Prune,
	}
	if opts.OnViolation != nil {
		sopts.OnViolation = func(v sched.Violation) bool {
			return opts.OnViolation(violationOf(v))
		}
	}
	e, err := sched.NewExplorer(sopts)
	if err != nil {
		return Report{}, err
	}
	res := e.Explore(m)
	rep := Report{
		States: res.States, Paths: res.Paths,
		Truncated: res.Truncated, Interrupted: res.Interrupted,
		Mode: "concrete", Workers: res.Workers, DedupHits: res.DedupHits,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, violationOf(v))
	}
	return rep, nil
}

// AnalyzeProcedure runs the paper's two-phase evaluation procedure
// (§4.2.1) on a machine: first without forwarding-hazard detection at
// BoundNoHazards; if clean, again with hazard detection at
// BoundWithHazards. The returned reports correspond to the two phases
// (the second is zero-valued if the first already flagged).
func AnalyzeProcedure(mk func() *core.Machine, opts Options) (phase1, phase2 Report, err error) {
	o1 := opts
	o1.Bound = BoundNoHazards
	o1.ForwardHazards = false
	phase1, err = Analyze(mk(), o1)
	if err != nil || !phase1.SecretFree() {
		return phase1, Report{}, err
	}
	o2 := opts
	o2.Bound = BoundWithHazards
	o2.ForwardHazards = true
	phase2, err = Analyze(mk(), o2)
	return phase1, phase2, err
}
