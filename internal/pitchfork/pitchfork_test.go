package pitchfork

import (
	"testing"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/sched"
	"pitchfork/internal/symx"
)

const (
	ra = isa.Reg(0)
	rb = isa.Reg(1)
	rc = isa.Reg(2)
	rd = isa.Reg(3)
)

func v1Machine() *core.Machine {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 4)
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	b.Region(0x40, mem.Pub(1), mem.Pub(2), mem.Pub(3), mem.Pub(4))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	m := core.New(b.MustBuild())
	m.Regs.Write(ra, mem.Pub(9))
	return m
}

func v4Machine() *core.Machine {
	b := isa.NewBuilder(1)
	b.Store(isa.ImmW(0), isa.ImmW(3), isa.R(ra))
	b.Load(rc, isa.ImmW(0x43))
	b.Load(rc, isa.ImmW(0x44), isa.R(rc))
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(0x5A))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	m := core.New(b.MustBuild())
	m.Regs.Write(ra, mem.Pub(0x40))
	return m
}

func TestAnalyzeConcreteV1(t *testing.T) {
	rep, err := Analyze(v1Machine(), Options{Bound: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("v1 gadget must be flagged")
	}
	if rep.Violations[0].Kind != sched.VariantV1 {
		t.Fatalf("kind = %v", rep.Violations[0].Kind)
	}
	if rep.Mode != "concrete" || rep.Summary() == "" {
		t.Fatal("report metadata")
	}
}

func TestAnalyzeProcedureTwoPhases(t *testing.T) {
	// Figure 1 gadget: flagged in phase 1 (no hazard detection needed).
	p1, p2, err := AnalyzeProcedure(v1Machine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1.SecretFree() {
		t.Fatal("phase 1 must flag the v1 gadget")
	}
	if p2.Mode != "" {
		t.Fatal("phase 2 must not run after a phase-1 finding")
	}

	// Figure 7 gadget: clean in phase 1, flagged only with forwarding
	// hazards — the paper's "f" annotation in Table 2.
	p1, p2, err = AnalyzeProcedure(v4Machine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.SecretFree() {
		t.Fatalf("phase 1 must be clean for the v4 gadget: %s", p1.Summary())
	}
	if p2.SecretFree() {
		t.Fatal("phase 2 must flag the v4 gadget")
	}
	if p2.Violations[0].Kind != sched.VariantV4 {
		t.Fatalf("kind = %v", p2.Violations[0].Kind)
	}
}

func TestAnalyzeRejectsBadBound(t *testing.T) {
	if _, err := Analyze(v1Machine(), Options{Bound: 0}); err == nil {
		t.Fatal("bound 0 must be rejected")
	}
	if _, err := AnalyzeSymbolic(NewSym(isa.NewProgram(1)), Options{Bound: 0}); err == nil {
		t.Fatal("symbolic bound 0 must be rejected")
	}
}

// kocherStyleProgram is the shape of Kocher case 1 with an
// attacker-controlled index: if (x < 4) y = B[A[x] * 2].
func kocherStyleProgram(masked bool) *isa.Program {
	b := isa.NewBuilder(1)
	if masked {
		// x &= 3 before the bounds check: the classic mask mitigation.
		b.Op(ra, isa.OpAnd, isa.R(ra), isa.ImmW(3))
	} else {
		b.Op(ra, isa.OpMov, isa.R(ra))
	}
	b.Br(isa.OpLt, []isa.Operand{isa.R(ra), isa.ImmW(4)}, 3, 7)
	b.Load(rb, isa.ImmW(0x100), isa.R(ra)) // 3: A[x]
	b.Op(rc, isa.OpMul, isa.R(rb), isa.ImmW(2))
	b.Load(rd, isa.ImmW(0x200), isa.R(rc)) // 5: B[A[x]*2]
	// A: 4 public words, then adjacent secrets.
	b.Region(0x100, mem.Pub(1), mem.Pub(2), mem.Pub(3), mem.Pub(4))
	b.Region(0x104, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	for i := mem.Word(0); i < 8; i++ {
		b.Data(0x200+i, mem.Pub(i))
	}
	return b.MustBuild()
}

func TestSymbolicFindsKocherStyleV1(t *testing.T) {
	sm := NewSym(kocherStyleProgram(false))
	sm.SetReg(ra, symx.NewVar("x", mem.Public))
	rep, err := AnalyzeSymbolic(sm, Options{Bound: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("symbolic mode must find the out-of-bounds x")
	}
	v := rep.Violations[0]
	if v.Kind != sched.VariantV1 {
		t.Fatalf("kind = %v", v.Kind)
	}
	// The witness assignment must be out of bounds.
	x, ok := v.Model["x"]
	if !ok {
		t.Fatalf("no witness for x in %v", v.Model)
	}
	if x < 4 {
		t.Fatalf("witness x = %d is in bounds", x)
	}
}

func TestSymbolicMaskedIndexIsClean(t *testing.T) {
	sm := NewSym(kocherStyleProgram(true))
	sm.SetReg(ra, symx.NewVar("x", mem.Public))
	rep, err := AnalyzeSymbolic(sm, Options{Bound: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SecretFree() {
		t.Fatalf("masked index must be clean, got %s", rep.Summary())
	}
	if rep.Paths == 0 {
		t.Fatal("no paths explored")
	}
}

func TestSymbolicSecretBranchFlagged(t *testing.T) {
	// if (k != 0) ... — branching on a secret leaks through the jump
	// observation even sequentially; this is what distinguishes the
	// C implementations from the FaCT ones in Table 2.
	b := isa.NewBuilder(1)
	b.Br(isa.OpNe, []isa.Operand{isa.R(ra), isa.ImmW(0)}, 2, 3)
	b.Op(rb, isa.OpMov, isa.ImmW(1))
	p := b.MustBuild()
	sm := NewSym(p)
	sm.SetReg(ra, symx.NewVar("k", mem.Secret))
	rep, err := AnalyzeSymbolic(sm, Options{Bound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("secret branch must be flagged")
	}
	if rep.Violations[0].Obs.Kind != core.OJump {
		t.Fatalf("expected a jump observation, got %s", rep.Violations[0].Obs)
	}
}

func TestSymbolicSelectIsConstantTimeControlFlow(t *testing.T) {
	// rb = select(k, 1, 2): no branch, so no jump observation; the
	// FaCT-style compilation of a secret branch. rb is tainted but
	// never leaves through an observation.
	b := isa.NewBuilder(1)
	b.Op(rb, isa.OpSelect, isa.R(ra), isa.ImmW(1), isa.ImmW(2))
	b.Store(isa.R(rb), isa.ImmW(0x50))
	b.Data(0x50, mem.Pub(0))
	p := b.MustBuild()
	sm := NewSym(p)
	sm.SetReg(ra, symx.NewVar("k", mem.Secret))
	rep, err := AnalyzeSymbolic(sm, Options{Bound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SecretFree() {
		t.Fatalf("select-based code must be clean, got %s", rep.Summary())
	}
}

func TestSymbolicV11StoreForward(t *testing.T) {
	// Figure 6 with a symbolic (out-of-bounds-capable) index and a
	// symbolic secret: the speculative store forwards the secret.
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 6)
	b.Store(isa.R(rb), isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x45))
	b.Load(rc, isa.ImmW(0x48), isa.R(rc))
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(4))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	b.Region(0x48, mem.Pub(9), mem.Pub(10), mem.Pub(11), mem.Pub(12))
	sm := NewSym(b.MustBuild())
	sm.SetReg(ra, symx.NewVar("x", mem.Public))
	sm.SetReg(rb, symx.NewVar("k", mem.Secret))
	rep, err := AnalyzeSymbolic(sm, Options{Bound: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("symbolic v1.1 gadget must be flagged")
	}
}

func TestSymbolicV4WithHazards(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Store(isa.ImmW(0), isa.ImmW(3), isa.R(ra))
	b.Load(rc, isa.ImmW(0x43))
	b.Load(rc, isa.ImmW(0x44), isa.R(rc))
	b.Region(0x40, mem.Sec(1), mem.Sec(2), mem.Sec(3), mem.Sec(0x5A))
	b.Region(0x44, mem.Pub(5), mem.Pub(6), mem.Pub(7), mem.Pub(8))
	mk := func() *SymMachine {
		sm := NewSym(b.MustBuild())
		sm.SetReg(ra, symx.CW(0x40))
		return sm
	}
	rep, err := AnalyzeSymbolic(mk(), Options{Bound: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SecretFree() {
		t.Fatal("v4 must need hazard exploration")
	}
	rep, err = AnalyzeSymbolic(mk(), Options{Bound: 20, ForwardHazards: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree() {
		t.Fatal("symbolic v4 gadget must be flagged with hazards on")
	}
	if rep.Violations[0].Kind != sched.VariantV4 {
		t.Fatalf("kind = %v", rep.Violations[0].Kind)
	}
}

func TestSymbolicFenceClean(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 6)
	b.Fence()
	b.Load(rb, isa.ImmW(0x100), isa.R(ra))
	b.Load(rc, isa.ImmW(0x200), isa.R(rb))
	b.Region(0x100, mem.Pub(1), mem.Pub(2), mem.Pub(3), mem.Pub(4))
	b.Region(0x104, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	b.Region(0x200, mem.Pub(0), mem.Pub(0))
	sm := NewSym(b.MustBuild())
	sm.SetReg(ra, symx.NewVar("x", mem.Public))
	rep, err := AnalyzeSymbolic(sm, Options{Bound: 20, ForwardHazards: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SecretFree() {
		t.Fatalf("fenced gadget must be clean, got %s", rep.Summary())
	}
}

func TestSymbolicCallRet(t *testing.T) {
	// Call/ret with a secret computed in the callee but never leaked.
	p := isa.NewProgram(1)
	p.Add(1, isa.Call(10, 2))
	p.Add(2, isa.Op(rb, isa.OpAdd, []isa.Operand{isa.R(ra), isa.ImmW(1)}, 3))
	p.Add(10, isa.Op(ra, isa.OpXor, []isa.Operand{isa.R(ra), isa.R(ra)}, 11))
	p.Add(11, isa.Ret())
	p.SetRegion(0x70, make([]mem.Value, 16))
	sm := NewSym(p)
	sm.SetReg(ra, symx.NewVar("k", mem.Secret))
	sm.SetReg(mem.RSP, symx.CW(0x7F))
	rep, err := AnalyzeSymbolic(sm, Options{Bound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SecretFree() {
		t.Fatalf("benign call/ret flagged: %s", rep.Summary())
	}
	if rep.Paths == 0 {
		t.Fatal("no paths completed")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Obs: core.ReadObs(0x48, mem.Secret), Kind: sched.VariantV1, Model: map[string]uint64{"x": 9}}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}
