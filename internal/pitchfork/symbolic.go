package pitchfork

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/sched"
	"pitchfork/internal/symx"
)

// SymMachine is the initial configuration for a symbolic analysis:
// registers and memory hold symbolic expressions; unconstrained
// attacker inputs and secrets are symx variables.
type SymMachine struct {
	Prog *isa.Program
	Regs map[isa.Reg]symx.Expr
	Mem  *symx.Memory
	PC   isa.Addr
}

// NewSym builds a symbolic initial configuration from a program,
// seeding memory with the (labeled, concrete) data image.
func NewSym(prog *isa.Program) *SymMachine {
	m := &SymMachine{
		Prog: prog,
		Regs: make(map[isa.Reg]symx.Expr),
		Mem:  symx.NewMemory(),
		PC:   prog.Entry,
	}
	for a, v := range prog.Data {
		m.Mem.Write(a, symx.C(v))
	}
	return m
}

// SetReg binds a register to an expression.
func (m *SymMachine) SetReg(r isa.Reg, e symx.Expr) *SymMachine {
	m.Regs[r] = e
	return m
}

// SetMem binds a memory cell to an expression.
func (m *SymMachine) SetMem(a mem.Word, e symx.Expr) *SymMachine {
	m.Mem.Write(a, e)
	return m
}

// symTransient mirrors the subset of transient instructions the
// symbolic executor handles (Table 1 minus aliasing prediction, like
// the original tool).
type symTransient struct {
	kind core.TKind
	dst  isa.Reg
	op   isa.Opcode
	args []isa.Operand

	val      symx.Expr // resolved value
	fromLoad bool
	dep      int
	dataAddr mem.Word
	pp       isa.Addr

	guess, tTrue, tFalse isa.Addr
	target               isa.Addr

	src       isa.Operand
	valKnown  bool
	sval      symx.Expr
	addrKnown bool
	saddr     mem.Word
	saddrL    mem.Label
}

func (t *symTransient) resolved() bool {
	switch t.kind {
	case core.TValue, core.TJump, core.TFence, core.TCall, core.TRet:
		return true
	case core.TStore:
		return t.valKnown && t.addrKnown
	}
	return false
}

func (t *symTransient) assigns(r isa.Reg) bool {
	switch t.kind {
	case core.TOp, core.TValue, core.TLoad:
		return t.dst == r
	}
	return false
}

// symState is one node of the symbolic exploration tree.
type symState struct {
	regs  map[isa.Reg]symx.Expr
	mem   *symx.Memory
	pc    isa.Addr
	buf   []*symTransient
	base  int
	rsb   *core.RSB
	pcond symx.PathCondition
	trace core.Trace
	// tracePP records, per trace entry, the program point of the
	// instruction that produced the observation (mirrors the concrete
	// explorer's attribution).
	tracePP []isa.Addr
	retired int
	pending map[int]bool
}

// observe appends observations attributed to the instruction at pp.
func (s *symState) observe(pp isa.Addr, obs ...core.Observation) {
	for _, o := range obs {
		s.trace = append(s.trace, o)
		s.tracePP = append(s.tracePP, pp)
	}
}

func (s *symState) clone() *symState {
	c := &symState{
		regs:    make(map[isa.Reg]symx.Expr, len(s.regs)),
		mem:     s.mem.Clone(),
		pc:      s.pc,
		buf:     make([]*symTransient, len(s.buf)),
		base:    s.base,
		rsb:     s.rsb.Clone(),
		pcond:   s.pcond, // shared immutable prefix
		trace:   append(core.Trace(nil), s.trace...),
		tracePP: append([]isa.Addr(nil), s.tracePP...),
		retired: s.retired,
		pending: make(map[int]bool, len(s.pending)),
	}
	for r, e := range s.regs {
		c.regs[r] = e
	}
	for i, t := range s.buf {
		cp := *t
		c.buf[i] = &cp
	}
	for k, v := range s.pending {
		c.pending[k] = v
	}
	return c
}

func (s *symState) min() int    { return s.base }
func (s *symState) max() int    { return s.base + len(s.buf) - 1 }
func (s *symState) empty() bool { return len(s.buf) == 0 }
func (s *symState) get(i int) (*symTransient, bool) {
	if i < s.base || i >= s.base+len(s.buf) {
		return nil, false
	}
	return s.buf[i-s.base], true
}

func (s *symState) append(t *symTransient) int {
	s.buf = append(s.buf, t)
	return s.base + len(s.buf) - 1
}

func (s *symState) truncateFrom(i int) {
	if i <= s.base {
		s.buf = s.buf[:0]
		return
	}
	if i <= s.base+len(s.buf) {
		s.buf = s.buf[:i-s.base]
	}
	s.rsb.Rollback(i)
	s.pending = make(map[int]bool)
}

func (s *symState) popMinN(k int) {
	s.buf = s.buf[k:]
	s.base += k
}

func (s *symState) fenceBefore(i int) bool {
	for j := s.base; j < i && j <= s.max(); j++ {
		if t, _ := s.get(j); t != nil && t.kind == core.TFence {
			return true
		}
	}
	return false
}

// resolveReg is the register resolve function lifted to expressions.
func (s *symState) resolveReg(i int, r isa.Reg) (symx.Expr, bool) {
	hi := s.max()
	if i-1 < hi {
		hi = i - 1
	}
	for j := hi; j >= s.base; j-- {
		t, _ := s.get(j)
		if t == nil || !t.assigns(r) {
			continue
		}
		switch t.kind {
		case core.TValue:
			return t.val, true
		default:
			return nil, false
		}
	}
	if e, ok := s.regs[r]; ok {
		return e, true
	}
	return symx.CW(0), true
}

func (s *symState) resolveOperand(i int, o isa.Operand) (symx.Expr, bool) {
	if !o.IsReg {
		return symx.C(o.Imm), true
	}
	return s.resolveReg(i, o.Reg)
}

func (s *symState) resolveArgs(i int, os []isa.Operand) ([]symx.Expr, bool) {
	out := make([]symx.Expr, len(os))
	for k, o := range os {
		e, ok := s.resolveOperand(i, o)
		if !ok {
			return nil, false
		}
		out[k] = e
	}
	return out, true
}

func addrExpr(args []symx.Expr) symx.Expr {
	return symx.Apply(isa.OpAdd, args...)
}

// symbolicAnalyzer drives the DT(n) strategy over symbolic states.
type symbolicAnalyzer struct {
	prog   *isa.Program
	opts   Options
	solver *symx.Solver
	concr  *symx.Concretizer
	rep    *Report
	// stopped is set when an OnViolation callback asks to stop.
	stopped bool
}

// AnalyzeSymbolic runs the symbolic-mode detector.
func AnalyzeSymbolic(m *SymMachine, opts Options) (Report, error) {
	if opts.Bound < 1 {
		return Report{}, fmt.Errorf("pitchfork: speculation bound must be positive, got %d", opts.Bound)
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = sched.DefaultMaxStates
	}
	if opts.MaxRetired == 0 {
		opts.MaxRetired = sched.DefaultMaxRetired
	}
	solver := symx.NewSolver(opts.SolverSeed + 1)
	a := &symbolicAnalyzer{
		prog:   m.Prog,
		opts:   opts,
		solver: solver,
		concr:  symx.NewConcretizer(solver),
		rep:    &Report{Mode: "symbolic", Workers: 1},
	}
	root := &symState{
		regs:    make(map[isa.Reg]symx.Expr, len(m.Regs)),
		mem:     m.Mem.Clone(),
		pc:      m.PC,
		base:    1,
		rsb:     core.NewRSB(core.RSBAttackerChoice),
		pending: make(map[int]bool),
	}
	for r, e := range m.Regs {
		root.regs[r] = e
	}
	stack := []*symState{root}
	for len(stack) > 0 {
		if a.rep.States >= opts.MaxStates {
			a.rep.Truncated = true
			break
		}
		if opts.Interrupt != nil && opts.Interrupt() {
			a.rep.Interrupted = true
			break
		}
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		a.rep.States++
		done, forks := a.advance(st)
		if done {
			a.rep.Paths++
			if a.stopped {
				a.rep.Interrupted = true
				break
			}
			if opts.StopAtFirst && len(a.rep.Violations) > 0 {
				break
			}
			continue
		}
		stack = append(stack, forks...)
	}
	return *a.rep, nil
}

func (a *symbolicAnalyzer) flag(st *symState, at int) {
	v := Violation{
		Obs:     st.trace[at],
		Trace:   append(core.Trace(nil), st.trace[:at+1]...),
		Kind:    a.classify(st),
		PC:      uint64(st.tracePP[at]),
		Sources: st.specSources(),
	}
	if env, ok := a.solver.Solve(st.pcond); ok {
		v.Model = make(map[string]uint64, len(env))
		for k, w := range env {
			v.Model[k] = w
		}
	}
	a.rep.Violations = append(a.rep.Violations, v)
	if a.opts.OnViolation != nil && !a.opts.OnViolation(v) {
		a.stopped = true
	}
}

// specSources mirrors the concrete explorer's speculation-source
// collection over the symbolic reorder buffer.
func (st *symState) specSources() []sched.Source {
	var out []sched.Source
	seen := make(map[sched.Source]bool)
	add := func(s sched.Source) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, t := range st.buf {
		switch t.kind {
		case core.TBr:
			add(sched.Source{Kind: sched.SrcBranch, PC: t.pp})
		case core.TStore:
			if !t.addrKnown {
				add(sched.Source{Kind: sched.SrcStore, PC: t.pp})
			}
		case core.TRet:
			add(sched.Source{Kind: sched.SrcRet, PC: t.pp})
		}
	}
	return out
}

func (a *symbolicAnalyzer) classify(st *symState) sched.VariantKind {
	brInFlight, staleWindow, fwdSecret := false, false, false
	for _, t := range st.buf {
		switch t.kind {
		case core.TBr:
			brInFlight = true
		case core.TStore:
			if !t.addrKnown {
				staleWindow = true
			}
		case core.TValue:
			if t.fromLoad && t.dep != core.NoDep && t.val != nil && t.val.Label().IsSecret() {
				fwdSecret = true
			}
		}
	}
	switch {
	case brInFlight && fwdSecret:
		return sched.VariantV11
	case brInFlight:
		return sched.VariantV1
	case staleWindow:
		return sched.VariantV4
	case st.empty():
		return sched.VariantSeq
	default:
		return sched.VariantSeq
	}
}

// advance performs one strategy decision; mirrors sched.Explorer.
func (a *symbolicAnalyzer) advance(st *symState) (bool, []*symState) {
	if i := st.trace.FirstSecret(); i >= 0 {
		a.flag(st, i)
		return true, nil
	}
	_, fetchable := a.prog.At(st.pc)
	if (st.empty() && !fetchable) || st.retired >= a.opts.MaxRetired {
		return true, nil
	}

	// Fetch phase.
	if len(st.buf) < a.opts.Bound && fetchable {
		in, _ := a.prog.At(st.pc)
		switch in.Kind {
		case isa.KBr:
			tArm, fArm := st, st.clone()
			tArm.fetchBranch(in, true)
			fArm.fetchBranch(in, false)
			return false, []*symState{tArm, fArm}
		case isa.KJmpi:
			if args, ok := st.resolveArgs(st.max()+1, in.Args); ok {
				target := addrExpr(args)
				if tv, ok := target.Concrete(); ok {
					st.append(&symTransient{kind: core.TJmpi, args: in.Args, guess: tv.W, pp: st.pc})
					st.pc = tv.W
					return false, []*symState{st}
				}
				// Symbolic indirect target: outside the tool's subset.
				return true, nil
			}
			// Operands pending: execute below first.
		case isa.KCall:
			i := st.append(&symTransient{kind: core.TCall, pp: st.pc})
			st.append(&symTransient{kind: core.TOp, dst: mem.RSP, op: isa.OpSucc, args: []isa.Operand{isa.R(mem.RSP)}, pp: st.pc})
			st.append(&symTransient{
				kind: core.TStore, src: isa.Imm(mem.Pub(in.RetPt)),
				valKnown: true, sval: symx.CW(in.RetPt),
				args: []isa.Operand{isa.R(mem.RSP)},
				pp:   st.pc,
			})
			st.rsb.Push(i, in.RetPt)
			st.pc = in.Callee
			return false, []*symState{st}
		case isa.KRet:
			target, ok := st.rsb.Top()
			if !ok {
				// Architectural prediction through the stack slot.
				target, ok = a.peekRet(st)
				if !ok {
					break // execute pending work first
				}
			}
			i := st.append(&symTransient{kind: core.TRet, pp: st.pc})
			st.append(&symTransient{kind: core.TLoad, dst: mem.RTMP, args: []isa.Operand{isa.R(mem.RSP)}, pp: st.pc})
			st.append(&symTransient{kind: core.TOp, dst: mem.RSP, op: isa.OpPred, args: []isa.Operand{isa.R(mem.RSP)}, pp: st.pc})
			st.append(&symTransient{kind: core.TJmpi, args: []isa.Operand{isa.R(mem.RTMP)}, guess: target, pp: st.pc})
			st.rsb.Pop(i)
			st.pc = target
			return false, []*symState{st}
		default:
			st.fetchSimple(in)
			return false, []*symState{st}
		}
	}

	// Execute phase: oldest actionable first.
	if forks, acted := a.executePhase(st); acted {
		return false, forks
	}

	// Force phase on the oldest instruction.
	i := st.min()
	t, ok := st.get(i)
	if !ok {
		return true, nil
	}
	if t.resolved() {
		if a.retire(st) {
			return false, []*symState{st}
		}
		// A call/ret marker retires only with its whole expansion
		// resolved: force the first unresolved member.
		for j := i + 1; j <= st.max(); j++ {
			u, ok := st.get(j)
			if !ok || u.resolved() {
				continue
			}
			return a.forceOne(st, j, u)
		}
		return true, nil
	}
	return a.forceOne(st, i, t)
}

// forceOne makes progress on an unresolved instruction regardless of
// the deferral rules; control-flow instructions may fork on symbolic
// conditions.
func (a *symbolicAnalyzer) forceOne(st *symState, i int, t *symTransient) (bool, []*symState) {
	switch t.kind {
	case core.TBr, core.TJmpi:
		return a.execControl(st, i)
	case core.TOp:
		if a.execOp(st, i) {
			return false, []*symState{st}
		}
	case core.TStore:
		if !t.valKnown {
			if a.execStoreValue(st, i) {
				return false, []*symState{st}
			}
			return true, nil
		}
		if a.execStoreAddr(st, i) {
			return false, []*symState{st}
		}
	case core.TLoad:
		if a.execLoad(st, i) {
			return false, []*symState{st}
		}
	}
	return true, nil
}

func (st *symState) fetchBranch(in isa.Instr, taken bool) {
	guess := in.False
	if taken {
		guess = in.True
	}
	st.append(&symTransient{kind: core.TBr, op: in.Op, args: in.Args, guess: guess, tTrue: in.True, tFalse: in.False, pp: st.pc})
	st.pc = guess
}

func (st *symState) fetchSimple(in isa.Instr) {
	switch in.Kind {
	case isa.KOp:
		st.append(&symTransient{kind: core.TOp, dst: in.Dst, op: in.Op, args: in.Args, pp: st.pc})
	case isa.KLoad:
		st.append(&symTransient{kind: core.TLoad, dst: in.Dst, args: in.Args, pp: st.pc})
	case isa.KStore:
		t := &symTransient{kind: core.TStore, src: in.Src, args: in.Args, pp: st.pc}
		if !in.Src.IsReg {
			t.valKnown = true
			t.sval = symx.C(in.Src.Imm)
		}
		st.append(t)
	case isa.KFence:
		st.append(&symTransient{kind: core.TFence, pp: st.pc})
	}
	st.pc = in.Next
}

func (a *symbolicAnalyzer) peekRet(st *symState) (isa.Addr, bool) {
	sp, ok := st.resolveReg(st.max()+1, mem.RSP)
	if !ok {
		return 0, false
	}
	sv, ok := sp.Concrete()
	if !ok {
		return 0, false
	}
	tv, ok := st.mem.Read(sv.W).Concrete()
	if !ok {
		return 0, false
	}
	return tv.W, true
}

func (a *symbolicAnalyzer) executePhase(st *symState) ([]*symState, bool) {
	for i := st.min(); i <= st.max(); i++ {
		t, _ := st.get(i)
		if st.fenceBefore(i) {
			break
		}
		switch t.kind {
		case core.TOp:
			if a.execOp(st, i) {
				return []*symState{st}, true
			}
		case core.TJmpi:
			// Eager, like the concrete explorer: opens the Fig. 10
			// stale-return window.
			if done, forks := a.execControl(st, i); !done {
				return forks, true
			}
		case core.TBr:
			continue // branches resolve in the second pass below
		case core.TStore:
			if !t.valKnown {
				if a.execStoreValue(st, i) {
					return []*symState{st}, true
				}
				continue
			}
			if !t.addrKnown && !a.opts.ForwardHazards {
				if a.execStoreAddr(st, i) {
					return []*symState{st}, true
				}
			}
			continue
		case core.TLoad:
			if forks, acted := a.loadFork(st, i); acted {
				return forks, true
			}
		}
	}
	// Second pass: resolve pending branches young-to-old, keeping the
	// oldest delayed (see the concrete explorer).
	oldest := oldestPendingBranchSym(st)
	for i := st.max(); i > oldest && oldest != 0; i-- {
		t, ok := st.get(i)
		if !ok || t.kind != core.TBr || st.fenceBefore(i) {
			continue
		}
		if done, forks := a.execControl(st, i); !done {
			return forks, true
		}
	}
	return nil, false
}

func (a *symbolicAnalyzer) loadFork(st *symState, i int) ([]*symState, bool) {
	var pendingStores []int
	if a.opts.ForwardHazards && !st.pending[i] {
		for j := st.min(); j < i; j++ {
			if s, ok := st.get(j); ok && s.kind == core.TStore && !s.addrKnown && s.valKnown {
				pendingStores = append(pendingStores, j)
			}
		}
	}
	if len(pendingStores) == 0 {
		if a.execLoad(st, i) {
			return []*symState{st}, true
		}
		return nil, false
	}
	var forks []*symState
	now := st.clone()
	now.pending[i] = true
	if a.execLoad(now, i) {
		forks = append(forks, now)
	}
	for _, j := range pendingStores {
		arm := st.clone()
		if a.execStoreAddr(arm, j) {
			forks = append(forks, arm)
		}
	}
	return forks, len(forks) > 0
}

func (a *symbolicAnalyzer) execOp(st *symState, i int) bool {
	t, _ := st.get(i)
	args, ok := st.resolveArgs(i, t.args)
	if !ok {
		return false
	}
	st.buf[i-st.base] = &symTransient{kind: core.TValue, dst: t.dst, val: symx.Apply(t.op, args...)}
	return true
}

// execControl resolves a delayed branch or indirect jump; symbolic
// conditions fork into both feasible worlds.
func (a *symbolicAnalyzer) execControl(st *symState, i int) (bool, []*symState) {
	t, _ := st.get(i)
	if t.kind == core.TJmpi {
		args, ok := st.resolveArgs(i, t.args)
		if !ok {
			return true, nil
		}
		tv, ok := addrExpr(args).Concrete()
		if !ok {
			return true, nil // symbolic indirect target: out of subset
		}
		a.settleControl(st, i, tv.W, addrExpr(args).Label())
		return false, []*symState{st}
	}
	args, ok := st.resolveArgs(i, t.args)
	if !ok {
		return true, nil
	}
	cond := symx.Apply(t.op, args...)
	if cv, ok := cond.Concrete(); ok {
		actual := t.tFalse
		if cv.W != 0 {
			actual = t.tTrue
		}
		a.settleControl(st, i, actual, cv.L)
		return false, []*symState{st}
	}
	// Input-dependent branch: fork on the condition's truth.
	var forks []*symState
	pcT := st.pcond.With(symx.Constraint{E: cond, Truthy: true})
	pcF := st.pcond.With(symx.Constraint{E: cond, Truthy: false})
	if a.solver.Feasible(pcT) {
		arm := st.clone()
		arm.pcond = pcT
		a.settleControl(arm, i, t.tTrue, cond.Label())
		forks = append(forks, arm)
	}
	if a.solver.Feasible(pcF) {
		arm := st.clone()
		arm.pcond = pcF
		a.settleControl(arm, i, t.tFalse, cond.Label())
		forks = append(forks, arm)
	}
	if len(forks) == 0 {
		return true, nil
	}
	return false, forks
}

// settleControl installs the resolved jump, rolling back on a wrong
// guess, and emits the jump observation with the condition's label.
func (a *symbolicAnalyzer) settleControl(st *symState, i int, actual isa.Addr, l mem.Label) {
	t, _ := st.get(i)
	pp := t.pp
	if actual == t.guess {
		st.buf[i-st.base] = &symTransient{kind: core.TJump, target: actual}
		st.observe(pp, core.JumpObs(actual, l))
		return
	}
	st.truncateFrom(i)
	st.append(&symTransient{kind: core.TJump, target: actual})
	st.pc = actual
	st.observe(pp, core.RollbackObs(), core.JumpObs(actual, l))
}

func (a *symbolicAnalyzer) execStoreValue(st *symState, i int) bool {
	t, _ := st.get(i)
	v, ok := st.resolveOperand(i, t.src)
	if !ok {
		return false
	}
	t.valKnown = true
	t.sval = v
	return true
}

func (a *symbolicAnalyzer) execStoreAddr(st *symState, i int) bool {
	t, _ := st.get(i)
	args, ok := st.resolveArgs(i, t.args)
	if !ok {
		return false
	}
	ae := addrExpr(args)
	aw, ok := a.concretizeStore(st, i, ae)
	if !ok {
		return false
	}
	if _, concrete := ae.Concrete(); !concrete {
		st.pcond = st.pcond.With(symx.Constraint{E: symx.Apply(isa.OpEq, ae, symx.CW(aw)), Truthy: true})
	}
	l := ae.Label()
	// Hazard scan over later resolved loads (store-execute-addr-*).
	hazardAt, restart := 0, isa.Addr(0)
	for k := i + 1; k <= st.max(); k++ {
		lv, _ := st.get(k)
		if lv == nil || lv.kind != core.TValue || !lv.fromLoad {
			continue
		}
		if (lv.dataAddr == aw && lv.dep < i) || (lv.dep == i && lv.dataAddr != aw) {
			hazardAt, restart = k, lv.pp
			break
		}
	}
	t.addrKnown = true
	t.saddr = aw
	t.saddrL = l
	if hazardAt == 0 {
		st.observe(t.pp, core.FwdObs(aw, l))
		return true
	}
	st.truncateFrom(hazardAt)
	st.pc = restart
	st.observe(t.pp, core.RollbackObs(), core.FwdObs(aw, l))
	return true
}

func (a *symbolicAnalyzer) execLoad(st *symState, i int) bool {
	t, _ := st.get(i)
	args, ok := st.resolveArgs(i, t.args)
	if !ok {
		return false
	}
	ae := addrExpr(args)
	aw, ok := a.concr.Concretize(ae, st.pcond, st.mem)
	if !ok {
		return false
	}
	if _, concrete := ae.Concrete(); !concrete {
		st.pcond = st.pcond.With(symx.Constraint{E: symx.Apply(isa.OpEq, ae, symx.CW(aw)), Truthy: true})
	}
	l := ae.Label()
	// Most recent prior store with a resolved matching address.
	for j := i - 1; j >= st.min(); j-- {
		s, _ := st.get(j)
		if s == nil || s.kind != core.TStore || !s.addrKnown || s.saddr != aw {
			continue
		}
		if !s.valKnown {
			return false // stall until the store's data resolves
		}
		st.buf[i-st.base] = &symTransient{
			kind: core.TValue, dst: t.dst, val: s.sval,
			fromLoad: true, dep: j, dataAddr: aw, pp: t.pp,
		}
		st.observe(t.pp, core.FwdObs(aw, l))
		return true
	}
	st.buf[i-st.base] = &symTransient{
		kind: core.TValue, dst: t.dst, val: st.mem.Read(aw),
		fromLoad: true, dep: core.NoDep, dataAddr: aw, pp: t.pp,
	}
	st.observe(t.pp, core.ReadObs(aw, l))
	return true
}

func (a *symbolicAnalyzer) retire(st *symState) bool {
	i := st.min()
	t, ok := st.get(i)
	if !ok {
		return false
	}
	switch t.kind {
	case core.TValue:
		st.regs[t.dst] = t.val
		st.popMinN(1)
		st.retired++
		return true
	case core.TJump, core.TFence:
		st.popMinN(1)
		st.retired++
		return true
	case core.TStore:
		st.mem.Write(t.saddr, t.sval)
		st.observe(t.pp, core.WriteObs(t.saddr, t.saddrL))
		st.popMinN(1)
		st.retired++
		return true
	case core.TCall:
		rsp, ok1 := st.get(i + 1)
		sr, ok2 := st.get(i + 2)
		if !ok1 || !ok2 || rsp.kind != core.TValue || sr.kind != core.TStore || !sr.resolved() {
			return false
		}
		st.regs[mem.RSP] = rsp.val
		st.mem.Write(sr.saddr, sr.sval)
		st.observe(t.pp, core.WriteObs(sr.saddr, sr.saddrL))
		st.popMinN(3)
		st.retired++
		return true
	case core.TRet:
		tmp, ok1 := st.get(i + 1)
		rsp, ok2 := st.get(i + 2)
		jmp, ok3 := st.get(i + 3)
		if !ok1 || !ok2 || !ok3 || tmp.kind != core.TValue || rsp.kind != core.TValue || jmp.kind != core.TJump {
			return false
		}
		st.regs[mem.RSP] = rsp.val
		st.popMinN(4)
		st.retired++
		return true
	}
	return false
}

// concretizeStore pins a store's symbolic address. The leak-hunting
// policy differs from loads: a store is interesting when it *aliases*
// a later load (the Spectre v1.1 shape of Figure 6), so the
// concretizer first tries the addresses of younger loads in the
// buffer, then secret cells, then any model — mirroring how angr's
// pluggable concretization strategies are used for targeted hunting.
func (a *symbolicAnalyzer) concretizeStore(st *symState, i int, ae symx.Expr) (mem.Word, bool) {
	if v, ok := ae.Concrete(); ok {
		return v.W, true
	}
	seen := make(map[mem.Word]bool)
	for k := i + 1; k <= st.max(); k++ {
		ld, _ := st.get(k)
		if ld == nil || ld.kind != core.TLoad {
			continue
		}
		largs, ok := st.resolveArgs(k, ld.args)
		if !ok {
			continue
		}
		lv, ok := addrExpr(largs).Concrete()
		if !ok || seen[lv.W] {
			continue
		}
		seen[lv.W] = true
		if _, ok := a.solver.SolveWith(st.pcond, ae, lv.W); ok {
			return lv.W, true
		}
	}
	return a.concr.Concretize(ae, st.pcond, st.mem)
}

// oldestPendingBranchSym mirrors the concrete explorer's rule: only
// the oldest unresolved branch is delayed.
func oldestPendingBranchSym(st *symState) int {
	for j := st.min(); j <= st.max(); j++ {
		if t, ok := st.get(j); ok && t.kind == core.TBr {
			return j
		}
	}
	return 0
}
