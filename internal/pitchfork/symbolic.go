// The symbolic value domain of the unified speculation engine.
//
// Symbolic analysis no longer carries its own fetch/execute/retire
// exploration loop: internal/sched's domain-parameterized engine
// drives the §4.1 worst-case schedule strategy, and this file only
// implements the sched.Machine contract over symbolic state — labeled
// expressions in registers and memory, path conditions from resolved
// input-dependent branches, and angr-style leak-hunting address
// concretization (§4.2). The engine's work-stealing pool, fingerprint
// dedup, budgets, and deterministic violation merging therefore apply
// to symbolic runs exactly as to concrete ones.
//
// Like the original tool, the symbolic domain exercises a subset of
// the semantics: conditional-branch speculation and store-forwarding
// variants (Spectre v1, v1.1, v4), with indirect jumps and returns
// followed architecturally. An input-dependent branch forks the
// exploration into every feasible world (a domain-level fork the
// engine handles uniformly); a symbolic indirect-jump target ends the
// path, as it is outside the modeled subset.
package pitchfork

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/sched"
	"pitchfork/internal/symx"
)

// SymMachine is the initial configuration for a symbolic analysis:
// registers and memory hold symbolic expressions; unconstrained
// attacker inputs and secrets are symx variables.
type SymMachine struct {
	Prog *isa.Program
	Regs map[isa.Reg]symx.Expr
	Mem  *symx.Memory
	PC   isa.Addr
}

// NewSym builds a symbolic initial configuration from a program,
// seeding memory with the (labeled, concrete) data image.
func NewSym(prog *isa.Program) *SymMachine {
	m := &SymMachine{
		Prog: prog,
		Regs: make(map[isa.Reg]symx.Expr),
		Mem:  symx.NewMemory(),
		PC:   prog.Entry,
	}
	for a, v := range prog.Data {
		m.Mem.Write(a, symx.C(v))
	}
	return m
}

// SetReg binds a register to an expression.
func (m *SymMachine) SetReg(r isa.Reg, e symx.Expr) *SymMachine {
	m.Regs[r] = e
	return m
}

// SetMem binds a memory cell to an expression.
func (m *SymMachine) SetMem(a mem.Word, e symx.Expr) *SymMachine {
	m.Mem.Write(a, e)
	return m
}

// symStall reports a non-applicable directive; the engine treats any
// step error as a stall and ends (or redirects) the path.
func symStall(format string, args ...any) error {
	return fmt.Errorf("pitchfork: symbolic stall: "+format, args...)
}

// symTransient mirrors the subset of transient instructions the
// symbolic domain handles (Table 1 minus aliasing prediction, like
// the original tool).
type symTransient struct {
	kind core.TKind
	dst  isa.Reg
	op   isa.Opcode
	args []isa.Operand

	val      symx.Expr // resolved value
	fromLoad bool
	dep      int
	dataAddr mem.Word
	pp       isa.Addr

	guess, tTrue, tFalse isa.Addr
	target               isa.Addr

	src       isa.Operand
	valKnown  bool
	sval      symx.Expr
	addrKnown bool
	saddr     mem.Word
	saddrL    mem.Label
}

func (t *symTransient) resolved() bool {
	switch t.kind {
	case core.TValue, core.TJump, core.TFence, core.TCall, core.TRet:
		return true
	case core.TStore:
		return t.valKnown && t.addrKnown
	}
	return false
}

func (t *symTransient) assigns(r isa.Reg) bool {
	switch t.kind {
	case core.TOp, core.TValue, core.TLoad:
		return t.dst == r
	}
	return false
}

// symMachine is the symbolic domain: one speculative machine
// configuration over expressions, implementing sched.Machine. The
// solver and concretizer are shared across clones — they are
// stateless per query (deterministically self-seeding), so concurrent
// exploration workers may use them without coordination.
//
// The configuration is copy-on-write end to end: registers and memory
// are overlay chains (symx.RegFile / symx.Memory), the RSB journal
// shares its tail, and the reorder buffer shares its backing slice and
// transients with clones — so Clone is O(1) and each fork pays only
// for what it subsequently changes (mirroring the concrete domain).
type symMachine struct {
	prog    *isa.Program
	regs    *symx.RegFile
	mem     *symx.Memory
	pc      isa.Addr
	buf     []*symTransient
	base    int
	rsb     *core.RSB
	pcond   symx.PathCondition
	retired int

	// bufShared marks the buffer's backing array as possibly aliased
	// by a clone (the next array write copies it); bufPrivateFrom is
	// the lowest buffer index whose transient is exclusively owned —
	// entries below it are copied by edit before in-place mutation.
	bufShared      bool
	bufPrivateFrom int

	solver *symx.Solver
	concr  *symx.Concretizer

	// succ is the single-successor scratch self() returns, so
	// deterministic steps stay allocation-free (see sched.Machine.Step's
	// validity contract).
	succ [1]sched.Successor

	// argScratch is the operand-resolution scratch resolveArgs reuses
	// across steps; never shared (Clone leaves it nil) and never
	// retained (applyArgs copies when an expression would keep it).
	argScratch []symx.Expr
}

// newSymMachine lowers an initial configuration into the domain.
func newSymMachine(m *SymMachine, solverSeed int64) *symMachine {
	solver := symx.NewSolver(solverSeed + 1)
	s := &symMachine{
		prog:           m.Prog,
		regs:           symx.NewRegFile(),
		mem:            m.Mem.Clone(),
		pc:             m.PC,
		base:           1,
		bufPrivateFrom: 1,
		rsb:            core.NewRSB(core.RSBAttackerChoice),
		solver:         solver,
		concr:          symx.NewConcretizer(solver),
	}
	for r, e := range m.Regs {
		s.regs.Write(r, e)
	}
	return s
}

// Clone implements sched.Machine in O(1). Expressions are immutable
// and shared; registers, memory, RSB, and the reorder buffer fork
// copy-on-write; the path-condition prefix is shared (With copies on
// extension); solver and concretizer are shared by design.
func (s *symMachine) Clone() sched.Machine {
	s.bufShared = true
	s.bufPrivateFrom = s.base + len(s.buf)
	return &symMachine{
		prog:           s.prog,
		regs:           s.regs.Clone(),
		mem:            s.mem.Clone(),
		pc:             s.pc,
		buf:            s.buf,
		base:           s.base,
		bufShared:      true,
		bufPrivateFrom: s.bufPrivateFrom,
		rsb:            s.rsb.Clone(),
		pcond:          s.pcond,
		retired:        s.retired,
		solver:         s.solver,
		concr:          s.concr,
	}
}

// ownBuf re-owns the buffer's backing array before a write when it may
// be shared with a clone; only the pointer slice is copied.
func (s *symMachine) ownBuf() {
	if !s.bufShared {
		return
	}
	items := make([]*symTransient, len(s.buf), len(s.buf)+8)
	copy(items, s.buf)
	s.buf = items
	s.bufShared = false
}

// setBuf replaces the entry at buffer index i.
func (s *symMachine) setBuf(i int, t *symTransient) {
	s.ownBuf()
	s.buf[i-s.base] = t
}

// edit returns the entry at i for in-place mutation, copying it first
// if it may still be shared with a clone.
func (s *symMachine) edit(i int) *symTransient {
	s.ownBuf()
	if i >= s.bufPrivateFrom {
		return s.buf[i-s.base]
	}
	cp := *s.buf[i-s.base]
	s.buf[i-s.base] = &cp
	return &cp
}

// ---------------------------------------------------------------------
// Shape accessors (sched.Machine).
// ---------------------------------------------------------------------

func (s *symMachine) PC() isa.Addr { return s.pc }

func (s *symMachine) Instr() (isa.Instr, bool) { return s.prog.At(s.pc) }

func (s *symMachine) RetiredCount() int { return s.retired }

func (s *symMachine) BufLen() int { return len(s.buf) }

func (s *symMachine) BufMin() int { return s.base }

func (s *symMachine) BufMax() int { return s.base + len(s.buf) - 1 }

func (s *symMachine) get(i int) (*symTransient, bool) {
	if i < s.base || i >= s.base+len(s.buf) {
		return nil, false
	}
	return s.buf[i-s.base], true
}

func (s *symMachine) append(t *symTransient) int {
	s.ownBuf()
	s.buf = append(s.buf, t)
	return s.base + len(s.buf) - 1
}

// truncateFrom implements buf[j : j < i] plus the RSB rollback the
// misspeculation rules pair it with.
func (s *symMachine) truncateFrom(i int) {
	if i <= s.base {
		s.buf = s.buf[:0]
	} else if i <= s.base+len(s.buf) {
		s.buf = s.buf[:i-s.base]
	}
	s.rsb.Rollback(i)
}

func (s *symMachine) popMinN(k int) {
	s.buf = s.buf[k:]
	s.base += k
}

func (s *symMachine) View(i int) (sched.TransientView, bool) {
	t, ok := s.get(i)
	if !ok {
		return sched.TransientView{}, false
	}
	return sched.TransientView{
		Kind:      t.kind,
		Resolved:  t.resolved(),
		ValKnown:  t.valKnown,
		AddrKnown: t.addrKnown,
		PP:        t.pp,
		FwdSecret: t.kind == core.TValue && t.fromLoad && t.dep != core.NoDep && t.val != nil && t.val.Label().IsSecret(),
	}, true
}

func (s *symMachine) FenceBefore(i int) bool {
	for j := s.base; j < i && j <= s.BufMax(); j++ {
		if t, _ := s.get(j); t != nil && t.kind == core.TFence {
			return true
		}
	}
	return false
}

func (s *symMachine) RSBTop() (isa.Addr, bool) { return s.rsb.Top() }

// PeekJmpi resolves an indirect jump's architectural target; a target
// that stays symbolic is outside the modeled subset, so ok is false
// and the engine falls through to draining pending work.
func (s *symMachine) PeekJmpi(in isa.Instr) (isa.Addr, bool) {
	args, ok := s.resolveArgs(s.BufMax()+1, in.Args)
	if !ok {
		return 0, false
	}
	tv, ok := addrExpr(args).Concrete()
	if !ok {
		return 0, false
	}
	return tv.W, true
}

// PeekRet predicts through the in-memory return address when the RSB
// is empty, like the concrete machine.
func (s *symMachine) PeekRet() (isa.Addr, bool) {
	sp, ok := s.resolveReg(s.BufMax()+1, mem.RSP)
	if !ok {
		return 0, false
	}
	sv, ok := sp.Concrete()
	if !ok {
		return 0, false
	}
	tv, ok := s.mem.Read(sv.W).Concrete()
	if !ok {
		return 0, false
	}
	return tv.W, true
}

// Witness solves the path condition for a satisfying assignment of
// the symbolic inputs — the model each violation carries.
func (s *symMachine) Witness() map[string]uint64 {
	env, ok := s.solver.Solve(s.pcond)
	if !ok {
		return nil
	}
	out := make(map[string]uint64, len(env))
	for k, w := range env {
		out[k] = uint64(w)
	}
	return out
}

// ---------------------------------------------------------------------
// Register/operand resolution over the speculative buffer.
// ---------------------------------------------------------------------

// resolveReg is the register resolve function (Fig. 3) lifted to
// expressions.
func (s *symMachine) resolveReg(i int, r isa.Reg) (symx.Expr, bool) {
	hi := s.BufMax()
	if i-1 < hi {
		hi = i - 1
	}
	for j := hi; j >= s.base; j-- {
		t, _ := s.get(j)
		if t == nil || !t.assigns(r) {
			continue
		}
		switch t.kind {
		case core.TValue:
			return t.val, true
		default:
			return nil, false
		}
	}
	if e, ok := s.regs.Read(r); ok {
		return e, true
	}
	// The canonical zero expression: boxing a fresh Const here made
	// every unset-register resolve an allocation (resolveReg is on the
	// operand-resolution hot path alongside resolveArgs).
	return symx.Zero, true
}

func (s *symMachine) resolveOperand(i int, o isa.Operand) (symx.Expr, bool) {
	if !o.IsReg {
		return symx.C(o.Imm), true
	}
	return s.resolveReg(i, o.Reg)
}

// resolveArgs resolves an operand list into the machine's scratch
// buffer — the engine's hottest allocation site before it was pooled.
// The returned slice is valid until the next resolveArgs call on this
// machine; callers that build an expression which may retain it must
// go through applyArgs.
func (s *symMachine) resolveArgs(i int, os []isa.Operand) ([]symx.Expr, bool) {
	if cap(s.argScratch) < len(os) {
		s.argScratch = make([]symx.Expr, len(os))
	}
	out := s.argScratch[:len(os)]
	for k, o := range os {
		e, ok := s.resolveOperand(i, o)
		if !ok {
			return nil, false
		}
		out[k] = e
	}
	return out, true
}

// applyArgs is symx.Apply for scratch-backed argument slices: Apply's
// default (unsimplified) path keeps the caller's slice as Op.Args, so
// when the result still aliases args — detected by element pointer
// identity — the slice is copied out of the scratch before the
// expression escapes into long-lived state (transients, path
// conditions). Simplified results never alias and cost nothing extra.
func (s *symMachine) applyArgs(op isa.Opcode, args []symx.Expr) symx.Expr {
	e := symx.Apply(op, args...)
	if o, ok := e.(symx.Op); ok && len(args) > 0 && len(o.Args) == len(args) && &o.Args[0] == &args[0] {
		fresh := make([]symx.Expr, len(args))
		copy(fresh, args)
		o.Args = fresh
		return o
	}
	return e
}

// addrExpr needs no retention copy: symx.Apply's OpAdd simplification
// always rebuilds the operand list it keeps.
func addrExpr(args []symx.Expr) symx.Expr {
	return symx.Apply(isa.OpAdd, args...)
}

// ---------------------------------------------------------------------
// Directive application (sched.Machine.Step).
// ---------------------------------------------------------------------

// self wraps the in-place-mutated receiver as the single successor,
// reusing the machine's scratch slot.
func (s *symMachine) self(d core.Directive, obs ...core.Observation) ([]sched.Successor, error) {
	s.succ[0] = sched.Successor{M: s, D: d, Obs: obs}
	return s.succ[:], nil
}

// Step implements sched.Machine: one directive of the speculative
// semantics over symbolic state. Deterministic steps mutate the
// receiver; an input-dependent branch resolution returns one cloned
// successor per feasible world.
func (s *symMachine) Step(d core.Directive) ([]sched.Successor, error) {
	switch d.Kind {
	case core.DFetch, core.DFetchGuess, core.DFetchTarget:
		return s.stepFetch(d)
	case core.DExecute:
		return s.stepExecute(d)
	case core.DExecValue:
		return s.stepExecValue(d)
	case core.DExecAddr:
		return s.stepExecAddr(d)
	case core.DRetire:
		return s.stepRetire(d)
	}
	return nil, symStall("directive %q not in the symbolic subset", d)
}

func (s *symMachine) stepFetch(d core.Directive) ([]sched.Successor, error) {
	in, ok := s.prog.At(s.pc)
	if !ok {
		return nil, symStall("nothing to fetch at halt point %d", s.pc)
	}
	switch in.Kind {
	case isa.KOp:
		if d.Kind != core.DFetch {
			return nil, symStall("%s requires a plain fetch", in.Kind)
		}
		s.append(&symTransient{kind: core.TOp, dst: in.Dst, op: in.Op, args: in.Args, pp: s.pc})
		s.pc = in.Next
		return s.self(d)
	case isa.KLoad:
		if d.Kind != core.DFetch {
			return nil, symStall("%s requires a plain fetch", in.Kind)
		}
		s.append(&symTransient{kind: core.TLoad, dst: in.Dst, args: in.Args, pp: s.pc})
		s.pc = in.Next
		return s.self(d)
	case isa.KStore:
		if d.Kind != core.DFetch {
			return nil, symStall("%s requires a plain fetch", in.Kind)
		}
		t := &symTransient{kind: core.TStore, src: in.Src, args: in.Args, pp: s.pc}
		if !in.Src.IsReg {
			t.valKnown = true
			t.sval = symx.C(in.Src.Imm)
		}
		s.append(t)
		s.pc = in.Next
		return s.self(d)
	case isa.KFence:
		if d.Kind != core.DFetch {
			return nil, symStall("%s requires a plain fetch", in.Kind)
		}
		s.append(&symTransient{kind: core.TFence, pp: s.pc})
		s.pc = in.Next
		return s.self(d)

	case isa.KBr:
		if d.Kind != core.DFetchGuess {
			return nil, symStall("br requires fetch: true/false")
		}
		guess := in.False
		if d.Taken {
			guess = in.True
		}
		s.append(&symTransient{kind: core.TBr, op: in.Op, args: in.Args, guess: guess, tTrue: in.True, tFalse: in.False, pp: s.pc})
		s.pc = guess
		return s.self(d)

	case isa.KJmpi:
		if d.Kind != core.DFetchTarget {
			return nil, symStall("jmpi requires fetch: n")
		}
		s.append(&symTransient{kind: core.TJmpi, args: in.Args, guess: d.Target, pp: s.pc})
		s.pc = d.Target
		return s.self(d)

	case isa.KCall:
		if d.Kind != core.DFetch {
			return nil, symStall("call requires a plain fetch")
		}
		i := s.append(&symTransient{kind: core.TCall, pp: s.pc})
		s.append(&symTransient{kind: core.TOp, dst: mem.RSP, op: isa.OpSucc, args: []isa.Operand{isa.R(mem.RSP)}, pp: s.pc})
		s.append(&symTransient{
			kind: core.TStore, src: isa.Imm(mem.Pub(in.RetPt)),
			valKnown: true, sval: symx.CW(in.RetPt),
			args: []isa.Operand{isa.R(mem.RSP)},
			pp:   s.pc,
		})
		s.rsb.Push(i, in.RetPt)
		s.pc = in.Callee
		return s.self(d)

	case isa.KRet:
		target, haveTop := s.rsb.Top()
		if haveTop {
			if d.Kind != core.DFetch {
				return nil, symStall("ret with non-empty RSB requires a plain fetch")
			}
		} else {
			if d.Kind != core.DFetchTarget {
				return nil, symStall("ret with empty RSB requires fetch: n")
			}
			target = d.Target
		}
		retPt := s.pc
		i := s.append(&symTransient{kind: core.TRet, pp: retPt})
		s.append(&symTransient{kind: core.TLoad, dst: mem.RTMP, args: []isa.Operand{isa.R(mem.RSP)}, pp: retPt})
		s.append(&symTransient{kind: core.TOp, dst: mem.RSP, op: isa.OpPred, args: []isa.Operand{isa.R(mem.RSP)}, pp: retPt})
		s.append(&symTransient{kind: core.TJmpi, args: []isa.Operand{isa.R(mem.RTMP)}, guess: target, pp: retPt})
		s.rsb.Pop(i)
		s.pc = target
		return s.self(d)
	}
	return nil, symStall("unfetchable instruction kind %v", in.Kind)
}

func (s *symMachine) stepExecute(d core.Directive) ([]sched.Successor, error) {
	t, ok := s.get(d.I)
	if !ok {
		return nil, symStall("index %d not in buffer [%d,%d]", d.I, s.BufMin(), s.BufMax())
	}
	if s.FenceBefore(d.I) {
		return nil, symStall("fence pending before index %d", d.I)
	}
	switch t.kind {
	case core.TOp:
		return s.execOp(d, t)
	case core.TBr:
		return s.execBranch(d, t)
	case core.TJmpi:
		return s.execJmpi(d, t)
	case core.TLoad:
		return s.execLoad(d, t)
	}
	return nil, symStall("index %d has no symbolic execute rule", d.I)
}

func (s *symMachine) execOp(d core.Directive, t *symTransient) ([]sched.Successor, error) {
	args, ok := s.resolveArgs(d.I, t.args)
	if !ok {
		return nil, symStall("operands unresolved at %d", d.I)
	}
	s.setBuf(d.I, &symTransient{kind: core.TValue, dst: t.dst, val: s.applyArgs(t.op, args)})
	return s.self(d)
}

// execBranch resolves a delayed conditional branch. A concrete
// condition settles like the concrete machine; an input-dependent one
// forks into each feasible world, extending the path condition and
// recording the arm in the directive's Arm field so every completed
// path keeps a distinct (and distinctly rendered) schedule.
func (s *symMachine) execBranch(d core.Directive, t *symTransient) ([]sched.Successor, error) {
	args, ok := s.resolveArgs(d.I, t.args)
	if !ok {
		return nil, symStall("branch condition unresolved")
	}
	cond := s.applyArgs(t.op, args)
	if cv, ok := cond.Concrete(); ok {
		actual := t.tFalse
		if cv.W != 0 {
			actual = t.tTrue
		}
		return []sched.Successor{{M: s, D: d, Obs: s.settleControl(d.I, actual, cv.L)}}, nil
	}
	// Plan the feasible worlds before touching any state, then reuse
	// the receiver for the last arm (cloning only N-1 times).
	type armPlan struct {
		taken bool
		pcond symx.PathCondition
	}
	var plans []armPlan
	for _, taken := range []bool{true, false} {
		pc := s.pcond.With(symx.Constraint{E: cond, Truthy: taken})
		if s.solver.Feasible(pc) {
			plans = append(plans, armPlan{taken: taken, pcond: pc})
		}
	}
	if len(plans) == 0 {
		return nil, symStall("branch condition infeasible in both worlds")
	}
	succs := make([]sched.Successor, len(plans))
	for k, p := range plans {
		arm := s
		if k < len(plans)-1 {
			arm = s.Clone().(*symMachine)
		}
		arm.pcond = p.pcond
		actual := t.tFalse
		ad := d
		ad.Arm = core.ArmNotTaken
		if p.taken {
			actual = t.tTrue
			ad.Arm = core.ArmTaken
		}
		succs[k] = sched.Successor{M: arm, D: ad, Obs: arm.settleControl(d.I, actual, cond.Label())}
	}
	return succs, nil
}

func (s *symMachine) execJmpi(d core.Directive, t *symTransient) ([]sched.Successor, error) {
	args, ok := s.resolveArgs(d.I, t.args)
	if !ok {
		return nil, symStall("jump target operands unresolved")
	}
	ae := addrExpr(args)
	tv, ok := ae.Concrete()
	if !ok {
		return nil, symStall("symbolic indirect target: outside the modeled subset")
	}
	return []sched.Successor{{M: s, D: d, Obs: s.settleControl(d.I, tv.W, ae.Label())}}, nil
}

// settleControl installs the resolved jump at index i, rolling back on
// a wrong guess, and returns the jump observation with the deciding
// expression's label.
func (s *symMachine) settleControl(i int, actual isa.Addr, l mem.Label) []core.Observation {
	t, _ := s.get(i)
	if actual == t.guess {
		s.setBuf(i, &symTransient{kind: core.TJump, target: actual})
		return []core.Observation{core.JumpObs(actual, l)}
	}
	s.truncateFrom(i)
	s.append(&symTransient{kind: core.TJump, target: actual})
	s.pc = actual
	return []core.Observation{core.RollbackObs(), core.JumpObs(actual, l)}
}

func (s *symMachine) execLoad(d core.Directive, t *symTransient) ([]sched.Successor, error) {
	args, ok := s.resolveArgs(d.I, t.args)
	if !ok {
		return nil, symStall("load address operands unresolved")
	}
	ae := addrExpr(args)
	aw, ok := s.concr.Concretize(ae, s.pcond, s.mem)
	if !ok {
		return nil, symStall("load address concretization failed")
	}
	// Most recent prior store with a resolved matching address decides
	// forwarding; its data must be resolved before any state mutates.
	fwdFrom := core.NoDep
	var fwdVal symx.Expr
	for j := d.I - 1; j >= s.base; j-- {
		st, _ := s.get(j)
		if st == nil || st.kind != core.TStore || !st.addrKnown || st.saddr != aw {
			continue
		}
		if !st.valKnown {
			return nil, symStall("matching store at %d has unresolved data", j)
		}
		fwdFrom, fwdVal = j, st.sval
		break
	}
	if _, concrete := ae.Concrete(); !concrete {
		s.pcond = s.pcond.With(symx.Constraint{E: symx.Apply(isa.OpEq, ae, symx.CW(aw)), Truthy: true})
	}
	l := ae.Label()
	if fwdFrom != core.NoDep {
		// load-execute-forward
		s.setBuf(d.I, &symTransient{
			kind: core.TValue, dst: t.dst, val: fwdVal,
			fromLoad: true, dep: fwdFrom, dataAddr: aw, pp: t.pp,
		})
		return s.self(d, core.FwdObs(aw, l))
	}
	// load-execute-nodep
	s.setBuf(d.I, &symTransient{
		kind: core.TValue, dst: t.dst, val: s.mem.Read(aw),
		fromLoad: true, dep: core.NoDep, dataAddr: aw, pp: t.pp,
	})
	return s.self(d, core.ReadObs(aw, l))
}

func (s *symMachine) stepExecValue(d core.Directive) ([]sched.Successor, error) {
	t, ok := s.get(d.I)
	if !ok || t.kind != core.TStore {
		return nil, symStall("execute:value needs a store at %d", d.I)
	}
	if s.FenceBefore(d.I) {
		return nil, symStall("fence pending before index %d", d.I)
	}
	if t.valKnown {
		return nil, symStall("store value already resolved")
	}
	v, ok := s.resolveOperand(d.I, t.src)
	if !ok {
		return nil, symStall("store data operand unresolved")
	}
	// store-execute-value
	t = s.edit(d.I)
	t.valKnown = true
	t.sval = v
	return s.self(d)
}

func (s *symMachine) stepExecAddr(d core.Directive) ([]sched.Successor, error) {
	t, ok := s.get(d.I)
	if !ok || t.kind != core.TStore {
		return nil, symStall("execute:addr needs a store at %d", d.I)
	}
	if s.FenceBefore(d.I) {
		return nil, symStall("fence pending before index %d", d.I)
	}
	if t.addrKnown {
		return nil, symStall("store address already resolved")
	}
	args, ok := s.resolveArgs(d.I, t.args)
	if !ok {
		return nil, symStall("store address operands unresolved")
	}
	ae := addrExpr(args)
	aw, ok := s.concretizeStore(d.I, ae)
	if !ok {
		return nil, symStall("store address concretization failed")
	}
	if _, concrete := ae.Concrete(); !concrete {
		s.pcond = s.pcond.With(symx.Constraint{E: symx.Apply(isa.OpEq, ae, symx.CW(aw)), Truthy: true})
	}
	l := ae.Label()
	// Forwarding-correctness check over all later resolved loads
	// (store-execute-addr-*): a hazard is the earliest k > i with
	// (ak = a ∧ jk < i) ∨ (jk = i ∧ ak ≠ a).
	hazardAt, restart := 0, isa.Addr(0)
	for k := d.I + 1; k <= s.BufMax(); k++ {
		lv, _ := s.get(k)
		if lv == nil || lv.kind != core.TValue || !lv.fromLoad {
			continue
		}
		if (lv.dataAddr == aw && lv.dep < d.I) || (lv.dep == d.I && lv.dataAddr != aw) {
			hazardAt, restart = k, lv.pp
			break
		}
	}
	t = s.edit(d.I)
	t.addrKnown = true
	t.saddr = aw
	t.saddrL = l
	if hazardAt == 0 {
		// store-execute-addr-ok
		return s.self(d, core.FwdObs(aw, l))
	}
	// store-execute-addr-hazard: restart at the stale load's program
	// point, discarding it and everything younger.
	s.truncateFrom(hazardAt)
	s.pc = restart
	return s.self(d, core.RollbackObs(), core.FwdObs(aw, l))
}

func (s *symMachine) stepRetire(d core.Directive) ([]sched.Successor, error) {
	i := s.BufMin()
	t, ok := s.get(i)
	if !ok {
		return nil, symStall("empty reorder buffer")
	}
	switch t.kind {
	case core.TValue:
		s.regs.Write(t.dst, t.val)
		s.popMinN(1)
		s.retired++
		return s.self(d)
	case core.TJump, core.TFence:
		s.popMinN(1)
		s.retired++
		return s.self(d)
	case core.TStore:
		if !t.valKnown || !t.addrKnown {
			return nil, symStall("store not fully resolved")
		}
		s.mem.Write(t.saddr, t.sval)
		s.popMinN(1)
		s.retired++
		return s.self(d, core.WriteObs(t.saddr, t.saddrL))
	case core.TCall:
		rsp, ok1 := s.get(i + 1)
		st, ok2 := s.get(i + 2)
		if !ok1 || !ok2 || rsp.kind != core.TValue || st.kind != core.TStore || !st.resolved() {
			return nil, symStall("call expansion not fully resolved")
		}
		s.regs.Write(mem.RSP, rsp.val)
		s.mem.Write(st.saddr, st.sval)
		s.popMinN(3)
		s.retired++
		return s.self(d, core.WriteObs(st.saddr, st.saddrL))
	case core.TRet:
		tmp, ok1 := s.get(i + 1)
		rsp, ok2 := s.get(i + 2)
		jmp, ok3 := s.get(i + 3)
		if !ok1 || !ok2 || !ok3 || tmp.kind != core.TValue || rsp.kind != core.TValue || jmp.kind != core.TJump {
			return nil, symStall("ret expansion not fully resolved")
		}
		s.regs.Write(mem.RSP, rsp.val)
		s.popMinN(4)
		s.retired++
		return s.self(d)
	}
	return nil, symStall("index %d has no retire rule", i)
}

// concretizeStore pins a store's symbolic address. The leak-hunting
// policy differs from loads: a store is interesting when it *aliases*
// a later load (the Spectre v1.1 shape of Figure 6), so the
// concretizer first tries the addresses of younger loads in the
// buffer, then secret cells, then any model — mirroring how angr's
// pluggable concretization strategies are used for targeted hunting.
func (s *symMachine) concretizeStore(i int, ae symx.Expr) (mem.Word, bool) {
	if v, ok := ae.Concrete(); ok {
		return v.W, true
	}
	seen := make(map[mem.Word]bool)
	for k := i + 1; k <= s.BufMax(); k++ {
		ld, _ := s.get(k)
		if ld == nil || ld.kind != core.TLoad {
			continue
		}
		largs, ok := s.resolveArgs(k, ld.args)
		if !ok {
			continue
		}
		lv, ok := addrExpr(largs).Concrete()
		if !ok || seen[lv.W] {
			continue
		}
		seen[lv.W] = true
		if _, ok := s.solver.SolveWith(s.pcond, ae, lv.W); ok {
			return lv.W, true
		}
	}
	return s.concr.Concretize(ae, s.pcond, s.mem)
}

// ---------------------------------------------------------------------
// Fingerprinting (sched.Machine.Fingerprint) — enables the engine's
// dedup table for symbolic states. The path condition is part of the
// configuration: equal machine state under different constraints has
// different feasible futures.
// ---------------------------------------------------------------------

// Fingerprint hashes the symbolic configuration to 64 bits; equal
// configurations hash equal.
func (s *symMachine) Fingerprint() uint64 {
	h := mem.HashSeed
	mix := func(w uint64) { h = mem.Mix64(h ^ w) }
	mix(uint64(s.pc))
	mix(uint64(s.retired))
	mix(uint64(s.base))
	// Registers and memory: order-independent sums over the cells,
	// maintained incrementally by the copy-on-write containers — O(1)
	// here instead of re-hashing every expression tree per state.
	mix(s.regs.HashSum())
	mix(s.mem.HashSum())
	for _, t := range s.buf {
		mix(t.hash())
	}
	mix(s.rsb.Hash())
	mix(s.pcond.Fingerprint())
	return h
}

// exprHash is the structural expression hash shared with the solver's
// query seeding.
func exprHash(e symx.Expr) uint64 { return symx.Fingerprint(e) }

// hash folds every semantically meaningful transient field, with nil
// expressions hashing to a fixed sentinel.
func (t *symTransient) hash() uint64 {
	h := mem.HashSeed
	mix := func(w uint64) { h = mem.Mix64(h ^ w) }
	he := func(e symx.Expr) {
		if e == nil {
			mix(5)
			return
		}
		mix(exprHash(e))
	}
	mix(uint64(t.kind))
	mix(uint64(t.dst))
	mix(uint64(t.op))
	mix(uint64(len(t.args)))
	for _, a := range t.args {
		if a.IsReg {
			mix(1)
		} else {
			mix(2)
		}
		mix(uint64(a.Reg))
		mix(a.Imm.W)
		mix(uint64(a.Imm.L))
	}
	he(t.val)
	if t.fromLoad {
		mix(1)
	} else {
		mix(2)
	}
	mix(uint64(t.dep))
	mix(t.dataAddr)
	mix(uint64(t.pp))
	mix(uint64(t.guess))
	mix(uint64(t.tTrue))
	mix(uint64(t.tFalse))
	mix(uint64(t.target))
	if t.src.IsReg {
		mix(1)
	} else {
		mix(2)
	}
	mix(uint64(t.src.Reg))
	mix(t.src.Imm.W)
	if t.valKnown {
		mix(1)
	} else {
		mix(2)
	}
	he(t.sval)
	if t.addrKnown {
		mix(1)
	} else {
		mix(2)
	}
	mix(t.saddr)
	mix(uint64(t.saddrL))
	return h
}

// ---------------------------------------------------------------------
// Entry point.
// ---------------------------------------------------------------------

// AnalyzeSymbolic runs the symbolic-mode detector on the unified
// engine: the same worst-case schedule strategy, worker pool, dedup
// table, and budgets as concrete mode, over the symbolic domain.
func AnalyzeSymbolic(m *SymMachine, opts Options) (Report, error) {
	sopts := sched.Options{
		Bound:          opts.Bound,
		ForwardHazards: opts.ForwardHazards,
		MaxStates:      opts.MaxStates,
		MaxRetired:     opts.MaxRetired,
		StopAtFirst:    opts.StopAtFirst,
		Workers:        opts.Workers,
		DedupEntries:   opts.DedupEntries,
		KeepSchedules:  true,
		Interrupt:      opts.Interrupt,
		Prune:          opts.Prune,
	}
	if opts.OnViolation != nil {
		sopts.OnViolation = func(v sched.Violation) bool {
			return opts.OnViolation(violationOf(v))
		}
	}
	e, err := sched.NewExplorer(sopts)
	if err != nil {
		return Report{}, fmt.Errorf("pitchfork: %w", err)
	}
	sm := newSymMachine(m, opts.SolverSeed)
	res := e.ExploreMachine(sm)
	rep := Report{
		States: res.States, Paths: res.Paths,
		Truncated: res.Truncated, Interrupted: res.Interrupted,
		Mode: "symbolic", Workers: res.Workers, DedupHits: res.DedupHits,
	}
	stats := sm.solver.Stats()
	rep.Solver = &stats
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, violationOf(v))
	}
	return rep, nil
}
