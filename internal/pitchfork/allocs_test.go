package pitchfork

import (
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/symx"
)

// TestResolveArgsAllocFree pins the scratch-buffer optimization:
// resolving a register operand list must not allocate once the scratch
// has grown to the list length (resolveArgs was the engine's hottest
// allocation site). Immediate operands box a fresh Const and are
// exempt; register reads out of the regfile must be free.
func TestResolveArgsAllocFree(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Op(isa.Reg(0), isa.OpAdd, isa.R(isa.Reg(1)), isa.R(isa.Reg(2)))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	init := NewSym(p)
	init.SetReg(isa.Reg(1), symx.NewVar("a", mem.Public))
	init.SetReg(isa.Reg(2), symx.NewVar("b", mem.Public))
	s := newSymMachine(init, 0)

	args := []isa.Operand{
		isa.R(isa.Reg(1)), isa.R(isa.Reg(2)),
		isa.R(isa.Reg(1)), isa.R(isa.Reg(2)),
	}
	if _, ok := s.resolveArgs(s.base, args); !ok {
		t.Fatal("warm-up resolve failed")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := s.resolveArgs(s.base, args); !ok {
			t.Fatal("resolve failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("resolveArgs allocates %.1f times per call; want 0 (scratch regression)", allocs)
	}
}

// TestResolveRegAllocFree pins resolveReg, resolveArgs' twin on the
// operand-resolution hot path: resolving a register must not allocate
// — neither through the speculative buffer, nor out of the register
// file, nor on the unset-register default (which now returns the
// canonical symx.Zero instead of boxing a fresh Const per call).
func TestResolveRegAllocFree(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Op(isa.Reg(0), isa.OpAdd, isa.R(isa.Reg(1)), isa.R(isa.Reg(2)))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	init := NewSym(p)
	init.SetReg(isa.Reg(1), symx.NewVar("a", mem.Public))
	s := newSymMachine(init, 0)

	for _, r := range []isa.Reg{isa.Reg(1), isa.Reg(9)} { // set and unset
		allocs := testing.AllocsPerRun(200, func() {
			if _, ok := s.resolveReg(s.base, r); !ok {
				t.Fatal("resolve failed")
			}
		})
		if allocs != 0 {
			t.Fatalf("resolveReg(r%d) allocates %.1f times per call; want 0", r, allocs)
		}
	}
	if e, ok := s.resolveReg(s.base, isa.Reg(9)); !ok || e != symx.Zero {
		t.Fatal("unset register must resolve to the canonical zero expression")
	}
}

// TestApplyArgsCopiesRetainedScratch guards the other half of the
// scratch contract: when symx.Apply keeps the argument slice verbatim
// (the default unsimplified path), applyArgs must hand the expression
// a private copy, or the next resolveArgs would rewrite a live
// expression's operands in place.
func TestApplyArgsCopiesRetainedScratch(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Op(isa.Reg(0), isa.OpLt, isa.R(isa.Reg(1)), isa.R(isa.Reg(2)))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	init := NewSym(p)
	init.SetReg(isa.Reg(1), symx.NewVar("a", mem.Public))
	init.SetReg(isa.Reg(2), symx.NewVar("b", mem.Public))
	s := newSymMachine(init, 0)

	args, ok := s.resolveArgs(s.base, []isa.Operand{isa.R(isa.Reg(1)), isa.R(isa.Reg(2))})
	if !ok {
		t.Fatal("resolve failed")
	}
	e := s.applyArgs(isa.OpLt, args)
	o, ok := e.(symx.Op)
	if !ok {
		t.Fatalf("expected an unsimplified Op expression, got %T", e)
	}
	if len(o.Args) == len(args) && &o.Args[0] == &args[0] {
		t.Fatal("applyArgs returned an expression aliasing the scratch buffer")
	}
	before := o.Args[0]
	if _, ok := s.resolveArgs(s.base, []isa.Operand{isa.R(isa.Reg(2)), isa.R(isa.Reg(1))}); !ok {
		t.Fatal("second resolve failed")
	}
	if o.Args[0] != before {
		t.Fatal("a later resolveArgs mutated a retained expression's operands")
	}
}
