// Differential oracle for the engine unification: on fully-concrete
// initial states the symbolic domain degenerates to constant
// expressions, so both domains must walk the same worst-case schedule
// tree and report exactly the same findings — same program counters,
// same speculation sources, same variant kinds, same observations —
// across the Kocher and v1.1 corpora.
package pitchfork_test

import (
	"fmt"
	"sort"
	"testing"

	"pitchfork/internal/ct"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/testcases"
)

// concreteFindingKeys projects a report onto the domain-independent
// finding fields, sorted (the serial drivers of the two domains agree
// on the tree but symbolic witness/trace representations differ).
func concreteFindingKeys(rep pitchfork.Report) []string {
	out := make([]string, len(rep.Violations))
	for i, v := range rep.Violations {
		out[i] = fmt.Sprintf("%s|%s|pc=%d|src=%v", v.Kind, v.Obs, v.PC, v.Sources)
	}
	sort.Strings(out)
	return out
}

func TestDifferentialConcreteVsSymbolicOnCorpora(t *testing.T) {
	cases := append(append([]testcases.Case{}, testcases.Kocher()...), testcases.V11()...)
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			opts := pitchfork.Options{Bound: 20, ForwardHazards: c.NeedsFwdHazards}

			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			concrete, err := pitchfork.Analyze(m, opts)
			if err != nil {
				t.Fatal(err)
			}

			// The same program, symbolically — but with every input left
			// at its concrete seed (no symbolic variables), so the
			// domains must agree exactly.
			comp, err := ct.Compile(c.Source(), ct.ModeC)
			if err != nil {
				t.Fatal(err)
			}
			symbolic, err := pitchfork.AnalyzeSymbolic(pitchfork.NewSym(comp.Prog), opts)
			if err != nil {
				t.Fatal(err)
			}

			if concrete.States != symbolic.States || concrete.Paths != symbolic.Paths {
				t.Errorf("tree shape differs: concrete %d states / %d paths, symbolic %d states / %d paths",
					concrete.States, concrete.Paths, symbolic.States, symbolic.Paths)
			}
			ck, sk := concreteFindingKeys(concrete), concreteFindingKeys(symbolic)
			if len(ck) != len(sk) {
				t.Fatalf("finding counts differ: concrete %d, symbolic %d\n concrete %v\n symbolic %v",
					len(ck), len(sk), ck, sk)
			}
			for i := range ck {
				if ck[i] != sk[i] {
					t.Fatalf("finding %d differs:\n concrete %s\n symbolic %s", i, ck[i], sk[i])
				}
			}
		})
	}
}
