// Repository-level benchmark harness: one benchmark per table and
// figure of the paper's evaluation, per DESIGN.md's experiment index.
// The benchmarks regenerate the *shape* of each result — who is
// flagged, under which detection mode, and how analysis cost scales
// with the speculation bound — on this repository's simulator
// substrate.
package pitchfork_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"pitchfork/internal/attacks"
	"pitchfork/internal/cachesim"
	"pitchfork/internal/core"
	"pitchfork/internal/crypto"
	"pitchfork/internal/ct"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/sched"
	"pitchfork/internal/symx"
	"pitchfork/internal/taint"
	"pitchfork/internal/testcases"
	"pitchfork/spectre"
)

// ---------------------------------------------------------------------
// Figures 1–13: the attack gallery, one benchmark each. Each iteration
// replays the paper's directive schedule on a fresh machine and checks
// the leak expectation.
// ---------------------------------------------------------------------

func benchAttack(b *testing.B, a attacks.Attack) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recs, err := a.Run()
		if err != nil {
			b.Fatal(err)
		}
		leak := false
		for _, r := range recs {
			for _, o := range r.Obs {
				leak = leak || o.Secret()
			}
		}
		if leak != a.WantSecretLeak {
			b.Fatalf("%s: leak = %t", a.ID, leak)
		}
	}
}

func BenchmarkFig1SpectreV1(b *testing.B)      { benchAttack(b, attacks.Figure1()) }
func BenchmarkFig2AliasPredictor(b *testing.B) { benchAttack(b, attacks.Figure2()) }
func BenchmarkFig5StoreHazard(b *testing.B)    { benchAttack(b, attacks.Figure5()) }
func BenchmarkFig6SpectreV11(b *testing.B)     { benchAttack(b, attacks.Figure6()) }
func BenchmarkFig7SpectreV4(b *testing.B)      { benchAttack(b, attacks.Figure7()) }
func BenchmarkFig8Fence(b *testing.B)          { benchAttack(b, attacks.Figure8()) }
func BenchmarkFig11SpectreV2(b *testing.B)     { benchAttack(b, attacks.Figure11()) }
func BenchmarkFig13Retpoline(b *testing.B)     { benchAttack(b, attacks.Figure13()) }

// ---------------------------------------------------------------------
// Table 2: per case study × backend, the §4.2.1 two-phase procedure.
// Bounds are the paper's (250 / 20); StopAtFirst keeps flagged cells
// cheap, clean cells pay for the full exploration like the original.
// ---------------------------------------------------------------------

func benchTable2(b *testing.B, caseIdx int, mode ct.Mode, want crypto.Finding) {
	c := crypto.Cases()[caseIdx]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := crypto.Analyze(c, mode, crypto.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatalf("%s/%s: finding = %s, want %s", c.Name, mode, got, want)
		}
	}
}

func BenchmarkTable2_Donna_C(b *testing.B)     { benchTable2(b, 0, ct.ModeC, crypto.Clean) }
func BenchmarkTable2_Donna_FaCT(b *testing.B)  { benchTable2(b, 0, ct.ModeFaCT, crypto.Clean) }
func BenchmarkTable2_Secretbox_C(b *testing.B) { benchTable2(b, 1, ct.ModeC, crypto.Flagged) }
func BenchmarkTable2_Secretbox_FaCT(b *testing.B) {
	benchTable2(b, 1, ct.ModeFaCT, crypto.Clean)
}
func BenchmarkTable2_SSL3_C(b *testing.B) { benchTable2(b, 2, ct.ModeC, crypto.Flagged) }
func BenchmarkTable2_SSL3_FaCT(b *testing.B) {
	benchTable2(b, 2, ct.ModeFaCT, crypto.FlaggedFwd)
}
func BenchmarkTable2_MEE_C(b *testing.B) { benchTable2(b, 3, ct.ModeC, crypto.Flagged) }
func BenchmarkTable2_MEE_FaCT(b *testing.B) {
	benchTable2(b, 3, ct.ModeFaCT, crypto.FlaggedFwd)
}

// ---------------------------------------------------------------------
// §4.2 corpora: the Kocher suite, the speculative-only v1 suite, and
// the v1.1 suite, at the paper's phase-1 bound.
// ---------------------------------------------------------------------

func benchCorpus(b *testing.B, cases []testcases.Case, bound int, fwd bool, wantFlagged bool) {
	// Build the corpus machines once: the analysis clones its machine
	// up front, so iterations measure the engine, not the compiler.
	machines := make([]*core.Machine, len(cases))
	for j, c := range cases {
		m, err := c.Build()
		if err != nil {
			b.Fatal(err)
		}
		machines[j] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, c := range cases {
			rep, err := pitchfork.Analyze(machines[j], pitchfork.Options{
				Bound:          bound,
				ForwardHazards: fwd || c.NeedsFwdHazards,
				StopAtFirst:    true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.SecretFree() != !wantFlagged {
				b.Fatalf("%s: flagged = %t", c.Name, !rep.SecretFree())
			}
		}
	}
}

func BenchmarkKocherSuite(b *testing.B) {
	benchCorpus(b, testcases.Kocher(), pitchfork.BoundNoHazards, false, true)
}

func BenchmarkSpeculativeOnlyV1Suite(b *testing.B) {
	benchCorpus(b, testcases.SpecOnlyV1(), pitchfork.BoundNoHazards, false, true)
}

func BenchmarkV11Suite(b *testing.B) {
	// Hazard-dependent members run at the phase-2 bound per the paper.
	cases := testcases.V11()
	machines := make([]*core.Machine, len(cases))
	for j, c := range cases {
		m, err := c.Build()
		if err != nil {
			b.Fatal(err)
		}
		machines[j] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, c := range cases {
			bound := pitchfork.BoundNoHazards
			if c.NeedsFwdHazards {
				bound = pitchfork.BoundWithHazards
			}
			rep, err := pitchfork.Analyze(machines[j], pitchfork.Options{
				Bound:          bound,
				ForwardHazards: c.NeedsFwdHazards,
				StopAtFirst:    true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.SecretFree() {
				b.Fatalf("%s not flagged", c.Name)
			}
		}
	}
}

// BenchmarkKocherSymbolic measures the symbolic detector on the
// baseline case with an unconstrained attacker index.
func BenchmarkKocherSymbolic(b *testing.B) {
	sm, err := testcases.Kocher()[0].BuildSym()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{Bound: 30, StopAtFirst: true})
		if err != nil {
			b.Fatal(err)
		}
		if rep.SecretFree() {
			b.Fatal("not flagged")
		}
	}
}

// ---------------------------------------------------------------------
// §4.2 tractability: schedule-space growth with the speculation bound,
// with and without forwarding-hazard detection — the reason the paper
// drops from bound 250 to bound 20 when hazards are on.
// ---------------------------------------------------------------------

func kocherMachine() *core.Machine {
	m, err := testcases.Kocher()[0].Build()
	if err != nil {
		panic(err)
	}
	return m
}

func BenchmarkScheduleGeneration(b *testing.B) {
	for _, bound := range []int{5, 20, 100, 250} {
		for _, fwd := range []bool{false, true} {
			name := fmt.Sprintf("bound=%d/fwd=%t", bound, fwd)
			b.Run(name, func(b *testing.B) {
				// The exploration clones the machine up front, so one
				// fixture serves every iteration and the timed loop
				// measures schedule generation, not the CTL compiler.
				m := kocherMachine()
				b.ReportAllocs()
				b.ResetTimer()
				var paths, states int
				for i := 0; i < b.N; i++ {
					var err error
					paths, states, _, err = sched.CountSchedules(m, bound, fwd, 2_000_000)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(paths), "paths")
				b.ReportMetric(float64(states), "states")
			})
		}
	}
}

// BenchmarkScheduleGenerationParallel is BenchmarkScheduleGeneration on
// the work-stealing pool, one worker per CPU core. The acceptance bar
// for the pool is ≥2× wall-clock on bound=250/fwd=false versus the
// serial benchmark above, with identical path and state counts.
func BenchmarkScheduleGenerationParallel(b *testing.B) {
	workers := runtime.NumCPU()
	for _, bound := range []int{100, 250} {
		for _, fwd := range []bool{false, true} {
			name := fmt.Sprintf("bound=%d/fwd=%t", bound, fwd)
			b.Run(name, func(b *testing.B) {
				e, err := sched.NewExplorer(sched.Options{
					Bound: bound, ForwardHazards: fwd,
					MaxStates: 2_000_000, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				m := kocherMachine()
				b.ReportAllocs()
				b.ResetTimer()
				var res sched.Result
				for i := 0; i < b.N; i++ {
					res = e.Explore(m)
				}
				b.ReportMetric(float64(res.Paths), "paths")
				b.ReportMetric(float64(res.States), "states")
			})
		}
	}
}

// BenchmarkScheduleGenerationDedup measures fingerprint pruning on the
// forwarding-hazard exploration, where reconverging fork arms make
// dedup bite hardest.
func BenchmarkScheduleGenerationDedup(b *testing.B) {
	for _, bound := range []int{20, 100} {
		name := fmt.Sprintf("bound=%d/fwd=true", bound)
		b.Run(name, func(b *testing.B) {
			e, err := sched.NewExplorer(sched.Options{
				Bound: bound, ForwardHazards: true,
				MaxStates: 2_000_000, DedupEntries: 1 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			m := kocherMachine()
			b.ReportAllocs()
			b.ResetTimer()
			var res sched.Result
			for i := 0; i < b.N; i++ {
				res = e.Explore(m)
			}
			b.ReportMetric(float64(res.States), "states")
			b.ReportMetric(float64(res.DedupHits), "dedup-hits")
		})
	}
}

// ---------------------------------------------------------------------
// Symbolic-domain schedule generation on the unified engine: the same
// serial / parallel / dedup trio as the concrete sweep above, with the
// attacker index x unconstrained. These are the CI sweep's symbolic
// throughput trackers.
// ---------------------------------------------------------------------

func kocherSymMachine() *pitchfork.SymMachine {
	sm, err := testcases.Kocher()[0].BuildSym()
	if err != nil {
		panic(err)
	}
	return sm
}

func BenchmarkSymbolicScheduleGeneration(b *testing.B) {
	for _, bound := range []int{10, 20, 30} {
		for _, fwd := range []bool{false, true} {
			name := fmt.Sprintf("bound=%d/fwd=%t", bound, fwd)
			b.Run(name, func(b *testing.B) {
				sm := kocherSymMachine()
				b.ReportAllocs()
				b.ResetTimer()
				var rep pitchfork.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{
						Bound: bound, ForwardHazards: fwd, MaxStates: 2_000_000,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(rep.Paths), "paths")
				b.ReportMetric(float64(rep.States), "states")
			})
		}
	}
}

// BenchmarkSymbolicScheduleGenerationParallel runs the symbolic
// exploration on the work-stealing pool, one worker per CPU core —
// path and state counts must match the serial benchmark above.
func BenchmarkSymbolicScheduleGenerationParallel(b *testing.B) {
	workers := runtime.NumCPU()
	for _, bound := range []int{20, 30} {
		for _, fwd := range []bool{false, true} {
			name := fmt.Sprintf("bound=%d/fwd=%t", bound, fwd)
			b.Run(name, func(b *testing.B) {
				sm := kocherSymMachine()
				b.ReportAllocs()
				b.ResetTimer()
				var rep pitchfork.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{
						Bound: bound, ForwardHazards: fwd, MaxStates: 2_000_000, Workers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(rep.Paths), "paths")
				b.ReportMetric(float64(rep.States), "states")
			})
		}
	}
}

// BenchmarkSymbolicScheduleGenerationDedup measures fingerprint
// pruning of re-converged symbolic states (path condition included in
// the fingerprint).
func BenchmarkSymbolicScheduleGenerationDedup(b *testing.B) {
	for _, bound := range []int{20, 30} {
		name := fmt.Sprintf("bound=%d/fwd=true", bound)
		b.Run(name, func(b *testing.B) {
			sm := kocherSymMachine()
			b.ReportAllocs()
			b.ResetTimer()
			var rep pitchfork.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{
					Bound: bound, ForwardHazards: true, MaxStates: 2_000_000, DedupEntries: 1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.States), "states")
			b.ReportMetric(float64(rep.DedupHits), "dedup-hits")
		})
	}
}

// ---------------------------------------------------------------------
// Static pre-analysis: cost of the taint pass itself (the price of a
// certificate or of the pruning hints), and the hybrid exploration it
// enables — the corpus sweep with statically-safe forks collapsed.
// ---------------------------------------------------------------------

// BenchmarkStaticPass measures the flow-sensitive taint analysis over
// every corpus machine: the fixed cost a hybrid run pays before the
// explorer starts (and the entire cost of certifying a safe program).
func BenchmarkStaticPass(b *testing.B) {
	cases := allCorpora()
	machines := make([]*core.Machine, len(cases))
	for j, c := range cases {
		m, err := c.Build()
		if err != nil {
			b.Fatal(err)
		}
		machines[j] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range machines {
			rep, err := taintOfMachine(machines[j])
			if err != nil {
				b.Fatal(err)
			}
			if rep.Safe() {
				b.Fatalf("%s statically safe; the corpus is all leaky", cases[j].Name)
			}
		}
	}
}

// BenchmarkKocherSuiteHybrid is BenchmarkKocherSuite with the static
// pruning hints wired in — the hybrid mode a -static CLI run uses on
// programs the pass cannot certify. Findings are bit-identical to the
// unpruned sweep (asserted by TestStaticSoundnessOnCorpora); the delta
// between the two benchmarks is what pruning buys.
func BenchmarkKocherSuiteHybrid(b *testing.B) {
	cases := testcases.Kocher()
	machines := make([]*core.Machine, len(cases))
	hints := make([]*taint.Report, len(cases))
	for j, c := range cases {
		m, err := c.Build()
		if err != nil {
			b.Fatal(err)
		}
		machines[j] = m
		if hints[j], err = taintOfMachine(m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, c := range cases {
			rep, err := pitchfork.Analyze(machines[j], pitchfork.Options{
				Bound:          pitchfork.BoundNoHazards,
				ForwardHazards: c.NeedsFwdHazards,
				StopAtFirst:    true,
				Prune:          hints[j],
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.SecretFree() {
				b.Fatalf("%s not flagged", c.Name)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Theorems: the property-test workloads as benchmarks, measuring the
// semantics itself.
// ---------------------------------------------------------------------

func BenchmarkSequentialEquivalence(b *testing.B) {
	a := attacks.Figure1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := a.New()
		if _, err := m.Run(a.Schedule); err != nil {
			b.Fatal(err)
		}
		seq := a.New()
		if _, _, err := core.RunSequential(seq, m.Retired); err != nil {
			b.Fatal(err)
		}
		if !m.ApproxEqual(seq) {
			b.Fatal("OoO and sequential states diverge")
		}
	}
}

func BenchmarkMachineStep(b *testing.B) {
	a := attacks.Figure1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.New()
		for _, d := range a.Schedule {
			if _, err := m.Step(d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSCTCheck(b *testing.B) {
	a := attacks.Figure1()
	m := a.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := core.CheckSCT(m, a.Schedule, 4, newRng(int64(i))); res == nil {
			b.Fatal("violation not observed")
		}
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks: compiler, solver, cache model.
// ---------------------------------------------------------------------

func BenchmarkCTCompile(b *testing.B) {
	src := testcases.Kocher()[0].Src
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ct.Compile(src, ct.ModeC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolver(b *testing.B) {
	x := symx.NewVar("x", mem.Public)
	s := symx.NewSolver(1)
	cond := symx.PCond(
		symx.Constraint{E: symx.Apply(isa.OpGt, x, symx.CW(4)), Truthy: true},
		symx.Constraint{E: symx.Apply(isa.OpLt, x, symx.CW(64)), Truthy: true},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Solve(cond); !ok {
			b.Fatal("unsolved")
		}
	}
}

// solverChain builds a depth-n path condition of the shape symbolic
// exploration produces: branch bounds plus concretization pins over
// one attacker variable.
func solverChain(n int) symx.PathCondition {
	x := symx.NewVar("x", mem.Public)
	p := symx.PCond(
		symx.Constraint{E: symx.Apply(isa.OpLt, x, symx.CW(1<<16)), Truthy: true},
		symx.Constraint{E: symx.Apply(isa.OpGe, x, symx.CW(8)), Truthy: true},
	)
	for i := 0; i < n; i++ {
		p = p.With(symx.Constraint{
			E:      symx.Apply(isa.OpEq, symx.Apply(isa.OpAdd, x, symx.CW(mem.Word(0x1000+i))), symx.CW(0)),
			Truthy: false, // x + k ≠ 0: true but unpruned, keeps the chain growing
		})
	}
	return p
}

// BenchmarkSolverColdStart solves a fresh chain in a fresh solver —
// the full propagate-then-search pipeline with nothing memoized.
func BenchmarkSolverColdStart(b *testing.B) {
	cond := solverChain(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := symx.NewSolver(1)
		if _, ok := s.Solve(cond); !ok {
			b.Fatal("unsolved")
		}
	}
}

// BenchmarkSolverIncremental extends a warm chain by one conjunct per
// iteration and re-solves — the push/pop pattern exploration drives
// (each branch adds one constraint to an already-solved parent).
func BenchmarkSolverIncremental(b *testing.B) {
	x := symx.NewVar("x", mem.Public)
	s := symx.NewSolver(1)
	base := solverChain(4)
	if _, ok := s.Solve(base); !ok {
		b.Fatal("unsolved base")
	}
	b.ReportAllocs()
	b.ResetTimer()
	p := base
	for i := 0; i < b.N; i++ {
		p = p.With(symx.Constraint{
			E:      symx.Apply(isa.OpEq, x, symx.CW(mem.Word(1<<20+i))),
			Truthy: false,
		})
		if _, ok := s.Solve(p); !ok {
			b.Fatal("unsolved")
		}
		if p.Len() > 64 { // keep the chain bounded
			p = base
		}
	}
}

// BenchmarkSolverCacheHit re-solves one warm query — the repeated
// Feasible/Concretize pattern on an unchanged path condition.
func BenchmarkSolverCacheHit(b *testing.B) {
	s := symx.NewSolver(1)
	cond := solverChain(12)
	if _, ok := s.Solve(cond); !ok {
		b.Fatal("unsolved")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Solve(cond); !ok {
			b.Fatal("unsolved")
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func BenchmarkCacheRecovery(b *testing.B) {
	a := attacks.Figure1()
	recs, err := a.Run()
	if err != nil {
		b.Fatal(err)
	}
	var trace core.Trace
	for _, r := range recs {
		trace = append(trace, r.Obs...)
	}
	cache, _ := cachesim.New(64, 4, 1)
	fr := cachesim.FlushReload{Cache: cache, ProbeBase: 0x44, Stride: 1, Slots: 256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hot := fr.Recover(trace); len(hot) != 2 {
			b.Fatalf("hot = %v", hot)
		}
	}
}

// ---------------------------------------------------------------------
// Fence repair: the counterexample-guided synthesis loop end to end —
// detect, map findings to speculation sources, insert fences,
// re-verify, minimize.
// ---------------------------------------------------------------------

func benchRepair(b *testing.B, build func() (*spectre.Program, error)) {
	b.ReportAllocs()
	an, err := spectre.New(spectre.WithDedup(1 << 20))
	if err != nil {
		b.Fatal(err)
	}
	// Analyzer construction is setup, not repair work.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := build()
		if err != nil {
			b.Fatal(err)
		}
		res, err := an.Repair(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != spectre.RepairRepaired {
			b.Fatalf("outcome = %s", res.Outcome)
		}
	}
}

func BenchmarkRepairKocher01(b *testing.B) {
	benchRepair(b, func() (*spectre.Program, error) {
		return spectre.CompileCTL(testcases.Kocher()[0].Source(), spectre.ModeC)
	})
}

func BenchmarkRepairFig7SpectreV4(b *testing.B) {
	benchRepair(b, func() (*spectre.Program, error) {
		f, ok := spectre.FigureByID("fig7")
		if !ok {
			b.Fatal("fig7 missing from the gallery")
		}
		return f.Program(), nil
	})
}

// BenchmarkRepairPortfolio prices each mitigation strategy — and the
// auto portfolio that certifies all of them and keeps the cheapest —
// over the Kocher suite, so the cost of portfolio repair relative to
// a pinned strategy stays visible in the benchmark trail. A pinned
// strategy may legitimately exhaust on cases its mitigation cannot
// cover (a retpoline cannot fix a branch gadget with no return), so
// only the shapes that must succeed assert a repaired count.
func BenchmarkRepairPortfolio(b *testing.B) {
	cases := testcases.Kocher()
	for _, strat := range []string{
		spectre.StrategyAuto, spectre.StrategyFence, spectre.StrategyMask, spectre.StrategyRet,
	} {
		b.Run(strat, func(b *testing.B) {
			b.ReportAllocs()
			an, err := spectre.New(
				spectre.WithWorkers(runtime.NumCPU()),
				spectre.WithDedup(1<<20),
				spectre.WithRepairStrategy(strat),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items := make([]spectre.BatchItem, len(cases))
				for j, c := range cases {
					p, err := spectre.CompileCTL(c.Source(), spectre.ModeC)
					if err != nil {
						b.Fatal(err)
					}
					items[j] = spectre.BatchItem{Name: c.Name, Program: p}
				}
				secured := 0
				for _, r := range an.RepairAll(context.Background(), items) {
					if r.Err == nil && r.Result.SecretFree() {
						secured++
					}
				}
				if secured == 0 && (strat == spectre.StrategyAuto || strat == spectre.StrategyFence) {
					b.Fatal("no case secured")
				}
			}
		})
	}
}

func BenchmarkRepairAllKocherSuite(b *testing.B) {
	b.ReportAllocs()
	an, err := spectre.New(spectre.WithWorkers(runtime.NumCPU()), spectre.WithDedup(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	cases := testcases.Kocher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([]spectre.BatchItem, len(cases))
		for j, c := range cases {
			p, err := spectre.CompileCTL(c.Source(), spectre.ModeC)
			if err != nil {
				b.Fatal(err)
			}
			items[j] = spectre.BatchItem{Name: c.Name, Program: p}
		}
		secured := 0
		for _, r := range an.RepairAll(context.Background(), items) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if r.Result.SecretFree() {
				secured++
			}
		}
		if secured == 0 {
			b.Fatal("no case secured")
		}
	}
}
