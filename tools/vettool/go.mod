// CI-only module: the analyzers job runs `go mod tidy` before
// building, which resolves and pins golang.org/x/tools there. Kept out
// of the root module so the engine builds offline.
module pitchfork/tools/vettool

go 1.23
