// Command vettool bundles the x/tools analyzers the CI analyzers job
// runs on top of the standard vet suite:
//
//   - nilness: proves nil-pointer dereferences and degenerate nil
//     comparisons along feasible paths — the engine's Machine/Report
//     plumbing passes interface values (e.g. typed-nil pruning hints)
//     where vet alone is blind;
//   - unusedwrite: flags stores to struct fields and arrays that are
//     never read — dead writes into pooled exploration nodes and
//     scratch buffers would silently undo the copy-on-write sharing
//     discipline.
//
// Built and invoked by CI as:
//
//	cd tools/vettool && go mod tidy && go build -o vettool .
//	go vet -vettool=tools/vettool/vettool ./...
//
// It lives in its own module so the root module carries no dependency
// on golang.org/x/tools; `go build ./...` at the root never needs the
// network.
package main

import (
	"golang.org/x/tools/go/analysis/passes/nilness"
	"golang.org/x/tools/go/analysis/passes/unusedwrite"
	"golang.org/x/tools/go/analysis/unitchecker"
)

func main() {
	unitchecker.Main(nilness.Analyzer, unusedwrite.Analyzer)
}
