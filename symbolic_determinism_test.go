// Determinism of the unified engine's parallel driver in the symbolic
// domain: work-stealing changes which goroutine visits which subtree
// and the per-query self-seeding solver answers independently of call
// order, so a full parallel symbolic exploration must reproduce the
// serial run exactly — same states, paths, and violation multiset
// (schedules and witness models included), merged in schedule order.
// Runs under -race in CI alongside its concrete twin.
package pitchfork_test

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"pitchfork/internal/pitchfork"
	"pitchfork/internal/testcases"
)

// symViolationStrings renders violations order-insensitively with
// every deterministic field included.
func symViolationStrings(rep pitchfork.Report) []string {
	out := make([]string, len(rep.Violations))
	for i, v := range rep.Violations {
		out[i] = fmt.Sprintf("%s|pc=%d|src=%v|model=%v|%s", v.String(), v.PC, v.Sources, v.Model, v.Schedule)
	}
	sort.Strings(out)
	return out
}

func TestSymbolicParallelMatchesSerialOnKocherSample(t *testing.T) {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	// A corpus sample with distinct shapes: the Figure 1 baseline, the
	// nested check, the safe-flag variant, and the compiled ternary.
	all := testcases.Kocher()
	for _, idx := range []int{0, 1, 6, 7} {
		c := all[idx]
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			sm, err := c.BuildSym()
			if err != nil {
				t.Fatal(err)
			}
			serial, err := pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{Bound: 20, ForwardHazards: true})
			if err != nil {
				t.Fatal(err)
			}
			sm2, err := c.BuildSym()
			if err != nil {
				t.Fatal(err)
			}
			par, err := pitchfork.AnalyzeSymbolic(sm2, pitchfork.Options{
				Bound: 20, ForwardHazards: true, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if par.Workers != workers {
				t.Fatalf("Workers = %d, want %d", par.Workers, workers)
			}
			if serial.States != par.States || serial.Paths != par.Paths {
				t.Fatalf("serial %d states / %d paths, parallel %d states / %d paths",
					serial.States, serial.Paths, par.States, par.Paths)
			}
			ss, ps := symViolationStrings(serial), symViolationStrings(par)
			if len(ss) != len(ps) {
				t.Fatalf("violation counts differ: serial %d, parallel %d", len(ss), len(ps))
			}
			for i := range ss {
				if ss[i] != ps[i] {
					t.Fatalf("violation sets differ at %d:\n serial   %s\n parallel %s", i, ss[i], ps[i])
				}
			}
		})
	}
}

// TestSymbolicParallelIsReproducible: two identical parallel runs must
// agree with each other bit for bit (the schedule-order merge is the
// report order, so plain index-wise comparison applies).
func TestSymbolicParallelIsReproducible(t *testing.T) {
	c := testcases.Kocher()[0]
	run := func() pitchfork.Report {
		sm, err := c.BuildSym()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{
			Bound: 20, ForwardHazards: true, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation counts differ between runs: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		av, bv := a.Violations[i], b.Violations[i]
		if fmt.Sprintf("%s|%v|%v|%s", av, av.Sources, av.Model, av.Schedule) !=
			fmt.Sprintf("%s|%v|%v|%s", bv, bv.Sources, bv.Model, bv.Schedule) {
			t.Fatalf("run-to-run drift at violation %d:\n a %s %v\n b %s %v", i, av, av.Model, bv, bv.Model)
		}
	}
}
