package pitchfork_test

import (
	"strings"
	"testing"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/symx"
	"pitchfork/internal/testcases"
)

// TestSymbolicForkArmsRenderDistinctly: when an input-dependent branch
// resolves before the leak, the two feasible worlds must not render
// identical schedules on the wire — the Arm annotation keeps them
// distinguishable for consumers deduplicating or replaying by
// schedule.
func TestSymbolicForkArmsRenderDistinctly(t *testing.T) {
	sm, err := testcases.Kocher()[0].BuildSym()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pitchfork.AnalyzeSymbolic(sm, pitchfork.Options{Bound: 20, ForwardHazards: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	armed := false
	for _, v := range rep.Violations {
		s := v.Schedule.String()
		if seen[s] {
			t.Fatalf("two findings render the identical schedule %q", s)
		}
		seen[s] = true
		if strings.Contains(s, ": taken") || strings.Contains(s, ": not-taken") {
			armed = true
		}
	}
	if len(rep.Violations) == 0 {
		t.Fatal("kocher01 must be flagged")
	}
	_ = armed // arms appear only when a fork resolves pre-leak; uniqueness is the contract

	// A branch on a secret leaks through its own jump observation, so
	// the violating schedule ends in the fork's resolution — both
	// worlds are feasible and both flag, and the Arm annotation is
	// what tells their schedules apart.
	b := isa.NewBuilder(1)
	b.Br(isa.OpNe, []isa.Operand{isa.R(isa.Reg(0)), isa.ImmW(0)}, 2, 3)
	b.Op(isa.Reg(1), isa.OpMov, isa.ImmW(1))
	sb := pitchfork.NewSym(b.MustBuild())
	sb.SetReg(isa.Reg(0), symx.NewVar("k", mem.Secret))
	srep, err := pitchfork.AnalyzeSymbolic(sb, pitchfork.Options{Bound: 8})
	if err != nil {
		t.Fatal(err)
	}
	var taken, notTaken bool
	for _, v := range srep.Violations {
		s := v.Schedule.String()
		taken = taken || strings.Contains(s, ": taken")
		notTaken = notTaken || strings.Contains(s, ": not-taken")
	}
	if !taken || !notTaken {
		t.Fatalf("fork arms not annotated: taken=%t notTaken=%t (%d violations)", taken, notTaken, len(srep.Violations))
	}
}
