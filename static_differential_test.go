// Soundness and finding-equivalence oracle for the static
// speculative-taint pre-analysis (internal/taint), checked against the
// explorers over the full corpora and the paper's attack gallery:
//
//  1. Soundness of the verdict: a program the static pass certifies
//     safe is never flagged by either explorer, and every explorer
//     finding lands on a program point the static pass already calls
//     suspicious.
//  2. Soundness of the pruning hints: exploration with Options.Prune
//     wired to the static report yields findings bit-identical to an
//     unpruned run, in both domains.
//  3. Non-vacuity: hand-built secret-free programs exercise the
//     certify-without-exploring leg (the corpora are all leaky), and
//     pruning demonstrably shrinks the tree on them.
package pitchfork_test

import (
	"reflect"
	"testing"

	"pitchfork/internal/attacks"
	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/taint"
	"pitchfork/internal/testcases"
)

// taintOfMachine seeds the taint analysis exactly like the concrete
// explorer sees the machine: the program plus the labels of every
// initial register and memory cell.
func taintOfMachine(m *core.Machine) (*taint.Report, error) {
	cfg := taint.Config{
		Prog: m.Prog,
		Regs: map[isa.Reg]mem.Label{},
		Mem:  map[isa.Addr]mem.Label{},
	}
	for _, r := range m.Regs.Registers() {
		cfg.Regs[r] = m.Regs.Read(r).L
	}
	for _, a := range m.Mem.Addresses() {
		v, err := m.Mem.Read(a)
		if err != nil {
			return nil, err
		}
		cfg.Mem[a] = v.L
	}
	return taint.Analyze(cfg)
}

func staticOfMachine(t *testing.T, m *core.Machine) *taint.Report {
	t.Helper()
	rep, err := taintOfMachine(m)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// staticOfSym does the same for a symbolic initial configuration,
// labeling each register and cell with its expression's label (an
// unconstrained public variable stays public; secrets stay secret).
func staticOfSym(t *testing.T, sm *pitchfork.SymMachine) *taint.Report {
	t.Helper()
	cfg := taint.Config{
		Prog: sm.Prog,
		Regs: map[isa.Reg]mem.Label{},
		Mem:  map[isa.Addr]mem.Label{},
	}
	for r, e := range sm.Regs {
		cfg.Regs[r] = e.Label()
	}
	for _, a := range sm.Mem.Addresses() {
		cfg.Mem[a] = sm.Mem.Read(a).Label()
	}
	rep, err := taint.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func allCorpora() []testcases.Case {
	cases := append([]testcases.Case{}, testcases.Kocher()...)
	cases = append(cases, testcases.SpecOnlyV1()...)
	return append(cases, testcases.V11()...)
}

// checkSoundAgainst asserts the two soundness directions between a
// static report and an explorer report on the same machine.
func checkSoundAgainst(t *testing.T, static *taint.Report, rep pitchfork.Report, mode string) {
	t.Helper()
	if static.Safe() && len(rep.Violations) > 0 {
		t.Errorf("%s: static pass certified safe but the explorer found %d violation(s); first: %v",
			mode, len(rep.Violations), rep.Violations[0])
	}
	for _, v := range rep.Violations {
		if static.SafePoint(isa.Addr(v.PC)) {
			t.Errorf("%s: explorer violation at pc=%d but the static pass calls that point safe", mode, v.PC)
		}
	}
}

// checkPruneEquiv runs the given analyze function with and without the
// pruning hints and asserts bit-identical findings.
func checkPruneEquiv(t *testing.T, mode string, static *taint.Report,
	analyze func(prune *taint.Report) (pitchfork.Report, error)) {
	t.Helper()
	plain, err := analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := analyze(static)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Truncated || pruned.Truncated {
		t.Fatalf("%s: exploration truncated (plain=%v pruned=%v); raise the limits", mode, plain.Truncated, pruned.Truncated)
	}
	if !reflect.DeepEqual(plain.Violations, pruned.Violations) {
		t.Errorf("%s: pruned findings differ from unpruned\n plain  (%d): %v\n pruned (%d): %v",
			mode, len(plain.Violations), plain.Violations, len(pruned.Violations), pruned.Violations)
	}
	if pruned.States > plain.States {
		t.Errorf("%s: pruning grew the tree: %d states pruned vs %d plain", mode, pruned.States, plain.States)
	}
}

func TestStaticSoundnessOnCorpora(t *testing.T) {
	for _, c := range allCorpora() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			opts := pitchfork.Options{Bound: 20, ForwardHazards: c.NeedsFwdHazards}

			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			static := staticOfMachine(t, m)
			checkPruneEquiv(t, "concrete", static, func(prune *taint.Report) (pitchfork.Report, error) {
				mm, err := c.Build()
				if err != nil {
					t.Fatal(err)
				}
				o := opts
				if prune != nil {
					o.Prune = prune
				}
				return pitchfork.Analyze(mm, o)
			})
			rep, err := pitchfork.Analyze(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkSoundAgainst(t, static, rep, "concrete")

			sm, err := c.BuildSym()
			if err != nil {
				t.Fatal(err)
			}
			staticSym := staticOfSym(t, sm)
			checkPruneEquiv(t, "symbolic", staticSym, func(prune *taint.Report) (pitchfork.Report, error) {
				s2, err := c.BuildSym()
				if err != nil {
					t.Fatal(err)
				}
				o := opts
				if prune != nil {
					o.Prune = prune
				}
				return pitchfork.AnalyzeSymbolic(s2, o)
			})
			srep, err := pitchfork.AnalyzeSymbolic(sm, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkSoundAgainst(t, staticSym, srep, "symbolic")
		})
	}
}

func TestStaticSoundnessOnGallery(t *testing.T) {
	for _, a := range attacks.Gallery() {
		a := a
		t.Run(a.ID, func(t *testing.T) {
			t.Parallel()
			opts := pitchfork.Options{Bound: 20, ForwardHazards: true}
			static := staticOfMachine(t, a.New())

			rep, err := pitchfork.Analyze(a.New(), opts)
			if err != nil {
				t.Fatal(err)
			}
			checkSoundAgainst(t, static, rep, "concrete")
			if a.WantSecretLeak && static.Safe() {
				t.Errorf("gallery attack leaks under its own schedule but the static pass certified it safe")
			}
			checkPruneEquiv(t, "concrete", static, func(prune *taint.Report) (pitchfork.Report, error) {
				o := opts
				if prune != nil {
					o.Prune = prune
				}
				return pitchfork.Analyze(a.New(), o)
			})
		})
	}
}

// safePrograms builds secret-free machines: the corpora and the
// gallery are all leaky, so without these the certify leg of the
// soundness test would never fire.
func safePrograms(t *testing.T) map[string]func() *core.Machine {
	t.Helper()
	return map[string]func() *core.Machine{
		// Public bounds-checked lookup over public data.
		"public-lookup": func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Region(100, mem.Pub(3), mem.Pub(1), mem.Pub(4), mem.Pub(1))
			b.Br(isa.OpLt, []isa.Operand{isa.R(0), isa.ImmW(4)}, 2, 4)
			b.Load(isa.Reg(1), isa.ImmW(100), isa.R(0))
			b.Load(isa.Reg(2), isa.ImmW(100), isa.R(1))
			return core.New(b.MustBuild())
		},
		// Secret data read through public addresses only: reading a
		// secret is constant-time; only address/branch exposure leaks.
		"secret-read-public-addr": func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Data(100, mem.Sec(42))
			b.Data(101, mem.Pub(7))
			b.Load(isa.Reg(0), isa.ImmW(100))
			b.Op(isa.Reg(1), isa.OpAdd, isa.R(0), isa.ImmW(1))
			b.Store(isa.R(1), isa.ImmW(100))
			b.Load(isa.Reg(2), isa.ImmW(101))
			return core.New(b.MustBuild())
		},
		// A fenced secret-dependent region: the fence does not make the
		// sink safe statically (the sink model is per point), but the
		// branch/load here never see secrets at all.
		"straightline-public": func() *core.Machine {
			b := isa.NewBuilder(1)
			b.Data(200, mem.Pub(9))
			b.Op(isa.Reg(0), isa.OpAdd, isa.ImmW(200), isa.ImmW(0))
			b.Load(isa.Reg(1), isa.R(0))
			b.Fence()
			b.Store(isa.R(1), isa.ImmW(200))
			return core.New(b.MustBuild())
		},
	}
}

func TestStaticCertifiesSafePrograms(t *testing.T) {
	for name, mk := range safePrograms(t) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			static := staticOfMachine(t, mk())
			if !static.Safe() {
				t.Fatalf("secret-free program not certified: suspicious %v", static.SuspiciousPoints())
			}
			opts := pitchfork.Options{Bound: 20, ForwardHazards: true}
			rep, err := pitchfork.Analyze(mk(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) > 0 {
				t.Fatalf("certified-safe program flagged by the explorer: %v", rep.Violations)
			}

			// Pruning on a fully safe program must collapse every fork:
			// the pruned tree is strictly smaller whenever the plain
			// tree forked at all, and findings stay empty.
			popts := opts
			popts.Prune = static
			pruned, err := pitchfork.Analyze(mk(), popts)
			if err != nil {
				t.Fatal(err)
			}
			if len(pruned.Violations) > 0 {
				t.Fatalf("pruned run found violations on a certified-safe program: %v", pruned.Violations)
			}
			if rep.Paths > 1 && pruned.Paths >= rep.Paths {
				t.Errorf("pruning did not shrink a forking safe program: %d paths pruned vs %d plain",
					pruned.Paths, rep.Paths)
			}
		})
	}
}
