#!/usr/bin/env sh
# bench.sh — run the full repository benchmark sweep and emit a
# BENCH_<sha>.json artifact in the exact format the CI bench job
# uploads (go test -json event stream), so local runs, the committed
# baseline under bench/, and the CI artifact trail are directly
# comparable with benchstat:
#
#   jq -rj 'select(.Action=="output") | .Output' BENCH_<sha>.json > out.txt
#   benchstat baseline.txt out.txt
#
# Usage: scripts/bench.sh [output-dir] [benchtime]
#   output-dir  where BENCH_<sha>.json lands (default .)
#   benchtime   go test -benchtime value (default 1x, the CI setting)
#
# -benchmem is always on: the perf trajectory tracks B/op and
# allocs/op alongside ns/op, since allocation volume is what the
# copy-on-write state representation optimizes.
#
# The sweep includes the static pre-analysis pair: BenchmarkStaticPass
# prices the taint pass itself (the whole cost of certifying a safe
# program), and BenchmarkKocherSuiteHybrid re-runs the Kocher sweep
# with static pruning hints wired in — compare it against
# BenchmarkKocherSuite to see what hybrid mode buys. The repair side
# is covered by BenchmarkRepairPortfolio, whose auto/fence/mask/ret
# sub-benchmarks price the whole mitigation portfolio against each
# pinned strategy on the same corpus.
set -eu

outdir="${1:-.}"
benchtime="${2:-1x}"
sha="$(git rev-parse HEAD 2>/dev/null || echo nogit)"
out="${outdir}/BENCH_${sha}.json"

mkdir -p "$outdir"
go test -bench=. -benchtime="$benchtime" -benchmem -run='^$' -json ./... > "$out"
echo "wrote $out" >&2
