// Cache recovery: end-to-end demonstration that the semantics'
// observation traces subsume cache side channels (§3.1) — run the
// Figure 1 attack, feed its trace into a concrete set-associative
// cache, and recover the secret byte with flush+reload.
package main

import (
	"fmt"
	"log"

	"pitchfork/spectre"
)

func main() {
	fig, ok := spectre.FigureByID("fig1")
	if !ok {
		log.Fatal("fig1 missing from gallery")
	}
	trace, err := fig.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim trace: %s\n\n", trace)

	cache, err := spectre.NewCache(64, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	fr := spectre.FlushReload{Cache: cache, ProbeBase: 0x44, Stride: 1, Slots: 256}
	hot := fr.Recover(trace)
	fmt.Printf("hot probe slots: %v\n", hot)
	for _, s := range hot {
		if s > 0x20 { // discount the victim's known in-bounds access
			fmt.Printf("recovered secret byte: %#x (planted Key[1] = 0xA1)\n", s)
		}
	}
}
