// Fence repair: the countermeasure workflow the paper's conclusion
// sketches — detect an SCT violation, apply the fence mitigation of
// §3.6 at the flagged branch, and re-verify, measuring the cost.
package main

import (
	"context"
	"fmt"
	"log"

	"pitchfork/spectre"
)

const vulnerable = `
public a1[4] = {1, 2, 3, 4};
secret key[4] = {160, 161, 162, 163};
public a2[64];
public x = 5;
public temp;
fn main() {
  if (x < 4) {
    temp = a2[a1[x] * 2];
  }
}
`

const repaired = `
public a1[4] = {1, 2, 3, 4};
secret key[4] = {160, 161, 162, 163};
public a2[64];
public x = 5;
public temp;
fn main() {
  if (x < 4) {
    fence;
    temp = a2[a1[x] * 2];
  }
}
`

func audit(name, src string) (clean bool, instrs int) {
	prog, err := spectre.CompileCTL(src, spectre.ModeC)
	if err != nil {
		log.Fatal(err)
	}
	an, err := spectre.New(
		spectre.WithBound(20),
		spectre.WithForwardHazards(true),
		spectre.WithStopAtFirst(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := an.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-60s (%d instructions)\n", name, rep.Summary(), prog.Len())
	return rep.SecretFree, prog.Len()
}

func main() {
	cleanBefore, nBefore := audit("vulnerable:", vulnerable)
	cleanAfter, nAfter := audit("repaired:", repaired)
	if cleanBefore || !cleanAfter {
		log.Fatal("unexpected audit outcome")
	}
	fmt.Printf("\nfence mitigation verified; code-size cost: +%d instruction(s)\n", nAfter-nBefore)
}
