// Fence repair: the countermeasure workflow the paper's conclusion
// sketches — detect an SCT violation, apply the fence mitigation of
// §3.6 at the flagged branch, and re-verify, measuring the cost.
package main

import (
	"fmt"
	"log"

	"pitchfork/internal/core"
	"pitchfork/internal/ct"
	"pitchfork/internal/pitchfork"
)

const vulnerable = `
public a1[4] = {1, 2, 3, 4};
secret key[4] = {160, 161, 162, 163};
public a2[64];
public x = 5;
public temp;
fn main() {
  if (x < 4) {
    temp = a2[a1[x] * 2];
  }
}
`

const repaired = `
public a1[4] = {1, 2, 3, 4};
secret key[4] = {160, 161, 162, 163};
public a2[64];
public x = 5;
public temp;
fn main() {
  if (x < 4) {
    fence;
    temp = a2[a1[x] * 2];
  }
}
`

func audit(name, src string) (clean bool, instrs int) {
	comp, err := ct.Compile(src, ct.ModeC)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := pitchfork.Analyze(core.New(comp.Prog), pitchfork.Options{
		Bound: 20, ForwardHazards: true, StopAtFirst: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-60s (%d instructions)\n", name, rep.Summary(), comp.Prog.Len())
	return rep.SecretFree(), comp.Prog.Len()
}

func main() {
	cleanBefore, nBefore := audit("vulnerable:", vulnerable)
	cleanAfter, nAfter := audit("repaired:", repaired)
	if cleanBefore || !cleanAfter {
		log.Fatal("unexpected audit outcome")
	}
	fmt.Printf("\nfence mitigation verified; code-size cost: +%d instruction(s)\n", nAfter-nBefore)
}
