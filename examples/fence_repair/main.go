// Portfolio repair: the countermeasure workflow the paper's
// conclusion sketches, fully automated — detect SCT violations, map
// each one to its guarding speculation source, patch the source,
// re-verify, and minimize, with the cost of the repair measured along
// the way. The default strategy is the mitigation portfolio: §3.6
// fences, SLH-style load masking, and Figure 13 retpolines are each
// synthesized and certified, and the cheapest certified patch by
// estimated sequential cost wins.
//
// The victim is the Figure 1 bounds-check-bypass gadget in CTL; the
// engine synthesizes the same patch Figure 8 writes by hand (one fence
// at the head of the speculated arm), proves it sufficient and
// minimal, and shows the losing portfolio rows alongside it.
package main

import (
	"context"
	"fmt"
	"log"

	"pitchfork/spectre"
)

const vulnerable = `
public a1[4] = {1, 2, 3, 4};
secret key[4] = {160, 161, 162, 163};
public a2[64];
public x = 5;
public temp;
fn main() {
  if (x < 4) {
    temp = a2[a1[x] * 2];
  }
}
`

func main() {
	prog, err := spectre.CompileCTL(vulnerable, spectre.ModeC)
	if err != nil {
		log.Fatal(err)
	}
	an, err := spectre.New(
		spectre.WithBound(20),
		spectre.WithForwardHazards(true),
		// The default: run the fence/mask/ret portfolio and keep the
		// cheapest certified patch. Pin one mitigation instead with
		// e.g. spectre.WithRepairStrategy(spectre.StrategyMask).
		spectre.WithRepairStrategy(spectre.StrategyAuto),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := an.Repair(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %s\n", "vulnerable:", res.Before.Summary())
	for _, f := range res.Before.Findings {
		fmt.Printf("  finding: %s  (speculation sources: %v)\n", f, f.Sources)
	}
	fmt.Printf("%-12s %s\n\n", "repaired:", res.After.Summary())

	if res.Outcome != spectre.RepairRepaired {
		log.Fatalf("unexpected repair outcome %q", res.Outcome)
	}
	if res.Strategy != spectre.StrategyFence {
		log.Fatalf("portfolio chose %q; the Figure 1 gadget's cheapest certified patch is the fence", res.Strategy)
	}
	fmt.Printf("chosen strategy: %s\ncost:\n%s\n", res.Strategy, res.Cost.Table())
	fmt.Printf("\nportfolio (the chosen row is starred):\n%s\n", res.StrategyTable())
	fmt.Printf("\nrepaired program (patches at %v):\n%s", res.FencePoints, res.Program.Disassemble())

	// The minimized patch set is certified 1-minimal by construction:
	// greedy deletion in cost order re-verified each survivor.
	// Cross-check the whole patch by re-analyzing the repaired program
	// from scratch.
	rep, err := an.Run(context.Background(), res.Program)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.SecretFree {
		log.Fatal("re-analysis of the repaired program found a leak")
	}
	fmt.Printf("\nre-verified: %s\n", rep.Summary())
}
