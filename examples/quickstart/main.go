// Quickstart: build the paper's Figure 1 gadget against the public
// API, prove it is sequentially constant-time, then catch the Spectre
// v1 violation with the detector.
package main

import (
	"fmt"
	"log"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
)

func main() {
	const (
		ra = isa.Reg(0)
		rb = isa.Reg(1)
		rc = isa.Reg(2)
	)
	// if (ra < 4) { rb = A[ra]; rc = B[rb] } — with Key adjacent to A.
	b := isa.NewBuilder(1)
	b.Br(isa.OpGt, []isa.Operand{isa.ImmW(4), isa.R(ra)}, 2, 4)
	b.Load(rb, isa.ImmW(0x40), isa.R(ra))
	b.Load(rc, isa.ImmW(0x44), isa.R(rb))
	b.Region(0x40, mem.Pub(10), mem.Pub(11), mem.Pub(12), mem.Pub(13))
	b.Region(0x44, mem.Pub(20), mem.Pub(21), mem.Pub(22), mem.Pub(23))
	b.Region(0x48, mem.Sec(0xA0), mem.Sec(0xA1), mem.Sec(0xA2), mem.Sec(0xA3))
	prog := b.MustBuild()

	m := core.New(prog)
	m.Regs.Write(ra, mem.Pub(9)) // attacker-chosen, out of bounds

	_, seqTrace, err := core.RunSequential(m.Clone(), 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential trace: %s\n", seqTrace)
	fmt.Printf("sequentially constant-time: %t\n\n", !seqTrace.HasSecret())

	rep, err := pitchfork.Analyze(m, pitchfork.Options{Bound: 20, StopAtFirst: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("speculative analysis:", rep.Summary())
	for _, v := range rep.Violations {
		fmt.Printf("  schedule: %s\n", v.Schedule)
		fmt.Printf("  trace:    %s\n", v.Trace)
	}
}
