// Quickstart: build the paper's Figure 1 gadget against the public
// spectre API, prove it is sequentially constant-time, then catch the
// Spectre v1 violation with the detector.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"pitchfork/spectre"
)

func main() {
	const (
		ra = spectre.Reg(0)
		rb = spectre.Reg(1)
		rc = spectre.Reg(2)
	)
	// if (ra < 4) { rb = A[ra]; rc = B[rb] } — with Key adjacent to A.
	prog := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 10, 11, 12, 13).
		Public(0x44, 20, 21, 22, 23).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, 9). // attacker-chosen, out of bounds
		MustBuild()

	seq, err := prog.Sequential(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential trace: %s\n", seq.Trace)
	fmt.Printf("sequentially constant-time: %t\n\n", seq.SecretFree())

	an, err := spectre.New(spectre.WithBound(20), spectre.WithStopAtFirst(true))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := an.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("speculative analysis:", rep.Summary())
	for _, f := range rep.Findings {
		fmt.Printf("  schedule: %s\n", strings.Join(f.Schedule, "; "))
		fmt.Printf("  trace:    %s\n", f.Trace)
	}
}
