// Quickstart: build the paper's Figure 1 gadget against the public
// spectre API, prove it is sequentially constant-time, catch the
// Spectre v1 violation with the concrete detector, then find the same
// leak with no concrete attacker input at all — the symbolic detector
// running in parallel on the same engine, witness included.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"strings"

	"pitchfork/spectre"
)

func main() {
	const (
		ra = spectre.Reg(0)
		rb = spectre.Reg(1)
		rc = spectre.Reg(2)
	)
	// if (ra < 4) { rb = A[ra]; rc = B[rb] } — with Key adjacent to A.
	prog := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 10, 11, 12, 13).
		Public(0x44, 20, 21, 22, 23).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, 9). // attacker-chosen, out of bounds
		MustBuild()

	seq, err := prog.Sequential(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential trace: %s\n", seq.Trace)
	fmt.Printf("sequentially constant-time: %t\n\n", seq.SecretFree())

	an, err := spectre.New(spectre.WithBound(20), spectre.WithStopAtFirst(true))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := an.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("speculative analysis:", rep.Summary())
	for _, f := range rep.Findings {
		fmt.Printf("  schedule: %s\n", strings.Join(f.Schedule, "; "))
		fmt.Printf("  trace:    %s\n", f.Trace)
	}

	// The same gadget with the attacker index unconstrained: symbolic
	// mode shares the engine, so WithWorkers and WithStopAtFirst
	// compose with it, and each finding carries a witness index.
	symProg := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 10, 11, 12, 13).
		Public(0x44, 20, 21, 22, 23).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SymbolicReg(ra, "x"). // any attacker-chosen index
		MustBuild()
	symAn, err := spectre.New(
		spectre.WithSymbolic(true),
		spectre.WithWorkers(runtime.NumCPU()),
		spectre.WithStopAtFirst(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	symRep, err := symAn.Run(context.Background(), symProg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsymbolic analysis:  ", symRep.Summary())
	for _, f := range symRep.Findings {
		fmt.Printf("  witness:  x = %d\n", f.Witness["x"])
	}
	if symRep.SecretFree {
		log.Fatal("symbolic mode must rediscover the v1 leak")
	}
}
