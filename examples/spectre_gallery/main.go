// Spectre gallery: re-derive the directive/effect/leakage tables of
// every worked figure in the paper (Figures 1, 2, 5, 6, 7, 8, 11, 13).
package main

import (
	"fmt"
	"log"

	"pitchfork/internal/attacks"
)

func main() {
	for _, a := range attacks.Gallery() {
		out, err := a.Render()
		if err != nil {
			log.Fatalf("%s: %v", a.ID, err)
		}
		fmt.Println(out)
	}
}
