// Spectre gallery: re-derive the directive/effect/leakage tables of
// every worked figure in the paper (Figures 1, 2, 5, 6, 7, 8, 11, 13).
package main

import (
	"fmt"
	"log"

	"pitchfork/spectre"
)

func main() {
	for _, f := range spectre.Gallery() {
		out, err := f.Render()
		if err != nil {
			log.Fatalf("%s: %v", f.ID, err)
		}
		fmt.Println(out)
	}
}
