// Crypto audit: regenerate the paper's Table 2 — the four case
// studies (curve25519-donna, libsodium secretbox, OpenSSL ssl3 record
// validation, OpenSSL MEE-CBC), each compiled under the branchy C
// backend and the constant-time FaCT backend, analyzed with the
// §4.2.1 two-phase procedure.
package main

import (
	"fmt"
	"log"

	"pitchfork/spectre"
)

func main() {
	rows, err := spectre.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 2 — ✓: violation found; f: found only with forwarding-hazard detection; –: clean")
	fmt.Println()
	fmt.Print(spectre.RenderTable2(rows))
}
