package spectre

// Service error codes — the stable, machine-readable half of the
// serving layer's error surface. Every non-2xx response from spectred
// carries one of these in the envelope's "code" field alongside the
// human-readable message. Clients (CI gates, retrying load generators,
// editor integrations) dispatch on the code, never on message text:
// messages may be reworded, codes are frozen the same way the report
// schema is. New failure classes get new codes; existing codes never
// change meaning or spelling.
//
// The codes partition by who should act:
//
//   - ErrCodeBadRequest, ErrCodeNotFound: the request itself is wrong;
//     retrying the same bytes cannot succeed.
//   - ErrCodeQueueFull, ErrCodeTimeout: the service is healthy but
//     loaded or the program is too expensive for the configured budget;
//     back off (honoring Retry-After when present) and retry.
//   - ErrCodeEnginePanic: one analysis crashed and was isolated; the
//     daemon is still up and an identical retry runs a fresh analysis.
//   - ErrCodeInternal: an unclassified serving-layer failure.
const (
	// ErrCodeBadRequest marks a malformed or unprocessable request:
	// invalid JSON, an unknown schema version, a program or config that
	// does not validate.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeNotFound marks a lookup (GET /v1/report/{fingerprint})
	// whose key the service has never seen or no longer holds.
	ErrCodeNotFound = "not_found"
	// ErrCodeQueueFull is backpressure: the bounded work queue is full.
	// Served as HTTP 429 with Retry-After.
	ErrCodeQueueFull = "queue_full"
	// ErrCodeTimeout marks an analysis that exceeded the per-request
	// budget. Served as HTTP 504.
	ErrCodeTimeout = "timeout"
	// ErrCodeEnginePanic marks an analysis that panicked and was
	// contained by the serving layer's isolation boundary. The daemon
	// survives; the flight the panic poisoned is unmapped so identical
	// retries start clean. Served as HTTP 500.
	ErrCodeEnginePanic = "engine_panic"
	// ErrCodeInternal marks any other serving-layer failure. Served as
	// HTTP 500.
	ErrCodeInternal = "internal"
)
