package spectre

import "testing"

// TestErrorCodeStability pins the service error-code spellings the same
// way the fingerprint digests are pinned: clients dispatch on these
// strings, so changing one is a wire-compatibility break and must be a
// deliberate decision, not a refactor side effect.
func TestErrorCodeStability(t *testing.T) {
	pinned := map[string]string{
		"ErrCodeBadRequest":  ErrCodeBadRequest,
		"ErrCodeNotFound":    ErrCodeNotFound,
		"ErrCodeQueueFull":   ErrCodeQueueFull,
		"ErrCodeTimeout":     ErrCodeTimeout,
		"ErrCodeEnginePanic": ErrCodeEnginePanic,
		"ErrCodeInternal":    ErrCodeInternal,
	}
	want := map[string]string{
		"ErrCodeBadRequest":  "bad_request",
		"ErrCodeNotFound":    "not_found",
		"ErrCodeQueueFull":   "queue_full",
		"ErrCodeTimeout":     "timeout",
		"ErrCodeEnginePanic": "engine_panic",
		"ErrCodeInternal":    "internal",
	}
	for name, got := range pinned {
		if got != want[name] {
			t.Errorf("%s = %q, want %q (error codes are frozen wire surface)", name, got, want[name])
		}
	}
	seen := map[string]bool{}
	for name, code := range pinned {
		if seen[code] {
			t.Errorf("%s reuses code %q", name, code)
		}
		seen[code] = true
	}
}
