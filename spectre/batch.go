package spectre

import (
	"context"
	"fmt"
	"sync"
)

// BatchItem names one program of a batch analysis.
type BatchItem struct {
	Name    string
	Program *Program
}

// BatchResult is the outcome for one batch item. Exactly one of Report
// and Err is meaningful per item — except for a context cancellation
// mid-run, where a partial report accompanies the context error.
type BatchResult struct {
	Name   string
	Report *Report
	Err    error
}

// AnalyzeBatch analyzes a corpus of programs — the Table-2 and
// Kocher-suite shape — fanning the items across the analyzer's worker
// pool: up to WithWorkers programs run concurrently, each on its own
// single-goroutine exploration. Corpus-level fan-out parallelizes
// strictly better than splitting each small exploration, and keeps
// every per-program report identical to a serial Run.
//
// Results are returned in input order regardless of completion order.
// Cancelling the context stops new items from starting (they report
// the context error with a nil report) and interrupts running ones
// (partial report plus the context error), mirroring Run.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, items []BatchItem) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(items))
	for i, it := range items {
		out[i].Name = it.Name
	}
	workers := a.cfg.Workers
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				it := items[i]
				if it.Program == nil {
					out[i].Err = fmt.Errorf("spectre: batch item %d (%q): nil program", i, it.Name)
					continue
				}
				out[i].Report, out[i].Err = a.runWith(ctx, it.Program, a.cfg.Bound, a.cfg.ForwardHazards, nil, 1)
			}
		}()
	}
	for i := range items {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(items); j++ {
				out[j].Err = err
			}
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// RunAll is AnalyzeBatch over bare programs: it analyzes every program
// and returns the reports in input order, plus the first error
// encountered (later reports are still filled in where their runs
// succeeded). It is the corpus-shaped counterpart of Run.
func (a *Analyzer) RunAll(ctx context.Context, progs []*Program) ([]*Report, error) {
	items := make([]BatchItem, len(progs))
	for i, p := range progs {
		items[i] = BatchItem{Name: fmt.Sprintf("program-%d", i), Program: p}
	}
	results := a.AnalyzeBatch(ctx, items)
	reports := make([]*Report, len(results))
	var firstErr error
	for i, r := range results {
		reports[i] = r.Report
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return reports, firstErr
}
