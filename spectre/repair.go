package spectre

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/repair"
)

// Repair outcome strings of the wire schema.
const (
	// RepairClean: the program verified secret-free as given.
	RepairClean = "clean"
	// RepairRepaired: fences were synthesized and the program
	// re-verified secret-free.
	RepairRepaired = "repaired"
	// RepairSequentialLeak: the program leaks with no speculation in
	// flight; no fence set can repair it.
	RepairSequentialLeak = "sequential-leak"
	// RepairExhausted: the synthesis budget ran out before
	// verification came back clean.
	RepairExhausted = "exhausted"
	// RepairUnsafeRewrite: the fence set would shift the target of a
	// computed jump, which the program rewriter cannot remap — the
	// repair was refused rather than silently changing behaviour.
	RepairUnsafeRewrite = "unsafe-rewrite"
	// RepairFailed: the engine could not reach a verdict — the
	// accompanying error says why (verification error, inconclusive
	// budget-truncated run, failed behaviour certificate).
	RepairFailed = "failed"
)

// RepairCost quantifies what a repair cost: fences added, program
// growth, and the exploration-effort delta between analyzing the
// unrepaired and the repaired program.
type RepairCost struct {
	// Fences is the size of the final (minimized) fence set;
	// PreMinimizeFences the size before greedy minimization.
	Fences            int `json:"fences"`
	PreMinimizeFences int `json:"preMinimizeFences"`
	// Iterations counts counterexample-guided insertion rounds.
	Iterations int `json:"iterations"`
	// InstrBefore/InstrAfter are the program's instruction counts.
	InstrBefore int `json:"instrBefore"`
	InstrAfter  int `json:"instrAfter"`
	// StatesBefore/StatesAfter are the explored-state counts of the
	// baseline run and of the final verification run.
	StatesBefore int `json:"statesBefore"`
	StatesAfter  int `json:"statesAfter"`
}

// InstrOverhead is the relative instruction-count growth (0.1 = +10%).
func (c RepairCost) InstrOverhead() float64 {
	if c.InstrBefore == 0 {
		return 0
	}
	return float64(c.InstrAfter-c.InstrBefore) / float64(c.InstrBefore)
}

// StateOverhead is the ratio of explored states after repair to
// before (fences prune speculation, so this is typically well below
// 1).
func (c RepairCost) StateOverhead() float64 {
	if c.StatesBefore == 0 {
		return 0
	}
	return float64(c.StatesAfter) / float64(c.StatesBefore)
}

// Table renders the cost as an aligned two-column table.
func (c RepairCost) Table() string {
	var b strings.Builder
	fences := fmt.Sprintf("%d", c.Fences)
	if c.PreMinimizeFences > c.Fences {
		fences += fmt.Sprintf(" (minimized from %d)", c.PreMinimizeFences)
	}
	fmt.Fprintf(&b, "  %-18s %s\n", "fences added", fences)
	fmt.Fprintf(&b, "  %-18s %d → %d (%+.1f%%)\n", "instructions", c.InstrBefore, c.InstrAfter, 100*c.InstrOverhead())
	fmt.Fprintf(&b, "  %-18s %d → %d (×%.2f)\n", "explored states", c.StatesBefore, c.StatesAfter, c.StateOverhead())
	fmt.Fprintf(&b, "  %-18s %d", "iterations", c.Iterations)
	return b.String()
}

// RepairResult is the outcome of an automatic fence repair.
type RepairResult struct {
	// Outcome is one of the Repair* constants.
	Outcome string `json:"outcome"`
	// Program is the repaired program (the input program when no
	// rewrite happened). Not part of the wire schema; the CLI emits
	// its disassembly instead.
	Program *Program `json:"-"`
	// Sites are the fence insertion sites in the original program's
	// address space; FencePoints the fence program points in the
	// repaired program's address space. Both sorted.
	Sites       []Addr `json:"sites,omitempty"`
	FencePoints []Addr `json:"fencePoints,omitempty"`
	// Cost quantifies the repair.
	Cost RepairCost `json:"cost"`
	// Before is the analysis of the unrepaired program; After the
	// final verification run (equal to Before when nothing changed).
	Before *Report `json:"before"`
	After  *Report `json:"after"`
}

// SecretFree reports whether the outcome certifies a secret-free
// program — either as given (clean) or after repair.
func (r *RepairResult) SecretFree() bool {
	return r.Outcome == RepairClean || r.Outcome == RepairRepaired
}

// Summary renders a one-line result.
func (r *RepairResult) Summary() string {
	switch r.Outcome {
	case RepairClean:
		return fmt.Sprintf("clean as given (%d states explored)", r.Cost.StatesBefore)
	case RepairRepaired:
		return fmt.Sprintf("repaired: %d fence(s), %d → %d instructions (%+.1f%%), %d → %d explored states",
			r.Cost.Fences, r.Cost.InstrBefore, r.Cost.InstrAfter, 100*r.Cost.InstrOverhead(),
			r.Cost.StatesBefore, r.Cost.StatesAfter)
	case RepairSequentialLeak:
		return "unrepairable: leaks sequentially (fences only constrain speculation)"
	case RepairExhausted:
		return fmt.Sprintf("repair exhausted after %d iteration(s), %d fence(s) tried",
			r.Cost.Iterations, len(r.Sites))
	case RepairUnsafeRewrite:
		return fmt.Sprintf("unrepairable: fence set would retarget a computed jump (%d site(s) proposed)",
			len(r.Sites))
	default:
		return fmt.Sprintf("repair failed after %d iteration(s); see the accompanying error", r.Cost.Iterations)
	}
}

// Repair synthesizes a fence repair for the program: it analyzes p
// with the analyzer's configuration, maps each finding back to its
// guarding speculation source (branch, forwarded store, or return),
// inserts fences at the source, re-verifies, and iterates until the
// program is secret-free at the analyzed bound — then minimizes the
// fence set by greedy deletion under re-verification. The repair
// additionally carries a behaviour certificate: the repaired
// program's (concrete) sequential observation trace must equal the
// original's modulo the fence address shift — in symbolic mode the
// replay substitutes each symbolic binding's concrete seed.
//
// The analyzer's WithStopAtFirst setting is ignored during repair —
// every round wants all counterexamples. A program that violates
// constant-time sequentially is reported RepairSequentialLeak and
// left unmodified. Cancelling the context aborts the synthesis with
// an error.
func (a *Analyzer) Repair(ctx context.Context, p *Program) (*RepairResult, error) {
	return a.repairWith(ctx, p, a.cfg.workers)
}

func (a *Analyzer) repairWith(ctx context.Context, p *Program, workers int) (*RepairResult, error) {
	if p == nil {
		return nil, fmt.Errorf("spectre: nil program")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The sequential precheck and the behaviour certificate replay the
	// concrete machine in every mode; under WithSymbolic the symbolic
	// bindings are simply replaced by their concrete seeds for the
	// replay (verification itself stays symbolic).
	ropts := repair.Options{
		Verify:       a.repairVerifier(ctx, p, workers),
		MaxSeqInstrs: a.cfg.maxRetired,
		Machine: func(ip *isa.Program) *core.Machine {
			return p.withProg(ip).machine()
		},
	}
	if a.cfg.staticPass {
		// Rank candidate fence sites by static suspiciousness so each
		// round commits only the most promising placement.
		if srep, err := staticAnalyze(p); err == nil {
			ropts.Hints = srep
		}
	}
	res, err := repair.Repair(p.prog, ropts)
	if res == nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	out := repairResultOf(a, p, res)
	if err != nil {
		return out, fmt.Errorf("spectre: %w", err)
	}
	return out, nil
}

// repairVerifier adapts the analyzer's configuration into the engine's
// verification hook, running each candidate at the configured bound
// with all findings collected.
func (a *Analyzer) repairVerifier(ctx context.Context, p *Program, workers int) func(*isa.Program) (pitchfork.Report, error) {
	return func(ip *isa.Program) (pitchfork.Report, error) {
		q := p.withProg(ip)
		opts := pitchfork.Options{
			Bound:          a.cfg.bound,
			ForwardHazards: a.cfg.forwardHazards,
			MaxStates:      a.cfg.maxStates,
			MaxRetired:     a.cfg.maxRetired,
			Workers:        workers,
			DedupEntries:   a.cfg.dedupEntries,
			SolverSeed:     a.cfg.solverSeed,
			Interrupt:      func() bool { return ctx.Err() != nil },
		}
		if a.cfg.staticPass {
			// The hints must match the candidate's address space, so the
			// (linear) pre-analysis reruns per rewritten program; a
			// pre-analysis error just forfeits the pruning.
			if srep, err := staticAnalyze(q); err == nil {
				opts.Prune = pruneHints(srep)
			}
		}
		var rep pitchfork.Report
		var err error
		if a.cfg.symbolic {
			rep, err = pitchfork.AnalyzeSymbolic(q.symMachine(), opts)
		} else {
			rep, err = pitchfork.Analyze(q.machine(), opts)
		}
		if err != nil {
			return rep, err
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return rep, ctxErr
		}
		return rep, nil
	}
}

// repairResultOf lifts an engine result into the wire schema,
// remapping the CTL function-entry table of the repaired program
// through the fence address shift.
func repairResultOf(a *Analyzer, p *Program, res *repair.Result) *RepairResult {
	funcs := make(map[string]Addr, len(p.funcs))
	for name, addr := range p.funcs {
		funcs[name] = res.MapTarget(addr)
	}
	repaired := p.withProg(res.Prog)
	repaired.funcs = funcs
	out := &RepairResult{
		Outcome:     res.Outcome.String(),
		Program:     repaired,
		Sites:       append([]Addr(nil), res.Sites...),
		FencePoints: append([]Addr(nil), res.Fences...),
		Cost: RepairCost{
			Fences:            len(res.Sites),
			PreMinimizeFences: res.PreMinimizeFences,
			Iterations:        res.Iterations,
			InstrBefore:       p.prog.Len(),
			InstrAfter:        res.Prog.Len(),
			StatesBefore:      res.Before.States,
			StatesAfter:       res.After.States,
		},
		Before: reportOf(res.Before, a.cfg.bound, a.cfg.forwardHazards),
		After:  reportOf(res.After, a.cfg.bound, a.cfg.forwardHazards),
	}
	return out
}

// RepairBatchResult is the outcome for one RepairAll item. Exactly one
// of Result and Err is meaningful per item, except for context
// cancellation mid-repair, where a partial result may accompany the
// error.
type RepairBatchResult struct {
	Name   string
	Result *RepairResult
	Err    error
}

// RepairAll repairs a corpus of programs, fanning the items across
// the analyzer's worker pool: up to WithWorkers repairs run
// concurrently, each with single-goroutine verification (corpus-level
// fan-out parallelizes strictly better than splitting each small
// exploration). Results are returned in input order. Cancelling the
// context stops new items from starting and aborts running ones.
func (a *Analyzer) RepairAll(ctx context.Context, items []BatchItem) []RepairBatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]RepairBatchResult, len(items))
	for i, it := range items {
		out[i].Name = it.Name
	}
	workers := a.cfg.workers
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				it := items[i]
				if it.Program == nil {
					out[i].Err = fmt.Errorf("spectre: batch item %d (%q): nil program", i, it.Name)
					continue
				}
				out[i].Result, out[i].Err = a.repairWith(ctx, it.Program, 1)
			}
		}()
	}
	for i := range items {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(items); j++ {
				out[j].Err = err
			}
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// withProg returns a Program sharing p's register seeds and symbolic
// bindings but carrying a different instruction/data image — how the
// repair engine rebuilds machines for rewritten candidates. The CTL
// address tables are shared as-is; callers exposing a rewritten
// program publicly must remap funcs (see repairResultOf).
func (p *Program) withProg(ip *isa.Program) *Program {
	return &Program{
		prog:    ip,
		regs:    p.regs,
		symRegs: p.symRegs,
		symMem:  p.symMem,
		globals: p.globals,
		funcs:   p.funcs,
	}
}
