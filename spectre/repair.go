package spectre

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/repair"
)

// Repair outcome strings of the wire schema.
const (
	// RepairClean: the program verified secret-free as given.
	RepairClean = "clean"
	// RepairRepaired: fences were synthesized and the program
	// re-verified secret-free.
	RepairRepaired = "repaired"
	// RepairSequentialLeak: the program leaks with no speculation in
	// flight; no fence set can repair it.
	RepairSequentialLeak = "sequential-leak"
	// RepairExhausted: the synthesis budget ran out before
	// verification came back clean.
	RepairExhausted = "exhausted"
	// RepairUnsafeRewrite: the fence set would shift the target of a
	// computed jump, which the program rewriter cannot remap — the
	// repair was refused rather than silently changing behaviour.
	RepairUnsafeRewrite = "unsafe-rewrite"
	// RepairFailed: the engine could not reach a verdict — the
	// accompanying error says why (verification error, inconclusive
	// budget-truncated run, failed behaviour certificate).
	RepairFailed = "failed"
)

// Mitigation strategy names of the wire schema, accepted by
// WithRepairStrategy and reported in RepairResult.Strategy.
const (
	// StrategyAuto runs the whole portfolio and keeps the cheapest
	// certified patch by estimated sequential cost.
	StrategyAuto = repair.StrategyAuto
	// StrategyFence inserts the paper's §3.6 speculation fences.
	StrategyFence = repair.StrategyFence
	// StrategyMask is SLH-style speculative load hardening: a predicate
	// register maintained at protected branches masks flagged load
	// addresses on mis-speculated paths.
	StrategyMask = repair.StrategyMask
	// StrategyRet rewrites flagged returns into Figure 13 retpolines so
	// stale RSB predictions park on a fence.
	StrategyRet = repair.StrategyRet
)

// RepairCost quantifies what a repair cost: patch sites committed,
// instructions inserted, program growth, the sequential-schedule cost
// the portfolio optimizes, and the exploration-effort delta between
// analyzing the unrepaired and the repaired program.
type RepairCost struct {
	// Fences is the size of the final (minimized) patch-site set;
	// PreMinimizeFences the inserted-instruction count before greedy
	// minimization. (The names predate the strategy portfolio: for the
	// fence strategy sites and inserted instructions coincide.)
	Fences            int `json:"fences"`
	PreMinimizeFences int `json:"preMinimizeFences"`
	// Inserted is the number of instructions the final patch inserted
	// (replacements keep the count unchanged, so InstrAfter =
	// InstrBefore + Inserted).
	Inserted int `json:"inserted"`
	// Iterations counts counterexample-guided insertion rounds.
	Iterations int `json:"iterations"`
	// InstrBefore/InstrAfter are the program's instruction counts.
	InstrBefore int `json:"instrBefore"`
	InstrAfter  int `json:"instrAfter"`
	// SeqInstrsBefore/SeqInstrsAfter are the sequential cost model's
	// estimates — instructions retired by the bounded canonical
	// sequential replay — for the original and repaired program. This
	// is the quantity the auto portfolio minimizes: it charges patches
	// on the architectural path (mask predicates, retpolines) and not
	// patches only mis-speculation executes (most fences).
	SeqInstrsBefore int `json:"seqInstrsBefore"`
	SeqInstrsAfter  int `json:"seqInstrsAfter"`
	// StatesBefore/StatesAfter are the explored-state counts of the
	// baseline run and of the final verification run.
	StatesBefore int `json:"statesBefore"`
	StatesAfter  int `json:"statesAfter"`
}

// InstrOverhead is the relative instruction-count growth (0.1 = +10%).
func (c RepairCost) InstrOverhead() float64 {
	if c.InstrBefore == 0 {
		return 0
	}
	return float64(c.InstrAfter-c.InstrBefore) / float64(c.InstrBefore)
}

// StateOverhead is the ratio of explored states after repair to
// before (fences prune speculation, so this is typically well below
// 1).
func (c RepairCost) StateOverhead() float64 {
	if c.StatesBefore == 0 {
		return 0
	}
	return float64(c.StatesAfter) / float64(c.StatesBefore)
}

// Table renders the cost as an aligned two-column table.
func (c RepairCost) Table() string {
	var b strings.Builder
	fences := fmt.Sprintf("%d", c.Fences)
	if c.PreMinimizeFences > c.Inserted {
		fences += fmt.Sprintf(" (minimized from %d)", c.PreMinimizeFences)
	}
	fmt.Fprintf(&b, "  %-18s %s\n", "fences added", fences)
	fmt.Fprintf(&b, "  %-18s %d → %d (%+.1f%%)\n", "instructions", c.InstrBefore, c.InstrAfter, 100*c.InstrOverhead())
	if c.SeqInstrsBefore > 0 {
		fmt.Fprintf(&b, "  %-18s %d → %d retired\n", "sequential cost", c.SeqInstrsBefore, c.SeqInstrsAfter)
	}
	fmt.Fprintf(&b, "  %-18s %d → %d (×%.2f)\n", "explored states", c.StatesBefore, c.StatesAfter, c.StateOverhead())
	fmt.Fprintf(&b, "  %-18s %d", "iterations", c.Iterations)
	return b.String()
}

// RepairResult is the outcome of an automatic repair.
type RepairResult struct {
	// Outcome is one of the Repair* constants.
	Outcome string `json:"outcome"`
	// Strategy names the mitigation that produced this result (one of
	// the Strategy* constants, never "auto": an auto run reports the
	// winning strategy here and the attempts under PerStrategy). Empty
	// when the program was clean as given.
	Strategy string `json:"strategy,omitempty"`
	// Program is the repaired program (the input program when no
	// rewrite happened). Not part of the wire schema; the CLI emits
	// its disassembly instead.
	Program *Program `json:"-"`
	// Sites are the committed patch sites in the original program's
	// address space (fence insertion points, protected branches, or
	// rewritten rets, per Strategy); FencePoints the inserted
	// instructions' program points in the repaired program's address
	// space. Both sorted.
	Sites       []Addr `json:"sites,omitempty"`
	FencePoints []Addr `json:"fencePoints,omitempty"`
	// Cost quantifies the repair.
	Cost RepairCost `json:"cost"`
	// PerStrategy reports every strategy's attempt, in portfolio
	// order, when the repair ran the auto portfolio (nil otherwise).
	PerStrategy []StrategyCost `json:"perStrategy,omitempty"`
	// Before is the analysis of the unrepaired program; After the
	// final verification run (equal to Before when nothing changed).
	Before *Report `json:"before"`
	After  *Report `json:"after"`
}

// StrategyCost is one portfolio attempt on the wire: the strategy, how
// the attempt ended, and what it would have cost.
type StrategyCost struct {
	Strategy string     `json:"strategy"`
	Outcome  string     `json:"outcome"`
	Cost     RepairCost `json:"cost"`
}

// SecretFree reports whether the outcome certifies a secret-free
// program — either as given (clean) or after repair.
func (r *RepairResult) SecretFree() bool {
	return r.Outcome == RepairClean || r.Outcome == RepairRepaired
}

// Summary renders a one-line result.
func (r *RepairResult) Summary() string {
	switch r.Outcome {
	case RepairClean:
		return fmt.Sprintf("clean as given (%d states explored)", r.Cost.StatesBefore)
	case RepairRepaired:
		if r.Strategy == "" || r.Strategy == StrategyFence {
			return fmt.Sprintf("repaired: %d fence(s), %d → %d instructions (%+.1f%%), %d → %d explored states",
				r.Cost.Fences, r.Cost.InstrBefore, r.Cost.InstrAfter, 100*r.Cost.InstrOverhead(),
				r.Cost.StatesBefore, r.Cost.StatesAfter)
		}
		return fmt.Sprintf("repaired: %s at %d site(s), %d → %d instructions (%+.1f%%), %d → %d explored states",
			r.Strategy, r.Cost.Fences, r.Cost.InstrBefore, r.Cost.InstrAfter, 100*r.Cost.InstrOverhead(),
			r.Cost.StatesBefore, r.Cost.StatesAfter)
	case RepairSequentialLeak:
		return "unrepairable: leaks sequentially (fences only constrain speculation)"
	case RepairExhausted:
		return fmt.Sprintf("repair exhausted after %d iteration(s), %d fence(s) tried",
			r.Cost.Iterations, len(r.Sites))
	case RepairUnsafeRewrite:
		return fmt.Sprintf("unrepairable: fence set would retarget a computed jump (%d site(s) proposed)",
			len(r.Sites))
	default:
		return fmt.Sprintf("repair failed after %d iteration(s); see the accompanying error", r.Cost.Iterations)
	}
}

// StrategyTable renders the portfolio attempts as an aligned table,
// one row per strategy, marking the chosen one. Empty when the repair
// did not run the auto portfolio.
func (r *RepairResult) StrategyTable() string {
	if len(r.PerStrategy) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-10s %-15s %6s %9s %12s %12s\n", "strategy", "outcome", "sites", "inserted", "seq cost", "instrs")
	for _, a := range r.PerStrategy {
		chosen := " "
		if a.Strategy == r.Strategy {
			chosen = "*"
		}
		seq, instrs := "-", "-"
		if a.Outcome == RepairRepaired || a.Outcome == RepairClean {
			seq = fmt.Sprintf("%d → %d", a.Cost.SeqInstrsBefore, a.Cost.SeqInstrsAfter)
			instrs = fmt.Sprintf("%d → %d", a.Cost.InstrBefore, a.Cost.InstrAfter)
		}
		fmt.Fprintf(&b, "%s %-10s %-15s %6d %9d %12s %12s\n", chosen, a.Strategy, a.Outcome, a.Cost.Fences, a.Cost.Inserted, seq, instrs)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Repair synthesizes a mitigation for the program: it analyzes p with
// the analyzer's configuration, maps each finding back to its guarding
// speculation source (branch, forwarded store, or return), asks the
// configured strategy (WithRepairStrategy; the cheapest-certified auto
// portfolio by default) for patches at those sources, re-verifies, and
// iterates until the program is secret-free at the analyzed bound —
// then minimizes the patch-site set by greedy deletion under
// re-verification, ordered by the sequential cost model. The repair
// additionally carries a behaviour certificate: the repaired program's
// (concrete) sequential observation trace must equal the original's
// modulo the patch plan's address map — in symbolic mode the replay
// substitutes each symbolic binding's concrete seed.
//
// The analyzer's WithStopAtFirst setting is ignored during repair —
// every round wants all counterexamples. A program that violates
// constant-time sequentially is reported RepairSequentialLeak and
// left unmodified. Cancelling the context aborts the synthesis with
// an error.
func (a *Analyzer) Repair(ctx context.Context, p *Program) (*RepairResult, error) {
	return a.repairWith(ctx, p, a.cfg.Workers)
}

func (a *Analyzer) repairWith(ctx context.Context, p *Program, workers int) (*RepairResult, error) {
	if p == nil {
		return nil, fmt.Errorf("spectre: nil program")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The sequential precheck and the behaviour certificate replay the
	// concrete machine in every mode; under WithSymbolic the symbolic
	// bindings are simply replaced by their concrete seeds for the
	// replay (verification itself stays symbolic).
	ropts := repair.Options{
		Verify:       a.repairVerifier(ctx, p, workers),
		MaxSeqInstrs: a.cfg.MaxRetired,
		Strategy:     a.cfg.RepairStrategy,
		Machine: func(ip *isa.Program) *core.Machine {
			return p.withProg(ip).machine()
		},
	}
	if a.cfg.StaticPass {
		// Rank candidate fence sites by static suspiciousness so each
		// round commits only the most promising placement.
		if srep, err := staticAnalyze(p); err == nil {
			ropts.Hints = srep
		}
	}
	res, err := repair.Repair(p.prog, ropts)
	if res == nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	out := repairResultOf(a, p, res)
	if err != nil {
		return out, fmt.Errorf("spectre: %w", err)
	}
	return out, nil
}

// repairVerifier adapts the analyzer's configuration into the engine's
// verification hook, running each candidate at the configured bound
// with all findings collected.
func (a *Analyzer) repairVerifier(ctx context.Context, p *Program, workers int) func(*isa.Program) (pitchfork.Report, error) {
	return func(ip *isa.Program) (pitchfork.Report, error) {
		q := p.withProg(ip)
		opts := pitchfork.Options{
			Bound:          a.cfg.Bound,
			ForwardHazards: a.cfg.ForwardHazards,
			MaxStates:      a.cfg.MaxStates,
			MaxRetired:     a.cfg.MaxRetired,
			Workers:        workers,
			DedupEntries:   a.cfg.DedupEntries,
			SolverSeed:     a.cfg.SolverSeed,
			Interrupt:      func() bool { return ctx.Err() != nil },
		}
		if a.cfg.StaticPass {
			// The hints must match the candidate's address space, so the
			// (linear) pre-analysis reruns per rewritten program; a
			// pre-analysis error just forfeits the pruning.
			if srep, err := staticAnalyze(q); err == nil {
				opts.Prune = pruneHints(srep)
			}
		}
		var rep pitchfork.Report
		var err error
		if a.cfg.Symbolic {
			rep, err = pitchfork.AnalyzeSymbolic(q.symMachine(), opts)
		} else {
			rep, err = pitchfork.Analyze(q.machine(), opts)
		}
		if err != nil {
			return rep, err
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return rep, ctxErr
		}
		return rep, nil
	}
}

// repairResultOf lifts an engine result into the wire schema,
// remapping the CTL function-entry table of the repaired program
// through the patch plan's address map.
func repairResultOf(a *Analyzer, p *Program, res *repair.Result) *RepairResult {
	funcs := make(map[string]Addr, len(p.funcs))
	for name, addr := range p.funcs {
		funcs[name] = res.MapTarget(addr)
	}
	repaired := p.withProg(res.Prog)
	repaired.funcs = funcs
	strategy := res.Strategy
	if res.Outcome == repair.OutcomeClean {
		strategy = ""
	}
	out := &RepairResult{
		Outcome:     res.Outcome.String(),
		Strategy:    strategy,
		Program:     repaired,
		Sites:       append([]Addr(nil), res.Sites...),
		FencePoints: append([]Addr(nil), res.Fences...),
		Cost:        repairCostOf(p, res),
		Before:      reportOf(res.Before, a.cfg.Bound, a.cfg.ForwardHazards),
		After:       reportOf(res.After, a.cfg.Bound, a.cfg.ForwardHazards),
	}
	for _, attempt := range res.PerStrategy {
		out.PerStrategy = append(out.PerStrategy, StrategyCost{
			Strategy: attempt.Strategy,
			Outcome:  attempt.Outcome.String(),
			Cost:     repairCostOf(p, attempt),
		})
	}
	return out
}

// repairCostOf condenses one engine result (the chosen repair or a
// portfolio attempt) into the wire cost row.
func repairCostOf(p *Program, res *repair.Result) RepairCost {
	return RepairCost{
		Fences:            len(res.Sites),
		PreMinimizeFences: res.PreMinimizeFences,
		Inserted:          res.Inserted,
		Iterations:        res.Iterations,
		InstrBefore:       p.prog.Len(),
		InstrAfter:        res.Prog.Len(),
		SeqInstrsBefore:   res.SeqInstrsBefore,
		SeqInstrsAfter:    res.SeqInstrs,
		StatesBefore:      res.Before.States,
		StatesAfter:       res.After.States,
	}
}

// RepairBatchResult is the outcome for one RepairAll item. Exactly one
// of Result and Err is meaningful per item, except for context
// cancellation mid-repair, where a partial result may accompany the
// error.
type RepairBatchResult struct {
	Name   string
	Result *RepairResult
	Err    error
}

// RepairAll repairs a corpus of programs, fanning the items across
// the analyzer's worker pool: up to WithWorkers repairs run
// concurrently, each with single-goroutine verification (corpus-level
// fan-out parallelizes strictly better than splitting each small
// exploration). Results are returned in input order. Cancelling the
// context stops new items from starting and aborts running ones.
func (a *Analyzer) RepairAll(ctx context.Context, items []BatchItem) []RepairBatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]RepairBatchResult, len(items))
	for i, it := range items {
		out[i].Name = it.Name
	}
	workers := a.cfg.Workers
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				it := items[i]
				if it.Program == nil {
					out[i].Err = fmt.Errorf("spectre: batch item %d (%q): nil program", i, it.Name)
					continue
				}
				out[i].Result, out[i].Err = a.repairWith(ctx, it.Program, 1)
			}
		}()
	}
	for i := range items {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(items); j++ {
				out[j].Err = err
			}
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// withProg returns a Program sharing p's register seeds and symbolic
// bindings but carrying a different instruction/data image — how the
// repair engine rebuilds machines for rewritten candidates. The CTL
// address tables are shared as-is; callers exposing a rewritten
// program publicly must remap funcs (see repairResultOf).
func (p *Program) withProg(ip *isa.Program) *Program {
	return &Program{
		prog:    ip,
		regs:    p.regs,
		symRegs: p.symRegs,
		symMem:  p.symMem,
		globals: p.globals,
		funcs:   p.funcs,
	}
}
