package spectre

import (
	"fmt"

	"pitchfork/internal/core"
	"pitchfork/internal/ct"
	"pitchfork/internal/mem"
	"pitchfork/internal/symx"
)

// SourceMode selects the CTL compilation backend.
type SourceMode uint8

const (
	// ModeC compiles branchy, C-style code: secret-dependent
	// conditions become conditional branches.
	ModeC SourceMode = iota
	// ModeFaCT compiles constant-time selects in place of
	// secret-dependent branches, FaCT-style.
	ModeFaCT
)

// String names the mode ("c" or "fact").
func (m SourceMode) String() string {
	if m == ModeFaCT {
		return "fact"
	}
	return "c"
}

// ParseSourceMode resolves "c" or "fact"; convenient for flag values.
func ParseSourceMode(s string) (SourceMode, error) {
	switch s {
	case "c":
		return ModeC, nil
	case "fact":
		return ModeFaCT, nil
	}
	return 0, fmt.Errorf("spectre: unknown source mode %q (want \"c\" or \"fact\")", s)
}

// CompileCTL parses, checks, and compiles a CTL source unit under the
// given backend. Global-variable and function addresses are exposed
// through the returned Program's Globals and Lookup.
func CompileCTL(src string, mode SourceMode) (*Program, error) {
	cmode := ct.ModeC
	if mode == ModeFaCT {
		cmode = ct.ModeFaCT
	}
	comp, err := ct.Compile(src, cmode)
	if err != nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	globals := make(map[string]Word, len(comp.GlobalAddr))
	for name, a := range comp.GlobalAddr {
		globals[name] = a
	}
	funcs := make(map[string]Addr, len(comp.FuncEntry))
	for name, a := range comp.FuncEntry {
		funcs[name] = a
	}
	return &Program{
		prog:    comp.Prog,
		regs:    make(map[mem.Reg]mem.Value),
		symRegs: make(map[mem.Reg]symx.Expr),
		symMem:  make(map[mem.Word]symx.Expr),
		globals: globals,
		funcs:   funcs,
	}, nil
}

// SymbolicGlobal rebinds a CTL global variable's cell to an
// unconstrained public symbolic input (the attacker-controlled values
// of the Kocher cases). It reports whether the global exists.
func (p *Program) SymbolicGlobal(name, varName string) bool {
	a, ok := p.globals[name]
	if !ok {
		return false
	}
	p.symMem[a] = symx.NewVar(varName, mem.Public)
	return true
}

// SequentialResult is the outcome of an in-order, non-speculative
// execution of a program.
type SequentialResult struct {
	// Trace is the observation trace of the sequential run; a
	// secret-labeled observation in it means the program is not even
	// sequentially constant-time.
	Trace Trace
	m     *core.Machine
}

// SecretFree reports whether the sequential trace is free of
// secret-labeled observations.
func (r *SequentialResult) SecretFree() bool { return r.Trace.SecretFree() }

// Read returns the final memory word at address a and whether it is
// secret-labeled.
func (r *SequentialResult) Read(a Word) (value Word, secret bool) {
	v, err := r.m.Mem.Read(a)
	if err != nil {
		return 0, false
	}
	return v.W, v.IsSecret()
}

// Sequential executes the program in order, with no speculation, for
// at most maxInstrs retired instructions — the baseline the paper's
// sequential constant-time property is stated over, and a convenient
// way to inspect a program's architectural results.
func (p *Program) Sequential(maxInstrs int) (*SequentialResult, error) {
	m := p.machine()
	_, trace, err := core.RunSequential(m, maxInstrs)
	if err != nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	return &SequentialResult{Trace: traceOf(trace), m: m}, nil
}
