package spectre

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
)

// Config is the analyzer's full configuration as an explicit,
// JSON-serializable value: every knob the functional options set, with
// no hidden state. It exists so analysis requests can travel over a
// wire — the serving layer (cmd/spectred) accepts a Config in the
// request body, and CacheKey canonicalizes it into the verdict-cache
// key — and so a configuration is never ambiguous: after New resolves
// its options, every field holds its effective value (defaults
// included), and New() and New(WithSolverSeed(0)) produce identical
// Configs, hence identical cache keys.
//
// The functional options (WithBound, WithWorkers, …) are a thin layer
// over this struct; NewFromConfig constructs an Analyzer from a Config
// directly. The zero Config is not runnable (Bound must be positive) —
// start from DefaultConfig and overlay, which is also how the serving
// layer treats partial JSON documents.
type Config struct {
	// Bound is the speculation bound: the maximum reorder-buffer size,
	// hence the maximum speculation depth. Must be positive.
	Bound int `json:"bound"`
	// ForwardHazards enables exploration of store-forwarding outcomes
	// (Spectre v4 and the paper's "f" findings).
	ForwardHazards bool `json:"forwardHazards"`
	// MaxStates bounds the number of explored machine states; 0 is the
	// exploration default (unlimited).
	MaxStates int `json:"maxStates"`
	// MaxRetired bounds retired instructions per exploration path; 0 is
	// the exploration default.
	MaxRetired int `json:"maxRetired"`
	// StopAtFirst stops each run at the first finding.
	StopAtFirst bool `json:"stopAtFirst"`
	// Symbolic switches to symbolic mode (see WithSymbolic).
	Symbolic bool `json:"symbolic"`
	// SolverSeed seeds the symbolic solver's randomized model search.
	SolverSeed int64 `json:"solverSeed"`
	// Workers is the number of exploration goroutines; 0 resolves to
	// runtime.NumCPU() at construction (the resolved value is what
	// Analyzer.Config reports and what CacheKey hashes).
	Workers int `json:"workers"`
	// DedupEntries bounds the machine-fingerprint dedup table; 0
	// disables deduplication.
	DedupEntries int `json:"dedupEntries"`
	// StaticPass runs the speculative-taint pre-analysis before
	// exploration (see WithStaticPass).
	StaticPass bool `json:"staticPass"`
	// RepairStrategy selects the mitigation Repair synthesizes (one of
	// the Strategy* constants); "" resolves to StrategyAuto.
	RepairStrategy string `json:"repairStrategy"`
}

// DefaultConfig returns the configuration New uses with no options:
// concrete-mode analysis at DefaultBound with forwarding-hazard
// detection enabled, serial exploration, auto repair strategy. Every
// default is explicit — the returned value round-trips through JSON
// and CacheKey without further resolution.
func DefaultConfig() Config {
	return Config{
		Bound:          DefaultBound,
		ForwardHazards: true,
		Workers:        1,
		RepairStrategy: StrategyAuto,
	}
}

// normalize resolves the two fields whose zero value means "pick for
// me": Workers 0 → NumCPU, RepairStrategy "" → auto. Mirrors what the
// corresponding options do, so a Config built by hand and one built by
// options cannot diverge.
func (c *Config) normalize() {
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.RepairStrategy == "" {
		c.RepairStrategy = StrategyAuto
	}
}

// validate rejects unrunnable configurations with the same messages
// the functional options emit.
func (c Config) validate() error {
	if c.Bound < 1 {
		return fmt.Errorf("spectre: speculation bound must be positive, got %d", c.Bound)
	}
	if c.MaxStates < 0 {
		return fmt.Errorf("spectre: max states must be non-negative, got %d", c.MaxStates)
	}
	if c.MaxRetired < 0 {
		return fmt.Errorf("spectre: max retired must be non-negative, got %d", c.MaxRetired)
	}
	if c.Workers < 0 {
		return fmt.Errorf("spectre: workers must be non-negative, got %d", c.Workers)
	}
	if c.DedupEntries < 0 {
		return fmt.Errorf("spectre: dedup entries must be non-negative, got %d", c.DedupEntries)
	}
	switch c.RepairStrategy {
	case StrategyAuto, StrategyFence, StrategyMask, StrategyRet:
	default:
		return fmt.Errorf("spectre: unknown repair strategy %q (want auto, fence, mask or ret)", c.RepairStrategy)
	}
	return nil
}

// CacheKey returns the canonical options key: a hex digest over every
// configuration field, in a fixed rendering that does not depend on
// struct layout or JSON encoding details. Two Configs have equal cache
// keys iff they are equal after normalization — and equal Configs
// produce byte-identical reports on the same program, which is the
// contract the fingerprint-keyed verdict cache (internal/serve) relies
// on. Every field participates, including ones like Workers that do
// not change the finding set, because they do appear in the wire
// Report; a key must never alias two configurations whose reports can
// differ in any byte.
//
// The digest is stability-pinned (spectre/stability_test.go): it may
// only change with a deliberate bump of the version tag below, never
// silently.
func (c Config) CacheKey() string {
	c.normalize()
	canonical := fmt.Sprintf(
		"spectre-config-v1|bound=%d|fwd=%t|maxStates=%d|maxRetired=%d|stopAtFirst=%t|symbolic=%t|solverSeed=%d|workers=%d|dedup=%d|static=%t|strategy=%s",
		c.Bound, c.ForwardHazards, c.MaxStates, c.MaxRetired, c.StopAtFirst,
		c.Symbolic, c.SolverSeed, c.Workers, c.DedupEntries, c.StaticPass,
		c.RepairStrategy)
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// NewFromConfig constructs an Analyzer from an explicit Config — the
// deserialized-request path the serving layer uses, equivalent to New
// with the corresponding options. The Config is normalized (Workers 0
// → NumCPU, RepairStrategy "" → auto) and validated; the analyzer
// keeps a copy, so later mutations of c do not affect it.
func NewFromConfig(c Config) (*Analyzer, error) {
	c.normalize()
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &Analyzer{cfg: c}, nil
}

// Config returns the analyzer's resolved configuration snapshot: every
// field holds its effective value, with defaults and option effects
// applied. Marshaling it and feeding it back through NewFromConfig
// reproduces the analyzer exactly; its CacheKey is the canonical
// options key under which the serving layer caches this analyzer's
// verdicts.
func (a *Analyzer) Config() Config { return a.cfg }
