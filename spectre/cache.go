package spectre

import (
	"fmt"

	"pitchfork/internal/cachesim"
)

// Cache is a set-associative LRU cache driven by observation traces.
// The paper deliberately does not model caches (§3.1): any replacement
// policy is a function of the observation sequence. This type
// demonstrates that claim constructively — replay a trace and probe
// what a timing attacker would see.
type Cache struct {
	c *cachesim.Cache
}

// NewCache builds a cache with the given geometry. sets and ways must
// be positive; lineWords is the words-per-line granularity (1 models
// word-granular probing).
func NewCache(sets, ways int, lineWords Word) (*Cache, error) {
	c, err := cachesim.New(sets, ways, lineWords)
	if err != nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	return &Cache{c: c}, nil
}

// Touch accesses address a, inserting its line MRU-first.
func (c *Cache) Touch(a Word) { c.c.Touch(a) }

// Flush evicts the line holding a.
func (c *Cache) Flush(a Word) { c.c.Flush(a) }

// FlushAll empties the cache.
func (c *Cache) FlushAll() { c.c.FlushAll() }

// Hit reports whether a's line is resident.
func (c *Cache) Hit(a Word) bool { return c.c.Hit(a) }

// Replay drives the cache with the memory events of a trace: reads
// and writes touch their address; forwards bypass the cache.
func (c *Cache) Replay(t Trace) { c.c.Replay(coreTrace(t)) }

// FlushReload is the classic probe: flush the probe array, run the
// victim (the trace), and reload each slot — a hot slot's index is a
// candidate leaked value.
type FlushReload struct {
	Cache *Cache
	// ProbeBase is the start of the attacker-visible probe array,
	// Stride the spacing between slots, Slots the number of candidate
	// secret values.
	ProbeBase Word
	Stride    Word
	Slots     int
}

// Recover replays the victim trace and returns every hot probe slot
// in increasing order. Accesses the victim makes architecturally are
// known to the attacker and can be discounted; the remaining hot slot
// is the leaked secret.
func (fr FlushReload) Recover(t Trace) []int {
	return cachesim.FlushReload{
		Cache:     fr.Cache.c,
		ProbeBase: fr.ProbeBase,
		Stride:    fr.Stride,
		Slots:     fr.Slots,
	}.Recover(coreTrace(t))
}
