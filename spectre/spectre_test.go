package spectre_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pitchfork/spectre"
)

const (
	ra = spectre.Reg(0)
	rb = spectre.Reg(1)
	rc = spectre.Reg(2)
)

// v1Program is the Figure 1 gadget: bounds check, then the classic
// double load, with the secret key adjacent to the public array.
func v1Program(idx spectre.Word) *spectre.Program {
	return spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, idx).
		MustBuild()
}

// v4Program is the Figure 7 gadget: a zeroing store whose address
// resolves late, then a double load over the stale secret.
func v4Program() *spectre.Program {
	return spectre.NewProgramBuilder().
		Store(spectre.Imm(0), spectre.Imm(3), spectre.R(ra)).
		Load(rc, spectre.Imm(0x43)).
		Load(rc, spectre.Imm(0x44), spectre.R(rc)).
		Secret(0x40, 1, 2, 3, 0x5A).
		Public(0x44, 5, 6, 7, 8).
		SetReg(ra, 0x40).
		MustBuild()
}

// wideProgram is a victim whose misprediction leaks on the first
// explored path, followed by a deep cascade of branches that makes the
// remaining exploration expensive — the shape the cancellation tests
// need: an early finding and a lot of work left.
func wideProgram(branches int) *spectre.Program {
	pb := spectre.NewProgramBuilder().
		// 4 < ra is true for ra=9, so the architectural path skips the
		// loads; the mispredicted (guess-false) arm leaks and is the
		// arm depth-first exploration enters first.
		Br(spectre.OpLt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 4, 2).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb))
	for i := 0; i < branches; i++ {
		n := pb.Here()
		pb.Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, n+1, n+1)
	}
	return pb.
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, 9).
		MustBuild()
}

func mustNew(t *testing.T, opts ...spectre.Option) *spectre.Analyzer {
	t.Helper()
	an, err := spectre.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func mustRun(t *testing.T, an *spectre.Analyzer, p *spectre.Program) *spectre.Report {
	t.Helper()
	rep, err := an.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := spectre.New(spectre.WithBound(0)); err == nil {
		t.Fatal("bound 0 must be rejected")
	}
	if _, err := spectre.New(spectre.WithBound(-3)); err == nil {
		t.Fatal("negative bound must be rejected")
	}
	if _, err := spectre.New(spectre.WithMaxStates(-1)); err == nil {
		t.Fatal("negative max states must be rejected")
	}
	if _, err := spectre.New(spectre.WithMaxRetired(-1)); err == nil {
		t.Fatal("negative max retired must be rejected")
	}
}

func TestBoundPlumbing(t *testing.T) {
	// At bound 20 the v1 gadget leaks; at bound 1 there is no
	// speculation window, so the same program is clean.
	rep := mustRun(t, mustNew(t, spectre.WithBound(20)), v1Program(9))
	if rep.SecretFree {
		t.Fatal("v1 gadget must leak at bound 20")
	}
	if rep.Bound != 20 || rep.Mode != "concrete" {
		t.Fatalf("report metadata wrong: bound %d mode %q", rep.Bound, rep.Mode)
	}
	if got := rep.Findings[0].Variant; got != spectre.VariantV1 {
		t.Fatalf("variant = %q, want %q", got, spectre.VariantV1)
	}
	rep = mustRun(t, mustNew(t, spectre.WithBound(1)), v1Program(9))
	if !rep.SecretFree {
		t.Fatal("bound 1 must close the speculation window")
	}
}

func TestForwardHazardsPlumbing(t *testing.T) {
	on := mustRun(t, mustNew(t, spectre.WithBound(20), spectre.WithForwardHazards(true)), v4Program())
	if on.SecretFree {
		t.Fatal("v4 gadget must leak with forwarding hazards on")
	}
	if got := on.Findings[0].Variant; got != spectre.VariantV4 {
		t.Fatalf("variant = %q, want %q", got, spectre.VariantV4)
	}
	off := mustRun(t, mustNew(t, spectre.WithBound(20), spectre.WithForwardHazards(false)), v4Program())
	if !off.SecretFree {
		t.Fatal("v4 gadget must be invisible with forwarding hazards off")
	}
	if on.ForwardHazards != true || off.ForwardHazards != false {
		t.Fatal("ForwardHazards must be recorded in the report")
	}
}

func TestMaxStatesPlumbing(t *testing.T) {
	rep := mustRun(t, mustNew(t, spectre.WithMaxStates(10)), wideProgram(8))
	if !rep.Truncated {
		t.Fatal("tiny state budget must truncate")
	}
	if rep.States != 10 {
		t.Fatalf("states = %d, want exactly the budget 10", rep.States)
	}
}

func TestMaxRetiredPlumbing(t *testing.T) {
	// A straight-line program: one path; a small retired budget must
	// cut it short, visible as fewer explored states.
	pb := spectre.NewProgramBuilder()
	for i := 0; i < 100; i++ {
		pb.Op(ra, spectre.OpAdd, spectre.R(ra), spectre.Imm(1))
	}
	prog := pb.MustBuild()
	full := mustRun(t, mustNew(t), prog)
	capped := mustRun(t, mustNew(t, spectre.WithMaxRetired(5)), prog)
	if capped.States >= full.States {
		t.Fatalf("retired budget must shorten the path: capped %d states, full %d", capped.States, full.States)
	}
}

// doubleV1Program chains two independent v1 gadgets, so the full
// exploration reports two findings (one per mispredicted guard).
func doubleV1Program() *spectre.Program {
	pb := spectre.NewProgramBuilder()
	for i := 0; i < 2; i++ {
		n := pb.Here()
		pb.Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, n+1, n+3).
			Load(rb, spectre.Imm(0x40), spectre.R(ra)).
			Load(rc, spectre.Imm(0x44), spectre.R(rb))
	}
	return pb.
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, 9).
		MustBuild()
}

func TestStopAtFirstPlumbing(t *testing.T) {
	all := mustRun(t, mustNew(t, spectre.WithBound(20)), doubleV1Program())
	if len(all.Findings) < 2 {
		t.Fatalf("full exploration must report multiple findings, got %d", len(all.Findings))
	}
	first := mustRun(t, mustNew(t, spectre.WithBound(20), spectre.WithStopAtFirst(true)), doubleV1Program())
	if len(first.Findings) != 1 {
		t.Fatalf("StopAtFirst must report exactly one finding, got %d", len(first.Findings))
	}
}

func TestSymbolicModeWithWitness(t *testing.T) {
	prog := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SymbolicReg(ra, "x").
		MustBuild()
	an := mustNew(t,
		spectre.WithBound(20),
		spectre.WithSymbolic(true),
		spectre.WithSolverSeed(42),
		spectre.WithStopAtFirst(true),
	)
	rep := mustRun(t, an, prog)
	if rep.Mode != "symbolic" {
		t.Fatalf("mode = %q, want symbolic", rep.Mode)
	}
	if rep.SecretFree {
		t.Fatal("symbolic analysis must find the v1 leak with x unconstrained")
	}
	if _, ok := rep.Findings[0].Witness["x"]; !ok {
		t.Fatalf("finding must carry a witness for x, got %v", rep.Findings[0].Witness)
	}
	// PC attribution matches concrete mode: the leaking load at point 3,
	// not the fetch head at detection time.
	if got := rep.Findings[0].PC; got != 3 {
		t.Fatalf("symbolic finding PC = %d, want 3 (the leaking load)", got)
	}
}

func TestStreamDeliversAndStops(t *testing.T) {
	var streamed []spectre.Finding
	an := mustNew(t, spectre.WithBound(20))
	rep, err := an.Stream(context.Background(), v1Program(9), func(f spectre.Finding) bool {
		streamed = append(streamed, f)
		return false // stop after the first finding
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 1 {
		t.Fatalf("yield must fire exactly once, got %d", len(streamed))
	}
	if !rep.Interrupted {
		t.Fatal("a stopping yield must mark the report interrupted")
	}
	if len(rep.Findings) != 1 || rep.Findings[0].String() != streamed[0].String() {
		t.Fatal("the streamed finding must match the report")
	}
	if _, err := an.Stream(context.Background(), v1Program(9), nil); err == nil {
		t.Fatal("nil yield must be rejected")
	}
}

func TestFindingsIterator(t *testing.T) {
	an := mustNew(t, spectre.WithBound(20))
	count := 0
	for f := range an.Findings(context.Background(), v1Program(9)) {
		if f.Variant != spectre.VariantV1 {
			t.Fatalf("variant = %q, want %q", f.Variant, spectre.VariantV1)
		}
		count++
		break // early break must stop the exploration cleanly
	}
	if count != 1 {
		t.Fatalf("iterator yielded %d findings before break, want 1", count)
	}
}

func TestContextCancellationMidExploration(t *testing.T) {
	prog := wideProgram(14) // thousands of paths after the early leak
	an := mustNew(t, spectre.WithBound(20), spectre.WithMaxStates(1_000_000))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var partial []spectre.Finding
	rep, err := an.Stream(ctx, prog, func(f spectre.Finding) bool {
		partial = append(partial, f)
		cancel() // cancel mid-exploration, keep yielding
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || !rep.Interrupted {
		t.Fatal("cancellation must return the partial report with Interrupted set")
	}
	if len(partial) == 0 || len(rep.Findings) == 0 {
		t.Fatal("cancellation must preserve the partial findings")
	}
	if rep.States > 50_000 {
		t.Fatalf("cancellation was not prompt: %d states explored", rep.States)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, symbolic := range []bool{false, true} {
		an := mustNew(t, spectre.WithBound(20), spectre.WithSymbolic(symbolic))
		rep, err := an.Run(ctx, v1Program(9))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("symbolic=%t: err = %v, want context.Canceled", symbolic, err)
		}
		if rep == nil || !rep.Interrupted || rep.States != 0 {
			t.Fatalf("symbolic=%t: pre-cancelled run must explore nothing, got %+v", symbolic, rep)
		}
	}
}

func TestRunProcedure(t *testing.T) {
	pr, err := mustNew(t).RunProcedure(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	if pr.SecretFree() {
		t.Fatal("procedure must flag the v1 gadget")
	}
	if pr.Phase1 == nil || pr.Phase2 != nil {
		t.Fatal("a phase-1 hit must skip phase 2")
	}
	if pr.Phase1.Bound != spectre.BoundNoHazards {
		t.Fatalf("phase 1 bound = %d, want %d", pr.Phase1.Bound, spectre.BoundNoHazards)
	}

	fenced := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 5).
		Fence().
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, 9).
		MustBuild()
	pr, err = mustNew(t).RunProcedure(context.Background(), fenced)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.SecretFree() {
		t.Fatalf("fenced gadget must pass both phases: %s / %s",
			pr.Phase1.Summary(), pr.Phase2.Summary())
	}
	if pr.Phase2.Bound != spectre.BoundWithHazards || !pr.Phase2.ForwardHazards {
		t.Fatal("phase 2 must run hazard-aware at the reduced bound")
	}
}

func TestCompileCTLAndSequential(t *testing.T) {
	const src = `
public size = 4;
public a1[4] = {1, 2, 3, 4};
secret key[8] = {160, 161, 162, 163, 164, 165, 166, 167};
public a2[64];
public x = 5;
public temp;
fn main() {
  if (x < size) {
    temp = temp & a2[a1[x] * 2];
  }
}
`
	prog, err := spectre.CompileCTL(src, spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Lookup("temp"); !ok {
		t.Fatal("global temp must be addressable")
	}
	if _, ok := prog.Lookup("main"); !ok {
		t.Fatal("function main must be addressable")
	}
	if !strings.Contains(prog.Disassemble(), "br(") {
		t.Fatal("ModeC must compile the guard to a branch")
	}
	seq, err := prog.Sequential(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.SecretFree() {
		t.Fatal("the guarded victim is sequentially constant-time")
	}
	rep := mustRun(t, mustNew(t, spectre.WithStopAtFirst(true)), prog)
	if rep.SecretFree {
		t.Fatal("the guarded victim must leak speculatively")
	}

	// The symbolic detector finds the same leak with x unconstrained.
	if !prog.SymbolicGlobal("x", "x") {
		t.Fatal("global x must be bindable")
	}
	if prog.SymbolicGlobal("nosuch", "y") {
		t.Fatal("binding a missing global must fail")
	}
	sym := mustRun(t, mustNew(t,
		spectre.WithSymbolic(true),
		spectre.WithSolverSeed(7),
		spectre.WithStopAtFirst(true)), prog)
	if sym.SecretFree {
		t.Fatal("symbolic analysis must flag the victim")
	}

	if _, err := spectre.CompileCTL("fn main() { nonsense", spectre.ModeC); err == nil {
		t.Fatal("malformed CTL must be rejected")
	}
	if _, err := spectre.ParseSourceMode("weird"); err == nil {
		t.Fatal("unknown source mode must be rejected")
	}
}

func TestBuildDecouplesFromBuilder(t *testing.T) {
	pb := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, 9)
	vulnerable, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the builder afterwards must not retro-modify the
	// already-built program.
	pb.SetReg(ra, 1)
	rep := mustRun(t, mustNew(t, spectre.WithBound(20)), vulnerable)
	if rep.SecretFree {
		t.Fatal("built program must keep its own register seed (ra=9)")
	}
}

func TestBuilderValidation(t *testing.T) {
	// A br with wrong operand arity must fail validation.
	_, err := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(1)}, 2, 2).
		Build()
	if err == nil {
		t.Fatal("malformed program must be rejected")
	}
}

func TestGalleryAndCache(t *testing.T) {
	gallery := spectre.Gallery()
	if len(gallery) == 0 {
		t.Fatal("gallery must not be empty")
	}
	fig, ok := spectre.FigureByID("fig1")
	if !ok {
		t.Fatal("fig1 must exist")
	}
	trace, err := fig.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if trace.SecretFree() != !fig.LeaksSecret {
		t.Fatal("fig1's trace must leak as advertised")
	}
	out, err := fig.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Directive") {
		t.Fatal("render must produce the directive table")
	}

	cache, err := spectre.NewCache(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr := spectre.FlushReload{Cache: cache, ProbeBase: 0x44, Stride: 1, Slots: 256}
	hot := fr.Recover(trace)
	want := 0xA1 // the planted Key[1]
	found := false
	for _, s := range hot {
		if s == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("flush+reload must recover %#x, got %v", want, hot)
	}
	if _, err := spectre.NewCache(0, 1, 1); err == nil {
		t.Fatal("invalid cache geometry must be rejected")
	}
}
