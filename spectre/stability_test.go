package spectre_test

import (
	"context"
	"encoding/json"
	"testing"

	"pitchfork/spectre"
)

// These tests pin the two halves of the verdict-cache key to fixed hex
// digests over a fixed corpus. The serving layer (internal/serve)
// persists verdicts on disk under (Program.Fingerprint,
// Config.CacheKey); if either digest rotates silently, every deployed
// cache is invalidated — and worse, a digest that rotates between
// binaries of the same wire version would split identical requests
// across keys. A failure here must be resolved by a deliberate
// version-tag bump (programWireVersion / the config key's "v1"
// prefix), never by updating the constants casually.

func kocher01Source() string {
	return `
public size = 4;
public a1[4] = {1, 2, 3, 4};
secret key[8] = {160, 161, 162, 163, 164, 165, 166, 167};
public a2[64];
public x = 5;
public temp;
fn main() {
  if (x < size) {
    temp = temp & a2[a1[x] * 2];
  }
}`
}

func TestFingerprintStability(t *testing.T) {
	kocher, err := spectre.CompileCTL(kocher01Source(), spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	fig1, ok := spectre.FigureByID("fig1")
	if !ok {
		t.Fatal("no fig1 in the gallery")
	}
	builder := spectre.NewProgramBuilder().
		Load(spectre.Reg(0), spectre.Imm(0x40)).
		Secret(0x40, 42).
		SetReg(spectre.Reg(1), 7).
		SymbolicReg(spectre.Reg(2), "x").
		MustBuild()

	pins := []struct {
		name string
		prog *spectre.Program
		want string
	}{
		{"kocher01", kocher, "2cf3da35c00adfb0c4bfc4eaa36505ffb6a654775b9596da0f1bed81fc672a66"},
		{"fig1", fig1.Program(), "2e13ebd3e9313357b2f0ea6565fd749a47390e25a282ffd8f23f91a9c5d582f7"},
		{"builder", builder, "e69352fd51b401b1a1682a44159345bf9cd00ed659bfc681ab061178a4ba2b6e"},
	}
	for _, p := range pins {
		if got := p.prog.Fingerprint(); got != p.want {
			t.Errorf("%s: fingerprint rotated:\n got %s\nwant %s", p.name, got, p.want)
		}
	}

	// An independent compilation of the same source fingerprints
	// identically — the property that makes CI-driven repeat traffic
	// cache at all.
	recompiled, err := spectre.CompileCTL(kocher01Source(), spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	if recompiled.Fingerprint() != kocher.Fingerprint() {
		t.Error("recompiling identical source changed the fingerprint")
	}

	// Any content difference must separate fingerprints.
	perturbed, err := spectre.CompileCTL(kocher01Source()+"\nfn pad() { temp = 0; }", spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.Fingerprint() == kocher.Fingerprint() {
		t.Error("distinct programs share a fingerprint")
	}
}

func TestConfigCacheKeyStability(t *testing.T) {
	if got, want := spectre.DefaultConfig().CacheKey(), "f551c3bc34067dc07602c2c98730352230f5d7219358066e3da70a950e697906"; got != want {
		t.Errorf("default config key rotated:\n got %s\nwant %s", got, want)
	}
	c := spectre.DefaultConfig()
	c.Symbolic = true
	c.SolverSeed = 42
	c.Bound = 250
	c.ForwardHazards = false
	if got, want := c.CacheKey(), "977fbceee88ce5be4de6cabc4da6de84b026f8d5a028ec0f2e44dd976bf77636"; got != want {
		t.Errorf("symbolic config key rotated:\n got %s\nwant %s", got, want)
	}
}

// TestProgramWireRoundTrip checks that the builder wire form preserves
// everything the fingerprint covers: a program survives
// marshal → unmarshal with an identical fingerprint and an identical
// re-encoding, for both a CTL-compiled and a hand-built program.
func TestProgramWireRoundTrip(t *testing.T) {
	kocher, err := spectre.CompileCTL(kocher01Source(), spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	builder := spectre.NewProgramBuilder().
		Load(spectre.Reg(0), spectre.Imm(0x40), spectre.R(spectre.Reg(2))).
		Store(spectre.SecretImm(9), spectre.Imm(0x50)).
		Br(spectre.OpLt, []spectre.Operand{spectre.R(spectre.Reg(0)), spectre.Imm(4)}, 1, 5).
		Secret(0x40, 42, 43).
		Public(0x50, 1).
		SetReg(spectre.Reg(1), 7).
		SetSecretReg(spectre.Reg(3), 8).
		SymbolicReg(spectre.Reg(2), "x").
		SymbolicSecretMem(0x60, "k").
		MustBuild()

	for _, tc := range []struct {
		name string
		prog *spectre.Program
	}{{"ctl", kocher}, {"builder", builder}} {
		raw, err := json.Marshal(tc.prog)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		var back spectre.Program
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", tc.name, err)
		}
		if got, want := back.Fingerprint(), tc.prog.Fingerprint(); got != want {
			t.Errorf("%s: fingerprint drifted across the wire:\n got %s\nwant %s", tc.name, got, want)
		}
		again, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", tc.name, err)
		}
		if string(again) != string(raw) {
			t.Errorf("%s: wire form not canonical across a round trip", tc.name)
		}
		if back.Len() != tc.prog.Len() || back.Entry() != tc.prog.Entry() {
			t.Errorf("%s: structure drifted: len %d→%d entry %d→%d",
				tc.name, tc.prog.Len(), back.Len(), tc.prog.Entry(), back.Entry())
		}
	}

	// A wire-form round trip must analyze identically to the original
	// — the property that lets the service accept built programs.
	an := mustNew(t, spectre.WithBound(20))
	rep1, err := an.Run(context.Background(), kocher)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(kocher)
	var back spectre.Program
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	rep2, err := an.Run(context.Background(), &back)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(rep1)
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Errorf("wire round trip changed the verdict:\n got %s\nwant %s", b2, b1)
	}
}
