package spectre

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/symx"
)

// This file defines the builder wire form: a canonical, versioned JSON
// encoding of a Program — instructions, data image, symbol tables,
// register seeds, and symbolic bindings — implemented as
// MarshalJSON/UnmarshalJSON so a built Program travels over the
// analysis service's wire exactly like CTL source does. The encoding
// is canonical (all map-derived sections are sorted, all fields are
// rendered deterministically), which makes it double as the input of
// Program.Fingerprint: equal programs produce byte-equal encodings,
// hence equal fingerprints.

// programWireVersion tags the encoding; UnmarshalJSON rejects versions
// it does not understand rather than guessing.
const programWireVersion = 1

// fingerprintDomain separates program fingerprints from any other
// sha256 use; bumping it (or programWireVersion) deliberately rotates
// every cache key, which is why both are pinned by
// spectre/stability_test.go.
const fingerprintDomain = "spectre-program-v1\x00"

type wireOperand struct {
	// Reg is set for register operands; W/L carry the labeled
	// immediate otherwise.
	Reg *uint16 `json:"reg,omitempty"`
	W   uint64  `json:"w,omitempty"`
	L   uint64  `json:"l,omitempty"`
}

type wireInstr struct {
	PC     uint64        `json:"pc"`
	Kind   uint8         `json:"kind"`
	Dst    uint16        `json:"dst,omitempty"`
	Op     uint8         `json:"op,omitempty"`
	Args   []wireOperand `json:"args,omitempty"`
	Src    *wireOperand  `json:"src,omitempty"`
	True   uint64        `json:"true,omitempty"`
	False  uint64        `json:"false,omitempty"`
	Next   uint64        `json:"next,omitempty"`
	Callee uint64        `json:"callee,omitempty"`
	RetPt  uint64        `json:"retPt,omitempty"`
}

type wireDatum struct {
	A uint64 `json:"a"`
	W uint64 `json:"w,omitempty"`
	L uint64 `json:"l,omitempty"`
}

type wireSymbol struct {
	N string `json:"n"`
	A uint64 `json:"a"`
}

type wireRegSeed struct {
	R uint16 `json:"r"`
	W uint64 `json:"w,omitempty"`
	L uint64 `json:"l,omitempty"`
}

type wireSymReg struct {
	R uint16 `json:"r"`
	N string `json:"n"`
	L uint64 `json:"l,omitempty"`
}

type wireSymMem struct {
	A uint64 `json:"a"`
	N string `json:"n"`
	L uint64 `json:"l,omitempty"`
}

type programWire struct {
	Version int           `json:"version"`
	Entry   uint64        `json:"entry"`
	Instrs  []wireInstr   `json:"instrs"`
	Data    []wireDatum   `json:"data,omitempty"`
	Symbols []wireSymbol  `json:"symbols,omitempty"`
	Regs    []wireRegSeed `json:"regs,omitempty"`
	SymRegs []wireSymReg  `json:"symRegs,omitempty"`
	SymMem  []wireSymMem  `json:"symMem,omitempty"`
	Globals []wireSymbol  `json:"globals,omitempty"`
	Funcs   []wireSymbol  `json:"funcs,omitempty"`
}

func wireOperandOf(o isa.Operand) wireOperand {
	if o.IsReg {
		r := uint16(o.Reg)
		return wireOperand{Reg: &r}
	}
	return wireOperand{W: o.Imm.W, L: uint64(o.Imm.L)}
}

func (w wireOperand) operand() isa.Operand {
	if w.Reg != nil {
		return isa.R(mem.Reg(*w.Reg))
	}
	return isa.Imm(mem.V(w.W, mem.Label(w.L)))
}

func sortedSymbols(m map[string]uint64) []wireSymbol {
	if len(m) == 0 {
		return nil
	}
	out := make([]wireSymbol, 0, len(m))
	for n, a := range m {
		out = append(out, wireSymbol{N: n, A: a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out
}

// wire lowers the program into its canonical wire value.
func (p *Program) wire() (*programWire, error) {
	w := &programWire{Version: programWireVersion, Entry: p.prog.Entry}
	for _, pc := range p.prog.Points() {
		in, _ := p.prog.At(pc)
		wi := wireInstr{
			PC:     pc,
			Kind:   uint8(in.Kind),
			Dst:    uint16(in.Dst),
			Op:     uint8(in.Op),
			True:   in.True,
			False:  in.False,
			Next:   in.Next,
			Callee: in.Callee,
			RetPt:  in.RetPt,
		}
		for _, a := range in.Args {
			wi.Args = append(wi.Args, wireOperandOf(a))
		}
		if in.Kind == isa.KStore {
			src := wireOperandOf(in.Src)
			wi.Src = &src
		}
		w.Instrs = append(w.Instrs, wi)
	}
	if w.Instrs == nil {
		w.Instrs = []wireInstr{}
	}
	for a, v := range p.prog.Data {
		w.Data = append(w.Data, wireDatum{A: a, W: v.W, L: uint64(v.L)})
	}
	sort.Slice(w.Data, func(i, j int) bool { return w.Data[i].A < w.Data[j].A })
	w.Symbols = sortedSymbols(p.prog.Symbols)
	for r, v := range p.regs {
		w.Regs = append(w.Regs, wireRegSeed{R: uint16(r), W: v.W, L: uint64(v.L)})
	}
	sort.Slice(w.Regs, func(i, j int) bool { return w.Regs[i].R < w.Regs[j].R })
	for r, e := range p.symRegs {
		v, ok := e.(symx.Var)
		if !ok {
			return nil, fmt.Errorf("spectre: register %d: non-variable symbolic binding cannot be serialized", r)
		}
		w.SymRegs = append(w.SymRegs, wireSymReg{R: uint16(r), N: v.Name, L: uint64(v.L)})
	}
	sort.Slice(w.SymRegs, func(i, j int) bool { return w.SymRegs[i].R < w.SymRegs[j].R })
	for a, e := range p.symMem {
		v, ok := e.(symx.Var)
		if !ok {
			return nil, fmt.Errorf("spectre: memory %d: non-variable symbolic binding cannot be serialized", a)
		}
		w.SymMem = append(w.SymMem, wireSymMem{A: a, N: v.Name, L: uint64(v.L)})
	}
	sort.Slice(w.SymMem, func(i, j int) bool { return w.SymMem[i].A < w.SymMem[j].A })
	w.Globals = sortedSymbols(p.globals)
	w.Funcs = sortedSymbols(p.funcs)
	return w, nil
}

// MarshalJSON encodes the program in the canonical builder wire form:
// a versioned JSON document carrying instructions, the data image,
// symbol tables, register seeds, and symbolic bindings. The encoding
// is deterministic — equal programs marshal to equal bytes — and
// round-trips through UnmarshalJSON. Symbolic bindings must be the
// plain named variables the builder's Symbolic* methods install (the
// only kind any exported constructor produces).
func (p *Program) MarshalJSON() ([]byte, error) {
	w, err := p.wire()
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the builder wire form produced by MarshalJSON,
// validating the program like ProgramBuilder.Build does. Unknown wire
// versions are rejected.
func (p *Program) UnmarshalJSON(data []byte) error {
	var w programWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("spectre: program wire form: %w", err)
	}
	if w.Version != programWireVersion {
		return fmt.Errorf("spectre: unsupported program wire version %d (want %d)", w.Version, programWireVersion)
	}
	prog := isa.NewProgram(w.Entry)
	for _, wi := range w.Instrs {
		in := isa.Instr{
			Kind:   isa.Kind(wi.Kind),
			Dst:    mem.Reg(wi.Dst),
			Op:     isa.Opcode(wi.Op),
			True:   wi.True,
			False:  wi.False,
			Next:   wi.Next,
			Callee: wi.Callee,
			RetPt:  wi.RetPt,
		}
		for _, a := range wi.Args {
			in.Args = append(in.Args, a.operand())
		}
		if wi.Src != nil {
			in.Src = wi.Src.operand()
		}
		prog.Add(wi.PC, in)
	}
	for _, d := range w.Data {
		prog.SetData(d.A, mem.V(d.W, mem.Label(d.L)))
	}
	for _, s := range w.Symbols {
		prog.Define(s.N, s.A)
	}
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("spectre: program wire form: %w", err)
	}
	q := Program{
		prog:    prog,
		regs:    make(map[mem.Reg]mem.Value, len(w.Regs)),
		symRegs: make(map[mem.Reg]symx.Expr, len(w.SymRegs)),
		symMem:  make(map[mem.Word]symx.Expr, len(w.SymMem)),
	}
	for _, r := range w.Regs {
		q.regs[mem.Reg(r.R)] = mem.V(r.W, mem.Label(r.L))
	}
	for _, r := range w.SymRegs {
		q.symRegs[mem.Reg(r.R)] = symx.Var{Name: r.N, L: mem.Label(r.L)}
	}
	for _, m := range w.SymMem {
		q.symMem[m.A] = symx.Var{Name: m.N, L: mem.Label(m.L)}
	}
	if len(w.Globals) > 0 {
		q.globals = make(map[string]Word, len(w.Globals))
		for _, s := range w.Globals {
			q.globals[s.N] = s.A
		}
	}
	if len(w.Funcs) > 0 {
		q.funcs = make(map[string]Addr, len(w.Funcs))
		for _, s := range w.Funcs {
			q.funcs[s.N] = s.A
		}
	}
	*p = q
	return nil
}

// Fingerprint returns the program's content hash: a sha256 hex digest
// over the canonical wire encoding — instructions, entry point, data
// image, symbol tables, register seeds, and symbolic bindings. It
// covers everything that can influence an analysis verdict (and,
// conservatively, the name tables, which cannot), so two programs with
// equal fingerprints produce byte-identical reports under equal
// Configs. That is the contract the serving layer's verdict cache is
// keyed on, which is why the digest is stability-pinned
// (spectre/stability_test.go): it may only rotate with a deliberate
// wire-version bump, never silently.
func (p *Program) Fingerprint() string {
	w, err := p.wire()
	if err != nil {
		// Unreachable through any exported constructor: builders, CTL
		// compilation, and the gallery only install named-variable
		// bindings, the one kind wire() refuses to serialize.
		panic(fmt.Sprintf("spectre: Fingerprint: %v", err))
	}
	raw, err := json.Marshal(w)
	if err != nil {
		panic(fmt.Sprintf("spectre: Fingerprint: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil))
}
