package spectre_test

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"pitchfork/spectre"
)

// TestConfigDefaultsExplicit pins the options-surface symmetry the
// cache key depends on: New with no options, New with options that
// restate the defaults, and NewFromConfig(DefaultConfig()) must all
// resolve to the same Config — and hence the same CacheKey. The
// historical asymmetry was exactly WithSolverSeed: "default" and
// "explicitly zero" were unrepresentable as one configuration.
func TestConfigDefaultsExplicit(t *testing.T) {
	plain := mustNew(t)
	restated := mustNew(t,
		spectre.WithSolverSeed(0),
		spectre.WithBound(spectre.DefaultBound),
		spectre.WithForwardHazards(true),
		spectre.WithMaxStates(0),
		spectre.WithMaxRetired(0),
		spectre.WithStopAtFirst(false),
		spectre.WithSymbolic(false),
		spectre.WithDedup(0),
		spectre.WithStaticPass(false),
		spectre.WithRepairStrategy(spectre.StrategyAuto),
	)
	fromCfg, err := spectre.NewFromConfig(spectre.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Config()
	for name, an := range map[string]*spectre.Analyzer{"restated": restated, "fromConfig": fromCfg} {
		if got := an.Config(); got != want {
			t.Errorf("%s: config diverged from the default construction:\n got %+v\nwant %+v", name, got, want)
		}
		if got, w := an.Config().CacheKey(), want.CacheKey(); got != w {
			t.Errorf("%s: cache key diverged: %s vs %s", name, got, w)
		}
	}
}

// TestConfigSnapshotResolved checks Analyzer.Config returns the
// resolved snapshot: every option lands in its field, and the two
// pick-for-me zeroes (Workers, RepairStrategy) come back resolved.
func TestConfigSnapshotResolved(t *testing.T) {
	an := mustNew(t,
		spectre.WithBound(250),
		spectre.WithForwardHazards(false),
		spectre.WithMaxStates(1000),
		spectre.WithMaxRetired(500),
		spectre.WithStopAtFirst(true),
		spectre.WithSymbolic(true),
		spectre.WithSolverSeed(7),
		spectre.WithWorkers(3),
		spectre.WithDedup(64),
		spectre.WithStaticPass(true),
		spectre.WithRepairStrategy(spectre.StrategyFence),
	)
	want := spectre.Config{
		Bound:          250,
		ForwardHazards: false,
		MaxStates:      1000,
		MaxRetired:     500,
		StopAtFirst:    true,
		Symbolic:       true,
		SolverSeed:     7,
		Workers:        3,
		DedupEntries:   64,
		StaticPass:     true,
		RepairStrategy: spectre.StrategyFence,
	}
	if got := an.Config(); got != want {
		t.Errorf("snapshot drifted:\n got %+v\nwant %+v", got, want)
	}

	zeroWorkers := spectre.DefaultConfig()
	zeroWorkers.Workers = 0
	zeroWorkers.RepairStrategy = ""
	resolved, err := spectre.NewFromConfig(zeroWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if got := resolved.Config().Workers; got != runtime.NumCPU() {
		t.Errorf("Workers 0 resolved to %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := resolved.Config().RepairStrategy; got != spectre.StrategyAuto {
		t.Errorf("empty strategy resolved to %q, want auto", got)
	}
}

// TestConfigJSONRoundTrip: a Config survives JSON and rebuilds an
// equivalent analyzer — the property the service's request path is
// built on. Partial documents overlay DefaultConfig, the documented
// deserialization recipe.
func TestConfigJSONRoundTrip(t *testing.T) {
	orig := mustNew(t, spectre.WithBound(250), spectre.WithForwardHazards(false), spectre.WithStopAtFirst(true)).Config()
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back := spectre.DefaultConfig()
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", back, orig)
	}

	partial := spectre.DefaultConfig()
	if err := json.Unmarshal([]byte(`{"bound": 99}`), &partial); err != nil {
		t.Fatal(err)
	}
	want := spectre.DefaultConfig()
	want.Bound = 99
	if partial != want {
		t.Fatalf("partial overlay drifted:\n got %+v\nwant %+v", partial, want)
	}

	// A config that came over the wire must run: same report as the
	// option-built analyzer.
	an1 := mustNew(t, spectre.WithBound(20))
	an2, err := spectre.NewFromConfig(an1.Config())
	if err != nil {
		t.Fatal(err)
	}
	prog := v1Program(9)
	rep1, err := an1.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := an2.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(rep1)
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Errorf("config-rebuilt analyzer diverged:\n got %s\nwant %s", b2, b1)
	}
}

// TestNewFromConfigRejects mirrors the option validations.
func TestNewFromConfigRejects(t *testing.T) {
	for name, mutate := range map[string]func(*spectre.Config){
		"zero bound":       func(c *spectre.Config) { c.Bound = 0 },
		"negative states":  func(c *spectre.Config) { c.MaxStates = -1 },
		"negative retired": func(c *spectre.Config) { c.MaxRetired = -1 },
		"negative workers": func(c *spectre.Config) { c.Workers = -1 },
		"negative dedup":   func(c *spectre.Config) { c.DedupEntries = -1 },
		"bad strategy":     func(c *spectre.Config) { c.RepairStrategy = "nop" },
	} {
		c := spectre.DefaultConfig()
		mutate(&c)
		if _, err := spectre.NewFromConfig(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCacheKeySeparates: configurations that can differ in any report
// byte must not alias.
func TestCacheKeySeparates(t *testing.T) {
	base := spectre.DefaultConfig()
	seen := map[string]string{base.CacheKey(): "base"}
	for name, mutate := range map[string]func(*spectre.Config){
		"bound":      func(c *spectre.Config) { c.Bound = 21 },
		"fwd":        func(c *spectre.Config) { c.ForwardHazards = false },
		"maxStates":  func(c *spectre.Config) { c.MaxStates = 10 },
		"maxRetired": func(c *spectre.Config) { c.MaxRetired = 10 },
		"stopFirst":  func(c *spectre.Config) { c.StopAtFirst = true },
		"symbolic":   func(c *spectre.Config) { c.Symbolic = true },
		"seed":       func(c *spectre.Config) { c.SolverSeed = 1 },
		"workers":    func(c *spectre.Config) { c.Workers = 2 },
		"dedup":      func(c *spectre.Config) { c.DedupEntries = 16 },
		"static":     func(c *spectre.Config) { c.StaticPass = true },
		"strategy":   func(c *spectre.Config) { c.RepairStrategy = spectre.StrategyMask },
	} {
		c := base
		mutate(&c)
		key := c.CacheKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("cache key aliases %q and %q", name, prev)
		}
		seen[key] = name
	}
}
