package spectre_test

import (
	"context"
	"strings"
	"testing"

	"pitchfork/internal/testcases"
	"pitchfork/spectre"
)

// repairAnalyzer is the corpus configuration: hazard-aware bound with
// fingerprint dedup so the loop cases stay tractable.
func repairAnalyzer(t *testing.T, opts ...spectre.Option) *spectre.Analyzer {
	t.Helper()
	an, err := spectre.New(append([]spectre.Option{spectre.WithDedup(1 << 20)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func compileCase(t *testing.T, c testcases.Case) *spectre.Program {
	t.Helper()
	p, err := spectre.CompileCTL(c.Source(), spectre.ModeC)
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	return p
}

// TestRepairAllKocherCorpus is the acceptance criterion: RepairAll
// over the full Kocher corpus (classic, speculative-only, and v1.1
// suites) yields re-verified secret-free programs for every flagged
// speculative case, with a reported fence count and overhead, and
// reports the architecturally leaking cases unrepairable.
func TestRepairAllKocherCorpus(t *testing.T) {
	var cases []testcases.Case
	for _, suite := range [][]testcases.Case{testcases.Kocher(), testcases.SpecOnlyV1(), testcases.V11()} {
		cases = append(cases, suite...)
	}
	items := make([]spectre.BatchItem, len(cases))
	for i, c := range cases {
		items[i] = spectre.BatchItem{Name: c.Name, Program: compileCase(t, c)}
	}
	an := repairAnalyzer(t, spectre.WithWorkers(4))
	results := an.RepairAll(context.Background(), items)
	repaired := 0
	for i, r := range results {
		c := cases[i]
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
			continue
		}
		res := r.Result
		switch {
		case c.SequentialLeak:
			if res.Outcome != spectre.RepairSequentialLeak {
				t.Errorf("%s: outcome %s, want sequential-leak", c.Name, res.Outcome)
			}
		case res.Outcome == spectre.RepairClean:
			// Not flagged at this bound; nothing to do.
		case res.Outcome == spectre.RepairRepaired:
			repaired++
			if !res.After.SecretFree {
				t.Errorf("%s: repaired program still flagged: %s", c.Name, res.After.Summary())
			}
			if res.Cost.Fences < 1 || res.Cost.InstrAfter != res.Cost.InstrBefore+res.Cost.Inserted {
				t.Errorf("%s: inconsistent cost %+v", c.Name, res.Cost)
			}
			if res.Cost.StatesBefore == 0 || res.Cost.StatesAfter == 0 {
				t.Errorf("%s: missing exploration-overhead accounting: %+v", c.Name, res.Cost)
			}
			// The default strategy is the auto portfolio: the chosen
			// patch must name its strategy, carry all three attempts on
			// the wire, and cost no more (by the sequential model) than
			// the fence-only baseline.
			if res.Strategy == "" || res.Strategy == spectre.StrategyAuto {
				t.Errorf("%s: chosen strategy %q", c.Name, res.Strategy)
			}
			if len(res.PerStrategy) != 3 {
				t.Errorf("%s: %d portfolio attempts on the wire, want 3", c.Name, len(res.PerStrategy))
			}
			for _, a := range res.PerStrategy {
				if a.Strategy == spectre.StrategyFence && a.Outcome == spectre.RepairRepaired &&
					res.Cost.SeqInstrsAfter > a.Cost.SeqInstrsAfter {
					t.Errorf("%s: chose %s at seq cost %d over fence at %d", c.Name, res.Strategy,
						res.Cost.SeqInstrsAfter, a.Cost.SeqInstrsAfter)
				}
			}
			// The repaired wrapper must re-analyze clean through the
			// ordinary Run path too.
			rep, err := an.Run(context.Background(), res.Program)
			if err != nil {
				t.Errorf("%s: re-run: %v", c.Name, err)
			} else if !rep.SecretFree {
				t.Errorf("%s: re-run of repaired program flagged: %s", c.Name, rep.Summary())
			}
		default:
			t.Errorf("%s: outcome %s (before: %s)", c.Name, res.Outcome, res.Before.Summary())
		}
	}
	if repaired < len(cases)/2 {
		t.Errorf("only %d/%d cases repaired; the corpus has gone quiet", repaired, len(cases))
	}
}

// TestRepairGalleryCorpus runs the repair engine over the paper's
// worked figures: every figure the analyzer flags must come back
// secret-free.
func TestRepairGalleryCorpus(t *testing.T) {
	an := repairAnalyzer(t)
	flagged := 0
	for _, f := range spectre.Gallery() {
		p := f.Program()
		res, err := an.Repair(context.Background(), p)
		if err != nil {
			t.Errorf("%s: %v", f.ID, err)
			continue
		}
		if res.Outcome == spectre.RepairClean {
			continue
		}
		flagged++
		if res.Outcome != spectre.RepairRepaired {
			t.Errorf("%s: outcome %s", f.ID, res.Outcome)
			continue
		}
		if !res.After.SecretFree {
			t.Errorf("%s: repaired figure still flagged: %s", f.ID, res.After.Summary())
		}
	}
	if flagged == 0 {
		t.Error("no gallery figure exercised the repair path")
	}
}

// TestRepairFindingSources pins the new wire field: a v1 finding names
// its guarding branch.
func TestRepairFindingSources(t *testing.T) {
	an := repairAnalyzer(t)
	p := compileCase(t, testcases.Kocher()[0]) // kocher01
	rep, err := an.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecretFree {
		t.Fatal("kocher01 must be flagged")
	}
	found := false
	for _, f := range rep.Findings {
		for _, s := range f.Sources {
			if s.Kind == spectre.SourceBranch {
				found = true
				if !strings.Contains(s.String(), "branch@") {
					t.Fatalf("SpecSource.String() = %q", s.String())
				}
			}
		}
	}
	if !found {
		t.Fatalf("no finding names a branch source: %+v", rep.Findings)
	}
}

// TestRepairSymbolicMode repairs under the symbolic detector: the
// attacker index x is unconstrained, and the fence set must still
// re-verify secret-free.
func TestRepairSymbolicMode(t *testing.T) {
	c := testcases.Kocher()[0]
	p := compileCase(t, c)
	if !p.SymbolicGlobal("x", "x") {
		t.Fatal("no global x")
	}
	an, err := spectre.New(spectre.WithSymbolic(true), spectre.WithSolverSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Repair(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != spectre.RepairRepaired {
		t.Fatalf("outcome = %s (before: %s)", res.Outcome, res.Before.Summary())
	}
	if !res.After.SecretFree {
		t.Fatalf("symbolically repaired program still flagged: %s", res.After.Summary())
	}
}

// TestRepairSymbolicSequentialLeak: the sequential-leak precheck runs
// in symbolic mode too (replaying the concrete seeds), so an
// architecturally leaking program is reported unrepairable instead of
// churning to exhaustion with useless fences.
func TestRepairSymbolicSequentialLeak(t *testing.T) {
	const src = `
public a2[64];
secret skey = 7;
public temp;
fn main() {
  temp = a2[skey * 2];
}`
	p, err := spectre.CompileCTL(src, spectre.ModeC)
	if err != nil {
		t.Fatal(err)
	}
	an, err := spectre.New(spectre.WithSymbolic(true), spectre.WithSolverSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.Repair(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != spectre.RepairSequentialLeak {
		t.Fatalf("outcome = %s, want sequential-leak", res.Outcome)
	}
	if res.Program.Len() != p.Len() {
		t.Fatal("unrepairable program was rewritten")
	}
}

// TestRepairSummaryAndCostTable sanity-checks the human renderings.
func TestRepairSummaryAndCostTable(t *testing.T) {
	an := repairAnalyzer(t)
	p := compileCase(t, testcases.Kocher()[0])
	res, err := an.Repair(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != spectre.RepairRepaired {
		t.Fatalf("outcome = %s", res.Outcome)
	}
	if s := res.Summary(); !strings.Contains(s, "repaired:") || !strings.Contains(s, "fence") {
		t.Errorf("Summary() = %q", s)
	}
	tab := res.Cost.Table()
	for _, want := range []string{"fences added", "instructions", "explored states", "iterations"} {
		if !strings.Contains(tab, want) {
			t.Errorf("cost table lacks %q:\n%s", want, tab)
		}
	}
	if res.Program.Len() != res.Cost.InstrAfter {
		t.Errorf("repaired program length %d != reported %d", res.Program.Len(), res.Cost.InstrAfter)
	}
}

// TestRepairCancelledContext: a pre-cancelled context aborts the
// synthesis with an error rather than certifying anything.
func TestRepairCancelledContext(t *testing.T) {
	an := repairAnalyzer(t)
	p := compileCase(t, testcases.Kocher()[0])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := an.Repair(ctx, p); err == nil {
		t.Fatal("cancelled repair returned no error")
	}
}
