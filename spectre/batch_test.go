package spectre_test

import (
	"context"
	"errors"
	"testing"

	"pitchfork/spectre"
)

func TestRunAllMatchesIndividualRuns(t *testing.T) {
	an := mustNew(t, spectre.WithBound(20), spectre.WithForwardHazards(true), spectre.WithWorkers(4))
	progs := []*spectre.Program{v1Program(9), v1Program(1), v4Program(), doubleV1Program()}
	reports, err := an.RunAll(context.Background(), progs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(progs) {
		t.Fatalf("got %d reports for %d programs", len(reports), len(progs))
	}
	for i, p := range progs {
		solo := mustRun(t, mustNew(t, spectre.WithBound(20), spectre.WithForwardHazards(true)), p)
		if reports[i] == nil {
			t.Fatalf("report %d missing", i)
		}
		if reports[i].SecretFree != solo.SecretFree || len(reports[i].Findings) != len(solo.Findings) {
			t.Fatalf("report %d diverges from the individual run: batch %s, solo %s",
				i, reports[i].Summary(), solo.Summary())
		}
	}
	// The expected verdicts, for good measure.
	if reports[0].SecretFree || !reports[1].SecretFree || reports[2].SecretFree || reports[3].SecretFree {
		t.Fatalf("verdicts wrong: %t %t %t %t", reports[0].SecretFree,
			reports[1].SecretFree, reports[2].SecretFree, reports[3].SecretFree)
	}
}

func TestAnalyzeBatchNamesAndNilProgram(t *testing.T) {
	an := mustNew(t, spectre.WithBound(20), spectre.WithWorkers(2))
	items := []spectre.BatchItem{
		{Name: "leaky", Program: v1Program(9)},
		{Name: "broken", Program: nil},
		{Name: "clean", Program: v1Program(1)},
	}
	results := an.AnalyzeBatch(context.Background(), items)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Name != "leaky" || results[1].Name != "broken" || results[2].Name != "clean" {
		t.Fatalf("names out of order: %+v", results)
	}
	if results[0].Err != nil || results[0].Report == nil || results[0].Report.SecretFree {
		t.Fatalf("leaky item wrong: %+v", results[0])
	}
	if results[1].Err == nil || results[1].Report != nil {
		t.Fatalf("nil program must error without a report: %+v", results[1])
	}
	if results[2].Err != nil || results[2].Report == nil || !results[2].Report.SecretFree {
		t.Fatalf("clean item wrong: %+v", results[2])
	}
}

func TestAnalyzeBatchCancelledContext(t *testing.T) {
	an := mustNew(t, spectre.WithBound(20), spectre.WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := an.AnalyzeBatch(ctx, []spectre.BatchItem{
		{Name: "a", Program: v1Program(9)},
		{Name: "b", Program: v1Program(9)},
	})
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("item %s: err = %v, want context.Canceled", r.Name, r.Err)
		}
	}
	if _, err := an.RunAll(ctx, []*spectre.Program{v1Program(9)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll must surface the context error, got %v", err)
	}
}
