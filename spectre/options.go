package spectre

import (
	"fmt"
	"runtime"
)

// The speculation bounds of the paper's §4.2.1 evaluation procedure.
const (
	// BoundNoHazards is the bound used without forwarding-hazard
	// detection (phase 1).
	BoundNoHazards = 250
	// BoundWithHazards is the reduced bound that keeps hazard-aware
	// analysis tractable (phase 2).
	BoundWithHazards = 20
	// DefaultBound is the bound an Analyzer uses when WithBound is not
	// given: the tractable hazard-aware bound.
	DefaultBound = BoundWithHazards
)

// Option configures an Analyzer. Options are a thin layer over the
// serializable Config struct: each one validates its argument and sets
// the corresponding field, so New(opts…) and NewFromConfig(cfg) are
// two spellings of the same construction.
type Option func(*Config) error

// WithBound sets the speculation bound: the maximum reorder-buffer
// size, hence the maximum speculation depth. The paper's evaluation
// uses 250 without forwarding-hazard detection and 20 with it. The
// bound must be positive.
func WithBound(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("spectre: speculation bound must be positive, got %d", n)
		}
		c.Bound = n
		return nil
	}
}

// WithForwardHazards enables or disables exploration of
// store-forwarding outcomes (Spectre v4 and the paper's "f" findings).
// It is enabled by default; disabling it makes deep bounds like
// BoundNoHazards tractable.
func WithForwardHazards(on bool) Option {
	return func(c *Config) error {
		c.ForwardHazards = on
		return nil
	}
}

// WithMaxStates bounds the number of explored machine states. Zero
// restores the exploration default; negative is rejected.
func WithMaxStates(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("spectre: max states must be non-negative, got %d", n)
		}
		c.MaxStates = n
		return nil
	}
}

// WithMaxRetired bounds the retired instructions per exploration path
// (the budget that terminates non-halting programs). Zero restores the
// default; negative is rejected.
func WithMaxRetired(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("spectre: max retired must be non-negative, got %d", n)
		}
		c.MaxRetired = n
		return nil
	}
}

// WithStopAtFirst stops each run at the first finding.
func WithStopAtFirst(on bool) Option {
	return func(c *Config) error {
		c.StopAtFirst = on
		return nil
	}
}

// WithSymbolic switches the analyzer to symbolic mode: registers and
// memory cells bound with the builder's Symbolic* methods become
// unconstrained solver variables, execution tracks path conditions and
// forks at input-dependent branches, and each finding carries a
// witness assignment. Like the original tool, symbolic mode covers
// conditional-branch speculation and store-forwarding variants
// (Spectre v1, v1.1, v4), with computed control flow followed
// architecturally.
func WithSymbolic(on bool) Option {
	return func(c *Config) error {
		c.Symbolic = on
		return nil
	}
}

// WithSolverSeed seeds the symbolic solver's randomized model search,
// making witness assignments reproducible (symbolic mode only). The
// default seed is 0 — an explicit WithSolverSeed(0) and no option at
// all are the same configuration, with the same Config.CacheKey.
func WithSolverSeed(seed int64) Option {
	return func(c *Config) error {
		c.SolverSeed = seed
		return nil
	}
}

// WithWorkers sets the number of exploration goroutines. 1 (the
// default) runs the classic serial depth-first exploration; n > 1 runs
// a work-stealing pool over the schedule tree, with findings reported
// in deterministic schedule order rather than discovery order; 0
// selects runtime.NumCPU(). The setting applies to concrete and
// symbolic mode alike — both run on the same domain-parameterized
// engine, and symbolic solver queries are self-seeding, so parallel
// symbolic findings (witness models included) reproduce the serial
// run's exactly. Full parallel explorations are fully deterministic;
// runs cut short early (WithStopAtFirst, cancellation, a stopping
// Stream callback, or a MaxStates truncation) depend on how far
// workers got before the stop propagated, so their state/path counts
// — and, under WithStopAtFirst, which single finding is reported —
// may vary between runs. The same setting sizes the fan-out of
// AnalyzeBatch/RunAll.
func WithWorkers(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("spectre: workers must be non-negative, got %d", n)
		}
		if n == 0 {
			n = runtime.NumCPU()
		}
		c.Workers = n
		return nil
	}
}

// WithStaticPass runs the flow-sensitive speculative-taint
// pre-analysis (internal/taint) before exploration. A program the
// static pass proves safe is certified without constructing an
// explorer — Report.Mode is ModeStatic and Report.Static carries the
// verdict; O(|program|) instead of O(schedules). A program it cannot
// prove safe is explored as usual in hybrid mode: the static verdicts
// become pruning hints that let the engine skip speculation forks
// whose whole subtree is provably violation-free. Findings are
// identical with and without the pass (the pre-analysis
// over-approximates every transient execution); only States and Paths
// shrink. Off by default.
func WithStaticPass(on bool) Option {
	return func(c *Config) error {
		c.StaticPass = on
		return nil
	}
}

// WithRepairStrategy selects the mitigation Repair and RepairAll
// synthesize: StrategyFence (the paper's §3.6 fences), StrategyMask
// (SLH-style speculative load hardening), StrategyRet (Figure 13
// retpolines for flagged returns), or StrategyAuto (the default) to
// run the whole portfolio and keep the cheapest certified patch by
// estimated sequential cost. Whatever the strategy, every patch is
// re-verified secret-free by the configured detector and certified
// behaviour-preserving modulo the rewrite's address map.
func WithRepairStrategy(s string) Option {
	return func(c *Config) error {
		switch s {
		case StrategyAuto, StrategyFence, StrategyMask, StrategyRet:
			c.RepairStrategy = s
			return nil
		}
		return fmt.Errorf("spectre: unknown repair strategy %q (want auto, fence, mask or ret)", s)
	}
}

// WithDedup bounds a machine-fingerprint table at maxEntries states;
// exploration states whose full configuration (PC, registers, memory,
// reorder buffer, RSB — and, in symbolic mode, the path condition)
// was already visited are pruned. Many forwarding-fork arms
// reconverge, so dedup cuts explored states independently of
// parallelism — at the price of exactness: Paths shrinks, schedules
// for pruned duplicates are not enumerated, and a 64-bit fingerprint
// collision could in principle prune a genuinely new state. The
// distinct-finding set is preserved (every pruned state's future is
// explored from its first-visited twin). 0 (the default) disables
// deduplication. Works in both concrete and symbolic mode.
func WithDedup(maxEntries int) Option {
	return func(c *Config) error {
		if maxEntries < 0 {
			return fmt.Errorf("spectre: dedup entries must be non-negative, got %d", maxEntries)
		}
		c.DedupEntries = maxEntries
		return nil
	}
}
