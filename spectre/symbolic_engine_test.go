package spectre_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"pitchfork/internal/testcases"
	"pitchfork/spectre"
)

// figure1Symbolic is the Figure 1 gadget (Kocher case 1) with the
// attacker index x left unconstrained.
func figure1Symbolic(t *testing.T) *spectre.Program {
	t.Helper()
	p := compileCase(t, testcases.Kocher()[0])
	if !p.SymbolicGlobal("x", "x") {
		t.Fatal("no global x to unbind")
	}
	return p
}

// findingKey projects a finding onto the fields that are stable across
// worker counts and dedup settings (schedule/trace prefixes of a
// deduplicated subtree depend on which reconverged twin survived).
func findingKey(f spectre.Finding) string {
	return fmt.Sprintf("%s|pc=%d|%s|%v|%v", f.Variant, f.PC, f.Observation, f.Sources, f.Witness)
}

func distinctKeys(rep *spectre.Report) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range rep.Findings {
		k := findingKey(f)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// TestSymbolicWorkersTakeEffect is the regression test for the
// silent-option bug: WithWorkers used to be silently ignored under
// WithSymbolic. A parallel symbolic run must report the worker count
// and produce exactly the serial run's findings, in schedule order.
func TestSymbolicWorkersTakeEffect(t *testing.T) {
	p := figure1Symbolic(t)
	serial := mustRun(t, mustNew(t, spectre.WithSymbolic(true)), p)
	if serial.Workers != 1 {
		t.Fatalf("serial Workers = %d, want 1", serial.Workers)
	}
	if serial.SecretFree {
		t.Fatal("Figure 1 gadget must be flagged symbolically")
	}
	par := mustRun(t, mustNew(t, spectre.WithSymbolic(true), spectre.WithWorkers(4)), p)
	if par.Workers != 4 {
		t.Fatalf("parallel Workers = %d, want 4 (option silently ignored)", par.Workers)
	}
	if par.States != serial.States || par.Paths != serial.Paths {
		t.Fatalf("parallel states/paths %d/%d, serial %d/%d",
			par.States, par.Paths, serial.States, serial.Paths)
	}
	// The serial driver reports in discovery order, the pool merges in
	// schedule order — the multisets (schedules included) must match.
	sk, pk := fullKeys(serial), fullKeys(par)
	if len(sk) != len(pk) {
		t.Fatalf("parallel %d findings, serial %d", len(pk), len(sk))
	}
	for i := range sk {
		if sk[i] != pk[i] {
			t.Fatalf("finding %d differs:\n serial   %s\n parallel %s", i, sk[i], pk[i])
		}
	}
}

// fullKeys renders every finding with its schedule, sorted — the
// order-insensitive full-equality comparison between drivers.
func fullKeys(rep *spectre.Report) []string {
	out := make([]string, len(rep.Findings))
	for i, f := range rep.Findings {
		out[i] = findingKey(f) + "|" + fmt.Sprint(f.Schedule)
	}
	sort.Strings(out)
	return out
}

// TestSymbolicParallelDedup is the acceptance criterion of the engine
// unification: WithSymbolic composed with WithWorkers and WithDedup
// runs the Figure 1 gadget in parallel with dedup hits, and the
// distinct findings match the serial symbolic run's.
func TestSymbolicParallelDedup(t *testing.T) {
	p := figure1Symbolic(t)
	serial := mustRun(t, mustNew(t, spectre.WithSymbolic(true)), p)
	if serial.DedupHits != 0 {
		t.Fatalf("dedup off but DedupHits = %d", serial.DedupHits)
	}
	par := mustRun(t, mustNew(t,
		spectre.WithSymbolic(true),
		spectre.WithWorkers(4),
		spectre.WithDedup(1<<16),
	), p)
	if par.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", par.Workers)
	}
	if par.DedupHits == 0 {
		t.Fatal("DedupHits = 0: the dedup table did not take effect on the symbolic run")
	}
	if par.SecretFree {
		t.Fatal("parallel symbolic run lost the findings")
	}
	sk, pk := distinctKeys(serial), distinctKeys(par)
	if len(sk) != len(pk) {
		t.Fatalf("distinct findings: serial %d, parallel+dedup %d\n serial %v\n parallel %v", len(sk), len(pk), sk, pk)
	}
	for i := range sk {
		if sk[i] != pk[i] {
			t.Fatalf("distinct finding %d differs:\n serial   %s\n parallel %s", i, sk[i], pk[i])
		}
	}
}

// TestSymbolicInterruptParallel: context cancellation reaches the
// symbolic worker pool like the concrete one.
func TestSymbolicInterruptParallel(t *testing.T) {
	p := figure1Symbolic(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	an := mustNew(t, spectre.WithSymbolic(true), spectre.WithWorkers(4))
	rep, err := an.Run(ctx, p)
	if err == nil {
		t.Fatal("cancelled run must return the context error")
	}
	if rep == nil || !rep.Interrupted {
		t.Fatalf("cancelled run must return a partial interrupted report, got %+v", rep)
	}
}
