package spectre

import (
	"fmt"

	"pitchfork/internal/mem"
	"pitchfork/internal/taint"
)

// staticAnalyze runs the flow-sensitive speculative-taint pre-analysis
// (internal/taint) on the program, seeded from the same secret
// labeling the explorer's initial configuration carries: concrete
// register values, symbolic register and memory bindings, and the data
// image (which the taint package reads itself). Concrete and symbolic
// bindings are always both included, so the verdict is mode-independent
// and sound for whichever explorer runs afterwards.
func staticAnalyze(p *Program) (*taint.Report, error) {
	cfg := taint.Config{
		Prog: p.prog,
		Regs: make(map[mem.Reg]mem.Label),
		Mem:  make(map[Word]mem.Label),
	}
	for r, v := range p.regs {
		cfg.Regs[r] = cfg.Regs[r].Join(v.L)
	}
	for r, e := range p.symRegs {
		cfg.Regs[r] = cfg.Regs[r].Join(e.Label())
	}
	for a, e := range p.symMem {
		cfg.Mem[a] = cfg.Mem[a].Join(e.Label())
	}
	return taint.Analyze(cfg)
}

// staticWire lifts a taint report into the stable wire schema.
func staticWire(rep *taint.Report) *StaticReport {
	return &StaticReport{
		Safe:         rep.Safe(),
		Points:       rep.Points,
		Reachable:    rep.Reachable,
		Suspicious:   rep.SuspiciousPoints(),
		ComputedFlow: rep.ComputedFlow,
	}
}

// StaticReport runs only the static pre-analysis on the program and
// returns its verdict, without constructing an explorer: O(|program|)
// instead of O(schedules). A Safe verdict certifies the program free
// of secret-labeled observations under every speculative schedule of
// either exploration mode; a non-Safe verdict localizes the points the
// analysis could not prove (which over-approximate the points any
// explorer can flag). The analyzer's exploration options are
// irrelevant here — only the program and its secret labeling matter.
func (a *Analyzer) StaticReport(p *Program) (*StaticReport, error) {
	if p == nil {
		return nil, fmt.Errorf("spectre: nil program")
	}
	rep, err := staticAnalyze(p)
	if err != nil {
		return nil, fmt.Errorf("spectre: static pass: %w", err)
	}
	return staticWire(rep), nil
}
