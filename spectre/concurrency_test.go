package spectre_test

import (
	"context"
	"sort"
	"sync"
	"testing"

	"pitchfork/spectre"
)

// TestAnalyzerSharedAcrossGoroutines runs one Analyzer from many
// goroutines at once — the reuse safety the type documents — so the
// race detector can certify it (satellite of the Explorer.stopped
// bugfix: stopping one exploration must not bleed into another).
func TestAnalyzerSharedAcrossGoroutines(t *testing.T) {
	an := mustNew(t, spectre.WithBound(20), spectre.WithWorkers(4))
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines stream-and-stop, half run to the end:
			// interleaved early stops are what the old per-instance
			// stopped flag corrupted.
			if g%2 == 0 {
				rep, err := an.Stream(context.Background(), v1Program(9), func(spectre.Finding) bool { return false })
				if err != nil || !rep.Interrupted || len(rep.Findings) == 0 {
					errs <- "streamed run must stop with its finding"
				}
				return
			}
			rep, err := an.Run(context.Background(), v1Program(9))
			if err != nil {
				errs <- err.Error()
				return
			}
			if rep.SecretFree {
				errs <- "full run must flag the v1 gadget"
			}
			if rep.Interrupted {
				errs <- "a neighbouring stream's stop leaked into this run"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestWorkersMatchSerialFindings checks that the façade-level parallel
// run reports exactly the serial findings (the wire-schema view of the
// explorer determinism guarantee).
func TestWorkersMatchSerialFindings(t *testing.T) {
	serial := mustRun(t, mustNew(t, spectre.WithBound(20)), doubleV1Program())
	par := mustRun(t, mustNew(t, spectre.WithBound(20), spectre.WithWorkers(4)), doubleV1Program())
	if par.Workers != 4 || serial.Workers != 1 {
		t.Fatalf("workers not recorded: serial %d, parallel %d", serial.Workers, par.Workers)
	}
	if serial.States != par.States || serial.Paths != par.Paths {
		t.Fatalf("serial %d states / %d paths, parallel %d states / %d paths",
			serial.States, serial.Paths, par.States, par.Paths)
	}
	key := func(rep *spectre.Report) []string {
		out := make([]string, len(rep.Findings))
		for i, f := range rep.Findings {
			out[i] = f.String()
		}
		sort.Strings(out)
		return out
	}
	ss, ps := key(serial), key(par)
	if len(ss) != len(ps) {
		t.Fatalf("finding counts differ: %d vs %d", len(ss), len(ps))
	}
	for i := range ss {
		if ss[i] != ps[i] {
			t.Fatalf("finding sets differ:\n serial   %s\n parallel %s", ss[i], ps[i])
		}
	}
}

// TestDedupReportStats checks WithDedup surfaces its pruning in the
// report and preserves the findings.
func TestDedupReportStats(t *testing.T) {
	full := mustRun(t, mustNew(t, spectre.WithBound(20)), v4Program())
	pruned := mustRun(t, mustNew(t, spectre.WithBound(20), spectre.WithDedup(1<<16)), v4Program())
	if full.DedupHits != 0 {
		t.Fatalf("dedup off must report zero hits, got %d", full.DedupHits)
	}
	if pruned.DedupHits == 0 {
		t.Fatal("dedup on must prune reconverged forwarding forks")
	}
	if pruned.States >= full.States {
		t.Fatalf("dedup must shrink the exploration: %d vs %d states", pruned.States, full.States)
	}
	if full.SecretFree != pruned.SecretFree {
		t.Fatal("dedup must not change the verdict")
	}
	if _, err := spectre.New(spectre.WithDedup(-1)); err == nil {
		t.Fatal("negative dedup bound must be rejected")
	}
	if _, err := spectre.New(spectre.WithWorkers(-1)); err == nil {
		t.Fatal("negative workers must be rejected")
	}
}

// TestProcedureInterruptedAccessor pins the three procedure outcomes
// apart: clean, flagged, and interrupted (the satellite fix — an
// interrupted procedure used to be indistinguishable from a flagged
// one through SecretFree alone).
func TestProcedureInterruptedAccessor(t *testing.T) {
	// Flagged: completed procedure, verdict reached.
	pr, err := mustNew(t).RunProcedure(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	if pr.SecretFree() || pr.Interrupted() {
		t.Fatalf("flagged procedure: SecretFree=%t Interrupted=%t, want false/false", pr.SecretFree(), pr.Interrupted())
	}

	// Interrupted: cancelled before phase 1 could finish.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr, _ = mustNew(t).RunProcedure(ctx, v1Program(9))
	if pr == nil {
		t.Fatal("cancelled procedure must still return the partial report")
	}
	if !pr.Interrupted() {
		t.Fatal("cancelled procedure must report Interrupted")
	}
	if pr.SecretFree() {
		t.Fatal("an interrupted procedure must never pass as clean")
	}

	// Clean: both phases complete on the fenced gadget.
	fenced := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 5).
		Fence().
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).
		SetReg(ra, 9).
		MustBuild()
	pr, err = mustNew(t).RunProcedure(context.Background(), fenced)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.SecretFree() || pr.Interrupted() {
		t.Fatalf("clean procedure: SecretFree=%t Interrupted=%t, want true/false", pr.SecretFree(), pr.Interrupted())
	}
}
