package spectre

import (
	"context"
	"fmt"
	"iter"

	"pitchfork/internal/pitchfork"
	"pitchfork/internal/sched"
	"pitchfork/internal/taint"
)

// pruneHints adapts a taint report to the engine's hint interface; a
// typed-nil *taint.Report must become an untyped nil so the engine's
// h == nil check works.
func pruneHints(rep *taint.Report) sched.PruneHints {
	if rep == nil {
		return nil
	}
	return rep
}

// Analyzer checks programs for speculative constant-time violations by
// exploring the paper's worst-case attacker schedules. An Analyzer is
// immutable after construction and safe to reuse across runs; each Run
// operates on a fresh machine built from the program.
type Analyzer struct {
	cfg Config
}

// New constructs an Analyzer from functional options. With no options
// the analyzer runs concrete-mode analysis at DefaultBound with
// forwarding-hazard detection enabled. The equivalent explicit-struct
// construction is NewFromConfig; the resolved configuration is
// available afterwards through Analyzer.Config.
func New(opts ...Option) (*Analyzer, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	return NewFromConfig(cfg)
}

// Run analyzes the program to completion (or until the context is
// cancelled) and returns the report.
//
// Cancellation is prompt: when ctx is cancelled mid-exploration the
// partial report — findings discovered so far, with Interrupted set —
// is returned alongside the context's error.
func (a *Analyzer) Run(ctx context.Context, p *Program) (*Report, error) {
	return a.run(ctx, p, a.cfg.Bound, a.cfg.ForwardHazards, nil)
}

// Stream is Run with a streaming callback: yield is invoked
// synchronously for each finding as exploration discovers it, before
// the search continues. Returning false from yield stops the analysis
// early; the report then carries everything found up to that point
// with Interrupted set, and the returned error is nil.
func (a *Analyzer) Stream(ctx context.Context, p *Program, yield func(Finding) bool) (*Report, error) {
	if yield == nil {
		return nil, fmt.Errorf("spectre: Stream requires a non-nil yield callback")
	}
	return a.run(ctx, p, a.cfg.Bound, a.cfg.ForwardHazards, yield)
}

// Findings returns an iterator over findings, for range-over-func
// consumption:
//
//	for f := range an.Findings(ctx, prog) { … }
//
// Breaking out of the loop stops the underlying exploration. Errors
// and exploration statistics are not surfaced here; use Run or Stream
// when they matter.
func (a *Analyzer) Findings(ctx context.Context, p *Program) iter.Seq[Finding] {
	return func(yield func(Finding) bool) {
		a.Stream(ctx, p, yield) //nolint:errcheck // iterator form drops the report by design
	}
}

// ProcedureReport aggregates the two phases of the paper's §4.2.1
// evaluation procedure. Phase2 is nil when phase 1 already flagged a
// violation (or was interrupted before phase 2 could run).
type ProcedureReport struct {
	Phase1 *Report `json:"phase1"`
	Phase2 *Report `json:"phase2,omitempty"`
}

// SecretFree reports whether both phases ran to completion and came
// back clean. It is false both for flagged and for interrupted
// procedures — a cut-short run proves nothing — so callers deciding
// between "clean", "flagged", and "inconclusive" should consult
// Interrupted first.
func (pr *ProcedureReport) SecretFree() bool {
	if pr.Interrupted() {
		return false
	}
	if pr.Phase1 == nil || !pr.Phase1.SecretFree {
		return false
	}
	return pr.Phase2 != nil && pr.Phase2.SecretFree
}

// Interrupted reports whether the procedure was cut short before it
// could reach a verdict: phase 1 interrupted, or phase 1 clean but
// phase 2 missing or interrupted. A procedure that flagged a violation
// in a completed phase 1 is not interrupted — it reached its verdict.
func (pr *ProcedureReport) Interrupted() bool {
	if pr.Phase1 == nil || pr.Phase1.Interrupted {
		return true
	}
	if !pr.Phase1.SecretFree {
		return false
	}
	return pr.Phase2 == nil || pr.Phase2.Interrupted
}

// Findings returns the findings of both phases in discovery order.
func (pr *ProcedureReport) Findings() []Finding {
	var out []Finding
	if pr.Phase1 != nil {
		out = append(out, pr.Phase1.Findings...)
	}
	if pr.Phase2 != nil {
		out = append(out, pr.Phase2.Findings...)
	}
	return out
}

// RunProcedure runs the paper's two-phase evaluation procedure
// (§4.2.1): first at BoundNoHazards without forwarding-hazard
// detection; if that phase is clean, again at BoundWithHazards with
// hazard detection. The analyzer's WithBound/WithForwardHazards
// settings are overridden by the procedure's phases; the remaining
// options apply to both.
func (a *Analyzer) RunProcedure(ctx context.Context, p *Program) (*ProcedureReport, error) {
	phase1, err := a.run(ctx, p, BoundNoHazards, false, nil)
	if err != nil || !phase1.SecretFree {
		return &ProcedureReport{Phase1: phase1}, err
	}
	phase2, err := a.run(ctx, p, BoundWithHazards, true, nil)
	return &ProcedureReport{Phase1: phase1, Phase2: phase2}, err
}

// run maps the unified configuration onto the internal detector,
// wiring context cancellation and the streaming callback into the
// exploration hooks.
func (a *Analyzer) run(ctx context.Context, p *Program, bound int, fwd bool, yield func(Finding) bool) (*Report, error) {
	return a.runWith(ctx, p, bound, fwd, yield, a.cfg.Workers)
}

// runWith is run with an explicit worker count — the batch API fans
// programs across the pool and runs each program's exploration on a
// single goroutine.
func (a *Analyzer) runWith(ctx context.Context, p *Program, bound int, fwd bool, yield func(Finding) bool, workers int) (*Report, error) {
	if p == nil {
		return nil, fmt.Errorf("spectre: nil program")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var static *taint.Report
	if a.cfg.StaticPass {
		var err error
		static, err = staticAnalyze(p)
		if err != nil {
			return nil, fmt.Errorf("spectre: static pass: %w", err)
		}
		if static.Safe() {
			// Static fast path: the pre-analysis proved every reachable
			// point safe, so no explorer needs to run — the certificate
			// covers all speculative schedules at any bound.
			return &Report{
				Mode:           ModeStatic,
				Bound:          bound,
				ForwardHazards: fwd,
				SecretFree:     true,
				Findings:       make([]Finding, 0),
				Static:         staticWire(static),
			}, nil
		}
	}
	opts := pitchfork.Options{
		Bound:          bound,
		ForwardHazards: fwd,
		MaxStates:      a.cfg.MaxStates,
		MaxRetired:     a.cfg.MaxRetired,
		StopAtFirst:    a.cfg.StopAtFirst,
		Workers:        workers,
		DedupEntries:   a.cfg.DedupEntries,
		SolverSeed:     a.cfg.SolverSeed,
		Interrupt:      func() bool { return ctx.Err() != nil },
		Prune:          pruneHints(static),
	}
	if yield != nil {
		opts.OnViolation = func(v pitchfork.Violation) bool {
			return yield(findingOf(v))
		}
	}
	var irep pitchfork.Report
	var err error
	if a.cfg.Symbolic {
		irep, err = pitchfork.AnalyzeSymbolic(p.symMachine(), opts)
	} else {
		irep, err = pitchfork.Analyze(p.machine(), opts)
	}
	if err != nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	rep := reportOf(irep, bound, fwd)
	if static != nil {
		rep.Static = staticWire(static)
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		rep.Interrupted = true
		return rep, ctxErr
	}
	return rep, nil
}
